/**
 * Figure 7: field-number usage density distribution (present fields /
 * defined field-number range), weighted by observed messages — the
 * protobufz x protodb join that motivates the ADT + sparse-hasbits
 * programming interface (§3.7).
 */
#include <cstdio>

#include "profile/samplers.h"

using namespace protoacc;
using namespace protoacc::profile;

int
main()
{
    Fleet fleet{FleetParams{}};
    ProtobufzSampler sampler(&fleet, /*seed=*/17);
    const ShapeAggregate agg = sampler.Collect(/*messages=*/20000);

    std::printf(
        "Figure 7: field-number usage density (weighted by observed "
        "messages)\n");
    std::printf("  %-12s %12s %8s\n", "density", "messages", "pct");
    uint64_t total = 0;
    for (uint64_t c : agg.density_deciles)
        total += c;
    for (size_t d = 0; d < agg.density_deciles.size(); ++d) {
        std::printf("  [%.1f-%.1f%s %12llu %7.2f%%\n", d / 10.0,
                    (d + 1) / 10.0, d == 9 ? "]" : ")",
                    static_cast<unsigned long long>(
                        agg.density_deciles[d]),
                    100.0 * agg.density_deciles[d] / total);
    }
    std::printf(
        "\n  messages with density > 1/64: %.1f%% (paper: >= 92%% — "
        "favors per-type ADTs + sparse hasbits over per-instance "
        "tables)\n",
        100.0 * agg.density_over_1_64 / agg.density_samples);

    // §3.3 join with protodb: proto2 share of sampled bytes.
    std::printf(
        "  proto2 share of sampled bytes: %.1f%% (paper: 96%%)\n",
        100.0 * agg.proto2_bytes / agg.total_bytes);

    const SchemaStats schema = CollectSchemaStats(fleet);
    std::printf(
        "  protodb: %llu message types, %llu fields, max field-number "
        "range %llu\n",
        static_cast<unsigned long long>(schema.message_types),
        static_cast<unsigned long long>(schema.fields),
        static_cast<unsigned long long>(schema.max_field_number_range));
    return 0;
}
