/**
 * Robustness sweep: the two headline numbers of the hostile-input
 * hardening work.
 *
 * Part 1 — differential fuzz sweep: >= 100k seeded hostile inputs
 * (structural mutations of valid wires, exhaustive-style truncations,
 * pure garbage) through all four codec engines — reference
 * interpreter, table-driven parser, schema-specialized generated
 * codecs, accelerator model. Invariant: no crash, and all four agree
 * on accept vs reject for every input. The sweep's schema seeds are in
 * the build-time codegen suite (tools/gen_pools), so generated-engine
 * coverage is required, not best-effort. Any disagreement prints a
 * reproducer and the run exits nonzero.
 *
 * Part 2 — availability sweep: an echo service on a degradation-aware
 * HybridCodecBackend (accelerator primary, software table codec
 * fallback) serving a retrying client across injected fault rates. At
 * each rate f: accelerator units die mid-job with probability f (and
 * stall with probability f/2), and every frame crossing the channel is
 * dropped / truncated / corrupted with probability f/3 each.
 * Availability = calls answered OK / calls issued. Acceptance bar:
 * >= 99% availability at f = 1% with the software fallback actually
 * absorbing device faults (nonzero counters).
 *
 * Flags: --inputs=N (fuzz inputs, default 100000)
 *        --calls=N  (availability calls per rate, default 2000)
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "harness/bench_common.h"
#include "proto/schema_parser.h"
#include "rpc/rpc.h"
#include "sim/fault.h"

#include "../tests/robustness/tri_codec_rig.h"

using namespace protoacc;
using proto::DescriptorPool;
using proto::Message;
using robustness::RandomSchemaRig;
using robustness::TriVerdict;

namespace {

struct Options
{
    uint64_t inputs = 100'000;
    uint32_t calls = 2'000;
};

Options
ParseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--inputs=", 0) == 0)
            opt.inputs = std::strtoull(arg.c_str() + 9, nullptr, 10);
        else if (arg.rfind("--calls=", 0) == 0)
            opt.calls = static_cast<uint32_t>(
                std::strtoul(arg.c_str() + 8, nullptr, 10));
        else {
            std::fprintf(stderr,
                         "usage: robustness_sweep [--inputs=N] "
                         "[--calls=N]\n");
            std::exit(1);
        }
    }
    return opt;
}

// ---------------------------------------------------------------------
// Part 1: differential fuzz sweep.
// ---------------------------------------------------------------------

struct FuzzTotals
{
    uint64_t inputs = 0;
    uint64_t accepted = 0;
    uint64_t rejected = 0;
    uint64_t mutated = 0;
    uint64_t truncated = 0;
    uint64_t garbage = 0;
    uint64_t disagreements = 0;
    uint64_t generated_verdicts = 0;
};

FuzzTotals
RunDifferentialSweep(uint64_t total_inputs)
{
    constexpr uint64_t kSchemas = 10;
    const uint64_t per_schema = (total_inputs + kSchemas - 1) / kSchemas;
    FuzzTotals totals;
    for (uint64_t s = 0; s < kSchemas; ++s) {
        RandomSchemaRig rig(0xD1FF + s);
        protoacc::Rng rng(0xFEED + s);
        sim::FaultInjector injector(0xFA017 + s);
        if (!rig.rig().has_generated()) {
            std::fprintf(stderr,
                         "FAIL: no generated codec linked for sweep "
                         "schema seed 0x%llX — build-time codegen suite "
                         "out of sync with the sweep\n",
                         static_cast<unsigned long long>(0xD1FF + s));
            ++totals.disagreements;
            return totals;
        }

        for (uint64_t i = 0; i < per_schema; ++i) {
            // Mix: 70% mutated valid wires, 15% truncated valid wires,
            // 15% pure garbage.
            std::vector<uint8_t> buf;
            const double pick = rng.NextDouble();
            if (pick < 0.85) {
                buf = rig.RandomWire(&rng);
                if (pick < 0.70) {
                    injector.MutateWire(
                        &buf,
                        1 + static_cast<uint32_t>(rng.NextBounded(3)));
                    ++totals.mutated;
                } else {
                    if (!buf.empty())
                        buf.resize(rng.NextBounded(buf.size()));
                    ++totals.truncated;
                }
            } else {
                buf.resize(rng.NextBounded(256));
                for (auto &b : buf)
                    b = static_cast<uint8_t>(rng.Next());
                ++totals.garbage;
            }

            const TriVerdict v = rig.rig().ParseAll(buf);
            ++totals.inputs;
            totals.generated_verdicts += v.has_generated;
            (v.accepted() ? totals.accepted : totals.rejected)++;
            if (!v.agree_on_accept()) {
                ++totals.disagreements;
                // Full reproducer: the three seeds pin the schema, the
                // input mix and the mutation stream; the hex dump is
                // the exact bytes, replayable without re-deriving them.
                std::fprintf(
                    stderr,
                    "DISAGREEMENT schema=%llu input=%llu (%zu bytes): "
                    "ref=%s table=%s gen=%s accel=%s\n"
                    "  seeds: schema=0x%llX rng=0x%llX fault=0x%llX\n"
                    "  bytes:",
                    static_cast<unsigned long long>(s),
                    static_cast<unsigned long long>(i), buf.size(),
                    StatusCodeName(v.reference),
                    StatusCodeName(v.table), StatusCodeName(v.generated),
                    StatusCodeName(v.accel),
                    static_cast<unsigned long long>(0xD1FF + s),
                    static_cast<unsigned long long>(0xFEED + s),
                    static_cast<unsigned long long>(0xFA017 + s));
                for (size_t b = 0; b < buf.size(); ++b)
                    std::fprintf(stderr, "%s%02x",
                                 (b % 32 == 0) ? "\n    " : " ",
                                 buf[b]);
                std::fprintf(stderr, "\n");
                // Fail fast: the first divergence is the reproducer;
                // grinding on would only bury it in output.
                return totals;
            }
            if ((i & 0x3FF) == 0x3FF)
                rig.rig().ResetAccelArena();
        }
    }
    return totals;
}

// ---------------------------------------------------------------------
// Part 2: availability sweep.
// ---------------------------------------------------------------------

struct AvailabilityRow
{
    double fault_rate = 0;
    uint32_t calls = 0;
    uint32_t ok = 0;
    uint64_t retries = 0;
    uint64_t fallback_accel_fault = 0;
    uint64_t unit_kills = 0;
    uint64_t frames_lost = 0;
    /// Modeled per-call latency tails (retries included), exact
    /// nearest-rank — the same statistic every BENCH_*.json reports.
    double p50_us = 0;
    double p99_us = 0;

    double
    availability() const
    {
        return calls > 0 ? static_cast<double>(ok) / calls : 0;
    }
};

AvailabilityRow
RunAvailability(const DescriptorPool &pool, int req, int rsp,
                double rate, uint32_t calls)
{
    // Server: hybrid backend whose accelerator half suffers unit kills
    // and stalls at the injected rate. The device has its own injector
    // so device decisions do not perturb the channel's draw sequence.
    sim::FaultConfig unit_config;
    unit_config.unit_kill_rate = rate;
    unit_config.unit_stall_rate = rate / 2;
    sim::FaultInjector unit_injector(
        9100 + static_cast<uint64_t>(rate * 1e6), unit_config);

    auto accel_backend =
        std::make_unique<rpc::AcceleratedBackend>(pool);
    accel_backend->SetFaultInjector(&unit_injector);
    auto hybrid = std::make_unique<rpc::HybridCodecBackend>(
        std::move(accel_backend),
        std::make_unique<rpc::SoftwareBackend>(cpu::BoomParams(),
                                               pool));
    rpc::HybridCodecBackend *server_backend = hybrid.get();

    rpc::RpcServer server(&pool, std::move(hybrid));
    const auto &rd = pool.message(req);
    const auto &sd = pool.message(rsp);
    server.RegisterMethod(
        1, req, rsp,
        [&rd, &sd](const Message &request, Message response) {
            response.SetString(
                *sd.FindFieldByName("text"),
                request.GetString(*rd.FindFieldByName("text")));
        });

    // Channel: frames dropped / truncated / corrupted at rate/3 each.
    sim::FaultConfig channel_config;
    channel_config.frame_drop_rate = rate / 3;
    channel_config.frame_truncate_rate = rate / 3;
    channel_config.frame_corrupt_rate = rate / 3;
    sim::FaultInjector channel_injector(
        9500 + static_cast<uint64_t>(rate * 1e6), channel_config);

    rpc::RpcSession session(
        &pool,
        std::make_unique<rpc::SoftwareBackend>(cpu::BoomParams(), pool),
        &server, rpc::SimulatedChannel{});
    session.SetFaultInjector(&channel_injector);
    rpc::RetryPolicy policy;
    policy.max_attempts = 4;
    session.set_retry_policy(policy);

    AvailabilityRow row;
    row.fault_rate = rate;
    row.calls = calls;
    proto::Arena arena;
    std::vector<double> call_ns;
    call_ns.reserve(calls);
    for (uint32_t i = 0; i < calls; ++i) {
        arena.Reset();
        Message request = Message::Create(&arena, pool, req);
        request.SetString(*rd.FindFieldByName("text"),
                          "echo-" + std::to_string(i));
        Message response = Message::Create(&arena, pool, rsp);
        const double before = session.breakdown().total_ns();
        row.ok += StatusOk(session.Call(1, request, &response));
        call_ns.push_back(session.breakdown().total_ns() - before);
    }
    row.p50_us = harness::ExactPercentile(call_ns, 50) / 1000.0;
    row.p99_us = harness::ExactPercentile(call_ns, 99) / 1000.0;
    row.retries = session.breakdown().retries;
    row.fallback_accel_fault =
        server_backend->fallback_counters().accel_fault;
    const sim::FaultStats us = unit_injector.stats();
    row.unit_kills = us.units_killed;
    const sim::FaultStats cs = channel_injector.stats();
    row.frames_lost =
        cs.frames_dropped + cs.frames_truncated + cs.frames_corrupted;
    return row;
}

}  // namespace

int
main(int argc, char **argv)
{
    const Options opt = ParseOptions(argc, argv);

    std::printf(
        "Robustness sweep\n"
        "================\n\n"
        "Part 1: differential fuzz — %llu hostile inputs through "
        "reference / table / generated / accelerator engines\n"
        "  (mutated valid wires, truncations, pure garbage; invariant: "
        "no crash, identical accept/reject verdicts)\n\n",
        static_cast<unsigned long long>(opt.inputs));

    const FuzzTotals fuzz = RunDifferentialSweep(opt.inputs);
    std::printf("  inputs        %10llu  (mutated %llu, truncated "
                "%llu, garbage %llu)\n"
                "  accepted      %10llu  (%.1f%%)\n"
                "  rejected      %10llu  (%.1f%%)\n"
                "  gen verdicts  %10llu\n"
                "  disagreements %10llu\n\n",
                static_cast<unsigned long long>(fuzz.inputs),
                static_cast<unsigned long long>(fuzz.mutated),
                static_cast<unsigned long long>(fuzz.truncated),
                static_cast<unsigned long long>(fuzz.garbage),
                static_cast<unsigned long long>(fuzz.accepted),
                100.0 * fuzz.accepted / fuzz.inputs,
                static_cast<unsigned long long>(fuzz.rejected),
                100.0 * fuzz.rejected / fuzz.inputs,
                static_cast<unsigned long long>(fuzz.generated_verdicts),
                static_cast<unsigned long long>(fuzz.disagreements));
    if (fuzz.disagreements > 0) {
        std::fprintf(stderr,
                     "FAIL: codec engines disagreed on %llu inputs\n",
                     static_cast<unsigned long long>(
                         fuzz.disagreements));
        return 1;
    }

    DescriptorPool pool;
    const auto parsed = proto::ParseSchema(R"(
        message EchoRequest { optional string text = 1; }
        message EchoResponse { optional string text = 1; }
    )",
                                           &pool);
    PA_CHECK(parsed.ok);
    pool.Compile(proto::HasbitsMode::kSparse);
    const int req = pool.FindMessage("EchoRequest");
    const int rsp = pool.FindMessage("EchoResponse");

    std::printf(
        "Part 2: availability under injected faults — %u echo calls "
        "per rate, hybrid server backend\n"
        "  (unit kills at rate f + stalls at f/2 on the device; frames "
        "drop/truncate/corrupt at f/3 each; client retries transient "
        "failures, 4 attempts max)\n\n",
        opt.calls);
    std::printf("  %10s %12s %8s %10s %12s %12s %9s %9s\n",
                "fault-rate", "availability", "retries", "unit-kills",
                "sw-fallback", "frames-lost", "p50(us)", "p99(us)");
    bool met_bar = true;
    for (const double rate : {0.0, 0.001, 0.01, 0.05, 0.10}) {
        const AvailabilityRow row =
            RunAvailability(pool, req, rsp, rate, opt.calls);
        std::printf("  %9.1f%% %11.2f%% %8llu %10llu %12llu %12llu "
                    "%9.1f %9.1f\n",
                    100.0 * rate, 100.0 * row.availability(),
                    static_cast<unsigned long long>(row.retries),
                    static_cast<unsigned long long>(row.unit_kills),
                    static_cast<unsigned long long>(
                        row.fallback_accel_fault),
                    static_cast<unsigned long long>(row.frames_lost),
                    row.p50_us, row.p99_us);
        if (rate == 0.01 &&
            (row.availability() < 0.99 ||
             row.fallback_accel_fault == 0))
            met_bar = false;
    }
    std::printf(
        "\n  acceptance bar: availability >= 99%% at 1%% fault rate "
        "with nonzero software fallbacks — %s\n",
        met_bar ? "MET" : "NOT MET");
    return met_bar ? 0 : 1;
}
