/**
 * Chaos soak: a seeded closed-loop client driving the serving runtime
 * while every fault class fires at once — in-flight frame corruption /
 * truncation / drops, accelerator unit kills, stalls and permanent
 * wedges (watchdog-recovered), and scheduled worker crashes — with the
 * client retrying under stable idempotency keys.
 *
 * Mode A (CRC on, the shipped configuration) asserts the exactly-once
 * contract end to end:
 *   - zero wrong responses (every response echoes its call's payload);
 *   - zero lost calls (every logical call eventually answered);
 *   - zero duplicated executions (each idempotency key ran at most
 *     once, retries served from the dedup cache);
 * and that the machinery actually engaged: detected corruptions
 * (crc_rejects), dedup hits, both scheduled worker crashes, and
 * watchdog resets are all nonzero.
 *
 * Mode B re-runs the same seeds with frame CRCs disabled — the
 * pre-integrity stack — and counts how many corrupted frames were
 * silently served (wrong or unattributable responses). The pair of
 * numbers is the headline: same fault schedule, detected vs silent.
 *
 * Mode C re-runs Mode A's exact fault schedule with the offloaded
 * datapath enabled (RuntimeConfig::offload): framing, CRC and dedup
 * probes priced on the device frame engine, batches submitted through
 * the descriptor ring. The offload path runs the identical functional
 * code, so every Mode A invariant must hold unchanged — this is the
 * acceptance check that offload does not reopen any exactly-once hole.
 *
 * Flags: --calls=N   logical calls per mode (default 1500)
 *        --seed=S    base seed (default 0xC0FFEE)
 *        --json=PATH write both modes' counters as JSON
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "harness/bench_common.h"
#include "proto/schema_parser.h"
#include "rpc/server_runtime.h"
#include "sim/fault.h"

using namespace protoacc;
using proto::DescriptorPool;
using proto::Message;

namespace {

struct Options
{
    uint64_t calls = 1'500;
    uint64_t seed = 0xC0FFEE;
    std::string json_path;
};

Options
ParseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--calls=", 0) == 0)
            opt.calls = std::strtoull(arg.c_str() + 8, nullptr, 10);
        else if (arg.rfind("--seed=", 0) == 0)
            opt.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
        else if (arg.rfind("--json=", 0) == 0)
            opt.json_path = arg.substr(7);
        else {
            std::fprintf(stderr,
                         "usage: chaos_soak [--calls=N] [--seed=S] "
                         "[--json=PATH]\n");
            std::exit(1);
        }
    }
    return opt;
}

struct ModeResult
{
    bool crc_enabled = true;
    bool offload = false;
    uint64_t calls = 0;
    uint64_t rounds = 0;
    uint64_t attempts = 0;
    uint64_t answered = 0;
    uint64_t wrong_responses = 0;
    uint64_t unknown_responses = 0;
    uint64_t lost_calls = 0;
    uint64_t duplicate_execs = 0;
    uint64_t error_replies = 0;
    uint64_t client_reply_drops = 0;
    uint64_t crc_rejects = 0;
    uint64_t dedup_hits = 0;
    uint64_t dedup_insertions = 0;
    uint64_t workers_crashed = 0;
    uint64_t redispatched_frames = 0;
    uint64_t watchdog_resets = 0;
    uint64_t frames_dropped = 0;
    uint64_t frames_truncated = 0;
    uint64_t frames_corrupted = 0;
    uint64_t units_killed = 0;
    uint64_t units_wedged = 0;
    uint64_t offload_frame_headers = 0;
    uint64_t offload_dedup_probes = 0;
    double offload_frame_cycles = 0;
    /// Modeled per-attempt latency tails, exact nearest-rank (the same
    /// statistic every other BENCH_*.json reports).
    double p50_us = 0;
    double p99_us = 0;

    /// Corrupted frames that produced an answer instead of a reject:
    /// the number the integrity work exists to drive to zero.
    uint64_t
    silent_corruptions() const
    {
        return wrong_responses + unknown_responses;
    }
};

constexpr uint32_t kWorkers = 4;
constexpr uint16_t kMethod = 1;
constexpr uint32_t kMaxRounds = 80;

ModeResult
RunMode(const DescriptorPool &pool, int req, int rsp, uint64_t seed,
        uint64_t calls, bool crc_enabled, bool offload = false)
{
    ModeResult result;
    result.crc_enabled = crc_enabled;
    result.offload = offload;
    result.calls = calls;

    const auto &rd = pool.message(req);
    const auto &sd = pool.message(rsp);
    const auto *req_text = rd.FindFieldByName("text");
    const auto *rsp_text = sd.FindFieldByName("text");

    // Per-key execution counters, bumped by the handler itself: the
    // ground truth the exactly-once assertions check against.
    std::unique_ptr<std::atomic<uint32_t>[]> execs(
        new std::atomic<uint32_t>[calls]());

    // Scheduled worker crashes: after_calls counts one worker's own
    // completions (~calls / kWorkers each), so scale the kill points to
    // land well inside the run at any --calls.
    sim::FaultConfig kill_config;
    kill_config.worker_kills = {
        {1, std::max<uint64_t>(4, calls / 16)},
        {2, std::max<uint64_t>(8, calls / 12)},
    };
    sim::FaultInjector kill_injector(seed + 1, kill_config);

    // Each worker's device gets a private injector (deterministic per
    // worker): kills fall back to software, stalls burn cycles, wedges
    // are caught by the unit watchdog.
    sim::FaultConfig unit_config;
    unit_config.unit_kill_rate = 0.004;
    unit_config.unit_stall_rate = 0.004;
    unit_config.unit_wedge_rate = 0.004;
    std::vector<std::unique_ptr<sim::FaultInjector>> unit_injectors;
    for (uint32_t i = 0; i < kWorkers; ++i)
        unit_injectors.push_back(std::make_unique<sim::FaultInjector>(
            seed + 100 + i, unit_config));

    // Channel faults on the request path (applied per frame below).
    sim::FaultConfig channel_config;
    channel_config.frame_drop_rate = 0.01;
    channel_config.frame_truncate_rate = 0.01;
    channel_config.frame_corrupt_rate = 0.03;
    sim::FaultInjector channel_injector(seed + 7, channel_config);

    accel::SharedQueueConfig queue_config;
    queue_config.num_units = 2;
    queue_config.watchdog_budget_cycles = 2'000'000;
    accel::SharedAccelQueue shared_queue(queue_config);

    rpc::RuntimeConfig runtime_config;
    runtime_config.num_workers = kWorkers;
    runtime_config.max_batch = 8;
    runtime_config.shared_accel = &shared_queue;
    runtime_config.dedup_capacity = calls + 16;
    runtime_config.fault_injector = &kill_injector;
    runtime_config.offload.enabled = offload;

    rpc::RpcServerRuntime runtime(
        &pool,
        [&](uint32_t worker) -> std::unique_ptr<rpc::CodecBackend> {
            accel::AccelConfig accel_config;
            accel_config.watchdog.budget_cycles = 200'000;
            auto accel = std::make_unique<rpc::AcceleratedBackend>(
                pool, accel_config);
            accel->SetFaultInjector(unit_injectors[worker].get());
            return std::make_unique<rpc::HybridCodecBackend>(
                std::move(accel),
                std::make_unique<rpc::SoftwareBackend>(
                    cpu::BoomParams(), pool));
        },
        runtime_config);

    runtime.RegisterMethod(
        kMethod, req, rsp,
        [&](const Message &request, Message response) {
            const std::string text(request.GetString(*req_text));
            if (text.rfind("call-", 0) == 0) {
                const uint64_t idx =
                    std::strtoull(text.c_str() + 5, nullptr, 10);
                if (idx < calls)
                    execs[idx].fetch_add(1, std::memory_order_relaxed);
            }
            response.SetString(*rsp_text, text);
        });
    runtime.Start();

    // Client state: one logical call per index, answered when a
    // matching response with the right payload came back. One
    // deliberate client-side reply drop per call (seeded) forces the
    // retry + dedup-hit path even for calls the channel never touched.
    rpc::SoftwareBackend client(cpu::BoomParams(), pool);
    proto::Arena client_arena;
    Rng reply_drop_rng(seed + 9);
    std::vector<bool> answered(calls, false);
    std::vector<bool> reply_dropped(calls, false);
    std::vector<size_t> reply_offset(kWorkers, 0);
    uint64_t unanswered = calls;

    for (uint32_t round = 0; round < kMaxRounds && unanswered > 0;
         ++round) {
        ++result.rounds;
        // Submit one fresh attempt for every outstanding call. The
        // idempotency key is stable across attempts — that is what the
        // dedup cache recognizes a retry by.
        for (uint64_t i = 0; i < calls; ++i) {
            if (answered[i])
                continue;
            ++result.attempts;
            client_arena.Reset();
            Message request =
                Message::Create(&client_arena, pool, req);
            request.SetString(*req_text,
                              "call-" + std::to_string(i));
            const std::vector<uint8_t> payload =
                client.Serialize(request);

            rpc::FrameBuffer wire;
            wire.set_crc_enabled(crc_enabled);
            rpc::FrameHeader header;
            header.payload_bytes =
                static_cast<uint32_t>(payload.size());
            header.call_id = static_cast<uint32_t>(i + 1);
            header.method_id = kMethod;
            header.kind = rpc::FrameKind::kRequest;
            header.idempotency_key = (1ull << 32) | (i + 1);
            wire.Append(header, payload.data());

            switch (channel_injector.SampleChannelFault()) {
              case sim::ChannelFaultKind::kDrop:
                continue;  // never arrives; retried next round
              case sim::ChannelFaultKind::kTruncate:
                wire.Truncate(
                    channel_injector.TruncatedLength(wire.bytes()));
                break;
              case sim::ChannelFaultKind::kCorrupt:
                channel_injector.CorruptBytes(wire.mutable_data(),
                                              wire.bytes(), 2);
                break;
              case sim::ChannelFaultKind::kNone:
                break;
            }

            size_t off = 0;
            for (;;) {
                const StatusCode st =
                    runtime.SubmitFromStream(wire, &off);
                if (off >= wire.bytes() || st == StatusCode::kOk)
                    break;
            }
        }

        runtime.Drain();

        // Harvest every worker's reply stream (dead workers' committed
        // replies included) from where the last round left off.
        for (uint32_t w = 0; w < kWorkers; ++w) {
            const rpc::FrameBuffer &rb = runtime.replies(w);
            size_t &off = reply_offset[w];
            for (;;) {
                StatusCode err = StatusCode::kOk;
                const std::optional<rpc::Frame> f = rb.Next(&off, &err);
                if (!f.has_value()) {
                    if (err == StatusCode::kOk)
                        break;  // exhausted
                    continue;   // shouldn't happen: replies are clean
                }
                if (f->header.kind == rpc::FrameKind::kError) {
                    ++result.error_replies;
                    continue;
                }
                const uint64_t idx = f->header.call_id - 1;
                if (f->header.kind != rpc::FrameKind::kResponse ||
                    idx >= calls || answered[idx]) {
                    ++result.unknown_responses;
                    continue;
                }
                if (!reply_dropped[idx] &&
                    reply_drop_rng.NextBool(0.05)) {
                    // Modeled reply loss: the server committed this
                    // answer, the client never saw it — the retry must
                    // dedup, not re-execute.
                    reply_dropped[idx] = true;
                    ++result.client_reply_drops;
                    continue;
                }
                client_arena.Reset();
                Message response =
                    Message::Create(&client_arena, pool, rsp);
                const StatusCode parse = client.Deserialize(
                    f->payload, f->header.payload_bytes, &response);
                const std::string expect =
                    "call-" + std::to_string(idx);
                if (!StatusOk(parse) ||
                    std::string(response.GetString(*rsp_text)) !=
                        expect) {
                    // A corrupted frame was served as an answer. Mark
                    // the call answered so the count is one per call.
                    ++result.wrong_responses;
                }
                answered[idx] = true;
                --unanswered;
                ++result.answered;
            }
        }
    }

    const rpc::RuntimeSnapshot snap = runtime.Snapshot();
    std::vector<double> lat = runtime.TakeLatencies();
    result.p50_us = harness::ExactPercentile(lat, 50) / 1000.0;
    result.p99_us = harness::ExactPercentile(lat, 99) / 1000.0;
    runtime.Shutdown();

    result.lost_calls = unanswered;
    for (uint64_t i = 0; i < calls; ++i) {
        const uint32_t n =
            execs[i].load(std::memory_order_relaxed);
        if (n > 1)
            result.duplicate_execs += n - 1;
    }
    result.crc_rejects = snap.crc_rejects;
    result.dedup_hits = snap.dedup_hits;
    result.dedup_insertions = snap.dedup_insertions;
    result.workers_crashed = snap.workers_crashed;
    result.redispatched_frames = snap.redispatched_frames;
    result.watchdog_resets = snap.watchdog_resets;
    result.offload_frame_headers = snap.offload_frame_headers;
    result.offload_dedup_probes = snap.offload_dedup_probes;
    result.offload_frame_cycles = snap.offload_frame_cycles;
    const sim::FaultStats cs = channel_injector.stats();
    result.frames_dropped = cs.frames_dropped;
    result.frames_truncated = cs.frames_truncated;
    result.frames_corrupted = cs.frames_corrupted;
    for (const auto &inj : unit_injectors) {
        const sim::FaultStats us = inj->stats();
        result.units_killed += us.units_killed;
        result.units_wedged += us.units_wedged;
    }
    return result;
}

void
PrintMode(const char *title, const ModeResult &r)
{
    std::printf(
        "%s\n"
        "  calls %llu  rounds %llu  attempts %llu  answered %llu\n"
        "  faults injected: drop %llu  truncate %llu  corrupt %llu  "
        "unit-kill %llu  unit-wedge %llu  worker-crash %llu\n"
        "  recovery: crc-rejects %llu  dedup-hits %llu  "
        "redispatched %llu  watchdog-resets %llu  reply-drops %llu\n"
        "  verdict: wrong %llu  unknown %llu  lost %llu  "
        "dup-execs %llu  (silent corruptions: %llu)\n"
        "  modeled latency: p50 %.1f us  p99 %.1f us (exact "
        "nearest-rank)\n\n",
        title, static_cast<unsigned long long>(r.calls),
        static_cast<unsigned long long>(r.rounds),
        static_cast<unsigned long long>(r.attempts),
        static_cast<unsigned long long>(r.answered),
        static_cast<unsigned long long>(r.frames_dropped),
        static_cast<unsigned long long>(r.frames_truncated),
        static_cast<unsigned long long>(r.frames_corrupted),
        static_cast<unsigned long long>(r.units_killed),
        static_cast<unsigned long long>(r.units_wedged),
        static_cast<unsigned long long>(r.workers_crashed),
        static_cast<unsigned long long>(r.crc_rejects),
        static_cast<unsigned long long>(r.dedup_hits),
        static_cast<unsigned long long>(r.redispatched_frames),
        static_cast<unsigned long long>(r.watchdog_resets),
        static_cast<unsigned long long>(r.client_reply_drops),
        static_cast<unsigned long long>(r.wrong_responses),
        static_cast<unsigned long long>(r.unknown_responses),
        static_cast<unsigned long long>(r.lost_calls),
        static_cast<unsigned long long>(r.duplicate_execs),
        static_cast<unsigned long long>(r.silent_corruptions()),
        r.p50_us, r.p99_us);
    if (r.offload)
        std::printf(
            "  offload: frame-headers %llu  dedup-probes %llu  "
            "engine-cycles %.0f\n\n",
            static_cast<unsigned long long>(r.offload_frame_headers),
            static_cast<unsigned long long>(r.offload_dedup_probes),
            r.offload_frame_cycles);
}

void
WriteModeJson(std::FILE *f, const char *name, const ModeResult &r)
{
    std::fprintf(
        f,
        "  \"%s\": {\n"
        "    \"crc_enabled\": %s,\n"
        "    \"offload\": %s,\n"
        "    \"calls\": %llu,\n"
        "    \"rounds\": %llu,\n"
        "    \"attempts\": %llu,\n"
        "    \"answered\": %llu,\n"
        "    \"wrong_responses\": %llu,\n"
        "    \"unknown_responses\": %llu,\n"
        "    \"lost_calls\": %llu,\n"
        "    \"duplicate_execs\": %llu,\n"
        "    \"silent_corruptions\": %llu,\n"
        "    \"crc_rejects\": %llu,\n"
        "    \"dedup_hits\": %llu,\n"
        "    \"dedup_insertions\": %llu,\n"
        "    \"client_reply_drops\": %llu,\n"
        "    \"workers_crashed\": %llu,\n"
        "    \"redispatched_frames\": %llu,\n"
        "    \"watchdog_resets\": %llu,\n"
        "    \"frames_dropped\": %llu,\n"
        "    \"frames_truncated\": %llu,\n"
        "    \"frames_corrupted\": %llu,\n"
        "    \"units_killed\": %llu,\n"
        "    \"units_wedged\": %llu,\n"
        "    \"offload_frame_headers\": %llu,\n"
        "    \"offload_dedup_probes\": %llu,\n"
        "    \"offload_frame_cycles\": %.0f,\n"
        "    \"p50_us\": %.3f,\n"
        "    \"p99_us\": %.3f\n"
        "  }",
        name, r.crc_enabled ? "true" : "false",
        r.offload ? "true" : "false",
        static_cast<unsigned long long>(r.calls),
        static_cast<unsigned long long>(r.rounds),
        static_cast<unsigned long long>(r.attempts),
        static_cast<unsigned long long>(r.answered),
        static_cast<unsigned long long>(r.wrong_responses),
        static_cast<unsigned long long>(r.unknown_responses),
        static_cast<unsigned long long>(r.lost_calls),
        static_cast<unsigned long long>(r.duplicate_execs),
        static_cast<unsigned long long>(r.silent_corruptions()),
        static_cast<unsigned long long>(r.crc_rejects),
        static_cast<unsigned long long>(r.dedup_hits),
        static_cast<unsigned long long>(r.dedup_insertions),
        static_cast<unsigned long long>(r.client_reply_drops),
        static_cast<unsigned long long>(r.workers_crashed),
        static_cast<unsigned long long>(r.redispatched_frames),
        static_cast<unsigned long long>(r.watchdog_resets),
        static_cast<unsigned long long>(r.frames_dropped),
        static_cast<unsigned long long>(r.frames_truncated),
        static_cast<unsigned long long>(r.frames_corrupted),
        static_cast<unsigned long long>(r.units_killed),
        static_cast<unsigned long long>(r.units_wedged),
        static_cast<unsigned long long>(r.offload_frame_headers),
        static_cast<unsigned long long>(r.offload_dedup_probes),
        r.offload_frame_cycles, r.p50_us, r.p99_us);
}

}  // namespace

int
main(int argc, char **argv)
{
    const Options opt = ParseOptions(argc, argv);

    DescriptorPool pool;
    const auto parsed = proto::ParseSchema(R"(
        message ChaosRequest { optional string text = 1; }
        message ChaosResponse { optional string text = 1; }
    )",
                                           &pool);
    PA_CHECK(parsed.ok);
    pool.Compile(proto::HasbitsMode::kSparse);
    const int req = pool.FindMessage("ChaosRequest");
    const int rsp = pool.FindMessage("ChaosResponse");

    std::printf("Chaos soak — %llu calls, seed 0x%llx, %u workers\n"
                "=================================================\n\n",
                static_cast<unsigned long long>(opt.calls),
                static_cast<unsigned long long>(opt.seed), kWorkers);

    const ModeResult with_crc =
        RunMode(pool, req, rsp, opt.seed, opt.calls, true);
    PrintMode("Mode A — frame CRCs ON (shipped configuration)",
              with_crc);

    const ModeResult without_crc =
        RunMode(pool, req, rsp, opt.seed, opt.calls, false);
    PrintMode("Mode B — frame CRCs OFF (pre-integrity stack, same "
              "fault schedule)",
              without_crc);

    const ModeResult offloaded =
        RunMode(pool, req, rsp, opt.seed, opt.calls, true, true);
    PrintMode("Mode C — frame CRCs ON + offloaded datapath (same "
              "fault schedule)",
              offloaded);

    if (!opt.json_path.empty()) {
        std::FILE *f = std::fopen(opt.json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n",
                         opt.json_path.c_str());
            return 1;
        }
        std::fprintf(f, "{\n");
        WriteModeJson(f, "crc_on", with_crc);
        std::fprintf(f, ",\n");
        WriteModeJson(f, "crc_off", without_crc);
        std::fprintf(f, ",\n");
        WriteModeJson(f, "crc_on_offload", offloaded);
        std::fprintf(f, "\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n\n", opt.json_path.c_str());
    }

    bool ok = true;
    auto require = [&ok](bool cond, const char *what) {
        if (!cond) {
            std::fprintf(stderr, "FAIL: %s\n", what);
            ok = false;
        }
    };
    require(with_crc.wrong_responses == 0,
            "mode A served a wrong response");
    require(with_crc.unknown_responses == 0,
            "mode A produced an unattributable response");
    require(with_crc.lost_calls == 0, "mode A lost a call");
    require(with_crc.duplicate_execs == 0,
            "mode A executed a call twice");
    require(with_crc.crc_rejects > 0,
            "mode A detected no corruption (faults not exercised)");
    require(with_crc.dedup_hits > 0,
            "mode A recorded no dedup hits (retry path not exercised)");
    require(with_crc.workers_crashed == 2,
            "mode A: scheduled worker crashes did not fire");
    require(with_crc.watchdog_resets > 0,
            "mode A recorded no watchdog resets");
    require(without_crc.silent_corruptions() > 0,
            "mode B served no silent corruptions (CRC-off baseline "
            "should)");
    require(offloaded.wrong_responses == 0,
            "mode C (offload) served a wrong response");
    require(offloaded.unknown_responses == 0,
            "mode C (offload) produced an unattributable response");
    require(offloaded.lost_calls == 0, "mode C (offload) lost a call");
    require(offloaded.duplicate_execs == 0,
            "mode C (offload) executed a call twice");
    require(offloaded.crc_rejects > 0,
            "mode C (offload) detected no corruption");
    require(offloaded.dedup_hits > 0,
            "mode C (offload) recorded no dedup hits");
    require(offloaded.workers_crashed == 2,
            "mode C (offload): scheduled worker crashes did not fire");
    require(offloaded.offload_frame_headers > 0 &&
                offloaded.offload_frame_cycles > 0,
            "mode C: offload frame engine saw no traffic (datapath "
            "not engaged)");

    std::printf("exactly-once under chaos: %s\n",
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
