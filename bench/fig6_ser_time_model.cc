/**
 * Figure 6: estimated fleet-wide serialization time by field type —
 * the §3.6.4 24-slice model, serialization direction.
 */
#include <cstdio>

#include "profile/cycle_estimator.h"

using namespace protoacc;
using namespace protoacc::profile;

int
main()
{
    Fleet fleet{FleetParams{}};
    ProtobufzSampler sampler(&fleet, /*seed=*/13);
    const ShapeAggregate agg = sampler.Collect(/*messages=*/6000);
    const cpu::CpuParams params = cpu::XeonParams();
    const auto slices = EstimateCycleShares(agg, params);

    std::printf(
        "Figure 6: estimated serialization time by field type "
        "(machine: %s)\n",
        params.name.c_str());
    std::printf("  %-16s %10s %12s %12s\n", "slice", "bytes%",
                "cyc/byte", "time%");
    double total_bytes = 0;
    for (const auto &s : slices)
        total_bytes += s.bytes;
    for (const auto &s : slices) {
        std::printf("  %-16s %9.2f%% %12.2f %11.2f%%\n", s.name.c_str(),
                    100.0 * s.bytes / total_bytes, s.ser_cyc_per_b,
                    s.ser_time_pct);
    }
    return 0;
}
