/**
 * Figure 4: fleet-wide field-type and bytes-field breakdowns measured
 * by the protobufz analog: (a) % of fields by type, (b) % of message
 * bytes by type, (c) % of bytes fields by payload size.
 */
#include <cstdio>
#include <string>

#include "profile/samplers.h"

using namespace protoacc;
using namespace protoacc::profile;

namespace {

std::string
RowName(int type, bool repeated)
{
    std::string name =
        proto::FieldTypeName(static_cast<proto::FieldType>(type));
    if (repeated)
        name = "repeated " + name;
    return name;
}

}  // namespace

int
main()
{
    Fleet fleet{FleetParams{}};
    ProtobufzSampler sampler(&fleet, /*seed=*/11);
    const ShapeAggregate agg = sampler.Collect(/*messages=*/20000);

    double total_fields = 0, total_bytes = 0;
    for (const auto &[key, stats] : agg.by_type) {
        total_fields += static_cast<double>(stats.count);
        total_bytes += stats.wire_bytes;
    }

    std::printf("Figure 4a/4b: field and byte shares by type\n");
    std::printf("  %-22s %10s %10s\n", "type", "fields%", "bytes%");
    double varint_fields = 0, byteslike_bytes = 0;
    for (const auto &[key, stats] : agg.by_type) {
        const auto type = static_cast<proto::FieldType>(key.first);
        const double f_pct = 100.0 * stats.count / total_fields;
        const double b_pct = 100.0 * stats.wire_bytes / total_bytes;
        std::printf("  %-22s %9.2f%% %9.2f%%\n",
                    RowName(key.first, key.second).c_str(), f_pct,
                    b_pct);
        if (proto::IsVarintType(type))
            varint_fields += f_pct;
        if (proto::IsBytesLike(type))
            byteslike_bytes += b_pct;
    }
    std::printf(
        "\n  varint-like share of fields: %.1f%% (paper: >56%%)\n",
        varint_fields);
    std::printf(
        "  bytes/string share of bytes: %.1f%% (paper: >92%%)\n",
        byteslike_bytes);

    std::printf("\n%s",
                agg.bytes_field_sizes
                    .ToTable("Figure 4c: bytes-field size distribution")
                    .c_str());
    std::printf(
        "  4097-32768 bucket: %.2f%% of fields (paper: 1.3%%); "
        "32769-inf: %.3f%% (paper: 0.06%%)\n",
        agg.bytes_field_sizes.count_pct(8),
        agg.bytes_field_sizes.count_pct(9));
    const double top = agg.bytes_field_sizes.weight(9);
    const double bottom = agg.bytes_field_sizes.weight(0);
    std::printf(
        "  top bucket holds %.1fx the bytes of the bottom (paper: >= "
        "7.2x)\n",
        bottom > 0 ? top / bottom : 0.0);
    return 0;
}
