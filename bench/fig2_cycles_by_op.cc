/**
 * Figure 2: fleet-wide C++ protobuf cycles by operation, re-derived by
 * sampling the synthetic fleet with the GWP-analog profiler and printed
 * next to the paper's published shares.
 */
#include <cstdio>

#include "profile/samplers.h"

using namespace protoacc;
using namespace protoacc::profile;

int
main()
{
    Fleet fleet{FleetParams{}};
    GwpSampler gwp(&fleet, /*seed=*/42);
    const CycleProfile profile = gwp.Collect(/*visits=*/20000);

    std::printf("Figure 2: fleet-wide C++ protobuf cycles by operation\n");
    std::printf("  %-14s %12s %12s\n", "operation", "sampled %",
                "paper %");
    for (const auto &share : PaperCyclesByOp()) {
        std::printf("  %-14s %11.2f%% %11.2f%%\n", share.op.c_str(),
                    profile.pct(share.op), share.pct);
    }

    const double accel_target =
        (profile.pct("deserialize") + profile.pct("serialize") +
         profile.pct("byte_size")) /
        100.0 * kProtobufShareOfFleetCycles * kCppShareOfProtobufCycles;
    std::printf(
        "\n  ser+deser+bytesize reachable by the accelerator: %.2f%% of "
        "fleet cycles (paper: 3.45%%)\n",
        accel_target * 100.0);
    return 0;
}
