/**
 * Figure 12: HyperProtoBench deserialization results — six synthetic
 * services generated from fitted fleet shapes (§5.2), run on
 * riscv-boom, Xeon, and riscv-boom-accel.
 */
#include "hpb/generator.h"

using namespace protoacc;
using namespace protoacc::harness;

int
main()
{
    profile::Fleet fleet{profile::FleetParams{}};
    const auto benches = hpb::BuildHyperProtoBench(fleet);
    const cpu::CpuParams boom = cpu::BoomParams();
    const cpu::CpuParams xeon = cpu::XeonParams();
    const accel::AccelConfig accel_cfg;

    std::vector<FigureRow> rows;
    for (const auto &b : benches) {
        FigureRow row;
        row.name = b.name;
        row.boom = CpuDeserialize(boom, b.workload, /*repeats=*/4).gbps;
        row.xeon = CpuDeserialize(xeon, b.workload, /*repeats=*/4).gbps;
        row.accel =
            AccelDeserialize(b.workload, accel_cfg, /*repeats=*/4).gbps;
        rows.push_back(row);
    }
    PrintFigure("Figure 12: HyperProtoBench deserialization results",
                rows);
    return 0;
}
