/**
 * Figure 11a: deserialization microbenchmarks for field types that do
 * not require in-accelerator memory allocation (varint-0..varint-10,
 * double, float), on riscv-boom, Xeon, and riscv-boom-accel.
 */
#include "harness/microbench.h"

using namespace protoacc;
using namespace protoacc::harness;

int
main()
{
    const auto benches = MakeNonAllocBenches();
    const cpu::CpuParams boom = cpu::BoomParams();
    const cpu::CpuParams xeon = cpu::XeonParams();
    const accel::AccelConfig accel_cfg;

    std::vector<FigureRow> rows;
    for (const auto &b : benches) {
        FigureRow row;
        row.name = b->name;
        row.boom = CpuDeserialize(boom, b->workload).gbps;
        row.xeon = CpuDeserialize(xeon, b->workload).gbps;
        row.accel = AccelDeserialize(b->workload, accel_cfg).gbps;
        rows.push_back(row);
    }
    PrintFigure(
        "Figure 11a: deser., field types that do not require in-accel. "
        "memory allocation",
        rows);
    return 0;
}
