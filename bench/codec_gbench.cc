/**
 * Wall-clock microbenchmarks of the software codec itself (google-
 * benchmark). These measure this library's real host performance —
 * complementary to the modeled riscv-boom/Xeon/accelerator numbers in
 * the figure benches — and guard against performance regressions in
 * the wire-format primitives and codec.
 */
#include <benchmark/benchmark.h>

#include "harness/microbench.h"
#include "proto/parser.h"
#include "proto/schema_random.h"
#include "proto/serializer.h"

using namespace protoacc;
using namespace protoacc::proto;

namespace {

void
BM_VarintEncode(benchmark::State &state)
{
    const uint64_t value = 1ull << (7 * (state.range(0) - 1) - 1);
    uint8_t buf[kMaxVarintBytes];
    for (auto _ : state) {
        benchmark::DoNotOptimize(EncodeVarint(value, buf));
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(state.iterations() * VarintSize(value));
}
BENCHMARK(BM_VarintEncode)->DenseRange(1, 10);

void
BM_VarintDecode(benchmark::State &state)
{
    const uint64_t value = 1ull << (7 * (state.range(0) - 1) - 1);
    uint8_t buf[kMaxVarintBytes];
    const int n = EncodeVarint(value, buf);
    for (auto _ : state) {
        uint64_t out;
        benchmark::DoNotOptimize(DecodeVarint(buf, buf + n, &out));
    }
    state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_VarintDecode)->DenseRange(1, 10);

void
BM_SerializeMicrobench(benchmark::State &state)
{
    const auto bench =
        harness::MakeVarintBench(static_cast<int>(state.range(0)),
                                 /*repeated=*/false);
    std::vector<uint8_t> buf(1 << 16);
    for (auto _ : state) {
        for (const auto &m : bench->workload.messages) {
            benchmark::DoNotOptimize(
                SerializeToBuffer(m, buf.data(), buf.size()));
        }
    }
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<int64_t>(bench->workload.total_wire_bytes));
}
BENCHMARK(BM_SerializeMicrobench)->Arg(1)->Arg(5)->Arg(10);

void
BM_ParseMicrobench(benchmark::State &state)
{
    const auto bench =
        harness::MakeVarintBench(static_cast<int>(state.range(0)),
                                 /*repeated=*/false);
    for (auto _ : state) {
        Arena arena;
        for (const auto &wire : bench->workload.wires) {
            Message dest = Message::Create(&arena, *bench->workload.pool,
                                           bench->workload.msg_index);
            benchmark::DoNotOptimize(
                ParseFromBuffer(wire.data(), wire.size(), &dest));
        }
    }
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<int64_t>(bench->workload.total_wire_bytes));
}
BENCHMARK(BM_ParseMicrobench)->Arg(1)->Arg(5)->Arg(10);

void
BM_ParseRandomSchema(benchmark::State &state)
{
    Rng rng(state.range(0));
    DescriptorPool pool;
    const int root = GenerateRandomSchema(&pool, &rng,
                                          SchemaGenOptions{});
    pool.Compile();
    Arena build_arena;
    Message msg = Message::Create(&build_arena, pool, root);
    PopulateRandomMessage(msg, &rng, MessageGenOptions{});
    const auto wire = Serialize(msg);

    for (auto _ : state) {
        Arena arena;
        Message dest = Message::Create(&arena, pool, root);
        benchmark::DoNotOptimize(
            ParseFromBuffer(wire.data(), wire.size(), &dest));
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_ParseRandomSchema)->Arg(3)->Arg(17);

void
BM_StringFieldCopy(benchmark::State &state)
{
    const auto bench = harness::MakeStringBench(
        "s", static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        Arena arena;
        for (const auto &wire : bench->workload.wires) {
            Message dest = Message::Create(&arena, *bench->workload.pool,
                                           bench->workload.msg_index);
            benchmark::DoNotOptimize(
                ParseFromBuffer(wire.data(), wire.size(), &dest));
        }
    }
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<int64_t>(bench->workload.total_wire_bytes));
}
BENCHMARK(BM_StringFieldCopy)->Arg(8)->Arg(512)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
