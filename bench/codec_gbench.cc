/**
 * Wall-clock microbenchmarks of the software codec itself (google-
 * benchmark). These measure this library's real host performance —
 * complementary to the modeled riscv-boom/Xeon/accelerator numbers in
 * the figure benches — and guard against performance regressions in
 * the wire-format primitives and codec.
 */
#include <benchmark/benchmark.h>

#include "harness/microbench.h"
#include "proto/codec_reference.h"
#include "proto/parser.h"
#include "proto/schema_random.h"
#include "proto/serializer.h"

using namespace protoacc;
using namespace protoacc::proto;

namespace {

/// Smallest value whose varint encoding takes exactly @p n bytes.
/// (An earlier version computed 1ull << (7*(n-1)-1), which shifted by -1
/// for n == 1 and measured an (n-1)-byte varint for every other n.)
uint64_t
VarintValueOfLength(int64_t n)
{
    return n <= 1 ? 1ull : 1ull << (7 * (n - 1));
}

void
BM_VarintEncode(benchmark::State &state)
{
    const uint64_t value = VarintValueOfLength(state.range(0));
    uint8_t buf[kMaxVarintBytes];
    for (auto _ : state) {
        benchmark::DoNotOptimize(EncodeVarint(value, buf));
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(state.iterations() * VarintSize(value));
}
BENCHMARK(BM_VarintEncode)->DenseRange(1, 10);

void
BM_VarintDecode(benchmark::State &state)
{
    const uint64_t value = VarintValueOfLength(state.range(0));
    // Decode mid-stream: leave slack after the varint, as a real parse
    // position would have, so the word-at-a-time path is representative.
    uint8_t buf[kMaxVarintBytes + 8] = {};
    const int n = EncodeVarint(value, buf);
    for (auto _ : state) {
        uint64_t out;
        benchmark::DoNotOptimize(
            DecodeVarint(buf, buf + sizeof(buf), &out));
    }
    state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_VarintDecode)->DenseRange(1, 10);

void
BM_SerializeMicrobench(benchmark::State &state)
{
    const auto bench =
        harness::MakeVarintBench(static_cast<int>(state.range(0)),
                                 /*repeated=*/false);
    std::vector<uint8_t> buf(1 << 16);
    for (auto _ : state) {
        for (const auto &m : bench->workload.messages) {
            benchmark::DoNotOptimize(
                SerializeToBuffer(m, buf.data(), buf.size()));
        }
    }
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<int64_t>(bench->workload.total_wire_bytes));
}
BENCHMARK(BM_SerializeMicrobench)->Arg(1)->Arg(5)->Arg(10);

void
BM_ParseMicrobench(benchmark::State &state)
{
    const auto bench =
        harness::MakeVarintBench(static_cast<int>(state.range(0)),
                                 /*repeated=*/false);
    for (auto _ : state) {
        Arena arena;
        for (const auto &wire : bench->workload.wires) {
            Message dest = Message::Create(&arena, *bench->workload.pool,
                                           bench->workload.msg_index);
            benchmark::DoNotOptimize(
                ParseFromBuffer(wire.data(), wire.size(), &dest));
        }
    }
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<int64_t>(bench->workload.total_wire_bytes));
}
BENCHMARK(BM_ParseMicrobench)->Arg(1)->Arg(5)->Arg(10);

// Reference-interpreter equivalents of the two microbenches above: the
// retained seed codec (codec_reference.h), measured so the table-driven
// fast path's gain is visible inside one binary.

void
BM_SerializeReference(benchmark::State &state)
{
    const auto bench =
        harness::MakeVarintBench(static_cast<int>(state.range(0)),
                                 /*repeated=*/false);
    std::vector<uint8_t> buf(1 << 16);
    for (auto _ : state) {
        for (const auto &m : bench->workload.messages) {
            benchmark::DoNotOptimize(
                ReferenceSerializeToBuffer(m, buf.data(), buf.size()));
        }
    }
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<int64_t>(bench->workload.total_wire_bytes));
}
BENCHMARK(BM_SerializeReference)->Arg(1)->Arg(5)->Arg(10);

void
BM_ParseReference(benchmark::State &state)
{
    const auto bench =
        harness::MakeVarintBench(static_cast<int>(state.range(0)),
                                 /*repeated=*/false);
    for (auto _ : state) {
        Arena arena;
        for (const auto &wire : bench->workload.wires) {
            Message dest = Message::Create(&arena, *bench->workload.pool,
                                           bench->workload.msg_index);
            benchmark::DoNotOptimize(
                ReferenceParseFromBuffer(wire.data(), wire.size(),
                                         &dest));
        }
    }
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<int64_t>(bench->workload.total_wire_bytes));
}
BENCHMARK(BM_ParseReference)->Arg(1)->Arg(5)->Arg(10);

// The serving runtime's steady-state pattern vs. the naive one: reuse
// one arena with Reset() per message (bounded reservation, no backing
// allocations after warm-up) against constructing a fresh Arena per
// message (one backing allocation each time).

void
BM_ParseArenaResetReuse(benchmark::State &state)
{
    const auto bench =
        harness::MakeVarintBench(static_cast<int>(state.range(0)),
                                 /*repeated=*/false);
    Arena arena;
    for (auto _ : state) {
        for (const auto &wire : bench->workload.wires) {
            arena.Reset();
            Message dest = Message::Create(&arena, *bench->workload.pool,
                                           bench->workload.msg_index);
            benchmark::DoNotOptimize(
                ParseFromBuffer(wire.data(), wire.size(), &dest));
        }
    }
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<int64_t>(bench->workload.total_wire_bytes));
    state.counters["arena_blocks"] =
        static_cast<double>(arena.block_count());
}
BENCHMARK(BM_ParseArenaResetReuse)->Arg(1)->Arg(5)->Arg(10);

void
BM_ParseArenaFreshEachMessage(benchmark::State &state)
{
    const auto bench =
        harness::MakeVarintBench(static_cast<int>(state.range(0)),
                                 /*repeated=*/false);
    for (auto _ : state) {
        for (const auto &wire : bench->workload.wires) {
            Arena arena;
            Message dest = Message::Create(&arena, *bench->workload.pool,
                                           bench->workload.msg_index);
            benchmark::DoNotOptimize(
                ParseFromBuffer(wire.data(), wire.size(), &dest));
        }
    }
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<int64_t>(bench->workload.total_wire_bytes));
}
BENCHMARK(BM_ParseArenaFreshEachMessage)->Arg(1)->Arg(5)->Arg(10);

void
BM_ParseRandomSchema(benchmark::State &state)
{
    Rng rng(state.range(0));
    DescriptorPool pool;
    const int root = GenerateRandomSchema(&pool, &rng,
                                          SchemaGenOptions{});
    pool.Compile();
    Arena build_arena;
    Message msg = Message::Create(&build_arena, pool, root);
    PopulateRandomMessage(msg, &rng, MessageGenOptions{});
    const auto wire = Serialize(msg);

    for (auto _ : state) {
        Arena arena;
        Message dest = Message::Create(&arena, pool, root);
        benchmark::DoNotOptimize(
            ParseFromBuffer(wire.data(), wire.size(), &dest));
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_ParseRandomSchema)->Arg(3)->Arg(17);

void
BM_StringFieldCopy(benchmark::State &state)
{
    const auto bench = harness::MakeStringBench(
        "s", static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        Arena arena;
        for (const auto &wire : bench->workload.wires) {
            Message dest = Message::Create(&arena, *bench->workload.pool,
                                           bench->workload.msg_index);
            benchmark::DoNotOptimize(
                ParseFromBuffer(wire.data(), wire.size(), &dest));
        }
    }
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<int64_t>(bench->workload.total_wire_bytes));
}
BENCHMARK(BM_StringFieldCopy)->Arg(8)->Arg(512)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
