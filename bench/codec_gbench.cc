/**
 * Wall-clock microbenchmarks of the software codec itself (google-
 * benchmark). These measure this library's real host performance —
 * complementary to the modeled riscv-boom/Xeon/accelerator numbers in
 * the figure benches — and guard against performance regressions in
 * the wire-format primitives and codec.
 *
 * Engine selection: --engine=reference|table|generated (default table)
 * runs every codec benchmark on that software engine, so per-engine
 * rows come from identical workloads in one binary. The generated
 * engine requires the build-time codecs (pa_gen_codecs) to cover the
 * benchmark pools; benchmarks whose pool has no linked codec skip with
 * an error rather than silently measuring another engine.
 */
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/microbench.h"
#include "hpb/generator.h"
#include "profile/fleet_model.h"
#include "proto/codec_generated.h"
#include "proto/codec_reference.h"
#include "proto/parser.h"
#include "proto/schema_random.h"
#include "proto/serializer.h"

using namespace protoacc;
using namespace protoacc::proto;

namespace {

SoftwareCodecEngine g_engine = SoftwareCodecEngine::kTable;

// ---------------------------------------------------------------------
// Engine dispatch. The indirection is outside the measured loops' inner
// operations only in the sense that it is one predictable branch; all
// three engines pay it equally.
// ---------------------------------------------------------------------

ParseStatus
EngineParse(const uint8_t *data, size_t len, Message *msg)
{
    switch (g_engine) {
    case SoftwareCodecEngine::kReference:
        return ReferenceParseFromBuffer(data, len, msg);
    case SoftwareCodecEngine::kGenerated:
        return GeneratedParseFromBuffer(data, len, msg);
    case SoftwareCodecEngine::kTable:
        break;
    }
    return ParseFromBuffer(data, len, msg);
}

size_t
EngineSerializeTo(const Message &msg, uint8_t *buf, size_t cap)
{
    switch (g_engine) {
    case SoftwareCodecEngine::kReference:
        return ReferenceSerializeToBuffer(msg, buf, cap);
    case SoftwareCodecEngine::kGenerated:
        return GeneratedSerializeToBuffer(msg, buf, cap);
    case SoftwareCodecEngine::kTable:
        break;
    }
    return SerializeToBuffer(msg, buf, cap);
}

/// Labels the row with the engine and, for the generated engine,
/// verifies a codec is linked for @p pool. Returns false (after
/// SkipWithError) when coverage is missing.
bool
PrepareEngine(benchmark::State &state, const DescriptorPool &pool)
{
    state.SetLabel(SoftwareCodecEngineName(g_engine));
    if (g_engine == SoftwareCodecEngine::kGenerated &&
        GetGeneratedCodec(pool) == nullptr) {
        state.SkipWithError("no generated codec linked for this pool");
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Wire-format primitives (engine-independent).
// ---------------------------------------------------------------------

/// Smallest value whose varint encoding takes exactly @p n bytes.
/// (An earlier version computed 1ull << (7*(n-1)-1), which shifted by -1
/// for n == 1 and measured an (n-1)-byte varint for every other n.)
uint64_t
VarintValueOfLength(int64_t n)
{
    return n <= 1 ? 1ull : 1ull << (7 * (n - 1));
}

void
BM_VarintEncode(benchmark::State &state)
{
    const uint64_t value = VarintValueOfLength(state.range(0));
    uint8_t buf[kMaxVarintBytes];
    for (auto _ : state) {
        benchmark::DoNotOptimize(EncodeVarint(value, buf));
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(state.iterations() * VarintSize(value));
}
BENCHMARK(BM_VarintEncode)->DenseRange(1, 10);

void
BM_VarintDecode(benchmark::State &state)
{
    const uint64_t value = VarintValueOfLength(state.range(0));
    // Decode mid-stream: leave slack after the varint, as a real parse
    // position would have, so the word-at-a-time path is representative.
    uint8_t buf[kMaxVarintBytes + 8] = {};
    const int n = EncodeVarint(value, buf);
    for (auto _ : state) {
        uint64_t out;
        benchmark::DoNotOptimize(
            DecodeVarint(buf, buf + sizeof(buf), &out));
    }
    state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_VarintDecode)->DenseRange(1, 10);

// ---------------------------------------------------------------------
// Codec microbenches, engine-selected.
// ---------------------------------------------------------------------

void
BM_SerializeMicrobench(benchmark::State &state)
{
    const auto bench =
        harness::MakeVarintBench(static_cast<int>(state.range(0)),
                                 /*repeated=*/false);
    if (!PrepareEngine(state, *bench->workload.pool))
        return;
    std::vector<uint8_t> buf(1 << 16);
    for (auto _ : state) {
        for (const auto &m : bench->workload.messages) {
            benchmark::DoNotOptimize(
                EngineSerializeTo(m, buf.data(), buf.size()));
        }
    }
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<int64_t>(bench->workload.total_wire_bytes));
}
BENCHMARK(BM_SerializeMicrobench)->Arg(1)->Arg(5)->Arg(10);

void
BM_ParseMicrobench(benchmark::State &state)
{
    const auto bench =
        harness::MakeVarintBench(static_cast<int>(state.range(0)),
                                 /*repeated=*/false);
    if (!PrepareEngine(state, *bench->workload.pool))
        return;
    for (auto _ : state) {
        Arena arena;
        for (const auto &wire : bench->workload.wires) {
            Message dest = Message::Create(&arena, *bench->workload.pool,
                                           bench->workload.msg_index);
            benchmark::DoNotOptimize(
                EngineParse(wire.data(), wire.size(), &dest));
        }
    }
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<int64_t>(bench->workload.total_wire_bytes));
}
BENCHMARK(BM_ParseMicrobench)->Arg(1)->Arg(5)->Arg(10);

// The serving runtime's steady-state pattern vs. the naive one: reuse
// one arena with Reset() per message (bounded reservation, no backing
// allocations after warm-up) against constructing a fresh Arena per
// message (one backing allocation each time).

void
BM_ParseArenaResetReuse(benchmark::State &state)
{
    const auto bench =
        harness::MakeVarintBench(static_cast<int>(state.range(0)),
                                 /*repeated=*/false);
    if (!PrepareEngine(state, *bench->workload.pool))
        return;
    Arena arena;
    for (auto _ : state) {
        for (const auto &wire : bench->workload.wires) {
            arena.Reset();
            Message dest = Message::Create(&arena, *bench->workload.pool,
                                           bench->workload.msg_index);
            benchmark::DoNotOptimize(
                EngineParse(wire.data(), wire.size(), &dest));
        }
    }
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<int64_t>(bench->workload.total_wire_bytes));
    state.counters["arena_blocks"] =
        static_cast<double>(arena.block_count());
}
BENCHMARK(BM_ParseArenaResetReuse)->Arg(1)->Arg(5)->Arg(10);

void
BM_ParseArenaFreshEachMessage(benchmark::State &state)
{
    const auto bench =
        harness::MakeVarintBench(static_cast<int>(state.range(0)),
                                 /*repeated=*/false);
    if (!PrepareEngine(state, *bench->workload.pool))
        return;
    for (auto _ : state) {
        for (const auto &wire : bench->workload.wires) {
            Arena arena;
            Message dest = Message::Create(&arena, *bench->workload.pool,
                                           bench->workload.msg_index);
            benchmark::DoNotOptimize(
                EngineParse(wire.data(), wire.size(), &dest));
        }
    }
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<int64_t>(bench->workload.total_wire_bytes));
}
BENCHMARK(BM_ParseArenaFreshEachMessage)->Arg(1)->Arg(5)->Arg(10);

void
BM_ParseRandomSchema(benchmark::State &state)
{
    Rng rng(state.range(0));
    DescriptorPool pool;
    const int root = GenerateRandomSchema(&pool, &rng,
                                          SchemaGenOptions{});
    pool.Compile();
    if (!PrepareEngine(state, pool))
        return;
    Arena build_arena;
    Message msg = Message::Create(&build_arena, pool, root);
    PopulateRandomMessage(msg, &rng, MessageGenOptions{});
    const auto wire = Serialize(msg);

    for (auto _ : state) {
        Arena arena;
        Message dest = Message::Create(&arena, pool, root);
        benchmark::DoNotOptimize(
            EngineParse(wire.data(), wire.size(), &dest));
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_ParseRandomSchema)->Arg(3)->Arg(17);

void
BM_StringFieldCopy(benchmark::State &state)
{
    const auto bench = harness::MakeStringBench(
        "s", static_cast<size_t>(state.range(0)));
    if (!PrepareEngine(state, *bench->workload.pool))
        return;
    for (auto _ : state) {
        Arena arena;
        for (const auto &wire : bench->workload.wires) {
            Message dest = Message::Create(&arena, *bench->workload.pool,
                                           bench->workload.msg_index);
            benchmark::DoNotOptimize(
                EngineParse(wire.data(), wire.size(), &dest));
        }
    }
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<int64_t>(bench->workload.total_wire_bytes));
}
BENCHMARK(BM_StringFieldCopy)->Arg(8)->Arg(512)->Arg(65536);

// Serialize-side twin of BM_StringFieldCopy, sized around the table
// writer's short-string (<= 16 B) overlap-copy fast path: 8 and 15 hit
// the fast path, 512 and 65536 take the memcpy route.
void
BM_SerializeString(benchmark::State &state)
{
    const auto bench = harness::MakeStringBench(
        "s", static_cast<size_t>(state.range(0)));
    if (!PrepareEngine(state, *bench->workload.pool))
        return;
    std::vector<uint8_t> buf(bench->workload.total_wire_bytes + 64);
    for (auto _ : state) {
        for (const auto &m : bench->workload.messages) {
            benchmark::DoNotOptimize(
                EngineSerializeTo(m, buf.data(), buf.size()));
        }
    }
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<int64_t>(bench->workload.total_wire_bytes));
}
BENCHMARK(BM_SerializeString)->Arg(8)->Arg(15)->Arg(512)->Arg(65536);

// 32 short elements per message: the per-element tag/length/copy
// sequence dominates, so the writer's <=16 B overlap-copy fast path is
// resolvable above the per-message fixed costs (unlike the singular
// string rows above, where it is noise).
void
BM_SerializeRepeatedString(benchmark::State &state)
{
    const auto bench = harness::MakeRepeatedStringBench(
        "rs", static_cast<size_t>(state.range(0)), /*count=*/32);
    if (!PrepareEngine(state, *bench->workload.pool))
        return;
    std::vector<uint8_t> buf(bench->workload.total_wire_bytes + 64);
    for (auto _ : state) {
        for (const auto &m : bench->workload.messages) {
            benchmark::DoNotOptimize(
                EngineSerializeTo(m, buf.data(), buf.size()));
        }
    }
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<int64_t>(bench->workload.total_wire_bytes));
}
BENCHMARK(BM_SerializeRepeatedString)->Arg(8)->Arg(15)->Arg(512);

// ---------------------------------------------------------------------
// HyperProtoBench wall-clock rows: the fleet-representative schemas the
// paper evaluates on (fig12/fig13 model the same workloads in cycles;
// these rows measure real host time per engine).
// ---------------------------------------------------------------------

const std::vector<hpb::HpbBenchmark> &
HpbSuite()
{
    static const auto *suite = [] {
        profile::Fleet fleet{profile::FleetParams{}};
        return new std::vector<hpb::HpbBenchmark>(
            hpb::BuildHyperProtoBench(fleet));
    }();
    return *suite;
}

void
BM_HpbParse(benchmark::State &state)
{
    const auto &bench = HpbSuite()[static_cast<size_t>(state.range(0))];
    const harness::Workload &w = bench.workload;
    if (!PrepareEngine(state, *w.pool))
        return;
    for (auto _ : state) {
        Arena arena;
        for (const auto &wire : w.wires) {
            Message dest =
                Message::Create(&arena, *w.pool, w.msg_index);
            benchmark::DoNotOptimize(
                EngineParse(wire.data(), wire.size(), &dest));
        }
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<int64_t>(w.total_wire_bytes));
}
BENCHMARK(BM_HpbParse)->DenseRange(0, 5);

void
BM_HpbSerialize(benchmark::State &state)
{
    const auto &bench = HpbSuite()[static_cast<size_t>(state.range(0))];
    const harness::Workload &w = bench.workload;
    if (!PrepareEngine(state, *w.pool))
        return;
    std::vector<uint8_t> buf(1 << 20);
    for (auto _ : state) {
        for (const auto &m : w.messages) {
            benchmark::DoNotOptimize(
                EngineSerializeTo(m, buf.data(), buf.size()));
        }
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<int64_t>(w.total_wire_bytes));
}
BENCHMARK(BM_HpbSerialize)->DenseRange(0, 5);

}  // namespace

int
main(int argc, char **argv)
{
    // Strip --engine= before google-benchmark sees the argv (it rejects
    // flags it does not know).
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--engine=", 9) == 0) {
            const std::string name = arg + 9;
            if (name == "reference") {
                g_engine = SoftwareCodecEngine::kReference;
            } else if (name == "table") {
                g_engine = SoftwareCodecEngine::kTable;
            } else if (name == "generated") {
                g_engine = SoftwareCodecEngine::kGenerated;
            } else {
                std::fprintf(stderr,
                             "codec_gbench: unknown engine '%s' "
                             "(reference|table|generated)\n",
                             name.c_str());
                return 2;
            }
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
