/**
 * §5.3: ASIC critical path and area — the analytic synthesis model's
 * block inventory, total area and achievable frequency for both units,
 * printed next to the paper's numbers (deserializer 0.133 mm^2 @
 * 1.95 GHz; serializer 0.278 mm^2 @ 1.84 GHz).
 */
#include <cstdio>

#include "asic/area_model.h"

using namespace protoacc::asic;

int
main()
{
    const ProcessParams process;
    const UnitReport deser = DeserializerReport(process);
    const UnitReport ser = SerializerReport(process);

    std::printf("Section 5.3: ASIC critical path and area (%s)\n\n",
                process.name.c_str());
    std::printf("%s\n", ToTable(deser).c_str());
    std::printf("%s\n", ToTable(ser).c_str());
    std::printf("  paper: deserializer 0.133 mm^2 @ 1.95 GHz; "
                "serializer 0.278 mm^2 @ 1.84 GHz\n");
    std::printf("  model: deserializer %.3f mm^2 @ %.2f GHz; "
                "serializer %.3f mm^2 @ %.2f GHz\n",
                deser.total_mm2, deser.freq_ghz, ser.total_mm2,
                ser.freq_ghz);
    std::printf(
        "  serializer/deserializer area ratio: %.2fx (paper: 2.09x)\n",
        ser.total_mm2 / deser.total_mm2);

    // Area scaling with the FSU count (feeds the FSU ablation).
    std::printf("\n  serializer area vs field-serializer count:\n");
    for (int k : {1, 2, 4, 8}) {
        const UnitReport r = SerializerReport(process, k);
        std::printf("    K=%d: %.3f mm^2\n", k, r.total_mm2);
    }
    return 0;
}
