/**
 * Figure 3: fleet-wide top-level message size distribution, measured
 * from real serialized messages sampled by the protobufz analog.
 */
#include <cstdio>

#include "profile/samplers.h"

using namespace protoacc;
using namespace protoacc::profile;

int
main()
{
    Fleet fleet{FleetParams{}};
    ProtobufzSampler sampler(&fleet, /*seed=*/7);
    const ShapeAggregate agg = sampler.Collect(/*messages=*/20000);

    std::printf("%s",
                agg.msg_sizes
                    .ToTable("Figure 3: fleet-wide top-level message "
                             "size distribution")
                    .c_str());

    double cum = 0;
    const double totals[] = {8, 32, 512};
    const double paper[] = {24, 56, 93};
    size_t t = 0;
    std::printf("\n  cumulative anchors (paper):\n");
    for (size_t i = 0; i < agg.msg_sizes.num_buckets() && t < 3; ++i) {
        cum += agg.msg_sizes.count_pct(i);
        if (PaperSizeBuckets()[i].hi == totals[t]) {
            std::printf("  <= %4.0f B: %5.1f%% (paper %.0f%%)\n",
                        totals[t], cum, paper[t]);
            ++t;
        }
    }
    const double top_bytes = agg.msg_sizes.weight(9);
    const double bottom_bytes = agg.msg_sizes.weight(0);
    std::printf(
        "  top bucket holds %.1fx the bytes of the bottom bucket "
        "(paper: >= 13.7x)\n",
        bottom_bytes > 0 ? top_bytes / bottom_bytes : 0.0);
    return 0;
}
