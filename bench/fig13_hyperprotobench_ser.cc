/**
 * Figure 13: HyperProtoBench serialization results — six synthetic
 * services generated from fitted fleet shapes (§5.2), run on
 * riscv-boom, Xeon, and riscv-boom-accel.
 *
 * A second table reports host wall-clock throughput of the table
 * interpreter vs the schema-specialized generated codecs on the same
 * workloads (see fig12 for the deserialization twin).
 */
#include <cstdio>

#include "hpb/generator.h"
#include "proto/codec_generated.h"

using namespace protoacc;
using namespace protoacc::harness;

int
main()
{
    profile::Fleet fleet{profile::FleetParams{}};
    const auto benches = hpb::BuildHyperProtoBench(fleet);
    const cpu::CpuParams boom = cpu::BoomParams();
    const cpu::CpuParams xeon = cpu::XeonParams();
    const accel::AccelConfig accel_cfg;

    std::vector<FigureRow> rows;
    for (const auto &b : benches) {
        FigureRow row;
        row.name = b.name;
        row.boom = CpuSerialize(boom, b.workload, /*repeats=*/4).gbps;
        row.xeon = CpuSerialize(xeon, b.workload, /*repeats=*/4).gbps;
        row.accel =
            AccelSerialize(b.workload, accel_cfg, /*repeats=*/4).gbps;
        rows.push_back(row);
    }
    const FigureRow gm =
        PrintFigure("Figure 13: HyperProtoBench serialization results",
                    rows);

    // §5.2 extrapolation: the accelerator removes the offloadable
    // ser/deser/bytesize cycles (3.45% of fleet cycles, §3.2) except
    // the 1/speedup fraction the accelerated system still spends.
    const double saved = 3.45 * (1.0 - gm.boom / gm.accel);
    std::printf(
        "\n  extrapolated fleet-cycle savings from offloading "
        "ser+deser: %.2f%% of fleet cycles (paper: >2.5%%)\n",
        saved);

    std::printf(
        "\nHost wall-clock serialization: table interpreter vs "
        "generated codecs\n");
    std::printf("  %-18s %12s %12s %10s\n", "benchmark", "table",
                "generated", "gen/table");
    std::printf("  %-18s %12s %12s %10s\n", "", "(Gbit/s)", "(Gbit/s)",
                "");
    std::vector<double> ratios;
    for (const auto &b : benches) {
        if (proto::GetGeneratedCodec(*b.workload.pool) == nullptr) {
            std::printf("  %-18s %12s\n", b.name.c_str(),
                        "(no codec linked)");
            continue;
        }
        const double table =
            HostWallSerialize(proto::SoftwareCodecEngine::kTable,
                              b.workload, /*repeats=*/4)
                .gbps;
        const double gen =
            HostWallSerialize(proto::SoftwareCodecEngine::kGenerated,
                              b.workload, /*repeats=*/4)
                .gbps;
        std::printf("  %-18s %12.3f %12.3f %9.2fx\n", b.name.c_str(),
                    table, gen, gen / table);
        ratios.push_back(gen / table);
    }
    if (!ratios.empty())
        std::printf("  %-18s %12s %12s %9.2fx\n", "geomean", "", "",
                    GeoMean(ratios));
    return 0;
}
