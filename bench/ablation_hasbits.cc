/**
 * §4.2 ablation: the sparse-hasbits co-design trade-off.
 *
 * The paper's modified library re-packs hasbits so the accelerator can
 * index them by field number; the cost is extra per-object memory
 * (one bit per field number in the defined range instead of one per
 * defined field). This bench quantifies that trade across the synthetic
 * fleet's schemas: per-object size growth, and the anchor that the wire
 * format is completely unaffected.
 */
#include <cstdio>

#include "profile/fleet_model.h"
#include "proto/schema_random.h"
#include "proto/serializer.h"

using namespace protoacc;
using namespace protoacc::profile;

namespace {

/// Total object bytes across all types of a service compiled in @p mode.
struct LayoutFootprint
{
    uint64_t object_bytes = 0;
    uint64_t hasbits_words = 0;
    uint64_t types = 0;
};

LayoutFootprint
MeasureFootprint(proto::HasbitsMode mode, uint64_t seed)
{
    FleetParams params;
    // Re-generate the same service under the requested layout mode by
    // constructing a fresh fleet (schemas are seed-deterministic).
    Fleet fleet(params, seed);
    LayoutFootprint fp;
    for (size_t s = 0; s < fleet.service_count(); ++s) {
        const auto &pool = fleet.service(s).pool();
        (void)mode;  // fleet always compiles sparse; see below
        for (size_t m = 0; m < pool.message_count(); ++m) {
            const auto &desc = pool.message(static_cast<int>(m));
            fp.object_bytes += desc.layout().object_size;
            fp.hasbits_words += desc.layout().hasbits_words;
            ++fp.types;
        }
    }
    return fp;
}

}  // namespace

int
main()
{
    std::printf("Ablation (S4.2): dense vs sparse hasbits layout\n\n");

    // Per-schema comparison on random schemas: same fields, two
    // layout modes, identical wire bytes.
    Rng rng(99);
    uint64_t dense_bytes = 0, sparse_bytes = 0;
    uint64_t dense_words = 0, sparse_words = 0;
    int schemas = 0;
    for (int i = 0; i < 200; ++i) {
        proto::SchemaGenOptions opts;
        opts.max_field_number_gap = 8;  // sparser than default
        const uint64_t seed = rng.Next();

        uint64_t obj[2] = {0, 0}, words[2] = {0, 0};
        std::vector<uint8_t> wires[2];
        for (int mode = 0; mode < 2; ++mode) {
            Rng schema_rng(seed);
            proto::DescriptorPool pool;
            const int root = proto::GenerateRandomSchema(
                &pool, &schema_rng, opts);
            pool.Compile(mode == 0 ? proto::HasbitsMode::kDense
                                   : proto::HasbitsMode::kSparse);
            for (size_t m = 0; m < pool.message_count(); ++m) {
                obj[mode] +=
                    pool.message(static_cast<int>(m)).layout()
                        .object_size;
                words[mode] += pool.message(static_cast<int>(m))
                                   .layout()
                                   .hasbits_words;
            }
            proto::Arena arena;
            proto::Message msg =
                proto::Message::Create(&arena, pool, root);
            PopulateRandomMessage(msg, &schema_rng,
                                  proto::MessageGenOptions{});
            wires[mode] = proto::Serialize(msg);
        }
        PA_CHECK(wires[0] == wires[1]);  // layout never leaks on-wire
        dense_bytes += obj[0];
        sparse_bytes += obj[1];
        dense_words += words[0];
        sparse_words += words[1];
        ++schemas;
    }

    std::printf("  %d random schemas (field-number gaps up to 8):\n",
                schemas);
    std::printf("  %-28s %14s %14s\n", "", "dense", "sparse");
    std::printf("  %-28s %14llu %14llu\n", "total object bytes",
                static_cast<unsigned long long>(dense_bytes),
                static_cast<unsigned long long>(sparse_bytes));
    std::printf("  %-28s %14llu %14llu\n", "total hasbits words",
                static_cast<unsigned long long>(dense_words),
                static_cast<unsigned long long>(sparse_words));
    std::printf("  object-size overhead of sparse: %.1f%%\n",
                100.0 * (static_cast<double>(sparse_bytes) -
                         static_cast<double>(dense_bytes)) /
                    static_cast<double>(dense_bytes));
    std::printf("  wire format identical under both layouts: verified\n");

    const LayoutFootprint fleet_fp =
        MeasureFootprint(proto::HasbitsMode::kSparse, 2021);
    std::printf(
        "\n  fleet schemas (sparse, as the accelerator requires): %llu "
        "types, %llu object bytes, %llu hasbits words\n",
        static_cast<unsigned long long>(fleet_fp.types),
        static_cast<unsigned long long>(fleet_fp.object_bytes),
        static_cast<unsigned long long>(fleet_fp.hasbits_words));
    std::printf(
        "\n  the %% overhead is the memory price of letting hardware "
        "index presence bits by field number (S4.2); S3.7's density "
        "data shows the compute win dwarfs it for 92%%+ of messages\n");
    return 0;
}
