/**
 * Fleet-scale multi-tenant SLO soak: the acceptance harness for the
 * overload-robustness stack (per-tenant token-bucket admission, the
 * retry-storm circuit breaker, DWRR weighted-fair accelerator
 * scheduling, and exactly-once retries), driven by traffic shaped from
 * the synthetic fleet model (src/profile/fleet_model).
 *
 * Topology: a two-replica cluster. Each replica is one serving runtime
 * with its own shared accelerator queue and four workers. Replica 0
 * co-locates the victim tenants with one *hostile* tenant that floods
 * at ~16x its admission contract for the whole soak; replica 1 carries
 * the same well-behaved mix without the hostile neighbor. Tenant
 * classes: gold (SLO, weight 4), silver (weight 2), bronze (weight 1,
 * best effort), hostile (weight 1, priority 0).
 *
 * Load: open-loop arrivals over a diurnal window schedule — per-window
 * rate multiplier 1 + 0.5 sin(2*pi*w/W), with a burst window at W/2
 * where silver doubles and the hostile tenant doubles again. Payload
 * sizes are drawn from real serialized fleet-model messages, so the
 * per-tenant service-time mix is heterogeneous the way production
 * schema populations are. Unit wedge/stall faults fire on every
 * worker's device (watchdog-recovered), and a seeded fraction of
 * replies is dropped client-side to force the retry + dedup-hit path.
 *
 * Verdict (exit status):
 *   - exactly-once: 0 wrong, 0 lost, 0 duplicated answers;
 *   - isolation: victim gold p99 <= 1.5x its solo baseline (the same
 *     replica-0 run with the hostile tenant removed, same seeds);
 *   - SLO: >= 99% deadline attainment for gold and silver;
 *   - engagement: bucket sheds, breaker trips, breaker sheds, dedup
 *     hits and watchdog resets all nonzero where expected;
 *   - determinism: two identical cluster runs agree on every admission
 *     and completion counter. (Modeled latencies are excluded: the
 *     accelerated cost model prices real host pointers through the
 *     TLB/cache hierarchy, so cycle counts are a function of heap
 *     layout; bit-identical latency replay is asserted by the tier-1
 *     tenant_isolation test on the layout-independent software
 *     engine.)
 *
 * Flags: --windows=N  diurnal windows per soak (default 6)
 *        --seed=S     base seed (default 0xF1EE7)
 *        --scale=F    load multiplier on every class (default 1.0)
 *        --json=PATH  result JSON (default BENCH_fleet.json; "" skips)
 */
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "harness/bench_common.h"
#include "profile/fleet_model.h"
#include "proto/schema_parser.h"
#include "rpc/server_runtime.h"
#include "sim/fault.h"

using namespace protoacc;
using proto::DescriptorPool;
using proto::Message;

namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr uint32_t kWorkers = 4;
constexpr uint16_t kMethod = 1;
constexpr double kWindowNs = 1e6;  // one diurnal window, modeled ns
constexpr uint32_t kMaxCatchupRounds = 60;

struct Options
{
    uint32_t windows = 6;
    uint64_t seed = 0xF1EE7;
    double scale = 1.0;
    std::string json_path = "BENCH_fleet.json";
};

Options
ParseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--windows=", 0) == 0)
            opt.windows = static_cast<uint32_t>(
                std::strtoul(arg.c_str() + 10, nullptr, 10));
        else if (arg.rfind("--seed=", 0) == 0)
            opt.seed = std::strtoull(arg.c_str() + 7, nullptr, 0);
        else if (arg.rfind("--scale=", 0) == 0)
            opt.scale = std::strtod(arg.c_str() + 8, nullptr);
        else if (arg.rfind("--json=", 0) == 0)
            opt.json_path = arg.substr(7);
        else {
            std::fprintf(stderr,
                         "usage: fleet_soak [--windows=N] [--seed=S] "
                         "[--scale=F] [--json=PATH]\n");
            std::exit(1);
        }
    }
    return opt;
}

/// One tenant class in a replica's serving mix.
struct ClassSpec
{
    const char *name;
    uint16_t id;
    double weight;
    uint32_t priority;
    bool slo;
    double deadline_ns;
    double bucket_rate_per_s;
    double bucket_burst;
    /// Open-loop logical calls per window at diurnal multiplier 1.
    uint32_t base_calls;
    bool hostile;
};

/// Replica 0: the victim mix plus the hostile flooder. Rates are in
/// calls/second of modeled time; one window is 1 ms, so gold's 5e5/s
/// contract refills 500 tokens per window against ~240-360 arrivals
/// (never sheds), while the hostile contract admits ~10 per window
/// against an offered ~400-800 (sheds ~97%, then trips the breaker).
/// The well-behaved load is sized so the gold tail is queue-dominated:
/// a single wedge recovery or one hostile batch's device occupancy
/// (each a few us) must stay small against the p99 the fairness ratio
/// compares, or the bound would measure fault placement luck.
const std::vector<ClassSpec> kVictimMix = {
    {"gold", 1, 4.0, 3, true, 350e3, 5e5, 64, 240, false},
    {"silver", 2, 2.0, 2, false, 500e3, 4e5, 64, 160, false},
    {"bronze", 3, 1.0, 1, false, 0, 3e5, 64, 120, false},
    {"hostile", 4, 1.0, 0, false, 0, 1e4, 8, 400, true},
};

std::vector<ClassSpec>
WithoutHostile(const std::vector<ClassSpec> &mix)
{
    std::vector<ClassSpec> out;
    for (const ClassSpec &c : mix)
        if (!c.hostile)
            out.push_back(c);
    return out;
}

/// Per-class results folded from client bookkeeping + the runtime
/// snapshot.
struct ClassResult
{
    std::string name;
    uint16_t id = 0;
    bool hostile = false;
    uint64_t offered = 0;   ///< logical calls the client created
    uint64_t accepted = 0;  ///< distinct calls Submit ever took
    uint64_t answered = 0;
    rpc::TenantCounters counters;
    double p50 = 0, p99 = 0, p999 = 0;
    /// 1 - deadline_exceeded / calls_completed (1.0 with no deadline).
    double slo_attainment = 1.0;
};

struct SoakResult
{
    std::vector<ClassResult> classes;
    uint64_t wrong = 0, lost = 0, duplicates = 0;
    uint64_t calls = 0, shed = 0, rounds = 0;
    uint64_t dedup_hits = 0, watchdog_resets = 0;
    uint64_t reply_drops = 0;
    double span_ns = 0;

    const ClassResult &
    by_name(const char *name) const
    {
        for (const ClassResult &c : classes)
            if (c.name == name)
                return c;
        std::fprintf(stderr, "no class %s\n", name);
        std::exit(1);
    }
};

/// Diurnal open-loop rate multiplier for window @p w of @p total.
double
Diurnal(uint32_t w, uint32_t total)
{
    return 1.0 + 0.5 * std::sin(2.0 * kPi * static_cast<double>(w) /
                                static_cast<double>(total));
}

/// Per-class payload lengths sampled from real serialized fleet-model
/// messages (clamped so the soak stays a latency benchmark, not a
/// parser stress test). Seeded per class id, so removing one class
/// never shifts another's draws.
std::vector<uint32_t>
SampleFleetSizes(const profile::Fleet &fleet, const ClassSpec &spec,
                 uint64_t seed)
{
    Rng rng(seed ^ (0x51D0ull * (spec.id + 1)));
    const profile::SyntheticService &svc =
        fleet.service(spec.id % fleet.service_count());
    std::vector<uint32_t> sizes;
    for (int i = 0; i < 32; ++i) {
        proto::Arena arena;
        const int type = svc.SampleTopLevelType(&rng);
        const Message msg = svc.BuildMessage(type, &arena, &rng);
        const size_t wire = proto::Serialize(msg).size();
        sizes.push_back(static_cast<uint32_t>(
            std::clamp<size_t>(wire, 8, 240)));
    }
    return sizes;
}

/// One soak of one replica. Deterministic given (mix, seed, windows,
/// scale): every arrival, payload, fault draw and reply drop comes
/// from seeded generators.
SoakResult
RunReplica(const DescriptorPool &pool, int req, int rsp,
           const profile::Fleet &fleet,
           const std::vector<ClassSpec> &mix, uint64_t seed,
           uint32_t windows, double scale)
{
    const auto &rd = pool.message(req);
    const auto &sd = pool.message(rsp);
    const auto *req_text = rd.FindFieldByName("text");
    const auto *req_tag = rd.FindFieldByName("tag");
    const auto *rsp_text = sd.FindFieldByName("text");

    // Precompute the open-loop schedule so the exec-counter array can
    // be exact: n[w][c] calls of class c arrive in window w.
    const uint32_t burst_window = windows / 2;
    std::vector<std::vector<uint32_t>> schedule(windows);
    uint64_t total_calls = 0;
    for (uint32_t w = 0; w < windows; ++w) {
        schedule[w].resize(mix.size());
        for (size_t c = 0; c < mix.size(); ++c) {
            double m = Diurnal(w, windows) * scale;
            if (w == burst_window &&
                (mix[c].hostile || mix[c].id == 2))
                m *= 2.0;  // the burst: hostile doubles, silver doubles
            schedule[w][c] = static_cast<uint32_t>(
                std::lround(mix[c].base_calls * m));
            total_calls += schedule[w][c];
        }
    }

    // Ground truth for the exactly-once verdict, bumped by the handler.
    std::unique_ptr<std::atomic<uint32_t>[]> execs(
        new std::atomic<uint32_t>[total_calls]());

    // Device faults: unit wedges and stalls on every worker's private
    // accelerator, recovered by the unit watchdog. No worker kills —
    // crash recovery has its own soak (chaos_soak).
    sim::FaultConfig unit_config;
    unit_config.unit_wedge_rate = 0.002;
    unit_config.unit_stall_rate = 0.003;
    std::vector<std::unique_ptr<sim::FaultInjector>> unit_injectors;
    for (uint32_t i = 0; i < kWorkers; ++i)
        unit_injectors.push_back(std::make_unique<sim::FaultInjector>(
            seed + 0xFA0 + i, unit_config));

    accel::SharedQueueConfig queue_config;
    queue_config.num_units = 2;
    queue_config.watchdog_budget_cycles = 2'000'000;
    accel::SharedAccelQueue shared_queue(queue_config);

    rpc::RuntimeConfig config;
    config.num_workers = kWorkers;
    config.max_batch = 8;
    config.shared_accel = &shared_queue;
    config.dedup_capacity = total_calls + 64;
    config.dwrr_quantum_cycles = 512;
    // CPU-stage priority queueing: gold frames jump hostile backlog
    // inside each worker's inbox. Safe here because the windowed
    // preload pattern makes grab order deterministic.
    config.priority_batching = true;
    config.breaker.enabled = true;
    config.breaker.window = 64;
    config.breaker.trip_shed_fraction = 0.5;
    config.breaker.cooldown = 256;
    config.breaker.probe_interval = 8;
    config.breaker.close_after_probes = 4;
    // Brownout is armed as the last-ditch tier; the thresholds sit
    // above this soak's organic pressure so the shed ladder under test
    // here stays bucket -> breaker -> DWRR. (Brownout's shed order is
    // pinned by the tier-1 tenant_isolation tests; its pressure input
    // is an EWMA of measured service time, which the device model
    // prices from real heap addresses, so a brownout that fired here
    // would make the cross-run counter-determinism check flaky.)
    config.brownout.start_wait_ns = 5e7;
    config.brownout.full_wait_ns = 1.5e8;
    for (const ClassSpec &c : mix) {
        rpc::TenantConfig t;
        t.id = c.id;
        t.weight = c.weight;
        t.priority = c.priority;
        t.slo = c.slo;
        t.deadline_ns = c.deadline_ns;
        t.bucket_rate_per_s = c.bucket_rate_per_s;
        t.bucket_burst = c.bucket_burst;
        config.tenants.push_back(t);
    }

    rpc::RpcServerRuntime runtime(
        &pool,
        [&](uint32_t worker) -> std::unique_ptr<rpc::CodecBackend> {
            accel::AccelConfig accel_config;
            // Tight watchdog: a wedged unit is detected and reset in
            // ~20us of modeled time. Every call in a batch records the
            // batch's latency, so a slow watchdog would put the whole
            // wedged batch — and everything queued behind it — at
            // recovery-dominated latencies, and the fairness ratio
            // would measure wedge placement luck instead of the
            // DWRR/admission isolation under test.
            accel_config.watchdog.budget_cycles = 10'000;
            auto accel = std::make_unique<rpc::AcceleratedBackend>(
                pool, accel_config);
            accel->SetFaultInjector(unit_injectors[worker].get());
            return std::make_unique<rpc::HybridCodecBackend>(
                std::move(accel),
                std::make_unique<rpc::SoftwareBackend>(
                    cpu::BoomParams(), pool));
        },
        config);
    runtime.RegisterMethod(
        kMethod, req, rsp,
        [&](const Message &request, Message response) {
            const std::string text(request.GetString(*req_text));
            if (text.rfind("c", 0) == 0) {
                const uint64_t idx =
                    std::strtoull(text.c_str() + 1, nullptr, 10);
                if (idx < total_calls)
                    execs[idx].fetch_add(1, std::memory_order_relaxed);
            }
            response.SetString(*rsp_text, text);
        });

    // Client state: one logical call per index. Retries reuse the call
    // id and idempotency key; a seeded fraction of first replies is
    // dropped so some retries hit calls the server already committed.
    struct LogicalCall
    {
        uint32_t class_idx = 0;
        std::string text;
        bool accepted = false;
        bool answered = false;
        /// Decided at creation, in call-index order: drawing from a
        /// shared RNG at harvest time would let the racy reply
        /// encounter order (batch boundaries depend on host thread
        /// timing) steer which tenant eats each drop, breaking the
        /// cross-run counter-determinism contract.
        bool drop_first_reply = false;
        bool reply_dropped = false;
    };
    std::vector<LogicalCall> calls;
    calls.reserve(total_calls);
    std::vector<uint32_t> outstanding;  // unaccepted, to retry
    std::vector<size_t> reply_offset(kWorkers, 0);

    std::vector<Rng> arrival_rngs;
    std::vector<std::vector<uint32_t>> pad_sizes;
    for (const ClassSpec &c : mix) {
        arrival_rngs.emplace_back(seed ^ (0xA221ull * (c.id + 1)));
        pad_sizes.push_back(SampleFleetSizes(fleet, c, seed));
    }
    Rng reply_drop_rng(seed + 0xD20);

    rpc::SoftwareBackend client(cpu::BoomParams(), pool);
    proto::Arena client_arena;

    SoakResult result;
    result.classes.resize(mix.size());
    for (size_t c = 0; c < mix.size(); ++c) {
        result.classes[c].name = mix[c].name;
        result.classes[c].id = mix[c].id;
        result.classes[c].hostile = mix[c].hostile;
    }

    const auto submit_one = [&](uint32_t idx, double arrival_ns) {
        LogicalCall &call = calls[idx];
        client_arena.Reset();
        Message request = Message::Create(&client_arena, pool, req);
        request.SetString(*req_text, call.text);
        request.SetUint32(*req_tag, idx);
        const std::vector<uint8_t> payload = client.Serialize(request);
        rpc::FrameHeader header;
        header.call_id = idx + 1;
        header.method_id = kMethod;
        header.kind = rpc::FrameKind::kRequest;
        header.payload_bytes = static_cast<uint32_t>(payload.size());
        header.tenant_id = mix[call.class_idx].id;
        header.idempotency_key = 0xF1EE'7000'0000'0000ull + idx;
        const StatusCode st =
            runtime.Submit(header, payload.data(), arrival_ns);
        if (StatusOk(st))
            call.accepted = true;
        return StatusOk(st);
    };

    const auto harvest = [&] {
        for (uint32_t w = 0; w < kWorkers; ++w) {
            const rpc::FrameBuffer &rb = runtime.replies(w);
            size_t &off = reply_offset[w];
            for (;;) {
                StatusCode err = StatusCode::kOk;
                const std::optional<rpc::Frame> f = rb.Next(&off, &err);
                if (!f.has_value()) {
                    if (err == StatusCode::kOk)
                        break;
                    continue;
                }
                if (f->header.kind != rpc::FrameKind::kResponse)
                    continue;
                const uint64_t idx = f->header.call_id - 1;
                if (idx >= calls.size() || calls[idx].answered)
                    continue;
                LogicalCall &call = calls[idx];
                if (call.drop_first_reply && !call.reply_dropped) {
                    // Modeled reply loss: the server committed this
                    // answer; the retry must dedup, not re-execute.
                    call.reply_dropped = true;
                    call.accepted = false;  // client will retry
                    ++result.reply_drops;
                    continue;
                }
                client_arena.Reset();
                Message response =
                    Message::Create(&client_arena, pool, rsp);
                const StatusCode parse = client.Deserialize(
                    f->payload, f->header.payload_bytes, &response);
                if (!StatusOk(parse) ||
                    std::string(response.GetString(*rsp_text)) !=
                        call.text)
                    ++result.wrong;
                call.answered = true;
                ++result.classes[call.class_idx].answered;
            }
        }
    };

    // ---- the soak: diurnal windows of open-loop arrivals ----
    double clock_ns = 0;
    for (uint32_t w = 0; w < windows; ++w) {
        ++result.rounds;
        // (arrival, call index), new arrivals and retries merged.
        std::vector<std::pair<double, uint32_t>> submissions;
        for (size_t c = 0; c < mix.size(); ++c) {
            for (uint32_t i = 0; i < schedule[w][c]; ++i) {
                const uint32_t idx =
                    static_cast<uint32_t>(calls.size());
                LogicalCall call;
                call.class_idx = static_cast<uint32_t>(c);
                call.drop_first_reply =
                    !mix[c].hostile && reply_drop_rng.NextBool(0.03);
                call.text =
                    "c" + std::to_string(idx) + "-" +
                    std::string(pad_sizes[c][idx % pad_sizes[c].size()],
                                'x');
                calls.push_back(std::move(call));
                ++result.classes[c].offered;
                submissions.emplace_back(
                    clock_ns +
                        arrival_rngs[c].NextDouble() * kWindowNs,
                    idx);
            }
        }
        // Retries of calls shed (or reply-dropped) in earlier windows
        // enter at the window head, slightly staggered.
        for (size_t i = 0; i < outstanding.size(); ++i)
            submissions.emplace_back(
                clock_ns + static_cast<double>(i) * 25.0,
                outstanding[i]);
        outstanding.clear();
        std::sort(submissions.begin(), submissions.end(),
                  [](const auto &a, const auto &b) {
                      return a.first != b.first ? a.first < b.first
                                                : a.second < b.second;
                  });
        // Windowed preload: the whole window's arrivals land in the
        // worker inboxes while the workers are quiescent, then one
        // Start -> Drain -> Shutdown cycle serves them. A pre-loaded
        // backlog drains in exact max_batch chunks, so batch
        // boundaries — and with them the modeled queueing that
        // dominates the p99 — do not depend on how fast the host
        // thread submitted relative to the workers.
        for (const auto &[arrival, idx] : submissions) {
            if (calls[idx].answered || calls[idx].accepted)
                continue;
            if (!submit_one(idx, arrival) &&
                !mix[calls[idx].class_idx].hostile)
                outstanding.push_back(idx);  // hostile never retries
        }
        runtime.Start();
        runtime.Drain();
        runtime.Shutdown();
        harvest();
        // Reply-dropped calls retry next window with the same key.
        for (uint32_t idx = 0; idx < calls.size(); ++idx)
            if (!calls[idx].answered && !calls[idx].accepted &&
                calls[idx].reply_dropped)
                outstanding.push_back(idx);
        std::sort(outstanding.begin(), outstanding.end());
        outstanding.erase(
            std::unique(outstanding.begin(), outstanding.end()),
            outstanding.end());
        clock_ns += kWindowNs;
    }

    // ---- catch-up: every well-behaved call must land an answer ----
    for (uint32_t round = 0; round < kMaxCatchupRounds; ++round) {
        std::vector<uint32_t> pending;
        for (uint32_t idx = 0; idx < calls.size(); ++idx)
            if (!calls[idx].answered && !calls[idx].accepted &&
                !mix[calls[idx].class_idx].hostile)
                pending.push_back(idx);
        if (pending.empty())
            break;
        ++result.rounds;
        for (size_t i = 0; i < pending.size(); ++i)
            submit_one(pending[i],
                       clock_ns + static_cast<double>(i) * 25.0);
        runtime.Start();
        runtime.Drain();
        runtime.Shutdown();
        harvest();
        clock_ns += kWindowNs;
    }

    const rpc::RuntimeSnapshot snap = runtime.Snapshot();
    const std::vector<rpc::CallRecord> records =
        runtime.TakeCallRecords();

    // ---- fold the verdict ----
    for (uint32_t idx = 0; idx < static_cast<uint32_t>(calls.size());
         ++idx) {
        const LogicalCall &call = calls[idx];
        if (call.accepted || call.reply_dropped)
            ++result.classes[call.class_idx].accepted;
        if (call.answered)
            continue;
        // A call the admission layer accepted — or a well-behaved call
        // at all — must have been answered. Hostile calls shed on
        // every attempt are the contract working, not loss.
        if (call.accepted || call.reply_dropped ||
            !mix[call.class_idx].hostile)
            ++result.lost;
    }
    for (uint64_t i = 0; i < total_calls; ++i) {
        const uint32_t n = execs[i].load(std::memory_order_relaxed);
        if (n > 1)
            result.duplicates += n - 1;
    }
    std::vector<std::vector<double>> latencies(mix.size());
    for (const rpc::CallRecord &r : records)
        for (size_t c = 0; c < mix.size(); ++c)
            if (mix[c].id == r.tenant)
                latencies[c].push_back(r.latency_ns);
    for (size_t c = 0; c < mix.size(); ++c) {
        ClassResult &cr = result.classes[c];
        cr.p50 = harness::ExactPercentile(latencies[c], 50);
        cr.p99 = harness::ExactPercentile(latencies[c], 99);
        cr.p999 = harness::ExactPercentile(latencies[c], 99.9);
    }
    for (const rpc::TenantSnapshot &t : snap.tenants)
        for (size_t c = 0; c < mix.size(); ++c) {
            if (mix[c].id != t.config.id)
                continue;
            result.classes[c].counters = t.counters;
            if (t.counters.calls_completed > 0 &&
                t.config.deadline_ns > 0)
                result.classes[c].slo_attainment =
                    1.0 -
                    static_cast<double>(t.counters.deadline_exceeded) /
                        static_cast<double>(t.counters.calls_completed);
        }
    result.calls = snap.calls;
    result.shed = snap.shed;
    result.dedup_hits = snap.dedup_hits;
    result.watchdog_resets = snap.watchdog_resets;
    result.span_ns = snap.modeled_span_ns;
    return result;
}

void
PrintReplica(const char *title, const SoakResult &r)
{
    std::printf("%s\n", title);
    std::printf("  %-8s %9s %9s %9s %9s %9s %9s %11s %11s %8s\n",
                "class", "offered", "accepted", "answered", "shed-bkt",
                "shed-brk", "trips", "p99(ns)", "p999(ns)", "slo");
    for (const ClassResult &c : r.classes)
        std::printf(
            "  %-8s %9llu %9llu %9llu %9llu %9llu %9llu %11.1f "
            "%11.1f %7.4f\n",
            c.name.c_str(), static_cast<unsigned long long>(c.offered),
            static_cast<unsigned long long>(c.accepted),
            static_cast<unsigned long long>(c.answered),
            static_cast<unsigned long long>(c.counters.shed_bucket),
            static_cast<unsigned long long>(c.counters.shed_breaker),
            static_cast<unsigned long long>(c.counters.breaker_trips),
            c.p99, c.p999, c.slo_attainment);
    std::printf(
        "  verdict: wrong %llu  lost %llu  dup %llu  "
        "dedup-hits %llu  reply-drops %llu  watchdog-resets %llu  "
        "rounds %llu\n\n",
        static_cast<unsigned long long>(r.wrong),
        static_cast<unsigned long long>(r.lost),
        static_cast<unsigned long long>(r.duplicates),
        static_cast<unsigned long long>(r.dedup_hits),
        static_cast<unsigned long long>(r.reply_drops),
        static_cast<unsigned long long>(r.watchdog_resets),
        static_cast<unsigned long long>(r.rounds));
}

/// The layout-independent counters two same-seed runs must agree on.
/// Reports every divergence to stderr — "DIVERGED" with no culprit is
/// undebuggable.
bool
CountersEqual(const SoakResult &a, const SoakResult &b)
{
    bool equal = true;
    const auto check = [&equal](const char *what, uint64_t x,
                                uint64_t y) {
        if (x == y)
            return;
        std::fprintf(stderr,
                     "  determinism: %s diverged (%llu vs %llu)\n",
                     what, static_cast<unsigned long long>(x),
                     static_cast<unsigned long long>(y));
        equal = false;
    };
    check("calls", a.calls, b.calls);
    check("shed", a.shed, b.shed);
    check("wrong", a.wrong, b.wrong);
    check("lost", a.lost, b.lost);
    check("duplicates", a.duplicates, b.duplicates);
    check("dedup_hits", a.dedup_hits, b.dedup_hits);
    check("reply_drops", a.reply_drops, b.reply_drops);
    if (a.classes.size() != b.classes.size())
        return false;
    for (size_t i = 0; i < a.classes.size(); ++i) {
        const rpc::TenantCounters &x = a.classes[i].counters;
        const rpc::TenantCounters &y = b.classes[i].counters;
        check("tenant submitted", x.submitted, y.submitted);
        check("tenant admitted", x.admitted, y.admitted);
        check("tenant shed_bucket", x.shed_bucket, y.shed_bucket);
        check("tenant shed_breaker", x.shed_breaker, y.shed_breaker);
        check("tenant shed_brownout", x.shed_brownout,
              y.shed_brownout);
        check("tenant breaker_trips", x.breaker_trips,
              y.breaker_trips);
        check("tenant calls_completed", x.calls_completed,
              y.calls_completed);
    }
    return equal;
}

void
WriteClassJson(std::FILE *f, const ClassResult &c, bool last)
{
    std::fprintf(
        f,
        "      {\"class\": \"%s\", \"tenant\": %u, "
        "\"offered\": %llu, \"accepted\": %llu, \"answered\": %llu,\n"
        "       \"admitted\": %llu, \"shed_bucket\": %llu, "
        "\"shed_breaker\": %llu, \"shed_brownout\": %llu,\n"
        "       \"breaker_trips\": %llu, \"completed\": %llu, "
        "\"p50_ns\": %.3f, \"p99_ns\": %.3f, \"p999_ns\": %.3f,\n"
        "       \"slo_attainment\": %.6f}%s\n",
        c.name.c_str(), c.id,
        static_cast<unsigned long long>(c.offered),
        static_cast<unsigned long long>(c.accepted),
        static_cast<unsigned long long>(c.answered),
        static_cast<unsigned long long>(c.counters.admitted),
        static_cast<unsigned long long>(c.counters.shed_bucket),
        static_cast<unsigned long long>(c.counters.shed_breaker),
        static_cast<unsigned long long>(c.counters.shed_brownout),
        static_cast<unsigned long long>(c.counters.breaker_trips),
        static_cast<unsigned long long>(c.counters.calls_completed),
        c.p50, c.p99, c.p999, c.slo_attainment, last ? "" : ",");
}

void
WriteReplicaJson(std::FILE *f, const char *name, const SoakResult &r)
{
    std::fprintf(f,
                 "  \"%s\": {\n"
                 "    \"wrong\": %llu, \"lost\": %llu, "
                 "\"duplicates\": %llu, \"dedup_hits\": %llu,\n"
                 "    \"reply_drops\": %llu, "
                 "\"watchdog_resets\": %llu, \"rounds\": %llu,\n"
                 "    \"tenants\": [\n",
                 name, static_cast<unsigned long long>(r.wrong),
                 static_cast<unsigned long long>(r.lost),
                 static_cast<unsigned long long>(r.duplicates),
                 static_cast<unsigned long long>(r.dedup_hits),
                 static_cast<unsigned long long>(r.reply_drops),
                 static_cast<unsigned long long>(r.watchdog_resets),
                 static_cast<unsigned long long>(r.rounds));
    for (size_t i = 0; i < r.classes.size(); ++i)
        WriteClassJson(f, r.classes[i], i + 1 == r.classes.size());
    std::fprintf(f, "    ]\n  }");
}

}  // namespace

int
main(int argc, char **argv)
{
    const Options opt = ParseOptions(argc, argv);

    DescriptorPool pool;
    const auto parsed = proto::ParseSchema(R"(
        message FleetRequest {
            optional string text = 1;
            optional uint32 tag = 2;
        }
        message FleetResponse { optional string text = 1; }
    )",
                                           &pool);
    PA_CHECK(parsed.ok);
    pool.Compile(proto::HasbitsMode::kSparse);
    const int req = pool.FindMessage("FleetRequest");
    const int rsp = pool.FindMessage("FleetResponse");

    profile::FleetParams fleet_params;
    fleet_params.num_services = 4;
    const profile::Fleet fleet(fleet_params, opt.seed);

    std::printf(
        "Fleet SLO soak — %u windows, seed 0x%llx, 2 replicas x %u "
        "workers\n"
        "==========================================================="
        "\n\n",
        opt.windows, static_cast<unsigned long long>(opt.seed),
        kWorkers);

    const std::vector<ClassSpec> clean_mix = WithoutHostile(kVictimMix);
    const SoakResult victim =
        RunReplica(pool, req, rsp, fleet, kVictimMix, opt.seed,
                   opt.windows, opt.scale);
    PrintReplica("Replica 0 — victim mix + hostile flooder", victim);
    const SoakResult clean =
        RunReplica(pool, req, rsp, fleet, clean_mix, opt.seed + 1,
                   opt.windows, opt.scale);
    PrintReplica("Replica 1 — clean mix, no hostile", clean);

    // Solo baseline: replica 0's exact run with only the hostile
    // tenant removed — identical seeds, arrivals, faults. The victim
    // gold p99 over this baseline is the noisy-neighbor cost.
    const SoakResult solo =
        RunReplica(pool, req, rsp, fleet, clean_mix, opt.seed,
                   opt.windows, opt.scale);
    const double victim_p99 = victim.by_name("gold").p99;
    const double solo_p99 = solo.by_name("gold").p99;
    const double fairness =
        solo_p99 > 0 ? victim_p99 / solo_p99 : 0;
    std::printf("Fairness: victim gold p99 %.1f ns vs solo %.1f ns "
                "(ratio %.3f, bound 1.5)\n\n",
                victim_p99, solo_p99, fairness);

    // Determinism: a second identical run of the loaded replica must
    // agree on every admission/completion counter.
    const SoakResult victim2 =
        RunReplica(pool, req, rsp, fleet, kVictimMix, opt.seed,
                   opt.windows, opt.scale);
    const bool deterministic = CountersEqual(victim, victim2);
    std::printf("Determinism: same-seed counter replay %s\n\n",
                deterministic ? "EQUAL" : "DIVERGED");

    if (!opt.json_path.empty()) {
        std::FILE *f = std::fopen(opt.json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n",
                         opt.json_path.c_str());
            return 1;
        }
        std::fprintf(f,
                     "{\n  \"seed\": %llu,\n  \"windows\": %u,\n"
                     "  \"fairness_ratio\": %.6f,\n"
                     "  \"victim_gold_p99_ns\": %.3f,\n"
                     "  \"solo_gold_p99_ns\": %.3f,\n"
                     "  \"deterministic_counters\": %s,\n",
                     static_cast<unsigned long long>(opt.seed),
                     opt.windows, fairness, victim_p99, solo_p99,
                     deterministic ? "true" : "false");
        WriteReplicaJson(f, "victim_replica", victim);
        std::fprintf(f, ",\n");
        WriteReplicaJson(f, "clean_replica", clean);
        std::fprintf(f, ",\n");
        WriteReplicaJson(f, "solo_baseline", solo);
        std::fprintf(f, "\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n\n", opt.json_path.c_str());
    }

    bool ok = true;
    auto require = [&ok](bool cond, const char *what) {
        if (!cond) {
            std::fprintf(stderr, "FAIL: %s\n", what);
            ok = false;
        }
    };
    for (const SoakResult *r : {&victim, &clean}) {
        require(r->wrong == 0, "a response failed payload verification");
        require(r->lost == 0, "a well-behaved call was never answered");
        require(r->duplicates == 0, "a call executed more than once");
        require(r->dedup_hits > 0,
                "no dedup hits (retry path not exercised)");
        require(r->watchdog_resets > 0,
                "no watchdog resets (device faults not exercised)");
    }
    const ClassResult &hostile = victim.by_name("hostile");
    require(hostile.counters.shed_bucket > 0,
            "hostile flood not shed by its token bucket");
    require(hostile.counters.breaker_trips > 0,
            "hostile retry storm never tripped the breaker");
    require(hostile.counters.shed_breaker > 0,
            "breaker tripped but shed nothing");
    require(hostile.answered > 0,
            "hostile tenant starved outright (contract admits some)");
    require(victim.by_name("gold").slo_attainment >= 0.99,
            "victim gold SLO attainment below 99%");
    require(victim.by_name("silver").slo_attainment >= 0.99,
            "victim silver SLO attainment below 99%");
    require(clean.by_name("gold").slo_attainment >= 0.99,
            "clean gold SLO attainment below 99%");
    require(fairness > 0 && fairness <= 1.5,
            "victim gold p99 exceeds 1.5x its solo baseline");
    require(deterministic,
            "same-seed runs diverged on admission counters");

    std::printf("fleet SLO soak: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
