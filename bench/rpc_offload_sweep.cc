/**
 * Full RPC offload datapath sweep: host-driven serving vs the
 * frame-engine offload path, under both interconnect placements.
 *
 * Four systems, all sharing ONE accelerator through the
 * SharedAccelQueue:
 *
 *   - host          — the PR-2 protoacc serving baseline: the host core
 *                     rings per-job RoCC doorbells and blocks on the
 *                     completion fence; framing/CRC work is NOT priced
 *                     (the historical model simply omitted it);
 *   - host-priced   — same datapath, but the per-frame header parse,
 *                     CRC verify/stamp and dedup probes are priced on
 *                     the host core's cost model (the honest cost of
 *                     host-driven serving);
 *   - offload-rocc  — the frame engine fronts the codec units: framing,
 *                     CRC and dedup probes run on-device, batches ride
 *                     the descriptor ring (one doorbell per batch) and
 *                     the frame/deser/ser stages pipeline across the
 *                     batch's calls. RoCC-integrated: no transfer cost;
 *   - offload-pcie  — same engine, PCIe-attached: MMIO doorbell, DMA
 *                     latency + bandwidth for the wire bytes (a fourth
 *                     pipeline stage), completion delivery latency.
 *
 * Reports modeled QPS, modeled p50/p99 latency, host framing cycles
 * per call (codec-model cycles minus the accelerator-unit share — with
 * a never-falling-back hybrid backend this is exactly the framing/CRC/
 * dedup residue), device frame-engine cycles per call, and the shared
 * accelerator's wait share.
 *
 * Flags: --calls=N --threads=a,b,c --batches=a,b,c --payloads=a,b,c
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "harness/bench_common.h"
#include "proto/schema_parser.h"
#include "rpc/server_runtime.h"

using namespace protoacc;
using namespace protoacc::rpc;
using proto::DescriptorPool;
using proto::Message;

namespace {

enum class System
{
    kHost,        ///< PR-2 baseline, framing unpriced
    kHostPriced,  ///< framing priced on the host model
    kOffloadRocc,
    kOffloadPcie,
};

const char *
SystemName(System s)
{
    switch (s) {
    case System::kHost: return "host";
    case System::kHostPriced: return "host-priced";
    case System::kOffloadRocc: return "offload-rocc";
    case System::kOffloadPcie: return "offload-pcie";
    }
    return "?";
}

struct Options
{
    uint32_t calls = 2048;
    std::vector<uint32_t> threads = {1, 2, 4};
    std::vector<uint32_t> batches = {1, 8, 32};
    std::vector<uint32_t> payloads = {16, 64, 256, 1024, 4096};
};

std::vector<uint32_t>
ParseList(const char *s)
{
    std::vector<uint32_t> out;
    for (const char *p = s; *p != '\0';) {
        out.push_back(static_cast<uint32_t>(std::strtoul(p, nullptr, 10)));
        const char *comma = std::strchr(p, ',');
        if (comma == nullptr)
            break;
        p = comma + 1;
    }
    return out;
}

Options
ParseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--calls=", 0) == 0)
            opt.calls = static_cast<uint32_t>(
                std::strtoul(arg.c_str() + 8, nullptr, 10));
        else if (arg.rfind("--threads=", 0) == 0)
            opt.threads = ParseList(arg.c_str() + 10);
        else if (arg.rfind("--batches=", 0) == 0)
            opt.batches = ParseList(arg.c_str() + 10);
        else if (arg.rfind("--payloads=", 0) == 0)
            opt.payloads = ParseList(arg.c_str() + 11);
        else {
            std::fprintf(stderr,
                         "usage: rpc_offload_sweep [--calls=N] "
                         "[--threads=a,b,c] [--batches=a,b,c] "
                         "[--payloads=a,b,c]\n");
            std::exit(1);
        }
    }
    return opt;
}

struct RunResult
{
    double modeled_qps = 0;
    double p50_us = 0;
    double p99_us = 0;
    /// Framing/CRC/dedup cycles priced on the host model, per call.
    double host_framing_pc = 0;
    /// Device frame-engine cycles per call.
    double engine_pc = 0;
    double accel_wait_share = 0;
    /// Interconnect cycles (doorbell + DMA + completion) per call.
    double transfer_pc = 0;
};

RunResult
RunOne(const DescriptorPool &pool, int req, int rsp, System system,
       uint32_t workers, uint32_t batch, uint32_t payload,
       bool dedup, uint32_t calls)
{
    accel::SharedQueueConfig queue_config;
    if (system == System::kOffloadPcie)
        queue_config.transfer.placement = accel::Placement::kPCIe;
    accel::SharedAccelQueue accel_queue(queue_config);

    RuntimeConfig config;
    config.num_workers = workers;
    config.max_batch = batch;
    config.record_replies = false;
    config.shared_accel = &accel_queue;
    config.charge_ingress_framing = system != System::kHost;
    config.offload.enabled = system == System::kOffloadRocc ||
                             system == System::kOffloadPcie;
    if (dedup)
        config.dedup_capacity = calls + 1;

    RpcServerRuntime::BackendFactory factory;
    if (system == System::kHost) {
        // The PR-2 configuration, bit for bit: pure accelerated
        // backend, no host-side framing charges.
        factory = [&pool](uint32_t) {
            return std::make_unique<AcceleratedBackend>(pool);
        };
    } else {
        // Hybrid backend: codec ops run on the accelerator; the
        // software half's cost model is the host cost sink, so any
        // cycles it accrues are exactly the framing/CRC/dedup charges.
        factory = [&pool](uint32_t) {
            return std::make_unique<HybridCodecBackend>(
                std::make_unique<AcceleratedBackend>(pool),
                std::make_unique<SoftwareBackend>(cpu::BoomParams(),
                                                  pool));
        };
    }

    RpcServerRuntime runtime(&pool, factory, config);
    const auto &rd = pool.message(req);
    const auto &sd = pool.message(rsp);
    runtime.RegisterMethod(
        1, req, rsp,
        [&rd, &sd](const Message &request, Message response) {
            response.SetString(
                *sd.FindFieldByName("text"),
                request.GetString(*rd.FindFieldByName("text")));
        });

    proto::Arena arena;
    Message request = Message::Create(&arena, pool, req);
    request.SetString(*rd.FindFieldByName("text"),
                      std::string(payload, 'x'));
    const std::vector<uint8_t> wire = proto::Serialize(request, nullptr);
    FrameHeader header;
    header.method_id = 1;
    header.kind = FrameKind::kRequest;
    header.payload_bytes = static_cast<uint32_t>(wire.size());

    // Pre-load the backlog before Start(): deterministic batch
    // boundaries, modeled numbers independent of host scheduling.
    for (uint32_t i = 1; i <= calls; ++i) {
        header.call_id = i;
        if (dedup)
            header.idempotency_key = 0xB000'0000ull + i;
        runtime.Submit(header, wire.data());
    }
    runtime.Start();
    runtime.Drain();

    const RuntimeSnapshot snap = runtime.Snapshot();
    PA_CHECK_EQ(snap.calls, calls);
    PA_CHECK_EQ(snap.failures, 0u);
    PA_CHECK_EQ(snap.fallback_accel_fault, 0u);
    PA_CHECK_EQ(snap.fallback_forced, 0u);
    std::vector<double> lat = runtime.TakeLatencies();

    RunResult r;
    r.modeled_qps = snap.modeled_qps();
    r.p50_us = harness::ExactPercentile(lat, 50) / 1000.0;
    r.p99_us = harness::ExactPercentile(lat, 99) / 1000.0;
    double host_framing = 0;
    for (const WorkerSnapshot &ws : snap.workers)
        host_framing += ws.codec_cycles - ws.accel_codec_cycles;
    r.host_framing_pc = host_framing / calls;
    r.engine_pc = snap.offload_frame_cycles / calls;
    const auto qs = accel_queue.stats();
    if (qs.total_wait_cycles + qs.total_service_cycles > 0)
        r.accel_wait_share =
            static_cast<double>(qs.total_wait_cycles) /
            static_cast<double>(qs.total_wait_cycles +
                                qs.total_service_cycles);
    r.transfer_pc = static_cast<double>(qs.transfer_cycles) / calls;
    return r;
}

void
PrintRow(System system, uint32_t workers, uint32_t batch,
         uint32_t payload, const RunResult &r)
{
    std::printf("  %-12s %7u %6u %8u %14.0f %9.2f %9.2f %11.1f "
                "%11.1f %10.1f%% %9.1f\n",
                SystemName(system), workers, batch, payload,
                r.modeled_qps, r.p50_us, r.p99_us, r.host_framing_pc,
                r.engine_pc, 100.0 * r.accel_wait_share, r.transfer_pc);
}

void
PrintHeader()
{
    std::printf("  %-12s %7s %6s %8s %14s %9s %9s %11s %11s %11s %9s\n",
                "system", "workers", "batch", "payload", "modeled-QPS",
                "p50(us)", "p99(us)", "host-frm/c", "engine/c",
                "accel-wait", "xfer/c");
}

}  // namespace

int
main(int argc, char **argv)
{
    const Options opt = ParseOptions(argc, argv);

    DescriptorPool pool;
    const auto parsed = ParseSchema(R"(
        message EchoRequest { optional string text = 1; }
        message EchoResponse { optional string text = 1; }
    )",
                                    &pool);
    PA_CHECK(parsed.ok);
    pool.Compile(proto::HasbitsMode::kSparse);
    const int req = pool.FindMessage("EchoRequest");
    const int rsp = pool.FindMessage("EchoResponse");

    std::printf(
        "RPC offload datapath sweep: %u echo calls, one shared "
        "accelerator\n"
        "  host-frm/c = framing/CRC/dedup cycles priced on the host "
        "model per call ('host' leaves them unpriced, the historical "
        "under-model); engine/c = device frame-engine cycles per call; "
        "xfer/c = interconnect cycles (doorbell+DMA+completion) per "
        "call\n\n",
        opt.calls);

    std::printf("== contention sweep (64-byte payload, no dedup: the "
                "PR-2 comparison grid) ==\n");
    PrintHeader();
    for (const System system :
         {System::kHost, System::kHostPriced, System::kOffloadRocc,
          System::kOffloadPcie}) {
        for (const uint32_t workers : opt.threads)
            for (const uint32_t batch : opt.batches)
                PrintRow(system, workers, batch, 64,
                         RunOne(pool, req, rsp, system, workers, batch,
                                64, /*dedup=*/false, opt.calls));
        std::printf("\n");
    }

    std::printf("== placement sweep (4 workers, batch 8, exactly-once "
                "dedup keys on every call) ==\n");
    PrintHeader();
    for (const System system : {System::kHostPriced,
                                System::kOffloadRocc,
                                System::kOffloadPcie}) {
        for (const uint32_t payload : opt.payloads)
            PrintRow(system, 4, 8, payload,
                     RunOne(pool, req, rsp, system, 4, 8, payload,
                            /*dedup=*/true, opt.calls));
        std::printf("\n");
    }

    std::printf(
        "  the offload rows keep the host framing column at zero: "
        "header parse, CRC verify/stamp and dedup probes all execute "
        "on the frame engine. RoCC pays one 2-cycle doorbell per "
        "batch; PCIe adds MMIO doorbell + DMA (latency + bytes/BW, a "
        "pipeline stage) + completion delivery, so its penalty is "
        "fixed-cost dominated at small payloads and fades as the codec "
        "stages dominate at large ones\n");
    return 0;
}
