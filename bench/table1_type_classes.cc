/**
 * Table 1: classification of protobuf field types into
 * performance-similar classes, validated against the wire-format
 * implementation and printed in the paper's layout.
 */
#include <cstdio>
#include <initializer_list>

#include "common/check.h"
#include "proto/wire_format.h"

using namespace protoacc::proto;

int
main()
{
    std::printf("Table 1: classification of protobuf field types\n");
    std::printf("  %-14s %-44s %s\n", "class", "protobuf types",
                "sizes (bytes)");
    std::printf("  %-14s %-44s %s\n", "bytes-like", "bytes, string",
                "see Fig. 4c buckets");
    std::printf("  %-14s %-44s %s\n", "varint-like",
                "{s,u}int{64,32}, int{64,32}, enum, bool", "1-10, by 1");
    std::printf("  %-14s %-44s %s\n", "float-like", "float", "4");
    std::printf("  %-14s %-44s %s\n", "double-like", "double", "8");
    std::printf("  %-14s %-44s %s\n", "fixed32-like", "fixed32, sfixed32",
                "4");
    std::printf("  %-14s %-44s %s\n", "fixed64-like", "fixed64, sfixed64",
                "8");

    // Validate the classification against the implementation.
    for (FieldType t : {FieldType::kSint64, FieldType::kSint32,
                        FieldType::kUint64, FieldType::kUint32,
                        FieldType::kInt64, FieldType::kInt32,
                        FieldType::kEnum, FieldType::kBool}) {
        PA_CHECK(IsVarintType(t));
    }
    PA_CHECK(IsBytesLike(FieldType::kBytes));
    PA_CHECK(IsBytesLike(FieldType::kString));
    for (FieldType t : {FieldType::kFloat, FieldType::kFixed32,
                        FieldType::kSfixed32}) {
        PA_CHECK(WireTypeForField(t) == WireType::kFixed32);
    }
    for (FieldType t : {FieldType::kDouble, FieldType::kFixed64,
                        FieldType::kSfixed64}) {
        PA_CHECK(WireTypeForField(t) == WireType::kFixed64);
    }
    // Varint sizes really span 1..10 by 1.
    for (int n = 1; n <= 10; ++n) {
        const uint64_t v = n == 1 ? 0 : 1ull << (7 * (n - 1));
        PA_CHECK_EQ(VarintSize(v), n);
    }
    std::printf("\n  classification validated against wire_format.h\n");
    return 0;
}
