/**
 * Schema-skew soak: mixed-version schemas must never misparse, and a
 * serving fleet must survive a live descriptor-table upgrade.
 *
 * Phase 1 — cross-version differential sweep. Every ordered
 * (encode, decode) pair of the three skew-pool versions
 * (tools/gen_pools.h BuildSkewPool: fields added, removed and widened
 * across v0 -> v1 -> v2) runs >= --wires random payloads through all
 * four engines — reference, table, generated, accelerator model. The
 * contract: identical verdicts, equal in-memory messages, re-serialized
 * bytes identical across engines, and (for every pair except the lossy
 * widened-field narrowing v1 -> v2) byte-identical to the original
 * wire — unknown fields preserved, never dropped, never misparsed.
 *
 * Phase 2 — mixed-version serving soak. Clients on v_{N-1}, v_N and
 * v_{N+1} drive a v_N server (closed loop, stable idempotency keys)
 * while the shared accelerator's descriptor tables are hot-swapped
 * under live traffic (epoch-fenced BeginTableSwap), including one swap
 * with an injected mid-load unit kill (quarantine fail-closed) and the
 * subsequent RetryTableLoad reintegration. v_{N+1} clients are
 * rejected with structured kFailedPrecondition until the operator
 * registers the new version mid-soak; after that their retries serve.
 * Invariants: zero wrong / lost / duplicated calls, zero silent
 * misparses, stale_epoch_dispatches == 0 (the epoch fence held), and a
 * same-seed replay reproduces every logical counter bit-identically.
 *
 * Flags: --wires=N  phase-1 inputs across all 9 pairs (default 100000)
 *        --calls=N  phase-2 logical calls per run (default 1200)
 *        --seed=S   base seed (default 0x5EED)
 *        --json=PATH write both phases' counters as JSON
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "accel/accelerator.h"
#include "gen_pools.h"
#include "harness/bench_common.h"
#include "proto/codec_generated.h"
#include "proto/codec_reference.h"
#include "proto/parser.h"
#include "proto/schema_random.h"
#include "proto/serializer.h"
#include "rpc/schema_registry.h"
#include "rpc/server_runtime.h"
#include "sim/fault.h"

using namespace protoacc;
using proto::DescriptorPool;
using proto::Message;

namespace {

struct Options
{
    uint64_t wires = 100'000;
    uint64_t calls = 1'200;
    uint64_t seed = 0x5EED;
    std::string json_path;
};

Options
ParseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--wires=", 0) == 0)
            opt.wires = std::strtoull(arg.c_str() + 8, nullptr, 10);
        else if (arg.rfind("--calls=", 0) == 0)
            opt.calls = std::strtoull(arg.c_str() + 8, nullptr, 10);
        else if (arg.rfind("--seed=", 0) == 0)
            opt.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
        else if (arg.rfind("--json=", 0) == 0)
            opt.json_path = arg.substr(7);
        else {
            std::fprintf(stderr,
                         "usage: skew_soak [--wires=N] [--calls=N] "
                         "[--seed=S] [--json=PATH]\n");
            std::exit(1);
        }
    }
    return opt;
}

// ---------------------------------------------------------------------
// Phase 1: cross-version quad-engine differential sweep
// ---------------------------------------------------------------------

/// One skew-pool version wired to all four engines as the decoder.
struct EngineRig
{
    explicit EngineRig(int version)
        : np(genpools::BuildSkewPool(version)),
          memory(sim::MemorySystemConfig{}),
          accel(&memory, accel::AccelConfig{}),
          adts(std::make_unique<accel::AdtBuilder>(*np.pool, &adt_arena))
    {
        accel.DeserAssignArena(&deser_arena);
        accel.SerAssignArena(&ser_arena);
    }

    genpools::NamedPool np;
    proto::Arena adt_arena;
    proto::Arena deser_arena;
    accel::SerArena ser_arena;
    sim::MemorySystem memory;
    accel::ProtoAccelerator accel;
    std::unique_ptr<accel::AdtBuilder> adts;
    uint32_t ser_jobs = 0;
};

struct SweepResult
{
    uint64_t wires = 0;
    uint64_t verdict_disagreements = 0;
    uint64_t message_mismatches = 0;
    uint64_t engine_byte_mismatches = 0;
    uint64_t roundtrip_mismatches = 0;
    std::string first_failure;

    uint64_t
    total_mismatches() const
    {
        return verdict_disagreements + message_mismatches +
               engine_byte_mismatches + roundtrip_mismatches;
    }
};

void
NoteFailure(SweepResult *r, uint64_t SweepResult::*counter,
            const std::string &ctx)
{
    ++(r->*counter);
    if (r->first_failure.empty())
        r->first_failure = ctx;
}

/// Parse @p wire with all four engines of @p rig and re-serialize;
/// count every cross-engine disagreement into @p result. When
/// @p expect_identity, the re-serialized bytes must equal @p wire.
void
QuadCheck(EngineRig *rig, const std::vector<uint8_t> &wire,
          bool expect_identity, const std::string &ctx,
          SweepResult *result)
{
    const DescriptorPool &pool = *rig->np.pool;
    const int root = rig->np.root;
    proto::Arena arena;
    ++result->wires;

    Message ref_dest = Message::Create(&arena, pool, root);
    Message tab_dest = Message::Create(&arena, pool, root);
    Message gen_dest = Message::Create(&arena, pool, root);
    Message acc_dest = Message::Create(&arena, pool, root);

    const StatusCode ref_st = proto::ToStatusCode(
        proto::ReferenceParseFromBuffer(wire.data(), wire.size(),
                                        &ref_dest, nullptr, nullptr));
    const StatusCode tab_st = proto::ToStatusCode(proto::ParseFromBuffer(
        wire.data(), wire.size(), &tab_dest, nullptr, nullptr));
    const StatusCode gen_st = proto::ToStatusCode(
        proto::GeneratedParseFromBuffer(wire.data(), wire.size(),
                                        &gen_dest, nullptr, nullptr));
    rig->accel.EnqueueDeser(accel::MakeDeserJob(*rig->adts, root, pool,
                                                acc_dest.raw(),
                                                wire.data(),
                                                wire.size()));
    uint64_t cycles = 0;
    const StatusCode acc_st =
        accel::ToStatusCode(rig->accel.BlockForDeserCompletion(&cycles));

    if (StatusOk(ref_st) != StatusOk(tab_st) ||
        StatusOk(tab_st) != StatusOk(gen_st) ||
        StatusOk(tab_st) != StatusOk(acc_st)) {
        NoteFailure(result, &SweepResult::verdict_disagreements, ctx);
        return;
    }
    if (!StatusOk(tab_st))
        return;  // agreed rejection: nothing further to compare

    if (!MessagesEqual(ref_dest, tab_dest) ||
        !MessagesEqual(tab_dest, gen_dest) ||
        !MessagesEqual(tab_dest, acc_dest))
        NoteFailure(result, &SweepResult::message_mismatches, ctx);

    const std::vector<uint8_t> ref_out =
        proto::ReferenceSerialize(ref_dest, nullptr);
    const std::vector<uint8_t> tab_out =
        proto::Serialize(tab_dest, nullptr);
    const std::vector<uint8_t> gen_out =
        proto::GeneratedSerialize(gen_dest, nullptr);
    rig->accel.EnqueueSer(
        accel::MakeSerJob(*rig->adts, root, pool, acc_dest.raw()));
    if (rig->accel.BlockForSerCompletion(&cycles) !=
        accel::AccelStatus::kOk) {
        NoteFailure(result, &SweepResult::verdict_disagreements, ctx);
        return;
    }
    const auto &acc_raw = rig->ser_arena.output(rig->ser_jobs++);
    const std::vector<uint8_t> acc_out(acc_raw.data,
                                       acc_raw.data + acc_raw.size);

    if (ref_out != tab_out || gen_out != tab_out || acc_out != tab_out)
        NoteFailure(result, &SweepResult::engine_byte_mismatches, ctx);
    if (expect_identity && tab_out != wire)
        NoteFailure(result, &SweepResult::roundtrip_mismatches, ctx);
}

SweepResult
RunSweep(uint64_t total_wires, uint64_t seed)
{
    SweepResult result;
    const uint64_t per_pair = (total_wires + 8) / 9;
    for (int decode = 0; decode <= 2; ++decode) {
        EngineRig rig(decode);
        for (int encode = 0; encode <= 2; ++encode) {
            genpools::NamedPool enc = genpools::BuildSkewPool(encode);
            // The only lossy pair: v1's int64 count read as v2's int32
            // (agreement required, wire identity not).
            const bool identity = !(encode == 1 && decode == 2);
            for (uint64_t s = 0; s < per_pair; ++s) {
                Rng rng(seed + 1'000'003u * encode +
                        100'000'007u * decode + s);
                proto::Arena arena;
                Message src =
                    Message::Create(&arena, *enc.pool, enc.root);
                proto::PopulateRandomMessage(src, &rng,
                                             proto::MessageGenOptions{});
                const std::vector<uint8_t> wire =
                    proto::Serialize(src, nullptr);
                const std::string ctx =
                    "encode v" + std::to_string(encode) + " decode v" +
                    std::to_string(decode) + " seed " +
                    std::to_string(s);
                QuadCheck(&rig, wire, identity, ctx, &result);
                rig.deser_arena.Reset();
            }
        }
    }
    return result;
}

// ---------------------------------------------------------------------
// Phase 2: mixed-version serving soak with live table swaps
// ---------------------------------------------------------------------

constexpr uint32_t kWorkers = 4;
constexpr uint16_t kMethod = 1;
constexpr uint32_t kMaxRounds = 60;
constexpr uint32_t kUnits = 3;
/// Descriptor-table image size streamed per unit at each swap (a
/// three-version Skew family compiles to a few KiB of field tables).
constexpr uint64_t kTableBytes = 4096;
/// Round after which the operator registers v_{N+1}: earlier rounds
/// reject its canary clients with kFailedPrecondition.
constexpr uint32_t kRegisterRound = 2;

struct SoakResult
{
    uint64_t calls = 0;
    uint64_t rounds = 0;
    uint64_t attempts = 0;
    uint64_t answered = 0;
    uint64_t wrong_responses = 0;
    uint64_t unknown_responses = 0;
    uint64_t lost_calls = 0;
    uint64_t duplicate_execs = 0;
    uint64_t schema_reject_replies = 0;
    uint64_t other_error_replies = 0;
    uint64_t client_reply_drops = 0;
    uint64_t dedup_hits = 0;
    uint64_t dedup_insertions = 0;
    uint64_t schema_rejects = 0;  ///< server-side snapshot counter
    uint64_t table_swaps = 0;
    uint64_t table_loads_committed = 0;
    uint64_t table_loads_aborted = 0;
    uint64_t table_load_cycles = 0;
    uint64_t stale_epoch_dispatches = 0;
    uint64_t retry_reintegrations = 0;
    uint64_t final_epoch = 0;
    uint32_t available_units = 0;
    /// FNV-1a over the per-key execution counts: the exactly-once
    /// ground truth, folded into the replay fingerprint.
    uint64_t exec_digest = 0;
    double p50_us = 0;
    double p99_us = 0;

    /// Every logical counter a same-seed replay must reproduce exactly
    /// (modeled latency percentiles excluded: batch formation depends
    /// on wall-clock worker wakeups, the logical outcome does not).
    auto
    Fingerprint() const
    {
        return std::make_tuple(
            calls, rounds, attempts, answered, wrong_responses,
            unknown_responses, lost_calls, duplicate_execs,
            schema_reject_replies, other_error_replies,
            client_reply_drops, dedup_hits, dedup_insertions,
            schema_rejects, table_swaps, table_loads_committed,
            table_loads_aborted, table_load_cycles,
            stale_epoch_dispatches, retry_reintegrations, final_epoch,
            available_units, exec_digest);
    }
};

SoakResult
RunServingSoak(uint64_t seed, uint64_t calls)
{
    SoakResult result;
    result.calls = calls;

    // Three live schema versions; the server speaks v1 (= v_N).
    std::vector<genpools::NamedPool> pools;
    for (int v = 0; v <= 2; ++v)
        pools.push_back(genpools::BuildSkewPool(v));
    uint64_t fp[3];
    for (int v = 0; v <= 2; ++v)
        fp[v] = proto::SchemaFingerprint(*pools[v].pool);

    rpc::SchemaRegistry registry;
    registry.Register(*pools[0].pool, "skew-v0");
    registry.Register(*pools[1].pool, "skew-v1");
    // fp[2] is deliberately NOT registered yet: the canary version
    // arrives on the wire before the operator pushes it.

    const DescriptorPool &server_pool = *pools[1].pool;
    const int root = pools[1].root;
    const auto &sd = server_pool.message(root);
    const auto *f_id = sd.FindFieldByName("id");
    const auto *f_name = sd.FindFieldByName("name");

    std::unique_ptr<std::atomic<uint32_t>[]> execs(
        new std::atomic<uint32_t>[calls]());

    accel::SharedQueueConfig queue_config;
    queue_config.num_units = kUnits;
    accel::SharedAccelQueue shared_queue(queue_config);

    // The mid-load kill at the second swap: a rate-1 injector attached
    // to one unit only while that swap streams.
    sim::FaultConfig kill_config;
    kill_config.unit_kill_rate = 1.0;
    sim::FaultInjector kill_injector(seed + 13, kill_config);

    rpc::RuntimeConfig runtime_config;
    runtime_config.num_workers = kWorkers;
    runtime_config.max_batch = 8;
    runtime_config.shared_accel = &shared_queue;
    runtime_config.dedup_capacity = calls + 16;
    runtime_config.schema_registry = &registry;
    runtime_config.schema_fingerprint = fp[1];

    rpc::RpcServerRuntime runtime(
        &server_pool,
        [&](uint32_t) -> std::unique_ptr<rpc::CodecBackend> {
            return std::make_unique<rpc::HybridCodecBackend>(
                std::make_unique<rpc::AcceleratedBackend>(
                    server_pool, accel::AccelConfig{}),
                std::make_unique<rpc::SoftwareBackend>(
                    cpu::BoomParams(), server_pool));
        },
        runtime_config);

    runtime.RegisterMethod(
        kMethod, root, root,
        [&](const Message &request, Message response) {
            const std::string text(request.GetString(*f_name));
            if (text.rfind("call-", 0) == 0) {
                const uint64_t idx =
                    std::strtoull(text.c_str() + 5, nullptr, 10);
                if (idx < calls)
                    execs[idx].fetch_add(1, std::memory_order_relaxed);
            }
            response.SetUint64(*f_id, request.GetUint64(*f_id));
            response.SetString(*f_name, text);
        });
    runtime.Start();

    // Per-version clients: each serializes requests and parses replies
    // with its OWN schema — the server's reply may carry fields the
    // older client treats as unknown, and vice versa.
    std::vector<std::unique_ptr<rpc::SoftwareBackend>> clients;
    for (int v = 0; v <= 2; ++v)
        clients.push_back(std::make_unique<rpc::SoftwareBackend>(
            cpu::BoomParams(), *pools[v].pool));

    proto::Arena client_arena;
    Rng reply_drop_rng(seed + 9);
    std::vector<bool> answered(calls, false);
    std::vector<bool> reply_dropped(calls, false);
    std::vector<size_t> reply_offset(kWorkers, 0);
    uint64_t unanswered = calls;

    for (uint32_t round = 0; round < kMaxRounds && unanswered > 0;
         ++round) {
        ++result.rounds;

        // Live-upgrade schedule, all at round boundaries (the runtime
        // is quiescent between Drain and the next Submit):
        //   round 1: clean table swap across the fleet;
        //   round 2: the operator registers v_{N+1} — canary retries
        //            start serving;
        //   round 3: swap with a mid-load kill on one unit (fenced,
        //            fail-closed), then RetryTableLoad reintegrates it.
        if (round == 1 || round == 3) {
            if (round == 3)
                shared_queue.SetUnitFaultInjector(kUnits - 1,
                                                  &kill_injector);
            const auto swap = shared_queue.BeginTableSwap(
                shared_queue.stats().busy_until_cycle, kTableBytes);
            if (round == 3) {
                shared_queue.SetUnitFaultInjector(kUnits - 1, nullptr);
                if (swap.loads_aborted > 0 &&
                    shared_queue.RetryTableLoad(
                        kUnits - 1, shared_queue.stats().busy_until_cycle,
                        kTableBytes)) {
                    shared_queue.SetUnitFenced(kUnits - 1, false);
                    ++result.retry_reintegrations;
                }
            }
        }
        if (round == kRegisterRound)
            registry.Register(*pools[2].pool, "skew-v2");

        for (uint64_t i = 0; i < calls; ++i) {
            if (answered[i])
                continue;
            ++result.attempts;
            const int v = static_cast<int>(i % 3);
            const genpools::NamedPool &cp = pools[v];
            const auto &cd = cp.pool->message(cp.root);
            client_arena.Reset();
            Message request =
                Message::Create(&client_arena, *cp.pool, cp.root);
            request.SetUint64(*cd.FindFieldByName("id"), i);
            request.SetString(*cd.FindFieldByName("name"),
                              "call-" + std::to_string(i));
            // Version-specific fields ride along so the server-side
            // parse crosses the skew: v1/v2 payloads carry fields the
            // v1 server knows (flags) plus, for v2, one it must
            // preserve as unknown (note) and one it reads narrowed
            // (count int32 vs int64).
            if (v >= 1)
                request.SetUint32(*cd.FindFieldByName("flags"),
                                  static_cast<uint32_t>(i));
            if (v == 2)
                request.SetString(*cd.FindFieldByName("note"),
                                  "canary-" + std::to_string(i));
            const std::vector<uint8_t> payload =
                clients[v]->Serialize(request);

            rpc::FrameBuffer wire;
            rpc::FrameHeader header;
            header.payload_bytes =
                static_cast<uint32_t>(payload.size());
            header.call_id = static_cast<uint32_t>(i + 1);
            header.method_id = kMethod;
            header.kind = rpc::FrameKind::kRequest;
            header.idempotency_key = (1ull << 32) | (i + 1);
            header.schema_fp = fp[v];
            wire.Append(header, payload.data());

            size_t off = 0;
            while (off < wire.bytes())
                (void)runtime.SubmitFromStream(wire, &off);
        }

        runtime.Drain();

        for (uint32_t w = 0; w < kWorkers; ++w) {
            const rpc::FrameBuffer &rb = runtime.replies(w);
            size_t &off = reply_offset[w];
            for (;;) {
                StatusCode err = StatusCode::kOk;
                const std::optional<rpc::Frame> f = rb.Next(&off, &err);
                if (!f.has_value()) {
                    if (err == StatusCode::kOk)
                        break;
                    continue;
                }
                if (f->header.kind == rpc::FrameKind::kError) {
                    // The negotiation rejection: structured, stamped
                    // with the server's fingerprint, and the call stays
                    // unanswered until the version is registered.
                    if (f->header.status ==
                        StatusCode::kFailedPrecondition)
                        ++result.schema_reject_replies;
                    else
                        ++result.other_error_replies;
                    continue;
                }
                const uint64_t idx = f->header.call_id - 1;
                if (f->header.kind != rpc::FrameKind::kResponse ||
                    idx >= calls || answered[idx]) {
                    ++result.unknown_responses;
                    continue;
                }
                if (!reply_dropped[idx] &&
                    reply_drop_rng.NextBool(0.05)) {
                    // Seeded client-side reply loss: the retry must be
                    // served from the dedup cache, not re-executed.
                    reply_dropped[idx] = true;
                    ++result.client_reply_drops;
                    continue;
                }
                const int v = static_cast<int>(idx % 3);
                client_arena.Reset();
                Message response = Message::Create(
                    &client_arena, *pools[v].pool, pools[v].root);
                const StatusCode parse = clients[v]->Deserialize(
                    f->payload, f->header.payload_bytes, &response);
                const auto &cd = pools[v].pool->message(pools[v].root);
                const std::string expect =
                    "call-" + std::to_string(idx);
                if (!StatusOk(parse) ||
                    std::string(response.GetString(
                        *cd.FindFieldByName("name"))) != expect ||
                    response.GetUint64(*cd.FindFieldByName("id")) !=
                        idx)
                    ++result.wrong_responses;
                answered[idx] = true;
                --unanswered;
                ++result.answered;
            }
        }
    }

    const rpc::RuntimeSnapshot snap = runtime.Snapshot();
    std::vector<double> lat = runtime.TakeLatencies();
    result.p50_us = harness::ExactPercentile(lat, 50) / 1000.0;
    result.p99_us = harness::ExactPercentile(lat, 99) / 1000.0;
    runtime.Shutdown();

    result.lost_calls = unanswered;
    uint64_t digest = 1469598103934665603ull;  // FNV-1a offset basis
    for (uint64_t i = 0; i < calls; ++i) {
        const uint32_t n = execs[i].load(std::memory_order_relaxed);
        if (n > 1)
            result.duplicate_execs += n - 1;
        digest = (digest ^ n) * 1099511628211ull;
    }
    result.exec_digest = digest;
    result.dedup_hits = snap.dedup_hits;
    result.dedup_insertions = snap.dedup_insertions;
    result.schema_rejects = snap.schema_rejects;
    const accel::SharedAccelQueue::Stats qs = shared_queue.stats();
    result.table_swaps = qs.table_swaps;
    result.table_loads_committed = qs.table_loads_committed;
    result.table_loads_aborted = qs.table_loads_aborted;
    result.table_load_cycles = qs.table_load_cycles;
    result.stale_epoch_dispatches = qs.stale_epoch_dispatches;
    result.final_epoch = shared_queue.current_epoch();
    result.available_units = shared_queue.available_units();
    return result;
}

// ---------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------

void
PrintSweep(const SweepResult &r)
{
    std::printf(
        "Phase 1 — cross-version quad-engine differential\n"
        "  wires %llu (9 ordered version pairs)\n"
        "  verdict disagreements %llu  message mismatches %llu\n"
        "  engine byte mismatches %llu  round-trip mismatches %llu\n",
        static_cast<unsigned long long>(r.wires),
        static_cast<unsigned long long>(r.verdict_disagreements),
        static_cast<unsigned long long>(r.message_mismatches),
        static_cast<unsigned long long>(r.engine_byte_mismatches),
        static_cast<unsigned long long>(r.roundtrip_mismatches));
    if (!r.first_failure.empty())
        std::printf("  first failure: %s\n", r.first_failure.c_str());
    std::printf("\n");
}

void
PrintSoak(const char *title, const SoakResult &r)
{
    std::printf(
        "%s\n"
        "  calls %llu  rounds %llu  attempts %llu  answered %llu\n"
        "  negotiation: schema-rejects (server) %llu  reject replies "
        "(client) %llu\n"
        "  table swaps %llu  loads committed %llu  aborted %llu  "
        "load-cycles %llu  reintegrations %llu\n"
        "  epoch %llu  available units %u  stale-epoch dispatches "
        "%llu\n"
        "  exactly-once: wrong %llu  unknown %llu  lost %llu  "
        "dup-execs %llu  dedup-hits %llu  reply-drops %llu\n"
        "  modeled latency: p50 %.1f us  p99 %.1f us\n\n",
        title, static_cast<unsigned long long>(r.calls),
        static_cast<unsigned long long>(r.rounds),
        static_cast<unsigned long long>(r.attempts),
        static_cast<unsigned long long>(r.answered),
        static_cast<unsigned long long>(r.schema_rejects),
        static_cast<unsigned long long>(r.schema_reject_replies),
        static_cast<unsigned long long>(r.table_swaps),
        static_cast<unsigned long long>(r.table_loads_committed),
        static_cast<unsigned long long>(r.table_loads_aborted),
        static_cast<unsigned long long>(r.table_load_cycles),
        static_cast<unsigned long long>(r.retry_reintegrations),
        static_cast<unsigned long long>(r.final_epoch),
        r.available_units,
        static_cast<unsigned long long>(r.stale_epoch_dispatches),
        static_cast<unsigned long long>(r.wrong_responses),
        static_cast<unsigned long long>(r.unknown_responses),
        static_cast<unsigned long long>(r.lost_calls),
        static_cast<unsigned long long>(r.duplicate_execs),
        static_cast<unsigned long long>(r.dedup_hits),
        static_cast<unsigned long long>(r.client_reply_drops),
        r.p50_us, r.p99_us);
}

void
WriteJson(std::FILE *f, const SweepResult &sweep, const SoakResult &r,
          bool deterministic)
{
    std::fprintf(
        f,
        "{\n"
        "  \"sweep\": {\n"
        "    \"wires\": %llu,\n"
        "    \"verdict_disagreements\": %llu,\n"
        "    \"message_mismatches\": %llu,\n"
        "    \"engine_byte_mismatches\": %llu,\n"
        "    \"roundtrip_mismatches\": %llu\n"
        "  },\n"
        "  \"soak\": {\n"
        "    \"calls\": %llu,\n"
        "    \"rounds\": %llu,\n"
        "    \"attempts\": %llu,\n"
        "    \"answered\": %llu,\n"
        "    \"wrong_responses\": %llu,\n"
        "    \"unknown_responses\": %llu,\n"
        "    \"lost_calls\": %llu,\n"
        "    \"duplicate_execs\": %llu,\n"
        "    \"schema_rejects\": %llu,\n"
        "    \"schema_reject_replies\": %llu,\n"
        "    \"client_reply_drops\": %llu,\n"
        "    \"dedup_hits\": %llu,\n"
        "    \"dedup_insertions\": %llu,\n"
        "    \"table_swaps\": %llu,\n"
        "    \"table_loads_committed\": %llu,\n"
        "    \"table_loads_aborted\": %llu,\n"
        "    \"table_load_cycles\": %llu,\n"
        "    \"retry_reintegrations\": %llu,\n"
        "    \"final_epoch\": %llu,\n"
        "    \"available_units\": %u,\n"
        "    \"stale_epoch_dispatches\": %llu,\n"
        "    \"p50_us\": %.3f,\n"
        "    \"p99_us\": %.3f\n"
        "  },\n"
        "  \"deterministic_replay\": %s\n"
        "}\n",
        static_cast<unsigned long long>(sweep.wires),
        static_cast<unsigned long long>(sweep.verdict_disagreements),
        static_cast<unsigned long long>(sweep.message_mismatches),
        static_cast<unsigned long long>(sweep.engine_byte_mismatches),
        static_cast<unsigned long long>(sweep.roundtrip_mismatches),
        static_cast<unsigned long long>(r.calls),
        static_cast<unsigned long long>(r.rounds),
        static_cast<unsigned long long>(r.attempts),
        static_cast<unsigned long long>(r.answered),
        static_cast<unsigned long long>(r.wrong_responses),
        static_cast<unsigned long long>(r.unknown_responses),
        static_cast<unsigned long long>(r.lost_calls),
        static_cast<unsigned long long>(r.duplicate_execs),
        static_cast<unsigned long long>(r.schema_rejects),
        static_cast<unsigned long long>(r.schema_reject_replies),
        static_cast<unsigned long long>(r.client_reply_drops),
        static_cast<unsigned long long>(r.dedup_hits),
        static_cast<unsigned long long>(r.dedup_insertions),
        static_cast<unsigned long long>(r.table_swaps),
        static_cast<unsigned long long>(r.table_loads_committed),
        static_cast<unsigned long long>(r.table_loads_aborted),
        static_cast<unsigned long long>(r.table_load_cycles),
        static_cast<unsigned long long>(r.retry_reintegrations),
        static_cast<unsigned long long>(r.final_epoch),
        r.available_units,
        static_cast<unsigned long long>(r.stale_epoch_dispatches),
        r.p50_us, r.p99_us, deterministic ? "true" : "false");
}

}  // namespace

int
main(int argc, char **argv)
{
    const Options opt = ParseOptions(argc, argv);

    std::printf(
        "Schema-skew soak — %llu wires, %llu calls, seed 0x%llx\n"
        "====================================================\n\n",
        static_cast<unsigned long long>(opt.wires),
        static_cast<unsigned long long>(opt.calls),
        static_cast<unsigned long long>(opt.seed));

    const SweepResult sweep = RunSweep(opt.wires, opt.seed);
    PrintSweep(sweep);

    const SoakResult soak = RunServingSoak(opt.seed, opt.calls);
    PrintSoak("Phase 2 — mixed-version serving soak with live table "
              "swaps",
              soak);

    // Same-seed replay: the soak must be a pure function of the seed.
    const SoakResult replay = RunServingSoak(opt.seed, opt.calls);
    const bool deterministic =
        soak.Fingerprint() == replay.Fingerprint();
    std::printf("replay: same-seed logical counters bit-identical: "
                "%s\n\n",
                deterministic ? "yes" : "NO");

    if (!opt.json_path.empty()) {
        std::FILE *f = std::fopen(opt.json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n",
                         opt.json_path.c_str());
            return 1;
        }
        WriteJson(f, sweep, soak, deterministic);
        std::fclose(f);
        std::printf("wrote %s\n\n", opt.json_path.c_str());
    }

    bool ok = true;
    auto require = [&ok](bool cond, const char *what) {
        if (!cond) {
            std::fprintf(stderr, "FAIL: %s\n", what);
            ok = false;
        }
    };
    require(sweep.wires >= opt.wires, "sweep covered every input");
    require(sweep.total_mismatches() == 0,
            "cross-version differential: engines disagreed");
    require(soak.wrong_responses == 0, "soak served a wrong response");
    require(soak.unknown_responses == 0,
            "soak produced an unattributable response");
    require(soak.lost_calls == 0, "soak lost a call");
    require(soak.duplicate_execs == 0, "soak executed a call twice");
    require(soak.other_error_replies == 0,
            "soak produced a non-negotiation error");
    require(soak.schema_reject_replies > 0,
            "canary version was never rejected (negotiation not "
            "exercised)");
    require(soak.schema_rejects == soak.schema_reject_replies,
            "server reject counter disagrees with observed error "
            "frames");
    require(soak.dedup_hits > 0,
            "no dedup hits (retry path not exercised)");
    require(soak.table_swaps == 2, "both table swaps ran");
    require(soak.table_loads_aborted > 0,
            "mid-load kill did not fire (quarantine not exercised)");
    require(soak.retry_reintegrations == 1,
            "killed unit was not reintegrated via RetryTableLoad");
    require(soak.available_units == kUnits,
            "fleet did not return to full strength");
    require(soak.stale_epoch_dispatches == 0,
            "a batch dispatched against a stale table epoch");
    require(deterministic, "same-seed replay bit-identical");

    std::printf("schema-evolution robustness: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
