/**
 * Figure 11c: deserialization microbenchmarks for field types that
 * require in-accelerator memory allocation (repeated fields, strings of
 * four sizes, and sub-message benchmarks).
 */
#include "harness/microbench.h"

using namespace protoacc;
using namespace protoacc::harness;

int
main()
{
    const auto benches = MakeAllocBenches();
    const cpu::CpuParams boom = cpu::BoomParams();
    const cpu::CpuParams xeon = cpu::XeonParams();
    const accel::AccelConfig accel_cfg;

    std::vector<FigureRow> rows;
    for (const auto &b : benches) {
        FigureRow row;
        row.name = b->name;
        row.boom = CpuDeserialize(boom, b->workload).gbps;
        row.xeon = CpuDeserialize(xeon, b->workload).gbps;
        row.accel = AccelDeserialize(b->workload, accel_cfg).gbps;
        rows.push_back(row);
    }
    PrintFigure(
        "Figure 11c: deser., field types that require in-accel. memory "
        "allocation",
        rows);
    return 0;
}
