/**
 * §4.5.4 ablation: how many parallel field serializer units?
 *
 * Sweeps K over {1, 2, 4, 8} on the Figure 11b/11d workloads and
 * reports serialization throughput together with the serializer's
 * modeled silicon area at each K — throughput-per-mm^2 identifies the
 * knee that justifies the paper's design point.
 */
#include <cstdio>

#include "asic/area_model.h"
#include "harness/microbench.h"

using namespace protoacc;
using namespace protoacc::harness;

int
main()
{
    const auto inline_benches = MakeNonAllocBenches();
    const auto alloc_benches = MakeAllocBenches();

    std::printf("Ablation (S4.5.4): field-serializer-unit count sweep\n");
    std::printf("  %-4s %14s %14s %12s %14s\n", "K", "ser-inline",
                "ser-noninline", "area mm^2", "Gbps/mm^2");
    for (uint32_t k : {1u, 2u, 4u, 8u}) {
        accel::AccelConfig cfg;
        cfg.ser.num_field_serializers = k;

        std::vector<double> inline_gbps, alloc_gbps;
        for (const auto &b : inline_benches)
            inline_gbps.push_back(AccelSerialize(b->workload, cfg).gbps);
        for (const auto &b : alloc_benches)
            alloc_gbps.push_back(AccelSerialize(b->workload, cfg).gbps);

        const double gm_inline = GeoMean(inline_gbps);
        const double gm_alloc = GeoMean(alloc_gbps);
        const double area =
            asic::SerializerReport(asic::ProcessParams{},
                                   static_cast<int>(k))
                .total_mm2;
        std::printf("  %-4u %13.2f %14.2f %12.3f %14.1f\n", k,
                    gm_inline, gm_alloc, area,
                    GeoMean({gm_inline, gm_alloc}) / area);
    }
    std::printf("\n  (the paper's design point is K=4)\n");
    return 0;
}
