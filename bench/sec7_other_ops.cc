/**
 * §7 extension bench: accelerating merge, copy and clear.
 *
 * Figure 2 shows merge+copy+clear consume 17.1% of fleet-wide C++
 * protobuf cycles; §7 argues the accelerator's existing building blocks
 * can absorb them. This bench measures the three operations on the
 * riscv-boom / Xeon cost models vs the accelerator's ops unit over the
 * Figure 11 microbenchmark message shapes, and extrapolates the extra
 * fleet-cycle coverage.
 */
#include <cstdio>

#include "accel/accelerator.h"
#include "harness/microbench.h"
#include "proto/message_ops.h"

using namespace protoacc;
using namespace protoacc::harness;

namespace {

struct OpResult
{
    double boom_cycles = 0;
    double xeon_cycles = 0;
    double accel_cycles = 0;
};

OpResult
RunOp(accel::MessageOp op, const Microbench &bench)
{
    OpResult result;
    const auto &workload = bench.workload;

    // CPU baselines.
    for (const cpu::CpuParams &params :
         {cpu::BoomParams(), cpu::XeonParams()}) {
        cpu::CpuCostModel model(params);
        proto::Arena arena;
        for (const auto &m : workload.messages) {
            proto::Message dst = proto::Message::Create(
                &arena, *workload.pool, workload.msg_index);
            switch (op) {
              case accel::MessageOp::kClear: {
                proto::Message victim = proto::Message::Create(
                    &arena, *workload.pool, workload.msg_index);
                proto::CopyFrom(victim, m);
                model.Reset();  // only charge the Clear itself
                proto::ClearMessage(victim, &model);
                break;
              }
              case accel::MessageOp::kMerge:
                proto::MergeFrom(dst, m, &model);
                break;
              case accel::MessageOp::kCopy:
                proto::CopyFrom(dst, m, &model);
                break;
            }
            if (params.name == "riscv-boom")
                result.boom_cycles += model.cycles();
            else
                result.xeon_cycles += model.cycles();
            model.Reset();
        }
    }

    // Accelerator ops unit.
    sim::MemorySystem memory{sim::MemorySystemConfig{}};
    accel::ProtoAccelerator device(&memory, accel::AccelConfig{});
    proto::Arena adt_arena, accel_arena, dst_arena;
    accel::AdtBuilder adts(*workload.pool, &adt_arena);
    device.DeserAssignArena(&accel_arena);
    for (const auto &m : workload.messages) {
        proto::Message dst = proto::Message::Create(
            &dst_arena, *workload.pool, workload.msg_index);
        accel::OpsJob job;
        job.adt = adts.adt(workload.msg_index);
        job.src_obj = m.raw();
        switch (op) {
          case accel::MessageOp::kClear: {
            proto::Message victim = proto::Message::Create(
                &dst_arena, *workload.pool, workload.msg_index);
            proto::CopyFrom(victim, m);
            job.op = accel::MessageOp::kClear;
            job.dst_obj = victim.raw();
            job.src_obj = nullptr;
            break;
          }
          case accel::MessageOp::kMerge:
            job.op = accel::MessageOp::kMerge;
            job.dst_obj = dst.raw();
            break;
          case accel::MessageOp::kCopy:
            job.op = accel::MessageOp::kCopy;
            job.dst_obj = dst.raw();
            break;
        }
        device.EnqueueOp(job);
    }
    uint64_t cycles = 0;
    PA_CHECK(device.BlockForOpsCompletion(&cycles) ==
             accel::AccelStatus::kOk);
    result.accel_cycles = static_cast<double>(cycles);
    return result;
}

}  // namespace

int
main()
{
    std::printf("Section 7 extension: accelerating merge/copy/clear\n");
    std::printf("  %-8s %-18s %12s %12s %12s %9s %9s\n", "op",
                "workload", "boom cyc", "Xeon cyc", "accel cyc",
                "vs-boom", "vs-Xeon");

    const auto benches = MakeAllocBenches();
    std::vector<double> boom_speedups;
    for (const accel::MessageOp op :
         {accel::MessageOp::kClear, accel::MessageOp::kMerge,
          accel::MessageOp::kCopy}) {
        for (const char *name : {"varint-3-R", "string", "double-SUB"}) {
            const Microbench *bench = nullptr;
            for (const auto &b : benches) {
                if (b->name == name)
                    bench = b.get();
            }
            PA_CHECK(bench != nullptr);
            const OpResult r = RunOp(op, *bench);
            std::printf("  %-8s %-18s %12.0f %12.0f %12.0f %8.2fx "
                        "%8.2fx\n",
                        accel::MessageOpName(op), name, r.boom_cycles,
                        r.xeon_cycles, r.accel_cycles,
                        r.boom_cycles / r.accel_cycles,
                        r.xeon_cycles / r.accel_cycles);
            boom_speedups.push_back(r.boom_cycles / r.accel_cycles);
        }
    }

    const double gm = GeoMean(boom_speedups);
    // Figure 2: merge+copy+clear are 17.1% of C++ protobuf cycles,
    // which is 17.1% x 9.6% x 88% of fleet cycles.
    const double op_fleet_share = 0.171 * 0.096 * 0.88 * 100.0;
    std::printf(
        "\n  geomean speedup vs boom: %.1fx -> extending the "
        "accelerator to these ops addresses another %.2f%% of fleet "
        "cycles (paper: 17.1%% of protobuf cycles)\n",
        gm, op_fleet_share);
    return 0;
}
