/**
 * §3.5 / §4.4.1 ablation: offload granularity and batching.
 *
 * Most fleet messages are tiny (56% <= 32 B), so per-operation offload
 * overhead decides whether acceleration pays off at all. The RoCC
 * interface lets software queue many operations before one
 * block_for_*_completion fence. This bench sweeps message size and
 * batch size and reports deserialization throughput, showing (1)
 * batching matters most for small messages and (2) even unbatched
 * near-core offload stays profitable — unlike a PCIe-latency device,
 * which this bench also models for contrast (~600 accelerator cycles
 * of round-trip latency per operation, §3.9/[34]).
 */
#include <cstdio>

#include "accel/accelerator.h"
#include "harness/microbench.h"

using namespace protoacc;
using namespace protoacc::harness;

namespace {

/// Deserialize the workload with a fence after every @p batch jobs;
/// optionally add per-fence PCIe round-trip latency.
double
RunBatched(const Workload &workload, int batch, uint64_t pcie_cycles)
{
    sim::MemorySystem memory{sim::MemorySystemConfig{}};
    accel::ProtoAccelerator device(&memory, accel::AccelConfig{});
    proto::Arena adt_arena, accel_arena, dest_arena;
    accel::AdtBuilder adts(*workload.pool, &adt_arena);
    device.DeserAssignArena(&accel_arena);

    uint64_t total = 0;
    double bytes = 0;
    int queued = 0;
    for (const auto &wire : workload.wires) {
        proto::Message dest = proto::Message::Create(
            &dest_arena, *workload.pool, workload.msg_index);
        device.EnqueueDeser(accel::MakeDeserJob(
            adts, workload.msg_index, *workload.pool, dest.raw(),
            wire.data(), wire.size()));
        bytes += static_cast<double>(wire.size());
        if (++queued == batch) {
            uint64_t c = 0;
            PA_CHECK(device.BlockForDeserCompletion(&c) ==
                     accel::AccelStatus::kOk);
            total += c + pcie_cycles;
            queued = 0;
        }
    }
    if (queued > 0) {
        uint64_t c = 0;
        PA_CHECK(device.BlockForDeserCompletion(&c) ==
                 accel::AccelStatus::kOk);
        total += c + pcie_cycles;
    }
    return bytes * 8.0 * 2.0 / static_cast<double>(total);  // Gbit/s
}

}  // namespace

int
main()
{
    std::printf(
        "Ablation (S3.5): offload granularity and batching "
        "(deserialization, Gbit/s)\n");
    std::printf("  %-18s %10s %10s %10s %16s\n", "workload", "batch=1",
                "batch=8", "batch=64", "batch=1 + PCIe");

    struct Entry
    {
        const char *name;
        std::unique_ptr<Microbench> bench;
    };
    std::vector<Entry> entries;
    entries.push_back({"varint-1 (~10B)", MakeVarintBench(1, false)});
    entries.push_back({"varint-5 (~30B)", MakeVarintBench(5, false)});
    entries.push_back({"string_long(512B)",
                       MakeStringBench("string_long", 512)});
    entries.push_back({"string_vl (64KB)",
                       MakeStringBench("string_very_long", 64 * 1024)});

    // PCIe round trip: ~300 ns = ~600 cycles at 2 GHz (§3.9, [34]).
    constexpr uint64_t kPcieCycles = 600;
    for (const auto &e : entries) {
        const double b1 = RunBatched(e.bench->workload, 1, 0);
        const double b8 = RunBatched(e.bench->workload, 8, 0);
        const double b64 = RunBatched(e.bench->workload, 64, 0);
        const double pcie =
            RunBatched(e.bench->workload, 1, kPcieCycles);
        std::printf("  %-18s %10.2f %10.2f %10.2f %16.2f\n", e.name, b1,
                    b8, b64, pcie);
    }
    std::printf(
        "\n  near-core + batching keeps tiny-message offload "
        "profitable; a PCIe-attached device forfeits most of the win "
        "on small messages (S3.9)\n");
    return 0;
}
