/**
 * §3.8: how deep do sub-messages nest? Prints the bytes-by-depth
 * distribution measured from protobufz-analog samples — the data that
 * sizes the accelerator's on-chip metadata stacks at 25 entries.
 */
#include <cstdio>

#include "profile/samplers.h"

using namespace protoacc;
using namespace protoacc::profile;

int
main()
{
    Fleet fleet{FleetParams{}};
    ProtobufzSampler sampler(&fleet, /*seed=*/31);
    const ShapeAggregate agg = sampler.Collect(/*messages=*/30000);

    double total = 0;
    for (const auto &[depth, bytes] : agg.bytes_by_depth)
        total += bytes;

    std::printf("Section 3.8: protobuf bytes by sub-message depth\n");
    std::printf("  %-8s %14s %10s %12s\n", "depth", "bytes", "pct",
                "cumulative");
    double cum = 0;
    for (const auto &[depth, bytes] : agg.bytes_by_depth) {
        cum += bytes;
        std::printf("  %-8d %14.0f %9.3f%% %11.4f%%\n", depth, bytes,
                    100.0 * bytes / total, 100.0 * cum / total);
    }
    std::printf("\n  max observed depth: %d (paper: < 100)\n",
                agg.max_depth);
    std::printf(
        "  paper anchors: 99.9%% of bytes at depth <= 12, 99.999%% at "
        "depth <= 25 -> 25 on-chip stack entries with DRAM spill for "
        "outliers\n");
    return 0;
}
