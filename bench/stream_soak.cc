/**
 * Streaming datapath soak: a 1 GiB logical message crosses the chunked
 * v4 stream protocol under a 64 MiB receiver memory budget with every
 * chunk-granularity fault class live (drop, truncate, corrupt,
 * duplicate, reorder, receiver-window wedge), plus one injected
 * response loss that forces the dedup-replay resume path.
 *
 * Proof obligations (each enforced, nonzero exit on violation):
 *   - completion: the stream finishes with status kOk;
 *   - bounded memory: the receiver's buffer high-water mark stays
 *     under the budget — the whole point of record-granularity
 *     streaming is that 1 GiB logical transfers never hold 1 GiB;
 *   - byte identity: the receiver's composed CRC32C over committed
 *     bytes equals the sender's, which equals a direct CRC of the
 *     source pattern (0 wrong/lost/duplicated bytes despite faults);
 *   - exactly-once: no chunk decoded twice (committed chunk count is
 *     exactly ceil(total/chunk)), and the post-completion re-BEGIN is
 *     answered from the dedup cache without re-execution;
 *   - determinism: a same-seed replay produces bit-identical fault,
 *     sender, and receiver counters.
 *
 * Usage: stream_soak [--gib=N] [--budget-mib=N] [--chunk-kib=N]
 *                    [--seed=N] [--json=PATH]
 * CI smoke runs a scaled-down transfer (--gib accepts fractions via
 * --mib); defaults reproduce the checked-in BENCH_stream.json.
 */
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/check.h"
#include "common/crc32c.h"
#include "cpu/cpu_model.h"
#include "proto/schema_parser.h"
#include "rpc/stream.h"
#include "sim/fault.h"

namespace {

using namespace protoacc;
using rpc::Frame;
using rpc::FrameBuffer;
using rpc::FrameHeader;
using rpc::FrameKind;
using protoacc::StatusCode;

struct Options
{
    uint64_t total_bytes = 1ull << 30;  // 1 GiB logical message
    uint64_t budget_bytes = 64ull << 20;
    uint32_t chunk_bytes = 256 << 10;
    uint64_t seed = 42;
    std::string json_path;
};

Options
ParseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--mib=", 0) == 0)
            opt.total_bytes = std::strtoull(arg.c_str() + 6, nullptr, 10)
                              << 20;
        else if (arg.rfind("--gib=", 0) == 0)
            opt.total_bytes = std::strtoull(arg.c_str() + 6, nullptr, 10)
                              << 30;
        else if (arg.rfind("--budget-mib=", 0) == 0)
            opt.budget_bytes =
                std::strtoull(arg.c_str() + 13, nullptr, 10) << 20;
        else if (arg.rfind("--chunk-kib=", 0) == 0)
            opt.chunk_bytes = static_cast<uint32_t>(
                std::strtoul(arg.c_str() + 12, nullptr, 10) << 10);
        else if (arg.rfind("--seed=", 0) == 0)
            opt.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
        else if (arg.rfind("--json=", 0) == 0)
            opt.json_path = arg.substr(7);
        else {
            std::fprintf(stderr,
                         "usage: stream_soak [--gib=N|--mib=N] "
                         "[--budget-mib=N] [--chunk-kib=N] [--seed=N] "
                         "[--json=PATH]\n");
            std::exit(2);
        }
    }
    return opt;
}

/**
 * The 1 GiB logical message as a pure function of offset: a stream of
 * length-delimited `data` fields (field 1, wire type 2) with a
 * deterministic byte pattern. Pure-function generation is what makes
 * retransmission exact — a rewound sender re-reads identical bytes —
 * and what lets the bench run without materializing a gigabyte.
 *
 * Layout repeats a fixed-size record: tag(1) + varint len(3) + body,
 * so any offset maps algebraically to its record and intra-record
 * position.
 */
class PatternMessage
{
  public:
    /// ~60 KiB bodies: two varint bytes of length prefix would cap at
    /// 16383, so use 3-byte varint (up to 2^21-1).
    static constexpr uint32_t kBodyBytes = 60 << 10;
    static constexpr uint32_t kRecordBytes = 1 + 3 + kBodyBytes;

    explicit PatternMessage(uint64_t total_hint)
    {
        // Round to whole records: the stream must end on a field
        // boundary for Finish() to accept it.
        records_ = total_hint / kRecordBytes;
        if (records_ == 0)
            records_ = 1;
    }

    uint64_t
    total_bytes() const
    {
        return records_ * kRecordBytes;
    }

    uint64_t
    records() const
    {
        return records_;
    }

    size_t
    Read(uint64_t offset, uint8_t *buf, size_t cap) const
    {
        const uint64_t total = total_bytes();
        uint64_t n = 0;
        while (n < cap && offset + n < total) {
            const uint64_t pos = offset + n;
            const uint64_t rec = pos / kRecordBytes;
            const uint32_t in = static_cast<uint32_t>(
                pos % kRecordBytes);
            buf[n++] = ByteAt(rec, in);
        }
        return static_cast<size_t>(n);
    }

    /// CRC of the whole logical stream, computed incrementally in
    /// bounded memory (the reference the transfer must match).
    uint32_t
    ReferenceCrc() const
    {
        std::vector<uint8_t> buf(1 << 20);
        uint32_t crc = 0;
        uint64_t off = 0;
        const uint64_t total = total_bytes();
        while (off < total) {
            const size_t n = Read(off, buf.data(), buf.size());
            crc = Crc32cExtend(crc, buf.data(), n);
            off += n;
        }
        return crc;
    }

  private:
    static uint8_t
    ByteAt(uint64_t rec, uint32_t in_record)
    {
        if (in_record == 0)
            return (1u << 3) | 2;  // field 1, length-delimited
        if (in_record <= 3) {
            // 3-byte varint of kBodyBytes (low groups first, with
            // continuation bits on all but the last).
            const uint32_t len = kBodyBytes;
            const uint8_t groups[3] = {
                static_cast<uint8_t>((len & 0x7f) | 0x80),
                static_cast<uint8_t>(((len >> 7) & 0x7f) | 0x80),
                static_cast<uint8_t>((len >> 14) & 0x7f)};
            return groups[in_record - 1];
        }
        const uint32_t i = in_record - 4;
        return static_cast<uint8_t>((rec * 0x9e3779b9u + i) * 131 + 17);
    }

    uint64_t records_ = 0;
};

/// Sink verifying the decoded fields against the pattern: counts
/// records and checksums bodies so wrong/lost/duplicated data shows up
/// as a CRC divergence, not just a length match.
class VerifySink : public proto::StreamSink
{
  public:
    proto::ParseStatus
    OnString(const proto::FieldDescriptor &,
             std::string_view data) override
    {
        ++records;
        if (data.size() != PatternMessage::kBodyBytes)
            ++wrong_lengths;
        body_crc = Crc32cExtend(
            body_crc, reinterpret_cast<const uint8_t *>(data.data()),
            data.size());
        return proto::ParseStatus::kOk;
    }
    proto::ParseStatus
    OnScalar(const proto::FieldDescriptor &, uint64_t) override
    {
        ++unexpected_scalars;
        return proto::ParseStatus::kOk;
    }
    uint64_t records = 0;
    uint64_t wrong_lengths = 0;
    uint64_t unexpected_scalars = 0;
    uint32_t body_crc = 0;
};

struct SoakResult
{
    StatusCode final_status = StatusCode::kInternal;
    uint64_t total_bytes = 0;
    uint64_t records = 0;
    uint64_t sink_records = 0;
    uint32_t sink_body_crc = 0;
    uint32_t sender_crc = 0;
    uint32_t receiver_crc = 0;
    uint64_t peak_buffer_bytes = 0;
    uint64_t ticks = 0;
    rpc::StreamSenderStats sender;
    rpc::StreamReceiverStats receiver;
    rpc::StreamChannelStats channel;
    sim::FaultStats faults;
    bool dedup_replayed = false;

    /// The counter tuple compared across same-seed replays.
    auto
    Fingerprint() const
    {
        return std::make_tuple(
            sender.chunks_sent, sender.bytes_sent, sender.retransmits,
            sender.nacks_received, sender.window_stalls,
            receiver.chunks_committed, receiver.bytes_committed,
            receiver.duplicate_chunks, receiver.gap_nacks,
            receiver.wedges_started, channel.dropped, channel.truncated,
            channel.corrupted, channel.duplicated, channel.reordered,
            channel.detected_by_crc, peak_buffer_bytes, ticks);
    }
};

SoakResult
RunSoak(const Options &opt, proto::DescriptorPool &pool, int blob,
        VerifySink *sink_out)
{
    constexpr uint16_t kMethod = 1;
    constexpr uint64_t kKey = 0x5eed0f00dull;

    const PatternMessage message(opt.total_bytes);
    rpc::SoftwareBackend backend(cpu::BoomParams(), pool);

    rpc::StreamConfig config;
    config.chunk_bytes = opt.chunk_bytes;
    config.codec.max_record_bytes = 2 * PatternMessage::kRecordBytes;
    config.global_budget_bytes = opt.budget_bytes;
    config.credit_window_bytes = 8 * opt.chunk_bytes;
    config.retransmit_timeout_ns = 400'000;
    config.wedge_hold_ns = 150'000;

    sim::FaultConfig fault_config;
    fault_config.chunk_drop_rate = 0.005;
    fault_config.chunk_truncate_rate = 0.005;
    fault_config.chunk_corrupt_rate = 0.005;
    fault_config.chunk_duplicate_rate = 0.005;
    fault_config.chunk_reorder_rate = 0.005;
    fault_config.window_wedge_rate = 1.0;
    sim::FaultInjector injector(opt.seed, fault_config);

    VerifySink *sink = sink_out;
    rpc::StreamReceiver receiver(
        &pool, &backend, config,
        [sink](uint16_t, uint16_t) -> std::unique_ptr<proto::StreamSink> {
            // The soak runs one stream; hand out the shared verifying
            // sink wrapped so receiver cleanup does not delete it.
            class Borrow : public proto::StreamSink
            {
              public:
                explicit Borrow(VerifySink *s) : s_(s) {}
                proto::ParseStatus
                OnString(const proto::FieldDescriptor &f,
                         std::string_view d) override
                {
                    return s_->OnString(f, d);
                }
                proto::ParseStatus
                OnScalar(const proto::FieldDescriptor &f,
                         uint64_t b) override
                {
                    return s_->OnScalar(f, b);
                }

              private:
                VerifySink *s_;
            };
            return std::make_unique<Borrow>(sink);
        });
    receiver.RegisterMethod(kMethod, blob);
    receiver.SetFaultInjector(&injector);
    rpc::DedupCache dedup(64);
    receiver.SetDedupCache(&dedup);

    rpc::StreamSender sender(
        config, /*tenant=*/0, kMethod, /*call_id=*/1, kKey,
        message.total_bytes(),
        [&message](uint64_t off, uint8_t *buf, size_t cap) {
            return message.Read(off, buf, cap);
        });
    rpc::StreamChannel channel(&injector);

    SoakResult r;
    r.total_bytes = message.total_bytes();
    r.records = message.records();

    FrameBuffer to_rx, from_rx;
    double now = 0;
    const double tick_ns = 50'000;
    // 1 GiB / (8 chunks per tick) with generous fault headroom.
    const uint64_t max_ticks =
        64 + 4 * (message.total_bytes() / (4 * config.chunk_bytes));
    bool response_suppressed = false;
    for (uint64_t tick = 0; tick < max_ticks && !sender.done();
         ++tick) {
        ++r.ticks;
        sender.Pump(&to_rx, now);
        channel.Pump(to_rx, [&](const Frame &f) {
            receiver.HandleFrame(f, &from_rx, now);
        });
        to_rx.clear();
        receiver.AdvanceTime(now, &from_rx);
        size_t off = 0;
        for (;;) {
            StatusCode err;
            const auto f = from_rx.Next(&off, &err);
            if (!f.has_value())
                break;
            // Lose the first completion response on purpose: the
            // sender's retry must be answered from the dedup cache.
            if (f->header.kind == FrameKind::kResponse &&
                !response_suppressed) {
                response_suppressed = true;
                continue;
            }
            sender.HandleFrame(*f, now);
        }
        from_rx.clear();
        now += tick_ns;
    }

    r.final_status =
        sender.done() ? sender.final_status() : StatusCode::kInternal;
    r.sender = sender.stats();
    r.receiver = receiver.stats();
    r.channel = channel.stats();
    r.faults = injector.stats();
    r.sender_crc = sender.stream_crc();
    r.peak_buffer_bytes = receiver.gauge().peak_bytes();
    r.dedup_replayed = r.receiver.replayed_responses > 0;
    r.sink_records = sink_out->records;
    r.sink_body_crc = sink_out->body_crc;
    if (sender.done() && sender.response().size() >=
                             rpc::StreamEndInfo::kWireBytes) {
        rpc::StreamEndInfo close;
        if (rpc::UnpackStreamEnd(sender.response().data(),
                                 sender.response().size(), &close))
            r.receiver_crc = close.stream_crc;
    }
    return r;
}

}  // namespace

int
main(int argc, char **argv)
{
    const Options opt = ParseOptions(argc, argv);

    proto::DescriptorPool pool;
    const auto parsed = proto::ParseSchema(
        "message Blob { optional bytes data = 1; }", &pool);
    PA_CHECK(parsed.ok);
    pool.Compile(proto::HasbitsMode::kSparse);
    const int blob = pool.FindMessage("Blob");

    const PatternMessage message(opt.total_bytes);
    std::printf(
        "Stream soak: %.2f MiB logical message, %u KiB chunks, "
        "%.0f MiB receiver budget, seed %" PRIu64 "\n"
        "  faults: drop/truncate/corrupt/duplicate/reorder at 0.5%% "
        "each + guaranteed window wedge + 1 response loss\n\n",
        message.total_bytes() / 1048576.0, opt.chunk_bytes >> 10,
        opt.budget_bytes / 1048576.0, opt.seed);

    VerifySink sink;
    const SoakResult r = RunSoak(opt, pool, blob, &sink);
    const uint32_t reference_crc = message.ReferenceCrc();

    std::printf(
        "transfer:  status %d  ticks %" PRIu64 "  bytes %" PRIu64
        "  records %" PRIu64 "/%" PRIu64 "\n"
        "faults:    dropped %" PRIu64 "  truncated %" PRIu64
        "  corrupted %" PRIu64 "  duplicated %" PRIu64
        "  reordered %" PRIu64 "  crc-detected %" PRIu64
        "  wedges %" PRIu64 "\n"
        "recovery:  retransmits %" PRIu64 "  nacks %" PRIu64
        "  dup-chunks-acked %" PRIu64 "  gap-nacks %" PRIu64
        "  window-stalls %" PRIu64 "  stalled %.1f ms\n"
        "memory:    peak buffer %.2f MiB  (budget %.0f MiB)\n"
        "identity:  reference crc %08x  sender %08x  receiver %08x  "
        "sink-bodies %08x\n"
        "resume:    dedup replay after response loss: %s\n\n",
        static_cast<int>(r.final_status), r.ticks,
        r.receiver.bytes_committed, r.sink_records, r.records,
        r.channel.dropped, r.channel.truncated, r.channel.corrupted,
        r.channel.duplicated, r.channel.reordered,
        r.channel.detected_by_crc, r.receiver.wedges_started,
        r.sender.retransmits, r.sender.nacks_received,
        r.receiver.duplicate_chunks, r.receiver.gap_nacks,
        r.sender.window_stalls, r.sender.stalled_ns / 1e6,
        r.peak_buffer_bytes / 1048576.0, opt.budget_bytes / 1048576.0,
        reference_crc, r.sender_crc, r.receiver_crc, r.sink_body_crc,
        r.dedup_replayed ? "yes" : "no");

    // Same-seed replay: the whole run must be a pure function of the
    // seed — bit-identical counters, not just the same verdict.
    VerifySink sink2;
    const SoakResult r2 = RunSoak(opt, pool, blob, &sink2);
    const bool deterministic = r.Fingerprint() == r2.Fingerprint() &&
                               r2.sink_body_crc == r.sink_body_crc;
    std::printf("replay:    same-seed counters bit-identical: %s\n\n",
                deterministic ? "yes" : "NO");

    bool ok = true;
    const auto require = [&ok](bool cond, const char *what) {
        if (!cond) {
            std::fprintf(stderr, "FAIL: %s\n", what);
            ok = false;
        }
    };
    require(r.final_status == StatusCode::kOk, "stream completed");
    require(r.receiver.bytes_committed == r.total_bytes,
            "all bytes committed");
    require(r.sink_records == r.records, "all records delivered once");
    require(sink.wrong_lengths == 0, "record lengths intact");
    require(sink.unexpected_scalars == 0, "no stray fields");
    require(r.sender_crc == reference_crc, "sender CRC matches source");
    require(r.receiver_crc == reference_crc,
            "receiver CRC matches source");
    require(r.peak_buffer_bytes <= opt.budget_bytes,
            "peak buffer within budget");
    require(r.peak_buffer_bytes < r.total_bytes / 4 ||
                r.total_bytes < (8u << 20),
            "streaming, not buffering (peak << logical size)");
    require(r.channel.detected_by_crc ==
                r.channel.truncated + r.channel.corrupted,
            "every mangled chunk caught by CRC");
    require(r.receiver.duplicate_chunks >= r.channel.duplicated,
            "duplicates acked, not re-decoded");
    require(r.dedup_replayed, "response loss recovered via dedup");
    require(deterministic, "same-seed replay bit-identical");

    if (!opt.json_path.empty()) {
        std::FILE *f = std::fopen(opt.json_path.c_str(), "w");
        PA_CHECK(f != nullptr);
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"stream_soak\",\n"
            "  \"total_bytes\": %" PRIu64 ",\n"
            "  \"chunk_bytes\": %u,\n"
            "  \"budget_bytes\": %" PRIu64 ",\n"
            "  \"seed\": %" PRIu64 ",\n"
            "  \"status\": %d,\n"
            "  \"ticks\": %" PRIu64 ",\n"
            "  \"records\": %" PRIu64 ",\n"
            "  \"chunks_sent\": %" PRIu64 ",\n"
            "  \"chunks_committed\": %" PRIu64 ",\n"
            "  \"retransmits\": %" PRIu64 ",\n"
            "  \"gap_nacks\": %" PRIu64 ",\n"
            "  \"duplicate_chunks\": %" PRIu64 ",\n"
            "  \"window_stalls\": %" PRIu64 ",\n"
            "  \"stalled_ms\": %.3f,\n"
            "  \"chunks_dropped\": %" PRIu64 ",\n"
            "  \"chunks_truncated\": %" PRIu64 ",\n"
            "  \"chunks_corrupted\": %" PRIu64 ",\n"
            "  \"chunks_duplicated\": %" PRIu64 ",\n"
            "  \"chunks_reordered\": %" PRIu64 ",\n"
            "  \"detected_by_crc\": %" PRIu64 ",\n"
            "  \"wedges\": %" PRIu64 ",\n"
            "  \"peak_buffer_bytes\": %" PRIu64 ",\n"
            "  \"reference_crc\": \"%08x\",\n"
            "  \"receiver_crc\": \"%08x\",\n"
            "  \"dedup_replayed\": %s,\n"
            "  \"deterministic_replay\": %s,\n"
            "  \"all_checks_passed\": %s\n"
            "}\n",
            r.total_bytes, opt.chunk_bytes, opt.budget_bytes, opt.seed,
            static_cast<int>(r.final_status), r.ticks, r.sink_records,
            r.sender.chunks_sent, r.receiver.chunks_committed,
            r.sender.retransmits, r.receiver.gap_nacks,
            r.receiver.duplicate_chunks, r.sender.window_stalls,
            r.sender.stalled_ns / 1e6, r.channel.dropped,
            r.channel.truncated, r.channel.corrupted,
            r.channel.duplicated, r.channel.reordered,
            r.channel.detected_by_crc, r.receiver.wedges_started,
            r.peak_buffer_bytes, reference_crc, r.receiver_crc,
            r.dedup_replayed ? "true" : "false",
            deterministic ? "true" : "false", ok ? "true" : "false");
        std::fclose(f);
        std::printf("wrote %s\n", opt.json_path.c_str());
    }

    std::printf("verdict: %s\n", ok ? "ALL CHECKS PASSED" : "FAILED");
    return ok ? 0 : 1;
}
