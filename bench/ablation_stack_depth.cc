/**
 * §3.8 ablation: sizing the on-chip sub-message metadata stack.
 *
 * The fleet study found 99.9% of protobuf bytes at depth <= 12 and
 * 99.999% at depth <= 25, so the paper provisions 25 on-chip entries
 * and spills to DRAM beyond. This bench deserializes messages of
 * varying nesting depth under several on-chip depths and reports the
 * spill count and cycle cost, showing 25 entries keep realistic
 * workloads spill-free while deep outliers degrade gracefully.
 */
#include <cstdio>

#include "accel/accelerator.h"
#include "proto/serializer.h"

using namespace protoacc;
using namespace protoacc::accel;

namespace {

/// Build a chain message of the given nesting depth.
std::vector<uint8_t>
BuildChainWire(proto::DescriptorPool *pool, proto::Arena *arena,
               int depth, int *node_out)
{
    const int node = pool->AddMessage("Node" + std::to_string(depth));
    pool->AddMessageField(node, "next", 1, node);
    pool->AddField(node, "v", 2, proto::FieldType::kInt64);
    pool->AddField(node, "s", 3, proto::FieldType::kString);
    pool->Compile(proto::HasbitsMode::kSparse);
    *node_out = node;

    proto::Message root = proto::Message::Create(arena, *pool, node);
    proto::Message cur = root;
    const auto &next = *pool->message(node).FindFieldByName("next");
    const auto &v = *pool->message(node).FindFieldByName("v");
    const auto &s = *pool->message(node).FindFieldByName("s");
    for (int i = 0; i < depth; ++i) {
        cur.SetInt64(v, i);
        cur.SetString(s, "payload");
        cur = cur.MutableMessage(next);
    }
    cur.SetInt64(v, depth);
    return proto::Serialize(root);
}

}  // namespace

int
main()
{
    std::printf("Ablation (S3.8): on-chip metadata stack depth\n");
    std::printf("  %-12s %-12s %10s %10s %12s\n", "msg depth",
                "on-chip", "cycles", "spills", "cyc/byte");
    for (int depth : {4, 12, 25, 40, 96}) {
        for (uint32_t on_chip : {12u, 25u, 128u}) {
            proto::DescriptorPool pool;
            proto::Arena arena;
            int node = -1;
            const auto wire =
                BuildChainWire(&pool, &arena, depth, &node);

            sim::MemorySystem memory{sim::MemorySystemConfig{}};
            AccelConfig cfg;
            cfg.deser.on_chip_stack_depth = on_chip;
            ProtoAccelerator accel(&memory, cfg);
            proto::Arena adt_arena, accel_arena, dest_arena;
            AdtBuilder adts(pool, &adt_arena);
            accel.DeserAssignArena(&accel_arena);

            proto::Message dest =
                proto::Message::Create(&dest_arena, pool, node);
            accel.EnqueueDeser(MakeDeserJob(adts, node, pool,
                                            dest.raw(), wire.data(),
                                            wire.size()));
            uint64_t cycles = 0;
            const AccelStatus st =
                accel.BlockForDeserCompletion(&cycles);
            PA_CHECK(st == AccelStatus::kOk);
            std::printf("  %-12d %-12u %10llu %10llu %12.2f\n", depth,
                        on_chip,
                        static_cast<unsigned long long>(cycles),
                        static_cast<unsigned long long>(
                            accel.deserializer().stats().stack_spills),
                        static_cast<double>(cycles) /
                            static_cast<double>(wire.size()));
        }
    }
    std::printf(
        "\n  (fleet: 99.9%% of bytes at depth <= 12, 99.999%% at <= 25;"
        " 25 on-chip entries cover all but outliers)\n");
    return 0;
}
