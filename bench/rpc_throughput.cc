/**
 * Concurrent RPC serving throughput: the serving-runtime companion to
 * rpc_end_to_end. Drives the RpcServerRuntime with batches of echo
 * calls across {riscv-boom, riscv-boom-gen, Xeon, protoacc} x {worker
 * counts} x {batch
 * sizes} and reports, per configuration:
 *
 *   - modeled QPS (calls / slowest worker's virtual timeline) — the
 *     simulation-grade number: software backends model one core per
 *     worker and scale with the pool; the protoacc rows share ONE
 *     accelerator through the SharedAccelQueue doorbell model, so they
 *     saturate and their tail latency grows with contention;
 *   - modeled p50/p95/p99 per-call latency in microseconds;
 *   - wall-clock QPS of the real threaded execution on the host (NOT
 *     comparable across machines; a single-core container serializes
 *     the workers).
 *
 * Flags: --calls=N --payload=BYTES --threads=a,b,c --batches=a,b,c
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <vector>

#include "harness/bench_common.h"
#include "proto/schema_parser.h"
#include "rpc/server_runtime.h"

using namespace protoacc;
using namespace protoacc::rpc;
using proto::DescriptorPool;
using proto::Message;

namespace {

struct Options
{
    uint32_t calls = 2048;
    size_t payload = 64;
    std::vector<uint32_t> threads = {1, 2, 4};
    std::vector<uint32_t> batches = {1, 8, 32};
};

std::vector<uint32_t>
ParseList(const char *s)
{
    std::vector<uint32_t> out;
    for (const char *p = s; *p != '\0';) {
        out.push_back(static_cast<uint32_t>(std::strtoul(p, nullptr, 10)));
        const char *comma = std::strchr(p, ',');
        if (comma == nullptr)
            break;
        p = comma + 1;
    }
    return out;
}

Options
ParseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--calls=", 0) == 0)
            opt.calls = static_cast<uint32_t>(
                std::strtoul(arg.c_str() + 8, nullptr, 10));
        else if (arg.rfind("--payload=", 0) == 0)
            opt.payload = std::strtoul(arg.c_str() + 10, nullptr, 10);
        else if (arg.rfind("--threads=", 0) == 0)
            opt.threads = ParseList(arg.c_str() + 10);
        else if (arg.rfind("--batches=", 0) == 0)
            opt.batches = ParseList(arg.c_str() + 10);
        else {
            std::fprintf(stderr,
                         "usage: rpc_throughput [--calls=N] "
                         "[--payload=BYTES] [--threads=a,b,c] "
                         "[--batches=a,b,c]\n");
            std::exit(1);
        }
    }
    return opt;
}

struct RunResult
{
    double modeled_qps = 0;
    double wall_qps = 0;
    double p50_us = 0;
    double p95_us = 0;
    double p99_us = 0;
    double accel_wait_share = 0;  ///< wait / (wait + service), protoacc
};

RunResult
RunOne(const DescriptorPool &pool, int req, int rsp,
       const std::string &system, uint32_t workers, uint32_t batch,
       const Options &opt)
{
    accel::SharedAccelQueue accel_queue;  // one shared device
    RuntimeConfig config;
    config.num_workers = workers;
    config.max_batch = batch;
    config.record_replies = false;
    RpcServerRuntime::BackendFactory factory;
    if (system == "protoacc") {
        config.shared_accel = &accel_queue;
        factory = [&pool](uint32_t) {
            return std::make_unique<AcceleratedBackend>(pool);
        };
    } else if (system == "riscv-boom-gen") {
        // Same modeled core as riscv-boom, but the host executes the
        // schema-specialized generated codecs: modeled QPS matches the
        // table rows (identical cost events), wall QPS shows the
        // codegen tier's host-time win.
        factory = [&pool](uint32_t) {
            return std::make_unique<SoftwareBackend>(
                cpu::BoomParams(), pool,
                proto::SoftwareCodecEngine::kGenerated);
        };
    } else {
        const cpu::CpuParams params =
            system == "Xeon" ? cpu::XeonParams() : cpu::BoomParams();
        factory = [&pool, params](uint32_t) {
            return std::make_unique<SoftwareBackend>(params, pool);
        };
    }

    RpcServerRuntime runtime(&pool, factory, config);
    const auto &rd = pool.message(req);
    const auto &sd = pool.message(rsp);
    runtime.RegisterMethod(
        1, req, rsp,
        [&rd, &sd](const Message &request, Message response) {
            response.SetString(
                *sd.FindFieldByName("text"),
                request.GetString(*rd.FindFieldByName("text")));
        });

    // Pre-serialize the request wire once (client cost is not the
    // object of this bench).
    proto::Arena arena;
    Message request = Message::Create(&arena, pool, req);
    request.SetString(*rd.FindFieldByName("text"),
                      std::string(opt.payload, 'x'));
    const std::vector<uint8_t> wire = proto::Serialize(request, nullptr);
    FrameHeader header;
    header.method_id = 1;
    header.kind = FrameKind::kRequest;
    header.payload_bytes = static_cast<uint32_t>(wire.size());

    // Pre-load the whole backlog before Start(): workers then drain in
    // exact max_batch chunks, so the modeled numbers are deterministic,
    // and the wall clock times pure serving.
    for (uint32_t i = 1; i <= opt.calls; ++i) {
        header.call_id = i;
        runtime.Submit(header, wire.data());
    }
    const auto wall_start = std::chrono::steady_clock::now();
    runtime.Start();
    runtime.Drain();
    const auto wall_end = std::chrono::steady_clock::now();

    const RuntimeSnapshot snap = runtime.Snapshot();
    PA_CHECK_EQ(snap.calls, opt.calls);
    PA_CHECK_EQ(snap.failures, 0u);
    std::vector<double> lat = runtime.TakeLatencies();

    RunResult r;
    r.modeled_qps = snap.modeled_qps();
    const double wall_s =
        std::chrono::duration<double>(wall_end - wall_start).count();
    r.wall_qps = wall_s > 0 ? opt.calls / wall_s : 0;
    r.p50_us = harness::ExactPercentile(lat, 50) / 1000.0;
    r.p95_us = harness::ExactPercentile(lat, 95) / 1000.0;
    r.p99_us = harness::ExactPercentile(lat, 99) / 1000.0;
    const auto qs = accel_queue.stats();
    if (qs.total_wait_cycles + qs.total_service_cycles > 0)
        r.accel_wait_share =
            static_cast<double>(qs.total_wait_cycles) /
            static_cast<double>(qs.total_wait_cycles +
                                qs.total_service_cycles);
    return r;
}

}  // namespace

int
main(int argc, char **argv)
{
    const Options opt = ParseOptions(argc, argv);

    DescriptorPool pool;
    const auto parsed = ParseSchema(R"(
        message EchoRequest { optional string text = 1; }
        message EchoResponse { optional string text = 1; }
    )",
                                    &pool);
    PA_CHECK(parsed.ok);
    pool.Compile(proto::HasbitsMode::kSparse);
    const int req = pool.FindMessage("EchoRequest");
    const int rsp = pool.FindMessage("EchoResponse");

    std::printf(
        "RPC serving throughput: %u echo calls, %zu-byte payload\n"
        "  modeled QPS = calls / slowest worker virtual timeline; "
        "latencies are modeled per-call (protoacc rows contend for ONE "
        "shared accelerator via the doorbell/completion queue)\n"
        "  wall QPS is host-machine dependent (threads on this "
        "container may share one core)\n\n",
        opt.calls, opt.payload);
    std::printf("  %-14s %7s %6s %14s %12s %9s %9s %9s %11s\n", "system",
                "workers", "batch", "modeled-QPS", "wall-QPS",
                "p50(us)", "p95(us)", "p99(us)", "accel-wait");
    for (const char *system :
         {"riscv-boom", "riscv-boom-gen", "Xeon", "protoacc"}) {
        if (std::string(system) == "riscv-boom-gen" &&
            proto::GetGeneratedCodec(pool) == nullptr) {
            std::printf("  %-14s (no generated codec linked; row "
                        "skipped)\n\n",
                        system);
            continue;
        }
        for (const uint32_t workers : opt.threads) {
            for (const uint32_t batch : opt.batches) {
                const RunResult r = RunOne(pool, req, rsp, system,
                                           workers, batch, opt);
                std::printf("  %-14s %7u %6u %14.0f %12.0f %9.2f "
                            "%9.2f %9.2f %10.1f%%\n",
                            system, workers, batch, r.modeled_qps,
                            r.wall_qps, r.p50_us, r.p95_us, r.p99_us,
                            100.0 * r.accel_wait_share);
            }
        }
        std::printf("\n");
    }
    std::printf(
        "  software backends scale with workers (one modeled core "
        "each); the shared accelerator saturates its units, and "
        "batching trades per-call fence overhead for queueing-visible "
        "tail latency\n");
    return 0;
}
