/**
 * Availability sweep for the device-health subsystem: intermittent
 * fault rate x quarantine threshold, on a pool of workers whose private
 * accelerators wedge intermittently (watchdog-recovered) while the
 * health policy quarantines repeat offenders, scrubs, self-tests and
 * reintegrates them.
 *
 * Per cell:
 *   - serving availability: answered calls / submitted calls (software
 *     fallback keeps serving while a device is fenced, so this should
 *     stay 1.0 — degraded, never down);
 *   - accelerated availability: fraction of the pool's modeled time NOT
 *     spent in quarantine maintenance (scrub + self-test windows);
 *   - MTTR: mean modeled repair time per completed quarantine episode
 *     (scrub + self-test cycles per reintegration, at the 2 GHz clock);
 *   - wasted cycles: total scrub + self-test cycles spent;
 *   - wrong answers: responses whose payload does not echo the request
 *     (MUST be zero in every cell — health management may cost time,
 *     never correctness).
 *
 * A software-only baseline row anchors the comparison: the sweep's
 * serving availability must never fall below it.
 *
 * Flags: --calls=N   logical calls per cell (default 600)
 *        --seed=S    base seed (default 0xAVA11 ~ 0xA0A11)
 *        --json=PATH write the sweep as JSON
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "proto/schema_parser.h"
#include "rpc/server_runtime.h"
#include "sim/fault.h"

using namespace protoacc;
using proto::DescriptorPool;
using proto::Message;

namespace {

struct Options
{
    uint64_t calls = 600;
    uint64_t seed = 0xA0A11;
    std::string json_path;
};

Options
ParseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--calls=", 0) == 0)
            opt.calls = std::strtoull(arg.c_str() + 8, nullptr, 10);
        else if (arg.rfind("--seed=", 0) == 0)
            opt.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
        else if (arg.rfind("--json=", 0) == 0)
            opt.json_path = arg.substr(7);
        else {
            std::fprintf(stderr,
                         "usage: availability_sweep [--calls=N] "
                         "[--seed=S] [--json=PATH]\n");
            std::exit(1);
        }
    }
    return opt;
}

constexpr uint32_t kWorkers = 2;
constexpr uint16_t kMethod = 1;
constexpr double kFreqGhz = 2.0;  // the modeled accelerator clock

struct CellResult
{
    double wedge_rate = 0;
    double quarantine_threshold = 0;
    bool software_only = false;
    uint64_t calls = 0;
    uint64_t answered = 0;
    uint64_t wrong_answers = 0;
    uint64_t lost_calls = 0;
    uint64_t quarantines = 0;
    uint64_t reintegrations = 0;
    uint64_t fenced_now = 0;
    uint64_t watchdog_resets = 0;
    uint64_t fallback_forced = 0;
    uint64_t wasted_cycles = 0;  ///< scrub + self-test
    double serving_availability = 0;
    double accel_availability = 0;
    double mttr_ns = 0;
    double modeled_span_ns = 0;
};

CellResult
RunCell(const DescriptorPool &pool, int req, int rsp, uint64_t seed,
        uint64_t calls, double wedge_rate, double quarantine_threshold,
        bool software_only)
{
    CellResult cell;
    cell.wedge_rate = wedge_rate;
    cell.quarantine_threshold = quarantine_threshold;
    cell.software_only = software_only;
    cell.calls = calls;

    const auto &rd = pool.message(req);
    const auto &sd = pool.message(rsp);
    const auto *req_text = rd.FindFieldByName("text");
    const auto *rsp_text = sd.FindFieldByName("text");

    sim::FaultConfig fault_config;
    fault_config.unit_wedge_rate = wedge_rate;
    fault_config.unit_fault_burst_len = 3;  // correlated, not i.i.d.
    std::vector<std::unique_ptr<sim::FaultInjector>> injectors;
    for (uint32_t i = 0; i < kWorkers; ++i)
        injectors.push_back(std::make_unique<sim::FaultInjector>(
            seed + 100 + i, fault_config));

    rpc::RuntimeConfig config;
    config.num_workers = kWorkers;
    config.max_batch = 8;
    if (!software_only) {
        config.health.enabled = true;
        config.health.quarantine_threshold = quarantine_threshold;
    }

    rpc::RpcServerRuntime runtime(
        &pool,
        [&](uint32_t worker) -> std::unique_ptr<rpc::CodecBackend> {
            if (software_only)
                return std::make_unique<rpc::SoftwareBackend>(
                    cpu::BoomParams(), pool);
            accel::AccelConfig accel_config;
            accel_config.watchdog.budget_cycles = 100'000;
            auto accel = std::make_unique<rpc::AcceleratedBackend>(
                pool, accel_config);
            accel->SetFaultInjector(injectors[worker].get());
            return std::make_unique<rpc::HybridCodecBackend>(
                std::move(accel),
                std::make_unique<rpc::SoftwareBackend>(
                    cpu::BoomParams(), pool));
        },
        config);

    runtime.RegisterMethod(
        kMethod, req, rsp,
        [&](const Message &request, Message response) {
            response.SetString(*rsp_text,
                               request.GetString(*req_text));
        });
    runtime.Start();

    rpc::SoftwareBackend client(cpu::BoomParams(), pool);
    proto::Arena client_arena;
    constexpr uint64_t kBatchPerRound = 50;
    for (uint64_t submitted = 0; submitted < calls;) {
        const uint64_t n = std::min(kBatchPerRound, calls - submitted);
        for (uint64_t i = 0; i < n; ++i) {
            const uint64_t idx = submitted + i;
            client_arena.Reset();
            Message request = Message::Create(&client_arena, pool, req);
            request.SetString(*req_text, "call-" + std::to_string(idx));
            const std::vector<uint8_t> payload =
                client.Serialize(request);
            rpc::FrameHeader header;
            header.payload_bytes = static_cast<uint32_t>(payload.size());
            header.call_id = static_cast<uint32_t>(idx + 1);
            header.method_id = kMethod;
            header.kind = rpc::FrameKind::kRequest;
            PA_CHECK(StatusOk(runtime.Submit(header, payload.data())));
        }
        submitted += n;
        runtime.Drain();
    }

    // Verify every reply against its request (wrong answers must be 0).
    std::vector<bool> answered(calls, false);
    for (uint32_t w = 0; w < runtime.num_workers(); ++w) {
        size_t off = 0;
        while (const auto f = runtime.replies(w).Next(&off)) {
            if (f->header.kind != rpc::FrameKind::kResponse)
                continue;
            const uint64_t idx = f->header.call_id - 1;
            if (idx >= calls)
                continue;
            client_arena.Reset();
            Message response =
                Message::Create(&client_arena, pool, rsp);
            const StatusCode parse = client.Deserialize(
                f->payload, f->header.payload_bytes, &response);
            const std::string expect = "call-" + std::to_string(idx);
            if (!StatusOk(parse) ||
                std::string(response.GetString(*rsp_text)) != expect) {
                ++cell.wrong_answers;
                continue;
            }
            if (!answered[idx]) {
                answered[idx] = true;
                ++cell.answered;
            }
        }
    }
    for (uint64_t i = 0; i < calls; ++i)
        if (!answered[i])
            ++cell.lost_calls;

    const rpc::RuntimeSnapshot snap = runtime.Snapshot();
    runtime.Shutdown();

    cell.quarantines = snap.health_quarantines;
    cell.reintegrations = snap.health_reintegrations;
    cell.fenced_now = snap.health_fenced_domains;
    cell.watchdog_resets = snap.watchdog_resets;
    cell.fallback_forced = snap.fallback_forced;
    cell.wasted_cycles =
        snap.health_scrub_cycles + snap.health_self_test_cycles;
    cell.modeled_span_ns = snap.modeled_span_ns;
    cell.serving_availability =
        calls > 0 ? static_cast<double>(cell.answered) /
                        static_cast<double>(calls)
                  : 0;
    const double maintenance_ns =
        static_cast<double>(cell.wasted_cycles) / kFreqGhz;
    const double pool_time_ns =
        snap.modeled_span_ns * static_cast<double>(kWorkers);
    cell.accel_availability =
        pool_time_ns > 0
            ? 1.0 - std::min(1.0, maintenance_ns / pool_time_ns)
            : 1.0;
    const uint64_t repaired =
        snap.health_reintegrations > 0 ? snap.health_reintegrations : 0;
    cell.mttr_ns = repaired > 0 ? maintenance_ns /
                                      static_cast<double>(repaired)
                                : 0;
    return cell;
}

void
PrintCell(const CellResult &c)
{
    std::printf(
        "  wedge %.3f  thresh %.2f%s | serve-avail %.4f  "
        "accel-avail %.4f  mttr %.0f ns  wasted %llu cyc | "
        "quar %llu  reint %llu  wd-resets %llu | wrong %llu  lost %llu\n",
        c.wedge_rate, c.quarantine_threshold,
        c.software_only ? " (sw baseline)" : "               ",
        c.serving_availability, c.accel_availability, c.mttr_ns,
        static_cast<unsigned long long>(c.wasted_cycles),
        static_cast<unsigned long long>(c.quarantines),
        static_cast<unsigned long long>(c.reintegrations),
        static_cast<unsigned long long>(c.watchdog_resets),
        static_cast<unsigned long long>(c.wrong_answers),
        static_cast<unsigned long long>(c.lost_calls));
}

void
WriteCellJson(std::FILE *f, const CellResult &c, bool last)
{
    std::fprintf(
        f,
        "    {\"wedge_rate\": %.4f, \"quarantine_threshold\": %.2f, "
        "\"software_only\": %s, \"calls\": %llu, \"answered\": %llu, "
        "\"wrong_answers\": %llu, \"lost_calls\": %llu, "
        "\"serving_availability\": %.6f, \"accel_availability\": %.6f, "
        "\"mttr_ns\": %.1f, \"wasted_cycles\": %llu, "
        "\"quarantines\": %llu, \"reintegrations\": %llu, "
        "\"fenced_now\": %llu, \"watchdog_resets\": %llu, "
        "\"fallback_forced\": %llu, \"modeled_span_ns\": %.1f}%s\n",
        c.wedge_rate, c.quarantine_threshold,
        c.software_only ? "true" : "false",
        static_cast<unsigned long long>(c.calls),
        static_cast<unsigned long long>(c.answered),
        static_cast<unsigned long long>(c.wrong_answers),
        static_cast<unsigned long long>(c.lost_calls),
        c.serving_availability, c.accel_availability, c.mttr_ns,
        static_cast<unsigned long long>(c.wasted_cycles),
        static_cast<unsigned long long>(c.quarantines),
        static_cast<unsigned long long>(c.reintegrations),
        static_cast<unsigned long long>(c.fenced_now),
        static_cast<unsigned long long>(c.watchdog_resets),
        static_cast<unsigned long long>(c.fallback_forced),
        c.modeled_span_ns, last ? "" : ",");
}

}  // namespace

int
main(int argc, char **argv)
{
    const Options opt = ParseOptions(argc, argv);

    DescriptorPool pool;
    const auto parsed = proto::ParseSchema(R"(
        message AvailRequest { optional string text = 1; }
        message AvailResponse { optional string text = 1; }
    )",
                                           &pool);
    PA_CHECK(parsed.ok);
    pool.Compile(proto::HasbitsMode::kSparse);
    const int req = pool.FindMessage("AvailRequest");
    const int rsp = pool.FindMessage("AvailResponse");

    const std::vector<double> wedge_rates = {0.0, 0.01, 0.03, 0.10};
    const std::vector<double> thresholds = {0.20, 0.45, 0.70};

    std::printf(
        "Availability sweep — %llu calls/cell, seed 0x%llx, %u workers\n"
        "============================================================\n",
        static_cast<unsigned long long>(opt.calls),
        static_cast<unsigned long long>(opt.seed), kWorkers);

    const CellResult baseline = RunCell(pool, req, rsp, opt.seed,
                                        opt.calls, 0.0, 0.0, true);
    PrintCell(baseline);

    std::vector<CellResult> cells;
    for (const double rate : wedge_rates)
        for (const double thresh : thresholds) {
            cells.push_back(RunCell(pool, req, rsp, opt.seed, opt.calls,
                                    rate, thresh, false));
            PrintCell(cells.back());
        }

    if (!opt.json_path.empty()) {
        std::FILE *f = std::fopen(opt.json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write %s\n",
                         opt.json_path.c_str());
            return 1;
        }
        std::fprintf(f, "{\n  \"baseline\": \n");
        WriteCellJson(f, baseline, true);
        std::fprintf(f, "  ,\"cells\": [\n");
        for (size_t i = 0; i < cells.size(); ++i)
            WriteCellJson(f, cells[i], i + 1 == cells.size());
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", opt.json_path.c_str());
    }

    bool ok = true;
    auto require = [&ok](bool cond, const char *what) {
        if (!cond) {
            std::fprintf(stderr, "FAIL: %s\n", what);
            ok = false;
        }
    };
    for (const CellResult &c : cells) {
        require(c.wrong_answers == 0,
                "health management served a wrong answer");
        require(c.lost_calls == 0, "health management lost a call");
        require(c.serving_availability >=
                    baseline.serving_availability,
                "serving availability fell below the software-fallback "
                "baseline");
    }
    // The sweep must actually exercise the lifecycle: at the highest
    // fault rate, quarantines fire; at rate 0, none do; and at least
    // one cell completed a full repair (quarantine -> scrub ->
    // self-test -> probation -> healthy).
    require(cells.back().quarantines > 0,
            "no quarantine fired at the highest fault rate");
    require(cells.front().quarantines == 0,
            "a quarantine fired with no faults injected");
    uint64_t total_reintegrations = 0;
    for (const CellResult &c : cells)
        total_reintegrations += c.reintegrations;
    require(total_reintegrations > 0,
            "no cell completed a repair (reintegration never "
            "exercised)");

    std::printf("availability under intermittent faults: %s\n",
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
