/**
 * Figure 11d: serialization microbenchmarks for field types not
 * "inline" in the top-level C++ message object (repeated fields,
 * strings, sub-messages).
 */
#include "harness/microbench.h"

using namespace protoacc;
using namespace protoacc::harness;

int
main()
{
    const auto benches = MakeAllocBenches();
    const cpu::CpuParams boom = cpu::BoomParams();
    const cpu::CpuParams xeon = cpu::XeonParams();
    const accel::AccelConfig accel_cfg;

    std::vector<FigureRow> rows;
    for (const auto &b : benches) {
        FigureRow row;
        row.name = b->name;
        row.boom = CpuSerialize(boom, b->workload).gbps;
        row.xeon = CpuSerialize(xeon, b->workload).gbps;
        row.accel = AccelSerialize(b->workload, accel_cfg).gbps;
        rows.push_back(row);
    }
    PrintFigure(
        "Figure 11d: ser., field types not \"inline\" in top-level C++ "
        "message objects",
        rows);
    return 0;
}
