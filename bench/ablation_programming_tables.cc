/**
 * §3.7 ablation: accelerator programming-interface overhead.
 *
 * Prior work (Optimus-Prime-style) builds per-message-INSTANCE tables:
 * every populated field costs a ~64-bit schema-entry write on the CPU's
 * critical path (inside setters/clear). Our design builds one ADT per
 * TYPE at load time and instead reads one presence bit per field number
 * in the defined range (sparse hasbits). A message therefore favors the
 * ADT design whenever its field-number usage density exceeds 1/64.
 *
 * This bench (1) sweeps density analytically to locate the crossover,
 * (2) samples the synthetic fleet to measure the fraction of real
 * messages favoring each design, and (3) reports total programming
 * state for both schemes.
 */
#include <cstdio>

#include "accel/adt.h"
#include "profile/samplers.h"

using namespace protoacc;
using namespace protoacc::profile;

int
main()
{
    std::printf("Ablation (S3.7): per-type ADTs + sparse hasbits vs "
                "per-instance programming tables\n\n");

    // (1) Analytic crossover: prior work writes 64 bits per present
    // field; ours reads (present / density) bits of hasbits.
    std::printf("  %-10s %18s %18s %8s\n", "density",
                "prior bits/field", "ours bits/field", "winner");
    for (double density :
         {0.005, 1.0 / 64.0, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0}) {
        const double prior_bits = 64.0;
        const double ours_bits = 1.0 / density;
        std::printf("  %-10.4f %18.1f %18.1f %8s\n", density,
                    prior_bits, ours_bits,
                    ours_bits < prior_bits ? "ADT" : "per-inst");
    }
    std::printf("  crossover at density = 1/64 = %.4f\n\n", 1.0 / 64);

    // (2) Fleet measurement.
    Fleet fleet{FleetParams{}};
    ProtobufzSampler sampler(&fleet, /*seed=*/23);
    const ShapeAggregate agg = sampler.Collect(/*messages=*/10000);
    std::printf(
        "  fleet messages favoring the ADT design: %.1f%% "
        "(paper: >= 92%%)\n\n",
        100.0 * agg.density_over_1_64 / agg.density_samples);

    // (3) Programming-state footprint: one ADT per type, forever,
    // vs fresh tables per serialized message instance.
    proto::Arena arena;
    size_t adt_bytes = 0;
    size_t types = 0;
    for (size_t s = 0; s < fleet.service_count(); ++s) {
        accel::AdtBuilder adts(fleet.service(s).pool(), &arena);
        adt_bytes += adts.total_bytes();
        types += fleet.service(s).pool().message_count();
    }
    // Per-instance scheme: ~8 B per present field, rebuilt per message.
    double per_instance_bytes_per_msg = 0;
    double fields = 0;
    for (const auto &[key, stats] : agg.by_type)
        fields += static_cast<double>(stats.count);
    per_instance_bytes_per_msg =
        8.0 * fields / static_cast<double>(agg.messages_sampled);
    std::printf(
        "  ADT state: %zu bytes across %zu types, written once at "
        "program load\n",
        adt_bytes, types);
    std::printf(
        "  per-instance tables: ~%.0f bytes per top-level message, "
        "written on every serialization\n",
        per_instance_bytes_per_msg);
    return 0;
}
