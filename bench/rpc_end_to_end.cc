/**
 * End-to-end RPC bench (the paper's motivating scenario, §1): for a
 * sweep of payload sizes, measure one echo call's modeled time split
 * into client codec / server codec / network on the three systems, and
 * report the serialization share of the total — the "datacenter tax"
 * the accelerator removes.
 *
 * Flags: --latency-us=F (one-way channel latency, default 10) and
 * --gbps=F (channel bandwidth, default 100) configure the simulated
 * network, e.g. --latency-us=2 --gbps=400 for a tighter fabric.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "proto/schema_parser.h"
#include "rpc/rpc.h"

using namespace protoacc;
using namespace protoacc::rpc;
using proto::DescriptorPool;
using proto::Message;

namespace {

struct Result
{
    double us_per_call;
    double codec_share;
};

Result
Run(const DescriptorPool &pool, int req, int rsp, size_t payload_len,
    const char *system, const SimulatedChannel &channel)
{
    auto make_backend = [&]() -> std::unique_ptr<CodecBackend> {
        if (std::string(system) == "riscv-boom")
            return std::make_unique<SoftwareBackend>(cpu::BoomParams(),
                                                     pool);
        if (std::string(system) == "Xeon")
            return std::make_unique<SoftwareBackend>(cpu::XeonParams(),
                                                     pool);
        return std::make_unique<AcceleratedBackend>(pool);
    };

    RpcServer server(&pool, make_backend());
    const auto &rd = pool.message(req);
    const auto &sd = pool.message(rsp);
    server.RegisterMethod(
        1, req, rsp,
        [&rd, &sd](const Message &request, Message response) {
            response.SetString(
                *sd.FindFieldByName("text"),
                request.GetString(*rd.FindFieldByName("text")));
        });
    RpcSession session(&pool, make_backend(), &server, channel);

    constexpr int kCalls = 48;
    proto::Arena arena;
    for (int i = 0; i < kCalls; ++i) {
        Message request = Message::Create(&arena, pool, req);
        request.SetString(*rd.FindFieldByName("text"),
                          std::string(payload_len, 'x'));
        request.SetInt32(*rd.FindFieldByName("repeat"), 1);
        Message response = Message::Create(&arena, pool, rsp);
        PA_CHECK(StatusOk(session.Call(1, request, &response)));
    }
    const RpcTimeBreakdown &b = session.breakdown();
    return Result{b.total_ns() / 1000.0 / kCalls, b.codec_share()};
}

}  // namespace

int
main(int argc, char **argv)
{
    double latency_us = 10;
    double gbps = 100;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--latency-us=", 13) == 0)
            latency_us = std::strtod(arg + 13, nullptr);
        else if (std::strncmp(arg, "--gbps=", 7) == 0)
            gbps = std::strtod(arg + 7, nullptr);
        else {
            std::fprintf(stderr,
                         "usage: rpc_end_to_end [--latency-us=F] "
                         "[--gbps=F]\n");
            return 1;
        }
    }
    PA_CHECK_GT(gbps, 0.0);
    SimulatedChannel channel;
    channel.latency_ns = latency_us * 1000.0;
    channel.bytes_per_ns = gbps / 8.0;

    DescriptorPool pool;
    const auto parsed = ParseSchema(R"(
        message EchoRequest {
            optional string text = 1;
            optional int32 repeat = 2;
        }
        message EchoResponse {
            optional string text = 1;
        }
    )",
                                    &pool);
    PA_CHECK(parsed.ok);
    pool.Compile(proto::HasbitsMode::kSparse);
    const int req = pool.FindMessage("EchoRequest");
    const int rsp = pool.FindMessage("EchoResponse");

    std::printf("RPC end-to-end: echo call over a %.4gus/%.4gGbit "
                "channel (us/call, codec share of total)\n",
                latency_us, gbps);
    std::printf("  %-10s", "payload");
    for (const char *s : {"riscv-boom", "Xeon", "riscv-boom-accel"})
        std::printf(" %24s", s);
    std::printf("\n");
    for (size_t len : {16u, 256u, 4096u, 65536u}) {
        std::printf("  %-10zu", len);
        for (const char *s : {"riscv-boom", "Xeon", "riscv-boom-accel"}) {
            const Result r = Run(pool, req, rsp, len, s, channel);
            std::printf("     %9.2f us (%4.1f%%)", r.us_per_call,
                        100.0 * r.codec_share);
        }
        std::printf("\n");
    }
    std::printf(
        "\n  acceleration shrinks the codec share of RPC time toward "
        "zero; what remains is the network (and for small payloads, "
        "its latency floor)\n");
    return 0;
}
