/**
 * End-to-end RPC bench (the paper's motivating scenario, §1): for a
 * sweep of payload sizes, measure one echo call's modeled time split
 * into client codec / server codec / network on the three systems, and
 * report the serialization share of the total — the "datacenter tax"
 * the accelerator removes.
 */
#include <cstdio>

#include "proto/schema_parser.h"
#include "rpc/rpc.h"

using namespace protoacc;
using namespace protoacc::rpc;
using proto::DescriptorPool;
using proto::Message;

namespace {

struct Result
{
    double us_per_call;
    double codec_share;
};

Result
Run(const DescriptorPool &pool, int req, int rsp, size_t payload_len,
    const char *system)
{
    auto make_backend = [&]() -> std::unique_ptr<CodecBackend> {
        if (std::string(system) == "riscv-boom")
            return std::make_unique<SoftwareBackend>(cpu::BoomParams(),
                                                     pool);
        if (std::string(system) == "Xeon")
            return std::make_unique<SoftwareBackend>(cpu::XeonParams(),
                                                     pool);
        return std::make_unique<AcceleratedBackend>(pool);
    };

    RpcServer server(&pool, make_backend());
    const auto &rd = pool.message(req);
    const auto &sd = pool.message(rsp);
    server.RegisterMethod(
        1, req, rsp,
        [&rd, &sd](const Message &request, Message response) {
            response.SetString(
                *sd.FindFieldByName("text"),
                request.GetString(*rd.FindFieldByName("text")));
        });
    RpcSession session(&pool, make_backend(), &server,
                       SimulatedChannel{});

    constexpr int kCalls = 48;
    proto::Arena arena;
    for (int i = 0; i < kCalls; ++i) {
        Message request = Message::Create(&arena, pool, req);
        request.SetString(*rd.FindFieldByName("text"),
                          std::string(payload_len, 'x'));
        request.SetInt32(*rd.FindFieldByName("repeat"), 1);
        Message response = Message::Create(&arena, pool, rsp);
        PA_CHECK(session.Call(1, request, &response));
    }
    const RpcTimeBreakdown &b = session.breakdown();
    return Result{b.total_ns() / 1000.0 / kCalls, b.codec_share()};
}

}  // namespace

int
main()
{
    DescriptorPool pool;
    const auto parsed = ParseSchema(R"(
        message EchoRequest {
            optional string text = 1;
            optional int32 repeat = 2;
        }
        message EchoResponse {
            optional string text = 1;
        }
    )",
                                    &pool);
    PA_CHECK(parsed.ok);
    pool.Compile(proto::HasbitsMode::kSparse);
    const int req = pool.FindMessage("EchoRequest");
    const int rsp = pool.FindMessage("EchoResponse");

    std::printf("RPC end-to-end: echo call over a 10us/100Gbit channel "
                "(us/call, codec share of total)\n");
    std::printf("  %-10s", "payload");
    for (const char *s : {"riscv-boom", "Xeon", "riscv-boom-accel"})
        std::printf(" %24s", s);
    std::printf("\n");
    for (size_t len : {16u, 256u, 4096u, 65536u}) {
        std::printf("  %-10zu", len);
        for (const char *s : {"riscv-boom", "Xeon", "riscv-boom-accel"}) {
            const Result r = Run(pool, req, rsp, len, s);
            std::printf("     %9.2f us (%4.1f%%)", r.us_per_call,
                        100.0 * r.codec_share);
        }
        std::printf("\n");
    }
    std::printf(
        "\n  acceleration shrinks the codec share of RPC time toward "
        "zero; what remains is the network (and for small payloads, "
        "its latency floor)\n");
    return 0;
}
