/**
 * RPC scenario: a simulated key-value service where requests and
 * responses are protobuf messages. The client serializes a request,
 * the "network" carries the wire bytes, the server deserializes,
 * handles it, and serializes a response.
 *
 * This is the classic protobuf use the paper profiles in §3.4 (and
 * finds to be the *minority* of fleet ser/deser cycles). The example
 * compares total modeled message-handling time on the BOOM baseline vs
 * the accelerated SoC across a batch of calls.
 *
 *   ./build/examples/rpc_service
 */
#include <cstdio>
#include <map>
#include <string>

#include "accel/accelerator.h"
#include "cpu/cpu_model.h"
#include "proto/parser.h"
#include "proto/schema_parser.h"
#include "proto/serializer.h"

using namespace protoacc;
using namespace protoacc::proto;

namespace {

/// The KV service schema, defined in the .proto language and compiled
/// by this library's protoc-analog frontend.
constexpr const char *kKvProto = R"proto(
    syntax = "proto2";

    message KvRequest {
        enum Op {
            GET = 0;
            PUT = 1;
        }
        optional Op op = 1 [default = GET];
        optional string key = 2;
        optional bytes value = 3;
        optional uint32 deadline_ms = 4;
    }

    message KvResponse {
        optional int32 status = 1;  // 0 = OK, 5 = NOT_FOUND
        optional bytes value = 2;
        optional uint64 server_ns = 3;
    }
)proto";

struct KvSchema
{
    DescriptorPool pool;
    int request;
    int response;

    KvSchema()
    {
        const SchemaParseResult parsed = ParseSchema(kKvProto, &pool);
        PA_CHECK(parsed.ok);
        pool.Compile();
        request = pool.FindMessage("KvRequest");
        response = pool.FindMessage("KvResponse");
    }
};

/// The server's application logic, independent of transport.
class KvServer
{
  public:
    explicit KvServer(const KvSchema *schema) : schema_(schema) {}

    /// Handle a parsed request, filling in @p response.
    void
    Handle(const Message &request, Message response)
    {
        const auto &req_desc = schema_->pool.message(schema_->request);
        const auto &rsp_desc = schema_->pool.message(schema_->response);
        const auto &status = *rsp_desc.FindFieldByName("status");
        const std::string key(
            request.GetString(*req_desc.FindFieldByName("key")));
        if (request.GetInt32(*req_desc.FindFieldByName("op")) == 1) {
            store_[key] = std::string(
                request.GetString(*req_desc.FindFieldByName("value")));
            response.SetInt32(status, 0);
        } else {
            auto it = store_.find(key);
            if (it == store_.end()) {
                response.SetInt32(status, 5);  // NOT_FOUND
            } else {
                response.SetInt32(status, 0);
                response.SetString(*rsp_desc.FindFieldByName("value"),
                                   it->second);
            }
        }
        response.SetUint64(*rsp_desc.FindFieldByName("server_ns"), 42);
    }

    size_t size() const { return store_.size(); }

  private:
    const KvSchema *schema_;
    std::map<std::string, std::string> store_;
};

}  // namespace

int
main()
{
    KvSchema schema;
    const auto &req_desc = schema.pool.message(schema.request);

    // Build a batch of calls: puts followed by gets.
    constexpr int kCalls = 200;
    Arena arena;
    std::vector<Message> requests;
    for (int i = 0; i < kCalls; ++i) {
        Message req = Message::Create(&arena, schema.pool,
                                      schema.request);
        const bool put = i < kCalls / 2;
        req.SetInt32(*req_desc.FindFieldByName("op"), put ? 1 : 0);
        req.SetString(*req_desc.FindFieldByName("key"),
                      "user:" + std::to_string(i % (kCalls / 2)));
        if (put) {
            req.SetString(*req_desc.FindFieldByName("value"),
                          std::string(40 + i % 200, 'v'));
        }
        req.SetUint32(*req_desc.FindFieldByName("deadline_ms"), 100);
        requests.push_back(req);
    }

    // ---- Path A: software codec on the BOOM baseline. ----
    cpu::CpuCostModel boom(cpu::BoomParams());
    KvServer server_a(&schema);
    double wire_bytes = 0;
    for (const auto &req : requests) {
        const auto wire = Serialize(req, &boom);       // client
        Message parsed = Message::Create(&arena, schema.pool,
                                         schema.request);
        PA_CHECK(ParseFromBuffer(wire.data(), wire.size(), &parsed,
                                 &boom) == ParseStatus::kOk);  // server
        Message rsp = Message::Create(&arena, schema.pool,
                                      schema.response);
        server_a.Handle(parsed, rsp);
        const auto rsp_wire = Serialize(rsp, &boom);   // server
        Message rsp_parsed = Message::Create(&arena, schema.pool,
                                             schema.response);
        PA_CHECK(ParseFromBuffer(rsp_wire.data(), rsp_wire.size(),
                                 &rsp_parsed,
                                 &boom) == ParseStatus::kOk);  // client
        wire_bytes += static_cast<double>(wire.size() + rsp_wire.size());
    }
    std::printf("software (riscv-boom): %.0f cycles for %d calls "
                "(%.0f bytes on the wire)\n",
                boom.cycles(), kCalls, wire_bytes);

    // ---- Path B: the same calls through the accelerator. ----
    sim::MemorySystem memory{sim::MemorySystemConfig{}};
    accel::ProtoAccelerator device(&memory, accel::AccelConfig{});
    Arena adt_arena;
    accel::AdtBuilder adts(schema.pool, &adt_arena);
    accel::SerArena ser_arena(8 << 20);
    Arena accel_arena;
    device.SerAssignArena(&ser_arena);
    device.DeserAssignArena(&accel_arena);

    KvServer server_b(&schema);
    uint64_t accel_cycles = 0;
    for (const auto &req : requests) {
        uint64_t c = 0;
        // Client serializes the request on the accelerator.
        device.EnqueueSer(accel::MakeSerJob(adts, schema.request,
                                            schema.pool, req.raw()));
        PA_CHECK(device.BlockForSerCompletion(&c) ==
                 accel::AccelStatus::kOk);
        accel_cycles += c;
        const auto &req_wire =
            ser_arena.output(ser_arena.output_count() - 1);

        // Server deserializes, handles, serializes the response.
        Message parsed = Message::Create(&arena, schema.pool,
                                         schema.request);
        device.EnqueueDeser(accel::MakeDeserJob(adts, schema.request,
                                                schema.pool,
                                                parsed.raw(),
                                                req_wire.data,
                                                req_wire.size));
        PA_CHECK(device.BlockForDeserCompletion(&c) ==
                 accel::AccelStatus::kOk);
        accel_cycles += c;
        Message rsp = Message::Create(&arena, schema.pool,
                                      schema.response);
        server_b.Handle(parsed, rsp);
        device.EnqueueSer(accel::MakeSerJob(adts, schema.response,
                                            schema.pool, rsp.raw()));
        PA_CHECK(device.BlockForSerCompletion(&c) ==
                 accel::AccelStatus::kOk);
        accel_cycles += c;
        const auto &rsp_wire =
            ser_arena.output(ser_arena.output_count() - 1);

        // Client deserializes the response.
        Message rsp_parsed = Message::Create(&arena, schema.pool,
                                             schema.response);
        device.EnqueueDeser(accel::MakeDeserJob(
            adts, schema.response, schema.pool, rsp_parsed.raw(),
            rsp_wire.data, rsp_wire.size));
        PA_CHECK(device.BlockForDeserCompletion(&c) ==
                 accel::AccelStatus::kOk);
        accel_cycles += c;
    }
    PA_CHECK_EQ(server_a.size(), server_b.size());
    std::printf("accelerated SoC:       %llu cycles for %d calls\n",
                static_cast<unsigned long long>(accel_cycles), kCalls);
    std::printf("speedup on RPC message handling: %.1fx\n",
                boom.cycles() / static_cast<double>(accel_cycles));
    std::printf(
        "\n(note: the paper finds only 16%% of deser / 35%% of ser "
        "cycles are RPC-driven — see storage_log for the majority "
        "use case)\n");
    return 0;
}
