/**
 * Fleet study walk-through: runs a miniature version of the paper's §3
 * profiling pipeline — GWP, protobufz and protodb analogs over the
 * synthetic fleet — and prints the §3.9 design-insight checklist with
 * the measured values that justify each accelerator design decision.
 *
 *   ./build/examples/fleet_study
 */
#include <cstdio>

#include "profile/samplers.h"

using namespace protoacc;
using namespace protoacc::profile;

int
main()
{
    Fleet fleet{FleetParams{}};
    GwpSampler gwp(&fleet, 1);
    ProtobufzSampler protobufz(&fleet, 2);

    const CycleProfile cycles = gwp.Collect(5000);
    const ShapeAggregate shapes = protobufz.Collect(8000);
    const SchemaStats schema = CollectSchemaStats(fleet);

    std::printf("== Key insights for accelerator design (S3.9) ==\n\n");

    const double offloadable =
        (cycles.pct("deserialize") + cycles.pct("serialize") +
         cycles.pct("byte_size")) /
        100.0 * kProtobufShareOfFleetCycles * kCppShareOfProtobufCycles *
        100.0;
    std::printf(
        "1. Opportunity: ser+deser+bytesize = %.2f%% of fleet cycles "
        "(paper: 3.45%%)\n",
        offloadable);

    std::printf(
        "2. Stability: %.1f%% of sampled bytes are proto2 (paper: 96%%) "
        "-> formats are stable, acceleration is viable\n",
        100.0 * shapes.proto2_bytes / shapes.total_bytes);

    std::printf(
        "3. Placement: RPC drives only %.0f%%/%.0f%% of deser/ser "
        "cycles (paper facts) -> near-core, not on-NIC\n",
        kDeserRpcShare * 100, kSerRpcShare * 100);

    double cum = 0;
    for (size_t i = 0; i < 3; ++i)
        cum += shapes.msg_sizes.count_pct(i);
    std::printf(
        "4. Granularity: %.0f%% of messages are <= 32 B -> offload "
        "overhead must be tiny (batching + RoCC, not PCIe)\n",
        cum);

    double varint_fields = 0, total_fields = 0;
    for (const auto &[key, stats] : shapes.by_type) {
        total_fields += static_cast<double>(stats.count);
        if (proto::IsVarintType(static_cast<proto::FieldType>(key.first)))
            varint_fields += static_cast<double>(stats.count);
    }
    std::printf(
        "5. Field mix: %.0f%% of fields are varint-like -> single-cycle "
        "varint units, not just fast memcpy\n",
        100.0 * varint_fields / total_fields);

    std::printf(
        "6. Programming interface: %.0f%% of messages have density > "
        "1/64 -> per-type ADTs + sparse hasbits beat per-instance "
        "tables\n",
        100.0 * shapes.density_over_1_64 / shapes.density_samples);

    double depth_bytes_12 = 0, depth_bytes_total = 0;
    for (const auto &[depth, bytes] : shapes.bytes_by_depth) {
        depth_bytes_total += bytes;
        if (depth <= kDepth999)
            depth_bytes_12 += bytes;
    }
    std::printf(
        "7. Sub-messages: %.2f%% of bytes at depth <= %d (max observed "
        "%d) -> 25 on-chip context-stack entries suffice\n",
        100.0 * depth_bytes_12 / depth_bytes_total, kDepth999,
        shapes.max_depth);

    std::printf(
        "\nprotodb: %llu types, %llu fields, %llu/%llu repeated scalar "
        "fields packed\n",
        static_cast<unsigned long long>(schema.message_types),
        static_cast<unsigned long long>(schema.fields),
        static_cast<unsigned long long>(schema.packed_repeated_fields),
        static_cast<unsigned long long>(schema.repeated_scalar_fields));
    return 0;
}
