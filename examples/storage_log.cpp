/**
 * Storage scenario: persisting protobuf records to a durable log —
 * the *majority* use of serialization in the fleet (§3.4: over 83% of
 * deserialization cycles are not RPC-related).
 *
 * A LogWriter appends length-prefixed serialized records to a log
 * buffer; a LogReader scans it back. Batches of records are
 * serialized/deserialized in one accelerator fence (the §4.4.1
 * batching interface), which is where the accelerator's low offload
 * overhead pays off for small records.
 *
 *   ./build/examples/storage_log
 */
#include <cstdio>
#include <vector>

#include "accel/accelerator.h"
#include "cpu/cpu_model.h"
#include "harness/stats_report.h"
#include "proto/parser.h"
#include "proto/serializer.h"

using namespace protoacc;
using namespace protoacc::proto;

namespace {

/// An append-only log of length-prefixed wire-format records.
class Log
{
  public:
    void
    Append(const uint8_t *data, size_t size)
    {
        uint8_t prefix[kMaxVarintBytes];
        const int n = EncodeVarint(size, prefix);
        bytes_.insert(bytes_.end(), prefix, prefix + n);
        bytes_.insert(bytes_.end(), data, data + size);
        ++records_;
    }

    /// Visit each record's (pointer, size).
    template <typename Fn>
    void
    Scan(Fn &&fn) const
    {
        const uint8_t *p = bytes_.data();
        const uint8_t *end = p + bytes_.size();
        while (p < end) {
            uint64_t len = 0;
            const int n = DecodeVarint(p, end, &len);
            PA_CHECK_GT(n, 0);
            p += n;
            fn(p, static_cast<size_t>(len));
            p += len;
        }
    }

    size_t records() const { return records_; }
    size_t bytes() const { return bytes_.size(); }

  private:
    std::vector<uint8_t> bytes_;
    size_t records_ = 0;
};

}  // namespace

int
main()
{
    // Schema: a telemetry event record.
    DescriptorPool pool;
    const int event = pool.AddMessage("Event");
    pool.AddField(event, "timestamp_us", 1, FieldType::kInt64);
    pool.AddField(event, "severity", 2, FieldType::kEnum);
    pool.AddField(event, "source", 3, FieldType::kString);
    pool.AddField(event, "message", 4, FieldType::kString);
    pool.AddField(event, "counters", 5, FieldType::kUint64,
                  Label::kRepeated, /*packed=*/true);
    pool.Compile();
    const auto &desc = pool.message(event);

    // Build a batch of records (mostly small — Figure 3's world).
    constexpr int kRecords = 500;
    Arena arena;
    std::vector<Message> records;
    for (int i = 0; i < kRecords; ++i) {
        Message e = Message::Create(&arena, pool, event);
        e.SetInt64(*desc.FindFieldByName("timestamp_us"),
                   1'700'000'000'000'000LL + i);
        e.SetInt32(*desc.FindFieldByName("severity"), i % 4);
        e.SetString(*desc.FindFieldByName("source"), "frontend");
        e.SetString(*desc.FindFieldByName("message"),
                    i % 16 == 0 ? std::string(700, 'x')  // rare big one
                                : "request completed");
        for (int c = 0; c < 3; ++c) {
            e.AddRepeatedBits(*desc.FindFieldByName("counters"),
                              static_cast<uint64_t>(i * 100 + c));
        }
        records.push_back(e);
    }

    // ---- Write path, software baseline (BOOM cost model). ----
    cpu::CpuCostModel boom(cpu::BoomParams());
    Log sw_log;
    for (const auto &record : records) {
        const auto wire = Serialize(record, &boom);
        sw_log.Append(wire.data(), wire.size());
    }
    const double sw_write_cycles = boom.cycles();

    // ---- Write path, accelerator: one batch, one fence. ----
    sim::MemorySystem memory{sim::MemorySystemConfig{}};
    accel::ProtoAccelerator device(&memory, accel::AccelConfig{});
    Arena adt_arena;
    accel::AdtBuilder adts(pool, &adt_arena);
    accel::SerArena ser_arena(8 << 20);
    device.SerAssignArena(&ser_arena);
    for (const auto &record : records)
        device.EnqueueSer(accel::MakeSerJob(adts, event, pool,
                                            record.raw()));
    uint64_t accel_write_cycles = 0;
    PA_CHECK(device.BlockForSerCompletion(&accel_write_cycles) ==
             accel::AccelStatus::kOk);
    Log accel_log;
    for (size_t i = 0; i < ser_arena.output_count(); ++i) {
        const auto &out = ser_arena.output(i);
        accel_log.Append(out.data, out.size);
    }
    PA_CHECK_EQ(accel_log.bytes(), sw_log.bytes());

    std::printf("log write (%d records, %zu bytes):\n", kRecords,
                sw_log.bytes());
    std::printf("  riscv-boom software: %.0f cycles\n", sw_write_cycles);
    std::printf("  accelerated (one batched fence): %llu cycles "
                "(%.1fx)\n",
                static_cast<unsigned long long>(accel_write_cycles),
                sw_write_cycles /
                    static_cast<double>(accel_write_cycles));

    // ---- Read path: scan + deserialize every record. ----
    boom.Reset();
    size_t sw_read = 0;
    {
        Arena read_arena;
        sw_log.Scan([&](const uint8_t *p, size_t n) {
            Message e = Message::Create(&read_arena, pool, event);
            PA_CHECK(ParseFromBuffer(p, n, &e, &boom) ==
                     ParseStatus::kOk);
            ++sw_read;
        });
    }
    const double sw_read_cycles = boom.cycles();

    Arena accel_arena, dest_arena;
    device.DeserAssignArena(&accel_arena);
    size_t accel_read = 0;
    accel_log.Scan([&](const uint8_t *p, size_t n) {
        Message e = Message::Create(&dest_arena, pool, event);
        device.EnqueueDeser(
            accel::MakeDeserJob(adts, event, pool, e.raw(), p, n));
        ++accel_read;
    });
    uint64_t accel_read_cycles = 0;
    PA_CHECK(device.BlockForDeserCompletion(&accel_read_cycles) ==
             accel::AccelStatus::kOk);
    PA_CHECK_EQ(sw_read, accel_read);

    std::printf("log read (%zu records):\n", sw_read);
    std::printf("  riscv-boom software: %.0f cycles\n", sw_read_cycles);
    std::printf("  accelerated (one batched fence): %llu cycles "
                "(%.1fx)\n",
                static_cast<unsigned long long>(accel_read_cycles),
                sw_read_cycles /
                    static_cast<double>(accel_read_cycles));

    // Simulator-style stats dump for the curious.
    std::printf("\n%s", harness::AccelStatsReport(device).c_str());
    std::printf("%s", harness::MemoryStatsReport(memory).c_str());
    return 0;
}
