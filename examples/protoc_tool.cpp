/**
 * protoc_tool: a protoc-style command-line utility built on the
 * library's frontends — reads a .proto schema file and a textproto
 * message, encodes it to the binary wire format (via software or the
 * modeled accelerator), and decodes wire bytes back to text.
 *
 *   protoc_tool encode <schema.proto> <MessageType> <message.txtpb>
 *   protoc_tool decode <schema.proto> <MessageType> <message.bin>
 *   protoc_tool demo                  # self-contained walkthrough
 *
 * `encode` writes the wire bytes to stdout as a hex dump and verifies
 * software/accelerator agreement; `decode` prints the DebugString.
 */
#include <cstdio>
#include <fstream>
#include <sstream>

#include "accel/accelerator.h"
#include "proto/parser.h"
#include "proto/schema_parser.h"
#include "proto/serializer.h"
#include "proto/text_format.h"

using namespace protoacc;
using namespace protoacc::proto;

namespace {

std::string
ReadFile(const char *path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path);
        std::exit(1);
    }
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

DescriptorPool
LoadSchema(const std::string &text)
{
    DescriptorPool pool;
    const SchemaParseResult result = ParseSchema(text, &pool);
    if (!result.ok) {
        std::fprintf(stderr, "schema error (line %d): %s\n", result.line,
                     result.error.c_str());
        std::exit(1);
    }
    pool.Compile();
    return pool;
}

void
HexDump(const uint8_t *data, size_t size)
{
    for (size_t i = 0; i < size; ++i) {
        std::printf("%02x%s", data[i],
                    (i + 1) % 16 == 0 || i + 1 == size ? "\n" : " ");
    }
}

int
Encode(const DescriptorPool &pool, int type, const std::string &text)
{
    Arena arena;
    Message msg = Message::Create(&arena, pool, type);
    std::string error;
    if (!ParseTextFormat(text, &msg, &error)) {
        std::fprintf(stderr, "textproto error: %s\n", error.c_str());
        return 1;
    }

    const auto wire = Serialize(msg);
    std::printf("encoded %zu bytes:\n", wire.size());
    HexDump(wire.data(), wire.size());

    // Cross-check: the accelerator model must produce identical bytes.
    sim::MemorySystem memory{sim::MemorySystemConfig{}};
    accel::ProtoAccelerator device(&memory, accel::AccelConfig{});
    Arena adt_arena;
    accel::AdtBuilder adts(pool, &adt_arena);
    accel::SerArena out(wire.size() * 2 + 4096);
    device.SerAssignArena(&out);
    device.EnqueueSer(accel::MakeSerJob(adts, type, pool, msg.raw()));
    uint64_t cycles = 0;
    PA_CHECK(device.BlockForSerCompletion(&cycles) ==
             accel::AccelStatus::kOk);
    const auto &accel_out = out.output(0);
    PA_CHECK(std::vector<uint8_t>(accel_out.data,
                                  accel_out.data + accel_out.size) ==
             wire);
    std::printf("# accelerator agrees (%llu modeled cycles @ 2 GHz)\n",
                static_cast<unsigned long long>(cycles));
    return 0;
}

int
Decode(const DescriptorPool &pool, int type, const std::string &bytes)
{
    Arena arena;
    Message msg = Message::Create(&arena, pool, type);
    const ParseStatus st = ParseFromBuffer(
        reinterpret_cast<const uint8_t *>(bytes.data()), bytes.size(),
        &msg);
    if (st != ParseStatus::kOk) {
        std::fprintf(stderr, "decode error: %s\n", ParseStatusName(st));
        return 1;
    }
    std::printf("%s", DebugString(msg).c_str());
    return 0;
}

int
Demo()
{
    const char *schema = R"(
        message Sensor {
            required string name = 1;
            optional double reading = 2;
            repeated uint32 history = 3 [packed = true];
        }
    )";
    const char *text = R"(
        name: "thermo-1"
        reading: 21.5
        history: 20
        history: 21
        history: 22
    )";
    std::printf("schema:%s\nmessage:%s\n", schema, text);
    DescriptorPool pool = LoadSchema(schema);
    return Encode(pool, pool.FindMessage("Sensor"), text);
}

}  // namespace

int
main(int argc, char **argv)
{
    if (argc == 2 && std::string(argv[1]) == "demo")
        return Demo();
    if (argc != 5) {
        std::fprintf(stderr,
                     "usage: %s encode|decode <schema.proto> "
                     "<MessageType> <input-file>\n       %s demo\n",
                     argv[0], argv[0]);
        return 2;
    }
    DescriptorPool pool = LoadSchema(ReadFile(argv[2]));
    const int type = pool.FindMessage(argv[3]);
    if (type < 0) {
        std::fprintf(stderr, "no message type '%s' in schema\n",
                     argv[3]);
        return 1;
    }
    const std::string input = ReadFile(argv[4]);
    return std::string(argv[1]) == "encode" ? Encode(pool, type, input)
                                            : Decode(pool, type, input);
}
