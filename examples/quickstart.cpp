/**
 * Quickstart: define a schema, build a message, serialize and parse it
 * with the software library, then run the same message through the
 * modeled protobuf accelerator and verify wire compatibility.
 *
 *   ./build/examples/quickstart
 */
#include <cstdio>

#include "accel/accelerator.h"
#include "proto/parser.h"
#include "proto/serializer.h"
#include "proto/text_format.h"

using namespace protoacc;
using namespace protoacc::proto;

int
main()
{
    // 1. Define message types (the role of a .proto file + protoc).
    DescriptorPool pool;
    const int address = pool.AddMessage("Address");
    pool.AddField(address, "city", 1, FieldType::kString);
    pool.AddField(address, "zip", 2, FieldType::kUint32);

    const int person = pool.AddMessage("Person");
    pool.AddField(person, "name", 1, FieldType::kString);
    pool.AddField(person, "id", 2, FieldType::kInt64);
    pool.AddField(person, "email", 3, FieldType::kString);
    pool.AddMessageField(person, "home", 4, address);
    pool.AddField(person, "lucky_numbers", 5, FieldType::kInt32,
                  Label::kRepeated, /*packed=*/true);
    pool.Compile();  // computes object layouts + default instances

    // 2. Build a message through the generated-code-style accessors.
    Arena arena;
    Message alice = Message::Create(&arena, pool, person);
    const auto &desc = pool.message(person);
    alice.SetString(*desc.FindFieldByName("name"), "Alice");
    alice.SetInt64(*desc.FindFieldByName("id"), 12345);
    alice.SetString(*desc.FindFieldByName("email"), "alice@example.com");
    Message home = alice.MutableMessage(*desc.FindFieldByName("home"));
    home.SetString(*home.descriptor().FindFieldByName("city"),
                   "Springfield");
    home.SetUint32(*home.descriptor().FindFieldByName("zip"), 99999);
    for (int n : {7, 13, 42})
        alice.AddRepeatedBits(*desc.FindFieldByName("lucky_numbers"),
                              static_cast<uint32_t>(n));

    std::printf("message:\n%s\n", DebugString(alice).c_str());

    // 3. Software serialize + parse round trip.
    const std::vector<uint8_t> wire = Serialize(alice);
    std::printf("software-serialized: %zu bytes\n", wire.size());

    Message copy = Message::Create(&arena, pool, person);
    PA_CHECK(ParseFromBuffer(wire.data(), wire.size(), &copy) ==
             ParseStatus::kOk);
    PA_CHECK(MessagesEqual(alice, copy));
    std::printf("software round trip: ok\n");

    // 4. The accelerator: generate ADTs (the modified protoc's job),
    //    assign arenas, and run both directions.
    sim::MemorySystem memory{sim::MemorySystemConfig{}};
    accel::ProtoAccelerator device(&memory, accel::AccelConfig{});
    Arena adt_arena;
    accel::AdtBuilder adts(pool, &adt_arena);

    accel::SerArena ser_arena;
    device.SerAssignArena(&ser_arena);
    device.EnqueueSer(accel::MakeSerJob(adts, person, pool, alice.raw()));
    uint64_t ser_cycles = 0;
    PA_CHECK(device.BlockForSerCompletion(&ser_cycles) ==
             accel::AccelStatus::kOk);
    const auto &out = ser_arena.output(0);
    PA_CHECK(std::vector<uint8_t>(out.data, out.data + out.size) ==
             wire);
    std::printf("accelerator serialization: %zu bytes in %llu cycles "
                "(byte-identical to software)\n",
                out.size, static_cast<unsigned long long>(ser_cycles));

    Arena accel_arena;
    device.DeserAssignArena(&accel_arena);
    Message accel_copy = Message::Create(&arena, pool, person);
    device.EnqueueDeser(accel::MakeDeserJob(
        adts, person, pool, accel_copy.raw(), wire.data(), wire.size()));
    uint64_t deser_cycles = 0;
    PA_CHECK(device.BlockForDeserCompletion(&deser_cycles) ==
             accel::AccelStatus::kOk);
    PA_CHECK(MessagesEqual(alice, accel_copy));
    std::printf("accelerator deserialization: %llu cycles "
                "(object deep-equal to software parse)\n",
                static_cast<unsigned long long>(deser_cycles));
    std::printf("at 2 GHz that is %.1f ns per operation\n",
                device.Seconds(deser_cycles) * 1e9);
    return 0;
}
