/**
 * Property-based tests over random schemas and messages: the software
 * codec must satisfy serialize/parse round-trip identity and
 * re-serialization stability for arbitrary proto2-subset schemas.
 */
#include <gtest/gtest.h>

#include "proto/parser.h"
#include "proto/schema_random.h"
#include "proto/serializer.h"

namespace protoacc::proto {
namespace {

class CodecPropertyTest : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(CodecPropertyTest, RoundTripPreservesMessage)
{
    Rng rng(GetParam());
    DescriptorPool pool;
    SchemaGenOptions schema_opts;
    const int root = GenerateRandomSchema(&pool, &rng, schema_opts);
    pool.Compile();

    Arena arena;
    Message msg = Message::Create(&arena, pool, root);
    PopulateRandomMessage(msg, &rng, MessageGenOptions{});

    const auto wire = Serialize(msg);
    Message back = Message::Create(&arena, pool, root);
    ASSERT_EQ(ParseFromBuffer(wire.data(), wire.size(), &back),
              ParseStatus::kOk)
        << "seed " << GetParam();
    EXPECT_TRUE(MessagesEqual(msg, back)) << "seed " << GetParam();
}

TEST_P(CodecPropertyTest, ReserializationIsByteStable)
{
    Rng rng(GetParam() ^ 0xabcdefull);
    DescriptorPool pool;
    const int root = GenerateRandomSchema(&pool, &rng, SchemaGenOptions{});
    pool.Compile();

    Arena arena;
    Message msg = Message::Create(&arena, pool, root);
    PopulateRandomMessage(msg, &rng, MessageGenOptions{});

    const auto wire = Serialize(msg);
    Message back = Message::Create(&arena, pool, root);
    ASSERT_EQ(ParseFromBuffer(wire.data(), wire.size(), &back),
              ParseStatus::kOk);
    EXPECT_EQ(Serialize(back), wire) << "seed " << GetParam();
}

TEST_P(CodecPropertyTest, ByteSizeMatchesEncoding)
{
    Rng rng(GetParam() ^ 0x1234567ull);
    DescriptorPool pool;
    const int root = GenerateRandomSchema(&pool, &rng, SchemaGenOptions{});
    pool.Compile();

    Arena arena;
    Message msg = Message::Create(&arena, pool, root);
    PopulateRandomMessage(msg, &rng, MessageGenOptions{});
    EXPECT_EQ(ByteSize(msg), Serialize(msg).size());
}

TEST_P(CodecPropertyTest, DenseAndSparseHasbitsProduceIdenticalWire)
{
    // §3.7/§4.2: the sparse hasbits representation is a layout change
    // only; the wire format must be unaffected.
    const uint64_t seed = GetParam() ^ 0x55aaull;
    std::vector<uint8_t> wires[2];
    for (int mode = 0; mode < 2; ++mode) {
        Rng rng(seed);
        DescriptorPool pool;
        const int root =
            GenerateRandomSchema(&pool, &rng, SchemaGenOptions{});
        pool.Compile(mode == 0 ? HasbitsMode::kDense
                               : HasbitsMode::kSparse);
        Arena arena;
        Message msg = Message::Create(&arena, pool, root);
        PopulateRandomMessage(msg, &rng, MessageGenOptions{});
        wires[mode] = Serialize(msg);
    }
    EXPECT_EQ(wires[0], wires[1]) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecPropertyTest,
                         ::testing::Range<uint64_t>(1, 41));

TEST(CodecFuzz, RandomBytesNeverCrashTheParser)
{
    // The parser must reject arbitrary garbage gracefully (no UB,
    // no aborts) -- checked under whatever sanitizer the build uses.
    Rng rng(2024);
    DescriptorPool pool;
    const int root = GenerateRandomSchema(&pool, &rng, SchemaGenOptions{});
    pool.Compile();

    for (int trial = 0; trial < 500; ++trial) {
        const size_t len = rng.NextBounded(200);
        std::vector<uint8_t> junk(len);
        for (auto &b : junk)
            b = static_cast<uint8_t>(rng.Next());
        Arena arena;
        Message m = Message::Create(&arena, pool, root);
        (void)ParseFromBuffer(junk.data(), junk.size(), &m);
    }
}

TEST(CodecFuzz, TruncationsOfValidWireNeverCrash)
{
    Rng rng(77);
    DescriptorPool pool;
    const int root = GenerateRandomSchema(&pool, &rng, SchemaGenOptions{});
    pool.Compile();
    Arena arena;
    Message msg = Message::Create(&arena, pool, root);
    PopulateRandomMessage(msg, &rng, MessageGenOptions{});
    const auto wire = Serialize(msg);
    for (size_t cut = 0; cut <= wire.size() && cut < 300; ++cut) {
        Arena a2;
        Message m = Message::Create(&a2, pool, root);
        (void)ParseFromBuffer(wire.data(), cut, &m);
    }
}

}  // namespace
}  // namespace protoacc::proto
