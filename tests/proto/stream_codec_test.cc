/**
 * Incremental (chunked) codec unit tests: the StreamDecoder must
 * deliver exactly the fields a whole-buffer parse of the same bytes
 * would materialize — under any chunking of the input — and the
 * StreamEncoder must emit bytes identical to a whole-buffer serialize
 * of the equivalent message. Malformed and oversized streams must fail
 * with the same status classes the batch parser reports, and peak
 * buffering must stay bounded by the record limit, never the stream.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "proto/codec_reference.h"
#include "proto/schema_parser.h"
#include "proto/serializer.h"
#include "proto/stream_codec.h"

namespace protoacc::proto {
namespace {

/// Records every delivered field for inspection.
class CollectSink : public StreamSink
{
  public:
    struct Event
    {
        uint32_t field = 0;
        uint64_t bits = 0;
        std::string str;
        uint64_t record_id = 0;  ///< Rec.id of a delivered record
        enum { kScalar, kString, kRecord } kind = kScalar;
    };

    ParseStatus
    OnScalar(const FieldDescriptor &field, uint64_t bits) override
    {
        events.push_back({field.number, bits, {}, 0, Event::kScalar});
        return ParseStatus::kOk;
    }
    ParseStatus
    OnString(const FieldDescriptor &field,
             std::string_view data) override
    {
        events.push_back(
            {field.number, 0, std::string(data), 0, Event::kString});
        return ParseStatus::kOk;
    }
    ParseStatus
    OnRecord(const FieldDescriptor &field,
             const Message &record) override
    {
        const auto &d = record.descriptor();
        const FieldDescriptor *id = d.FindFieldByName("id");
        events.push_back({field.number, 0, {},
                          id != nullptr ? record.GetUint64(*id) : 0,
                          Event::kRecord});
        return ParseStatus::kOk;
    }

    std::vector<Event> events;
};

class StreamingCodecTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto parsed = ParseSchema(R"(
            message Rec {
                optional uint64 id = 1;
                optional string body = 2;
            }
            message Feed {
                optional uint64 seq = 1;
                optional string note = 2;
                repeated Rec recs = 3;
                optional fixed64 stamp = 4;
            }
        )",
                                        &pool_);
        ASSERT_TRUE(parsed.ok) << parsed.error;
        pool_.Compile(HasbitsMode::kSparse);
        feed_ = pool_.FindMessage("Feed");
        rec_ = pool_.FindMessage("Rec");
    }

    /// Whole-buffer wire image of a Feed with @p nrecs records.
    std::vector<uint8_t>
    MakeWire(size_t nrecs, size_t body_len = 16)
    {
        Arena arena;
        Message msg = Message::Create(&arena, pool_, feed_);
        const auto &d = pool_.message(feed_);
        msg.SetUint64(*d.FindFieldByName("seq"), 7);
        msg.SetString(*d.FindFieldByName("note"), "hello stream");
        const FieldDescriptor &recs = *d.FindFieldByName("recs");
        const auto &rd = pool_.message(rec_);
        for (size_t i = 0; i < nrecs; ++i) {
            Message r = msg.AddRepeatedMessage(recs);
            r.SetUint64(*rd.FindFieldByName("id"), i + 1);
            r.SetString(*rd.FindFieldByName("body"),
                        std::string(body_len, 'a' + (i % 26)));
        }
        msg.SetScalarBits(*d.FindFieldByName("stamp"),
                          0x1122334455667788ull);
        msg.SetHas(*d.FindFieldByName("stamp"));
        return Serialize(msg, nullptr);
    }

    /// Feed @p wire to a fresh decoder in @p chunk-sized pieces. The
    /// decoder stays alive in decoder_ for post-run assertions.
    ParseStatus
    Decode(const std::vector<uint8_t> &wire, size_t chunk,
           CollectSink *sink, SoftwareCodecEngine engine)
    {
        StreamCodecLimits limits;
        decoder_ = std::make_unique<StreamDecoder>(
            pool_, feed_, engine, limits, ParseLimits{}, sink);
        for (size_t off = 0; off < wire.size(); off += chunk) {
            const size_t len = std::min(chunk, wire.size() - off);
            const ParseStatus st = decoder_->Feed(wire.data() + off,
                                                  len);
            if (st != ParseStatus::kOk)
                return st;
        }
        return decoder_->Finish();
    }

    std::unique_ptr<StreamDecoder> decoder_;
    DescriptorPool pool_;
    int feed_ = -1;
    int rec_ = -1;
};

TEST_F(StreamingCodecTest, DecoderDeliversAllFieldsAnyChunking)
{
    const std::vector<uint8_t> wire = MakeWire(5);
    for (const size_t chunk : {size_t{1}, size_t{3}, size_t{17},
                               wire.size()}) {
        for (const auto engine : {SoftwareCodecEngine::kReference,
                                  SoftwareCodecEngine::kTable}) {
            CollectSink sink;
            ASSERT_EQ(Decode(wire, chunk, &sink, engine),
                      ParseStatus::kOk)
                << "chunk=" << chunk;
            // seq + note + 5 recs + stamp.
            ASSERT_EQ(sink.events.size(), 8u) << "chunk=" << chunk;
            EXPECT_EQ(sink.events[0].bits, 7u);
            EXPECT_EQ(sink.events[1].str, "hello stream");
            for (size_t i = 0; i < 5; ++i) {
                EXPECT_EQ(sink.events[2 + i].kind,
                          CollectSink::Event::kRecord);
                EXPECT_EQ(sink.events[2 + i].record_id, i + 1);
            }
            EXPECT_EQ(sink.events[7].bits, 0x1122334455667788ull);
            EXPECT_EQ(decoder_->bytes_consumed(), wire.size());
            EXPECT_EQ(decoder_->fields_delivered(), 8u);
        }
    }
}

TEST_F(StreamingCodecTest, EncoderMatchesWholeBufferSerialize)
{
    const std::vector<uint8_t> want = MakeWire(3);

    // Rebuild the same logical content through the incremental
    // encoder, appending fields in schema order.
    Arena arena;
    const auto &d = pool_.message(feed_);
    const auto &rd = pool_.message(rec_);
    StreamCodecLimits limits;
    StreamEncoder enc(SoftwareCodecEngine::kReference, limits);
    ASSERT_EQ(enc.AppendScalar(*d.FindFieldByName("seq"), 7),
              ParseStatus::kOk);
    ASSERT_EQ(enc.AppendString(*d.FindFieldByName("note"),
                               "hello stream"),
              ParseStatus::kOk);
    for (size_t i = 0; i < 3; ++i) {
        Message r = Message::Create(&arena, pool_, rec_);
        r.SetUint64(*rd.FindFieldByName("id"), i + 1);
        r.SetString(*rd.FindFieldByName("body"),
                    std::string(16, 'a' + (i % 26)));
        ASSERT_EQ(enc.AppendRecord(*d.FindFieldByName("recs"), r),
                  ParseStatus::kOk);
    }
    ASSERT_EQ(enc.AppendScalar(*d.FindFieldByName("stamp"),
                               0x1122334455667788ull),
              ParseStatus::kOk);

    // Drain in deliberately awkward chunk sizes.
    std::vector<uint8_t> got;
    uint8_t buf[13];
    size_t n;
    while ((n = enc.Produce(buf, sizeof buf)) > 0)
        got.insert(got.end(), buf, buf + n);

    EXPECT_EQ(enc.bytes_encoded(), want.size());
    ASSERT_EQ(got.size(), want.size());
    EXPECT_EQ(std::memcmp(got.data(), want.data(), want.size()), 0);
}

TEST_F(StreamingCodecTest, TruncatedStreamFailsFinish)
{
    const std::vector<uint8_t> wire = MakeWire(2);
    CollectSink sink;
    StreamCodecLimits limits;
    StreamDecoder dec(pool_, feed_, SoftwareCodecEngine::kTable, limits,
                      ParseLimits{}, &sink);
    // Everything but the last byte: the final field stays incomplete.
    ASSERT_EQ(dec.Feed(wire.data(), wire.size() - 1), ParseStatus::kOk);
    EXPECT_EQ(dec.Finish(), ParseStatus::kTruncated);
    // Terminal: subsequent feeds keep reporting the failure.
    EXPECT_EQ(dec.Feed(wire.data() + wire.size() - 1, 1),
              ParseStatus::kTruncated);
}

TEST_F(StreamingCodecTest, OversizedRecordRejectedBeforeBuffering)
{
    const std::vector<uint8_t> wire = MakeWire(1, /*body_len=*/4096);
    CollectSink sink;
    StreamCodecLimits limits;
    limits.max_record_bytes = 256;  // record is ~4 KiB
    StreamDecoder dec(pool_, feed_, SoftwareCodecEngine::kTable, limits,
                      ParseLimits{}, &sink);
    EXPECT_EQ(dec.Feed(wire.data(), wire.size()),
              ParseStatus::kResourceExhausted);
    // The oversized record was rejected on its length prefix, not
    // buffered: the retained tail stays under the record bound.
    EXPECT_LE(dec.buffered_bytes(), limits.max_record_bytes);
}

TEST_F(StreamingCodecTest, TotalStreamLengthBound)
{
    const std::vector<uint8_t> wire = MakeWire(4);
    CollectSink sink;
    StreamCodecLimits limits;
    ParseLimits parse_limits;
    parse_limits.max_payload_bytes = wire.size() - 1;
    StreamDecoder dec(pool_, feed_, SoftwareCodecEngine::kTable, limits,
                      parse_limits, &sink);
    EXPECT_EQ(dec.Feed(wire.data(), wire.size()),
              ParseStatus::kResourceExhausted);
}

TEST_F(StreamingCodecTest, MalformedTagRejected)
{
    // Ten continuation bytes: an over-long varint tag.
    const std::vector<uint8_t> bad(kMaxVarintBytes, 0x80);
    CollectSink sink;
    StreamCodecLimits limits;
    StreamDecoder dec(pool_, feed_, SoftwareCodecEngine::kTable, limits,
                      ParseLimits{}, &sink);
    EXPECT_EQ(dec.Feed(bad.data(), bad.size()),
              ParseStatus::kMalformedVarint);
}

TEST_F(StreamingCodecTest, GroupWireTypeRejected)
{
    // field 1, wire type 3 (start-group): unsupported on this path.
    const uint8_t bad[] = {(1u << 3) | 3};
    CollectSink sink;
    StreamCodecLimits limits;
    StreamDecoder dec(pool_, feed_, SoftwareCodecEngine::kTable, limits,
                      ParseLimits{}, &sink);
    EXPECT_EQ(dec.Feed(bad, sizeof bad),
              ParseStatus::kInvalidWireType);
}

TEST_F(StreamingCodecTest, PeakBufferingBoundedByRecordNotStream)
{
    // A long stream of small records fed in small chunks: the decoder
    // must never hold more than one record (plus scratch) regardless of
    // how many flow through it.
    const std::vector<uint8_t> wire = MakeWire(200, /*body_len=*/64);
    CollectSink sink;
    StreamCodecLimits limits;
    StreamDecoder dec(pool_, feed_, SoftwareCodecEngine::kTable, limits,
                      ParseLimits{}, &sink);
    for (size_t off = 0; off < wire.size(); off += 32) {
        const size_t len = std::min<size_t>(32, wire.size() - off);
        ASSERT_EQ(dec.Feed(wire.data() + off, len), ParseStatus::kOk);
    }
    ASSERT_EQ(dec.Finish(), ParseStatus::kOk);
    EXPECT_EQ(sink.events.size(), 203u);
    // Wire is ~15 KiB; the decoder's high-water mark must be a small
    // multiple of the record size, nowhere near the stream size.
    EXPECT_LT(dec.peak_buffered_bytes(), size_t{4096});
    EXPECT_GT(wire.size(), size_t{10000});
}

TEST_F(StreamingCodecTest, SinkAbortSurfacesAsFailure)
{
    class AbortSink : public StreamSink
    {
      public:
        ParseStatus
        OnScalar(const FieldDescriptor &, uint64_t) override
        {
            return ParseStatus::kResourceExhausted;
        }
    };
    const std::vector<uint8_t> wire = MakeWire(1);
    AbortSink sink;
    StreamCodecLimits limits;
    StreamDecoder dec(pool_, feed_, SoftwareCodecEngine::kTable, limits,
                      ParseLimits{}, &sink);
    EXPECT_EQ(dec.Feed(wire.data(), wire.size()),
              ParseStatus::kResourceExhausted);
}

}  // namespace
}  // namespace protoacc::proto
