#include <gtest/gtest.h>

#include "proto/message.h"
#include "proto/text_format.h"

namespace protoacc::proto {
namespace {

/// Schema covering every field-type class, used across message tests.
class MessageTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        inner_ = pool_.AddMessage("Inner");
        pool_.AddField(inner_, "tag", 1, FieldType::kInt32);
        pool_.AddField(inner_, "label", 2, FieldType::kString);

        msg_ = pool_.AddMessage("Everything");
        pool_.AddField(msg_, "i32", 1, FieldType::kInt32);
        pool_.AddField(msg_, "i64", 2, FieldType::kInt64);
        pool_.AddField(msg_, "u32", 3, FieldType::kUint32);
        pool_.AddField(msg_, "u64", 4, FieldType::kUint64);
        pool_.AddField(msg_, "s32", 5, FieldType::kSint32);
        pool_.AddField(msg_, "s64", 6, FieldType::kSint64);
        pool_.AddField(msg_, "b", 7, FieldType::kBool);
        pool_.AddField(msg_, "e", 8, FieldType::kEnum);
        pool_.AddField(msg_, "f32", 9, FieldType::kFixed32);
        pool_.AddField(msg_, "f64", 10, FieldType::kFixed64);
        pool_.AddField(msg_, "fl", 11, FieldType::kFloat);
        pool_.AddField(msg_, "db", 12, FieldType::kDouble);
        pool_.AddField(msg_, "str", 13, FieldType::kString);
        pool_.AddField(msg_, "byt", 14, FieldType::kBytes);
        pool_.AddMessageField(msg_, "sub", 15, inner_);
        pool_.AddField(msg_, "ri", 16, FieldType::kInt64,
                       Label::kRepeated, /*packed=*/true);
        pool_.AddField(msg_, "rs", 17, FieldType::kString,
                       Label::kRepeated);
        pool_.AddMessageField(msg_, "rm", 18, inner_, Label::kRepeated);
        pool_.SetScalarDefault(msg_, 1, static_cast<uint32_t>(41));
        pool_.SetStringDefault(msg_, 13, "default-str");
        pool_.Compile();
    }

    const FieldDescriptor &
    F(const char *name) const
    {
        const FieldDescriptor *f =
            pool_.message(msg_).FindFieldByName(name);
        {
            EXPECT_NE(f, nullptr);
        }
        return *f;
    }

    DescriptorPool pool_;
    Arena arena_;
    int inner_ = -1;
    int msg_ = -1;
};

TEST_F(MessageTest, FreshMessageHasNothingSet)
{
    Message m = Message::Create(&arena_, pool_, msg_);
    for (const auto &f : m.descriptor().fields()) {
        EXPECT_FALSE(m.Has(f)) << f.name;
        if (f.repeated()) {
            EXPECT_EQ(m.RepeatedSize(f), 0u) << f.name;
        }
    }
}

TEST_F(MessageTest, UnsetScalarReturnsDefault)
{
    Message m = Message::Create(&arena_, pool_, msg_);
    EXPECT_EQ(m.GetInt32(F("i32")), 41);
    EXPECT_EQ(m.GetString(F("str")), "default-str");
    EXPECT_EQ(m.GetString(F("byt")), "");
}

TEST_F(MessageTest, SetGetAllScalarKinds)
{
    Message m = Message::Create(&arena_, pool_, msg_);
    m.SetInt32(F("i32"), -123);
    m.SetInt64(F("i64"), -5'000'000'000LL);
    m.SetUint32(F("u32"), 4'000'000'000u);
    m.SetUint64(F("u64"), 18'000'000'000'000'000'000ull);
    m.SetInt32(F("s32"), -77);
    m.SetInt64(F("s64"), -88);
    m.SetBool(F("b"), true);
    m.SetInt32(F("e"), 3);
    m.SetUint32(F("f32"), 0xdeadbeef);
    m.SetUint64(F("f64"), 0xfeedfacecafebeefull);
    m.SetFloat(F("fl"), 1.5f);
    m.SetDouble(F("db"), -2.25);

    EXPECT_EQ(m.GetInt32(F("i32")), -123);
    EXPECT_EQ(m.GetInt64(F("i64")), -5'000'000'000LL);
    EXPECT_EQ(m.GetUint32(F("u32")), 4'000'000'000u);
    EXPECT_EQ(m.GetUint64(F("u64")), 18'000'000'000'000'000'000ull);
    EXPECT_EQ(m.GetInt32(F("s32")), -77);
    EXPECT_EQ(m.GetInt64(F("s64")), -88);
    EXPECT_TRUE(m.GetBool(F("b")));
    EXPECT_EQ(m.GetInt32(F("e")), 3);
    EXPECT_EQ(m.GetUint32(F("f32")), 0xdeadbeefu);
    EXPECT_EQ(m.GetUint64(F("f64")), 0xfeedfacecafebeefull);
    EXPECT_FLOAT_EQ(m.GetFloat(F("fl")), 1.5f);
    EXPECT_DOUBLE_EQ(m.GetDouble(F("db")), -2.25);
    for (const char *n : {"i32", "i64", "u32", "u64", "s32", "s64", "b",
                          "e", "f32", "f64", "fl", "db"}) {
        EXPECT_TRUE(m.Has(F(n))) << n;
    }
}

TEST_F(MessageTest, ClearRestoresDefault)
{
    Message m = Message::Create(&arena_, pool_, msg_);
    m.SetInt32(F("i32"), 7);
    m.Clear(F("i32"));
    EXPECT_FALSE(m.Has(F("i32")));
    EXPECT_EQ(m.GetInt32(F("i32")), 41);  // default restored

    m.SetString(F("str"), "zzz");
    m.Clear(F("str"));
    EXPECT_FALSE(m.Has(F("str")));
    EXPECT_EQ(m.GetString(F("str")), "default-str");
}

TEST_F(MessageTest, StringsRoundTripIncludingEmbeddedNul)
{
    Message m = Message::Create(&arena_, pool_, msg_);
    const std::string with_nul = std::string("ab\0cd", 5);
    m.SetString(F("byt"), with_nul);
    EXPECT_EQ(m.GetString(F("byt")), std::string_view(with_nul));
    m.SetString(F("str"), std::string(1000, 'q'));
    EXPECT_EQ(m.GetString(F("str")).size(), 1000u);
}

TEST_F(MessageTest, MutableMessageCreatesOnce)
{
    Message m = Message::Create(&arena_, pool_, msg_);
    EXPECT_FALSE(m.GetMessage(F("sub")).valid());
    Message sub = m.MutableMessage(F("sub"));
    ASSERT_TRUE(sub.valid());
    const FieldDescriptor &tag = *sub.descriptor().FindFieldByName("tag");
    sub.SetInt32(tag, 99);
    // Second MutableMessage returns the same object.
    EXPECT_EQ(m.MutableMessage(F("sub")).raw(), sub.raw());
    EXPECT_EQ(m.GetMessage(F("sub")).GetInt32(tag), 99);
    EXPECT_TRUE(m.Has(F("sub")));
}

TEST_F(MessageTest, RepeatedScalarAppend)
{
    Message m = Message::Create(&arena_, pool_, msg_);
    for (int64_t v : {1LL, -2LL, 3'000'000'000LL})
        m.AddRepeatedBits(F("ri"), static_cast<uint64_t>(v));
    ASSERT_EQ(m.RepeatedSize(F("ri")), 3u);
    EXPECT_EQ(m.GetRepeated<int64_t>(F("ri"), 0), 1);
    EXPECT_EQ(m.GetRepeated<int64_t>(F("ri"), 1), -2);
    EXPECT_EQ(m.GetRepeated<int64_t>(F("ri"), 2), 3'000'000'000LL);
}

TEST_F(MessageTest, RepeatedStringsAndMessages)
{
    Message m = Message::Create(&arena_, pool_, msg_);
    m.AddRepeatedString(F("rs"), "one");
    m.AddRepeatedString(F("rs"), "two");
    ASSERT_EQ(m.RepeatedSize(F("rs")), 2u);
    EXPECT_EQ(m.GetRepeatedString(F("rs"), 1), "two");

    Message e0 = m.AddRepeatedMessage(F("rm"));
    Message e1 = m.AddRepeatedMessage(F("rm"));
    const FieldDescriptor &tag = *e0.descriptor().FindFieldByName("tag");
    e0.SetInt32(tag, 10);
    e1.SetInt32(tag, 20);
    ASSERT_EQ(m.RepeatedSize(F("rm")), 2u);
    EXPECT_EQ(m.GetRepeatedMessage(F("rm"), 0).GetInt32(tag), 10);
    EXPECT_EQ(m.GetRepeatedMessage(F("rm"), 1).GetInt32(tag), 20);
}

TEST_F(MessageTest, MessagesEqualDeepComparison)
{
    Message a = Message::Create(&arena_, pool_, msg_);
    Message b = Message::Create(&arena_, pool_, msg_);
    EXPECT_TRUE(MessagesEqual(a, b));

    a.SetInt32(F("i32"), 5);
    EXPECT_FALSE(MessagesEqual(a, b));
    b.SetInt32(F("i32"), 5);
    EXPECT_TRUE(MessagesEqual(a, b));

    a.MutableMessage(F("sub")).SetInt32(
        *pool_.message(inner_).FindFieldByName("tag"), 1);
    EXPECT_FALSE(MessagesEqual(a, b));
    b.MutableMessage(F("sub")).SetInt32(
        *pool_.message(inner_).FindFieldByName("tag"), 1);
    EXPECT_TRUE(MessagesEqual(a, b));

    a.AddRepeatedString(F("rs"), "x");
    EXPECT_FALSE(MessagesEqual(a, b));
    b.AddRepeatedString(F("rs"), "y");
    EXPECT_FALSE(MessagesEqual(a, b));
}

TEST_F(MessageTest, ExplicitlySetDefaultValueIsPresent)
{
    // proto2 distinguishes "unset" from "set to the default value".
    Message m = Message::Create(&arena_, pool_, msg_);
    m.SetInt32(F("i32"), 41);
    EXPECT_TRUE(m.Has(F("i32")));
}

TEST_F(MessageTest, DebugStringRendersSetFields)
{
    Message m = Message::Create(&arena_, pool_, msg_);
    m.SetInt32(F("i32"), 7);
    m.SetString(F("str"), "hi");
    m.MutableMessage(F("sub"));
    const std::string text = DebugString(m);
    EXPECT_NE(text.find("i32: 7"), std::string::npos);
    EXPECT_NE(text.find("str: \"hi\""), std::string::npos);
    EXPECT_NE(text.find("sub {"), std::string::npos);
}

TEST_F(MessageTest, CachedSizeSlot)
{
    Message m = Message::Create(&arena_, pool_, msg_);
    m.set_cached_size(1234);
    EXPECT_EQ(m.cached_size(), 1234);
}

}  // namespace
}  // namespace protoacc::proto
