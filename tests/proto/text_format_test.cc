#include <gtest/gtest.h>

#include "proto/schema_parser.h"
#include "proto/schema_random.h"
#include "proto/text_format.h"

namespace protoacc::proto {
namespace {

class TextFormatTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto r = ParseSchema(R"(
            message T {
                optional int32 i = 1;
                optional double d = 2;
                optional string s = 3;
                optional bool b = 4;
                optional uint64 u = 5;
                message Sub { optional int32 v = 1; }
                optional Sub sub = 6;
                repeated int32 r = 7 [packed = true];
                repeated string rs = 8;
                repeated Sub rm = 9;
                optional bytes raw = 10;
            }
        )",
                                   &pool_);
        ASSERT_TRUE(r.ok) << r.error;
        pool_.Compile();
        msg_ = pool_.FindMessage("T");
    }

    const FieldDescriptor &
    F(const char *name)
    {
        return *pool_.message(msg_).FindFieldByName(name);
    }

    DescriptorPool pool_;
    Arena arena_;
    int msg_ = -1;
};

TEST_F(TextFormatTest, ParseBasicFields)
{
    Message m = Message::Create(&arena_, pool_, msg_);
    std::string error;
    ASSERT_TRUE(ParseTextFormat(R"(
        i: -42
        d: 2.5
        s: "hello"
        b: true
        u: 18446744073709551615
    )",
                                &m, &error))
        << error;
    EXPECT_EQ(m.GetInt32(F("i")), -42);
    EXPECT_DOUBLE_EQ(m.GetDouble(F("d")), 2.5);
    EXPECT_EQ(m.GetString(F("s")), "hello");
    EXPECT_TRUE(m.GetBool(F("b")));
    EXPECT_EQ(m.GetUint64(F("u")), UINT64_MAX);
}

TEST_F(TextFormatTest, ParseNestedAndRepeated)
{
    Message m = Message::Create(&arena_, pool_, msg_);
    std::string error;
    ASSERT_TRUE(ParseTextFormat(R"(
        sub { v: 7 }
        r: 1
        r: 2
        r: 3
        rs: "a"
        rs: "b"
        rm { v: 10 }
        rm { v: 20 }
    )",
                                &m, &error))
        << error;
    EXPECT_EQ(m.GetMessage(F("sub")).GetInt32(
                  pool_.message(F("sub").message_type).field(0)),
              7);
    ASSERT_EQ(m.RepeatedSize(F("r")), 3u);
    EXPECT_EQ(m.GetRepeated<int32_t>(F("r"), 2), 3);
    ASSERT_EQ(m.RepeatedSize(F("rs")), 2u);
    EXPECT_EQ(m.GetRepeatedString(F("rs"), 1), "b");
    ASSERT_EQ(m.RepeatedSize(F("rm")), 2u);
    EXPECT_EQ(m.GetRepeatedMessage(F("rm"), 1)
                  .GetInt32(pool_.message(F("rm").message_type).field(0)),
              20);
}

TEST_F(TextFormatTest, EscapesRoundTrip)
{
    Message m = Message::Create(&arena_, pool_, msg_);
    m.SetString(F("raw"), std::string("\x01\x02\"quote\"\n\\", 12));
    const std::string text = DebugString(m);

    Message back = Message::Create(&arena_, pool_, msg_);
    std::string error;
    ASSERT_TRUE(ParseTextFormat(text, &back, &error)) << error;
    EXPECT_EQ(back.GetString(F("raw")), m.GetString(F("raw")));
}

TEST_F(TextFormatTest, DebugStringParsesBackForRandomMessages)
{
    // Property: DebugString -> ParseTextFormat is the identity.
    for (uint64_t seed = 1; seed <= 20; ++seed) {
        Rng rng(seed);
        DescriptorPool pool;
        const int root =
            GenerateRandomSchema(&pool, &rng, SchemaGenOptions{});
        pool.Compile();
        Arena arena;
        Message m = Message::Create(&arena, pool, root);
        MessageGenOptions gen;
        gen.max_string_len = 24;
        PopulateRandomMessage(m, &rng, gen);

        // Skip float/double fields: decimal text is lossy for them
        // (matching upstream DebugString behavior); clear them first.
        for (const auto &f : pool.message(root).fields()) {
            if (f.type == FieldType::kFloat ||
                f.type == FieldType::kDouble) {
                m.Clear(f);
            }
        }

        Message back = Message::Create(&arena, pool, root);
        std::string error;
        ASSERT_TRUE(ParseTextFormat(DebugString(m), &back, &error))
            << "seed " << seed << ": " << error;
        // Compare through re-rendering (repeated float members etc.
        // were cleared only at the top level, so compare text).
        EXPECT_EQ(DebugString(back), DebugString(m)) << "seed " << seed;
    }
}

TEST_F(TextFormatTest, ErrorsAreReported)
{
    const char *bad_cases[] = {
        "nope: 1",           // unknown field
        "i 5",               // missing colon
        "s: unquoted",       // string must be quoted
        "sub { v: 1",        // missing brace
        "i: notanumber",     // bad scalar
        "b: maybe",          // bad bool
    };
    for (const char *text : bad_cases) {
        Message m = Message::Create(&arena_, pool_, msg_);
        std::string error;
        EXPECT_FALSE(ParseTextFormat(text, &m, &error)) << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST_F(TextFormatTest, CommentsAccepted)
{
    Message m = Message::Create(&arena_, pool_, msg_);
    std::string error;
    ASSERT_TRUE(ParseTextFormat("# leading comment\ni: 5 # trailing\n",
                                &m, &error))
        << error;
    EXPECT_EQ(m.GetInt32(F("i")), 5);
}

}  // namespace
}  // namespace protoacc::proto
