#include <gtest/gtest.h>

#include "proto/descriptor.h"

namespace protoacc::proto {
namespace {

DescriptorPool
MakePoolWithGaps(HasbitsMode mode)
{
    DescriptorPool pool;
    const int msg = pool.AddMessage("Gappy");
    pool.AddField(msg, "a", 3, FieldType::kInt64);
    pool.AddField(msg, "b", 7, FieldType::kBool);
    pool.AddField(msg, "c", 10, FieldType::kString);
    pool.AddField(msg, "d", 40, FieldType::kFloat);
    pool.Compile(mode);
    return pool;
}

TEST(Descriptor, FieldsSortedByNumberAndIndexed)
{
    DescriptorPool pool;
    const int msg = pool.AddMessage("M");
    pool.AddField(msg, "z", 9, FieldType::kInt32);
    pool.AddField(msg, "a", 1, FieldType::kInt32);
    pool.AddField(msg, "m", 4, FieldType::kInt32);
    pool.Compile();
    const MessageDescriptor &desc = pool.message(msg);
    ASSERT_EQ(desc.field_count(), 3u);
    EXPECT_EQ(desc.field(0).number, 1u);
    EXPECT_EQ(desc.field(1).number, 4u);
    EXPECT_EQ(desc.field(2).number, 9u);
    EXPECT_EQ(desc.field(0).index, 0);
    EXPECT_EQ(desc.field(2).index, 2);
    EXPECT_EQ(desc.min_field_number(), 1u);
    EXPECT_EQ(desc.max_field_number(), 9u);
    EXPECT_EQ(desc.field_number_range(), 9u);
}

TEST(Descriptor, FindByNumberAndName)
{
    DescriptorPool pool = MakePoolWithGaps(HasbitsMode::kSparse);
    const MessageDescriptor &desc = pool.message(0);
    ASSERT_NE(desc.FindFieldByNumber(7), nullptr);
    EXPECT_EQ(desc.FindFieldByNumber(7)->name, "b");
    EXPECT_EQ(desc.FindFieldByNumber(8), nullptr);
    ASSERT_NE(desc.FindFieldByName("d"), nullptr);
    EXPECT_EQ(desc.FindFieldByName("d")->number, 40u);
    EXPECT_EQ(desc.FindFieldByName("nope"), nullptr);
}

TEST(Descriptor, SparseHasbitsIndexedByFieldNumber)
{
    // §4.2: sparse hasbits are indexed by (number - min_number) so the
    // accelerator can address them directly.
    DescriptorPool pool = MakePoolWithGaps(HasbitsMode::kSparse);
    const MessageDescriptor &desc = pool.message(0);
    EXPECT_EQ(desc.field(0).hasbit_index, 0u);   // number 3
    EXPECT_EQ(desc.field(1).hasbit_index, 4u);   // number 7
    EXPECT_EQ(desc.field(2).hasbit_index, 7u);   // number 10
    EXPECT_EQ(desc.field(3).hasbit_index, 37u);  // number 40
    // Range is 38 bits -> two 32-bit words.
    EXPECT_EQ(desc.layout().hasbits_words, 2u);
}

TEST(Descriptor, DenseHasbitsPackedByIndex)
{
    DescriptorPool pool = MakePoolWithGaps(HasbitsMode::kDense);
    const MessageDescriptor &desc = pool.message(0);
    EXPECT_EQ(desc.field(0).hasbit_index, 0u);
    EXPECT_EQ(desc.field(3).hasbit_index, 3u);
    EXPECT_EQ(desc.layout().hasbits_words, 1u);
}

TEST(Descriptor, LayoutAlignmentAndNoOverlap)
{
    DescriptorPool pool;
    const int msg = pool.AddMessage("M");
    pool.AddField(msg, "b1", 1, FieldType::kBool);
    pool.AddField(msg, "d", 2, FieldType::kDouble);
    pool.AddField(msg, "b2", 3, FieldType::kBool);
    pool.AddField(msg, "f", 4, FieldType::kFloat);
    pool.AddField(msg, "s", 5, FieldType::kString);
    pool.Compile();
    const MessageDescriptor &desc = pool.message(msg);

    for (const auto &f : desc.fields()) {
        const uint32_t size = InMemorySize(f.type);
        EXPECT_EQ(f.offset % size, 0u) << f.name;  // natural alignment
        EXPECT_LE(f.offset + size, desc.layout().object_size) << f.name;
    }
    // No two slots overlap.
    for (const auto &a : desc.fields()) {
        for (const auto &b : desc.fields()) {
            if (a.number == b.number)
                continue;
            const uint32_t a_end = a.offset + InMemorySize(a.type);
            const uint32_t b_end = b.offset + InMemorySize(b.type);
            EXPECT_TRUE(a_end <= b.offset || b_end <= a.offset)
                << a.name << " vs " << b.name;
        }
    }
    EXPECT_EQ(desc.layout().object_size % 8, 0u);
}

TEST(Descriptor, RepeatedFieldsArePointerSlots)
{
    DescriptorPool pool;
    const int msg = pool.AddMessage("M");
    pool.AddField(msg, "r", 1, FieldType::kInt32, Label::kRepeated,
                  /*packed=*/true);
    pool.Compile();
    const FieldDescriptor &f = pool.message(msg).field(0);
    EXPECT_TRUE(f.repeated());
    EXPECT_TRUE(f.packed);
    EXPECT_EQ(f.offset % 8, 0u);
}

TEST(Descriptor, DefaultInstanceHoldsScalarDefaults)
{
    DescriptorPool pool;
    const int msg = pool.AddMessage("M");
    pool.AddField(msg, "x", 1, FieldType::kInt32);
    pool.AddField(msg, "y", 2, FieldType::kDouble);
    pool.SetScalarDefault(msg, 1, static_cast<uint32_t>(-5));
    double dv = 2.5;
    uint64_t dbits;
    memcpy(&dbits, &dv, sizeof(dv));
    pool.SetScalarDefault(msg, 2, dbits);
    pool.Compile();

    const MessageDescriptor &desc = pool.message(msg);
    const char *inst = static_cast<const char *>(desc.default_instance());
    int32_t x;
    memcpy(&x, inst + desc.field(0).offset, sizeof(x));
    EXPECT_EQ(x, -5);
    double y;
    memcpy(&y, inst + desc.field(1).offset, sizeof(y));
    EXPECT_DOUBLE_EQ(y, 2.5);
}

TEST(Descriptor, EmptyMessageHasNonZeroSize)
{
    DescriptorPool pool;
    const int msg = pool.AddMessage("Empty");
    pool.Compile();
    EXPECT_GT(pool.message(msg).layout().object_size, 0u);
    EXPECT_EQ(pool.message(msg).field_number_range(), 0u);
}

TEST(Descriptor, SubMessageFieldLinksType)
{
    DescriptorPool pool;
    const int inner = pool.AddMessage("Inner");
    pool.AddField(inner, "v", 1, FieldType::kInt32);
    const int outer = pool.AddMessage("Outer");
    pool.AddMessageField(outer, "sub", 2, inner);
    pool.Compile();
    const FieldDescriptor &f = pool.message(outer).field(0);
    EXPECT_EQ(f.type, FieldType::kMessage);
    EXPECT_EQ(f.message_type, inner);
    EXPECT_EQ(pool.FindMessage("Inner"), inner);
    EXPECT_EQ(pool.FindMessage("Outer"), outer);
    EXPECT_EQ(pool.FindMessage("Nope"), -1);
}

TEST(Descriptor, RecursiveTypeCompiles)
{
    // Figure 1 shows recursively structured messages; a self-referential
    // type must lay out (the sub-message slot is just a pointer).
    DescriptorPool pool;
    const int node = pool.AddMessage("Node");
    pool.AddField(node, "value", 1, FieldType::kInt64);
    pool.AddMessageField(node, "next", 2, node);
    pool.Compile();
    EXPECT_GE(pool.message(node).layout().object_size, 12u);
}

TEST(Descriptor, DenseNumberLookupCoversFullRange)
{
    DescriptorPool pool;
    const int m = pool.AddMessage("Dense");
    pool.AddField(m, "a", 3, FieldType::kInt32);
    pool.AddField(m, "b", 5, FieldType::kInt64);
    pool.AddField(m, "c", 9, FieldType::kBool);
    pool.Compile();
    const MessageDescriptor &d = pool.message(m);

    // Every number in and around [min, max], defined or not.
    for (uint32_t number = 0; number <= 12; ++number) {
        const FieldDescriptor *f = d.FindFieldByNumber(number);
        const int idx = d.field_index_for_number(number);
        if (number == 3 || number == 5 || number == 9) {
            ASSERT_NE(f, nullptr) << number;
            EXPECT_EQ(f->number, number);
            EXPECT_EQ(idx, f->index) << number;
        } else {
            EXPECT_EQ(f, nullptr) << number;
            EXPECT_EQ(idx, -1) << number;
        }
    }
}

TEST(Descriptor, SparseNumberLookupFallsBackToSearch)
{
    // A numbering too sparse for the direct-indexed table (range far
    // beyond 8x the field count) must still resolve via binary search.
    DescriptorPool pool;
    const int m = pool.AddMessage("Sparse");
    pool.AddField(m, "lo", 1, FieldType::kInt32);
    pool.AddField(m, "mid", 1000, FieldType::kInt64);
    pool.AddField(m, "hi", kMaxFieldNumber, FieldType::kBool);
    pool.Compile();
    const MessageDescriptor &d = pool.message(m);

    EXPECT_EQ(d.FindFieldByNumber(1)->name, "lo");
    EXPECT_EQ(d.FindFieldByNumber(1000)->name, "mid");
    EXPECT_EQ(d.FindFieldByNumber(kMaxFieldNumber)->name, "hi");
    EXPECT_EQ(d.FindFieldByNumber(2), nullptr);
    EXPECT_EQ(d.FindFieldByNumber(999), nullptr);
    EXPECT_EQ(d.FindFieldByNumber(1001), nullptr);
    EXPECT_EQ(d.FindFieldByNumber(0), nullptr);
    EXPECT_EQ(d.field_index_for_number(1000), 1);
    EXPECT_EQ(d.field_index_for_number(999), -1);
}

TEST(Descriptor, FindFieldByNameTakesStringView)
{
    DescriptorPool pool;
    const int m = pool.AddMessage("Named");
    pool.AddField(m, "alpha", 1, FieldType::kInt32);
    pool.AddField(m, "beta", 2, FieldType::kInt64);
    pool.Compile();
    const MessageDescriptor &d = pool.message(m);

    const std::string_view haystack = "alphabet";
    EXPECT_EQ(d.FindFieldByName(haystack.substr(0, 5))->number, 1u);
    EXPECT_EQ(d.FindFieldByName("beta")->number, 2u);
    EXPECT_EQ(d.FindFieldByName(haystack), nullptr);
    EXPECT_EQ(d.FindFieldByName(""), nullptr);
}

}  // namespace
}  // namespace protoacc::proto
