/**
 * Generated-codec tier tests: registry/fingerprint behavior, byte-level
 * wire parity with the reference engine, cost-event parity with the
 * table engine, and the generator's edge cases — recursion at the depth
 * limit, proto3 UTF-8 validation, empty messages (pure unknown-field
 * skipping), and the 10-byte varint overflow path.
 *
 * The build links codecs for every pool recipe in tools/gen_pools
 * (pa_gen_codecs), so coverage is asserted, never skipped.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gen_pools.h"
#include "proto/codec_generated.h"
#include "proto/codec_reference.h"
#include "proto/parser.h"
#include "proto/schema_random.h"
#include "proto/serializer.h"
#include "proto/wire_format.h"

namespace protoacc::proto {
namespace {

using genpools::BuildAuxSuite;
using genpools::BuildEmptyPool;
using genpools::BuildKitchenSinkPool;
using genpools::BuildMicroVarintPool;
using genpools::BuildRecursivePool;
using genpools::BuildUtf8Pool;
using genpools::NamedPool;

// -------------------------------------------------------------------
// Registry and fingerprints.
// -------------------------------------------------------------------

TEST(GeneratedCodecRegistry, EveryAuxPoolHasALinkedCodec)
{
    ASSERT_GT(GeneratedCodecCount(), 0u);
    for (const NamedPool &np : BuildAuxSuite()) {
        const GeneratedPoolCodec *codec = GetGeneratedCodec(*np.pool);
        ASSERT_NE(codec, nullptr) << "no codec for pool " << np.name;
        EXPECT_EQ(codec->fingerprint, SchemaFingerprint(*np.pool))
            << np.name;
        EXPECT_EQ(codec->message_count, np.pool->message_count())
            << np.name;
    }
}

TEST(GeneratedCodecRegistry, FingerprintDiscriminatesSchemas)
{
    const NamedPool a = BuildRecursivePool();
    const NamedPool b = BuildUtf8Pool();
    EXPECT_NE(SchemaFingerprint(*a.pool), SchemaFingerprint(*b.pool));

    // A structurally identical rebuild fingerprints identically.
    const NamedPool a2 = BuildRecursivePool();
    EXPECT_EQ(SchemaFingerprint(*a.pool), SchemaFingerprint(*a2.pool));
}

TEST(GeneratedCodecRegistry, UncoveredPoolResolvesToNull)
{
    // A schema no suite generates (seed far outside every recipe).
    DescriptorPool pool;
    protoacc::Rng rng(0xABCDEF987654ull);
    SchemaGenOptions opts;
    GenerateRandomSchema(&pool, &rng, opts);
    pool.Compile(HasbitsMode::kSparse);
    EXPECT_EQ(GetGeneratedCodec(pool), nullptr);
    // The resolution is cached either way.
    EXPECT_EQ(GetGeneratedCodec(pool), nullptr);
}

// -------------------------------------------------------------------
// Byte-level parity with the reference engine across the whole suite.
// -------------------------------------------------------------------

TEST(GeneratedCodecParity, WireBytesIdenticalToReference)
{
    for (const NamedPool &np : BuildAuxSuite()) {
        protoacc::Rng rng(0xC0DEC + np.root);
        for (int trial = 0; trial < 3; ++trial) {
            Arena arena;
            Message msg = Message::Create(&arena, *np.pool, np.root);
            PopulateRandomMessage(msg, &rng, MessageGenOptions{});

            const std::vector<uint8_t> ref = ReferenceSerialize(msg);
            const std::vector<uint8_t> gen = GeneratedSerialize(msg);
            ASSERT_EQ(ref, gen) << np.name << " trial " << trial;
            EXPECT_EQ(GeneratedByteSize(msg), ref.size())
                << np.name << " trial " << trial;

            // Parse the wire back with the generated engine and
            // re-serialize: still byte-identical (field values, hasbits
            // and repeated contents all survived).
            Arena arena2;
            Message back = Message::Create(&arena2, *np.pool, np.root);
            ASSERT_EQ(GeneratedParseFromBuffer(ref.data(), ref.size(),
                                               &back),
                      ParseStatus::kOk)
                << np.name << " trial " << trial;
            EXPECT_EQ(GeneratedSerialize(back), ref)
                << np.name << " trial " << trial;
        }
    }
}

// -------------------------------------------------------------------
// Cost-event parity with the table engine: the generated tier must
// price identically under the CPU cost model, so every sink event
// (count and byte argument) must match the interpreter's stream.
// -------------------------------------------------------------------

class TallySink : public CostSink
{
  public:
    void OnTagDecode(int b) override { Add("tag_decode", b); }
    void OnTagEncode(int b) override { Add("tag_encode", b); }
    void OnVarintDecode(int b) override { Add("varint_decode", b); }
    void OnVarintEncode(int b) override { Add("varint_encode", b); }
    void OnFixedCopy(int b) override { Add("fixed_copy", b); }
    void OnMemcpy(size_t b) override
    {
        Add("memcpy", static_cast<int64_t>(b));
    }
    void OnAlloc(size_t b) override
    {
        Add("alloc", static_cast<int64_t>(b));
    }
    void OnFieldDispatch() override { Add("field_dispatch", 0); }
    void OnMessageBegin() override { Add("message_begin", 0); }
    void OnMessageEnd() override { Add("message_end", 0); }
    void OnByteSizeField() override { Add("bytesize_field", 0); }
    void OnByteSizeMessage() override { Add("bytesize_message", 0); }
    void OnHasbitsAccess(int w) override { Add("hasbits", w); }

    bool
    operator==(const TallySink &other) const
    {
        return tallies_ == other.tallies_;
    }

    std::string
    ToString() const
    {
        std::string out;
        for (const auto &[key, val] : tallies_)
            out += key + "=" + std::to_string(val.first) + "/" +
                   std::to_string(val.second) + " ";
        return out;
    }

  private:
    void
    Add(const char *key, int64_t arg)
    {
        auto &slot = tallies_[key];
        slot.first += 1;
        slot.second += arg;
    }

    // hook -> (event count, summed byte argument)
    std::map<std::string, std::pair<uint64_t, int64_t>> tallies_;
};

TEST(GeneratedCodecParity, CostEventStreamMatchesTableEngine)
{
    for (const NamedPool &np : BuildAuxSuite()) {
        protoacc::Rng rng(0x5EED + np.root);
        Arena arena;
        Message msg = Message::Create(&arena, *np.pool, np.root);
        PopulateRandomMessage(msg, &rng, MessageGenOptions{});
        const std::vector<uint8_t> wire = Serialize(msg);

        // Parse pass.
        {
            TallySink table_sink, gen_sink;
            Arena a1, a2;
            Message m1 = Message::Create(&a1, *np.pool, np.root);
            Message m2 = Message::Create(&a2, *np.pool, np.root);
            ASSERT_EQ(ParseFromBuffer(wire.data(), wire.size(), &m1,
                                      &table_sink),
                      ParseStatus::kOk)
                << np.name;
            ASSERT_EQ(GeneratedParseFromBuffer(wire.data(), wire.size(),
                                               &m2, &gen_sink),
                      ParseStatus::kOk)
                << np.name;
            EXPECT_TRUE(table_sink == gen_sink)
                << np.name << "\n  table: " << table_sink.ToString()
                << "\n  gen:   " << gen_sink.ToString();
        }

        // Serialize pass (sizing + write, same call shape both sides).
        {
            TallySink table_sink, gen_sink;
            const std::vector<uint8_t> a = Serialize(msg, &table_sink);
            const std::vector<uint8_t> b =
                GeneratedSerialize(msg, &gen_sink);
            ASSERT_EQ(a, b) << np.name;
            EXPECT_TRUE(table_sink == gen_sink)
                << np.name << "\n  table: " << table_sink.ToString()
                << "\n  gen:   " << gen_sink.ToString();
        }
    }
}

// -------------------------------------------------------------------
// Recursive schemas at the depth limit.
// -------------------------------------------------------------------

// A wire encoding `depth` nested `child` sub-messages of Node.
std::vector<uint8_t>
NestedNodeWire(int depth)
{
    std::vector<uint8_t> wire;
    for (int i = 0; i < depth; ++i) {
        std::vector<uint8_t> wrapped;
        wrapped.push_back(0x12);  // field 2 (child), wire type 2
        uint8_t len[kMaxVarintBytes];
        const int n = EncodeVarint(wire.size(), len);
        wrapped.insert(wrapped.end(), len, len + n);
        wrapped.insert(wrapped.end(), wire.begin(), wire.end());
        wire = std::move(wrapped);
    }
    return wire;
}

TEST(GeneratedCodecEdge, RecursionDepthLimitMatchesTableEngine)
{
    const NamedPool np = BuildRecursivePool();
    ASSERT_NE(GetGeneratedCodec(*np.pool), nullptr);

    struct Case
    {
        int depth;
        const ParseLimits *limits;
    };
    ParseLimits six;
    six.max_depth = 6;
    const Case cases[] = {
        {kMaxParseDepth, nullptr},      // deepest accepted nest
        {kMaxParseDepth + 1, nullptr},  // first rejected nest
        {kMaxParseDepth + 37, nullptr},
        {6, &six},
        {7, &six},
    };
    for (const Case &c : cases) {
        const std::vector<uint8_t> wire = NestedNodeWire(c.depth);
        Arena a1, a2;
        Message m1 = Message::Create(&a1, *np.pool, np.root);
        Message m2 = Message::Create(&a2, *np.pool, np.root);
        const ParseStatus table = ParseFromBuffer(
            wire.data(), wire.size(), &m1, nullptr, c.limits);
        const ParseStatus gen = GeneratedParseFromBuffer(
            wire.data(), wire.size(), &m2, nullptr, c.limits);
        EXPECT_EQ(table, gen) << "depth " << c.depth;
        const int bound = c.limits != nullptr
                              ? static_cast<int>(c.limits->max_depth)
                              : kMaxParseDepth;
        EXPECT_EQ(table == ParseStatus::kOk, c.depth <= bound)
            << "depth " << c.depth;
        if (table != ParseStatus::kOk) {
            EXPECT_EQ(gen, ParseStatus::kDepthExceeded)
                << "depth " << c.depth;
        }
    }
}

// -------------------------------------------------------------------
// proto3 UTF-8 validation.
// -------------------------------------------------------------------

TEST(GeneratedCodecEdge, Proto3Utf8ValidationMatchesTableEngine)
{
    const NamedPool np = BuildUtf8Pool();
    ASSERT_NE(GetGeneratedCodec(*np.pool), nullptr);

    struct Case
    {
        const char *label;
        std::vector<uint8_t> wire;
        ParseStatus want;
    };
    const Case cases[] = {
        // s = "é" (valid two-byte sequence) on string field 1.
        {"valid-2byte", {0x0A, 0x02, 0xC3, 0xA9}, ParseStatus::kOk},
        // s = lone continuation byte: malformed.
        {"bare-continuation",
         {0x0A, 0x01, 0xBF},
         ParseStatus::kInvalidUtf8},
        // s = overlong encoding of '/': malformed.
        {"overlong",
         {0x0A, 0x02, 0xC0, 0xAF},
         ParseStatus::kInvalidUtf8},
        // s = truncated 3-byte sequence: malformed.
        {"truncated-seq",
         {0x0A, 0x02, 0xE2, 0x82},
         ParseStatus::kInvalidUtf8},
        // b = same bad bytes on the bytes field 2: no validation.
        {"bytes-not-validated",
         {0x12, 0x02, 0xC0, 0xAF},
         ParseStatus::kOk},
        // r (repeated string, field 3): second element malformed.
        {"repeated-second-element",
         {0x1A, 0x02, 0xC3, 0xA9, 0x1A, 0x01, 0xFF},
         ParseStatus::kInvalidUtf8},
    };
    for (const Case &c : cases) {
        Arena a1, a2;
        Message m1 = Message::Create(&a1, *np.pool, np.root);
        Message m2 = Message::Create(&a2, *np.pool, np.root);
        const ParseStatus table =
            ParseFromBuffer(c.wire.data(), c.wire.size(), &m1);
        const ParseStatus gen = GeneratedParseFromBuffer(
            c.wire.data(), c.wire.size(), &m2);
        EXPECT_EQ(table, c.want) << c.label;
        EXPECT_EQ(gen, c.want) << c.label;
    }
}

// -------------------------------------------------------------------
// Empty messages: everything is an unknown field.
// -------------------------------------------------------------------

TEST(GeneratedCodecEdge, EmptyMessageSkipsUnknownFieldsLikeTable)
{
    const NamedPool np = BuildEmptyPool();
    ASSERT_NE(GetGeneratedCodec(*np.pool), nullptr);

    struct Case
    {
        const char *label;
        std::vector<uint8_t> wire;
        bool ok;
    };
    const Case cases[] = {
        {"empty-buffer", {}, true},
        {"unknown-varint", {0x08, 0x05}, true},
        {"unknown-lendelim", {0x12, 0x03, 'a', 'b', 'c'}, true},
        {"unknown-fixed32", {0x1D, 1, 2, 3, 4}, true},
        {"unknown-fixed64", {0x11, 1, 2, 3, 4, 5, 6, 7, 8}, true},
        {"unknown-truncated-payload", {0x12, 0x05, 'a'}, false},
        {"group-wire-type", {0x0B}, false},
        {"field-number-zero", {0x00}, false},
    };
    for (const Case &c : cases) {
        Arena a1, a2;
        Message m1 = Message::Create(&a1, *np.pool, np.root);
        Message m2 = Message::Create(&a2, *np.pool, np.root);
        const ParseStatus table =
            ParseFromBuffer(c.wire.data(), c.wire.size(), &m1);
        const ParseStatus gen = GeneratedParseFromBuffer(
            c.wire.data(), c.wire.size(), &m2);
        EXPECT_EQ(table, gen) << c.label;
        EXPECT_EQ(table == ParseStatus::kOk, c.ok) << c.label;
    }

    // An empty message serializes to zero bytes in both engines.
    Arena arena;
    Message msg = Message::Create(&arena, *np.pool, np.root);
    EXPECT_EQ(GeneratedByteSize(msg), 0u);
    EXPECT_TRUE(GeneratedSerialize(msg).empty());
}

// -------------------------------------------------------------------
// The 10-byte varint overflow path.
// -------------------------------------------------------------------

TEST(GeneratedCodecEdge, VarintOverflowAndMaxValueMatchTableEngine)
{
    const NamedPool np = BuildMicroVarintPool(false);
    ASSERT_NE(GetGeneratedCodec(*np.pool), nullptr);

    // UINT64_MAX is exactly the largest legal 10-byte varint; both
    // engines must accept it and round-trip the value.
    {
        Arena arena;
        Message msg = Message::Create(&arena, *np.pool, np.root);
        const auto *f =
            np.pool->message(np.root).FindFieldByName("v1");
        ASSERT_NE(f, nullptr);
        msg.SetUint64(*f, UINT64_MAX);
        const std::vector<uint8_t> ref = ReferenceSerialize(msg);
        EXPECT_EQ(GeneratedSerialize(msg), ref);
        ASSERT_EQ(ref.size(), 11u);  // 1 tag byte + 10 varint bytes

        Arena a2;
        Message back = Message::Create(&a2, *np.pool, np.root);
        ASSERT_EQ(GeneratedParseFromBuffer(ref.data(), ref.size(),
                                           &back),
                  ParseStatus::kOk);
        EXPECT_EQ(back.GetUint64(*f), UINT64_MAX);
    }

    struct Case
    {
        const char *label;
        std::vector<uint8_t> wire;
    };
    const Case cases[] = {
        // 10th byte carries bits above bit 63: overflow.
        {"overflow-bit64",
         {0x08, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
          0x02}},
        // 10 continuation bytes: varint never terminates in bounds.
        {"eleven-bytes",
         {0x08, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
          0xFF, 0x01}},
        // Truncated mid-varint.
        {"truncated", {0x08, 0xFF, 0xFF}},
    };
    for (const Case &c : cases) {
        Arena a1, a2;
        Message m1 = Message::Create(&a1, *np.pool, np.root);
        Message m2 = Message::Create(&a2, *np.pool, np.root);
        const ParseStatus table =
            ParseFromBuffer(c.wire.data(), c.wire.size(), &m1);
        const ParseStatus gen = GeneratedParseFromBuffer(
            c.wire.data(), c.wire.size(), &m2);
        EXPECT_NE(table, ParseStatus::kOk) << c.label;
        EXPECT_EQ(table, gen) << c.label;
    }
}

// -------------------------------------------------------------------
// Resource limits bind identically.
// -------------------------------------------------------------------

TEST(GeneratedCodecEdge, AllocBudgetVerdictsMatchTableEngine)
{
    const NamedPool np = BuildKitchenSinkPool();
    ASSERT_NE(GetGeneratedCodec(*np.pool), nullptr);

    protoacc::Rng rng(1234);
    Arena arena;
    Message msg = Message::Create(&arena, *np.pool, np.root);
    PopulateRandomMessage(msg, &rng, MessageGenOptions{});
    const std::vector<uint8_t> wire = Serialize(msg);
    ASSERT_FALSE(wire.empty());

    bool exhausted_seen = false;
    for (const size_t budget : {16u, 64u, 256u, 1024u, 65536u}) {
        ParseLimits limits;
        limits.max_alloc_bytes = budget;
        Arena a1, a2;
        Message m1 = Message::Create(&a1, *np.pool, np.root);
        Message m2 = Message::Create(&a2, *np.pool, np.root);
        const ParseStatus table = ParseFromBuffer(
            wire.data(), wire.size(), &m1, nullptr, &limits);
        const ParseStatus gen = GeneratedParseFromBuffer(
            wire.data(), wire.size(), &m2, nullptr, &limits);
        EXPECT_EQ(table, gen) << "budget " << budget;
        exhausted_seen |= table == ParseStatus::kResourceExhausted;
    }
    EXPECT_TRUE(exhausted_seen);
}

}  // namespace
}  // namespace protoacc::proto
