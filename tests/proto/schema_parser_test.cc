#include <gtest/gtest.h>

#include "proto/message_ops.h"
#include "proto/parser.h"
#include "proto/schema_parser.h"
#include "proto/serializer.h"

namespace protoacc::proto {
namespace {

DescriptorPool
MustParse(const char *text)
{
    DescriptorPool pool;
    const SchemaParseResult result = ParseSchema(text, &pool);
    EXPECT_TRUE(result.ok) << result.error << " at line " << result.line;
    pool.Compile();
    return pool;
}

TEST(SchemaParser, BasicMessage)
{
    DescriptorPool pool = MustParse(R"(
        syntax = "proto2";
        message Point {
            required double x = 1;
            required double y = 2;
            optional string label = 3;
        }
    )");
    const int idx = pool.FindMessage("Point");
    ASSERT_GE(idx, 0);
    const auto &desc = pool.message(idx);
    ASSERT_EQ(desc.field_count(), 3u);
    EXPECT_EQ(desc.field(0).type, FieldType::kDouble);
    EXPECT_EQ(desc.field(0).label, Label::kRequired);
    EXPECT_EQ(desc.field(2).type, FieldType::kString);
    EXPECT_EQ(desc.field(2).name, "label");
    EXPECT_EQ(desc.syntax(), Syntax::kProto2);
}

TEST(SchemaParser, AllScalarTypes)
{
    DescriptorPool pool = MustParse(R"(
        message AllTypes {
            optional double   f1  = 1;
            optional float    f2  = 2;
            optional int32    f3  = 3;
            optional int64    f4  = 4;
            optional uint32   f5  = 5;
            optional uint64   f6  = 6;
            optional sint32   f7  = 7;
            optional sint64   f8  = 8;
            optional fixed32  f9  = 9;
            optional fixed64  f10 = 10;
            optional sfixed32 f11 = 11;
            optional sfixed64 f12 = 12;
            optional bool     f13 = 13;
            optional string   f14 = 14;
            optional bytes    f15 = 15;
        }
    )");
    const auto &desc = pool.message(pool.FindMessage("AllTypes"));
    EXPECT_EQ(desc.field_count(), 15u);
    EXPECT_EQ(desc.FindFieldByName("f11")->type, FieldType::kSfixed32);
}

TEST(SchemaParser, NestedAndRecursiveMessages)
{
    DescriptorPool pool = MustParse(R"(
        message Tree {
            message Node {
                optional int32 value = 1;
                repeated Node children = 2;  // recursive
            }
            optional Node root = 1;
        }
    )");
    const int node = pool.FindMessage("Tree.Node");
    ASSERT_GE(node, 0);
    const auto &tree = pool.message(pool.FindMessage("Tree"));
    EXPECT_EQ(tree.field(0).message_type, node);
    const auto &node_desc = pool.message(node);
    EXPECT_EQ(node_desc.FindFieldByName("children")->message_type, node);
}

TEST(SchemaParser, NameResolutionInnermostFirst)
{
    DescriptorPool pool = MustParse(R"(
        message A { optional int32 marker_outer = 1; }
        message Outer {
            message A { optional int32 marker_inner = 1; }
            optional A pick_inner = 1;    // resolves to Outer.A
            optional .A pick_global = 2;  // fully qualified
        }
    )");
    const auto &outer = pool.message(pool.FindMessage("Outer"));
    EXPECT_EQ(outer.field(0).message_type, pool.FindMessage("Outer.A"));
    EXPECT_EQ(outer.field(1).message_type, pool.FindMessage("A"));
}

TEST(SchemaParser, ForwardReferences)
{
    DescriptorPool pool = MustParse(R"(
        message Uses { optional Defined later = 1; }
        message Defined { optional int32 v = 1; }
    )");
    EXPECT_EQ(pool.message(pool.FindMessage("Uses")).field(0)
                  .message_type,
              pool.FindMessage("Defined"));
}

TEST(SchemaParser, PackedAndDefaults)
{
    DescriptorPool pool = MustParse(R"(
        message M {
            repeated int32 nums = 1 [packed = true];
            repeated int32 loose = 2 [packed = false];
            optional int32 answer = 3 [default = 42];
            optional int32 neg = 4 [default = -7];
            optional double pi = 5 [default = 3.5];
            optional bool flag = 6 [default = true];
            optional string greeting = 7 [default = "hello"];
        }
    )");
    const auto &desc = pool.message(pool.FindMessage("M"));
    EXPECT_TRUE(desc.FindFieldByName("nums")->packed);
    EXPECT_FALSE(desc.FindFieldByName("loose")->packed);

    Arena arena;
    Message m = Message::Create(&arena, pool, desc.pool_index());
    EXPECT_EQ(m.GetInt32(*desc.FindFieldByName("answer")), 42);
    EXPECT_EQ(m.GetInt32(*desc.FindFieldByName("neg")), -7);
    EXPECT_DOUBLE_EQ(m.GetDouble(*desc.FindFieldByName("pi")), 3.5);
    EXPECT_TRUE(m.GetBool(*desc.FindFieldByName("flag")));
    EXPECT_EQ(m.GetString(*desc.FindFieldByName("greeting")), "hello");
}

TEST(SchemaParser, EnumsResolveWithDefaults)
{
    DescriptorPool pool = MustParse(R"(
        message M {
            enum Color {
                RED = 0;
                GREEN = 5;
                BLUE = 9;
            }
            optional Color color = 1 [default = GREEN];
            repeated Color colors = 2;
        }
    )");
    const auto &desc = pool.message(pool.FindMessage("M"));
    EXPECT_EQ(desc.field(0).type, FieldType::kEnum);
    Arena arena;
    Message m = Message::Create(&arena, pool, desc.pool_index());
    EXPECT_EQ(m.GetInt32(desc.field(0)), 5);
}

TEST(SchemaParser, CommentsAndReservedIgnored)
{
    DescriptorPool pool = MustParse(R"(
        // a line comment
        message M {
            /* a block
               comment */
            reserved 4, 5, 6;
            reserved "old_name";
            option deprecated = true;
            optional int32 a = 1;  // trailing comment
        }
    )");
    EXPECT_EQ(pool.message(pool.FindMessage("M")).field_count(), 1u);
}

TEST(SchemaParser, Proto3Rules)
{
    DescriptorPool pool = MustParse(R"(
        syntax = "proto3";
        message M {
            string name = 1;        // no label needed
            repeated int32 xs = 2;  // packed by default
        }
    )");
    const auto &desc = pool.message(pool.FindMessage("M"));
    EXPECT_EQ(desc.syntax(), Syntax::kProto3);
    EXPECT_TRUE(desc.FindFieldByName("xs")->packed);

    DescriptorPool bad;
    const auto r1 = ParseSchema(
        "syntax = \"proto3\"; message M { required int32 a = 1; }",
        &bad);
    EXPECT_FALSE(r1.ok);
    DescriptorPool bad2;
    const auto r2 = ParseSchema(
        "syntax = \"proto3\"; message M { int32 a = 1 [default = 3]; }",
        &bad2);
    EXPECT_FALSE(r2.ok);
}

TEST(SchemaParser, ErrorsCarryLineNumbers)
{
    struct Case
    {
        const char *text;
        const char *fragment;
    };
    const Case cases[] = {
        {"message M { optional int32 a }", "expected '='"},
        {"message M { optional Wat a = 1; }", "unknown type"},
        {"message M { optional int32 a = 0; }", "out of range"},
        {"message { }", "message name"},
        {"message M { optional int32 a = 1 [packed = maybe]; }",
         "packed"},
        {"banana", "expected 'message'"},
        {"message M { optional int32 a = 1; ", "unexpected end"},
    };
    for (const auto &c : cases) {
        DescriptorPool pool;
        const SchemaParseResult r = ParseSchema(c.text, &pool);
        EXPECT_FALSE(r.ok) << c.text;
        EXPECT_NE(r.error.find(c.fragment), std::string::npos)
            << "error was: " << r.error;
        EXPECT_GE(r.line, 1);
    }
}

TEST(SchemaParser, ParsedSchemaRoundTripsOnTheWire)
{
    DescriptorPool pool = MustParse(R"(
        syntax = "proto2";
        message Person {
            required string name = 1;
            optional int64 id = 2;
            message Phone {
                optional string number = 1;
                optional bool mobile = 2;
            }
            repeated Phone phones = 3;
            repeated int32 lucky = 4 [packed = true];
        }
    )");
    const int person = pool.FindMessage("Person");
    const auto &desc = pool.message(person);
    Arena arena;
    Message m = Message::Create(&arena, pool, person);
    m.SetString(*desc.FindFieldByName("name"), "Grace");
    m.SetInt64(*desc.FindFieldByName("id"), 1906);
    Message phone = m.AddRepeatedMessage(*desc.FindFieldByName("phones"));
    phone.SetString(*phone.descriptor().FindFieldByName("number"),
                    "555-0100");
    phone.SetBool(*phone.descriptor().FindFieldByName("mobile"), true);
    m.AddRepeatedBits(*desc.FindFieldByName("lucky"), 13);

    const auto wire = Serialize(m);
    Message back = Message::Create(&arena, pool, person);
    ASSERT_EQ(ParseFromBuffer(wire.data(), wire.size(), &back),
              ParseStatus::kOk);
    EXPECT_TRUE(MessagesEqual(m, back));
    EXPECT_TRUE(IsInitialized(back));
}

}  // namespace
}  // namespace protoacc::proto
