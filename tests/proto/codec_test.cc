#include <gtest/gtest.h>

#include "proto/parser.h"
#include "proto/serializer.h"

namespace protoacc::proto {
namespace {

std::vector<uint8_t>
Bytes(std::initializer_list<int> xs)
{
    std::vector<uint8_t> out;
    for (int x : xs)
        out.push_back(static_cast<uint8_t>(x));
    return out;
}

class CodecTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        inner_ = pool_.AddMessage("Inner");
        pool_.AddField(inner_, "v", 1, FieldType::kInt32);
        pool_.AddField(inner_, "name", 2, FieldType::kString);

        msg_ = pool_.AddMessage("Test");
        pool_.AddField(msg_, "a", 1, FieldType::kInt32);
        pool_.AddField(msg_, "s", 2, FieldType::kString);
        pool_.AddField(msg_, "d", 3, FieldType::kDouble);
        pool_.AddField(msg_, "z", 4, FieldType::kSint32);
        pool_.AddMessageField(msg_, "sub", 5, inner_);
        pool_.AddField(msg_, "rp", 6, FieldType::kInt32, Label::kRepeated,
                       /*packed=*/true);
        pool_.AddField(msg_, "ru", 7, FieldType::kInt32, Label::kRepeated,
                       /*packed=*/false);
        pool_.AddField(msg_, "fl", 8, FieldType::kFloat);
        pool_.AddField(msg_, "fx64", 9, FieldType::kFixed64);
        pool_.AddField(msg_, "bl", 10, FieldType::kBool);
        pool_.Compile();
    }

    const FieldDescriptor &
    F(const char *name) const
    {
        return *pool_.message(msg_).FindFieldByName(name);
    }

    Message
    NewMsg()
    {
        return Message::Create(&arena_, pool_, msg_);
    }

    Message
    ParseOk(const std::vector<uint8_t> &wire)
    {
        Message m = NewMsg();
        EXPECT_EQ(ParseFromBuffer(wire.data(), wire.size(), &m),
                  ParseStatus::kOk);
        return m;
    }

    DescriptorPool pool_;
    Arena arena_;
    int inner_ = -1;
    int msg_ = -1;
};

TEST_F(CodecTest, GoldenVarintField)
{
    // The canonical protobuf docs example: field 1 (varint) = 150
    // encodes as 08 96 01.
    Message m = NewMsg();
    m.SetInt32(F("a"), 150);
    EXPECT_EQ(Serialize(m), Bytes({0x08, 0x96, 0x01}));
}

TEST_F(CodecTest, GoldenStringField)
{
    // Docs example: field 2 (string) = "testing" -> 12 07 74..67.
    Message m = NewMsg();
    m.SetString(F("s"), "testing");
    EXPECT_EQ(Serialize(m), Bytes({0x12, 0x07, 0x74, 0x65, 0x73, 0x74,
                                   0x69, 0x6e, 0x67}));
}

TEST_F(CodecTest, NegativeInt32SignExtendsToTenBytes)
{
    // proto2: int32 -1 is serialized as the 10-byte varint for 2^64-1.
    Message m = NewMsg();
    m.SetInt32(F("a"), -1);
    const auto wire = Serialize(m);
    ASSERT_EQ(wire.size(), 11u);  // 1 tag + 10 value bytes
    EXPECT_EQ(wire[0], 0x08);
    for (int i = 1; i <= 9; ++i)
        EXPECT_EQ(wire[i], 0xff);
    EXPECT_EQ(wire[10], 0x01);

    Message back = ParseOk(wire);
    EXPECT_EQ(back.GetInt32(F("a")), -1);
}

TEST_F(CodecTest, SintUsesZigZag)
{
    Message m = NewMsg();
    m.SetInt32(F("z"), -1);  // zigzag(-1) = 1 -> single byte
    const auto wire = Serialize(m);
    EXPECT_EQ(wire, Bytes({0x20, 0x01}));
    Message back = ParseOk(wire);
    EXPECT_EQ(back.GetInt32(F("z")), -1);
}

TEST_F(CodecTest, DoubleAndFloatAndFixed)
{
    Message m = NewMsg();
    m.SetDouble(F("d"), 1.0);
    m.SetFloat(F("fl"), -2.5f);
    m.SetUint64(F("fx64"), 0x1122334455667788ull);
    const auto wire = Serialize(m);
    Message back = ParseOk(wire);
    EXPECT_DOUBLE_EQ(back.GetDouble(F("d")), 1.0);
    EXPECT_FLOAT_EQ(back.GetFloat(F("fl")), -2.5f);
    EXPECT_EQ(back.GetUint64(F("fx64")), 0x1122334455667788ull);
}

TEST_F(CodecTest, BoolEncodesAsOneByte)
{
    Message m = NewMsg();
    m.SetBool(F("bl"), true);
    EXPECT_EQ(Serialize(m), Bytes({0x50, 0x01}));
}

TEST_F(CodecTest, EmptyMessageSerializesToNothing)
{
    // Figure 1: empty messages take no bytes in encoded form.
    Message m = NewMsg();
    EXPECT_TRUE(Serialize(m).empty());
    EXPECT_EQ(ByteSize(m), 0u);
}

TEST_F(CodecTest, SubMessageRoundTrip)
{
    Message m = NewMsg();
    Message sub = m.MutableMessage(F("sub"));
    sub.SetInt32(*sub.descriptor().FindFieldByName("v"), 600613);
    sub.SetString(*sub.descriptor().FindFieldByName("name"), "inner");
    const auto wire = Serialize(m);
    Message back = ParseOk(wire);
    EXPECT_TRUE(MessagesEqual(m, back));
}

TEST_F(CodecTest, EmptySubMessageOccupiesTagAndZeroLength)
{
    Message m = NewMsg();
    m.MutableMessage(F("sub"));
    // tag(5, len-delim) = 0x2a, length 0.
    EXPECT_EQ(Serialize(m), Bytes({0x2a, 0x00}));
}

TEST_F(CodecTest, PackedRepeatedEncoding)
{
    Message m = NewMsg();
    for (int v : {3, 270, 86942})
        m.AddRepeatedBits(F("rp"), static_cast<uint32_t>(v));
    // The protobuf docs packed example: 32 06 03 8e 02 9e a7 05.
    EXPECT_EQ(Serialize(m),
              Bytes({0x32, 0x06, 0x03, 0x8e, 0x02, 0x9e, 0xa7, 0x05}));
    Message back = ParseOk(Serialize(m));
    ASSERT_EQ(back.RepeatedSize(F("rp")), 3u);
    EXPECT_EQ(back.GetRepeated<int32_t>(F("rp"), 2), 86942);
}

TEST_F(CodecTest, UnpackedRepeatedEncoding)
{
    Message m = NewMsg();
    m.AddRepeatedBits(F("ru"), 1);
    m.AddRepeatedBits(F("ru"), 2);
    // Two (key, value) pairs with the same key (§2.1.2).
    EXPECT_EQ(Serialize(m), Bytes({0x38, 0x01, 0x38, 0x02}));
}

TEST_F(CodecTest, ParserAcceptsPackedForUnpackedFieldAndViceVersa)
{
    // proto2 parsers must accept both encodings for repeated scalars.
    Message a = ParseOk(Bytes({0x3a, 0x02, 0x05, 0x06}));  // field 7 packed
    ASSERT_EQ(a.RepeatedSize(F("ru")), 2u);
    EXPECT_EQ(a.GetRepeated<int32_t>(F("ru"), 0), 5);

    Message b = ParseOk(Bytes({0x30, 0x09, 0x30, 0x0a}));  // field 6 unpacked
    ASSERT_EQ(b.RepeatedSize(F("rp")), 2u);
    EXPECT_EQ(b.GetRepeated<int32_t>(F("rp"), 1), 10);
}

TEST_F(CodecTest, UnknownFieldsAreSkipped)
{
    // Field 99 (varint), field 100 (length-delimited), field 101
    // (fixed32), field 102 (fixed64) are not in the schema: the parser
    // must skip them and still decode field 1 (schema evolution, §2.1.1).
    std::vector<uint8_t> wire;
    auto append = [&wire](std::initializer_list<int> xs) {
        for (int x : xs)
            wire.push_back(static_cast<uint8_t>(x));
    };
    append({0x98, 0x06, 0x07});                    // 99 varint 7
    append({0xa2, 0x06, 0x03, 'a', 'b', 'c'});     // 100 len-delim "abc"
    append({0xad, 0x06, 1, 2, 3, 4});              // 101 fixed32
    append({0xb1, 0x06, 1, 2, 3, 4, 5, 6, 7, 8});  // 102 fixed64
    append({0x08, 0x2a});                          // a = 42
    Message m = ParseOk(wire);
    EXPECT_EQ(m.GetInt32(F("a")), 42);
}

TEST_F(CodecTest, TruncatedInputsFail)
{
    Message m = NewMsg();
    m.SetString(F("s"), "hello world");
    m.SetDouble(F("d"), 3.5);
    const auto wire = Serialize(m);
    ASSERT_EQ(wire.size(), 22u);  // 13-byte string field + 9-byte double
    for (size_t cut = 1; cut < wire.size(); ++cut) {
        if (cut == 13)
            continue;  // a complete-field prefix is a valid message
        Message target = NewMsg();
        EXPECT_NE(ParseFromBuffer(wire.data(), cut, &target),
                  ParseStatus::kOk)
            << "cut=" << cut;
    }
}

TEST_F(CodecTest, MalformedVarintFails)
{
    const auto wire = Bytes({0x08, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
                             0xff, 0xff, 0xff, 0xff, 0xff});
    Message m = NewMsg();
    EXPECT_EQ(ParseFromBuffer(wire.data(), wire.size(), &m),
              ParseStatus::kMalformedVarint);
}

TEST_F(CodecTest, FieldNumberZeroRejected)
{
    const auto wire = Bytes({0x00, 0x01});
    Message m = NewMsg();
    EXPECT_EQ(ParseFromBuffer(wire.data(), wire.size(), &m),
              ParseStatus::kInvalidFieldNumber);
}

TEST_F(CodecTest, GroupWireTypesRejected)
{
    const auto wire = Bytes({0x0b});  // field 1, start-group
    Message m = NewMsg();
    EXPECT_EQ(ParseFromBuffer(wire.data(), wire.size(), &m),
              ParseStatus::kInvalidWireType);
}

TEST_F(CodecTest, ByteSizeMatchesSerializedLength)
{
    Message m = NewMsg();
    m.SetInt32(F("a"), 1 << 20);
    m.SetString(F("s"), std::string(300, 'x'));
    Message sub = m.MutableMessage(F("sub"));
    sub.SetString(*sub.descriptor().FindFieldByName("name"),
                  std::string(40, 'y'));
    for (int i = 0; i < 10; ++i)
        m.AddRepeatedBits(F("rp"), static_cast<uint32_t>(i * 1000));
    EXPECT_EQ(ByteSize(m), Serialize(m).size());
}

TEST_F(CodecTest, SerializeToBufferRejectsSmallBuffer)
{
    Message m = NewMsg();
    m.SetString(F("s"), "0123456789");
    std::vector<uint8_t> small(4);
    EXPECT_EQ(SerializeToBuffer(m, small.data(), small.size()), 0u);
    std::vector<uint8_t> big(64);
    EXPECT_EQ(SerializeToBuffer(m, big.data(), big.size()),
              ByteSize(m));
}

TEST_F(CodecTest, ParseMergesIntoExistingMessage)
{
    Message m = NewMsg();
    m.SetInt32(F("a"), 1);
    m.AddRepeatedBits(F("ru"), 100);
    // Wire contains a=2 and one more ru element: repeated appends,
    // scalar last-wins (proto2 merge semantics).
    const auto wire = Bytes({0x08, 0x02, 0x38, 0x65});
    EXPECT_EQ(ParseFromBuffer(wire.data(), wire.size(), &m),
              ParseStatus::kOk);
    EXPECT_EQ(m.GetInt32(F("a")), 2);
    ASSERT_EQ(m.RepeatedSize(F("ru")), 2u);
    EXPECT_EQ(m.GetRepeated<int32_t>(F("ru"), 0), 100);
    EXPECT_EQ(m.GetRepeated<int32_t>(F("ru"), 1), 101);
}

TEST_F(CodecTest, DeeplyNestedMessagesHitDepthLimit)
{
    DescriptorPool pool;
    const int node = pool.AddMessage("Node");
    pool.AddMessageField(node, "next", 1, node);
    pool.AddField(node, "v", 2, FieldType::kInt32);
    pool.Compile();

    Arena arena;
    Message root = Message::Create(&arena, pool, node);
    Message cur = root;
    const FieldDescriptor &next = *pool.message(node).FindFieldByName(
        "next");
    for (int i = 0; i < kMaxParseDepth + 5; ++i)
        cur = cur.MutableMessage(next);
    const auto wire = Serialize(root);

    Message target = Message::Create(&arena, pool, node);
    EXPECT_EQ(ParseFromBuffer(wire.data(), wire.size(), &target),
              ParseStatus::kDepthExceeded);
}

TEST_F(CodecTest, ModerateNestingRoundTrips)
{
    DescriptorPool pool;
    const int node = pool.AddMessage("Node");
    pool.AddMessageField(node, "next", 1, node);
    pool.AddField(node, "v", 2, FieldType::kInt32);
    pool.Compile();

    Arena arena;
    Message root = Message::Create(&arena, pool, node);
    Message cur = root;
    const auto &next = *pool.message(node).FindFieldByName("next");
    const auto &v = *pool.message(node).FindFieldByName("v");
    // §3.8: 99.999% of fleet bytes are at depth <= 25.
    for (int i = 0; i < 25; ++i) {
        cur.SetInt32(v, i);
        cur = cur.MutableMessage(next);
    }
    const auto wire = Serialize(root);
    Message target = Message::Create(&arena, pool, node);
    ASSERT_EQ(ParseFromBuffer(wire.data(), wire.size(), &target),
              ParseStatus::kOk);
    EXPECT_TRUE(MessagesEqual(root, target));
}

}  // namespace
}  // namespace protoacc::proto
