#include <gtest/gtest.h>

#include "proto/message_ops.h"
#include "proto/parser.h"
#include "proto/schema_random.h"
#include "proto/serializer.h"

namespace protoacc::proto {
namespace {

class MessageOpsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        inner_ = pool_.AddMessage("Inner");
        pool_.AddField(inner_, "v", 1, FieldType::kInt32);
        pool_.AddField(inner_, "s", 2, FieldType::kString);

        msg_ = pool_.AddMessage("M");
        pool_.AddField(msg_, "a", 1, FieldType::kInt64);
        pool_.AddField(msg_, "s", 2, FieldType::kString);
        pool_.AddMessageField(msg_, "sub", 3, inner_);
        pool_.AddField(msg_, "r", 4, FieldType::kInt32,
                       Label::kRepeated, /*packed=*/true);
        pool_.AddField(msg_, "rs", 5, FieldType::kString,
                       Label::kRepeated);
        pool_.AddMessageField(msg_, "rm", 6, inner_, Label::kRepeated);
        pool_.AddField(msg_, "req", 7, FieldType::kBool,
                       Label::kRequired);
        pool_.Compile();
    }

    const FieldDescriptor &
    F(const char *name)
    {
        const FieldDescriptor *f =
            pool_.message(msg_).FindFieldByName(name);
        {
            EXPECT_NE(f, nullptr);
        }
        return *f;
    }

    Message
    Populated()
    {
        Message m = Message::Create(&arena_, pool_, msg_);
        m.SetInt64(F("a"), 77);
        m.SetString(F("s"), "hello ops");
        Message sub = m.MutableMessage(F("sub"));
        sub.SetInt32(*sub.descriptor().FindFieldByName("v"), 5);
        m.AddRepeatedBits(F("r"), 1);
        m.AddRepeatedBits(F("r"), 2);
        m.AddRepeatedString(F("rs"), "one");
        Message e = m.AddRepeatedMessage(F("rm"));
        e.SetString(*e.descriptor().FindFieldByName("s"), "elem");
        m.SetBool(F("req"), true);
        return m;
    }

    DescriptorPool pool_;
    Arena arena_;
    int inner_ = -1;
    int msg_ = -1;
};

TEST_F(MessageOpsTest, ClearDropsEverything)
{
    Message m = Populated();
    ClearMessage(m);
    for (const auto &f : m.descriptor().fields()) {
        EXPECT_FALSE(m.Has(f)) << f.name;
        if (f.repeated()) {
            EXPECT_EQ(m.RepeatedSize(f), 0u) << f.name;
        }
    }
    EXPECT_TRUE(Serialize(m).empty());
}

TEST_F(MessageOpsTest, ClearedMessageIsReusable)
{
    Message m = Populated();
    ClearMessage(m);
    m.SetInt64(F("a"), 1);
    m.AddRepeatedBits(F("r"), 9);
    EXPECT_EQ(m.GetInt64(F("a")), 1);
    ASSERT_EQ(m.RepeatedSize(F("r")), 1u);
    EXPECT_EQ(m.GetRepeated<int32_t>(F("r"), 0), 9);
}

TEST_F(MessageOpsTest, MergeOverwritesScalarsAppendsRepeated)
{
    Message dst = Message::Create(&arena_, pool_, msg_);
    dst.SetInt64(F("a"), 1);
    dst.AddRepeatedBits(F("r"), 100);
    dst.SetString(F("s"), "old");

    Message src = Message::Create(&arena_, pool_, msg_);
    src.SetInt64(F("a"), 2);
    src.AddRepeatedBits(F("r"), 200);
    src.SetString(F("s"), "new");

    MergeFrom(dst, src);
    EXPECT_EQ(dst.GetInt64(F("a")), 2);
    EXPECT_EQ(dst.GetString(F("s")), "new");
    ASSERT_EQ(dst.RepeatedSize(F("r")), 2u);
    EXPECT_EQ(dst.GetRepeated<int32_t>(F("r"), 0), 100);
    EXPECT_EQ(dst.GetRepeated<int32_t>(F("r"), 1), 200);
}

TEST_F(MessageOpsTest, MergeRecursesIntoSubmessages)
{
    Message dst = Message::Create(&arena_, pool_, msg_);
    Message dsub = dst.MutableMessage(F("sub"));
    dsub.SetInt32(*dsub.descriptor().FindFieldByName("v"), 1);
    dsub.SetString(*dsub.descriptor().FindFieldByName("s"), "keep");

    Message src = Message::Create(&arena_, pool_, msg_);
    Message ssub = src.MutableMessage(F("sub"));
    ssub.SetInt32(*ssub.descriptor().FindFieldByName("v"), 2);

    MergeFrom(dst, src);
    Message merged = dst.GetMessage(F("sub"));
    // v overwritten by src, s kept from dst: field-wise merge.
    EXPECT_EQ(merged.GetInt32(
                  *merged.descriptor().FindFieldByName("v")),
              2);
    EXPECT_EQ(merged.GetString(
                  *merged.descriptor().FindFieldByName("s")),
              "keep");
}

TEST_F(MessageOpsTest, MergeMatchesParseConcatenation)
{
    // proto2 contract: parse(A + B) == merge(parse(A), parse(B)).
    Message a = Populated();
    Message b = Message::Create(&arena_, pool_, msg_);
    b.SetInt64(F("a"), -1);
    b.AddRepeatedString(F("rs"), "two");

    auto wire = Serialize(a);
    const auto wire_b = Serialize(b);
    wire.insert(wire.end(), wire_b.begin(), wire_b.end());

    Message concat = Message::Create(&arena_, pool_, msg_);
    ASSERT_EQ(ParseFromBuffer(wire.data(), wire.size(), &concat),
              ParseStatus::kOk);

    Message merged = Message::Create(&arena_, pool_, msg_);
    MergeFrom(merged, a);
    MergeFrom(merged, b);
    EXPECT_TRUE(MessagesEqual(concat, merged));
}

TEST_F(MessageOpsTest, CopyFromProducesDeepEqualIndependentCopy)
{
    Message src = Populated();
    Message dst = Message::Create(&arena_, pool_, msg_);
    dst.SetInt64(F("a"), 999);  // stale state to be cleared
    dst.AddRepeatedBits(F("r"), 42);

    CopyFrom(dst, src);
    EXPECT_TRUE(MessagesEqual(dst, src));

    // Deep: mutating the copy leaves the source untouched.
    dst.MutableMessage(F("sub")).SetInt32(
        *pool_.message(inner_).FindFieldByName("v"), -5);
    EXPECT_EQ(src.GetMessage(F("sub")).GetInt32(
                  *pool_.message(inner_).FindFieldByName("v")),
              5);
    EXPECT_FALSE(MessagesEqual(dst, src));
}

TEST_F(MessageOpsTest, IsInitializedChecksRequiredRecursively)
{
    Message m = Message::Create(&arena_, pool_, msg_);
    EXPECT_FALSE(IsInitialized(m));  // required bool unset
    m.SetBool(F("req"), false);      // present, value irrelevant
    EXPECT_TRUE(IsInitialized(m));
    // Sub-messages without required fields don't affect the result.
    m.MutableMessage(F("sub"));
    EXPECT_TRUE(IsInitialized(m));
}

TEST_F(MessageOpsTest, OpsChargeCostSink)
{
    class Counter : public CostSink
    {
      public:
        int dispatches = 0;
        void OnFieldDispatch() override { ++dispatches; }
    } sink;
    Message src = Populated();
    Message dst = Message::Create(&arena_, pool_, msg_);
    MergeFrom(dst, src, &sink);
    EXPECT_GT(sink.dispatches, 0);
}

class MessageOpsPropertyTest : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(MessageOpsPropertyTest, CopyEqualsSourceOnRandomSchemas)
{
    Rng rng(GetParam());
    DescriptorPool pool;
    const int root = GenerateRandomSchema(&pool, &rng,
                                          SchemaGenOptions{});
    pool.Compile();
    Arena arena;
    Message src = Message::Create(&arena, pool, root);
    PopulateRandomMessage(src, &rng, MessageGenOptions{});

    Message dst = Message::Create(&arena, pool, root);
    PopulateRandomMessage(dst, &rng, MessageGenOptions{});  // stale
    CopyFrom(dst, src);
    EXPECT_TRUE(MessagesEqual(dst, src)) << "seed " << GetParam();
    // And the copy serializes identically.
    EXPECT_EQ(Serialize(dst), Serialize(src));
}

TEST_P(MessageOpsPropertyTest, MergeEqualsParseConcatRandomSchemas)
{
    Rng rng(GetParam() ^ 0x777);
    DescriptorPool pool;
    const int root = GenerateRandomSchema(&pool, &rng,
                                          SchemaGenOptions{});
    pool.Compile();
    Arena arena;
    Message a = Message::Create(&arena, pool, root);
    Message b = Message::Create(&arena, pool, root);
    PopulateRandomMessage(a, &rng, MessageGenOptions{});
    PopulateRandomMessage(b, &rng, MessageGenOptions{});

    auto wire = Serialize(a);
    const auto wb = Serialize(b);
    wire.insert(wire.end(), wb.begin(), wb.end());
    Message concat = Message::Create(&arena, pool, root);
    ASSERT_EQ(ParseFromBuffer(wire.data(), wire.size(), &concat),
              ParseStatus::kOk);

    Message merged = Message::Create(&arena, pool, root);
    MergeFrom(merged, a);
    MergeFrom(merged, b);
    EXPECT_TRUE(MessagesEqual(concat, merged)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageOpsPropertyTest,
                         ::testing::Range<uint64_t>(500, 525));

}  // namespace
}  // namespace protoacc::proto
