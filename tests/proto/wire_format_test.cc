#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "proto/wire_format.h"

namespace protoacc::proto {
namespace {

TEST(Varint, EncodeKnownValues)
{
    uint8_t buf[kMaxVarintBytes];
    // Canonical example from the protobuf encoding docs: 150 -> 96 01.
    EXPECT_EQ(EncodeVarint(150, buf), 2);
    EXPECT_EQ(buf[0], 0x96);
    EXPECT_EQ(buf[1], 0x01);

    EXPECT_EQ(EncodeVarint(0, buf), 1);
    EXPECT_EQ(buf[0], 0x00);

    EXPECT_EQ(EncodeVarint(1, buf), 1);
    EXPECT_EQ(buf[0], 0x01);

    EXPECT_EQ(EncodeVarint(UINT64_MAX, buf), 10);
    for (int i = 0; i < 9; ++i)
        EXPECT_EQ(buf[i], 0xff);
    EXPECT_EQ(buf[9], 0x01);
}

TEST(Varint, SizeBoundaries)
{
    // Size increments at each 7-bit boundary.
    for (int n = 1; n <= 9; ++n) {
        const uint64_t below = (1ull << (7 * n)) - 1;
        EXPECT_EQ(VarintSize(below), n) << below;
        EXPECT_EQ(VarintSize(below + 1), n + 1) << below + 1;
    }
    EXPECT_EQ(VarintSize(0), 1);
    EXPECT_EQ(VarintSize(UINT64_MAX), 10);
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(VarintRoundTrip, EncodeDecodeIdentity)
{
    const uint64_t v = GetParam();
    uint8_t buf[kMaxVarintBytes];
    const int n = EncodeVarint(v, buf);
    EXPECT_EQ(n, VarintSize(v));
    uint64_t decoded = 0;
    EXPECT_EQ(DecodeVarint(buf, buf + n, &decoded), n);
    EXPECT_EQ(decoded, v);
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintRoundTrip,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 300ull, 16383ull,
                      16384ull, (1ull << 21) - 1, 1ull << 21,
                      (1ull << 28) - 1, 1ull << 28, (1ull << 35),
                      (1ull << 42), (1ull << 49), (1ull << 56),
                      (1ull << 63), UINT64_MAX));

TEST(Varint, DecodeTruncatedFails)
{
    uint8_t buf[kMaxVarintBytes];
    const int n = EncodeVarint(1ull << 40, buf);
    ASSERT_GT(n, 2);
    uint64_t v;
    for (int cut = 0; cut < n; ++cut)
        EXPECT_EQ(DecodeVarint(buf, buf + cut, &v), 0) << cut;
}

TEST(Varint, DecodeOverlongFails)
{
    // 11 continuation bytes exceeds the 10-byte maximum.
    std::vector<uint8_t> buf(12, 0x80);
    uint64_t v;
    EXPECT_EQ(DecodeVarint(buf.data(), buf.data() + buf.size(), &v), 0);
}

TEST(Varint, DecodeWithTrailingSlack)
{
    // Mid-stream decode: bytes after the varint must not affect the
    // result (they are the next field's data). Covers the 8-byte
    // word-at-a-time path, which only engages when slack is available.
    for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 16384ull,
                       (1ull << 28) - 1, 1ull << 35, 1ull << 56,
                       1ull << 63, ~0ull}) {
        uint8_t buf[kMaxVarintBytes + 16];
        std::memset(buf, 0xff, sizeof(buf));  // worst-case slack bytes
        const int n = EncodeVarint(v, buf);
        uint64_t decoded = 0;
        EXPECT_EQ(DecodeVarint(buf, buf + sizeof(buf), &decoded), n) << v;
        EXPECT_EQ(decoded, v) << v;
    }
}

TEST(Varint, ThreeAndFourBytePathsAgreeWithExactFit)
{
    // The 3-4 byte terminators have a dedicated 32-bit-load path that
    // only engages with >= 4 readable bytes; an exact-fit buffer takes
    // the byte-at-a-time tail instead. Both must agree everywhere in
    // the 3- and 4-byte ranges' boundaries.
    for (uint64_t v :
         {16384ull, 100000ull, (1ull << 21) - 1,  // 3-byte range
          1ull << 21, 10000000ull, (1ull << 28) - 1}) {  // 4-byte range
        uint8_t buf[kMaxVarintBytes + 8];
        std::memset(buf, 0xff, sizeof(buf));
        const int n = EncodeVarint(v, buf);
        ASSERT_TRUE(n == 3 || n == 4) << v;
        uint64_t with_slack = 0;
        EXPECT_EQ(DecodeVarint(buf, buf + sizeof(buf), &with_slack), n)
            << v;
        uint64_t exact_fit = 0;
        EXPECT_EQ(DecodeVarint(buf, buf + n, &exact_fit), n) << v;
        EXPECT_EQ(with_slack, v) << v;
        EXPECT_EQ(exact_fit, v) << v;
    }
}

TEST(Varint, ThreeBytePathDoesNotOverreadPastTerminator)
{
    // A 3-byte varint followed by a continuation-looking byte: the
    // 32-bit load sees byte 3 = 0xff but must stop at byte 2's clear
    // msb and leave the tail for the next field.
    uint8_t buf[8] = {0x80, 0x80, 0x7f, 0xff, 0xff, 0xff, 0xff, 0xff};
    uint64_t v = 0;
    EXPECT_EQ(DecodeVarint(buf, buf + sizeof(buf), &v), 3);
    EXPECT_EQ(v, 0x7full << 14);
}

TEST(Varint, DecodeTenByteBoundaries)
{
    uint8_t buf[kMaxVarintBytes];
    uint64_t v = 0;

    // 2^63: the highest single-bit value, 10 wire bytes.
    ASSERT_EQ(EncodeVarint(1ull << 63, buf), 10);
    EXPECT_EQ(DecodeVarint(buf, buf + 10, &v), 10);
    EXPECT_EQ(v, 1ull << 63);

    // 2^64 - 1: all payload bits set, final byte 0x01.
    ASSERT_EQ(EncodeVarint(UINT64_MAX, buf), 10);
    EXPECT_EQ(DecodeVarint(buf, buf + 10, &v), 10);
    EXPECT_EQ(v, UINT64_MAX);
}

TEST(Varint, DecodeOverlongZeroAccepted)
{
    // Zero padded out to the full 10 bytes: non-canonical but valid
    // (encoders in the wild emit over-long varints; see also the
    // serializer's sign-extended int32s).
    uint8_t buf[10];
    std::memset(buf, 0x80, 9);
    buf[9] = 0x00;
    uint64_t v = 42;
    EXPECT_EQ(DecodeVarint(buf, buf + 10, &v), 10);
    EXPECT_EQ(v, 0u);

    // Same with slack after it (word-at-a-time path).
    uint8_t padded[24];
    std::memset(padded, 0xff, sizeof(padded));
    std::memcpy(padded, buf, 10);
    v = 42;
    EXPECT_EQ(DecodeVarint(padded, padded + sizeof(padded), &v), 10);
    EXPECT_EQ(v, 0u);
}

TEST(Varint, DecodeTenthByteOverflowFails)
{
    // A 10-byte varint's final byte contributes bits 63..69; only bit 63
    // fits in a uint64. Any payload above 0x01 in byte 10 would silently
    // drop bits, so the decoder must reject it.
    uint8_t buf[10];
    std::memset(buf, 0xff, 9);
    uint64_t v;
    for (const uint8_t last : {0x02, 0x03, 0x7f}) {
        buf[9] = last;
        EXPECT_EQ(DecodeVarint(buf, buf + 10, &v), 0) << int(last);
    }
    // With a valid final byte the same prefix decodes fine.
    buf[9] = 0x01;
    EXPECT_EQ(DecodeVarint(buf, buf + 10, &v), 10);
    EXPECT_EQ(v, UINT64_MAX);

    // Rejection must also hold on the slack-rich path.
    uint8_t padded[24] = {};
    std::memset(padded, 0xff, 9);
    padded[9] = 0x02;
    EXPECT_EQ(DecodeVarint(padded, padded + sizeof(padded), &v), 0);
}

TEST(ZigZag, KnownValues32)
{
    // From the protobuf encoding documentation.
    EXPECT_EQ(ZigZagEncode32(0), 0u);
    EXPECT_EQ(ZigZagEncode32(-1), 1u);
    EXPECT_EQ(ZigZagEncode32(1), 2u);
    EXPECT_EQ(ZigZagEncode32(-2), 3u);
    EXPECT_EQ(ZigZagEncode32(2147483647), 4294967294u);
    EXPECT_EQ(ZigZagEncode32(INT32_MIN), 4294967295u);
}

TEST(ZigZag, RoundTrip64)
{
    for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, INT64_MIN,
                      INT64_MAX, int64_t{-123456789}}) {
        EXPECT_EQ(ZigZagDecode64(ZigZagEncode64(v)), v);
    }
}

TEST(ZigZag, RoundTrip32)
{
    for (int32_t v :
         {0, -1, 1, INT32_MIN, INT32_MAX, -65536, 65535}) {
        EXPECT_EQ(ZigZagDecode32(ZigZagEncode32(v)), v);
    }
}

TEST(Tag, PackUnpack)
{
    const uint32_t tag = MakeTag(5, WireType::kLengthDelimited);
    EXPECT_EQ(tag, 0x2au);  // 5 << 3 | 2
    EXPECT_EQ(TagFieldNumber(tag), 5u);
    EXPECT_EQ(TagWireType(tag), WireType::kLengthDelimited);

    const uint32_t big = MakeTag(kMaxFieldNumber, WireType::kVarint);
    EXPECT_EQ(TagFieldNumber(big), kMaxFieldNumber);
}

TEST(WireTypes, Table1Classification)
{
    // Table 1 / §2.1.2: wire-type assignment per field type.
    EXPECT_EQ(WireTypeForField(FieldType::kInt32), WireType::kVarint);
    EXPECT_EQ(WireTypeForField(FieldType::kInt64), WireType::kVarint);
    EXPECT_EQ(WireTypeForField(FieldType::kUint32), WireType::kVarint);
    EXPECT_EQ(WireTypeForField(FieldType::kUint64), WireType::kVarint);
    EXPECT_EQ(WireTypeForField(FieldType::kSint32), WireType::kVarint);
    EXPECT_EQ(WireTypeForField(FieldType::kSint64), WireType::kVarint);
    EXPECT_EQ(WireTypeForField(FieldType::kBool), WireType::kVarint);
    EXPECT_EQ(WireTypeForField(FieldType::kEnum), WireType::kVarint);
    EXPECT_EQ(WireTypeForField(FieldType::kDouble), WireType::kFixed64);
    EXPECT_EQ(WireTypeForField(FieldType::kFixed64), WireType::kFixed64);
    EXPECT_EQ(WireTypeForField(FieldType::kSfixed64), WireType::kFixed64);
    EXPECT_EQ(WireTypeForField(FieldType::kFloat), WireType::kFixed32);
    EXPECT_EQ(WireTypeForField(FieldType::kFixed32), WireType::kFixed32);
    EXPECT_EQ(WireTypeForField(FieldType::kSfixed32), WireType::kFixed32);
    EXPECT_EQ(WireTypeForField(FieldType::kString),
              WireType::kLengthDelimited);
    EXPECT_EQ(WireTypeForField(FieldType::kBytes),
              WireType::kLengthDelimited);
    EXPECT_EQ(WireTypeForField(FieldType::kMessage),
              WireType::kLengthDelimited);
}

TEST(WireTypes, TypePredicates)
{
    EXPECT_TRUE(IsVarintType(FieldType::kBool));
    EXPECT_FALSE(IsVarintType(FieldType::kFloat));
    EXPECT_TRUE(IsBytesLike(FieldType::kBytes));
    EXPECT_TRUE(IsBytesLike(FieldType::kString));
    EXPECT_FALSE(IsBytesLike(FieldType::kMessage));
    EXPECT_TRUE(IsFixedType(FieldType::kDouble));
    EXPECT_TRUE(IsFixedType(FieldType::kSfixed32));
    EXPECT_FALSE(IsFixedType(FieldType::kInt64));
    EXPECT_TRUE(IsZigZagType(FieldType::kSint32));
    EXPECT_FALSE(IsZigZagType(FieldType::kInt32));
}

TEST(WireTypes, InMemorySizes)
{
    EXPECT_EQ(InMemorySize(FieldType::kBool), 1u);
    EXPECT_EQ(InMemorySize(FieldType::kInt32), 4u);
    EXPECT_EQ(InMemorySize(FieldType::kFloat), 4u);
    EXPECT_EQ(InMemorySize(FieldType::kDouble), 8u);
    EXPECT_EQ(InMemorySize(FieldType::kInt64), 8u);
    EXPECT_EQ(InMemorySize(FieldType::kString), 8u);
    EXPECT_EQ(InMemorySize(FieldType::kMessage), 8u);
}

TEST(Fixed, LittleEndianLayout)
{
    uint8_t buf[8];
    StoreFixed32(0x01020304u, buf);
    EXPECT_EQ(buf[0], 0x04);
    EXPECT_EQ(buf[3], 0x01);
    EXPECT_EQ(LoadFixed32(buf), 0x01020304u);

    StoreFixed64(0x0102030405060708ull, buf);
    EXPECT_EQ(buf[0], 0x08);
    EXPECT_EQ(buf[7], 0x01);
    EXPECT_EQ(LoadFixed64(buf), 0x0102030405060708ull);
}

}  // namespace
}  // namespace protoacc::proto
