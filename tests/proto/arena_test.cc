#include <gtest/gtest.h>

#include <cstring>

#include "proto/arena.h"
#include "proto/arena_string.h"
#include "proto/parser.h"
#include "proto/repeated.h"
#include "proto/schema_parser.h"
#include "proto/serializer.h"

namespace protoacc::proto {
namespace {

TEST(Arena, AllocationsAreZeroedAndAligned)
{
    Arena arena;
    for (size_t align : {1u, 2u, 4u, 8u, 16u}) {
        char *p = static_cast<char *>(arena.Allocate(33, align));
        EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u);
        for (int i = 0; i < 33; ++i)
            EXPECT_EQ(p[i], 0);
    }
}

TEST(Arena, GrowsAcrossBlocks)
{
    Arena arena(/*block_size=*/4096);
    void *first = arena.Allocate(3000);
    void *second = arena.Allocate(3000);  // forces a second block
    EXPECT_NE(first, second);
    EXPECT_GE(arena.bytes_reserved(), 8000u);
    EXPECT_EQ(arena.allocation_count(), 2u);
}

TEST(Arena, OversizedAllocationGetsOwnBlock)
{
    Arena arena(/*block_size=*/4096);
    char *big = static_cast<char *>(arena.Allocate(1 << 20));
    big[0] = 1;
    big[(1 << 20) - 1] = 1;  // touch both ends
    EXPECT_GE(arena.bytes_reserved(), 1u << 20);
}

TEST(Arena, ResetReclaims)
{
    Arena arena;
    arena.Allocate(1000);
    arena.Allocate(1000);
    arena.Reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
    EXPECT_EQ(arena.allocation_count(), 0u);
    void *p = arena.Allocate(16);
    EXPECT_NE(p, nullptr);
}

TEST(Arena, ResetRetainsOnlyTheFirstBlock)
{
    Arena arena(/*block_size=*/4096);
    arena.Allocate(3000);
    arena.Allocate(3000);
    arena.Allocate(3000);  // three blocks now
    EXPECT_EQ(arena.block_count(), 3u);
    arena.Reset();
    EXPECT_EQ(arena.block_count(), 1u);
    EXPECT_EQ(arena.bytes_reserved(), 4096u);
    // Reuse of the retained block reserves nothing new.
    void *p = arena.Allocate(3000);
    EXPECT_NE(p, nullptr);
    EXPECT_EQ(arena.block_count(), 1u);
    EXPECT_EQ(arena.bytes_reserved(), 4096u);
}

TEST(Arena, ResetReuseParseLoopReachesSteadyState)
{
    // The serving runtime's per-call pattern: Reset, create the request
    // message, parse into it — forever on one arena. After the first
    // iteration reserves the working set, no later iteration may add a
    // block or grow the reservation (the zero-allocation steady state
    // the runtime's snapshot counters assert).
    DescriptorPool pool;
    const auto parsed = ParseSchema(R"(
        message Item {
            optional string name = 1;
            repeated int64 values = 2;
        }
    )",
                                    &pool);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    pool.Compile(HasbitsMode::kSparse);
    const int item = pool.FindMessage("Item");
    const auto &d = pool.message(item);

    std::vector<uint8_t> wire;
    {
        Arena scratch;
        Message m = Message::Create(&scratch, pool, item);
        m.SetString(*d.FindFieldByName("name"), std::string(200, 'n'));
        for (int64_t v = 0; v < 64; ++v)
            m.AddRepeatedBits(*d.FindFieldByName("values"),
                              static_cast<uint64_t>(v * v));
        wire = Serialize(m, nullptr);
    }

    Arena arena;
    size_t warm_blocks = 0;
    size_t warm_reserved = 0;
    for (int i = 0; i < 100; ++i) {
        arena.Reset();
        Message dest = Message::Create(&arena, pool, item);
        ASSERT_EQ(ParseFromBuffer(wire.data(), wire.size(), &dest,
                                  nullptr),
                  ParseStatus::kOk);
        if (i == 0) {
            warm_blocks = arena.block_count();
            warm_reserved = arena.bytes_reserved();
            EXPECT_EQ(warm_blocks, 1u);
        } else {
            EXPECT_EQ(arena.block_count(), warm_blocks);
            EXPECT_EQ(arena.bytes_reserved(), warm_reserved);
        }
    }
}

TEST(Arena, BumpAllocationIsSequentialWithinBlock)
{
    // §2.3: allocation is a pointer increment.
    Arena arena;
    char *a = static_cast<char *>(arena.Allocate(8));
    char *b = static_cast<char *>(arena.Allocate(8));
    EXPECT_EQ(b, a + 8);
}

TEST(ArenaString, LayoutMatchesLibstdcxxFootprint)
{
    EXPECT_EQ(sizeof(ArenaString), 32u);
    EXPECT_EQ(offsetof(ArenaString, data_ptr), 0u);
    EXPECT_EQ(offsetof(ArenaString, size), 8u);
    EXPECT_EQ(offsetof(ArenaString, inline_buf), 16u);
}

TEST(ArenaString, SmallStringsStoredInline)
{
    Arena arena;
    ArenaString *s = ArenaString::Create(&arena, "hello");
    EXPECT_TRUE(s->is_inline());
    EXPECT_EQ(s->view(), "hello");
    EXPECT_EQ(s->data_ptr[5], '\0');

    // Exactly at the SSO boundary.
    const std::string fifteen(15, 'x');
    s->Assign(&arena, fifteen);
    EXPECT_TRUE(s->is_inline());
    EXPECT_EQ(s->view(), fifteen);
}

TEST(ArenaString, LargeStringsSpillToArena)
{
    Arena arena;
    const std::string big(16, 'y');
    ArenaString *s = ArenaString::Create(&arena, big);
    EXPECT_FALSE(s->is_inline());
    EXPECT_EQ(s->view(), big);
    EXPECT_GE(s->heap_capacity, 16u);
}

TEST(ArenaString, ReassignReusesHeapBuffer)
{
    Arena arena;
    ArenaString *s = ArenaString::Create(&arena, std::string(100, 'a'));
    const char *buf = s->data_ptr;
    s->Assign(&arena, std::string(50, 'b'));
    EXPECT_EQ(s->data_ptr, buf);  // shrunk in place
    EXPECT_EQ(s->size, 50u);
}

TEST(ArenaString, EmptyString)
{
    Arena arena;
    ArenaString *s = ArenaString::Create(&arena, "");
    EXPECT_EQ(s->size, 0u);
    EXPECT_TRUE(s->is_inline());
    EXPECT_EQ(s->view(), "");
}

TEST(RepeatedField, AppendAndGet)
{
    Arena arena;
    RepeatedField *r = RepeatedField::Create(&arena);
    for (int32_t i = 0; i < 100; ++i)
        r->Append(&arena, &i, sizeof(i));
    ASSERT_EQ(r->size, 100u);
    for (int32_t i = 0; i < 100; ++i)
        EXPECT_EQ(r->Get<int32_t>(i), i);
}

TEST(RepeatedField, GrowthPreservesContents)
{
    Arena arena;
    RepeatedField *r = RepeatedField::Create(&arena);
    const double first = 3.25;
    r->Append(&arena, &first, sizeof(first));
    // Force several doublings.
    for (int i = 0; i < 1000; ++i) {
        const double v = i;
        r->Append(&arena, &v, sizeof(v));
    }
    EXPECT_DOUBLE_EQ(r->Get<double>(0), 3.25);
    EXPECT_DOUBLE_EQ(r->Get<double>(1000), 999.0);
}

TEST(RepeatedField, ReserveIsIdempotent)
{
    Arena arena;
    RepeatedField *r = RepeatedField::Create(&arena);
    r->Reserve(&arena, 64, 4);
    void *data = r->data;
    r->Reserve(&arena, 32, 4);
    EXPECT_EQ(r->data, data);
    EXPECT_GE(r->capacity, 64u);
}

TEST(RepeatedPtrField, AppendAndGrowth)
{
    Arena arena;
    RepeatedPtrField *r = RepeatedPtrField::Create(&arena);
    std::vector<ArenaString *> strings;
    for (int i = 0; i < 50; ++i) {
        auto *s =
            ArenaString::Create(&arena, "s" + std::to_string(i));
        strings.push_back(s);
        r->Append(&arena, s);
    }
    ASSERT_EQ(r->size, 50u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(r->at(i), strings[i]);
}

}  // namespace
}  // namespace protoacc::proto
