/**
 * Differential tests: the table-driven codec (parser.cc / serializer.cc)
 * against the retained reference interpreter (codec_reference.cc), over
 * randomly generated schemas and messages.
 *
 * The fast path must be indistinguishable from the reference in three
 * ways: wire output byte-for-byte, parsed objects structurally, and the
 * CostSink event stream (the modeled riscv-boom/Xeon cycle numbers are
 * derived from those events, so equal tallies mean the paper-model
 * figures are unchanged by the fast path).
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "proto/codec_reference.h"
#include "proto/parser.h"
#include "proto/schema_random.h"
#include "proto/serializer.h"

namespace protoacc::proto {
namespace {

constexpr int kSchemaSeeds = 128;

/// Counts every cost event and sums its byte arguments.
struct TallySink : CostSink
{
    uint64_t tag_decode = 0, tag_decode_bytes = 0;
    uint64_t tag_encode = 0, tag_encode_bytes = 0;
    uint64_t varint_decode = 0, varint_decode_bytes = 0;
    uint64_t varint_encode = 0, varint_encode_bytes = 0;
    uint64_t fixed_copy = 0, fixed_copy_bytes = 0;
    uint64_t memcpy_calls = 0, memcpy_bytes = 0;
    uint64_t allocs = 0, alloc_bytes = 0;
    uint64_t field_dispatch = 0;
    uint64_t message_begin = 0, message_end = 0;
    uint64_t byte_size_field = 0, byte_size_message = 0;
    uint64_t hasbits_accesses = 0, hasbits_words = 0;

    void OnTagDecode(int b) override { ++tag_decode; tag_decode_bytes += b; }
    void OnTagEncode(int b) override { ++tag_encode; tag_encode_bytes += b; }
    void OnVarintDecode(int b) override
    {
        ++varint_decode;
        varint_decode_bytes += b;
    }
    void OnVarintEncode(int b) override
    {
        ++varint_encode;
        varint_encode_bytes += b;
    }
    void OnFixedCopy(int b) override { ++fixed_copy; fixed_copy_bytes += b; }
    void OnMemcpy(size_t b) override { ++memcpy_calls; memcpy_bytes += b; }
    void OnAlloc(size_t b) override { ++allocs; alloc_bytes += b; }
    void OnFieldDispatch() override { ++field_dispatch; }
    void OnMessageBegin() override { ++message_begin; }
    void OnMessageEnd() override { ++message_end; }
    void OnByteSizeField() override { ++byte_size_field; }
    void OnByteSizeMessage() override { ++byte_size_message; }
    void OnHasbitsAccess(int w) override
    {
        ++hasbits_accesses;
        hasbits_words += w;
    }

    bool
    operator==(const TallySink &o) const
    {
        return tag_decode == o.tag_decode &&
               tag_decode_bytes == o.tag_decode_bytes &&
               tag_encode == o.tag_encode &&
               tag_encode_bytes == o.tag_encode_bytes &&
               varint_decode == o.varint_decode &&
               varint_decode_bytes == o.varint_decode_bytes &&
               varint_encode == o.varint_encode &&
               varint_encode_bytes == o.varint_encode_bytes &&
               fixed_copy == o.fixed_copy &&
               fixed_copy_bytes == o.fixed_copy_bytes &&
               memcpy_calls == o.memcpy_calls &&
               memcpy_bytes == o.memcpy_bytes && allocs == o.allocs &&
               alloc_bytes == o.alloc_bytes &&
               field_dispatch == o.field_dispatch &&
               message_begin == o.message_begin &&
               message_end == o.message_end &&
               byte_size_field == o.byte_size_field &&
               byte_size_message == o.byte_size_message &&
               hasbits_accesses == o.hasbits_accesses &&
               hasbits_words == o.hasbits_words;
    }
};

struct RandomCase
{
    DescriptorPool pool;
    Arena arena{4096};
    int root = -1;
    Message msg;
};

std::unique_ptr<RandomCase>
MakeCase(uint64_t seed)
{
    auto c = std::make_unique<RandomCase>();
    Rng rng(seed);
    c->root = GenerateRandomSchema(&c->pool, &rng, SchemaGenOptions{});
    c->pool.Compile();
    c->msg = Message::Create(&c->arena, c->pool, c->root);
    PopulateRandomMessage(c->msg, &rng, MessageGenOptions{});
    return c;
}

TEST(CodecDifferential, SerializedWireIsByteIdentical)
{
    for (uint64_t seed = 1; seed <= kSchemaSeeds; ++seed) {
        auto c = MakeCase(seed);
        TallySink ref_sink, fast_sink;
        const std::vector<uint8_t> ref =
            ReferenceSerialize(c->msg, &ref_sink);
        const std::vector<uint8_t> fast = Serialize(c->msg, &fast_sink);
        ASSERT_EQ(fast, ref) << "seed " << seed;
        EXPECT_TRUE(fast_sink == ref_sink) << "seed " << seed;

        // SerializeToBuffer agrees with Serialize and with the sized
        // capacity exactly.
        std::vector<uint8_t> buf(ref.size());
        ASSERT_EQ(SerializeToBuffer(c->msg, buf.data(), buf.size()),
                  ref.size())
            << "seed " << seed;
        EXPECT_EQ(buf, ref) << "seed " << seed;
        if (!ref.empty()) {
            EXPECT_EQ(SerializeToBuffer(c->msg, buf.data(),
                                        buf.size() - 1),
                      0u)
                << "seed " << seed;
        }
    }
}

TEST(CodecDifferential, ByteSizeMatchesReference)
{
    for (uint64_t seed = 1; seed <= kSchemaSeeds; ++seed) {
        auto c = MakeCase(seed);
        TallySink ref_sink, fast_sink;
        const size_t ref = ReferenceByteSize(c->msg, &ref_sink);
        const size_t fast = ByteSize(c->msg, &fast_sink);
        EXPECT_EQ(fast, ref) << "seed " << seed;
        EXPECT_TRUE(fast_sink == ref_sink) << "seed " << seed;
    }
}

TEST(CodecDifferential, ParsedObjectsAndTalliesMatch)
{
    for (uint64_t seed = 1; seed <= kSchemaSeeds; ++seed) {
        auto c = MakeCase(seed);
        const std::vector<uint8_t> wire = ReferenceSerialize(c->msg);

        Arena parse_arena;
        Message ref_msg =
            Message::Create(&parse_arena, c->pool, c->root);
        Message fast_msg =
            Message::Create(&parse_arena, c->pool, c->root);
        TallySink ref_sink, fast_sink;
        const ParseStatus ref_st = ReferenceParseFromBuffer(
            wire.data(), wire.size(), &ref_msg, &ref_sink);
        const ParseStatus fast_st =
            ParseFromBuffer(wire.data(), wire.size(), &fast_msg,
                            &fast_sink);
        ASSERT_EQ(fast_st, ref_st) << "seed " << seed;
        ASSERT_EQ(fast_st, ParseStatus::kOk) << "seed " << seed;
        EXPECT_TRUE(MessagesEqual(fast_msg, ref_msg)) << "seed " << seed;
        EXPECT_TRUE(MessagesEqual(fast_msg, c->msg)) << "seed " << seed;
        EXPECT_TRUE(fast_sink == ref_sink) << "seed " << seed;

        // Round-trip: re-serializing the fast-parsed object reproduces
        // the wire exactly.
        EXPECT_EQ(Serialize(fast_msg), wire) << "seed " << seed;
    }
}

TEST(CodecDifferential, TruncatedInputsFailIdentically)
{
    for (uint64_t seed = 1; seed <= 32; ++seed) {
        auto c = MakeCase(seed);
        const std::vector<uint8_t> wire = ReferenceSerialize(c->msg);
        // Cut the wire at several interior points; both parsers must
        // agree on the resulting status (whatever it is).
        for (size_t cut = 0; cut < wire.size();
             cut += 1 + wire.size() / 13) {
            Arena parse_arena;
            Message ref_msg =
                Message::Create(&parse_arena, c->pool, c->root);
            Message fast_msg =
                Message::Create(&parse_arena, c->pool, c->root);
            const ParseStatus ref_st =
                ReferenceParseFromBuffer(wire.data(), cut, &ref_msg);
            const ParseStatus fast_st =
                ParseFromBuffer(wire.data(), cut, &fast_msg);
            EXPECT_EQ(fast_st, ref_st)
                << "seed " << seed << " cut " << cut;
        }
    }
}

TEST(CodecDifferential, MutatedInputsFailIdentically)
{
    for (uint64_t seed = 1; seed <= 32; ++seed) {
        auto c = MakeCase(seed);
        std::vector<uint8_t> wire = ReferenceSerialize(c->msg);
        if (wire.empty())
            continue;
        Rng rng(seed * 977);
        for (int trial = 0; trial < 16; ++trial) {
            std::vector<uint8_t> mutated = wire;
            const size_t pos = rng.NextBounded(mutated.size());
            mutated[pos] ^=
                static_cast<uint8_t>(1u << rng.NextBounded(8));
            Arena parse_arena;
            Message ref_msg =
                Message::Create(&parse_arena, c->pool, c->root);
            Message fast_msg =
                Message::Create(&parse_arena, c->pool, c->root);
            const ParseStatus ref_st = ReferenceParseFromBuffer(
                mutated.data(), mutated.size(), &ref_msg);
            const ParseStatus fast_st = ParseFromBuffer(
                mutated.data(), mutated.size(), &fast_msg);
            EXPECT_EQ(fast_st, ref_st)
                << "seed " << seed << " trial " << trial;
            if (ref_st == ParseStatus::kOk) {
                EXPECT_TRUE(MessagesEqual(fast_msg, ref_msg))
                    << "seed " << seed << " trial " << trial;
            }
        }
    }
}

}  // namespace
}  // namespace protoacc::proto
