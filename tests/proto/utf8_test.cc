#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "proto/parser.h"
#include "proto/serializer.h"
#include "proto/utf8.h"

namespace protoacc::proto {
namespace {

bool
Valid(std::initializer_list<int> bytes)
{
    std::vector<uint8_t> v;
    for (int b : bytes)
        v.push_back(static_cast<uint8_t>(b));
    return IsValidUtf8(v.data(), v.size());
}

TEST(Utf8, AsciiIsValid)
{
    const std::string s = "plain ASCII, tabs\tand\nnewlines";
    EXPECT_TRUE(IsValidUtf8(s.data(), s.size()));
    EXPECT_TRUE(IsValidUtf8("", size_t{0}));
}

TEST(Utf8, WellFormedMultibyteSequences)
{
    EXPECT_TRUE(Valid({0xc3, 0xa9}));              // é U+00E9
    EXPECT_TRUE(Valid({0xd7, 0x90}));              // א U+05D0
    EXPECT_TRUE(Valid({0xe2, 0x82, 0xac}));        // € U+20AC
    EXPECT_TRUE(Valid({0xe0, 0xa4, 0xb9}));        // ह U+0939
    EXPECT_TRUE(Valid({0xf0, 0x9f, 0x98, 0x80}));  // 😀 U+1F600
    EXPECT_TRUE(Valid({0xf4, 0x8f, 0xbf, 0xbf}));  // U+10FFFF (max)
    EXPECT_TRUE(Valid({0xed, 0x9f, 0xbf}));        // U+D7FF (< surrogates)
    EXPECT_TRUE(Valid({0xee, 0x80, 0x80}));        // U+E000 (> surrogates)
}

TEST(Utf8, StrayContinuationBytesInvalid)
{
    EXPECT_FALSE(Valid({0x80}));
    EXPECT_FALSE(Valid({0xbf}));
    EXPECT_FALSE(Valid({'a', 0x85, 'b'}));
}

TEST(Utf8, OverlongEncodingsInvalid)
{
    EXPECT_FALSE(Valid({0xc0, 0x80}));              // overlong NUL
    EXPECT_FALSE(Valid({0xc1, 0xbf}));              // overlong 2-byte
    EXPECT_FALSE(Valid({0xe0, 0x80, 0x80}));        // overlong 3-byte
    EXPECT_FALSE(Valid({0xf0, 0x80, 0x80, 0x80}));  // overlong 4-byte
}

TEST(Utf8, SurrogatesInvalid)
{
    EXPECT_FALSE(Valid({0xed, 0xa0, 0x80}));  // U+D800
    EXPECT_FALSE(Valid({0xed, 0xbf, 0xbf}));  // U+DFFF
}

TEST(Utf8, AboveMaxCodePointInvalid)
{
    EXPECT_FALSE(Valid({0xf4, 0x90, 0x80, 0x80}));  // U+110000
    EXPECT_FALSE(Valid({0xf5, 0x80, 0x80, 0x80}));  // lead 0xf5
    EXPECT_FALSE(Valid({0xff}));
}

TEST(Utf8, TruncatedSequencesInvalid)
{
    EXPECT_FALSE(Valid({0xc3}));
    EXPECT_FALSE(Valid({0xe2, 0x82}));
    EXPECT_FALSE(Valid({0xf0, 0x9f, 0x98}));
    EXPECT_FALSE(Valid({'o', 'k', 0xe2, 0x82}));
}

TEST(Utf8, BadContinuationInvalid)
{
    EXPECT_FALSE(Valid({0xc3, 0x29}));        // second byte not 10xxxxxx
    EXPECT_FALSE(Valid({0xe2, 0x82, 0x2c}));
    EXPECT_FALSE(Valid({0xf0, 0x9f, 0x40, 0x80}));
}

class Proto3ParseTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // A proto3 message and an identical proto2 one.
        p3_ = pool_.AddMessage("P3", Syntax::kProto3);
        pool_.AddField(p3_, "s", 1, FieldType::kString);
        pool_.AddField(p3_, "b", 2, FieldType::kBytes);
        p2_ = pool_.AddMessage("P2", Syntax::kProto2);
        pool_.AddField(p2_, "s", 1, FieldType::kString);
        pool_.AddField(p2_, "b", 2, FieldType::kBytes);
        pool_.Compile();
    }

    /// Wire for field 1/2 with an arbitrary payload.
    std::vector<uint8_t>
    Wire(uint32_t field, const std::string &payload)
    {
        std::vector<uint8_t> out = {static_cast<uint8_t>(field << 3 | 2),
                                    static_cast<uint8_t>(payload.size())};
        out.insert(out.end(), payload.begin(), payload.end());
        return out;
    }

    DescriptorPool pool_;
    Arena arena_;
    int p3_ = -1;
    int p2_ = -1;
};

TEST_F(Proto3ParseTest, Proto3RejectsInvalidUtf8Strings)
{
    const std::string bad = "ab\xc0\x80";
    const auto wire = Wire(1, bad);
    Message m = Message::Create(&arena_, pool_, p3_);
    EXPECT_EQ(ParseFromBuffer(wire.data(), wire.size(), &m),
              ParseStatus::kInvalidUtf8);
}

TEST_F(Proto3ParseTest, Proto3AcceptsValidUtf8Strings)
{
    const std::string good = "caf\xc3\xa9";  // café
    const auto wire = Wire(1, good);
    Message m = Message::Create(&arena_, pool_, p3_);
    EXPECT_EQ(ParseFromBuffer(wire.data(), wire.size(), &m),
              ParseStatus::kOk);
    EXPECT_EQ(m.GetString(pool_.message(p3_).field(0)), good);
}

TEST_F(Proto3ParseTest, Proto3BytesFieldsAreNotValidated)
{
    const std::string binary = "\xff\xfe\xc0\x80";
    const auto wire = Wire(2, binary);
    Message m = Message::Create(&arena_, pool_, p3_);
    EXPECT_EQ(ParseFromBuffer(wire.data(), wire.size(), &m),
              ParseStatus::kOk);
}

TEST_F(Proto3ParseTest, Proto2StringsAreNotValidated)
{
    const std::string bad = "\xc0\x80";
    const auto wire = Wire(1, bad);
    Message m = Message::Create(&arena_, pool_, p2_);
    EXPECT_EQ(ParseFromBuffer(wire.data(), wire.size(), &m),
              ParseStatus::kOk);
}

}  // namespace
}  // namespace protoacc::proto
