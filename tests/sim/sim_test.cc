#include <gtest/gtest.h>

#include "sim/memory_system.h"
#include "sim/port.h"

namespace protoacc::sim {
namespace {

TEST(Cache, HitAfterFill)
{
    Cache cache(CacheConfig{.name = "t",
                            .size_bytes = 4096,
                            .ways = 2,
                            .line_bytes = 64,
                            .hit_latency = 10});
    EXPECT_FALSE(cache.Access(0x1000, false));  // cold miss
    EXPECT_TRUE(cache.Access(0x1000, false));   // hit
    EXPECT_TRUE(cache.Access(0x103f, false));   // same line
    EXPECT_FALSE(cache.Access(0x1040, false));  // next line
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(Cache, LruEviction)
{
    // 2-way, line 64, 2 sets (256 B total).
    Cache cache(CacheConfig{.name = "t",
                            .size_bytes = 256,
                            .ways = 2,
                            .line_bytes = 64,
                            .hit_latency = 1});
    // Three lines mapping to the same set (stride = sets * line = 128).
    cache.Access(0, false);
    cache.Access(128, false);
    cache.Access(0, false);    // touch 0 so 128 is LRU
    cache.Access(256, false);  // evicts 128
    EXPECT_TRUE(cache.Contains(0));
    EXPECT_FALSE(cache.Contains(128));
    EXPECT_TRUE(cache.Contains(256));
}

TEST(Cache, DirtyEvictionCountsWriteback)
{
    Cache cache(CacheConfig{.name = "t",
                            .size_bytes = 128,
                            .ways = 1,
                            .line_bytes = 64,
                            .hit_latency = 1});
    cache.Access(0, true);    // dirty
    cache.Access(128, false); // evicts dirty line 0
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, FlushInvalidates)
{
    Cache cache(CacheConfig{.name = "t",
                            .size_bytes = 4096,
                            .ways = 2,
                            .line_bytes = 64,
                            .hit_latency = 1});
    cache.Access(0x40, false);
    cache.Flush();
    EXPECT_FALSE(cache.Contains(0x40));
}

TEST(Tlb, HitAfterWalkAndLru)
{
    Tlb tlb(TlbConfig{.entries = 2, .page_bytes = 4096,
                      .walk_latency = 50});
    EXPECT_EQ(tlb.Access(0x0000), 50u);   // walk
    EXPECT_EQ(tlb.Access(0x0fff), 0u);    // same page
    EXPECT_EQ(tlb.Access(0x1000), 50u);   // second page
    EXPECT_EQ(tlb.Access(0x0000), 0u);    // still resident
    EXPECT_EQ(tlb.Access(0x2000), 50u);   // evicts page 1 (LRU)
    EXPECT_EQ(tlb.Access(0x1000), 50u);   // page 1 was evicted
    EXPECT_EQ(tlb.stats().misses, 4u);
}

TEST(MemorySystem, LatencyOrdering)
{
    MemorySystemConfig cfg;
    MemorySystem mem(cfg);
    const uint64_t cold = mem.ReadLatency(1 << 20, 8);
    const uint64_t warm = mem.ReadLatency(1 << 20, 8);
    EXPECT_EQ(cold, cfg.dram_latency);
    EXPECT_EQ(warm, cfg.l2.hit_latency);
}

TEST(MemorySystem, LlcHitAfterL2Eviction)
{
    MemorySystemConfig cfg;
    cfg.l2.size_bytes = 4096;  // tiny L2 so we can evict easily
    cfg.l2.ways = 1;
    MemorySystem mem(cfg);
    mem.ReadLatency(0, 8);
    // Evict line 0 from the direct-mapped L2 (same set, different tag).
    mem.ReadLatency(4096, 8);
    const uint64_t lat = mem.ReadLatency(0, 8);
    EXPECT_EQ(lat, cfg.llc.hit_latency);
}

TEST(MemorySystem, StreamingReadIsBandwidthBound)
{
    MemorySystemConfig cfg;
    MemorySystem mem(cfg);
    // 1 KiB streaming read: first-line latency plus one beat per 16 B.
    const uint64_t lat = mem.ReadLatency(1 << 22, 1024);
    EXPECT_EQ(lat, cfg.dram_latency + 1024 / 16 - 1);
}

TEST(MemorySystem, PostedWritesCostOccupancyOnly)
{
    MemorySystemConfig cfg;
    MemorySystem mem(cfg);
    EXPECT_EQ(mem.WriteLatency(1 << 23, 4), 1u);
    EXPECT_EQ(mem.WriteLatency(1 << 23, 64), 4u);
}

TEST(Port, TranslationAddsWalkLatency)
{
    MemorySystemConfig cfg;
    MemorySystem mem(cfg);
    Port port("test", &mem, TlbConfig{.entries = 4,
                                      .page_bytes = 4096,
                                      .walk_latency = 60});
    alignas(64) static char buf[256];
    // Cold: page walk + DRAM fill. Warm: TLB hit + L2 hit.
    const uint64_t first = port.Read(buf, 16);
    const uint64_t second = port.Read(buf, 16);
    EXPECT_EQ(first, 60u + cfg.dram_latency);
    EXPECT_EQ(second, cfg.l2.hit_latency);
    EXPECT_EQ(port.stats().reads, 2u);
    EXPECT_EQ(port.stats().read_bytes, 32u);
}

TEST(MemorySystem, StatsAccumulate)
{
    MemorySystem mem(MemorySystemConfig{});
    mem.ReadLatency(0, 100);
    mem.WriteLatency(0, 50);
    EXPECT_EQ(mem.stats().reads, 1u);
    EXPECT_EQ(mem.stats().read_bytes, 100u);
    EXPECT_EQ(mem.stats().writes, 1u);
    EXPECT_EQ(mem.stats().write_bytes, 50u);
    mem.ResetStats();
    EXPECT_EQ(mem.stats().reads, 0u);
}

}  // namespace
}  // namespace protoacc::sim
