#include <gtest/gtest.h>

#include "profile/cycle_estimator.h"
#include "profile/samplers.h"

namespace protoacc::profile {
namespace {

/// Shared fleet + samples for the statistical tests (fixed seeds keep
/// every assertion deterministic).
class ProfileTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        fleet_ = new Fleet{FleetParams{}, /*seed=*/2021};
        ProtobufzSampler sampler(fleet_, /*seed=*/99);
        agg_ = new ShapeAggregate(sampler.Collect(6000));
    }
    static void
    TearDownTestSuite()
    {
        delete agg_;
        delete fleet_;
        agg_ = nullptr;
        fleet_ = nullptr;
    }

    static Fleet *fleet_;
    static ShapeAggregate *agg_;
};

Fleet *ProfileTest::fleet_ = nullptr;
ShapeAggregate *ProfileTest::agg_ = nullptr;

TEST_F(ProfileTest, PaperDistributionsAreNormalized)
{
    double op_total = 0;
    for (const auto &share : PaperCyclesByOp())
        op_total += share.pct;
    EXPECT_NEAR(op_total, 100.0, 0.5);

    double msg_total = 0;
    for (double p : PaperMsgSizePct())
        msg_total += p;
    EXPECT_NEAR(msg_total, 100.0, 0.5);

    double field_total = 0, bytes_total = 0;
    for (const auto &share : PaperFieldTypeShares()) {
        field_total += share.field_pct;
        bytes_total += share.bytes_pct;
    }
    EXPECT_NEAR(field_total, 100.0, 0.5);
    EXPECT_NEAR(bytes_total, 100.0, 0.5);
}

TEST_F(ProfileTest, MessageSizeAnchorsHold)
{
    // §3.5 published cumulative anchors, with generation tolerance.
    double cum = 0;
    for (size_t i = 0; i < 3; ++i)
        cum += agg_->msg_sizes.count_pct(i);
    EXPECT_NEAR(cum, 56.0, 8.0);  // <= 32 B
    for (size_t i = 3; i < 7; ++i)
        cum += agg_->msg_sizes.count_pct(i);
    EXPECT_NEAR(cum, 93.0, 5.0);  // <= 512 B
    // Large messages dominate data volume.
    EXPECT_GT(agg_->msg_sizes.weight(9),
              13.7 * agg_->msg_sizes.weight(0));
}

TEST_F(ProfileTest, FieldMixAnchorsHold)
{
    double varint_fields = 0, total_fields = 0, byteslike_bytes = 0,
           total_bytes = 0;
    for (const auto &[key, stats] : agg_->by_type) {
        const auto type = static_cast<proto::FieldType>(key.first);
        total_fields += static_cast<double>(stats.count);
        total_bytes += stats.wire_bytes;
        if (proto::IsVarintType(type))
            varint_fields += static_cast<double>(stats.count);
        if (proto::IsBytesLike(type))
            byteslike_bytes += stats.wire_bytes;
    }
    EXPECT_GT(100.0 * varint_fields / total_fields, 50.0);   // >56% ideal
    EXPECT_GT(100.0 * byteslike_bytes / total_bytes, 85.0);  // >92% ideal
}

TEST_F(ProfileTest, DensityAnchorHolds)
{
    EXPECT_GT(100.0 * agg_->density_over_1_64 / agg_->density_samples,
              88.0);  // paper: >= 92%
}

TEST_F(ProfileTest, Proto2ShareNearPaper)
{
    const double share =
        100.0 * agg_->proto2_bytes / agg_->total_bytes;
    EXPECT_GT(share, 90.0);
    EXPECT_LE(share, 100.0);
}

TEST_F(ProfileTest, GwpProfileMatchesOpShares)
{
    GwpSampler gwp(fleet_, /*seed=*/5);
    const CycleProfile profile = gwp.Collect(20000);
    for (const auto &share : PaperCyclesByOp()) {
        EXPECT_NEAR(profile.pct(share.op), share.pct,
                    share.pct * 0.45 + 2.0)
            << share.op;
    }
}

TEST_F(ProfileTest, SchemaStatsConsistent)
{
    const SchemaStats stats = CollectSchemaStats(*fleet_);
    EXPECT_GT(stats.message_types, 0u);
    EXPECT_GT(stats.fields, stats.message_types);
    EXPECT_GE(stats.repeated_scalar_fields,
              stats.packed_repeated_fields);
    // §3.3-ish: most types proto2.
    EXPECT_GT(static_cast<double>(stats.proto2_types) /
                  stats.message_types,
              0.9);
}

TEST_F(ProfileTest, PerServiceCollectionOnlySamplesThatService)
{
    ProtobufzSampler sampler(fleet_, /*seed=*/12);
    const ShapeAggregate svc = sampler.CollectService(0, 200);
    EXPECT_EQ(svc.messages_sampled, 200u);
    EXPECT_GT(svc.total_bytes, 0);
}

TEST_F(ProfileTest, CycleEstimatorBuilds24NormalizedSlices)
{
    const auto slices = EstimateCycleShares(*agg_, cpu::XeonParams());
    ASSERT_EQ(slices.size(), 24u);
    double deser_total = 0, ser_total = 0;
    for (const auto &s : slices) {
        deser_total += s.deser_time_pct;
        ser_total += s.ser_time_pct;
        EXPECT_GE(s.deser_cyc_per_b, 0);
        EXPECT_GE(s.ser_cyc_per_b, 0);
    }
    EXPECT_NEAR(deser_total, 100.0, 0.1);
    EXPECT_NEAR(ser_total, 100.0, 0.1);
}

TEST_F(ProfileTest, EstimatorShowsNoSilverBullet)
{
    // §3.6.4: no single slice dominates deserialization time.
    const auto slices = EstimateCycleShares(*agg_, cpu::XeonParams());
    for (const auto &s : slices)
        EXPECT_LT(s.deser_time_pct, 60.0) << s.name;
    // Large bytes-like slices are cheap per byte: the 32769-inf slice
    // must be far cheaper per byte than 1-byte varints.
    const auto &big_bytes = slices[19];  // bytes-32769-inf
    const auto &small_varint = slices[0];
    EXPECT_LT(big_bytes.deser_cyc_per_b * 20,
              small_varint.deser_cyc_per_b);
}

TEST_F(ProfileTest, FleetIsDeterministicFromSeed)
{
    Fleet a{FleetParams{}, 7};
    Fleet b{FleetParams{}, 7};
    ProtobufzSampler sa(&a, 3), sb(&b, 3);
    const ShapeAggregate ra = sa.Collect(300);
    const ShapeAggregate rb = sb.Collect(300);
    EXPECT_EQ(ra.total_bytes, rb.total_bytes);
    EXPECT_EQ(ra.messages_sampled, rb.messages_sampled);
    EXPECT_EQ(ra.max_depth, rb.max_depth);
}

TEST_F(ProfileTest, DeepMessagesExistWithEnoughSamples)
{
    // The recursive types plus the depth tail let some samples nest.
    EXPECT_GE(agg_->max_depth, 2);
}

}  // namespace
}  // namespace protoacc::profile
