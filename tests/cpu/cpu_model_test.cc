#include <gtest/gtest.h>

#include "cpu/cpu_model.h"
#include "proto/parser.h"
#include "proto/serializer.h"

namespace protoacc::cpu {
namespace {

TEST(CpuParams, XeonIsFasterPerOperationThanBoom)
{
    const CpuParams boom = BoomParams();
    const CpuParams xeon = XeonParams();
    EXPECT_LT(xeon.per_tag_decode, boom.per_tag_decode);
    EXPECT_LT(xeon.per_varint_decode_byte, boom.per_varint_decode_byte);
    EXPECT_LT(xeon.per_field_dispatch, boom.per_field_dispatch);
    EXPECT_LT(xeon.per_message_begin, boom.per_message_begin);
    EXPECT_GT(xeon.memcpy_bytes_per_cycle, boom.memcpy_bytes_per_cycle);
    EXPECT_GT(xeon.freq_ghz, boom.freq_ghz);
}

TEST(CpuCostModel, AccumulatesPerEvent)
{
    CpuParams p;
    p.per_tag_decode = 10;
    p.per_varint_decode_byte = 2;
    p.memcpy_setup = 5;
    p.memcpy_bytes_per_cycle = 10;
    CpuCostModel model(p);
    model.OnTagDecode(1);
    EXPECT_DOUBLE_EQ(model.cycles(), 10);
    model.OnTagDecode(3);  // 2 extra decode-loop bytes
    EXPECT_DOUBLE_EQ(model.cycles(), 10 + 10 + 2 * 2);
    model.OnVarintDecode(5);
    EXPECT_DOUBLE_EQ(model.cycles(), 24 + 10);
    model.OnMemcpy(100);
    EXPECT_DOUBLE_EQ(model.cycles(), 34 + 5 + 10);
    model.Reset();
    EXPECT_DOUBLE_EQ(model.cycles(), 0);
}

TEST(CpuCostModel, ThroughputConversion)
{
    CpuParams p;
    p.freq_ghz = 2.0;
    CpuCostModel model(p);
    model.OnMemcpy(0);  // memcpy_setup cycles
    // 18 cycles (default setup) at 2 GHz = 9 ns; 9 bytes -> 8 Gbit/s.
    const double gbps = model.ThroughputGbps(18.0);
    EXPECT_NEAR(gbps, 18.0 * 8 * 2.0 / 18.0, 1e-9);
}

TEST(CpuCostModel, SecondsUsesFrequency)
{
    CpuParams p;
    p.freq_ghz = 2.0;
    p.per_fixed_copy = 4;
    CpuCostModel model(p);
    for (int i = 0; i < 500; ++i)
        model.OnFixedCopy(8);
    EXPECT_DOUBLE_EQ(model.cycles(), 2000.0);
    EXPECT_DOUBLE_EQ(model.seconds(), 1e-6);
}

/// End-to-end: the instrumented codec charges more cycles for more
/// complex messages, and the functional result is unaffected.
TEST(CpuCostModel, CodecChargesScaleWithWork)
{
    proto::DescriptorPool pool;
    const int msg = pool.AddMessage("M");
    pool.AddField(msg, "a", 1, proto::FieldType::kInt64);
    pool.AddField(msg, "s", 2, proto::FieldType::kString);
    pool.Compile();
    proto::Arena arena;

    proto::Message small = proto::Message::Create(&arena, pool, msg);
    small.SetInt64(pool.message(msg).field(0), 1);
    proto::Message big = proto::Message::Create(&arena, pool, msg);
    big.SetInt64(pool.message(msg).field(0), UINT32_MAX);
    big.SetString(pool.message(msg).field(1), std::string(5000, 'x'));

    CpuCostModel m_small(BoomParams()), m_big(BoomParams());
    const auto w_small = proto::Serialize(small, &m_small);
    const auto w_big = proto::Serialize(big, &m_big);
    EXPECT_GT(m_big.cycles(), m_small.cycles());

    // Instrumented and uninstrumented serialization agree byte-wise.
    EXPECT_EQ(w_small, proto::Serialize(small));
    EXPECT_EQ(w_big, proto::Serialize(big));

    CpuCostModel p_small(BoomParams()), p_big(BoomParams());
    proto::Message d1 = proto::Message::Create(&arena, pool, msg);
    proto::Message d2 = proto::Message::Create(&arena, pool, msg);
    ASSERT_EQ(proto::ParseFromBuffer(w_small.data(), w_small.size(), &d1,
                                     &p_small),
              proto::ParseStatus::kOk);
    ASSERT_EQ(proto::ParseFromBuffer(w_big.data(), w_big.size(), &d2,
                                     &p_big),
              proto::ParseStatus::kOk);
    EXPECT_GT(p_big.cycles(), p_small.cycles());
}

TEST(CpuCostModel, LongStringCostDominatedByMemcpyRate)
{
    // For a 1 MiB string the per-byte memcpy term should dwarf fixed
    // overheads: cycles ~ bytes / memcpy_bytes_per_cycle.
    const CpuParams p = XeonParams();
    CpuCostModel model(p);
    const size_t n = 1 << 20;
    model.OnMemcpy(n);
    const double expected = static_cast<double>(n) /
                            p.memcpy_bytes_per_cycle;
    EXPECT_NEAR(model.cycles(), expected, expected * 0.01);
}

}  // namespace
}  // namespace protoacc::cpu
