#include <gtest/gtest.h>

#include "asic/area_model.h"

namespace protoacc::asic {
namespace {

TEST(AreaModel, DeserializerMatchesPaper)
{
    const UnitReport report = DeserializerReport();
    EXPECT_NEAR(report.total_mm2, 0.133, 0.133 * 0.03);
    EXPECT_NEAR(report.freq_ghz, 1.95, 0.05);
}

TEST(AreaModel, SerializerMatchesPaper)
{
    const UnitReport report = SerializerReport();
    EXPECT_NEAR(report.total_mm2, 0.278, 0.278 * 0.03);
    EXPECT_NEAR(report.freq_ghz, 1.84, 0.05);
}

TEST(AreaModel, SerializerIsAboutTwiceTheDeserializer)
{
    const double ratio = SerializerReport().total_mm2 /
                         DeserializerReport().total_mm2;
    EXPECT_NEAR(ratio, 2.09, 0.1);
}

TEST(AreaModel, AreaMonotonicInFsuCount)
{
    double prev = 0;
    for (int k : {1, 2, 4, 8, 16}) {
        const double area = SerializerReport(ProcessParams{}, k).total_mm2;
        EXPECT_GT(area, prev);
        prev = area;
    }
}

TEST(AreaModel, FsuAreaScalesLinearly)
{
    const double a1 = SerializerReport(ProcessParams{}, 1).total_mm2;
    const double a2 = SerializerReport(ProcessParams{}, 2).total_mm2;
    const double a4 = SerializerReport(ProcessParams{}, 4).total_mm2;
    EXPECT_NEAR(a4 - a2, 2 * (a2 - a1), 1e-9);
}

TEST(AreaModel, BlocksSumToTotal)
{
    const UnitReport report = DeserializerReport();
    double sum = 0;
    for (const auto &block : report.blocks)
        sum += block.area_mm2;
    EXPECT_NEAR(sum, report.total_mm2, 1e-12);
}

TEST(AreaModel, FasterProcessRaisesFrequency)
{
    ProcessParams fast;
    fast.fo4_ps = 10.0;
    EXPECT_GT(DeserializerReport(fast).freq_ghz,
              DeserializerReport().freq_ghz);
}

TEST(AreaModel, TableRendersAllBlocks)
{
    const UnitReport report = SerializerReport();
    const std::string table = ToTable(report);
    for (const auto &block : report.blocks)
        EXPECT_NE(table.find(block.name), std::string::npos);
    EXPECT_NE(table.find("GHz"), std::string::npos);
}

}  // namespace
}  // namespace protoacc::asic
