#include <gtest/gtest.h>

#include "hpb/generator.h"
#include "proto/parser.h"

namespace protoacc::hpb {
namespace {

using profile::Fleet;
using profile::FleetParams;
using profile::ProtobufzSampler;
using profile::ShapeAggregate;
using profile::ShapeProfile;

TEST(FitShapeProfile, EmptyAggregateKeepsDefaults)
{
    const ShapeAggregate empty;
    const ShapeProfile profile = FitShapeProfile(empty);
    EXPECT_EQ(profile.type_shares.size(),
              profile::PaperFieldTypeShares().size());
}

TEST(FitShapeProfile, FittedPercentagesNormalize)
{
    Fleet fleet{FleetParams{}, 11};
    ProtobufzSampler sampler(&fleet, 4);
    const ShapeAggregate agg = sampler.Collect(1500);
    const ShapeProfile profile = FitShapeProfile(agg);

    double fields = 0;
    for (const auto &share : profile.type_shares)
        fields += share.field_pct;
    EXPECT_NEAR(fields, 100.0, 0.5);

    double msg_sizes = 0;
    for (double p : profile.msg_size_pct)
        msg_sizes += p;
    EXPECT_NEAR(msg_sizes, 100.0, 0.5);

    double density = 0;
    for (double p : profile.density_pct)
        density += p;
    EXPECT_NEAR(density, 100.0, 0.5);
    EXPECT_GT(profile.mean_presence, 0.0);
    EXPECT_LT(profile.mean_presence, 1.0);
}

TEST(FitShapeProfile, FittedMixReflectsObservations)
{
    // A service whose shapes were observed should be regenerated with
    // a similar varint/bytes mix.
    Fleet fleet{FleetParams{}, 11};
    ProtobufzSampler sampler(&fleet, 4);
    const ShapeAggregate agg = sampler.CollectService(0, 2000);
    const ShapeProfile profile = FitShapeProfile(agg);

    double observed_varint = 0, fitted_varint = 0, observed_total = 0;
    for (const auto &[key, stats] : agg.by_type) {
        observed_total += static_cast<double>(stats.count);
        if (proto::IsVarintType(static_cast<proto::FieldType>(key.first)))
            observed_varint += static_cast<double>(stats.count);
    }
    for (const auto &share : profile.type_shares) {
        if (proto::IsVarintType(share.type))
            fitted_varint += share.field_pct;
    }
    EXPECT_NEAR(fitted_varint, 100.0 * observed_varint / observed_total,
                1e-6);
}

class HpbSuiteTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        fleet_ = new Fleet{FleetParams{}, 2021};
        HpbParams params;
        params.shape_samples_per_service = 400;
        params.messages_per_bench = 16;
        benches_ = new std::vector<HpbBenchmark>(
            BuildHyperProtoBench(*fleet_, params));
    }
    static void
    TearDownTestSuite()
    {
        delete benches_;
        delete fleet_;
        benches_ = nullptr;
        fleet_ = nullptr;
    }

    static Fleet *fleet_;
    static std::vector<HpbBenchmark> *benches_;
};

Fleet *HpbSuiteTest::fleet_ = nullptr;
std::vector<HpbBenchmark> *HpbSuiteTest::benches_ = nullptr;

TEST_F(HpbSuiteTest, ProducesSixNamedBenchmarks)
{
    ASSERT_EQ(benches_->size(), 6u);
    for (size_t i = 0; i < benches_->size(); ++i) {
        EXPECT_EQ((*benches_)[i].name, "bench" + std::to_string(i));
        EXPECT_EQ((*benches_)[i].workload.messages.size(), 16u);
        EXPECT_GT((*benches_)[i].workload.total_wire_bytes, 0);
    }
}

TEST_F(HpbSuiteTest, GeneratedWiresParseBack)
{
    for (const auto &bench : *benches_) {
        proto::Arena arena;
        for (size_t i = 0; i < bench.workload.wires.size(); ++i) {
            proto::Message dest = proto::Message::Create(
                &arena, *bench.workload.pool, bench.workload.msg_index);
            EXPECT_EQ(proto::ParseFromBuffer(
                          bench.workload.wires[i].data(),
                          bench.workload.wires[i].size(), &dest),
                      proto::ParseStatus::kOk)
                << bench.name << " message " << i;
            EXPECT_TRUE(
                MessagesEqual(bench.workload.messages[i], dest));
        }
    }
}

TEST_F(HpbSuiteTest, BenchmarksAreRunnableOnAllThreeSystems)
{
    const auto &bench = benches_->front();
    const harness::Throughput boom =
        harness::CpuDeserialize(cpu::BoomParams(), bench.workload, 1);
    const harness::Throughput accel =
        harness::AccelDeserialize(bench.workload,
                                  accel::AccelConfig{}, 1);
    EXPECT_GT(boom.gbps, 0);
    EXPECT_GT(accel.gbps, boom.gbps);
}

TEST_F(HpbSuiteTest, DeterministicFromSeed)
{
    HpbParams params;
    params.shape_samples_per_service = 100;
    params.messages_per_bench = 4;
    const auto a = BuildHyperProtoBench(*fleet_, params);
    const auto b = BuildHyperProtoBench(*fleet_, params);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].workload.wires, b[i].workload.wires);
}

}  // namespace
}  // namespace protoacc::hpb
