/**
 * Robustness tests for the accelerator model: arbitrary garbage and
 * truncated inputs must be rejected gracefully (a hardware unit cannot
 * crash the machine on bad input — it raises an error status), and the
 * accelerator's accept/reject decision must agree with the software
 * parser's.
 */
#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "proto/parser.h"
#include "proto/schema_random.h"
#include "proto/serializer.h"

namespace protoacc::accel {
namespace {

using proto::Arena;
using proto::DescriptorPool;
using proto::Message;

struct FuzzRig
{
    explicit FuzzRig(uint64_t seed)
        : memory(sim::MemorySystemConfig{}), accel(&memory, AccelConfig{})
    {
        protoacc::Rng rng(seed);
        proto::SchemaGenOptions opts;
        opts.max_depth = 2;
        root = proto::GenerateRandomSchema(&pool, &rng, opts);
        pool.Compile(proto::HasbitsMode::kSparse);
        adts = std::make_unique<AdtBuilder>(pool, &adt_arena);
        accel.DeserAssignArena(&accel_arena);
    }

    AccelStatus
    Deser(const uint8_t *data, size_t size)
    {
        Arena dest_arena;
        Message dest = Message::Create(&dest_arena, pool, root);
        accel.EnqueueDeser(MakeDeserJob(*adts, root, pool, dest.raw(),
                                        data, size));
        uint64_t cycles = 0;
        return accel.BlockForDeserCompletion(&cycles);
    }

    DescriptorPool pool;
    int root = -1;
    Arena adt_arena;
    Arena accel_arena;
    sim::MemorySystem memory;
    ProtoAccelerator accel;
    std::unique_ptr<AdtBuilder> adts;
};

TEST(AccelFuzz, RandomBytesNeverCrashTheDeserializer)
{
    FuzzRig rig(4242);
    protoacc::Rng rng(1);
    for (int trial = 0; trial < 400; ++trial) {
        const size_t len = rng.NextBounded(160);
        std::vector<uint8_t> junk(len);
        for (auto &b : junk)
            b = static_cast<uint8_t>(rng.Next());
        (void)rig.Deser(junk.data(), junk.size());  // must not abort
    }
}

TEST(AccelFuzz, TruncationsNeverCrashAndMostlyReject)
{
    FuzzRig rig(777);
    protoacc::Rng rng(2);
    Arena arena;
    Message msg = Message::Create(&arena, rig.pool, rig.root);
    PopulateRandomMessage(msg, &rng, proto::MessageGenOptions{});
    const auto wire = proto::Serialize(msg);
    for (size_t cut = 0; cut <= wire.size() && cut < 250; ++cut)
        (void)rig.Deser(wire.data(), cut);
}

TEST(AccelFuzz, AcceptRejectAgreesWithSoftwareParser)
{
    // Accept/reject agreement on random garbage: whatever the software
    // parser accepts the accelerator must accept, and vice versa.
    // (Specific error codes may differ; the decision may not.)
    FuzzRig rig(31337);
    protoacc::Rng rng(3);
    int accepted = 0;
    for (int trial = 0; trial < 300; ++trial) {
        const size_t len = rng.NextBounded(48);
        std::vector<uint8_t> junk(len);
        for (auto &b : junk) {
            // Bias toward plausible tag bytes so some inputs parse.
            b = rng.NextBool(0.5)
                    ? static_cast<uint8_t>(rng.NextBounded(0x20))
                    : static_cast<uint8_t>(rng.Next());
        }
        Arena sw_arena;
        Message sw = Message::Create(&sw_arena, rig.pool, rig.root);
        const bool sw_ok =
            proto::ParseFromBuffer(junk.data(), junk.size(), &sw) ==
            proto::ParseStatus::kOk;
        const bool accel_ok =
            rig.Deser(junk.data(), junk.size()) == AccelStatus::kOk;
        EXPECT_EQ(sw_ok, accel_ok) << "trial " << trial;
        accepted += accel_ok;
    }
    // The bias must have produced both accepted and rejected inputs,
    // otherwise this test proves nothing.
    EXPECT_GT(accepted, 0);
    EXPECT_LT(accepted, 300);
}

TEST(AccelFuzz, ValidWiresAlwaysAccepted)
{
    for (uint64_t seed = 50; seed < 70; ++seed) {
        FuzzRig rig(seed);
        protoacc::Rng rng(seed);
        Arena arena;
        Message msg = Message::Create(&arena, rig.pool, rig.root);
        PopulateRandomMessage(msg, &rng, proto::MessageGenOptions{});
        const auto wire = proto::Serialize(msg);
        EXPECT_EQ(rig.Deser(wire.data(), wire.size()), AccelStatus::kOk)
            << "seed " << seed;
    }
}

}  // namespace
}  // namespace protoacc::accel
