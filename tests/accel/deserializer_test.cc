#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "proto/parser.h"
#include "proto/serializer.h"

namespace protoacc::accel {
namespace {

using proto::Arena;
using proto::DescriptorPool;
using proto::FieldType;
using proto::Label;
using proto::Message;

/// Harness owning the SoC memory system, accelerator, and ADTs for one
/// pool.
struct Soc
{
    explicit Soc(const DescriptorPool &pool)
        : memory(sim::MemorySystemConfig{}),
          accel(&memory, AccelConfig{}),
          adts(pool, &adt_arena)
    {
        accel.DeserAssignArena(&deser_arena);
        accel.SerAssignArena(&ser_arena);
    }

    /// Deserialize wire bytes into a fresh object via the accelerator.
    Message
    Deser(const DescriptorPool &pool, int msg_index,
          const std::vector<uint8_t> &wire, uint64_t *cycles,
          AccelStatus *status = nullptr)
    {
        Message dest = Message::Create(&user_arena, pool, msg_index);
        accel.EnqueueDeser(MakeDeserJob(adts, msg_index, pool, dest.raw(),
                                        wire.data(), wire.size()));
        const AccelStatus st = accel.BlockForDeserCompletion(cycles);
        if (status != nullptr)
            *status = st;
        else
            EXPECT_EQ(st, AccelStatus::kOk);
        return dest;
    }

    sim::MemorySystem memory;
    ProtoAccelerator accel;
    Arena adt_arena;
    Arena user_arena;
    Arena deser_arena;
    SerArena ser_arena;
    AdtBuilder adts;
};

class AccelDeserTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        inner_ = pool_.AddMessage("Inner");
        pool_.AddField(inner_, "v", 1, FieldType::kInt32);
        pool_.AddField(inner_, "name", 3, FieldType::kString);

        msg_ = pool_.AddMessage("M");
        pool_.AddField(msg_, "a", 1, FieldType::kInt64);
        pool_.AddField(msg_, "s", 2, FieldType::kString);
        pool_.AddField(msg_, "d", 3, FieldType::kDouble);
        pool_.AddField(msg_, "z", 4, FieldType::kSint64);
        pool_.AddMessageField(msg_, "sub", 5, inner_);
        pool_.AddField(msg_, "rp", 6, FieldType::kInt32,
                       Label::kRepeated, /*packed=*/true);
        pool_.AddField(msg_, "ru", 7, FieldType::kUint64,
                       Label::kRepeated);
        pool_.AddField(msg_, "rs", 8, FieldType::kString,
                       Label::kRepeated);
        pool_.AddMessageField(msg_, "rm", 9, inner_, Label::kRepeated);
        pool_.AddField(msg_, "fl", 10, FieldType::kFloat);
        pool_.Compile(proto::HasbitsMode::kSparse);
    }

    const proto::FieldDescriptor &
    F(const char *name)
    {
        return *pool_.message(msg_).FindFieldByName(name);
    }

    /// Build a populated reference message.
    Message
    BuildReference(Arena *arena)
    {
        Message m = Message::Create(arena, pool_, msg_);
        m.SetInt64(F("a"), -5'000'000'000LL);
        m.SetString(F("s"), "a string longer than the SSO buffer");
        m.SetDouble(F("d"), 2.75);
        m.SetInt64(F("z"), -99);
        Message sub = m.MutableMessage(F("sub"));
        sub.SetInt32(*sub.descriptor().FindFieldByName("v"), 1234);
        sub.SetString(*sub.descriptor().FindFieldByName("name"), "in");
        for (int i = 0; i < 7; ++i)
            m.AddRepeatedBits(F("rp"), static_cast<uint32_t>(i * 100));
        m.AddRepeatedBits(F("ru"), 1ull << 40);
        m.AddRepeatedBits(F("ru"), 7);
        m.AddRepeatedString(F("rs"), "first");
        m.AddRepeatedString(F("rs"), std::string(100, 'k'));
        for (int i = 0; i < 3; ++i) {
            Message e = m.AddRepeatedMessage(F("rm"));
            e.SetInt32(*e.descriptor().FindFieldByName("v"), i);
        }
        m.SetFloat(F("fl"), 0.5f);
        return m;
    }

    DescriptorPool pool_;
    int inner_ = -1;
    int msg_ = -1;
};

TEST_F(AccelDeserTest, MatchesSoftwareParserOnFullMessage)
{
    Arena ref_arena;
    Message ref = BuildReference(&ref_arena);
    const auto wire = proto::Serialize(ref);

    Soc soc(pool_);
    uint64_t cycles = 0;
    Message got = soc.Deser(pool_, msg_, wire, &cycles);
    EXPECT_TRUE(MessagesEqual(ref, got));
    EXPECT_GT(cycles, 0u);
}

TEST_F(AccelDeserTest, AccelObjectsReadableThroughNormalAccessors)
{
    // §4.4.7: user code operates on accelerator-deserialized objects
    // exactly as on software-deserialized ones.
    Arena ref_arena;
    Message ref = BuildReference(&ref_arena);
    const auto wire = proto::Serialize(ref);

    Soc soc(pool_);
    uint64_t cycles = 0;
    Message got = soc.Deser(pool_, msg_, wire, &cycles);
    EXPECT_EQ(got.GetInt64(F("a")), -5'000'000'000LL);
    EXPECT_EQ(got.GetString(F("s")),
              "a string longer than the SSO buffer");
    EXPECT_EQ(got.GetRepeatedString(F("rs"), 1), std::string(100, 'k'));
    EXPECT_EQ(got.RepeatedSize(F("rm")), 3u);
    EXPECT_EQ(got.GetMessage(F("sub"))
                  .GetString(*pool_.message(inner_).FindFieldByName(
                      "name")),
              "in");
}

TEST_F(AccelDeserTest, SmallStringUsesInlineStorage)
{
    Arena ref_arena;
    Message ref = Message::Create(&ref_arena, pool_, msg_);
    ref.SetString(F("s"), "short");
    const auto wire = proto::Serialize(ref);

    Soc soc(pool_);
    uint64_t cycles = 0;
    Message got = soc.Deser(pool_, msg_, wire, &cycles);
    const proto::ArenaString *s = got.GetStringObject(F("s"));
    ASSERT_NE(s, nullptr);
    EXPECT_TRUE(s->is_inline());  // §4.4.7 small string optimization
    EXPECT_EQ(s->view(), "short");
}

TEST_F(AccelDeserTest, AllocationsGoToAcceleratorArena)
{
    Arena ref_arena;
    Message ref = BuildReference(&ref_arena);
    const auto wire = proto::Serialize(ref);

    Soc soc(pool_);
    uint64_t cycles = 0;
    soc.Deser(pool_, msg_, wire, &cycles);
    EXPECT_GT(soc.deser_arena.allocation_count(), 0u);
    EXPECT_GT(soc.accel.deserializer().stats().allocations, 0u);
}

TEST_F(AccelDeserTest, UnknownFieldsSkipped)
{
    // Wire with an unknown field 20 (varint) before field 1.
    std::vector<uint8_t> wire = {0xa0, 0x01, 0x07, 0x08, 0x2a};
    Soc soc(pool_);
    uint64_t cycles = 0;
    Message got = soc.Deser(pool_, msg_, wire, &cycles);
    EXPECT_EQ(got.GetInt64(F("a")), 42);
    EXPECT_EQ(soc.accel.deserializer().stats().unknown_fields, 1u);
}

TEST_F(AccelDeserTest, TruncatedInputReported)
{
    Arena ref_arena;
    Message ref = Message::Create(&ref_arena, pool_, msg_);
    ref.SetString(F("s"), "hello world, truncate me");
    auto wire = proto::Serialize(ref);
    wire.resize(wire.size() - 5);

    Soc soc(pool_);
    uint64_t cycles = 0;
    AccelStatus status;
    soc.Deser(pool_, msg_, wire, &cycles, &status);
    EXPECT_NE(status, AccelStatus::kOk);
}

TEST_F(AccelDeserTest, GroupWireTypeRejected)
{
    std::vector<uint8_t> wire = {0x0b};  // field 1, start-group
    Soc soc(pool_);
    uint64_t cycles = 0;
    AccelStatus status;
    soc.Deser(pool_, msg_, wire, &cycles, &status);
    EXPECT_EQ(status, AccelStatus::kUnsupportedWireType);
}

TEST_F(AccelDeserTest, BatchingAmortizesOverFence)
{
    Arena ref_arena;
    Message ref = Message::Create(&ref_arena, pool_, msg_);
    ref.SetInt64(F("a"), 5);
    const auto wire = proto::Serialize(ref);

    // One fence for a batch of 8 must be cheaper than 8 fenced singles.
    Soc soc_batch(pool_);
    std::vector<Message> dests;
    for (int i = 0; i < 8; ++i) {
        Message d =
            Message::Create(&soc_batch.user_arena, pool_, msg_);
        soc_batch.accel.EnqueueDeser(MakeDeserJob(
            soc_batch.adts, msg_, pool_, d.raw(), wire.data(),
            wire.size()));
        dests.push_back(d);
    }
    uint64_t batch_cycles = 0;
    ASSERT_EQ(soc_batch.accel.BlockForDeserCompletion(&batch_cycles),
              AccelStatus::kOk);

    Soc soc_single(pool_);
    uint64_t single_total = 0;
    for (int i = 0; i < 8; ++i) {
        uint64_t c = 0;
        soc_single.Deser(pool_, msg_, wire, &c);
        single_total += c + kFenceCycles;
    }
    EXPECT_LT(batch_cycles, single_total);
}

TEST_F(AccelDeserTest, DeepNestingSpillsMetadataStack)
{
    DescriptorPool pool;
    const int node = pool.AddMessage("Node");
    pool.AddMessageField(node, "next", 1, node);
    pool.AddField(node, "v", 2, FieldType::kInt32);
    pool.Compile(proto::HasbitsMode::kSparse);

    Arena arena;
    Message root = Message::Create(&arena, pool, node);
    Message cur = root;
    const auto &next = *pool.message(node).FindFieldByName("next");
    const auto &v = *pool.message(node).FindFieldByName("v");
    // Deeper than the on-chip stack (25): forces spills (§3.8).
    for (int i = 0; i < 40; ++i) {
        cur.SetInt32(v, i);
        cur = cur.MutableMessage(next);
    }
    const auto wire = proto::Serialize(root);

    Soc soc(pool);
    uint64_t cycles = 0;
    Message got = soc.Deser(pool, node, wire, &cycles);
    EXPECT_TRUE(MessagesEqual(root, got));
    const DeserStats &stats = soc.accel.deserializer().stats();
    EXPECT_GT(stats.stack_spills, 0u);
    EXPECT_GE(stats.max_depth, 40u);
}

TEST_F(AccelDeserTest, ShallowNestingDoesNotSpill)
{
    Arena ref_arena;
    Message ref = BuildReference(&ref_arena);
    const auto wire = proto::Serialize(ref);
    Soc soc(pool_);
    uint64_t cycles = 0;
    soc.Deser(pool_, msg_, wire, &cycles);
    EXPECT_EQ(soc.accel.deserializer().stats().stack_spills, 0u);
}

TEST_F(AccelDeserTest, LargeStringApproachesStreamBandwidth)
{
    // §3.6.3/§5.1.1: long-string deserialization essentially becomes a
    // memcpy, which the accelerator handles at stream width.
    Arena ref_arena;
    Message ref = Message::Create(&ref_arena, pool_, msg_);
    const size_t len = 64 * 1024;
    ref.SetString(F("s"), std::string(len, 'x'));
    const auto wire = proto::Serialize(ref);

    Soc soc(pool_);
    uint64_t cycles = 0;
    soc.Deser(pool_, msg_, wire, &cycles);
    const double bytes_per_cycle =
        static_cast<double>(wire.size()) / static_cast<double>(cycles);
    EXPECT_GT(bytes_per_cycle, 8.0);   // more than half of peak
    EXPECT_LE(bytes_per_cycle, 16.0);  // bounded by memloader width
}

TEST_F(AccelDeserTest, StatsCountFieldClasses)
{
    Arena ref_arena;
    Message ref = BuildReference(&ref_arena);
    const auto wire = proto::Serialize(ref);
    Soc soc(pool_);
    uint64_t cycles = 0;
    soc.Deser(pool_, msg_, wire, &cycles);
    const DeserStats &stats = soc.accel.deserializer().stats();
    EXPECT_EQ(stats.jobs, 1u);
    EXPECT_GT(stats.varint_fields, 0u);
    EXPECT_GT(stats.fixed_fields, 0u);
    EXPECT_GT(stats.string_fields, 0u);
    EXPECT_EQ(stats.submessages, 4u);  // sub + 3 rm elements
    EXPECT_EQ(stats.packed_fields, 1u);
    EXPECT_EQ(stats.wire_bytes, wire.size());
}

}  // namespace
}  // namespace protoacc::accel
