#include <gtest/gtest.h>

#include <thread>

#include "accel/shared_queue.h"

namespace protoacc::accel {
namespace {

TEST(SharedAccelQueue, UncontendedBatchPaysOnlyFixedOverheads)
{
    SharedAccelQueue q;
    const auto c = q.Submit(/*arrival_cycle=*/100,
                            /*service_cycles=*/1000);
    const auto &cfg = q.config();
    EXPECT_EQ(c.start_cycle, 100 + cfg.dispatch_cycles_per_job);
    EXPECT_EQ(c.done_cycle,
              c.start_cycle + 1000 + cfg.fence_cycles);
    EXPECT_EQ(c.wait_cycles, 0u);
    EXPECT_EQ(q.stats().contended_batches, 0u);
}

TEST(SharedAccelQueue, SequentialClosedLoopNeverWaits)
{
    // One requester re-submitting after each completion (closed loop)
    // never finds the unit busy: the queue only adds delay under
    // contention.
    SharedAccelQueue q;
    uint64_t clock = 0;
    for (int i = 0; i < 50; ++i) {
        const auto c = q.SubmitBatch(clock, 4, 800);
        EXPECT_EQ(c.wait_cycles, 0u);
        clock = c.done_cycle;
    }
    EXPECT_EQ(q.stats().total_wait_cycles, 0u);
    EXPECT_EQ(q.stats().contended_batches, 0u);
}

TEST(SharedAccelQueue, SimultaneousArrivalsSerializeOnOneUnit)
{
    SharedAccelQueue q;
    const auto first = q.Submit(0, 1000);
    const auto second = q.Submit(0, 1000);
    EXPECT_EQ(second.start_cycle, first.done_cycle);
    EXPECT_GT(second.wait_cycles, 0u);
    EXPECT_EQ(q.stats().contended_batches, 1u);
}

TEST(SharedAccelQueue, SecondUnitAbsorbsTheContention)
{
    SharedQueueConfig cfg;
    cfg.num_units = 2;
    SharedAccelQueue q(cfg);
    const auto first = q.Submit(0, 1000);
    const auto second = q.Submit(0, 1000);
    EXPECT_EQ(second.wait_cycles, 0u);
    EXPECT_EQ(second.done_cycle, first.done_cycle);
}

TEST(SharedAccelQueue, StatsAccumulateAndReset)
{
    SharedAccelQueue q;
    q.SubmitBatch(0, 3, 500);
    q.SubmitBatch(0, 2, 700);
    const auto s = q.stats();
    EXPECT_EQ(s.batches, 2u);
    EXPECT_EQ(s.jobs, 5u);
    EXPECT_EQ(s.total_service_cycles, 1200u);
    EXPECT_GT(s.busy_until_cycle, 0u);
    q.Reset();
    EXPECT_EQ(q.stats().batches, 0u);
    // After Reset the timeline is clear: an arrival at 0 starts fresh.
    EXPECT_EQ(q.Submit(0, 10).wait_cycles, 0u);
}

TEST(SharedAccelQueue, ConcurrentSubmissionsAreLinearized)
{
    // Hammer the queue from several threads (TSan coverage): all
    // service time must land on the shared timeline exactly once.
    SharedAccelQueue q;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&q] {
            uint64_t clock = 0;
            for (int i = 0; i < kPerThread; ++i)
                clock = q.Submit(clock, 100).done_cycle;
        });
    for (auto &t : threads)
        t.join();
    const auto s = q.stats();
    EXPECT_EQ(s.batches,
              static_cast<uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(s.total_service_cycles,
              static_cast<uint64_t>(kThreads * kPerThread) * 100);
    // One unit served everything: the timeline spans at least the
    // total service time.
    EXPECT_GE(s.busy_until_cycle, s.total_service_cycles);
}

TEST(SharedAccelQueue, OffloadBatchOccupiesPipelinedMakespanNotSerialSum)
{
    // 8 calls, deser/ser 100 cycles each per call, frame stage 20 per
    // call, RoCC (no DMA stage): makespan = (n-1)*max + sum-per-call
    // = 7*100 + 220 = 920 — vs the host-fenced serial 1600 + fence.
    SharedAccelQueue q;
    OffloadBatch b;
    b.jobs = 16;
    b.deser_cycles = 800;
    b.ser_cycles = 800;
    b.frame_cycles = 160;
    b.calls = 8;
    const auto c = q.SubmitOffloadBatch(0, b);
    EXPECT_EQ(c.start_cycle, kRoccDispatchCycles);  // one doorbell
    EXPECT_EQ(c.done_cycle, c.start_cycle + 920);   // no fence tail
    const auto s = q.stats();
    EXPECT_EQ(s.offload_batches, 1u);
    EXPECT_EQ(s.offload_frame_cycles, 160u);

    SharedAccelQueue host;
    const auto h = host.SubmitBatch(0, 16, 1600);
    EXPECT_LT(c.done_cycle, h.done_cycle);
}

TEST(SharedAccelQueue, OffloadPciePaysDoorbellDmaAndCompletion)
{
    SharedQueueConfig cfg;
    cfg.freq_ghz = 2.0;
    cfg.transfer.placement = Placement::kPCIe;
    SharedAccelQueue q(cfg);
    OffloadBatch b;
    b.jobs = 2;
    b.deser_cycles = 100;
    b.ser_cycles = 100;
    b.frame_cycles = 20;
    b.wire_bytes = 25'000;
    b.calls = 1;
    // Doorbell 150ns -> 300 cycles; DMA 700ns + 25000B / 25 B/ns =
    // 1700ns -> 3400 cycles (the slowest stage); completion 250ns ->
    // 500 cycles delaying only the requester.
    const auto c = q.SubmitOffloadBatch(0, b);
    EXPECT_EQ(c.start_cycle, 300u);
    EXPECT_EQ(c.done_cycle, 300u + (100 + 100 + 20 + 3400) + 500);
    EXPECT_EQ(q.stats().transfer_cycles, 300u + 3400u + 500u);

    // The unit itself frees at the makespan (no completion tail): a
    // second batch arriving later must not wait out the delivery.
    const auto second = q.SubmitOffloadBatch(c.done_cycle, b);
    EXPECT_EQ(second.wait_cycles, 0u);
}

TEST(SharedAccelQueue, ProbationBiasSteersTiesToTrustedUnit)
{
    SharedQueueConfig cfg;
    cfg.num_units = 2;
    SharedAccelQueue q(cfg);
    q.SetUnitProbation(0, true);
    // Both units free at 0: unbiased arbitration would pick unit 0
    // (lowest index); the probation bias hands the work to unit 1.
    const auto c = q.Submit(0, 500);
    EXPECT_EQ(c.unit, 1u);
    EXPECT_EQ(q.stats().probation_deflections, 1u);

    // Clearing the mark restores plain earliest-free arbitration.
    q.SetUnitProbation(0, false);
    q.Reset();
    EXPECT_EQ(q.Submit(0, 500).unit, 0u);
}

TEST(SharedAccelQueue, ProbationUnitStillServesWhenClearlyBetter)
{
    SharedQueueConfig cfg;
    cfg.num_units = 2;
    cfg.probation_bias_cycles = 64;
    SharedAccelQueue q(cfg);
    q.SetUnitProbation(0, true);
    // Occupy unit 1 far beyond the bias: the probationer is now the
    // clearly better choice and must keep serving.
    q.BlockUnit(1, 10'000);
    const auto c = q.Submit(0, 500);
    EXPECT_EQ(c.unit, 0u);
}

TEST(SharedAccelQueue, ProbationMarksSurviveReset)
{
    SharedQueueConfig cfg;
    cfg.num_units = 2;
    SharedAccelQueue q(cfg);
    q.SetUnitProbation(1, true);
    q.Reset();
    EXPECT_TRUE(q.unit_probation(1));
    EXPECT_FALSE(q.unit_probation(0));
}

TEST(SharedAccelQueue, OffloadBatchKeepsWatchdogCoverage)
{
    // A wedged offloaded batch fires the same watchdog machinery as
    // the host-driven path: exactly-once/health coverage does not
    // regress when frames move on-device.
    SharedQueueConfig cfg;
    cfg.watchdog_budget_cycles = 1'000;
    cfg.watchdog_reset_cycles = 512;
    SharedAccelQueue q(cfg);
    OffloadBatch b;
    b.jobs = 4;
    b.deser_cycles = 4'000;  // blows the budget
    b.ser_cycles = 100;
    b.calls = 1;
    const auto c = q.SubmitOffloadBatch(0, b);
    EXPECT_TRUE(c.watchdog_fired);
    EXPECT_EQ(q.stats().watchdog_resets, 1u);
    EXPECT_GE(c.done_cycle, 1'000u + 512u + 4'100u);
}

TEST(SharedAccelQueue, TableSwapFencesNewDispatchesBehindLoad)
{
    // In-flight work completes against its dispatch epoch; the priced
    // table load occupies the unit afterwards, so the next dispatch
    // fences until the load commits.
    SharedAccelQueue q;
    const auto c1 = q.Submit(0, 1'000);
    EXPECT_EQ(q.current_epoch(), 0u);

    // 1600 bytes at the default 16 B/cycle = 100 cycles of load.
    const auto swap = q.BeginTableSwap(0, 1'600);
    EXPECT_EQ(swap.epoch, 1u);
    EXPECT_EQ(swap.loads_committed, 1u);
    EXPECT_EQ(swap.loads_aborted, 0u);
    EXPECT_EQ(swap.done_cycle, c1.done_cycle + 100);
    EXPECT_EQ(q.current_epoch(), 1u);
    EXPECT_EQ(q.unit_epoch(0), 1u);

    const auto c2 = q.Submit(0, 500);
    EXPECT_EQ(c2.start_cycle, swap.done_cycle);
    EXPECT_GT(c2.wait_cycles, 0u);

    const auto s = q.stats();
    EXPECT_EQ(s.table_swaps, 1u);
    EXPECT_EQ(s.table_loads_committed, 1u);
    EXPECT_EQ(s.table_load_cycles, 100u);
    EXPECT_EQ(s.stale_epoch_dispatches, 0u);
}

TEST(SharedAccelQueue, MidLoadKillQuarantinesUnitFailClosed)
{
    SharedQueueConfig cfg;
    cfg.num_units = 2;
    SharedAccelQueue q(cfg);
    sim::FaultConfig fc;
    fc.unit_kill_rate = 1.0;
    sim::FaultInjector inj(7, fc);
    q.SetUnitFaultInjector(1, &inj);

    const auto swap = q.BeginTableSwap(0, 1'600);
    EXPECT_EQ(swap.loads_committed, 1u);
    EXPECT_EQ(swap.loads_aborted, 1u);
    // The killed unit keeps its old table (a partial image must never
    // serve) and is fenced for the health policy to quarantine.
    EXPECT_EQ(q.unit_epoch(0), 1u);
    EXPECT_EQ(q.unit_epoch(1), 0u);
    EXPECT_TRUE(q.unit_fenced(1));
    EXPECT_EQ(q.available_units(), 1u);

    // Live traffic routes around the stale unit: every dispatch lands
    // on the committed one, and the epoch-fence tripwire stays 0.
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(q.Submit(0, 100).unit, 0u);
    EXPECT_EQ(q.stats().stale_epoch_dispatches, 0u);
}

TEST(SharedAccelQueue, LastSurvivorCommitsDespiteKill)
{
    // Fail-closed has one exception: the fleet must keep serving, so
    // when every load would abort, the final survivor pays the aborted
    // half-load plus a clean reload and commits.
    SharedAccelQueue q;  // one unit
    sim::FaultConfig fc;
    fc.unit_kill_rate = 1.0;
    sim::FaultInjector inj(7, fc);
    q.SetUnitFaultInjector(0, &inj);

    const auto swap = q.BeginTableSwap(0, 1'600);
    EXPECT_EQ(swap.loads_committed, 1u);
    EXPECT_EQ(swap.loads_aborted, 1u);
    EXPECT_FALSE(q.unit_fenced(0));
    EXPECT_EQ(q.unit_epoch(0), 1u);
    // Half-load burned (50) + clean reload (100).
    EXPECT_EQ(q.stats().table_load_cycles, 150u);
    EXPECT_EQ(swap.done_cycle, 150u);
}

TEST(SharedAccelQueue, RetryTableLoadReintegratesQuarantinedUnit)
{
    SharedQueueConfig cfg;
    cfg.num_units = 2;
    SharedAccelQueue q(cfg);
    sim::FaultConfig fc;
    fc.unit_kill_rate = 1.0;
    sim::FaultInjector inj(7, fc);
    q.SetUnitFaultInjector(1, &inj);
    (void)q.BeginTableSwap(0, 1'600);
    ASSERT_TRUE(q.unit_fenced(1));

    // A retry while the fault persists fails again: still stale, the
    // caller keeps the fence up.
    EXPECT_FALSE(q.RetryTableLoad(1, 0, 1'600));
    EXPECT_EQ(q.unit_epoch(1), 0u);

    // After scrub + self-test cleared the fault (modeled by detaching
    // the injector), the retry commits and the fence lifts.
    q.SetUnitFaultInjector(1, nullptr);
    EXPECT_TRUE(q.RetryTableLoad(1, 0, 1'600));
    EXPECT_EQ(q.unit_epoch(1), 1u);
    EXPECT_TRUE(q.SetUnitFenced(1, false));
    EXPECT_EQ(q.available_units(), 2u);
    // A unit already on the current epoch is a no-op retry.
    EXPECT_TRUE(q.RetryTableLoad(1, 0, 1'600));
    EXPECT_EQ(q.stats().table_loads_aborted, 2u);
    EXPECT_EQ(q.stats().table_loads_committed, 2u);
}

TEST(SharedAccelQueue, EpochsSurviveReset)
{
    SharedAccelQueue q;
    (void)q.BeginTableSwap(0, 16);
    q.Reset();
    // Reset clears the timeline, not the schema state: the loaded
    // table is still resident.
    EXPECT_EQ(q.current_epoch(), 1u);
    EXPECT_EQ(q.unit_epoch(0), 1u);
    EXPECT_EQ(q.stats().stale_epoch_dispatches, 0u);
}

}  // namespace
}  // namespace protoacc::accel
