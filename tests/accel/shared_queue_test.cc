#include <gtest/gtest.h>

#include <thread>

#include "accel/shared_queue.h"

namespace protoacc::accel {
namespace {

TEST(SharedAccelQueue, UncontendedBatchPaysOnlyFixedOverheads)
{
    SharedAccelQueue q;
    const auto c = q.Submit(/*arrival_cycle=*/100,
                            /*service_cycles=*/1000);
    const auto &cfg = q.config();
    EXPECT_EQ(c.start_cycle, 100 + cfg.dispatch_cycles_per_job);
    EXPECT_EQ(c.done_cycle,
              c.start_cycle + 1000 + cfg.fence_cycles);
    EXPECT_EQ(c.wait_cycles, 0u);
    EXPECT_EQ(q.stats().contended_batches, 0u);
}

TEST(SharedAccelQueue, SequentialClosedLoopNeverWaits)
{
    // One requester re-submitting after each completion (closed loop)
    // never finds the unit busy: the queue only adds delay under
    // contention.
    SharedAccelQueue q;
    uint64_t clock = 0;
    for (int i = 0; i < 50; ++i) {
        const auto c = q.SubmitBatch(clock, 4, 800);
        EXPECT_EQ(c.wait_cycles, 0u);
        clock = c.done_cycle;
    }
    EXPECT_EQ(q.stats().total_wait_cycles, 0u);
    EXPECT_EQ(q.stats().contended_batches, 0u);
}

TEST(SharedAccelQueue, SimultaneousArrivalsSerializeOnOneUnit)
{
    SharedAccelQueue q;
    const auto first = q.Submit(0, 1000);
    const auto second = q.Submit(0, 1000);
    EXPECT_EQ(second.start_cycle, first.done_cycle);
    EXPECT_GT(second.wait_cycles, 0u);
    EXPECT_EQ(q.stats().contended_batches, 1u);
}

TEST(SharedAccelQueue, SecondUnitAbsorbsTheContention)
{
    SharedQueueConfig cfg;
    cfg.num_units = 2;
    SharedAccelQueue q(cfg);
    const auto first = q.Submit(0, 1000);
    const auto second = q.Submit(0, 1000);
    EXPECT_EQ(second.wait_cycles, 0u);
    EXPECT_EQ(second.done_cycle, first.done_cycle);
}

TEST(SharedAccelQueue, StatsAccumulateAndReset)
{
    SharedAccelQueue q;
    q.SubmitBatch(0, 3, 500);
    q.SubmitBatch(0, 2, 700);
    const auto s = q.stats();
    EXPECT_EQ(s.batches, 2u);
    EXPECT_EQ(s.jobs, 5u);
    EXPECT_EQ(s.total_service_cycles, 1200u);
    EXPECT_GT(s.busy_until_cycle, 0u);
    q.Reset();
    EXPECT_EQ(q.stats().batches, 0u);
    // After Reset the timeline is clear: an arrival at 0 starts fresh.
    EXPECT_EQ(q.Submit(0, 10).wait_cycles, 0u);
}

TEST(SharedAccelQueue, ConcurrentSubmissionsAreLinearized)
{
    // Hammer the queue from several threads (TSan coverage): all
    // service time must land on the shared timeline exactly once.
    SharedAccelQueue q;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&q] {
            uint64_t clock = 0;
            for (int i = 0; i < kPerThread; ++i)
                clock = q.Submit(clock, 100).done_cycle;
        });
    for (auto &t : threads)
        t.join();
    const auto s = q.stats();
    EXPECT_EQ(s.batches,
              static_cast<uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(s.total_service_cycles,
              static_cast<uint64_t>(kThreads * kPerThread) * 100);
    // One unit served everything: the timeline spans at least the
    // total service time.
    EXPECT_GE(s.busy_until_cycle, s.total_service_cycles);
}

}  // namespace
}  // namespace protoacc::accel
