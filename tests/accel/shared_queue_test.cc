#include <gtest/gtest.h>

#include <thread>

#include "accel/shared_queue.h"

namespace protoacc::accel {
namespace {

TEST(SharedAccelQueue, UncontendedBatchPaysOnlyFixedOverheads)
{
    SharedAccelQueue q;
    const auto c = q.Submit(/*arrival_cycle=*/100,
                            /*service_cycles=*/1000);
    const auto &cfg = q.config();
    EXPECT_EQ(c.start_cycle, 100 + cfg.dispatch_cycles_per_job);
    EXPECT_EQ(c.done_cycle,
              c.start_cycle + 1000 + cfg.fence_cycles);
    EXPECT_EQ(c.wait_cycles, 0u);
    EXPECT_EQ(q.stats().contended_batches, 0u);
}

TEST(SharedAccelQueue, SequentialClosedLoopNeverWaits)
{
    // One requester re-submitting after each completion (closed loop)
    // never finds the unit busy: the queue only adds delay under
    // contention.
    SharedAccelQueue q;
    uint64_t clock = 0;
    for (int i = 0; i < 50; ++i) {
        const auto c = q.SubmitBatch(clock, 4, 800);
        EXPECT_EQ(c.wait_cycles, 0u);
        clock = c.done_cycle;
    }
    EXPECT_EQ(q.stats().total_wait_cycles, 0u);
    EXPECT_EQ(q.stats().contended_batches, 0u);
}

TEST(SharedAccelQueue, SimultaneousArrivalsSerializeOnOneUnit)
{
    SharedAccelQueue q;
    const auto first = q.Submit(0, 1000);
    const auto second = q.Submit(0, 1000);
    EXPECT_EQ(second.start_cycle, first.done_cycle);
    EXPECT_GT(second.wait_cycles, 0u);
    EXPECT_EQ(q.stats().contended_batches, 1u);
}

TEST(SharedAccelQueue, SecondUnitAbsorbsTheContention)
{
    SharedQueueConfig cfg;
    cfg.num_units = 2;
    SharedAccelQueue q(cfg);
    const auto first = q.Submit(0, 1000);
    const auto second = q.Submit(0, 1000);
    EXPECT_EQ(second.wait_cycles, 0u);
    EXPECT_EQ(second.done_cycle, first.done_cycle);
}

TEST(SharedAccelQueue, StatsAccumulateAndReset)
{
    SharedAccelQueue q;
    q.SubmitBatch(0, 3, 500);
    q.SubmitBatch(0, 2, 700);
    const auto s = q.stats();
    EXPECT_EQ(s.batches, 2u);
    EXPECT_EQ(s.jobs, 5u);
    EXPECT_EQ(s.total_service_cycles, 1200u);
    EXPECT_GT(s.busy_until_cycle, 0u);
    q.Reset();
    EXPECT_EQ(q.stats().batches, 0u);
    // After Reset the timeline is clear: an arrival at 0 starts fresh.
    EXPECT_EQ(q.Submit(0, 10).wait_cycles, 0u);
}

TEST(SharedAccelQueue, ConcurrentSubmissionsAreLinearized)
{
    // Hammer the queue from several threads (TSan coverage): all
    // service time must land on the shared timeline exactly once.
    SharedAccelQueue q;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&q] {
            uint64_t clock = 0;
            for (int i = 0; i < kPerThread; ++i)
                clock = q.Submit(clock, 100).done_cycle;
        });
    for (auto &t : threads)
        t.join();
    const auto s = q.stats();
    EXPECT_EQ(s.batches,
              static_cast<uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(s.total_service_cycles,
              static_cast<uint64_t>(kThreads * kPerThread) * 100);
    // One unit served everything: the timeline spans at least the
    // total service time.
    EXPECT_GE(s.busy_until_cycle, s.total_service_cycles);
}

TEST(SharedAccelQueue, OffloadBatchOccupiesPipelinedMakespanNotSerialSum)
{
    // 8 calls, deser/ser 100 cycles each per call, frame stage 20 per
    // call, RoCC (no DMA stage): makespan = (n-1)*max + sum-per-call
    // = 7*100 + 220 = 920 — vs the host-fenced serial 1600 + fence.
    SharedAccelQueue q;
    OffloadBatch b;
    b.jobs = 16;
    b.deser_cycles = 800;
    b.ser_cycles = 800;
    b.frame_cycles = 160;
    b.calls = 8;
    const auto c = q.SubmitOffloadBatch(0, b);
    EXPECT_EQ(c.start_cycle, kRoccDispatchCycles);  // one doorbell
    EXPECT_EQ(c.done_cycle, c.start_cycle + 920);   // no fence tail
    const auto s = q.stats();
    EXPECT_EQ(s.offload_batches, 1u);
    EXPECT_EQ(s.offload_frame_cycles, 160u);

    SharedAccelQueue host;
    const auto h = host.SubmitBatch(0, 16, 1600);
    EXPECT_LT(c.done_cycle, h.done_cycle);
}

TEST(SharedAccelQueue, OffloadPciePaysDoorbellDmaAndCompletion)
{
    SharedQueueConfig cfg;
    cfg.freq_ghz = 2.0;
    cfg.transfer.placement = Placement::kPCIe;
    SharedAccelQueue q(cfg);
    OffloadBatch b;
    b.jobs = 2;
    b.deser_cycles = 100;
    b.ser_cycles = 100;
    b.frame_cycles = 20;
    b.wire_bytes = 25'000;
    b.calls = 1;
    // Doorbell 150ns -> 300 cycles; DMA 700ns + 25000B / 25 B/ns =
    // 1700ns -> 3400 cycles (the slowest stage); completion 250ns ->
    // 500 cycles delaying only the requester.
    const auto c = q.SubmitOffloadBatch(0, b);
    EXPECT_EQ(c.start_cycle, 300u);
    EXPECT_EQ(c.done_cycle, 300u + (100 + 100 + 20 + 3400) + 500);
    EXPECT_EQ(q.stats().transfer_cycles, 300u + 3400u + 500u);

    // The unit itself frees at the makespan (no completion tail): a
    // second batch arriving later must not wait out the delivery.
    const auto second = q.SubmitOffloadBatch(c.done_cycle, b);
    EXPECT_EQ(second.wait_cycles, 0u);
}

TEST(SharedAccelQueue, ProbationBiasSteersTiesToTrustedUnit)
{
    SharedQueueConfig cfg;
    cfg.num_units = 2;
    SharedAccelQueue q(cfg);
    q.SetUnitProbation(0, true);
    // Both units free at 0: unbiased arbitration would pick unit 0
    // (lowest index); the probation bias hands the work to unit 1.
    const auto c = q.Submit(0, 500);
    EXPECT_EQ(c.unit, 1u);
    EXPECT_EQ(q.stats().probation_deflections, 1u);

    // Clearing the mark restores plain earliest-free arbitration.
    q.SetUnitProbation(0, false);
    q.Reset();
    EXPECT_EQ(q.Submit(0, 500).unit, 0u);
}

TEST(SharedAccelQueue, ProbationUnitStillServesWhenClearlyBetter)
{
    SharedQueueConfig cfg;
    cfg.num_units = 2;
    cfg.probation_bias_cycles = 64;
    SharedAccelQueue q(cfg);
    q.SetUnitProbation(0, true);
    // Occupy unit 1 far beyond the bias: the probationer is now the
    // clearly better choice and must keep serving.
    q.BlockUnit(1, 10'000);
    const auto c = q.Submit(0, 500);
    EXPECT_EQ(c.unit, 0u);
}

TEST(SharedAccelQueue, ProbationMarksSurviveReset)
{
    SharedQueueConfig cfg;
    cfg.num_units = 2;
    SharedAccelQueue q(cfg);
    q.SetUnitProbation(1, true);
    q.Reset();
    EXPECT_TRUE(q.unit_probation(1));
    EXPECT_FALSE(q.unit_probation(0));
}

TEST(SharedAccelQueue, OffloadBatchKeepsWatchdogCoverage)
{
    // A wedged offloaded batch fires the same watchdog machinery as
    // the host-driven path: exactly-once/health coverage does not
    // regress when frames move on-device.
    SharedQueueConfig cfg;
    cfg.watchdog_budget_cycles = 1'000;
    cfg.watchdog_reset_cycles = 512;
    SharedAccelQueue q(cfg);
    OffloadBatch b;
    b.jobs = 4;
    b.deser_cycles = 4'000;  // blows the budget
    b.ser_cycles = 100;
    b.calls = 1;
    const auto c = q.SubmitOffloadBatch(0, b);
    EXPECT_TRUE(c.watchdog_fired);
    EXPECT_EQ(q.stats().watchdog_resets, 1u);
    EXPECT_GE(c.done_cycle, 1'000u + 512u + 4'100u);
}

}  // namespace
}  // namespace protoacc::accel
