#include <gtest/gtest.h>

#include "accel/accel_arena.h"

namespace protoacc::accel {
namespace {

TEST(SerArena, HeadStartsAtCapacityAndDescends)
{
    SerArena arena(1024);
    EXPECT_EQ(arena.capacity(), 1024u);
    EXPECT_EQ(arena.head(), 1024u);
    EXPECT_EQ(arena.bytes_used(), 0u);
    arena.set_head(1000);
    EXPECT_EQ(arena.bytes_used(), 24u);
}

TEST(SerArena, OutputPointersRecordInOrder)
{
    SerArena arena(256);
    // Simulate two serializations written high->low (§4.5.1).
    arena.set_head(200);
    arena.PushOutputPointer(200, 56);
    arena.set_head(150);
    arena.PushOutputPointer(150, 50);

    ASSERT_EQ(arena.output_count(), 2u);
    EXPECT_EQ(arena.output(0).size, 56u);
    EXPECT_EQ(arena.output(1).size, 50u);
    // Later outputs live at lower addresses.
    EXPECT_GT(arena.output(0).data, arena.output(1).data);
    EXPECT_EQ(arena.output(0).data, arena.buffer_base() + 200);
}

TEST(SerArena, ResetReclaimsEverything)
{
    SerArena arena(128);
    arena.set_head(64);
    arena.PushOutputPointer(64, 64);
    arena.Reset();
    EXPECT_EQ(arena.head(), 128u);
    EXPECT_EQ(arena.output_count(), 0u);
    EXPECT_EQ(arena.bytes_used(), 0u);
}

TEST(SerArena, AtGivesStableAddresses)
{
    SerArena arena(64);
    uint8_t *p = arena.at(10);
    *p = 0xab;
    EXPECT_EQ(*(arena.buffer_base() + 10), 0xab);
}

}  // namespace
}  // namespace protoacc::accel
