/**
 * §7 proto3 support in the accelerator: the deserializer's UTF-8
 * checker must reject exactly what the software parser rejects, driven
 * purely by the ADT's validate_utf8 entry flag.
 */
#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "proto/parser.h"
#include "proto/serializer.h"

namespace protoacc::accel {
namespace {

using proto::Arena;
using proto::DescriptorPool;
using proto::FieldType;
using proto::Message;
using proto::Syntax;

class AccelProto3Test : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        p3_ = pool_.AddMessage("P3", Syntax::kProto3);
        pool_.AddField(p3_, "s", 1, FieldType::kString);
        pool_.AddField(p3_, "b", 2, FieldType::kBytes);
        p2_ = pool_.AddMessage("P2", Syntax::kProto2);
        pool_.AddField(p2_, "s", 1, FieldType::kString);
        pool_.Compile(proto::HasbitsMode::kSparse);

        memory_ = std::make_unique<sim::MemorySystem>(
            sim::MemorySystemConfig{});
        accel_ = std::make_unique<ProtoAccelerator>(memory_.get(),
                                                    AccelConfig{});
        adts_ = std::make_unique<AdtBuilder>(pool_, &adt_arena_);
        accel_->DeserAssignArena(&accel_arena_);
    }

    AccelStatus
    Deser(int msg_index, const std::vector<uint8_t> &wire)
    {
        Message dest = Message::Create(&arena_, pool_, msg_index);
        accel_->EnqueueDeser(MakeDeserJob(*adts_, msg_index, pool_,
                                          dest.raw(), wire.data(),
                                          wire.size()));
        uint64_t cycles = 0;
        return accel_->BlockForDeserCompletion(&cycles);
    }

    std::vector<uint8_t>
    Wire(uint32_t field, const std::string &payload)
    {
        std::vector<uint8_t> out = {static_cast<uint8_t>(field << 3 | 2),
                                    static_cast<uint8_t>(payload.size())};
        out.insert(out.end(), payload.begin(), payload.end());
        return out;
    }

    DescriptorPool pool_;
    Arena arena_, adt_arena_, accel_arena_;
    std::unique_ptr<sim::MemorySystem> memory_;
    std::unique_ptr<ProtoAccelerator> accel_;
    std::unique_ptr<AdtBuilder> adts_;
    int p3_ = -1;
    int p2_ = -1;
};

TEST_F(AccelProto3Test, AdtCarriesValidateUtf8Flag)
{
    const AdtView view = adts_->view(p3_);
    const AdtHeader h = view.ReadHeader();
    EXPECT_TRUE(view.ReadEntry(1, h).validate_utf8());   // string
    EXPECT_FALSE(view.ReadEntry(2, h).validate_utf8());  // bytes
    const AdtView p2_view = adts_->view(p2_);
    const AdtHeader h2 = p2_view.ReadHeader();
    EXPECT_FALSE(p2_view.ReadEntry(1, h2).validate_utf8());
}

TEST_F(AccelProto3Test, RejectsInvalidUtf8InProto3Strings)
{
    EXPECT_EQ(Deser(p3_, Wire(1, "bad\xc0\x80")),
              AccelStatus::kInvalidUtf8);
    EXPECT_EQ(Deser(p3_, Wire(1, "\xed\xa0\x80")),  // surrogate
              AccelStatus::kInvalidUtf8);
}

TEST_F(AccelProto3Test, AcceptsValidUtf8AndBytes)
{
    EXPECT_EQ(Deser(p3_, Wire(1, "caf\xc3\xa9 \xf0\x9f\x98\x80")),
              AccelStatus::kOk);
    EXPECT_EQ(Deser(p3_, Wire(2, "\xff\xfe\xc0\x80")),  // bytes field
              AccelStatus::kOk);
    EXPECT_EQ(Deser(p2_, Wire(1, "\xc0\x80")),  // proto2 string
              AccelStatus::kOk);
}

TEST_F(AccelProto3Test, AgreesWithSoftwareParserOnMixedBatch)
{
    const std::vector<std::string> payloads = {
        "ascii", "caf\xc3\xa9", "bad\x80", "\xf4\x8f\xbf\xbf",
        "\xf5\x80\x80\x80"};
    for (const auto &payload : payloads) {
        const auto wire = Wire(1, payload);
        Message sw = Message::Create(&arena_, pool_, p3_);
        const bool sw_ok =
            proto::ParseFromBuffer(wire.data(), wire.size(), &sw) ==
            proto::ParseStatus::kOk;
        const bool accel_ok = Deser(p3_, wire) == AccelStatus::kOk;
        EXPECT_EQ(sw_ok, accel_ok) << payload;
    }
}

}  // namespace
}  // namespace protoacc::accel
