/**
 * Timing-model property tests for the serializer pipeline: the knobs
 * the paper's design motivates (parallel FSUs, batch pipelining,
 * memwriter bandwidth) must move cycle counts in the right direction
 * without ever changing the output bytes.
 */
#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "proto/serializer.h"

namespace protoacc::accel {
namespace {

using proto::Arena;
using proto::DescriptorPool;
using proto::FieldType;
using proto::Message;

/// Pool with a wide message (many independent fields -> FSU headroom).
class SerTimingTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        msg_ = pool_.AddMessage("Wide");
        for (uint32_t f = 1; f <= 16; ++f) {
            pool_.AddField(msg_, "v" + std::to_string(f), f,
                           FieldType::kUint64);
        }
        pool_.AddField(msg_, "s", 17, FieldType::kString);
        pool_.Compile(proto::HasbitsMode::kSparse);
    }

    Message
    BuildWide()
    {
        Message m = Message::Create(&arena_, pool_, msg_);
        const auto &desc = pool_.message(msg_);
        for (uint32_t f = 1; f <= 16; ++f) {
            m.SetUint64(*desc.FindFieldByName("v" + std::to_string(f)),
                        1ull << (3 * f % 60));
        }
        m.SetString(*desc.FindFieldByName("s"), std::string(100, 'x'));
        return m;
    }

    /// Serialize a batch with the given FSU count; returns
    /// {batch cycles, first output bytes}.
    std::pair<uint64_t, std::vector<uint8_t>>
    RunBatch(uint32_t num_fsus, int batch, bool single_fences = false)
    {
        sim::MemorySystem memory{sim::MemorySystemConfig{}};
        AccelConfig cfg;
        cfg.ser.num_field_serializers = num_fsus;
        ProtoAccelerator device(&memory, cfg);
        Arena adt_arena;
        AdtBuilder adts(pool_, &adt_arena);
        SerArena out(1 << 20);
        device.SerAssignArena(&out);

        Message m = BuildWide();
        uint64_t total = 0;
        if (single_fences) {
            for (int i = 0; i < batch; ++i) {
                device.EnqueueSer(
                    MakeSerJob(adts, msg_, pool_, m.raw()));
                uint64_t c = 0;
                EXPECT_EQ(device.BlockForSerCompletion(&c),
                          AccelStatus::kOk);
                total += c;
            }
        } else {
            for (int i = 0; i < batch; ++i)
                device.EnqueueSer(
                    MakeSerJob(adts, msg_, pool_, m.raw()));
            EXPECT_EQ(device.BlockForSerCompletion(&total),
                      AccelStatus::kOk);
        }
        const auto &o = out.output(0);
        return {total, std::vector<uint8_t>(o.data, o.data + o.size)};
    }

    DescriptorPool pool_;
    Arena arena_;
    int msg_ = -1;
};

TEST_F(SerTimingTest, FsuCountChangesCyclesNeverBytes)
{
    const auto [c1, bytes1] = RunBatch(1, 16);
    const auto [c4, bytes4] = RunBatch(4, 16);
    const auto [c8, bytes8] = RunBatch(8, 16);
    EXPECT_EQ(bytes1, bytes4);
    EXPECT_EQ(bytes4, bytes8);
    // More FSUs -> faster (strictly, on a 16-field message).
    EXPECT_LT(c4, c1);
    EXPECT_LE(c8, c4);
    // And the bytes match the software serializer.
    Message m = BuildWide();
    EXPECT_EQ(bytes1, proto::Serialize(m));
}

TEST_F(SerTimingTest, BatchPipeliningBeatsPerMessageFences)
{
    const auto [batched, b1] = RunBatch(4, 32, /*single_fences=*/false);
    const auto [fenced, b2] = RunBatch(4, 32, /*single_fences=*/true);
    EXPECT_EQ(b1, b2);
    EXPECT_LT(batched, fenced);
}

TEST_F(SerTimingTest, ThroughputBoundedByMemwriterWidth)
{
    // A long-string message cannot exceed 16 B/cycle at the memwriter.
    DescriptorPool pool;
    const int big = pool.AddMessage("Big");
    pool.AddField(big, "s", 1, FieldType::kString);
    pool.Compile(proto::HasbitsMode::kSparse);
    Arena arena;
    Message m = Message::Create(&arena, pool, big);
    m.SetString(pool.message(big).field(0), std::string(1 << 20, 'q'));

    sim::MemorySystem memory{sim::MemorySystemConfig{}};
    ProtoAccelerator device(&memory, AccelConfig{});
    Arena adt_arena;
    AdtBuilder adts(pool, &adt_arena);
    SerArena out((1 << 21) + 4096);
    device.SerAssignArena(&out);
    device.EnqueueSer(MakeSerJob(adts, big, pool, m.raw()));
    uint64_t cycles = 0;
    ASSERT_EQ(device.BlockForSerCompletion(&cycles), AccelStatus::kOk);
    const double bytes_per_cycle =
        static_cast<double>(out.output(0).size) /
        static_cast<double>(cycles);
    EXPECT_LE(bytes_per_cycle, 16.0);
    EXPECT_GT(bytes_per_cycle, 8.0);  // and reasonably close to peak
}

TEST_F(SerTimingTest, WiderScanBitsReduceSparseOverhead)
{
    // A sparse type (2 fields, huge range) serializes faster when the
    // frontend can scan more presence bits per cycle.
    DescriptorPool pool;
    const int sparse = pool.AddMessage("Sparse");
    pool.AddField(sparse, "lo", 1, FieldType::kInt32);
    pool.AddField(sparse, "hi", 4000, FieldType::kInt32);
    pool.Compile(proto::HasbitsMode::kSparse);
    Arena arena;
    Message m = Message::Create(&arena, pool, sparse);
    m.SetInt32(pool.message(sparse).field(0), 1);
    m.SetInt32(pool.message(sparse).field(1), 2);

    auto run = [&](uint32_t scan_bits) {
        sim::MemorySystem memory{sim::MemorySystemConfig{}};
        AccelConfig cfg;
        cfg.ser.scan_bits_per_cycle = scan_bits;
        ProtoAccelerator device(&memory, cfg);
        Arena adt_arena;
        AdtBuilder adts(pool, &adt_arena);
        SerArena out;
        device.SerAssignArena(&out);
        // Warm-up job, then measure.
        uint64_t c = 0;
        for (int i = 0; i < 2; ++i) {
            device.EnqueueSer(MakeSerJob(adts, sparse, pool, m.raw()));
            EXPECT_EQ(device.BlockForSerCompletion(&c),
                      AccelStatus::kOk);
        }
        return c;
    };
    EXPECT_LT(run(256), run(16));
}

}  // namespace
}  // namespace protoacc::accel
