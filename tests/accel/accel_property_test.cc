/**
 * Property-based equivalence tests: across random schemas and messages,
 * the accelerator model must (1) serialize byte-identically to the
 * software library (wire compatibility, §4), (2) deserialize to objects
 * deep-equal to software-parsed ones, and (3) survive the full
 * accel-serialize → accel-deserialize round trip.
 */
#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "proto/parser.h"
#include "proto/schema_random.h"
#include "proto/serializer.h"

namespace protoacc::accel {
namespace {

using proto::Arena;
using proto::DescriptorPool;
using proto::Message;

struct RandomSetup
{
    explicit RandomSetup(uint64_t seed) : rng(seed)
    {
        proto::SchemaGenOptions schema_opts;
        schema_opts.max_depth = 3;
        root = proto::GenerateRandomSchema(&pool, &rng, schema_opts);
        pool.Compile(proto::HasbitsMode::kSparse);
        memory = std::make_unique<sim::MemorySystem>(
            sim::MemorySystemConfig{});
        accel = std::make_unique<ProtoAccelerator>(memory.get(),
                                                   AccelConfig{});
        adts = std::make_unique<AdtBuilder>(pool, &adt_arena);
        accel->DeserAssignArena(&deser_arena);
        accel->SerAssignArena(&ser_arena);

        msg = Message::Create(&arena, pool, root);
        proto::MessageGenOptions gen;
        gen.max_string_len = 48;
        PopulateRandomMessage(msg, &rng, gen);
    }

    protoacc::Rng rng;
    DescriptorPool pool;
    int root = -1;
    Arena arena;
    Arena adt_arena;
    Arena deser_arena;
    SerArena ser_arena;
    std::unique_ptr<sim::MemorySystem> memory;
    std::unique_ptr<ProtoAccelerator> accel;
    std::unique_ptr<AdtBuilder> adts;
    Message msg;
};

class AccelPropertyTest : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(AccelPropertyTest, SerializerIsWireCompatible)
{
    RandomSetup s(GetParam());
    const auto expected = proto::Serialize(s.msg);

    s.accel->EnqueueSer(MakeSerJob(*s.adts, s.root, s.pool, s.msg.raw()));
    uint64_t cycles = 0;
    ASSERT_EQ(s.accel->BlockForSerCompletion(&cycles), AccelStatus::kOk)
        << "seed " << GetParam();
    const auto &out = s.ser_arena.output(0);
    EXPECT_EQ(std::vector<uint8_t>(out.data, out.data + out.size),
              expected)
        << "seed " << GetParam();
}

TEST_P(AccelPropertyTest, DeserializerMatchesSoftwareParser)
{
    RandomSetup s(GetParam());
    const auto wire = proto::Serialize(s.msg);

    Message accel_dest = Message::Create(&s.arena, s.pool, s.root);
    s.accel->EnqueueDeser(MakeDeserJob(*s.adts, s.root, s.pool,
                                       accel_dest.raw(), wire.data(),
                                       wire.size()));
    uint64_t cycles = 0;
    ASSERT_EQ(s.accel->BlockForDeserCompletion(&cycles), AccelStatus::kOk)
        << "seed " << GetParam();

    Message sw_dest = Message::Create(&s.arena, s.pool, s.root);
    ASSERT_EQ(proto::ParseFromBuffer(wire.data(), wire.size(), &sw_dest),
              proto::ParseStatus::kOk);
    EXPECT_TRUE(MessagesEqual(sw_dest, accel_dest))
        << "seed " << GetParam();
    EXPECT_TRUE(MessagesEqual(s.msg, accel_dest)) << "seed " << GetParam();
}

TEST_P(AccelPropertyTest, AccelSerThenAccelDeserRoundTrips)
{
    RandomSetup s(GetParam());
    s.accel->EnqueueSer(MakeSerJob(*s.adts, s.root, s.pool, s.msg.raw()));
    uint64_t cycles = 0;
    ASSERT_EQ(s.accel->BlockForSerCompletion(&cycles), AccelStatus::kOk);
    const auto &out = s.ser_arena.output(0);

    Message dest = Message::Create(&s.arena, s.pool, s.root);
    s.accel->EnqueueDeser(MakeDeserJob(*s.adts, s.root, s.pool,
                                       dest.raw(), out.data, out.size));
    ASSERT_EQ(s.accel->BlockForDeserCompletion(&cycles), AccelStatus::kOk)
        << "seed " << GetParam();
    EXPECT_TRUE(MessagesEqual(s.msg, dest)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccelPropertyTest,
                         ::testing::Range<uint64_t>(100, 140));

}  // namespace
}  // namespace protoacc::accel
