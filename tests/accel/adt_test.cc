#include <gtest/gtest.h>

#include "accel/adt.h"

namespace protoacc::accel {
namespace {

using proto::DescriptorPool;
using proto::FieldType;
using proto::Label;

class AdtTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        inner_ = pool_.AddMessage("Inner");
        pool_.AddField(inner_, "x", 2, FieldType::kDouble);

        msg_ = pool_.AddMessage("Outer");
        pool_.AddField(msg_, "a", 3, FieldType::kInt64);
        pool_.AddField(msg_, "s", 5, FieldType::kString);
        pool_.AddMessageField(msg_, "sub", 7, inner_);
        pool_.AddField(msg_, "r", 9, FieldType::kInt32, Label::kRepeated,
                       /*packed=*/true);
        pool_.Compile(proto::HasbitsMode::kSparse);
        builder_ = std::make_unique<AdtBuilder>(pool_, &arena_);
    }

    DescriptorPool pool_;
    proto::Arena arena_;
    int inner_ = -1;
    int msg_ = -1;
    std::unique_ptr<AdtBuilder> builder_;
};

TEST_F(AdtTest, HeaderMatchesLayout)
{
    const AdtView view = builder_->view(msg_);
    const AdtHeader h = view.ReadHeader();
    const auto &desc = pool_.message(msg_);
    EXPECT_EQ(h.object_size, desc.layout().object_size);
    EXPECT_EQ(h.hasbits_offset, desc.layout().hasbits_offset);
    EXPECT_EQ(h.hasbits_words, desc.layout().hasbits_words);
    EXPECT_EQ(h.min_field, 3u);
    EXPECT_EQ(h.max_field, 9u);
    EXPECT_EQ(h.default_instance_addr,
              reinterpret_cast<uint64_t>(desc.default_instance()));
}

TEST_F(AdtTest, EntriesIndexedByFieldNumber)
{
    const AdtView view = builder_->view(msg_);
    const AdtHeader h = view.ReadHeader();
    const auto &desc = pool_.message(msg_);

    const AdtFieldEntry a = view.ReadEntry(3, h);
    EXPECT_TRUE(a.defined());
    EXPECT_EQ(a.type, FieldType::kInt64);
    EXPECT_FALSE(a.repeated());
    EXPECT_EQ(a.offset, desc.FindFieldByNumber(3)->offset);

    const AdtFieldEntry r = view.ReadEntry(9, h);
    EXPECT_TRUE(r.defined());
    EXPECT_TRUE(r.repeated());
    EXPECT_TRUE(r.packed());

    // Gap numbers exist as entries but are not defined.
    EXPECT_FALSE(view.ReadEntry(4, h).defined());
    EXPECT_FALSE(view.ReadEntry(6, h).defined());
    EXPECT_FALSE(view.ReadEntry(8, h).defined());
}

TEST_F(AdtTest, SubMessageEntryLinksSubAdt)
{
    const AdtView view = builder_->view(msg_);
    const AdtHeader h = view.ReadHeader();
    const AdtFieldEntry sub = view.ReadEntry(7, h);
    EXPECT_EQ(sub.type, FieldType::kMessage);
    EXPECT_EQ(sub.sub_adt_addr,
              reinterpret_cast<uint64_t>(builder_->adt(inner_)));
}

TEST_F(AdtTest, IsSubmessageBitfield)
{
    const AdtView view = builder_->view(msg_);
    const AdtHeader h = view.ReadHeader();
    EXPECT_FALSE(view.IsSubmessage(3, h));
    EXPECT_FALSE(view.IsSubmessage(5, h));
    EXPECT_TRUE(view.IsSubmessage(7, h));
    EXPECT_FALSE(view.IsSubmessage(9, h));
    EXPECT_EQ(view.SubmessageBitfieldBytes(h), 1u);  // range 7 -> 1 byte
}

TEST_F(AdtTest, TotalBytesAccountsAllRegions)
{
    // Outer: 64 header + 7 entries * 16 + 1 subbit byte = 177.
    // Inner: 64 + 1 * 16 + 1 = 81.
    EXPECT_EQ(builder_->total_bytes(), 177u + 81u);
}

TEST_F(AdtTest, PerTypeNotPerInstance)
{
    // §4.2: one ADT per message type — building again for another
    // instance is unnecessary; the table addresses are stable.
    const uint8_t *before = builder_->adt(msg_);
    const AdtView view(before);
    const AdtHeader h = view.ReadHeader();
    EXPECT_EQ(view.ReadEntry(3, h).offset,
              pool_.message(msg_).FindFieldByNumber(3)->offset);
}

TEST(AdtRecursive, SelfReferentialTypeLinksItself)
{
    DescriptorPool pool;
    const int node = pool.AddMessage("Node");
    pool.AddMessageField(node, "next", 1, node);
    pool.Compile(proto::HasbitsMode::kSparse);
    proto::Arena arena;
    AdtBuilder adts(pool, &arena);
    const AdtView view = adts.view(node);
    const AdtHeader h = view.ReadHeader();
    EXPECT_EQ(view.ReadEntry(1, h).sub_adt_addr,
              reinterpret_cast<uint64_t>(adts.adt(node)));
    EXPECT_TRUE(view.IsSubmessage(1, h));
}

}  // namespace
}  // namespace protoacc::accel
