#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "cpu/cpu_model.h"
#include "proto/message_ops.h"
#include "proto/schema_random.h"
#include "proto/serializer.h"

namespace protoacc::accel {
namespace {

using proto::Arena;
using proto::DescriptorPool;
using proto::FieldType;
using proto::Label;
using proto::Message;

class AccelOpsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        inner_ = pool_.AddMessage("Inner");
        pool_.AddField(inner_, "v", 1, FieldType::kInt32);
        pool_.AddField(inner_, "s", 2, FieldType::kString);

        msg_ = pool_.AddMessage("M");
        pool_.AddField(msg_, "a", 1, FieldType::kInt64);
        pool_.AddField(msg_, "s", 2, FieldType::kString);
        pool_.AddMessageField(msg_, "sub", 3, inner_);
        pool_.AddField(msg_, "r", 4, FieldType::kInt32,
                       Label::kRepeated, /*packed=*/true);
        pool_.AddField(msg_, "rs", 5, FieldType::kString,
                       Label::kRepeated);
        pool_.AddMessageField(msg_, "rm", 6, inner_, Label::kRepeated);
        pool_.Compile(proto::HasbitsMode::kSparse);

        memory_ = std::make_unique<sim::MemorySystem>(
            sim::MemorySystemConfig{});
        accel_ = std::make_unique<ProtoAccelerator>(memory_.get(),
                                                    AccelConfig{});
        adts_ = std::make_unique<AdtBuilder>(pool_, &adt_arena_);
        accel_->DeserAssignArena(&accel_arena_);
    }

    const proto::FieldDescriptor &
    F(const char *name)
    {
        return *pool_.message(msg_).FindFieldByName(name);
    }

    Message
    Populated()
    {
        Message m = Message::Create(&arena_, pool_, msg_);
        m.SetInt64(F("a"), 77);
        m.SetString(F("s"), "a string big enough to leave the SSO");
        Message sub = m.MutableMessage(F("sub"));
        sub.SetInt32(*sub.descriptor().FindFieldByName("v"), 5);
        for (int i = 0; i < 6; ++i)
            m.AddRepeatedBits(F("r"), static_cast<uint32_t>(i));
        m.AddRepeatedString(F("rs"), "one");
        m.AddRepeatedString(F("rs"), std::string(60, 'z'));
        Message e = m.AddRepeatedMessage(F("rm"));
        e.SetString(*e.descriptor().FindFieldByName("s"), "elem");
        return m;
    }

    uint64_t
    RunOp(MessageOp op, Message dst, const Message *src)
    {
        OpsJob job;
        job.op = op;
        job.adt = adts_->adt(msg_);
        job.dst_obj = dst.raw();
        job.src_obj = src == nullptr ? nullptr : src->raw();
        accel_->EnqueueOp(job);
        uint64_t cycles = 0;
        EXPECT_EQ(accel_->BlockForOpsCompletion(&cycles),
                  AccelStatus::kOk);
        return cycles;
    }

    DescriptorPool pool_;
    Arena arena_;
    Arena adt_arena_;
    Arena accel_arena_;
    std::unique_ptr<sim::MemorySystem> memory_;
    std::unique_ptr<ProtoAccelerator> accel_;
    std::unique_ptr<AdtBuilder> adts_;
    int inner_ = -1;
    int msg_ = -1;
};

TEST_F(AccelOpsTest, ClearMatchesSoftwareClear)
{
    Message accel_msg = Populated();
    Message sw_msg = Populated();
    const uint64_t cycles = RunOp(MessageOp::kClear, accel_msg, nullptr);
    EXPECT_GT(cycles, 0u);
    proto::ClearMessage(sw_msg);
    EXPECT_TRUE(MessagesEqual(accel_msg, sw_msg));
    EXPECT_TRUE(proto::Serialize(accel_msg).empty());
}

TEST_F(AccelOpsTest, MergeMatchesSoftwareMerge)
{
    Message src = Populated();

    Message accel_dst = Message::Create(&arena_, pool_, msg_);
    accel_dst.SetInt64(F("a"), 1);
    accel_dst.AddRepeatedBits(F("r"), 1000);
    Message sw_dst = Message::Create(&arena_, pool_, msg_);
    sw_dst.SetInt64(F("a"), 1);
    sw_dst.AddRepeatedBits(F("r"), 1000);

    RunOp(MessageOp::kMerge, accel_dst, &src);
    proto::MergeFrom(sw_dst, src);
    EXPECT_TRUE(MessagesEqual(accel_dst, sw_dst));
    EXPECT_EQ(proto::Serialize(accel_dst), proto::Serialize(sw_dst));
}

TEST_F(AccelOpsTest, CopyMatchesSoftwareCopy)
{
    Message src = Populated();
    Message accel_dst = Populated();
    accel_dst.SetInt64(F("a"), -1);  // diverge before the copy
    Message sw_dst = Populated();
    sw_dst.SetInt64(F("a"), -1);

    RunOp(MessageOp::kCopy, accel_dst, &src);
    proto::CopyFrom(sw_dst, src);
    EXPECT_TRUE(MessagesEqual(accel_dst, sw_dst));
    EXPECT_TRUE(MessagesEqual(accel_dst, src));
}

TEST_F(AccelOpsTest, CopyIsDeep)
{
    Message src = Populated();
    Message dst = Message::Create(&arena_, pool_, msg_);
    RunOp(MessageOp::kCopy, dst, &src);
    // Mutating the copy's sub-message leaves the source untouched.
    dst.MutableMessage(F("sub")).SetInt32(
        *pool_.message(inner_).FindFieldByName("v"), -9);
    EXPECT_EQ(src.GetMessage(F("sub")).GetInt32(
                  *pool_.message(inner_).FindFieldByName("v")),
              5);
    // Strings were copied, not aliased.
    EXPECT_NE(src.GetStringObject(F("s")), dst.GetStringObject(F("s")));
}

TEST_F(AccelOpsTest, StatsAccumulate)
{
    Message src = Populated();
    Message dst = Message::Create(&arena_, pool_, msg_);
    RunOp(MessageOp::kMerge, dst, &src);
    const OpsStats &stats = accel_->ops().stats();
    EXPECT_EQ(stats.jobs, 1u);
    EXPECT_GT(stats.fields, 0u);
    EXPECT_EQ(stats.submessages, 2u);  // sub + 1 rm element
    EXPECT_GT(stats.bytes_copied, 0u);
    EXPECT_GT(stats.allocations, 0u);
}

TEST_F(AccelOpsTest, ClearBatchIsFasterThanSoftwareOnBoom)
{
    // Compare a warm batch (a single cold clear pays the DRAM fill for
    // the default instance, which the cost-model CPU is never charged).
    constexpr int kBatch = 32;
    uint64_t accel_cycles = 0;
    cpu::CpuCostModel boom(cpu::BoomParams());
    for (int i = 0; i < kBatch; ++i) {
        Message m = Populated();
        accel_cycles += RunOp(MessageOp::kClear, m, nullptr);
        Message sw = Populated();
        proto::ClearMessage(sw, &boom);
        EXPECT_TRUE(MessagesEqual(m, sw));
    }
    EXPECT_LT(static_cast<double>(accel_cycles), boom.cycles());
}

class AccelOpsPropertyTest : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(AccelOpsPropertyTest, MergeEquivalenceOnRandomSchemas)
{
    protoacc::Rng rng(GetParam());
    DescriptorPool pool;
    proto::SchemaGenOptions opts;
    opts.max_depth = 3;
    const int root = proto::GenerateRandomSchema(&pool, &rng, opts);
    pool.Compile(proto::HasbitsMode::kSparse);

    Arena arena;
    Message src = Message::Create(&arena, pool, root);
    PopulateRandomMessage(src, &rng, proto::MessageGenOptions{});
    Message accel_dst = Message::Create(&arena, pool, root);
    Message sw_dst = Message::Create(&arena, pool, root);

    sim::MemorySystem memory{sim::MemorySystemConfig{}};
    ProtoAccelerator accel(&memory, AccelConfig{});
    Arena adt_arena, accel_arena;
    AdtBuilder adts(pool, &adt_arena);
    accel.DeserAssignArena(&accel_arena);

    OpsJob job;
    job.op = MessageOp::kMerge;
    job.adt = adts.adt(root);
    job.dst_obj = accel_dst.raw();
    job.src_obj = src.raw();
    accel.EnqueueOp(job);
    uint64_t cycles = 0;
    ASSERT_EQ(accel.BlockForOpsCompletion(&cycles), AccelStatus::kOk);

    proto::MergeFrom(sw_dst, src);
    EXPECT_TRUE(MessagesEqual(accel_dst, sw_dst))
        << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccelOpsPropertyTest,
                         ::testing::Range<uint64_t>(900, 920));

}  // namespace
}  // namespace protoacc::accel
