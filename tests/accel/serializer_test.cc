#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "proto/serializer.h"

namespace protoacc::accel {
namespace {

using proto::Arena;
using proto::DescriptorPool;
using proto::FieldType;
using proto::Label;
using proto::Message;

class AccelSerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        inner_ = pool_.AddMessage("Inner");
        pool_.AddField(inner_, "v", 1, FieldType::kInt32);
        pool_.AddField(inner_, "name", 2, FieldType::kString);

        msg_ = pool_.AddMessage("M");
        pool_.AddField(msg_, "a", 1, FieldType::kInt64);
        pool_.AddField(msg_, "s", 2, FieldType::kString);
        pool_.AddField(msg_, "d", 3, FieldType::kDouble);
        pool_.AddField(msg_, "z", 4, FieldType::kSint32);
        pool_.AddMessageField(msg_, "sub", 5, inner_);
        pool_.AddField(msg_, "rp", 6, FieldType::kInt32,
                       Label::kRepeated, /*packed=*/true);
        pool_.AddField(msg_, "ru", 7, FieldType::kUint64,
                       Label::kRepeated);
        pool_.AddField(msg_, "rs", 8, FieldType::kString,
                       Label::kRepeated);
        pool_.AddMessageField(msg_, "rm", 9, inner_, Label::kRepeated);
        pool_.AddField(msg_, "fl", 20, FieldType::kFloat);  // gap
        pool_.Compile(proto::HasbitsMode::kSparse);

        memory_ = std::make_unique<sim::MemorySystem>(
            sim::MemorySystemConfig{});
        accel_ =
            std::make_unique<ProtoAccelerator>(memory_.get(),
                                               AccelConfig{});
        adts_ = std::make_unique<AdtBuilder>(pool_, &adt_arena_);
        accel_->SerAssignArena(&ser_arena_);
    }

    const proto::FieldDescriptor &
    F(const char *name)
    {
        return *pool_.message(msg_).FindFieldByName(name);
    }

    /// Run one accelerator serialization; returns the output bytes.
    std::vector<uint8_t>
    AccelSerialize(const Message &m, uint64_t *cycles,
                   AccelStatus *status = nullptr)
    {
        accel_->EnqueueSer(MakeSerJob(*adts_, m.descriptor().pool_index(),
                                      pool_, m.raw()));
        const AccelStatus st = accel_->BlockForSerCompletion(cycles);
        if (status != nullptr) {
            *status = st;
            if (st != AccelStatus::kOk)
                return {};
        } else {
            EXPECT_EQ(st, AccelStatus::kOk);
        }
        const SerArena::Output &out =
            ser_arena_.output(ser_arena_.output_count() - 1);
        return std::vector<uint8_t>(out.data, out.data + out.size);
    }

    DescriptorPool pool_;
    Arena adt_arena_;
    Arena arena_;
    SerArena ser_arena_;
    std::unique_ptr<sim::MemorySystem> memory_;
    std::unique_ptr<ProtoAccelerator> accel_;
    std::unique_ptr<AdtBuilder> adts_;
    int inner_ = -1;
    int msg_ = -1;
};

TEST_F(AccelSerTest, ScalarFieldsByteIdenticalToSoftware)
{
    Message m = Message::Create(&arena_, pool_, msg_);
    m.SetInt64(F("a"), 150);
    m.SetDouble(F("d"), 1.25);
    m.SetInt32(F("z"), -3);
    m.SetFloat(F("fl"), 9.0f);
    uint64_t cycles = 0;
    EXPECT_EQ(AccelSerialize(m, &cycles), proto::Serialize(m));
}

TEST_F(AccelSerTest, StringsAndSubmessagesByteIdentical)
{
    Message m = Message::Create(&arena_, pool_, msg_);
    m.SetString(F("s"), "wire-compatible with standard protobufs");
    Message sub = m.MutableMessage(F("sub"));
    sub.SetInt32(*sub.descriptor().FindFieldByName("v"), 77);
    sub.SetString(*sub.descriptor().FindFieldByName("name"), "nested");
    uint64_t cycles = 0;
    EXPECT_EQ(AccelSerialize(m, &cycles), proto::Serialize(m));
}

TEST_F(AccelSerTest, RepeatedFieldsByteIdentical)
{
    Message m = Message::Create(&arena_, pool_, msg_);
    for (int i = 0; i < 9; ++i)
        m.AddRepeatedBits(F("rp"), static_cast<uint32_t>(i * 37));
    m.AddRepeatedBits(F("ru"), 1);
    m.AddRepeatedBits(F("ru"), 1ull << 50);
    m.AddRepeatedString(F("rs"), "x");
    m.AddRepeatedString(F("rs"), std::string(40, 'y'));
    for (int i = 0; i < 4; ++i) {
        Message e = m.AddRepeatedMessage(F("rm"));
        e.SetInt32(*e.descriptor().FindFieldByName("v"), -i);
    }
    uint64_t cycles = 0;
    EXPECT_EQ(AccelSerialize(m, &cycles), proto::Serialize(m));
}

TEST_F(AccelSerTest, EmptyMessageProducesEmptyOutput)
{
    Message m = Message::Create(&arena_, pool_, msg_);
    uint64_t cycles = 0;
    EXPECT_TRUE(AccelSerialize(m, &cycles).empty());
}

TEST_F(AccelSerTest, EmptySubMessageTakesTwoBytes)
{
    // Figure 1: empty messages take no payload bytes; the field costs
    // its key and a zero length.
    Message m = Message::Create(&arena_, pool_, msg_);
    m.MutableMessage(F("sub"));
    uint64_t cycles = 0;
    const auto wire = AccelSerialize(m, &cycles);
    EXPECT_EQ(wire, proto::Serialize(m));
    EXPECT_EQ(wire.size(), 2u);
}

TEST_F(AccelSerTest, OutputWrittenHighToLow)
{
    // §4.5.1: consecutive outputs stack downward in the arena.
    Message m1 = Message::Create(&arena_, pool_, msg_);
    m1.SetInt64(F("a"), 1);
    Message m2 = Message::Create(&arena_, pool_, msg_);
    m2.SetInt64(F("a"), 2);

    uint64_t cycles = 0;
    AccelSerialize(m1, &cycles);
    AccelSerialize(m2, &cycles);
    ASSERT_EQ(ser_arena_.output_count(), 2u);
    EXPECT_GT(ser_arena_.output(0).data, ser_arena_.output(1).data);
}

TEST_F(AccelSerTest, BatchedOutputsRetrievableByIndex)
{
    std::vector<std::vector<uint8_t>> expected;
    for (int i = 0; i < 5; ++i) {
        Message m = Message::Create(&arena_, pool_, msg_);
        m.SetInt64(F("a"), i * 1000);
        m.SetString(F("s"), std::string(i * 3, 'a'));
        expected.push_back(proto::Serialize(m));
        accel_->EnqueueSer(MakeSerJob(*adts_, msg_, pool_, m.raw()));
    }
    uint64_t cycles = 0;
    ASSERT_EQ(accel_->BlockForSerCompletion(&cycles), AccelStatus::kOk);
    ASSERT_EQ(ser_arena_.output_count(), 5u);
    for (int i = 0; i < 5; ++i) {
        const auto &out = ser_arena_.output(i);
        EXPECT_EQ(std::vector<uint8_t>(out.data, out.data + out.size),
                  expected[i])
            << i;
    }
}

TEST_F(AccelSerTest, ArenaOverflowReported)
{
    SerArena tiny(16);
    accel_->SerAssignArena(&tiny);
    Message m = Message::Create(&arena_, pool_, msg_);
    m.SetString(F("s"), std::string(100, 'x'));
    uint64_t cycles = 0;
    AccelStatus status;
    AccelSerialize(m, &cycles, &status);
    EXPECT_EQ(status, AccelStatus::kOutputOverflow);
}

TEST_F(AccelSerTest, SparseHasbitsScanCostScalesWithRange)
{
    // §3.7: our design reads a bit per defined-field-number; a message
    // type with a huge field-number range pays more scan cycles.
    DescriptorPool pool;
    const int wide = pool.AddMessage("Wide");
    pool.AddField(wide, "lo", 1, FieldType::kInt32);
    pool.AddField(wide, "hi", 5000, FieldType::kInt32);
    const int narrow = pool.AddMessage("Narrow");
    pool.AddField(narrow, "lo", 1, FieldType::kInt32);
    pool.AddField(narrow, "hi", 2, FieldType::kInt32);
    pool.Compile(proto::HasbitsMode::kSparse);

    sim::MemorySystem memory{sim::MemorySystemConfig{}};
    ProtoAccelerator accel(&memory, AccelConfig{});
    Arena adt_arena;
    AdtBuilder adts(pool, &adt_arena);
    SerArena out;
    accel.SerAssignArena(&out);

    // Compare the frontend's scan-cycle stat rather than end-to-end
    // job latency: total latency also includes cache/TLB effects that
    // depend on where the arena happened to place each object, which
    // is noise orthogonal to the field-number-range cost under test.
    Arena arena;
    uint64_t cycles = 0;
    Message mw = Message::Create(&arena, pool, wide);
    mw.SetInt32(*pool.message(wide).FindFieldByName("lo"), 1);
    mw.SetInt32(*pool.message(wide).FindFieldByName("hi"), 2);
    accel.EnqueueSer(MakeSerJob(adts, wide, pool, mw.raw()));
    accel.BlockForSerCompletion(&cycles);
    const uint64_t wide_scan = accel.serializer().stats().scan_cycles;

    Message mn = Message::Create(&arena, pool, narrow);
    mn.SetInt32(*pool.message(narrow).FindFieldByName("lo"), 1);
    mn.SetInt32(*pool.message(narrow).FindFieldByName("hi"), 2);
    accel.EnqueueSer(MakeSerJob(adts, narrow, pool, mn.raw()));
    accel.BlockForSerCompletion(&cycles);
    const uint64_t narrow_scan =
        accel.serializer().stats().scan_cycles - wide_scan;

    EXPECT_GT(wide_scan, narrow_scan + 50);
}

TEST_F(AccelSerTest, StatsTrackFieldsAndBytes)
{
    Message m = Message::Create(&arena_, pool_, msg_);
    m.SetInt64(F("a"), 1);
    m.SetString(F("s"), "abc");
    m.MutableMessage(F("sub")).SetInt32(
        *pool_.message(inner_).FindFieldByName("v"), 5);
    uint64_t cycles = 0;
    const auto wire = AccelSerialize(m, &cycles);
    const SerStats &stats = accel_->serializer().stats();
    EXPECT_EQ(stats.jobs, 1u);
    EXPECT_EQ(stats.out_bytes, wire.size());
    EXPECT_EQ(stats.submessages, 1u);
    EXPECT_GE(stats.fields, 3u);
}

}  // namespace
}  // namespace protoacc::accel
