/**
 * End-to-end integration tests: the full user journey across every
 * layer — .proto text → compiled schemas → populated messages → all
 * four codec paths (software/accelerator × serialize/deserialize) →
 * message ops → textproto — cross-checked at each hop.
 */
#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "proto/message_ops.h"
#include "proto/parser.h"
#include "proto/schema_parser.h"
#include "proto/schema_random.h"
#include "proto/serializer.h"
#include "proto/text_format.h"

namespace protoacc {
namespace {

using namespace protoacc::proto;

constexpr const char *kOrderSchema = R"(
    syntax = "proto2";

    message Money {
        optional int64 units = 1;
        optional int32 nanos = 2;
        optional string currency = 3 [default = "USD"];
    }

    message LineItem {
        required string sku = 1;
        optional uint32 quantity = 2 [default = 1];
        optional Money unit_price = 3;
        repeated string tags = 4;
    }

    message Order {
        enum Status {
            PENDING = 0;
            SHIPPED = 2;
            DELIVERED = 3;
        }
        required uint64 order_id = 1;
        optional Status status = 2 [default = PENDING];
        repeated LineItem items = 3;
        optional Money total = 4;
        repeated uint64 related_orders = 6 [packed = true];
        optional bytes signature = 9;
    }
)";

class EndToEndTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const SchemaParseResult parsed =
            ParseSchema(kOrderSchema, &pool_);
        ASSERT_TRUE(parsed.ok) << parsed.error;
        pool_.Compile(HasbitsMode::kSparse);
        order_ = pool_.FindMessage("Order");
        ASSERT_GE(order_, 0);

        memory_ = std::make_unique<sim::MemorySystem>(
            sim::MemorySystemConfig{});
        device_ = std::make_unique<accel::ProtoAccelerator>(
            memory_.get(), accel::AccelConfig{});
        adts_ = std::make_unique<accel::AdtBuilder>(pool_, &adt_arena_);
        device_->DeserAssignArena(&accel_arena_);
        device_->SerAssignArena(&ser_arena_);
    }

    Message
    BuildOrder()
    {
        const auto &desc = pool_.message(order_);
        Message order = Message::Create(&arena_, pool_, order_);
        order.SetUint64(*desc.FindFieldByName("order_id"), 20210711);
        order.SetInt32(*desc.FindFieldByName("status"), 2);  // SHIPPED
        for (int i = 0; i < 3; ++i) {
            Message item = order.AddRepeatedMessage(
                *desc.FindFieldByName("items"));
            const auto &item_desc = item.descriptor();
            item.SetString(*item_desc.FindFieldByName("sku"),
                           "SKU-" + std::to_string(1000 + i));
            item.SetUint32(*item_desc.FindFieldByName("quantity"),
                           static_cast<uint32_t>(i + 1));
            Message price = item.MutableMessage(
                *item_desc.FindFieldByName("unit_price"));
            price.SetInt64(*price.descriptor().FindFieldByName("units"),
                           19 + i);
            item.AddRepeatedString(*item_desc.FindFieldByName("tags"),
                                   i % 2 == 0 ? "fragile" : "bulky");
        }
        Message total =
            order.MutableMessage(*desc.FindFieldByName("total"));
        total.SetInt64(*total.descriptor().FindFieldByName("units"),
                       120);
        total.SetString(
            *total.descriptor().FindFieldByName("currency"), "EUR");
        order.AddRepeatedBits(*desc.FindFieldByName("related_orders"),
                              20210001);
        order.AddRepeatedBits(*desc.FindFieldByName("related_orders"),
                              20210002);
        order.SetString(*desc.FindFieldByName("signature"),
                        std::string("\x01\x02\xff", 3));
        return order;
    }

    DescriptorPool pool_;
    Arena arena_, adt_arena_, accel_arena_;
    accel::SerArena ser_arena_;
    std::unique_ptr<sim::MemorySystem> memory_;
    std::unique_ptr<accel::ProtoAccelerator> device_;
    std::unique_ptr<accel::AdtBuilder> adts_;
    int order_ = -1;
};

TEST_F(EndToEndTest, AllFourCodecPathsAgree)
{
    Message order = BuildOrder();
    ASSERT_TRUE(IsInitialized(order));

    // Path 1: software serialize.
    const auto sw_wire = Serialize(order);

    // Path 2: accelerator serialize — byte-identical.
    device_->EnqueueSer(
        accel::MakeSerJob(*adts_, order_, pool_, order.raw()));
    uint64_t cycles = 0;
    ASSERT_EQ(device_->BlockForSerCompletion(&cycles),
              accel::AccelStatus::kOk);
    const auto &accel_out = ser_arena_.output(0);
    ASSERT_EQ(std::vector<uint8_t>(accel_out.data,
                                   accel_out.data + accel_out.size),
              sw_wire);

    // Path 3: software parse.
    Message sw_parsed = Message::Create(&arena_, pool_, order_);
    ASSERT_EQ(ParseFromBuffer(sw_wire.data(), sw_wire.size(),
                              &sw_parsed),
              ParseStatus::kOk);
    EXPECT_TRUE(MessagesEqual(order, sw_parsed));

    // Path 4: accelerator deserialize — object deep-equal.
    Message accel_parsed = Message::Create(&arena_, pool_, order_);
    device_->EnqueueDeser(accel::MakeDeserJob(*adts_, order_, pool_,
                                              accel_parsed.raw(),
                                              sw_wire.data(),
                                              sw_wire.size()));
    ASSERT_EQ(device_->BlockForDeserCompletion(&cycles),
              accel::AccelStatus::kOk);
    EXPECT_TRUE(MessagesEqual(order, accel_parsed));
}

TEST_F(EndToEndTest, TextRoundTripThroughAcceleratedWire)
{
    Message order = BuildOrder();
    const std::string text = DebugString(order);

    // text -> message -> accel wire -> message -> text.
    Message from_text = Message::Create(&arena_, pool_, order_);
    std::string error;
    ASSERT_TRUE(ParseTextFormat(text, &from_text, &error)) << error;
    EXPECT_TRUE(MessagesEqual(order, from_text));

    device_->EnqueueSer(
        accel::MakeSerJob(*adts_, order_, pool_, from_text.raw()));
    uint64_t cycles = 0;
    ASSERT_EQ(device_->BlockForSerCompletion(&cycles),
              accel::AccelStatus::kOk);
    const auto &out = ser_arena_.output(0);

    Message reparsed = Message::Create(&arena_, pool_, order_);
    device_->EnqueueDeser(accel::MakeDeserJob(
        *adts_, order_, pool_, reparsed.raw(), out.data, out.size));
    ASSERT_EQ(device_->BlockForDeserCompletion(&cycles),
              accel::AccelStatus::kOk);
    EXPECT_EQ(DebugString(reparsed), text);
}

TEST_F(EndToEndTest, AccelOpsComposeWithCodecs)
{
    Message a = BuildOrder();
    // A second order that will be merged in.
    Message b = Message::Create(&arena_, pool_, order_);
    const auto &desc = pool_.message(order_);
    b.SetUint64(*desc.FindFieldByName("order_id"), 999);
    b.AddRepeatedBits(*desc.FindFieldByName("related_orders"), 3);

    // merged = copy(a); merge(b) — on the accelerator ops unit.
    Message merged = Message::Create(&arena_, pool_, order_);
    accel::OpsJob copy;
    copy.op = accel::MessageOp::kCopy;
    copy.adt = adts_->adt(order_);
    copy.dst_obj = merged.raw();
    copy.src_obj = a.raw();
    device_->EnqueueOp(copy);
    accel::OpsJob merge = copy;
    merge.op = accel::MessageOp::kMerge;
    merge.src_obj = b.raw();
    device_->EnqueueOp(merge);
    uint64_t cycles = 0;
    ASSERT_EQ(device_->BlockForOpsCompletion(&cycles),
              accel::AccelStatus::kOk);

    // Reference: proto2 says merge == parse(concat(wires)).
    auto wire = Serialize(a);
    const auto wb = Serialize(b);
    wire.insert(wire.end(), wb.begin(), wb.end());
    Message reference = Message::Create(&arena_, pool_, order_);
    ASSERT_EQ(ParseFromBuffer(wire.data(), wire.size(), &reference),
              ParseStatus::kOk);
    EXPECT_TRUE(MessagesEqual(reference, merged));

    // And the merged object serializes identically on the accelerator.
    device_->EnqueueSer(
        accel::MakeSerJob(*adts_, order_, pool_, merged.raw()));
    ASSERT_EQ(device_->BlockForSerCompletion(&cycles),
              accel::AccelStatus::kOk);
    const auto &out =
        ser_arena_.output(ser_arena_.output_count() - 1);
    EXPECT_EQ(std::vector<uint8_t>(out.data, out.data + out.size),
              Serialize(reference));
}

TEST_F(EndToEndTest, SchemaEvolutionOldReaderNewWriter)
{
    // A "v2" schema adds fields; a v2 wire must parse under the v1
    // schema (unknown fields skipped) on both software and accel.
    DescriptorPool v2;
    ASSERT_TRUE(ParseSchema(R"(
        message Money {
            optional int64 units = 1;
            optional int32 nanos = 2;
            optional string currency = 3;
            optional string symbol = 12;       // new in v2
            repeated int32 audit_codes = 15;   // new in v2
        }
    )",
                            &v2));
    v2.Compile(HasbitsMode::kSparse);
    const int money_v2 = v2.FindMessage("Money");
    Arena v2_arena;
    Message m2 = Message::Create(&v2_arena, v2, money_v2);
    const auto &d2 = v2.message(money_v2);
    m2.SetInt64(*d2.FindFieldByName("units"), 5);
    m2.SetString(*d2.FindFieldByName("symbol"), "$");
    m2.AddRepeatedBits(*d2.FindFieldByName("audit_codes"), 7);
    const auto v2_wire = Serialize(m2);

    const int money_v1 = pool_.FindMessage("Money");
    Message sw = Message::Create(&arena_, pool_, money_v1);
    ASSERT_EQ(ParseFromBuffer(v2_wire.data(), v2_wire.size(), &sw),
              ParseStatus::kOk);
    EXPECT_EQ(sw.GetInt64(*pool_.message(money_v1).FindFieldByName(
                  "units")),
              5);

    Message hw = Message::Create(&arena_, pool_, money_v1);
    device_->EnqueueDeser(accel::MakeDeserJob(*adts_, money_v1, pool_,
                                              hw.raw(), v2_wire.data(),
                                              v2_wire.size()));
    uint64_t cycles = 0;
    ASSERT_EQ(device_->BlockForDeserCompletion(&cycles),
              accel::AccelStatus::kOk);
    EXPECT_TRUE(MessagesEqual(sw, hw));
    EXPECT_GT(device_->deserializer().stats().unknown_fields, 0u);
}

TEST_F(EndToEndTest, RandomSchemaTextAndWireAgree)
{
    // Random schemas through the full journey (no floats: text is
    // lossy for them).
    for (uint64_t seed = 2000; seed < 2010; ++seed) {
        Rng rng(seed);
        DescriptorPool pool;
        const int root =
            GenerateRandomSchema(&pool, &rng, SchemaGenOptions{});
        pool.Compile(HasbitsMode::kSparse);
        Arena arena;
        Message msg = Message::Create(&arena, pool, root);
        PopulateRandomMessage(msg, &rng, MessageGenOptions{});
        for (const auto &f : pool.message(root).fields()) {
            if (f.type == FieldType::kFloat ||
                f.type == FieldType::kDouble) {
                msg.Clear(f);
            }
        }
        const std::string text = DebugString(msg);
        Message from_text = Message::Create(&arena, pool, root);
        std::string error;
        ASSERT_TRUE(ParseTextFormat(text, &from_text, &error))
            << "seed " << seed << ": " << error;
        EXPECT_EQ(DebugString(from_text), text) << "seed " << seed;
    }
}

}  // namespace
}  // namespace protoacc
