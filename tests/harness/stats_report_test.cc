#include <gtest/gtest.h>

#include "harness/microbench.h"
#include "harness/stats_report.h"

namespace protoacc::harness {
namespace {

TEST(StatsReport, ReportsAllUnitsAfterActivity)
{
    // Drive all three units, then check the report carries the work.
    const auto bench = MakeVarintBench(3, false);
    const Workload &workload = bench->workload;

    sim::MemorySystem memory{sim::MemorySystemConfig{}};
    accel::ProtoAccelerator device(&memory, accel::AccelConfig{});
    proto::Arena adt_arena, accel_arena, dest_arena;
    accel::AdtBuilder adts(*workload.pool, &adt_arena);
    device.DeserAssignArena(&accel_arena);
    accel::SerArena ser_arena;
    device.SerAssignArena(&ser_arena);

    uint64_t cycles = 0;
    device.EnqueueSer(accel::MakeSerJob(adts, workload.msg_index,
                                        *workload.pool,
                                        workload.messages[0].raw()));
    ASSERT_EQ(device.BlockForSerCompletion(&cycles),
              accel::AccelStatus::kOk);
    proto::Message dest = proto::Message::Create(
        &dest_arena, *workload.pool, workload.msg_index);
    device.EnqueueDeser(accel::MakeDeserJob(
        adts, workload.msg_index, *workload.pool, dest.raw(),
        workload.wires[0].data(), workload.wires[0].size()));
    ASSERT_EQ(device.BlockForDeserCompletion(&cycles),
              accel::AccelStatus::kOk);
    accel::OpsJob clear;
    clear.op = accel::MessageOp::kClear;
    clear.adt = adts.adt(workload.msg_index);
    clear.dst_obj = dest.raw();
    device.EnqueueOp(clear);
    ASSERT_EQ(device.BlockForOpsCompletion(&cycles),
              accel::AccelStatus::kOk);

    const std::string report = AccelStatsReport(device);
    for (const char *key :
         {"deser.jobs", "deser.varint_fields", "deser.bytes_per_cycle",
          "ser.jobs", "ser.out_bytes", "ops.jobs", "ops.bytes_copied"}) {
        EXPECT_NE(report.find(key), std::string::npos) << key;
    }
    // Non-zero job counts rendered.
    EXPECT_EQ(report.find("deser.jobs                                "
                          "                0"),
              std::string::npos);

    const std::string mem_report = MemoryStatsReport(memory);
    for (const char *key : {"l2.hits", "llc.hit_rate", "mem.reads"})
        EXPECT_NE(mem_report.find(key), std::string::npos) << key;
}

TEST(StatsReport, OpsSectionOmittedWhenIdle)
{
    sim::MemorySystem memory{sim::MemorySystemConfig{}};
    accel::ProtoAccelerator device(&memory, accel::AccelConfig{});
    const std::string report = AccelStatsReport(device);
    EXPECT_EQ(report.find("ops.jobs"), std::string::npos);
}

}  // namespace
}  // namespace protoacc::harness
