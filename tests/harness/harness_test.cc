#include <gtest/gtest.h>

#include "harness/microbench.h"

namespace protoacc::harness {
namespace {

TEST(GeoMean, Basics)
{
    EXPECT_DOUBLE_EQ(GeoMean({4.0}), 4.0);
    EXPECT_NEAR(GeoMean({1.0, 100.0}), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(GeoMean({}), 0.0);
}

TEST(ExactPercentile, NearestRankOnKnownDistribution)
{
    // 1000, 999, ..., 1 (descending, to prove it sorts a copy): the
    // nearest-rank percentile of 1..1000 is exactly ceil(10 * p).
    std::vector<double> values;
    for (int v = 1000; v >= 1; --v)
        values.push_back(static_cast<double>(v));
    EXPECT_DOUBLE_EQ(ExactPercentile(values, 50), 500.0);
    EXPECT_DOUBLE_EQ(ExactPercentile(values, 99), 990.0);
    EXPECT_DOUBLE_EQ(ExactPercentile(values, 99.9), 999.0);
    EXPECT_DOUBLE_EQ(ExactPercentile(values, 100), 1000.0);
    // Below one rank clamps to the minimum.
    EXPECT_DOUBLE_EQ(ExactPercentile(values, 0), 1.0);
    // The input order was not destroyed (sorts a copy).
    EXPECT_DOUBLE_EQ(values.front(), 1000.0);
}

TEST(ExactPercentile, ReturnsObservedValuesOnly)
{
    // Two samples far apart: interpolation invents a latency no
    // request ever saw; nearest-rank must return a real sample.
    const std::vector<double> two = {100.0, 10'000.0};
    EXPECT_DOUBLE_EQ(ExactPercentile(two, 50), 100.0);
    EXPECT_DOUBLE_EQ(ExactPercentile(two, 99), 10'000.0);
    const double interpolated = Percentile(two, 50);
    EXPECT_GT(interpolated, 100.0);  // the interpolated p50 is neither
    EXPECT_LT(interpolated, 10'000.0);

    EXPECT_DOUBLE_EQ(ExactPercentile({42.0}, 99.9), 42.0);
    EXPECT_DOUBLE_EQ(ExactPercentile({}, 99), 0.0);
}

TEST(Microbench, VarintBenchEncodesExactSizes)
{
    for (int n = 0; n <= 10; ++n) {
        const auto bench = MakeVarintBench(n, /*repeated=*/false);
        ASSERT_EQ(bench->workload.messages.size(),
                  static_cast<size_t>(kMicrobenchBatch));
        // 5 fields per message, each 1 key byte + max(n,1) value bytes.
        const size_t expected = 5 * (1 + (n == 0 ? 1 : n));
        for (const auto &wire : bench->workload.wires)
            EXPECT_EQ(wire.size(), expected) << "varint-" << n;
    }
}

TEST(Microbench, StringBenchHasRequestedPayload)
{
    const auto bench = MakeStringBench("s", 512);
    for (const auto &wire : bench->workload.wires) {
        // tag(1) + len varint(2) + 512 payload.
        EXPECT_EQ(wire.size(), 1 + 2 + 512u);
    }
}

TEST(Microbench, SubmessageBenchNests)
{
    const auto bench =
        MakeSubmessageBench("double-SUB", proto::FieldType::kDouble);
    const auto &workload = bench->workload;
    const auto &desc = workload.pool->message(workload.msg_index);
    EXPECT_EQ(desc.field(0).type, proto::FieldType::kMessage);
    // 5 doubles inside: sub payload = 5 * 9 = 45 B, + tag + len.
    for (const auto &wire : workload.wires)
        EXPECT_EQ(wire.size(), 2 + 45u);
}

TEST(Microbench, SuitesHaveThePaperBenchmarkNames)
{
    const auto nonalloc = MakeNonAllocBenches();
    ASSERT_EQ(nonalloc.size(), 13u);  // varint-0..10, double, float
    EXPECT_EQ(nonalloc.front()->name, "varint-0");
    EXPECT_EQ(nonalloc.back()->name, "float");

    const auto alloc = MakeAllocBenches();
    ASSERT_EQ(alloc.size(), 20u);  // 11 + 4 strings + 2 + 3 SUB
    EXPECT_EQ(alloc[11]->name, "string");
    EXPECT_EQ(alloc[14]->name, "string_very_long");
    EXPECT_EQ(alloc.back()->name, "string-SUB");
}

TEST(Harness, CpuRunnersProduceFiniteThroughput)
{
    const auto bench = MakeVarintBench(3, false);
    const Throughput boom =
        CpuDeserialize(cpu::BoomParams(), bench->workload, 1);
    const Throughput xeon =
        CpuDeserialize(cpu::XeonParams(), bench->workload, 1);
    EXPECT_GT(boom.gbps, 0);
    EXPECT_GT(xeon.gbps, boom.gbps);  // Xeon beats BOOM in software
    EXPECT_GT(boom.cycles, 0);
    EXPECT_DOUBLE_EQ(boom.wire_bytes, bench->workload.total_wire_bytes);
}

TEST(Harness, AccelRunnersBeatBoomOnMicrobench)
{
    const auto bench = MakeVarintBench(5, false);
    const accel::AccelConfig cfg;
    const Throughput boom_d =
        CpuDeserialize(cpu::BoomParams(), bench->workload, 1);
    const Throughput accel_d = AccelDeserialize(bench->workload, cfg, 1);
    EXPECT_GT(accel_d.gbps, 2.0 * boom_d.gbps);

    const Throughput boom_s =
        CpuSerialize(cpu::BoomParams(), bench->workload, 1);
    const Throughput accel_s = AccelSerialize(bench->workload, cfg, 1);
    EXPECT_GT(accel_s.gbps, 2.0 * boom_s.gbps);
}

TEST(Harness, SerializationRepeatsScaleCycles)
{
    const auto bench = MakeVarintBench(2, false);
    const Throughput once =
        CpuSerialize(cpu::BoomParams(), bench->workload, 1);
    const Throughput thrice =
        CpuSerialize(cpu::BoomParams(), bench->workload, 3);
    EXPECT_NEAR(thrice.cycles, 3 * once.cycles, once.cycles * 0.01);
    // Throughput is repeat-invariant.
    EXPECT_NEAR(thrice.gbps, once.gbps, once.gbps * 0.01);
}

}  // namespace
}  // namespace protoacc::harness
