#include "common/crc32c.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace protoacc {
namespace {

// Bit-at-a-time reference implementation: the definition of CRC32C
// (reflected polynomial 0x82F63B78, inverted in and out), used to
// cross-check the slice-by-8 tables.
uint32_t
ReferenceCrc32c(const uint8_t *data, size_t len)
{
    uint32_t state = 0xFFFFFFFFu;
    for (size_t i = 0; i < len; ++i) {
        state ^= data[i];
        for (int bit = 0; bit < 8; ++bit)
            state = (state >> 1) ^ ((state & 1u) ? 0x82F63B78u : 0u);
    }
    return ~state;
}

TEST(Crc32c, KnownVectors)
{
    // The standard CRC32C check value.
    const std::string check = "123456789";
    EXPECT_EQ(Crc32c(reinterpret_cast<const uint8_t *>(check.data()),
                     check.size()),
              0xE3069283u);

    // RFC 3720 (iSCSI) appendix B.4 test patterns.
    std::vector<uint8_t> zeros(32, 0x00);
    EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
    std::vector<uint8_t> ones(32, 0xFF);
    EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
    std::vector<uint8_t> ascending(32);
    for (size_t i = 0; i < ascending.size(); ++i)
        ascending[i] = static_cast<uint8_t>(i);
    EXPECT_EQ(Crc32c(ascending.data(), ascending.size()), 0x46DD794Eu);
    std::vector<uint8_t> descending(32);
    for (size_t i = 0; i < descending.size(); ++i)
        descending[i] = static_cast<uint8_t>(31 - i);
    EXPECT_EQ(Crc32c(descending.data(), descending.size()), 0x113FDB5Cu);

    EXPECT_EQ(Crc32c(nullptr, 0), 0u);
}

TEST(Crc32c, MatchesBitwiseReferenceAcrossSizesAndAlignments)
{
    Rng rng(0xC4C32C);
    std::vector<uint8_t> buf(512 + 8);
    for (auto &b : buf)
        b = static_cast<uint8_t>(rng.Next());
    // Sweep lengths through the head/slice/tail regimes and start
    // offsets through every alignment class.
    for (size_t align = 0; align < 8; ++align) {
        for (size_t len : {0u, 1u, 3u, 7u, 8u, 9u, 15u, 16u, 63u, 64u,
                           200u, 512u}) {
            const uint8_t *p = buf.data() + align;
            EXPECT_EQ(Crc32c(p, len), ReferenceCrc32c(p, len))
                << "align=" << align << " len=" << len;
        }
    }
}

TEST(Crc32c, ExtendComposesOverSplits)
{
    Rng rng(0xBADC0DE);
    std::vector<uint8_t> buf(300);
    for (auto &b : buf)
        b = static_cast<uint8_t>(rng.Next());
    const uint32_t whole = Crc32c(buf.data(), buf.size());
    for (size_t split : {0u, 1u, 7u, 8u, 13u, 150u, 299u, 300u}) {
        const uint32_t piecewise =
            Crc32cExtend(Crc32c(buf.data(), split), buf.data() + split,
                         buf.size() - split);
        EXPECT_EQ(piecewise, whole) << "split=" << split;
    }
}

TEST(Crc32c, DetectsSingleBitFlips)
{
    Rng rng(0x51B);
    std::vector<uint8_t> buf(64);
    for (auto &b : buf)
        b = static_cast<uint8_t>(rng.Next());
    const uint32_t clean = Crc32c(buf.data(), buf.size());
    for (size_t byte = 0; byte < buf.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            buf[byte] ^= static_cast<uint8_t>(1u << bit);
            EXPECT_NE(Crc32c(buf.data(), buf.size()), clean)
                << "byte=" << byte << " bit=" << bit;
            buf[byte] ^= static_cast<uint8_t>(1u << bit);
        }
    }
}

}  // namespace
}  // namespace protoacc
