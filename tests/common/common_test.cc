#include <gtest/gtest.h>

#include <set>

#include "common/bits.h"
#include "common/histogram.h"
#include "common/rng.h"

namespace protoacc {
namespace {

TEST(Bits, SignificantBits)
{
    EXPECT_EQ(SignificantBits(0), 0);
    EXPECT_EQ(SignificantBits(1), 1);
    EXPECT_EQ(SignificantBits(0x7f), 7);
    EXPECT_EQ(SignificantBits(0x80), 8);
    EXPECT_EQ(SignificantBits(UINT64_MAX), 64);
}

TEST(Bits, CeilDiv)
{
    EXPECT_EQ(CeilDiv(0, 7), 0u);
    EXPECT_EQ(CeilDiv(7, 7), 1u);
    EXPECT_EQ(CeilDiv(8, 7), 2u);
    EXPECT_EQ(CeilDiv(70, 7), 10u);
}

TEST(Bits, AlignUp)
{
    EXPECT_EQ(AlignUp(0, 8), 0u);
    EXPECT_EQ(AlignUp(1, 8), 8u);
    EXPECT_EQ(AlignUp(8, 8), 8u);
    EXPECT_EQ(AlignUp(9, 4), 12u);
}

TEST(Bits, IsPow2AndLog2)
{
    EXPECT_TRUE(IsPow2(1));
    EXPECT_TRUE(IsPow2(4096));
    EXPECT_FALSE(IsPow2(0));
    EXPECT_FALSE(IsPow2(6));
    EXPECT_EQ(Log2Floor(1), 0);
    EXPECT_EQ(Log2Floor(4096), 12);
    EXPECT_EQ(Log2Floor(4097), 12);
}

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.Next() == b.Next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.NextBounded(13), 13u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.NextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, WeightedRespectsZeroWeights)
{
    Rng rng(9);
    const std::vector<double> weights = {0.0, 1.0, 0.0};
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(rng.NextWeighted(weights), 1u);
}

TEST(Rng, LogUniformBounds)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const uint64_t v = rng.NextLogUniform(4, 4096);
        EXPECT_GE(v, 4u);
        EXPECT_LE(v, 4096u);
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.NextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Histogram, PaperBucketsCoverAllSizes)
{
    EXPECT_EQ(PaperSizeBuckets().size(), 10u);
    EXPECT_EQ(PaperSizeBucketIndex(0), 0u);
    EXPECT_EQ(PaperSizeBucketIndex(8), 0u);
    EXPECT_EQ(PaperSizeBucketIndex(9), 1u);
    EXPECT_EQ(PaperSizeBucketIndex(32), 2u);
    EXPECT_EQ(PaperSizeBucketIndex(512), 6u);
    EXPECT_EQ(PaperSizeBucketIndex(513), 7u);
    EXPECT_EQ(PaperSizeBucketIndex(32768), 8u);
    EXPECT_EQ(PaperSizeBucketIndex(32769), 9u);
    EXPECT_EQ(PaperSizeBucketIndex(UINT64_MAX), 9u);
}

TEST(Histogram, CountsAndWeights)
{
    Histogram h = Histogram::ForPaperSizeBuckets();
    h.AddSized(4, 4);
    h.AddSized(5, 5);
    h.AddSized(100000, 100000);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(9), 1u);
    EXPECT_EQ(h.total_count(), 3u);
    EXPECT_DOUBLE_EQ(h.weight(0), 9.0);
    EXPECT_NEAR(h.count_pct(0), 66.67, 0.01);
    EXPECT_NEAR(h.weight_pct(9), 100.0 * 100000 / 100009, 0.01);
}

TEST(Histogram, TableRendering)
{
    Histogram h = Histogram::ForPaperSizeBuckets();
    h.AddSized(10);
    const std::string table = h.ToTable("title");
    EXPECT_NE(table.find("title"), std::string::npos);
    EXPECT_NE(table.find("9-16"), std::string::npos);
}

}  // namespace
}  // namespace protoacc
