#include "rpc/dedup_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace protoacc::rpc {
namespace {

FrameHeader
ResponseHeader(uint32_t call_id, uint64_t key, size_t payload_bytes)
{
    FrameHeader h;
    h.call_id = call_id;
    h.method_id = 1;
    h.kind = FrameKind::kResponse;
    h.idempotency_key = key;
    h.payload_bytes = static_cast<uint32_t>(payload_bytes);
    return h;
}

std::vector<uint8_t>
Payload(const std::string &s)
{
    return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(DedupCacheTest, MissThenHitRoundTripsTheCommittedResponse)
{
    DedupCache cache(8);
    FrameHeader header;
    std::vector<uint8_t> payload;
    EXPECT_FALSE(cache.Lookup(42, &header, &payload));

    const std::vector<uint8_t> committed = Payload("answer");
    cache.Insert(42, ResponseHeader(7, 42, committed.size()),
                 committed.data(), committed.size());

    ASSERT_TRUE(cache.Lookup(42, &header, &payload));
    EXPECT_EQ(header.call_id, 7u);
    EXPECT_EQ(header.idempotency_key, 42u);
    EXPECT_EQ(payload, committed);

    const DedupCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.insertions, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(DedupCacheTest, KeyZeroIsNeverCachedAndNeverCountsAsMiss)
{
    DedupCache cache(8);
    const std::vector<uint8_t> p = Payload("x");
    cache.Insert(0, ResponseHeader(1, 0, p.size()), p.data(), p.size());
    FrameHeader header;
    std::vector<uint8_t> payload;
    EXPECT_FALSE(cache.Lookup(0, &header, &payload));
    const DedupCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.insertions, 0u);
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.entries, 0u);
}

TEST(DedupCacheTest, FirstCommittedAnswerWins)
{
    DedupCache cache(8);
    const std::vector<uint8_t> first = Payload("first");
    const std::vector<uint8_t> second = Payload("second");
    cache.Insert(5, ResponseHeader(1, 5, first.size()), first.data(),
                 first.size());
    cache.Insert(5, ResponseHeader(2, 5, second.size()), second.data(),
                 second.size());

    FrameHeader header;
    std::vector<uint8_t> payload;
    ASSERT_TRUE(cache.Lookup(5, &header, &payload));
    EXPECT_EQ(payload, first);
    EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(DedupCacheTest, FifoEvictionHoldsTheBound)
{
    DedupCache cache(2);
    const std::vector<uint8_t> p = Payload("p");
    for (uint64_t key = 1; key <= 3; ++key)
        cache.Insert(key, ResponseHeader(1, key, p.size()), p.data(),
                     p.size());

    FrameHeader header;
    std::vector<uint8_t> payload;
    // Key 1 was the oldest entry — evicted when key 3 arrived.
    EXPECT_FALSE(cache.Lookup(1, &header, &payload));
    EXPECT_TRUE(cache.Lookup(2, &header, &payload));
    EXPECT_TRUE(cache.Lookup(3, &header, &payload));

    const DedupCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.capacity, 2u);
}

TEST(DedupCacheTest, CapacityZeroDisablesTheCache)
{
    DedupCache cache(0);
    const std::vector<uint8_t> p = Payload("p");
    cache.Insert(9, ResponseHeader(1, 9, p.size()), p.data(), p.size());
    FrameHeader header;
    std::vector<uint8_t> payload;
    EXPECT_FALSE(cache.Lookup(9, &header, &payload));
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(DedupCacheTest, RetryHorizonExpiresDeadEntriesFirst)
{
    // Entries older than the retry horizon can never be hit again —
    // they are dropped as "expired" (no correctness exposure), not as
    // unsafe evictions, and proactively, before capacity forces it.
    DedupConfig config;
    config.capacity = 8;
    config.retry_horizon = 2;
    DedupCache cache(config);
    const std::vector<uint8_t> p = Payload("p");
    for (uint64_t key = 1; key <= 5; ++key)
        cache.Insert(key, ResponseHeader(1, key, p.size()), p.data(),
                     p.size());

    FrameHeader header;
    std::vector<uint8_t> payload;
    // Keys 1 and 2 aged past the 2-insertion horizon; 4 and 5 are
    // still inside it.
    EXPECT_FALSE(cache.Lookup(1, &header, &payload));
    EXPECT_FALSE(cache.Lookup(2, &header, &payload));
    EXPECT_TRUE(cache.Lookup(4, &header, &payload));
    EXPECT_TRUE(cache.Lookup(5, &header, &payload));

    const DedupCache::Stats stats = cache.stats();
    EXPECT_GE(stats.expired, 2u);
    // Capacity (8) was never the binding constraint: every drop was a
    // provably dead entry.
    EXPECT_EQ(stats.unsafe_evictions, 0u);
}

TEST(DedupCacheTest, CapacityEvictionInsideTheHorizonCountsUnsafe)
{
    // The opposite regime: a huge horizon and a tiny cache. Evicting
    // an entry that a client could still retry is a potential double
    // execution, and the counter says so.
    DedupConfig config;
    config.capacity = 2;
    config.retry_horizon = 1000;
    DedupCache cache(config);
    const std::vector<uint8_t> p = Payload("p");
    for (uint64_t key = 1; key <= 3; ++key)
        cache.Insert(key, ResponseHeader(1, key, p.size()), p.data(),
                     p.size());

    const DedupCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.unsafe_evictions, 1u);
    EXPECT_EQ(stats.expired, 0u);
}

TEST(DedupCacheTest, SerializeDeserializeRoundTripsEntries)
{
    DedupCache cache(8);
    const std::vector<uint8_t> a = Payload("answer-a");
    const std::vector<uint8_t> b = Payload("answer-b");
    cache.Insert(10, ResponseHeader(1, 10, a.size()), a.data(),
                 a.size());
    cache.Insert(20, ResponseHeader(2, 20, b.size()), b.data(),
                 b.size());

    const std::vector<uint8_t> image = cache.Serialize();
    EXPECT_FALSE(image.empty());

    DedupCache restored(8);
    ASSERT_TRUE(restored.Deserialize(image.data(), image.size()));
    EXPECT_TRUE(restored.stats().restored);
    EXPECT_EQ(restored.stats().entries, 2u);

    FrameHeader header;
    std::vector<uint8_t> payload;
    ASSERT_TRUE(restored.Lookup(10, &header, &payload));
    EXPECT_EQ(header.call_id, 1u);
    EXPECT_EQ(payload, a);
    ASSERT_TRUE(restored.Lookup(20, &header, &payload));
    EXPECT_EQ(header.call_id, 2u);
    EXPECT_EQ(payload, b);
}

TEST(DedupCacheTest, RestorePreservesEntryAgesForTheHorizon)
{
    // The snapshot carries each entry's logical age: after a restore,
    // old entries expire on schedule instead of getting a fresh lease
    // on life (which would hold dead weight) or dying early (which
    // would re-execute retries still inside the window).
    DedupConfig config;
    config.capacity = 8;
    config.retry_horizon = 4;
    DedupCache cache(config);
    const std::vector<uint8_t> p = Payload("p");
    cache.Insert(1, ResponseHeader(1, 1, p.size()), p.data(), p.size());
    cache.Insert(2, ResponseHeader(2, 2, p.size()), p.data(), p.size());

    const std::vector<uint8_t> image = cache.Serialize();
    DedupCache restored(config);
    ASSERT_TRUE(restored.Deserialize(image.data(), image.size()));

    // Four more insertions age key 1 (committed at tick 1) past the
    // 4-insertion horizon; key 2 (tick 2) stays exactly inside it.
    for (uint64_t key = 3; key <= 6; ++key)
        restored.Insert(key, ResponseHeader(3, key, p.size()), p.data(),
                        p.size());
    FrameHeader header;
    std::vector<uint8_t> payload;
    EXPECT_FALSE(restored.Lookup(1, &header, &payload));
    EXPECT_TRUE(restored.Lookup(2, &header, &payload));
    EXPECT_GE(restored.stats().expired, 1u);
}

TEST(DedupCacheTest, DeserializeRejectsCorruptImagesFailClosed)
{
    DedupCache cache(8);
    const std::vector<uint8_t> p = Payload("answer");
    cache.Insert(7, ResponseHeader(1, 7, p.size()), p.data(), p.size());
    const std::vector<uint8_t> image = cache.Serialize();

    // A poisoned cache serves wrong answers, so every rejected image
    // must leave the cache EMPTY, even when it held entries before.
    const auto expect_rejected_and_empty =
        [&](const std::vector<uint8_t> &bytes) {
            DedupCache victim(8);
            victim.Insert(99, ResponseHeader(9, 99, p.size()), p.data(),
                          p.size());
            EXPECT_FALSE(victim.Deserialize(bytes.data(), bytes.size()));
            FrameHeader header;
            std::vector<uint8_t> payload;
            EXPECT_FALSE(victim.Lookup(99, &header, &payload));
            EXPECT_EQ(victim.stats().entries, 0u);
            EXPECT_FALSE(victim.stats().restored);
        };

    // Bit flip in the middle (CRC mismatch).
    std::vector<uint8_t> corrupt = image;
    corrupt[corrupt.size() / 2] ^= 0x40;
    expect_rejected_and_empty(corrupt);

    // Truncation at every prefix length.
    for (size_t len = 0; len < image.size(); len += 7)
        expect_rejected_and_empty(
            std::vector<uint8_t>(image.begin(), image.begin() + len));

    // Foreign magic.
    std::vector<uint8_t> foreign = image;
    foreign[0] = 'X';
    expect_rejected_and_empty(foreign);

    // The pristine image still restores (the helper's mutations never
    // touched it).
    DedupCache ok(8);
    EXPECT_TRUE(ok.Deserialize(image.data(), image.size()));
    EXPECT_EQ(ok.stats().entries, 1u);
}

TEST(DedupCacheTest, VersionRejectionNamesFoundAndExpectedVersions)
{
    // An old-version snapshot rejects fail-closed, and the status
    // detail must say which version it saw and which this build
    // expects — "rejected" alone is undebuggable on a fleet where
    // binaries roll at different times.
    DedupCache cache(8);
    const std::vector<uint8_t> p = Payload("answer");
    cache.Insert(7, ResponseHeader(1, 7, p.size()), p.data(), p.size());
    std::vector<uint8_t> image = cache.Serialize();
    image[4] = 2;  // the previous snapshot version

    DedupCache victim(8);
    std::string detail;
    EXPECT_FALSE(victim.Deserialize(image.data(), image.size(),
                                    &detail));
    EXPECT_NE(detail.find("version 2"), std::string::npos) << detail;
    EXPECT_NE(detail.find("expects version 3"), std::string::npos)
        << detail;

    // Every other failure class reports a non-empty detail too.
    detail.clear();
    EXPECT_FALSE(victim.Deserialize(image.data(), 3, &detail));
    EXPECT_NE(detail.find("truncated"), std::string::npos) << detail;
}

TEST(DedupCacheTest, ConcurrentInsertAndLookupAreSafe)
{
    // Many workers share one runtime-wide cache; hammer it from
    // several threads (the TSan job runs this) and check the counters
    // stay coherent.
    DedupCache cache(64);
    constexpr int kThreads = 4;
    constexpr uint64_t kKeysPerThread = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&cache, t] {
            const std::vector<uint8_t> p =
                Payload("thread-" + std::to_string(t));
            for (uint64_t i = 0; i < kKeysPerThread; ++i) {
                const uint64_t key = i % 50 + 1;  // deliberate overlap
                FrameHeader header;
                std::vector<uint8_t> payload;
                if (!cache.Lookup(key, &header, &payload))
                    cache.Insert(key,
                                 ResponseHeader(1, key, p.size()),
                                 p.data(), p.size());
            }
        });
    for (auto &t : threads)
        t.join();

    const DedupCache::Stats stats = cache.stats();
    // 50 distinct keys, first committer wins, capacity never exceeded.
    EXPECT_EQ(stats.entries, 50u);
    EXPECT_EQ(stats.insertions, 50u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(stats.hits + stats.misses,
              static_cast<uint64_t>(kThreads) * kKeysPerThread);
}

}  // namespace
}  // namespace protoacc::rpc
