#include "rpc/dedup_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace protoacc::rpc {
namespace {

FrameHeader
ResponseHeader(uint32_t call_id, uint64_t key, size_t payload_bytes)
{
    FrameHeader h;
    h.call_id = call_id;
    h.method_id = 1;
    h.kind = FrameKind::kResponse;
    h.idempotency_key = key;
    h.payload_bytes = static_cast<uint32_t>(payload_bytes);
    return h;
}

std::vector<uint8_t>
Payload(const std::string &s)
{
    return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(DedupCacheTest, MissThenHitRoundTripsTheCommittedResponse)
{
    DedupCache cache(8);
    FrameHeader header;
    std::vector<uint8_t> payload;
    EXPECT_FALSE(cache.Lookup(42, &header, &payload));

    const std::vector<uint8_t> committed = Payload("answer");
    cache.Insert(42, ResponseHeader(7, 42, committed.size()),
                 committed.data(), committed.size());

    ASSERT_TRUE(cache.Lookup(42, &header, &payload));
    EXPECT_EQ(header.call_id, 7u);
    EXPECT_EQ(header.idempotency_key, 42u);
    EXPECT_EQ(payload, committed);

    const DedupCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.insertions, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(DedupCacheTest, KeyZeroIsNeverCachedAndNeverCountsAsMiss)
{
    DedupCache cache(8);
    const std::vector<uint8_t> p = Payload("x");
    cache.Insert(0, ResponseHeader(1, 0, p.size()), p.data(), p.size());
    FrameHeader header;
    std::vector<uint8_t> payload;
    EXPECT_FALSE(cache.Lookup(0, &header, &payload));
    const DedupCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.insertions, 0u);
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.entries, 0u);
}

TEST(DedupCacheTest, FirstCommittedAnswerWins)
{
    DedupCache cache(8);
    const std::vector<uint8_t> first = Payload("first");
    const std::vector<uint8_t> second = Payload("second");
    cache.Insert(5, ResponseHeader(1, 5, first.size()), first.data(),
                 first.size());
    cache.Insert(5, ResponseHeader(2, 5, second.size()), second.data(),
                 second.size());

    FrameHeader header;
    std::vector<uint8_t> payload;
    ASSERT_TRUE(cache.Lookup(5, &header, &payload));
    EXPECT_EQ(payload, first);
    EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(DedupCacheTest, FifoEvictionHoldsTheBound)
{
    DedupCache cache(2);
    const std::vector<uint8_t> p = Payload("p");
    for (uint64_t key = 1; key <= 3; ++key)
        cache.Insert(key, ResponseHeader(1, key, p.size()), p.data(),
                     p.size());

    FrameHeader header;
    std::vector<uint8_t> payload;
    // Key 1 was the oldest entry — evicted when key 3 arrived.
    EXPECT_FALSE(cache.Lookup(1, &header, &payload));
    EXPECT_TRUE(cache.Lookup(2, &header, &payload));
    EXPECT_TRUE(cache.Lookup(3, &header, &payload));

    const DedupCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.capacity, 2u);
}

TEST(DedupCacheTest, CapacityZeroDisablesTheCache)
{
    DedupCache cache(0);
    const std::vector<uint8_t> p = Payload("p");
    cache.Insert(9, ResponseHeader(1, 9, p.size()), p.data(), p.size());
    FrameHeader header;
    std::vector<uint8_t> payload;
    EXPECT_FALSE(cache.Lookup(9, &header, &payload));
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(DedupCacheTest, ConcurrentInsertAndLookupAreSafe)
{
    // Many workers share one runtime-wide cache; hammer it from
    // several threads (the TSan job runs this) and check the counters
    // stay coherent.
    DedupCache cache(64);
    constexpr int kThreads = 4;
    constexpr uint64_t kKeysPerThread = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&cache, t] {
            const std::vector<uint8_t> p =
                Payload("thread-" + std::to_string(t));
            for (uint64_t i = 0; i < kKeysPerThread; ++i) {
                const uint64_t key = i % 50 + 1;  // deliberate overlap
                FrameHeader header;
                std::vector<uint8_t> payload;
                if (!cache.Lookup(key, &header, &payload))
                    cache.Insert(key,
                                 ResponseHeader(1, key, p.size()),
                                 p.data(), p.size());
            }
        });
    for (auto &t : threads)
        t.join();

    const DedupCache::Stats stats = cache.stats();
    // 50 distinct keys, first committer wins, capacity never exceeded.
    EXPECT_EQ(stats.entries, 50u);
    EXPECT_EQ(stats.insertions, 50u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(stats.hits + stats.misses,
              static_cast<uint64_t>(kThreads) * kKeysPerThread);
}

}  // namespace
}  // namespace protoacc::rpc
