/**
 * @file
 * Differential tests for the offloaded RPC datapath: the frame-engine
 * path must be byte-identical on the wire and dedup-equivalent to the
 * host path, across clean traffic, error frames, CRC rejects, retry
 * replay and mid-pipeline worker kills — offload moves cost accounting
 * and queueing, never bytes or verdicts.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <vector>

#include "proto/schema_parser.h"
#include "rpc/server_runtime.h"

namespace protoacc::rpc {
namespace {

using proto::DescriptorPool;
using proto::Message;

/// Which serving datapath a run models.
enum class Path
{
    kHost,
    kOffloadRocc,
    kOffloadPcie,
};

class OffloadDifferentialTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto parsed = ParseSchema(R"(
            message EchoRequest {
                optional string text = 1;
                optional uint32 tag = 2;
            }
            message EchoResponse {
                optional string text = 1;
                optional uint32 tag = 2;
            }
        )",
                                        &pool_);
        ASSERT_TRUE(parsed.ok) << parsed.error;
        pool_.Compile(proto::HasbitsMode::kSparse);
        req_ = pool_.FindMessage("EchoRequest");
        rsp_ = pool_.FindMessage("EchoResponse");
    }

    Handler
    EchoHandler()
    {
        return [this](const Message &request, Message response) {
            const auto &rd = pool_.message(req_);
            const auto &sd = pool_.message(rsp_);
            response.SetString(
                *sd.FindFieldByName("text"),
                request.GetString(*rd.FindFieldByName("text")));
            response.SetUint32(
                *sd.FindFieldByName("tag"),
                request.GetUint32(*rd.FindFieldByName("tag")));
            executions_.fetch_add(1, std::memory_order_relaxed);
        };
    }

    /// Hybrid backends (accelerated primary + software fallback): the
    /// host cost sink is the fallback's CPU model, which is where host
    /// framing charges become observable.
    RpcServerRuntime::BackendFactory
    HybridFactory()
    {
        return [this](uint32_t) {
            return std::make_unique<HybridCodecBackend>(
                std::make_unique<AcceleratedBackend>(pool_),
                std::make_unique<SoftwareBackend>(cpu::BoomParams(),
                                                  pool_));
        };
    }

    std::vector<uint8_t>
    RequestWire(uint32_t tag, const std::string &text)
    {
        proto::Arena arena;
        Message request = Message::Create(&arena, pool_, req_);
        const auto &rd = pool_.message(req_);
        request.SetString(*rd.FindFieldByName("text"), text);
        request.SetUint32(*rd.FindFieldByName("tag"), tag);
        return proto::Serialize(request, nullptr);
    }

    /// Submit @p calls echo requests (call_id 1..calls) before Start,
    /// so batch boundaries are deterministic across runs.
    void
    SubmitEchoes(RpcServerRuntime *runtime, uint32_t calls,
                 uint16_t method_id = 1, uint64_t key_base = 0)
    {
        for (uint32_t i = 1; i <= calls; ++i) {
            const std::vector<uint8_t> wire =
                RequestWire(i, "payload-" + std::to_string(i));
            FrameHeader h;
            h.call_id = i;
            h.method_id = method_id;
            h.kind = FrameKind::kRequest;
            h.payload_bytes = static_cast<uint32_t>(wire.size());
            if (key_base != 0)
                h.idempotency_key = key_base + i;
            ASSERT_EQ(runtime->Submit(h, wire.data()),
                      StatusCode::kOk);
        }
    }

    RuntimeConfig
    PathConfig(Path path, accel::SharedAccelQueue *queue)
    {
        RuntimeConfig config;
        config.num_workers = 1;
        config.max_batch = 8;
        config.shared_accel = queue;
        // Symmetric comparison: the host path prices ingress framing
        // on the host model, the offload paths on the frame engine.
        config.charge_ingress_framing = true;
        config.offload.enabled = path != Path::kHost;
        return config;
    }

    static accel::SharedQueueConfig
    QueueConfig(Path path)
    {
        accel::SharedQueueConfig qc;
        if (path == Path::kOffloadPcie)
            qc.transfer.placement = accel::Placement::kPCIe;
        return qc;
    }

    /// One full serving run; returns the concatenated reply streams.
    struct RunResult
    {
        std::vector<uint8_t> wire;
        RuntimeSnapshot snap;
        uint64_t executions = 0;
        double modeled_span_ns = 0;
    };

    RunResult
    RunEchoes(Path path, uint32_t calls, uint32_t workers = 1,
              uint64_t key_base = 0, uint32_t duplicates = 0)
    {
        executions_.store(0, std::memory_order_relaxed);
        accel::SharedQueueConfig qc = QueueConfig(path);
        accel::SharedAccelQueue queue(qc);
        RuntimeConfig config = PathConfig(path, &queue);
        config.num_workers = workers;
        if (key_base != 0) {
            config.dedup_capacity = 1024;
        }
        RpcServerRuntime runtime(&pool_, HybridFactory(), config);
        runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
        SubmitEchoes(&runtime, calls, 1, key_base);
        runtime.Start();
        runtime.Drain();
        // Retry replay: re-submit the first `duplicates` calls with
        // their original idempotency keys but fresh call ids — the
        // dedup cache must serve them without re-executing.
        for (uint32_t i = 1; i <= duplicates; ++i) {
            const std::vector<uint8_t> wire =
                RequestWire(i, "payload-" + std::to_string(i));
            FrameHeader h;
            h.call_id = 100'000 + i;
            h.method_id = 1;
            h.kind = FrameKind::kRequest;
            h.payload_bytes = static_cast<uint32_t>(wire.size());
            h.idempotency_key = key_base + i;
            EXPECT_EQ(runtime.Submit(h, wire.data()), StatusCode::kOk);
        }
        if (duplicates > 0)
            runtime.Drain();
        RunResult r;
        for (uint32_t w = 0; w < runtime.num_workers(); ++w) {
            const FrameBuffer &replies = runtime.replies(w);
            r.wire.insert(r.wire.end(), replies.data(),
                          replies.data() + replies.bytes());
        }
        r.snap = runtime.Snapshot();
        r.executions = executions_.load(std::memory_order_relaxed);
        r.modeled_span_ns = r.snap.modeled_span_ns;
        return r;
    }

    DescriptorPool pool_;
    std::atomic<uint64_t> executions_{0};
    int req_ = -1;
    int rsp_ = -1;
};

TEST_F(OffloadDifferentialTest, WireBytesIdenticalAcrossAllThreePaths)
{
    constexpr uint32_t kCalls = 32;
    const RunResult host = RunEchoes(Path::kHost, kCalls);
    const RunResult rocc = RunEchoes(Path::kOffloadRocc, kCalls);
    const RunResult pcie = RunEchoes(Path::kOffloadPcie, kCalls);

    ASSERT_EQ(host.wire.size(), rocc.wire.size());
    EXPECT_EQ(std::memcmp(host.wire.data(), rocc.wire.data(),
                          host.wire.size()),
              0);
    ASSERT_EQ(host.wire.size(), pcie.wire.size());
    EXPECT_EQ(std::memcmp(host.wire.data(), pcie.wire.data(),
                          host.wire.size()),
              0);
    EXPECT_EQ(host.snap.calls, kCalls);
    EXPECT_EQ(rocc.snap.calls, kCalls);
    EXPECT_EQ(host.snap.failures, 0u);
    EXPECT_EQ(rocc.snap.failures, 0u);
}

TEST_F(OffloadDifferentialTest, OffloadChargesZeroHostFramingCycles)
{
    constexpr uint32_t kCalls = 24;
    // Host path: every frame's header/CRC work lands on the host model
    // (the hybrid's software half — its codec ops all ran on the
    // device, so any software cycles are framing charges).
    const RunResult host = RunEchoes(Path::kHost, kCalls);
    ASSERT_EQ(host.snap.fallback_accel_fault, 0u);
    ASSERT_EQ(host.snap.fallback_forced, 0u);
    // codec_cycles = accel + software * ratio; accel-only would make
    // the worker's codec cycles equal its accel share. Host framing
    // makes it strictly larger.
    EXPECT_EQ(host.snap.offload_frame_headers, 0u);
    EXPECT_EQ(host.snap.offload_crc_ops, 0u);
    EXPECT_DOUBLE_EQ(host.snap.offload_frame_cycles, 0.0);

    // Offload: the frame engine absorbs all of it; the host sink sees
    // zero framing ops.
    const RunResult rocc = RunEchoes(Path::kOffloadRocc, kCalls);
    ASSERT_EQ(rocc.snap.fallback_accel_fault, 0u);
    ASSERT_EQ(rocc.snap.fallback_forced, 0u);
    // Ingress parse + egress stamp: two header ops and two CRC ops per
    // call, every one on the device.
    EXPECT_EQ(rocc.snap.offload_frame_headers, 2ull * kCalls);
    EXPECT_EQ(rocc.snap.offload_crc_ops, 2ull * kCalls);
    EXPECT_GT(rocc.snap.offload_frame_cycles, 0.0);
    // With every framing charge moved off the host model, the hybrid's
    // software half priced nothing: worker codec cycles == accel-only
    // cycles. The host run carries the framing premium on top.
    const double host_sw =
        host.snap.workers[0].codec_cycles -
        host.snap.workers[0].frame_engine_cycles;  // engine is 0 here
    const double rocc_sw = rocc.snap.workers[0].codec_cycles;
    EXPECT_LT(rocc_sw, host_sw);
}

TEST_F(OffloadDifferentialTest, DedupEquivalentUnderRetryReplay)
{
    constexpr uint32_t kCalls = 16;
    constexpr uint32_t kDuplicates = 6;
    constexpr uint64_t kKeyBase = 0x5EED0000;
    const RunResult host =
        RunEchoes(Path::kHost, kCalls, 1, kKeyBase, kDuplicates);
    const RunResult rocc =
        RunEchoes(Path::kOffloadRocc, kCalls, 1, kKeyBase, kDuplicates);

    // Same dedup verdicts: every duplicate was served from the cache
    // on both paths, and the handler ran exactly once per logical call.
    EXPECT_EQ(host.snap.dedup_hits, kDuplicates);
    EXPECT_EQ(rocc.snap.dedup_hits, kDuplicates);
    EXPECT_EQ(host.snap.dedup_insertions, rocc.snap.dedup_insertions);
    EXPECT_EQ(host.executions, kCalls);
    EXPECT_EQ(rocc.executions, kCalls);
    // The offload path probed the device-resident key mirror: one
    // lookup per keyed request plus one insert per committed call.
    EXPECT_EQ(rocc.snap.offload_dedup_probes,
              static_cast<uint64_t>(kCalls + kDuplicates) + kCalls);
    EXPECT_EQ(host.snap.offload_dedup_probes, 0u);
}

TEST_F(OffloadDifferentialTest, ErrorFramesByteIdenticalAndPriced)
{
    // Calls to an unregistered method synthesize error frames; the
    // offload path must produce identical bytes and count the
    // synthesis on the engine.
    constexpr uint32_t kCalls = 8;
    auto run_bad_method = [&](Path path) {
        accel::SharedQueueConfig qc = QueueConfig(path);
        accel::SharedAccelQueue queue(qc);
        RuntimeConfig config = PathConfig(path, &queue);
        RpcServerRuntime runtime(&pool_, HybridFactory(), config);
        runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
        SubmitEchoes(&runtime, kCalls, /*method_id=*/77);
        runtime.Start();
        runtime.Drain();
        RunResult r;
        const FrameBuffer &replies = runtime.replies(0);
        r.wire.assign(replies.data(), replies.data() + replies.bytes());
        // The error frames themselves scan clean, kind/status intact.
        size_t offset = 0;
        uint32_t errors = 0;
        while (const auto f = replies.Next(&offset)) {
            EXPECT_EQ(f->header.kind, FrameKind::kError);
            EXPECT_EQ(f->header.status, StatusCode::kUnknownMethod);
            ++errors;
        }
        EXPECT_EQ(errors, kCalls);
        r.snap = runtime.Snapshot();
        return r;
    };
    const RunResult host = run_bad_method(Path::kHost);
    const RunResult rocc = run_bad_method(Path::kOffloadRocc);

    ASSERT_EQ(host.wire.size(), rocc.wire.size());
    EXPECT_EQ(std::memcmp(host.wire.data(), rocc.wire.data(),
                          host.wire.size()),
              0);
    EXPECT_EQ(host.snap.failures, kCalls);
    EXPECT_EQ(rocc.snap.failures, kCalls);
    EXPECT_EQ(rocc.snap.offload_error_frames, kCalls);
    EXPECT_EQ(host.snap.offload_error_frames, 0u);
}

TEST_F(OffloadDifferentialTest, CrcRejectVerdictsMatchHostPath)
{
    // A frame corrupted in flight must be rejected before the device
    // pipeline on both paths: same reject count, same served calls.
    auto run_with_corruption = [&](Path path) {
        accel::SharedQueueConfig qc = QueueConfig(path);
        accel::SharedAccelQueue queue(qc);
        RuntimeConfig config = PathConfig(path, &queue);
        RpcServerRuntime runtime(&pool_, HybridFactory(), config);
        runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
        runtime.Start();

        FrameBuffer ingress;
        for (uint32_t i = 1; i <= 4; ++i) {
            const std::vector<uint8_t> wire =
                RequestWire(i, "payload-" + std::to_string(i));
            FrameHeader h;
            h.call_id = i;
            h.method_id = 1;
            h.kind = FrameKind::kRequest;
            h.payload_bytes = static_cast<uint32_t>(wire.size());
            ingress.Append(h, wire.data());
        }
        // Flip a payload byte of the second frame.
        size_t offset = 0;
        ingress.Next(&offset);  // skip frame 1
        ingress.mutable_data()[offset + FrameHeader::kWireBytes] ^= 0x20;

        offset = 0;
        uint32_t rejects = 0;
        for (;;) {
            const size_t before = offset;
            const StatusCode st =
                runtime.SubmitFromStream(ingress, &offset);
            if (st == StatusCode::kDataLoss)
                ++rejects;
            if (offset == before)
                break;
        }
        runtime.Drain();
        RunResult r;
        r.snap = runtime.Snapshot();
        const FrameBuffer &replies = runtime.replies(0);
        r.wire.assign(replies.data(), replies.data() + replies.bytes());
        EXPECT_EQ(rejects, 1u);
        return r;
    };
    const RunResult host = run_with_corruption(Path::kHost);
    const RunResult rocc = run_with_corruption(Path::kOffloadRocc);

    EXPECT_EQ(host.snap.crc_rejects, 1u);
    EXPECT_EQ(rocc.snap.crc_rejects, 1u);
    // The corrupt frame never executed on either path; the three good
    // frames did.
    EXPECT_EQ(host.snap.calls, 3u);
    EXPECT_EQ(rocc.snap.calls, 3u);
    ASSERT_EQ(host.wire.size(), rocc.wire.size());
    EXPECT_EQ(std::memcmp(host.wire.data(), rocc.wire.data(),
                          host.wire.size()),
              0);
}

TEST_F(OffloadDifferentialTest, WorkerKillMidPipelineKeepsExactlyOnce)
{
    // An injected worker crash mid-batch with the offload datapath on:
    // stranded frames re-dispatch to survivors, the dedup cache blocks
    // re-execution, and every call is answered exactly once.
    constexpr uint32_t kCalls = 48;
    constexpr uint64_t kKeyBase = 0xD1E00000;
    sim::FaultConfig fc;
    fc.worker_kills.push_back({/*worker=*/1, /*after_calls=*/5});
    sim::FaultInjector injector(0xFEED, fc);

    accel::SharedQueueConfig qc = QueueConfig(Path::kOffloadRocc);
    accel::SharedAccelQueue queue(qc);
    RuntimeConfig config = PathConfig(Path::kOffloadRocc, &queue);
    config.num_workers = 3;
    config.dedup_capacity = 1024;
    config.fault_injector = &injector;
    RpcServerRuntime runtime(&pool_, HybridFactory(), config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
    SubmitEchoes(&runtime, kCalls, 1, kKeyBase);
    runtime.Start();
    runtime.Drain();

    const RuntimeSnapshot snap = runtime.Snapshot();
    EXPECT_EQ(snap.workers_crashed, 1u);
    EXPECT_GT(snap.redispatched_frames, 0u);

    // Exactly once: every call id answered, none twice, handler ran
    // once per call (0 wrong / 0 lost / 0 duplicated).
    std::map<uint32_t, uint32_t> replies_per_call;
    for (uint32_t w = 0; w < runtime.num_workers(); ++w) {
        const FrameBuffer &replies = runtime.replies(w);
        size_t offset = 0;
        while (const auto f = replies.Next(&offset)) {
            EXPECT_EQ(f->header.kind, FrameKind::kResponse);
            ++replies_per_call[f->header.call_id];
        }
    }
    EXPECT_EQ(replies_per_call.size(), kCalls);
    for (const auto &[call_id, n] : replies_per_call)
        EXPECT_EQ(n, 1u) << "call " << call_id;
    EXPECT_EQ(executions_.load(std::memory_order_relaxed), kCalls);
}

TEST_F(OffloadDifferentialTest, OffloadOutpacesHostAndPciePaysTransfer)
{
    // 4 workers contending for one shared unit: the pipelined offload
    // path must beat the host-fenced path on modeled span, and the
    // PCIe placement must pay a visible transfer premium over RoCC.
    constexpr uint32_t kCalls = 128;
    const RunResult host = RunEchoes(Path::kHost, kCalls, 4);
    const RunResult rocc = RunEchoes(Path::kOffloadRocc, kCalls, 4);
    const RunResult pcie = RunEchoes(Path::kOffloadPcie, kCalls, 4);

    EXPECT_LT(rocc.modeled_span_ns, host.modeled_span_ns);
    EXPECT_GT(pcie.modeled_span_ns, rocc.modeled_span_ns);
    EXPECT_EQ(host.snap.calls, kCalls);
    EXPECT_EQ(rocc.snap.calls, kCalls);
    EXPECT_EQ(pcie.snap.calls, kCalls);
}

}  // namespace
}  // namespace protoacc::rpc
