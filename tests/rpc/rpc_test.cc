#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "proto/schema_parser.h"
#include "rpc/rpc.h"

namespace protoacc::rpc {
namespace {

using proto::DescriptorPool;
using proto::Message;

TEST(FrameBuffer, AppendAndScan)
{
    FrameBuffer buf;
    const uint8_t payload[] = {1, 2, 3, 4, 5};
    FrameHeader h;
    h.payload_bytes = 5;
    h.call_id = 42;
    h.method_id = 7;
    h.kind = FrameKind::kRequest;
    const size_t added = buf.Append(h, payload);
    EXPECT_EQ(added, FrameHeader::kWireBytes + 5);

    h.call_id = 43;
    h.kind = FrameKind::kResponse;
    h.payload_bytes = 0;
    buf.Append(h, nullptr);

    size_t offset = 0;
    const auto f1 = buf.Next(&offset);
    ASSERT_TRUE(f1.has_value());
    EXPECT_EQ(f1->header.call_id, 42u);
    EXPECT_EQ(f1->header.method_id, 7u);
    EXPECT_EQ(f1->header.kind, FrameKind::kRequest);
    EXPECT_EQ(f1->payload[4], 5);

    const auto f2 = buf.Next(&offset);
    ASSERT_TRUE(f2.has_value());
    EXPECT_EQ(f2->header.call_id, 43u);
    EXPECT_EQ(f2->header.kind, FrameKind::kResponse);

    EXPECT_FALSE(buf.Next(&offset).has_value());  // exhausted
}

TEST(FrameBuffer, TruncatedFrameRejected)
{
    // Scan a buffer whose header claims more payload than exists.
    const uint8_t payload[] = {9, 9, 9};
    FrameBuffer lying;
    FrameHeader small;
    small.payload_bytes = 3;
    lying.Append(small, payload);
    // Corrupt the length field upward.
    const_cast<uint8_t *>(lying.data())[0] = 0xff;
    size_t offset = 0;
    EXPECT_FALSE(lying.Next(&offset).has_value());
}

TEST(FrameBuffer, TruncatedHeaderRejected)
{
    // A scan offset with fewer than kWireBytes remaining models a
    // partially delivered header: Next must refuse, not read past the
    // end.
    FrameBuffer buf;
    const uint8_t payload[] = {1, 2, 3, 4, 5};
    FrameHeader h;
    h.payload_bytes = 5;
    buf.Append(h, payload);
    ASSERT_EQ(buf.bytes(), FrameHeader::kWireBytes + 5);
    size_t offset = buf.bytes() - FrameHeader::kWireBytes + 1;
    EXPECT_FALSE(buf.Next(&offset).has_value());
    // The refusal must not advance the cursor.
    EXPECT_EQ(offset, buf.bytes() - FrameHeader::kWireBytes + 1);

    size_t at_end = buf.bytes();
    EXPECT_FALSE(buf.Next(&at_end).has_value());
}

TEST(FrameBuffer, PayloadBytesOverflowRejected)
{
    // A length field of 0xffffffff must be treated as truncation, not
    // wrap the offset arithmetic into a bogus in-bounds frame.
    FrameBuffer buf;
    const uint8_t payload[] = {7, 7, 7, 7};
    FrameHeader h;
    h.payload_bytes = 4;
    buf.Append(h, payload);
    uint8_t *raw = const_cast<uint8_t *>(buf.data());
    raw[0] = raw[1] = raw[2] = raw[3] = 0xff;
    size_t offset = 0;
    EXPECT_FALSE(buf.Next(&offset).has_value());
    EXPECT_EQ(offset, 0u);
}

TEST(FrameBuffer, ErrorFrameRoundTrip)
{
    FrameBuffer buf;
    const uint8_t detail[] = {'b', 'a', 'd'};
    FrameHeader h;
    h.payload_bytes = 3;
    h.call_id = 9;
    h.method_id = 99;
    h.kind = FrameKind::kError;
    buf.Append(h, detail);

    size_t offset = 0;
    const auto f = buf.Next(&offset);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->header.kind, FrameKind::kError);
    EXPECT_EQ(f->header.call_id, 9u);
    EXPECT_EQ(f->header.method_id, 99u);
    ASSERT_EQ(f->header.payload_bytes, 3u);
    EXPECT_EQ(0, std::memcmp(f->payload, detail, 3));
    EXPECT_FALSE(buf.Next(&offset).has_value());
}

TEST(FrameBuffer, ReserveCommitRoundTrip)
{
    FrameBuffer buf;
    FrameHeader h;
    h.payload_bytes = 0xdead;  // ignored: CommitFrame backpatches
    h.call_id = 5;
    h.kind = FrameKind::kResponse;
    uint8_t *slot = buf.ReserveFrame(h, 64);
    ASSERT_NE(slot, nullptr);
    EXPECT_EQ(buf.bytes(), FrameHeader::kWireBytes + 64);
    for (int i = 0; i < 10; ++i)
        slot[i] = static_cast<uint8_t>(i);
    buf.CommitFrame(10);
    // Committed size trims the stream and lands in the length field.
    EXPECT_EQ(buf.bytes(), FrameHeader::kWireBytes + 10);

    size_t offset = 0;
    const auto f = buf.Next(&offset);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->header.payload_bytes, 10u);
    EXPECT_EQ(f->header.call_id, 5u);
    EXPECT_EQ(f->header.kind, FrameKind::kResponse);
    EXPECT_EQ(f->payload[9], 9);

    // The in-place path performs no payload copies; Append does.
    EXPECT_EQ(buf.payload_copies(), 0u);
    const uint8_t tail[] = {1};
    FrameHeader t;
    t.payload_bytes = 1;
    buf.Append(t, tail);
    EXPECT_EQ(buf.payload_copies(), 1u);
    EXPECT_EQ(buf.payload_copy_bytes(), 1u);
}

TEST(FrameBuffer, ReserveCommitEmptyAndFull)
{
    FrameBuffer buf;
    FrameHeader h;
    uint8_t *slot = buf.ReserveFrame(h, 8);
    std::memset(slot, 0xab, 8);
    buf.CommitFrame(8);  // full capacity is legal
    buf.ReserveFrame(h, 32);
    buf.CommitFrame(0);  // empty frame is legal
    EXPECT_EQ(buf.bytes(), 2 * FrameHeader::kWireBytes + 8);

    size_t offset = 0;
    const auto f1 = buf.Next(&offset);
    ASSERT_TRUE(f1.has_value());
    EXPECT_EQ(f1->header.payload_bytes, 8u);
    const auto f2 = buf.Next(&offset);
    ASSERT_TRUE(f2.has_value());
    EXPECT_EQ(f2->header.payload_bytes, 0u);
    EXPECT_FALSE(buf.Next(&offset).has_value());
}

TEST(FrameBuffer, UnknownVersionRejectedAsUnimplemented)
{
    FrameBuffer buf;
    const uint8_t payload[] = {1, 2, 3};
    FrameHeader h;
    h.payload_bytes = 3;
    h.call_id = 4;
    h.version = FrameHeader::kFrameVersion + 1;
    buf.Append(h, payload);

    size_t offset = 0;
    StatusCode error = StatusCode::kOk;
    EXPECT_FALSE(buf.Next(&offset, &error).has_value());
    EXPECT_EQ(error, StatusCode::kUnimplemented);
    // A foreign version is a protocol mismatch, not corruption: the
    // scan refuses without advancing (the layout past the version byte
    // cannot be trusted).
    EXPECT_EQ(offset, 0u);
}

TEST(FrameBuffer, CorruptedFrameRejectedAsDataLossAndScanResyncs)
{
    FrameBuffer buf;
    const uint8_t first[] = {0xaa, 0xbb, 0xcc};
    const uint8_t second[] = {0x11};
    FrameHeader h;
    h.payload_bytes = 3;
    h.call_id = 1;
    buf.Append(h, first);
    h.payload_bytes = 1;
    h.call_id = 2;
    buf.Append(h, second);

    // Flip one payload byte of the first frame in flight.
    buf.mutable_data()[FrameHeader::kWireBytes + 1] ^= 0x40;

    size_t offset = 0;
    StatusCode error = StatusCode::kOk;
    EXPECT_FALSE(buf.Next(&offset, &error).has_value());
    EXPECT_EQ(error, StatusCode::kDataLoss);
    // The CRC reject advances past the bad frame so the scan resyncs on
    // the intact one behind it.
    const auto f = buf.Next(&offset, &error);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(error, StatusCode::kOk);
    EXPECT_EQ(f->header.call_id, 2u);
}

TEST(FrameBuffer, StrippedCrcFlagIsNotAVerificationBypass)
{
    // Corruption (or an attacker) clearing the has-CRC flag bit must
    // not cause the enforcing reader to skip verification and accept
    // the rest of the header on faith.
    FrameBuffer buf;
    const uint8_t payload[] = {1, 2, 3};
    FrameHeader h;
    h.payload_bytes = 3;
    h.call_id = 1;
    buf.Append(h, payload);
    buf.mutable_data()[13] &= ~FrameHeader::kFlagHasCrc;  // flags byte

    size_t offset = 0;
    StatusCode error = StatusCode::kOk;
    EXPECT_FALSE(buf.Next(&offset, &error).has_value());
    EXPECT_EQ(error, StatusCode::kDataLoss);
    EXPECT_EQ(offset, FrameHeader::kWireBytes + 3);
}

TEST(FrameBuffer, CrcDisabledServesCorruptionSilently)
{
    // The pre-integrity stack: corruption sails through the scan. This
    // is the baseline chaos_soak quantifies (BENCH_chaos.json crc_off).
    FrameBuffer buf;
    buf.set_crc_enabled(false);
    const uint8_t payload[] = {0xaa, 0xbb, 0xcc};
    FrameHeader h;
    h.payload_bytes = 3;
    h.call_id = 1;
    buf.Append(h, payload);
    buf.mutable_data()[FrameHeader::kWireBytes + 1] ^= 0x40;

    size_t offset = 0;
    StatusCode error = StatusCode::kOk;
    const auto f = buf.Next(&offset, &error);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(error, StatusCode::kOk);
    EXPECT_EQ(f->header.flags & FrameHeader::kFlagHasCrc, 0);
    EXPECT_EQ(f->payload[1], 0xbb ^ 0x40);  // corruption undetected
}

TEST(FrameBuffer, IdempotencyKeyAndFlagsRoundTrip)
{
    FrameBuffer buf;
    const uint8_t payload[] = {7};
    FrameHeader h;
    h.payload_bytes = 1;
    h.call_id = 3;
    h.idempotency_key = 0xDEADBEEF12345678ull;
    buf.Append(h, payload);

    size_t offset = 0;
    const auto f = buf.Next(&offset);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->header.idempotency_key, 0xDEADBEEF12345678ull);
    EXPECT_EQ(f->header.version, FrameHeader::kFrameVersion);
    EXPECT_NE(f->header.flags & FrameHeader::kFlagHasCrc, 0);
}

/// Counts OnCrc events (the integrity check's cost hook).
class CrcCountingSink : public proto::CostSink
{
  public:
    void
    OnCrc(size_t bytes) override
    {
        ++crcs;
        crc_bytes += bytes;
    }
    uint64_t crcs = 0;
    uint64_t crc_bytes = 0;
};

TEST(FrameBuffer, CrcChargesTheCostSink)
{
    CrcCountingSink sink;
    FrameBuffer buf;
    buf.SetCostSink(&sink);
    const uint8_t payload[] = {1, 2, 3, 4};
    FrameHeader h;
    h.payload_bytes = 4;
    buf.Append(h, payload);  // one CRC stamped
    EXPECT_EQ(sink.crcs, 1u);
    // Covers the CRC-protected header prefix plus the payload.
    EXPECT_EQ(sink.crc_bytes, FrameHeader::kCrcOffset + 4);

    size_t offset = 0;
    ASSERT_TRUE(buf.Next(&offset).has_value());  // one CRC verified
    EXPECT_EQ(sink.crcs, 2u);

    // Disabled => no stamp, no verify, no charge.
    buf.set_crc_enabled(false);
    buf.Append(h, payload);
    ASSERT_TRUE(buf.Next(&offset).has_value());
    EXPECT_EQ(sink.crcs, 2u);
}

TEST(SimulatedChannel, LatencyPlusBandwidth)
{
    SimulatedChannel ch{.latency_ns = 1000, .bytes_per_ns = 10};
    EXPECT_DOUBLE_EQ(ch.TransferNs(0), 1000.0);
    EXPECT_DOUBLE_EQ(ch.TransferNs(10000), 2000.0);
}

class RpcEndToEndTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto parsed = ParseSchema(R"(
            message EchoRequest {
                optional string text = 1;
                optional int32 repeat = 2 [default = 1];
            }
            message EchoResponse {
                optional string text = 1;
                optional uint32 length = 2;
            }
        )",
                                        &pool_);
        ASSERT_TRUE(parsed.ok) << parsed.error;
        pool_.Compile(proto::HasbitsMode::kSparse);
        req_ = pool_.FindMessage("EchoRequest");
        rsp_ = pool_.FindMessage("EchoResponse");
    }

    /// Echo handler: repeat the text N times.
    Handler
    EchoHandler()
    {
        return [this](const Message &request, Message response) {
            const auto &rd = pool_.message(req_);
            const auto &sd = pool_.message(rsp_);
            std::string out;
            const int n =
                request.GetInt32(*rd.FindFieldByName("repeat"));
            for (int i = 0; i < n; ++i)
                out += request.GetString(*rd.FindFieldByName("text"));
            response.SetString(*sd.FindFieldByName("text"), out);
            response.SetUint32(*sd.FindFieldByName("length"),
                               static_cast<uint32_t>(out.size()));
        };
    }

    /// Run a session with the given backends; returns the breakdown.
    RpcTimeBreakdown
    RunSession(std::unique_ptr<CodecBackend> client_backend,
               std::unique_ptr<CodecBackend> server_backend,
               int calls)
    {
        RpcServer server(&pool_, std::move(server_backend));
        server.RegisterMethod(1, req_, rsp_, EchoHandler());
        RpcSession session(&pool_, std::move(client_backend), &server,
                           SimulatedChannel{});

        proto::Arena arena;
        for (int i = 0; i < calls; ++i) {
            Message request = Message::Create(&arena, pool_, req_);
            const auto &rd = pool_.message(req_);
            request.SetString(*rd.FindFieldByName("text"),
                              "ping-" + std::to_string(i));
            request.SetInt32(*rd.FindFieldByName("repeat"), 3);
            Message response = Message::Create(&arena, pool_, rsp_);
            EXPECT_EQ(session.Call(1, request, &response),
                      StatusCode::kOk);
            const auto &sd = pool_.message(rsp_);
            EXPECT_EQ(response.GetUint32(*sd.FindFieldByName("length")),
                      3 * (std::string("ping-") + std::to_string(i))
                              .size());
        }
        return session.breakdown();
    }

    DescriptorPool pool_;
    int req_ = -1;
    int rsp_ = -1;
};

TEST_F(RpcEndToEndTest, SoftwareBackendsRoundTrip)
{
    const RpcTimeBreakdown b = RunSession(
        std::make_unique<SoftwareBackend>(cpu::BoomParams()),
        std::make_unique<SoftwareBackend>(cpu::BoomParams()), 20);
    EXPECT_EQ(b.calls, 20u);
    EXPECT_EQ(b.failures, 0u);
    EXPECT_GT(b.client_codec_ns, 0);
    EXPECT_GT(b.server_codec_ns, 0);
    EXPECT_GT(b.network_ns, 0);
}

TEST_F(RpcEndToEndTest, AcceleratedBackendsRoundTrip)
{
    const RpcTimeBreakdown b = RunSession(
        std::make_unique<AcceleratedBackend>(pool_),
        std::make_unique<AcceleratedBackend>(pool_), 20);
    EXPECT_EQ(b.calls, 20u);
    EXPECT_EQ(b.failures, 0u);
}

TEST_F(RpcEndToEndTest, AcceleratorShrinksCodecShare)
{
    const RpcTimeBreakdown sw = RunSession(
        std::make_unique<SoftwareBackend>(cpu::BoomParams()),
        std::make_unique<SoftwareBackend>(cpu::BoomParams()), 30);
    const RpcTimeBreakdown hw = RunSession(
        std::make_unique<AcceleratedBackend>(pool_),
        std::make_unique<AcceleratedBackend>(pool_), 30);
    // Same application + network; the accelerator only removes codec
    // time, so its codec share and total must both be lower.
    EXPECT_LT(hw.codec_share(), sw.codec_share());
    EXPECT_LT(hw.total_ns(), sw.total_ns());
    EXPECT_NEAR(hw.network_ns, sw.network_ns, 1e-6);
}

TEST_F(RpcEndToEndTest, MixedBackendsInteroperate)
{
    // Software client, accelerated server: the wire format is the
    // contract (§4: "wire-compatible with standard protobufs").
    const RpcTimeBreakdown b = RunSession(
        std::make_unique<SoftwareBackend>(cpu::XeonParams()),
        std::make_unique<AcceleratedBackend>(pool_), 15);
    EXPECT_EQ(b.failures, 0u);
}

TEST_F(RpcEndToEndTest, UnknownMethodYieldsErrorFrame)
{
    RpcServer server(&pool_,
                     std::make_unique<SoftwareBackend>(
                         cpu::BoomParams()));
    server.RegisterMethod(1, req_, rsp_, EchoHandler());
    RpcSession session(&pool_,
                       std::make_unique<SoftwareBackend>(
                           cpu::BoomParams()),
                       &server, SimulatedChannel{});
    proto::Arena arena;
    Message request = Message::Create(&arena, pool_, req_);
    Message response = Message::Create(&arena, pool_, rsp_);
    EXPECT_EQ(session.Call(99, request, &response),
              StatusCode::kUnknownMethod);
    EXPECT_EQ(session.last_error(), StatusCode::kUnknownMethod);
    EXPECT_EQ(session.breakdown().failures, 1u);
}

TEST_F(RpcEndToEndTest, LossyChannelRetriesExecuteExactlyOnce)
{
    RpcServer server(&pool_,
                     std::make_unique<SoftwareBackend>(
                         cpu::BoomParams()));
    std::atomic<uint64_t> executions{0};
    const Handler echo = EchoHandler();
    server.RegisterMethod(
        1, req_, rsp_,
        [echo, &executions](const Message &request, Message response) {
            executions.fetch_add(1, std::memory_order_relaxed);
            echo(request, response);
        });
    DedupCache dedup(256);
    server.SetDedupCache(&dedup);

    sim::FaultConfig fault_config;
    fault_config.frame_drop_rate = 0.25;
    sim::FaultInjector injector(0x10552, fault_config);

    RpcSession session(&pool_,
                       std::make_unique<SoftwareBackend>(
                           cpu::BoomParams()),
                       &server, SimulatedChannel{});
    session.SetFaultInjector(&injector);
    RetryPolicy policy;
    policy.max_attempts = 16;
    session.set_retry_policy(policy);

    constexpr int kCalls = 30;
    proto::Arena arena;
    const auto &rd = pool_.message(req_);
    const auto &sd = pool_.message(rsp_);
    for (int i = 0; i < kCalls; ++i) {
        Message request = Message::Create(&arena, pool_, req_);
        request.SetString(*rd.FindFieldByName("text"),
                          "ping-" + std::to_string(i));
        request.SetInt32(*rd.FindFieldByName("repeat"), 2);
        Message response = Message::Create(&arena, pool_, rsp_);
        ASSERT_EQ(session.Call(1, request, &response), StatusCode::kOk);
        EXPECT_EQ(response.GetString(*sd.FindFieldByName("text")),
                  "ping-" + std::to_string(i) + "ping-" +
                      std::to_string(i));
    }

    const RpcTimeBreakdown &b = session.breakdown();
    EXPECT_EQ(b.calls, static_cast<uint64_t>(kCalls));
    EXPECT_GT(b.attempts, b.calls);  // the channel really was lossy
    EXPECT_GT(b.retries, 0u);
    EXPECT_GT(b.backoff_ns, 0.0);
    // Exactly once: a request lost before the server never executes; a
    // response lost after execution re-sends, and the retry hits the
    // dedup cache instead of running the handler again.
    EXPECT_EQ(executions.load(), static_cast<uint64_t>(kCalls));
    EXPECT_GT(dedup.stats().hits, 0u);
}

TEST_F(RpcEndToEndTest, InFlightCorruptionIsDetectedAndRetried)
{
    RpcServer server(&pool_,
                     std::make_unique<SoftwareBackend>(
                         cpu::BoomParams()));
    server.RegisterMethod(1, req_, rsp_, EchoHandler());

    sim::FaultConfig fault_config;
    fault_config.frame_corrupt_rate = 0.5;
    sim::FaultInjector injector(0xC0DE, fault_config);

    RpcSession session(&pool_,
                       std::make_unique<SoftwareBackend>(
                           cpu::BoomParams()),
                       &server, SimulatedChannel{});
    session.SetFaultInjector(&injector);
    RetryPolicy policy;
    policy.max_attempts = 16;
    session.set_retry_policy(policy);

    constexpr int kCalls = 20;
    proto::Arena arena;
    const auto &rd = pool_.message(req_);
    const auto &sd = pool_.message(rsp_);
    for (int i = 0; i < kCalls; ++i) {
        Message request = Message::Create(&arena, pool_, req_);
        request.SetString(*rd.FindFieldByName("text"),
                          "x-" + std::to_string(i));
        request.SetInt32(*rd.FindFieldByName("repeat"), 1);
        Message response = Message::Create(&arena, pool_, rsp_);
        ASSERT_EQ(session.Call(1, request, &response), StatusCode::kOk);
        // Every served answer is intact: corruption is detected by the
        // frame CRC (kDataLoss => retry), never parsed and served.
        EXPECT_EQ(response.GetString(*sd.FindFieldByName("text")),
                  "x-" + std::to_string(i));
    }

    const RpcTimeBreakdown &b = session.breakdown();
    EXPECT_EQ(b.calls, static_cast<uint64_t>(kCalls));
    EXPECT_GT(b.integrity_rejects, 0u);
    EXPECT_EQ(b.failures, 0u);
}

TEST_F(RpcEndToEndTest, ResponseCrcRejectFiresIncidentReporter)
{
    // A response frame failing its CRC implicates the server-side
    // device that serialized it; the session's reject hook is how that
    // observation feeds ReportDeviceIncident without per-call wiring.
    RpcServer server(&pool_,
                     std::make_unique<SoftwareBackend>(
                         cpu::BoomParams()));
    server.RegisterMethod(1, req_, rsp_, EchoHandler());

    sim::FaultConfig fault_config;
    fault_config.frame_corrupt_rate = 0.5;
    sim::FaultInjector injector(0xC0DE, fault_config);

    RpcSession session(&pool_,
                       std::make_unique<SoftwareBackend>(
                           cpu::BoomParams()),
                       &server, SimulatedChannel{});
    session.SetFaultInjector(&injector);
    RetryPolicy policy;
    policy.max_attempts = 16;
    session.set_retry_policy(policy);
    uint64_t reported = 0;
    session.SetCrcRejectReporter([&reported] { ++reported; });

    constexpr int kCalls = 20;
    proto::Arena arena;
    const auto &rd = pool_.message(req_);
    for (int i = 0; i < kCalls; ++i) {
        Message request = Message::Create(&arena, pool_, req_);
        request.SetString(*rd.FindFieldByName("text"),
                          "x-" + std::to_string(i));
        request.SetInt32(*rd.FindFieldByName("repeat"), 1);
        Message response = Message::Create(&arena, pool_, rsp_);
        ASSERT_EQ(session.Call(1, request, &response), StatusCode::kOk);
    }

    const RpcTimeBreakdown &b = session.breakdown();
    // Reply-side rejects fired the reporter; request-side rejects (the
    // client's own frame mangled en route) must not — they say nothing
    // about the server's device — so the report count sits strictly
    // inside the total integrity-reject count for this seed.
    EXPECT_GT(reported, 0u);
    EXPECT_LT(reported, b.integrity_rejects);
}

}  // namespace
}  // namespace protoacc::rpc
