#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <thread>

#include "proto/schema_parser.h"
#include "rpc/server_runtime.h"

namespace protoacc::rpc {
namespace {

using proto::DescriptorPool;
using proto::Message;

class ServerRuntimeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto parsed = ParseSchema(R"(
            message EchoRequest {
                optional string text = 1;
                optional uint32 tag = 2;
            }
            message EchoResponse {
                optional string text = 1;
                optional uint32 tag = 2;
            }
        )",
                                        &pool_);
        ASSERT_TRUE(parsed.ok) << parsed.error;
        pool_.Compile(proto::HasbitsMode::kSparse);
        req_ = pool_.FindMessage("EchoRequest");
        rsp_ = pool_.FindMessage("EchoResponse");
    }

    /// Thread-safe echo handler: copies text and tag through.
    Handler
    EchoHandler()
    {
        return [this](const Message &request, Message response) {
            const auto &rd = pool_.message(req_);
            const auto &sd = pool_.message(rsp_);
            response.SetString(
                *sd.FindFieldByName("text"),
                request.GetString(*rd.FindFieldByName("text")));
            response.SetUint32(
                *sd.FindFieldByName("tag"),
                request.GetUint32(*rd.FindFieldByName("tag")));
        };
    }

    RpcServerRuntime::BackendFactory
    SoftwareFactory()
    {
        return [this](uint32_t) {
            return std::make_unique<SoftwareBackend>(cpu::BoomParams(),
                                                     pool_);
        };
    }

    RpcServerRuntime::BackendFactory
    AcceleratedFactory()
    {
        return [this](uint32_t) {
            return std::make_unique<AcceleratedBackend>(pool_);
        };
    }

    /// Serialize one echo request (functional only, no cost model).
    std::vector<uint8_t>
    RequestWire(uint32_t tag, const std::string &text)
    {
        proto::Arena arena;
        Message request = Message::Create(&arena, pool_, req_);
        const auto &rd = pool_.message(req_);
        request.SetString(*rd.FindFieldByName("text"), text);
        request.SetUint32(*rd.FindFieldByName("tag"), tag);
        return proto::Serialize(request, nullptr);
    }

    /// Submit @p calls echo requests with call_id = 1..calls.
    void
    SubmitEchoes(RpcServerRuntime *runtime, uint32_t calls)
    {
        for (uint32_t i = 1; i <= calls; ++i) {
            const std::vector<uint8_t> wire =
                RequestWire(i, "payload-" + std::to_string(i));
            FrameHeader h;
            h.call_id = i;
            h.method_id = 1;
            h.kind = FrameKind::kRequest;
            h.payload_bytes = static_cast<uint32_t>(wire.size());
            runtime->Submit(h, wire.data());
        }
    }

    DescriptorPool pool_;
    int req_ = -1;
    int rsp_ = -1;
};

TEST_F(ServerRuntimeTest, EveryCallGetsItsReply)
{
    RuntimeConfig config;
    config.num_workers = 4;
    RpcServerRuntime runtime(&pool_, SoftwareFactory(), config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
    runtime.Start();
    constexpr uint32_t kCalls = 64;
    SubmitEchoes(&runtime, kCalls);
    runtime.Drain();

    // Decode every reply stream and match responses to call ids.
    std::map<uint32_t, std::string> texts;
    proto::Arena arena;
    const auto &sd = pool_.message(rsp_);
    for (uint32_t wkr = 0; wkr < runtime.num_workers(); ++wkr) {
        const FrameBuffer &replies = runtime.replies(wkr);
        size_t offset = 0;
        while (const auto frame = replies.Next(&offset)) {
            EXPECT_EQ(frame->header.kind, FrameKind::kResponse);
            Message response = Message::Create(&arena, pool_, rsp_);
            ASSERT_EQ(proto::ParseFromBuffer(frame->payload,
                                             frame->header.payload_bytes,
                                             &response, nullptr),
                      proto::ParseStatus::kOk);
            EXPECT_EQ(response.GetUint32(*sd.FindFieldByName("tag")),
                      frame->header.call_id);
            texts[frame->header.call_id] = std::string(
                response.GetString(*sd.FindFieldByName("text")));
        }
    }
    ASSERT_EQ(texts.size(), kCalls);
    for (uint32_t i = 1; i <= kCalls; ++i)
        EXPECT_EQ(texts[i], "payload-" + std::to_string(i));

    const RuntimeSnapshot snap = runtime.Snapshot();
    EXPECT_EQ(snap.calls, kCalls);
    EXPECT_EQ(snap.failures, 0u);
}

TEST_F(ServerRuntimeTest, ModeledQpsScalesWithWorkers)
{
    constexpr uint32_t kCalls = 256;
    auto run = [&](uint32_t workers) {
        RuntimeConfig config;
        config.num_workers = workers;
        RpcServerRuntime runtime(&pool_, SoftwareFactory(), config);
        runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
        runtime.Start();
        SubmitEchoes(&runtime, kCalls);
        runtime.Drain();
        return runtime.Snapshot().modeled_qps();
    };
    const double qps1 = run(1);
    const double qps4 = run(4);
    EXPECT_GT(qps1, 0);
    // The acceptance bar for the serving runtime: software backends
    // model one core per worker, so 4 workers must deliver at least
    // 2.5x the single-worker modeled QPS (ideal is ~4x minus shard
    // imbalance).
    EXPECT_GE(qps4, 2.5 * qps1);
}

TEST_F(ServerRuntimeTest, SteadyStateHasNoPerCallArenasOrCopies)
{
    RuntimeConfig config;
    config.num_workers = 2;
    RpcServerRuntime runtime(&pool_, SoftwareFactory(), config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
    runtime.Start();

    // Warm up, then observe the steady state.
    SubmitEchoes(&runtime, 32);
    runtime.Drain();
    const RuntimeSnapshot warm = runtime.Snapshot();

    SubmitEchoes(&runtime, 200);
    runtime.Drain();
    const RuntimeSnapshot snap = runtime.Snapshot();

    // One arena per worker, ever — never one per call.
    EXPECT_EQ(snap.arena_constructions, 2u);
    for (size_t i = 0; i < snap.workers.size(); ++i) {
        const WorkerSnapshot &w = snap.workers[i];
        // The response path serializes in place: the reply stream saw
        // zero payload memcpys across all calls.
        EXPECT_EQ(w.reply_payload_copies, 0u);
        // Arena::Reset reuse: the warm working set fits the first
        // block, so no new blocks appear under load.
        EXPECT_EQ(w.arena_blocks, 1u);
        EXPECT_EQ(w.arena_bytes_reserved,
                  warm.workers[i].arena_bytes_reserved);
    }
    EXPECT_EQ(snap.failures, 0u);
}

TEST_F(ServerRuntimeTest, SharedAcceleratorQueueAddsDelayUnderLoad)
{
    constexpr uint32_t kCalls = 96;
    auto run = [&](uint32_t workers, accel::SharedAccelQueue *queue) {
        RuntimeConfig config;
        config.num_workers = workers;
        config.max_batch = 8;
        config.shared_accel = queue;
        RpcServerRuntime runtime(&pool_, AcceleratedFactory(), config);
        runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
        runtime.Start();
        SubmitEchoes(&runtime, kCalls);
        runtime.Drain();
        std::vector<double> lat = runtime.TakeLatencies();
        const double sum =
            std::accumulate(lat.begin(), lat.end(), 0.0);
        return sum / static_cast<double>(lat.size());
    };

    // One worker on the shared queue: closed loop, no contention.
    accel::SharedAccelQueue solo_queue;
    const double solo_ns = run(1, &solo_queue);
    EXPECT_EQ(solo_queue.stats().total_wait_cycles, 0u);

    // Four workers contending for one accelerator: queueing delay
    // appears and mean modeled latency rises.
    accel::SharedAccelQueue shared_queue;
    const double contended_ns = run(4, &shared_queue);
    EXPECT_GT(shared_queue.stats().total_wait_cycles, 0u);
    EXPECT_GT(shared_queue.stats().contended_batches, 0u);
    EXPECT_GT(contended_ns, solo_ns);
}

TEST_F(ServerRuntimeTest, ConcurrentSubmittersAreSafe)
{
    RuntimeConfig config;
    config.num_workers = 3;
    config.record_replies = false;
    RpcServerRuntime runtime(&pool_, SoftwareFactory(), config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
    runtime.Start();

    constexpr int kThreads = 4;
    constexpr uint32_t kPerThread = 64;
    const std::vector<uint8_t> wire = RequestWire(7, "concurrent");
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t)
        submitters.emplace_back([&runtime, &wire, t] {
            for (uint32_t i = 0; i < kPerThread; ++i) {
                FrameHeader h;
                h.call_id =
                    static_cast<uint32_t>(t) * kPerThread + i + 1;
                h.method_id = 1;
                h.kind = FrameKind::kRequest;
                h.payload_bytes = static_cast<uint32_t>(wire.size());
                runtime.Submit(h, wire.data());
            }
        });
    for (auto &t : submitters)
        t.join();
    runtime.Drain();
    const RuntimeSnapshot snap = runtime.Snapshot();
    EXPECT_EQ(snap.calls,
              static_cast<uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(snap.failures, 0u);
}

TEST_F(ServerRuntimeTest, UnknownMethodYieldsErrorFrameThroughRuntime)
{
    RuntimeConfig config;
    RpcServerRuntime runtime(&pool_, SoftwareFactory(), config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
    runtime.Start();
    const std::vector<uint8_t> wire = RequestWire(1, "x");
    FrameHeader h;
    h.call_id = 1;
    h.method_id = 99;  // not registered
    h.kind = FrameKind::kRequest;
    h.payload_bytes = static_cast<uint32_t>(wire.size());
    runtime.Submit(h, wire.data());
    runtime.Drain();

    EXPECT_EQ(runtime.Snapshot().failures, 1u);
    size_t offset = 0;
    const auto frame = runtime.replies(0).Next(&offset);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->header.kind, FrameKind::kError);
    EXPECT_EQ(frame->header.call_id, 1u);
}

TEST_F(ServerRuntimeTest, StreamingFrameWithoutReceiverIsUnimplemented)
{
    RuntimeConfig config;
    RpcServerRuntime runtime(&pool_, SoftwareFactory(), config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
    runtime.Start();
    FrameHeader h;
    h.kind = FrameKind::kStreamBegin;
    h.idempotency_key = 42;
    h.method_id = 1;
    uint8_t payload[StreamBeginInfo::kWireBytes];
    PackStreamBegin({1024, 128}, payload);
    h.payload_bytes = StreamBeginInfo::kWireBytes;
    EXPECT_EQ(runtime.Submit(h, payload), StatusCode::kUnimplemented);
    runtime.Drain();

    const RuntimeSnapshot snap = runtime.Snapshot();
    EXPECT_EQ(snap.stream_frames, 0u);
    EXPECT_EQ(snap.stream_buffer_bytes, 0u);
    EXPECT_EQ(snap.stream_buffer_peak_bytes, 0u);
}

TEST_F(ServerRuntimeTest, StreamingSnapshotReportsPeakMemory)
{
    RuntimeConfig config;
    config.num_workers = 2;
    RpcServerRuntime runtime(&pool_, SoftwareFactory(), config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());

    // Attach a streaming receiver: stream frames route to it and its
    // buffer gauge feeds the snapshot's high-water mark.
    StreamConfig stream_config;
    stream_config.chunk_bytes = 256;
    auto backend =
        std::make_unique<SoftwareBackend>(cpu::BoomParams(), pool_);
    class NullSink : public proto::StreamSink
    {
      public:
        proto::ParseStatus
        OnScalar(const proto::FieldDescriptor &, uint64_t) override
        {
            return proto::ParseStatus::kOk;
        }
    };
    StreamReceiver receiver(
        &pool_, backend.get(), stream_config,
        [](uint16_t, uint16_t) -> std::unique_ptr<proto::StreamSink> {
            return std::make_unique<NullSink>();
        });
    receiver.RegisterMethod(7, req_);
    runtime.AttachStreamReceiver(&receiver);
    runtime.Start();

    FrameHeader h;
    h.kind = FrameKind::kStreamBegin;
    h.idempotency_key = 42;
    h.method_id = 7;
    uint8_t payload[StreamBeginInfo::kWireBytes];
    PackStreamBegin({64 << 10, 256}, payload);
    h.payload_bytes = StreamBeginInfo::kWireBytes;
    ASSERT_EQ(runtime.Submit(h, payload), StatusCode::kOk);

    // A live stream holds a buffer reservation; some ordinary calls run
    // alongside it so worker arenas contribute too.
    SubmitEchoes(&runtime, 8);
    runtime.Drain();

    const RuntimeSnapshot snap = runtime.Snapshot();
    EXPECT_EQ(snap.stream_frames, 1u);
    EXPECT_GT(snap.stream_buffer_bytes, 0u);
    EXPECT_GE(snap.stream_buffer_peak_bytes, snap.stream_buffer_bytes);
    size_t arena_total = 0;
    for (const auto &w : snap.workers)
        arena_total += w.arena_bytes_reserved;
    EXPECT_GT(arena_total, 0u);
    EXPECT_EQ(snap.peak_memory_bytes,
              arena_total + snap.stream_buffer_peak_bytes);

    // Stream teardown releases the reservation; the high-water mark and
    // the peak-memory aggregate stay sticky.
    FrameHeader cancel;
    cancel.kind = FrameKind::kStreamCancel;
    cancel.idempotency_key = 42;
    cancel.method_id = 7;
    cancel.payload_bytes = 0;
    EXPECT_EQ(runtime.Submit(cancel, nullptr), StatusCode::kOk);
    const RuntimeSnapshot after = runtime.Snapshot();
    EXPECT_EQ(after.stream_buffer_bytes, 0u);
    EXPECT_EQ(after.stream_buffer_peak_bytes,
              snap.stream_buffer_peak_bytes);
    EXPECT_GE(after.peak_memory_bytes, after.stream_buffer_peak_bytes);
}

}  // namespace
}  // namespace protoacc::rpc
