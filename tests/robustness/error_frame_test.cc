/**
 * Structured error propagation (satellite of the robustness PR): the
 * server encodes the specific failure class into the error frame
 * (status byte + detail payload), and the client surfaces exactly that
 * code from Call() — including through channel faults and retries.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "proto/schema_parser.h"
#include "rpc/rpc.h"

namespace protoacc::rpc {
namespace {

using proto::DescriptorPool;
using proto::Message;

class ErrorFrameTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto parsed = proto::ParseSchema(R"(
            message Req {
                optional string text = 1;
            }
            message Rsp {
                optional string text = 1;
            }
        )",
                                               &pool_);
        ASSERT_TRUE(parsed.ok) << parsed.error;
        pool_.Compile(proto::HasbitsMode::kSparse);
        req_ = pool_.FindMessage("Req");
        rsp_ = pool_.FindMessage("Rsp");
    }

    std::unique_ptr<SoftwareBackend>
    Software()
    {
        return std::make_unique<SoftwareBackend>(cpu::BoomParams(),
                                                 pool_);
    }

    Handler
    Echo()
    {
        return [this](const Message &request, Message response) {
            const auto &rd = pool_.message(req_);
            const auto &sd = pool_.message(rsp_);
            response.SetString(
                *sd.FindFieldByName("text"),
                request.GetString(*rd.FindFieldByName("text")));
        };
    }

    DescriptorPool pool_;
    int req_ = -1;
    int rsp_ = -1;
};

TEST_F(ErrorFrameTest, ErrorFrameCarriesCodeAndDetailString)
{
    RpcServer server(&pool_, Software());
    server.RegisterMethod(1, req_, rsp_, Echo());

    // Malformed request payload: a truncated string field.
    const uint8_t bad[] = {0x0a, 0x7F, 'x'};
    Frame frame;
    frame.header.call_id = 9;
    frame.header.method_id = 1;
    frame.header.kind = FrameKind::kRequest;
    frame.header.payload_bytes = sizeof(bad);
    frame.payload = bad;

    FrameBuffer reply;
    const StatusCode st = server.HandleFrame(frame, &reply);
    EXPECT_EQ(st, StatusCode::kTruncated);

    size_t offset = 0;
    const auto out = reply.Next(&offset);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->header.kind, FrameKind::kError);
    EXPECT_EQ(out->header.call_id, 9u);
    EXPECT_EQ(out->header.status, StatusCode::kTruncated);
    // The detail payload is the human-readable code name.
    const std::string detail(
        reinterpret_cast<const char *>(out->payload),
        out->header.payload_bytes);
    EXPECT_EQ(detail, StatusCodeName(StatusCode::kTruncated));
}

TEST_F(ErrorFrameTest, EachFailureClassReachesTheClient)
{
    // kUnknownMethod: no such method registered.
    {
        RpcServer server(&pool_, Software());
        server.RegisterMethod(1, req_, rsp_, Echo());
        RpcSession session(&pool_, Software(), &server,
                           SimulatedChannel{});
        proto::Arena arena;
        Message request = Message::Create(&arena, pool_, req_);
        Message response = Message::Create(&arena, pool_, rsp_);
        EXPECT_EQ(session.Call(42, request, &response),
                  StatusCode::kUnknownMethod);
        EXPECT_EQ(session.last_error(), StatusCode::kUnknownMethod);
    }

    // kResourceExhausted: the server's parse limits reject the request.
    {
        RpcServer server(&pool_, Software());
        ParseLimits limits;
        limits.max_payload_bytes = 4;
        server.mutable_backend().SetParseLimits(limits);
        server.RegisterMethod(1, req_, rsp_, Echo());
        RpcSession session(&pool_, Software(), &server,
                           SimulatedChannel{});
        proto::Arena arena;
        Message request = Message::Create(&arena, pool_, req_);
        request.SetString(
            *pool_.message(req_).FindFieldByName("text"),
            std::string(100, 'y'));
        Message response = Message::Create(&arena, pool_, rsp_);
        EXPECT_EQ(session.Call(1, request, &response),
                  StatusCode::kResourceExhausted);
    }

    // kUnavailable: the channel drops every frame.
    {
        RpcServer server(&pool_, Software());
        server.RegisterMethod(1, req_, rsp_, Echo());
        RpcSession session(&pool_, Software(), &server,
                           SimulatedChannel{});
        sim::FaultConfig config;
        config.frame_drop_rate = 1.0;
        sim::FaultInjector injector(13, config);
        session.SetFaultInjector(&injector);
        proto::Arena arena;
        Message request = Message::Create(&arena, pool_, req_);
        Message response = Message::Create(&arena, pool_, rsp_);
        EXPECT_EQ(session.Call(1, request, &response),
                  StatusCode::kUnavailable);
        EXPECT_EQ(session.breakdown().failures, 1u);
    }
}

TEST_F(ErrorFrameTest, DeterministicRejectionsAreNotRetried)
{
    RpcServer server(&pool_, Software());
    server.RegisterMethod(1, req_, rsp_, Echo());
    RpcSession session(&pool_, Software(), &server,
                       SimulatedChannel{});
    RetryPolicy policy;
    policy.max_attempts = 5;
    session.set_retry_policy(policy);
    proto::Arena arena;
    Message request = Message::Create(&arena, pool_, req_);
    Message response = Message::Create(&arena, pool_, rsp_);
    // kUnknownMethod is not retryable: exactly one attempt, no backoff.
    EXPECT_EQ(session.Call(42, request, &response),
              StatusCode::kUnknownMethod);
    EXPECT_EQ(session.breakdown().attempts, 1u);
    EXPECT_EQ(session.breakdown().retries, 0u);
    EXPECT_EQ(session.breakdown().backoff_ns, 0.0);
}

TEST_F(ErrorFrameTest, TransientDropsAreRetriedWithBackoff)
{
    RpcServer server(&pool_, Software());
    server.RegisterMethod(1, req_, rsp_, Echo());
    RpcSession session(&pool_, Software(), &server,
                       SimulatedChannel{});
    sim::FaultConfig config;
    config.frame_drop_rate = 0.3;
    sim::FaultInjector injector(21, config);
    session.SetFaultInjector(&injector);
    RetryPolicy policy;
    policy.max_attempts = 10;
    session.set_retry_policy(policy);

    proto::Arena arena;
    const auto &rd = pool_.message(req_);
    for (int i = 0; i < 20; ++i) {
        Message request = Message::Create(&arena, pool_, req_);
        request.SetString(*rd.FindFieldByName("text"),
                          "r-" + std::to_string(i));
        Message response = Message::Create(&arena, pool_, rsp_);
        EXPECT_EQ(session.Call(1, request, &response), StatusCode::kOk)
            << "call " << i;
    }
    const RpcTimeBreakdown &b = session.breakdown();
    EXPECT_EQ(b.calls, 20u);
    EXPECT_EQ(b.failures, 0u);
    // A 30% drop rate over 20 calls must have triggered retries, and
    // every retry models a backoff sleep.
    EXPECT_GT(b.retries, 0u);
    EXPECT_GT(b.backoff_ns, 0.0);
    EXPECT_EQ(b.attempts, b.calls + b.retries);
}

TEST_F(ErrorFrameTest, ExhaustedRetriesSurfaceTheTransientCode)
{
    RpcServer server(&pool_, Software());
    server.RegisterMethod(1, req_, rsp_, Echo());
    RpcSession session(&pool_, Software(), &server,
                       SimulatedChannel{});
    sim::FaultConfig config;
    config.frame_drop_rate = 1.0;
    sim::FaultInjector injector(22, config);
    session.SetFaultInjector(&injector);
    RetryPolicy policy;
    policy.max_attempts = 4;
    session.set_retry_policy(policy);

    proto::Arena arena;
    Message request = Message::Create(&arena, pool_, req_);
    Message response = Message::Create(&arena, pool_, rsp_);
    EXPECT_EQ(session.Call(1, request, &response),
              StatusCode::kUnavailable);
    EXPECT_EQ(session.breakdown().attempts, 4u);
    EXPECT_EQ(session.breakdown().retries, 3u);
    EXPECT_GT(session.breakdown().backoff_ns, 0.0);
}

TEST_F(ErrorFrameTest, AccelFaultSurfacesAndRetriesHelpOnceHealthy)
{
    // A dead accelerator on the server rejects every attempt with
    // kAccelFault — which the client classifies as retryable.
    auto accel_backend = std::make_unique<AcceleratedBackend>(pool_);
    AcceleratedBackend *accel = accel_backend.get();
    RpcServer server(&pool_, std::move(accel_backend));
    server.RegisterMethod(1, req_, rsp_, Echo());
    RpcSession session(&pool_, Software(), &server,
                       SimulatedChannel{});
    RetryPolicy policy;
    policy.max_attempts = 3;
    session.set_retry_policy(policy);

    sim::FaultConfig config;
    config.unit_kill_rate = 1.0;
    sim::FaultInjector injector(23, config);
    accel->SetFaultInjector(&injector);

    proto::Arena arena;
    Message request = Message::Create(&arena, pool_, req_);
    request.SetString(*pool_.message(req_).FindFieldByName("text"),
                      "hello");
    Message response = Message::Create(&arena, pool_, rsp_);
    EXPECT_EQ(session.Call(1, request, &response),
              StatusCode::kAccelFault);
    EXPECT_TRUE(StatusIsRetryable(StatusCode::kAccelFault));
    EXPECT_EQ(session.breakdown().attempts, 3u);

    // The device recovers: the same session's next call succeeds.
    accel->SetFaultInjector(nullptr);
    EXPECT_EQ(session.Call(1, request, &response), StatusCode::kOk);
    const auto &sd = pool_.message(rsp_);
    EXPECT_EQ(response.GetString(*sd.FindFieldByName("text")), "hello");
}

TEST_F(ErrorFrameTest, CorruptedFramesNeverCrashEitherEndpoint)
{
    RpcServer server(&pool_, Software());
    server.RegisterMethod(1, req_, rsp_, Echo());
    RpcSession session(&pool_, Software(), &server,
                       SimulatedChannel{});
    sim::FaultConfig config;
    config.frame_corrupt_rate = 0.6;
    config.frame_truncate_rate = 0.2;
    sim::FaultInjector injector(24, config);
    session.SetFaultInjector(&injector);
    RetryPolicy policy;
    policy.max_attempts = 2;
    session.set_retry_policy(policy);

    proto::Arena arena;
    const auto &rd = pool_.message(req_);
    uint64_t ok = 0;
    for (int i = 0; i < 60; ++i) {
        Message request = Message::Create(&arena, pool_, req_);
        request.SetString(*rd.FindFieldByName("text"),
                          "payload-" + std::to_string(i));
        Message response = Message::Create(&arena, pool_, rsp_);
        ok += StatusOk(session.Call(1, request, &response));
    }
    // Under heavy corruption some calls still land; none may crash.
    EXPECT_GT(ok, 0u);
    EXPECT_LT(ok, 60u);
    EXPECT_EQ(session.breakdown().calls, 60u);
}

}  // namespace
}  // namespace protoacc::rpc
