/**
 * Degraded-mode serving (tentpole of the robustness PR): admission
 * control sheds under modeled overload, per-call deadlines are counted,
 * saturation forces the hybrid backend onto the software codec, unit
 * faults transparently fall back — and the shared-queue replay stays
 * deterministic with correct accounting through all of it.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "proto/schema_parser.h"
#include "rpc/server_runtime.h"
#include "sim/fault.h"

namespace protoacc::rpc {
namespace {

using proto::DescriptorPool;
using proto::Message;

class DegradedServingTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto parsed = proto::ParseSchema(R"(
            message EchoRequest {
                optional string text = 1;
                optional uint32 tag = 2;
            }
            message EchoResponse {
                optional string text = 1;
                optional uint32 tag = 2;
            }
        )",
                                               &pool_);
        ASSERT_TRUE(parsed.ok) << parsed.error;
        pool_.Compile(proto::HasbitsMode::kSparse);
        req_ = pool_.FindMessage("EchoRequest");
        rsp_ = pool_.FindMessage("EchoResponse");
    }

    Handler
    EchoHandler()
    {
        return [this](const Message &request, Message response) {
            const auto &rd = pool_.message(req_);
            const auto &sd = pool_.message(rsp_);
            response.SetString(
                *sd.FindFieldByName("text"),
                request.GetString(*rd.FindFieldByName("text")));
            response.SetUint32(
                *sd.FindFieldByName("tag"),
                request.GetUint32(*rd.FindFieldByName("tag")));
        };
    }

    RpcServerRuntime::BackendFactory
    SoftwareFactory()
    {
        return [this](uint32_t) {
            return std::make_unique<SoftwareBackend>(cpu::BoomParams(),
                                                     pool_);
        };
    }

    /// Hybrid backends; when @p injectors is non-null, one injector per
    /// worker (seeded seed + worker index) is created and attached to
    /// the accelerator half, so injected decisions replay per worker.
    RpcServerRuntime::BackendFactory
    HybridFactory(
        std::vector<std::unique_ptr<sim::FaultInjector>> *injectors,
        uint64_t seed, const sim::FaultConfig &fault_config)
    {
        return [this, injectors, seed,
                fault_config](uint32_t worker) {
            auto accel = std::make_unique<AcceleratedBackend>(pool_);
            if (injectors != nullptr) {
                injectors->push_back(
                    std::make_unique<sim::FaultInjector>(
                        seed + worker, fault_config));
                accel->SetFaultInjector(injectors->back().get());
            }
            return std::make_unique<HybridCodecBackend>(
                std::move(accel),
                std::make_unique<SoftwareBackend>(cpu::BoomParams(),
                                                  pool_));
        };
    }

    std::vector<uint8_t>
    RequestWire(uint32_t tag)
    {
        proto::Arena arena;
        Message request = Message::Create(&arena, pool_, req_);
        const auto &rd = pool_.message(req_);
        request.SetString(*rd.FindFieldByName("text"),
                          "payload-" + std::to_string(tag));
        request.SetUint32(*rd.FindFieldByName("tag"), tag);
        return proto::Serialize(request, nullptr);
    }

    /// Submit @p calls echoes; returns how many were admitted.
    uint32_t
    SubmitEchoes(RpcServerRuntime *runtime, uint32_t calls)
    {
        uint32_t admitted = 0;
        for (uint32_t i = 1; i <= calls; ++i) {
            const std::vector<uint8_t> wire = RequestWire(i);
            FrameHeader h;
            h.call_id = i;
            h.method_id = 1;
            h.kind = FrameKind::kRequest;
            h.payload_bytes = static_cast<uint32_t>(wire.size());
            admitted += StatusOk(runtime->Submit(h, wire.data()));
        }
        return admitted;
    }

    DescriptorPool pool_;
    int req_ = -1;
    int rsp_ = -1;
};

TEST_F(DegradedServingTest, AdmissionControlShedsDeepBacklogs)
{
    RuntimeConfig config;
    config.num_workers = 1;
    config.admission_max_wait_ns = 10'000;
    config.est_call_ns = 2'000;
    RpcServerRuntime runtime(&pool_, SoftwareFactory(), config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());

    // Pre-load before Start(): pending only grows, so the shed point is
    // exact — admission stops at backlog x estimate > bound.
    const uint32_t admitted = SubmitEchoes(&runtime, 50);
    EXPECT_EQ(admitted, 6u);  // 6 x 2000 ns > 10000 ns sheds the 7th

    runtime.Start();
    runtime.Drain();
    const RuntimeSnapshot snap = runtime.Snapshot();
    EXPECT_EQ(snap.calls, admitted);
    EXPECT_EQ(snap.shed, 50u - admitted);
    EXPECT_EQ(snap.failures, 0u);
    // kOverloaded is retryable: a well-behaved client backs off.
    EXPECT_TRUE(StatusIsRetryable(StatusCode::kOverloaded));

    // Once drained (pending == 0), admission opens again.
    EXPECT_EQ(SubmitEchoes(&runtime, 1), 1u);
    runtime.Drain();
}

TEST_F(DegradedServingTest, DeadlineMissesAreCounted)
{
    auto run = [&](double deadline_ns) {
        RuntimeConfig config;
        config.num_workers = 1;
        config.deadline_ns = deadline_ns;
        RpcServerRuntime runtime(&pool_, SoftwareFactory(), config);
        runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
        runtime.Start();
        SubmitEchoes(&runtime, 20);
        runtime.Drain();
        return runtime.Snapshot().deadline_exceeded;
    };
    EXPECT_EQ(run(0), 0u);     // disabled
    EXPECT_EQ(run(1e9), 0u);   // 1 s: nothing modeled is that slow
    EXPECT_EQ(run(1e-3), 20u); // 1 ps: every call misses
}

TEST_F(DegradedServingTest, SaturationForcesSoftwareAndRecovers)
{
    accel::SharedAccelQueue queue;
    RuntimeConfig config;
    config.num_workers = 1;
    config.max_batch = 8;
    config.shared_accel = &queue;
    config.saturation_fallback_backlog = 16;
    RpcServerRuntime runtime(
        &pool_, HybridFactory(nullptr, 0, {}), config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());

    // Pre-load 80 calls: the first batches see a 72..24-deep residual
    // backlog (> 16, forced to software); the tail (<= 16) re-enables
    // the accelerator.
    SubmitEchoes(&runtime, 80);
    runtime.Start();
    runtime.Drain();

    const RuntimeSnapshot snap = runtime.Snapshot();
    EXPECT_EQ(snap.calls, 80u);
    EXPECT_EQ(snap.failures, 0u);
    // Some ops degraded (deep backlog), some did not (recovery).
    EXPECT_GT(snap.fallback_forced, 0u);
    const accel::SharedAccelQueue::Stats qs = queue.stats();
    EXPECT_GT(qs.jobs, 0u);  // the tail really used the device
    // Forced batches never rang the doorbell: strictly fewer device
    // jobs than the 2-per-call an all-accel run would issue.
    EXPECT_LT(qs.jobs, 2u * 80u);
    EXPECT_EQ(snap.fallback_accel_fault, 0u);
}

TEST_F(DegradedServingTest, UnitKillsFallBackToSoftwareTransparently)
{
    accel::SharedAccelQueue queue;
    std::vector<std::unique_ptr<sim::FaultInjector>> injectors;
    sim::FaultConfig fault_config;
    fault_config.unit_kill_rate = 1.0;  // every device op dies

    RuntimeConfig config;
    config.num_workers = 2;
    config.max_batch = 8;
    config.shared_accel = &queue;
    RpcServerRuntime runtime(
        &pool_, HybridFactory(&injectors, 400, fault_config), config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
    SubmitEchoes(&runtime, 48);
    runtime.Start();
    runtime.Drain();

    const RuntimeSnapshot snap = runtime.Snapshot();
    // Every call still succeeds: the software codec absorbed the work.
    EXPECT_EQ(snap.calls, 48u);
    EXPECT_EQ(snap.failures, 0u);
    // Each call fell back twice (deserialize + serialize).
    EXPECT_EQ(snap.fallback_accel_fault, 2u * 48u);
    EXPECT_EQ(snap.fallback_forced, 0u);
    // Latencies exist for every call and are positive: the fallback
    // time was charged to the worker core, not lost.
    const std::vector<double> lat = runtime.TakeLatencies();
    ASSERT_EQ(lat.size(), 48u);
    for (const double ns : lat)
        EXPECT_GT(ns, 0.0);
    // Replies really carry echoes (sanity that fallback produced them).
    uint64_t responses = 0;
    for (uint32_t wkr = 0; wkr < runtime.num_workers(); ++wkr) {
        size_t offset = 0;
        while (const auto frame = runtime.replies(wkr).Next(&offset)) {
            EXPECT_EQ(frame->header.kind, FrameKind::kResponse);
            ++responses;
        }
    }
    EXPECT_EQ(responses, 48u);
}

TEST_F(DegradedServingTest, DrainReplayIsDeterministicUnderFaults)
{
    // Two identical runs — same seeds, same pre-loaded backlog — must
    // produce byte-identical modeled numbers even though real threads
    // executed the work: batch boundaries come from the pre-load, and
    // fault decisions come from per-worker seeded injectors.
    auto run = [&]() {
        accel::SharedAccelQueue queue;
        std::vector<std::unique_ptr<sim::FaultInjector>> injectors;
        sim::FaultConfig fault_config;
        fault_config.unit_kill_rate = 0.3;
        fault_config.unit_stall_rate = 0.2;

        RuntimeConfig config;
        config.num_workers = 3;
        config.max_batch = 4;
        config.shared_accel = &queue;
        RpcServerRuntime runtime(
            &pool_, HybridFactory(&injectors, 777, fault_config),
            config);
        runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
        SubmitEchoes(&runtime, 60);
        runtime.Start();
        runtime.Drain();
        struct Result
        {
            RuntimeSnapshot snap;
            std::vector<double> latencies;
            accel::SharedAccelQueue::Stats qs;
        } r{runtime.Snapshot(), runtime.TakeLatencies(),
            queue.stats()};
        runtime.Shutdown();
        return r;
    };

    const auto a = run();
    const auto b = run();
    // Every DECISION is identical: same calls, same injected kills,
    // same fallbacks, same device jobs, same batch structure.
    EXPECT_EQ(a.snap.calls, b.snap.calls);
    EXPECT_EQ(a.snap.failures, b.snap.failures);
    EXPECT_EQ(a.snap.fallback_accel_fault, b.snap.fallback_accel_fault);
    EXPECT_EQ(a.snap.fallback_forced, b.snap.fallback_forced);
    EXPECT_EQ(a.qs.jobs, b.qs.jobs);
    EXPECT_EQ(a.qs.batches, b.qs.batches);
    ASSERT_EQ(a.latencies.size(), b.latencies.size());
    // Modeled TIMES agree closely but not bit-exactly: the cache/TLB
    // models key on host heap addresses, which shift between runs. The
    // replay itself adds no thread-scheduling noise, so runs land
    // within a fraction of a percent.
    EXPECT_NEAR(a.snap.modeled_span_ns, b.snap.modeled_span_ns,
                0.05 * a.snap.modeled_span_ns);
    for (size_t i = 0; i < a.latencies.size(); ++i)
        EXPECT_NEAR(a.latencies[i], b.latencies[i],
                    0.05 * a.latencies[i])
            << "latency " << i;
    // Faults really fired in both runs.
    EXPECT_GT(a.snap.fallback_accel_fault, 0u);
    EXPECT_EQ(a.snap.failures, 0u);
}

}  // namespace
}  // namespace protoacc::rpc
