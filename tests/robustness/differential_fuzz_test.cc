/**
 * Differential robustness fuzzing: seeded structural mutations of valid
 * wire buffers go through all four codec engines (reference, table,
 * generated, accelerator); no input may crash any engine, and the
 * accept/reject verdicts must be identical. The build links the
 * specialized codecs for every schema seed used here (tools/gen_pools),
 * so the generated engine is asserted present, not best-effort.
 *
 * This is the bounded ctest tier of the harness — the full >= 100k-input
 * sweep lives in bench/robustness_sweep (same rig, same invariant).
 */
#include <gtest/gtest.h>

#include "sim/fault.h"
#include "tri_codec_rig.h"

namespace protoacc::robustness {
namespace {

TEST(DifferentialFuzz, MutatedWiresNeverCrashAndVerdictsAgree)
{
    uint64_t mutated_rejects = 0;
    uint64_t mutated_accepts = 0;
    for (uint64_t schema_seed = 1; schema_seed <= 12; ++schema_seed) {
        RandomSchemaRig rig(1000 + schema_seed);
        protoacc::Rng rng(schema_seed);
        sim::FaultInjector injector(9000 + schema_seed);
        for (int trial = 0; trial < 120; ++trial) {
            std::vector<uint8_t> wire = rig.RandomWire(&rng);
            const auto kinds = injector.MutateWire(
                &wire, 1 + static_cast<uint32_t>(rng.NextBounded(3)));
            const TriVerdict v = rig.rig().ParseAll(wire);
            ASSERT_TRUE(v.has_generated)
                << "no generated codec linked for schema seed "
                << schema_seed;
            ASSERT_TRUE(v.agree_on_accept())
                << "schema " << schema_seed << " trial " << trial
                << ": ref=" << StatusCodeName(v.reference)
                << " table=" << StatusCodeName(v.table)
                << " gen=" << StatusCodeName(v.generated)
                << " accel=" << StatusCodeName(v.accel) << " after "
                << kinds.size() << " mutations (first: "
                << sim::WireMutationName(kinds.front()) << ")";
            (v.accepted() ? mutated_accepts : mutated_rejects)++;
        }
        rig.rig().ResetAccelArena();
    }
    // The mutation mix must exercise both outcomes or the test is vacuous
    // (bit flips inside string payloads still parse; structural damage
    // mostly rejects).
    EXPECT_GT(mutated_rejects, 100u);
    EXPECT_GT(mutated_accepts, 20u);
}

TEST(DifferentialFuzz, PureGarbageNeverCrashesAnyEngine)
{
    RandomSchemaRig rig(77);
    protoacc::Rng rng(42);
    for (int trial = 0; trial < 400; ++trial) {
        std::vector<uint8_t> junk(rng.NextBounded(200));
        for (auto &b : junk)
            b = static_cast<uint8_t>(rng.Next());
        const TriVerdict v = rig.rig().ParseAll(junk);
        ASSERT_TRUE(v.has_generated);
        ASSERT_TRUE(v.agree_on_accept())
            << "trial " << trial
            << ": ref=" << StatusCodeName(v.reference)
            << " table=" << StatusCodeName(v.table)
            << " gen=" << StatusCodeName(v.generated)
            << " accel=" << StatusCodeName(v.accel);
    }
}

TEST(DifferentialFuzz, EveryTruncationOfAValidWireAgrees)
{
    RandomSchemaRig rig(31);
    protoacc::Rng rng(7);
    const std::vector<uint8_t> wire = rig.RandomWire(&rng);
    ASSERT_GT(wire.size(), 4u);
    for (size_t cut = 0; cut < wire.size(); ++cut) {
        const TriVerdict v = rig.rig().ParseAll(wire.data(), cut);
        ASSERT_TRUE(v.has_generated);
        ASSERT_TRUE(v.agree_on_accept())
            << "cut " << cut << " of " << wire.size()
            << ": ref=" << StatusCodeName(v.reference)
            << " table=" << StatusCodeName(v.table)
            << " gen=" << StatusCodeName(v.generated)
            << " accel=" << StatusCodeName(v.accel);
    }
}

TEST(DifferentialFuzz, VerdictsAgreeUnderResourceLimits)
{
    // The limits must bind identically in all four engines: identical
    // charge points, identical check order. A divergence here means one
    // engine accepts what another resource-exhausts.
    RandomSchemaRig rig(55);
    protoacc::Rng rng(11);
    sim::FaultInjector injector(99);
    ParseLimits limits;
    limits.max_payload_bytes = 4096;
    limits.max_alloc_bytes = 512;
    limits.max_depth = 6;
    rig.rig().SetLimits(limits);
    uint64_t exhausted = 0;
    for (int trial = 0; trial < 300; ++trial) {
        std::vector<uint8_t> wire = rig.RandomWire(&rng);
        if (trial % 2 == 1)
            injector.MutateWire(&wire, 1);
        const TriVerdict v = rig.rig().ParseAll(wire);
        ASSERT_TRUE(v.has_generated);
        ASSERT_TRUE(v.agree_on_accept())
            << "trial " << trial
            << ": ref=" << StatusCodeName(v.reference)
            << " table=" << StatusCodeName(v.table)
            << " gen=" << StatusCodeName(v.generated)
            << " accel=" << StatusCodeName(v.accel);
        if (v.table == StatusCode::kResourceExhausted) {
            // When the budget is the cause, all four must say so.
            EXPECT_EQ(v.reference, StatusCode::kResourceExhausted);
            EXPECT_EQ(v.generated, StatusCode::kResourceExhausted);
            EXPECT_EQ(v.accel, StatusCode::kResourceExhausted);
            ++exhausted;
        }
    }
    // The 512-byte budget must actually have fired on some inputs.
    EXPECT_GT(exhausted, 0u);
}

}  // namespace
}  // namespace protoacc::robustness
