/**
 * @file
 * Shared rig for the robustness suite: runs one wire buffer through the
 * codec engines — the tree-walking reference interpreter, the
 * table-driven fast path, the schema-specialized generated codec (when
 * one is linked in for the rig's pool), and the accelerator model — and
 * reports each engine's verdict as a unified StatusCode.
 *
 * The differential invariant the suite enforces: for ANY input bytes
 * (hostile or not) and any ParseLimits, the engines must agree on
 * accept vs reject, and none may crash. Exact rejection codes may differ
 * between engines (e.g. a flipped byte can read as a truncation to one
 * scanner and a malformed varint to another); the accept/reject decision
 * may not.
 */
#ifndef PROTOACC_TESTS_ROBUSTNESS_TRI_CODEC_RIG_H
#define PROTOACC_TESTS_ROBUSTNESS_TRI_CODEC_RIG_H

#include <memory>
#include <vector>

#include "accel/accelerator.h"
#include "proto/codec_generated.h"
#include "proto/codec_reference.h"
#include "proto/parser.h"
#include "proto/schema_random.h"
#include "proto/serializer.h"

namespace protoacc::robustness {

/// Per-engine verdicts for one (buffer, limits) parse.
struct TriVerdict
{
    StatusCode reference = StatusCode::kOk;
    StatusCode table = StatusCode::kOk;
    StatusCode accel = StatusCode::kOk;
    /// Generated-engine verdict; only meaningful when has_generated.
    StatusCode generated = StatusCode::kOk;
    /// True when a generated codec was linked in for the rig's pool and
    /// therefore @c generated carries a real fourth verdict.
    bool has_generated = false;

    bool
    agree_on_accept() const
    {
        return StatusOk(reference) == StatusOk(table) &&
               StatusOk(table) == StatusOk(accel) &&
               (!has_generated ||
                StatusOk(generated) == StatusOk(table));
    }
    bool accepted() const { return StatusOk(table); }
};

/// One compiled schema plus the three engines wired to parse into it.
class TriCodecRig
{
  public:
    /// Adopts an already-compiled pool; @p root is the message type
    /// every buffer is parsed as.
    TriCodecRig(const proto::DescriptorPool *pool, int root)
        : pool_(pool),
          root_(root),
          memory_(sim::MemorySystemConfig{}),
          accel_(&memory_, accel::AccelConfig{}),
          adts_(std::make_unique<accel::AdtBuilder>(*pool, &adt_arena_))
    {
        accel_.DeserAssignArena(&accel_arena_);
        gen_codec_ = proto::GetGeneratedCodec(*pool);
    }

    /// Apply resource limits to all three engines.
    void
    SetLimits(const ParseLimits &limits)
    {
        limits_ = limits;
        accel_.deserializer().SetLimits(limits);
    }

    StatusCode
    ParseReference(const uint8_t *data, size_t size)
    {
        proto::Arena arena;
        proto::Message dest =
            proto::Message::Create(&arena, *pool_, root_);
        return proto::ToStatusCode(proto::ReferenceParseFromBuffer(
            data, size, &dest, nullptr, &limits_));
    }

    StatusCode
    ParseTable(const uint8_t *data, size_t size)
    {
        proto::Arena arena;
        proto::Message dest =
            proto::Message::Create(&arena, *pool_, root_);
        return proto::ToStatusCode(proto::ParseFromBuffer(
            data, size, &dest, nullptr, &limits_));
    }

    /// Generated-engine verdict. Only callable when has_generated().
    StatusCode
    ParseGenerated(const uint8_t *data, size_t size)
    {
        proto::Arena arena;
        proto::Message dest =
            proto::Message::Create(&arena, *pool_, root_);
        return proto::ToStatusCode(proto::GeneratedParseFromBuffer(
            data, size, &dest, nullptr, &limits_));
    }

    /// True when a build-time codec is linked in for this pool.
    bool has_generated() const { return gen_codec_ != nullptr; }

    StatusCode
    ParseAccel(const uint8_t *data, size_t size)
    {
        proto::Arena arena;
        proto::Message dest =
            proto::Message::Create(&arena, *pool_, root_);
        accel_.EnqueueDeser(accel::MakeDeserJob(*adts_, root_, *pool_,
                                                dest.raw(), data, size));
        uint64_t cycles = 0;
        return accel::ToStatusCode(
            accel_.BlockForDeserCompletion(&cycles));
    }

    TriVerdict
    ParseAll(const uint8_t *data, size_t size)
    {
        TriVerdict v;
        v.reference = ParseReference(data, size);
        v.table = ParseTable(data, size);
        v.accel = ParseAccel(data, size);
        if (gen_codec_ != nullptr) {
            v.has_generated = true;
            v.generated = ParseGenerated(data, size);
        }
        return v;
    }

    TriVerdict
    ParseAll(const std::vector<uint8_t> &buf)
    {
        return ParseAll(buf.data(), buf.size());
    }

    const proto::DescriptorPool &pool() const { return *pool_; }
    int root() const { return root_; }

    /// Reclaim the accelerator's deser arena between fuzz rounds (the
    /// destination objects of completed jobs are dead); long sweeps
    /// would otherwise grow it without bound.
    void ResetAccelArena() { accel_arena_.Reset(); }

  private:
    const proto::DescriptorPool *pool_;
    int root_;
    const proto::GeneratedPoolCodec *gen_codec_ = nullptr;
    ParseLimits limits_;
    proto::Arena adt_arena_;
    proto::Arena accel_arena_;
    sim::MemorySystem memory_;
    accel::ProtoAccelerator accel_;
    std::unique_ptr<accel::AdtBuilder> adts_;
};

/// Owns a random schema + rig (the fuzz-loop convenience wrapper).
class RandomSchemaRig
{
  public:
    explicit RandomSchemaRig(uint64_t seed, int max_depth = 3)
    {
        protoacc::Rng rng(seed);
        proto::SchemaGenOptions opts;
        opts.max_depth = max_depth;
        root_ = proto::GenerateRandomSchema(&pool_, &rng, opts);
        pool_.Compile(proto::HasbitsMode::kSparse);
        rig_ = std::make_unique<TriCodecRig>(&pool_, root_);
    }

    /// Serialize a randomly populated message of the rig's root type.
    std::vector<uint8_t>
    RandomWire(protoacc::Rng *rng) const
    {
        proto::Arena arena;
        proto::Message msg =
            proto::Message::Create(&arena, pool_, root_);
        proto::PopulateRandomMessage(msg, rng,
                                     proto::MessageGenOptions{});
        return proto::Serialize(msg, nullptr);
    }

    TriCodecRig &rig() { return *rig_; }

  private:
    proto::DescriptorPool pool_;
    int root_ = -1;
    std::unique_ptr<TriCodecRig> rig_;
};

}  // namespace protoacc::robustness

#endif  // PROTOACC_TESTS_ROBUSTNESS_TRI_CODEC_RIG_H
