/**
 * Accelerator watchdog: a permanently wedged FSM (injected kWedge) or a
 * stall beyond the cycle budget is detected at the budget, the unit is
 * reset (modeled reset cost), and the victim job replays clean — versus
 * the no-watchdog baseline where a wedge hangs the job until the
 * command router's last-resort timeout abandons it. Covers the device
 * fence loops, the shared-queue arbiter, and the hybrid backend's
 * fallback interaction.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "accel/shared_queue.h"
#include "proto/schema_parser.h"
#include "rpc/codec_backend.h"
#include "sim/fault.h"

namespace protoacc::rpc {
namespace {

using proto::DescriptorPool;
using proto::Message;

class WatchdogTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto parsed = proto::ParseSchema(R"(
            message Payload {
                optional string text = 1;
                optional uint64 num = 2;
            }
        )",
                                               &pool_);
        ASSERT_TRUE(parsed.ok) << parsed.error;
        pool_.Compile(proto::HasbitsMode::kSparse);
        type_ = pool_.FindMessage("Payload");
        arena_ = std::make_unique<proto::Arena>();
        Message msg = Message::Create(arena_.get(), pool_, type_);
        const auto &desc = pool_.message(type_);
        msg.SetString(*desc.FindFieldByName("text"),
                      "watchdog victim payload");
        msg.SetUint64(*desc.FindFieldByName("num"), 0xFEEDFACE);
        wire_ = proto::Serialize(msg, nullptr);
    }

    StatusCode
    DeserializeOnce(AcceleratedBackend *backend)
    {
        proto::Arena arena;
        Message msg = Message::Create(&arena, pool_, type_);
        return backend->Deserialize(wire_.data(), wire_.size(), &msg);
    }

    DescriptorPool pool_;
    int type_ = -1;
    std::unique_ptr<proto::Arena> arena_;
    std::vector<uint8_t> wire_;
};

TEST_F(WatchdogTest, WedgeWithoutWatchdogHangsToLastResortTimeout)
{
    sim::FaultConfig config;
    config.unit_wedge_rate = 1.0;
    sim::FaultInjector injector(0xBAD, config);

    AcceleratedBackend backend(pool_);  // watchdog off by default
    backend.SetFaultInjector(&injector);
    const StatusCode st = DeserializeOnce(&backend);
    EXPECT_FALSE(StatusOk(st));
    // The wedged job burned the command router's coarse timeout — an
    // availability event, not a bounded hiccup.
    EXPECT_GE(backend.codec_cycles(), 1'000'000.0);
    EXPECT_EQ(backend.watchdog_stats().resets, 0u);
}

TEST_F(WatchdogTest, WatchdogResetsWedgedUnitAndReplaysTheJob)
{
    sim::FaultConfig config;
    config.unit_wedge_rate = 1.0;
    sim::FaultInjector injector(0xBAD, config);

    // Clean baseline for the cycle comparison.
    AcceleratedBackend clean(pool_);
    ASSERT_TRUE(StatusOk(DeserializeOnce(&clean)));
    const double clean_cycles = clean.codec_cycles();

    accel::AccelConfig accel_config;
    accel_config.watchdog.budget_cycles = 10'000;
    accel_config.watchdog.reset_cycles = 512;
    AcceleratedBackend backend(pool_, accel_config);
    backend.SetFaultInjector(&injector);

    // The wedge is detected at the budget, the unit resets, the job
    // replays clean — the call *succeeds*.
    EXPECT_TRUE(StatusOk(DeserializeOnce(&backend)));
    const accel::WatchdogStats stats = backend.watchdog_stats();
    EXPECT_EQ(stats.resets, 1u);
    EXPECT_EQ(stats.replayed_jobs, 1u);
    EXPECT_EQ(stats.wasted_cycles, 10'000u + 512u);
    // Costed: clean run + budget + reset, nowhere near the hang.
    EXPECT_GE(backend.codec_cycles(), clean_cycles + 10'000 + 512);
    EXPECT_LT(backend.codec_cycles(), 1'000'000.0);
}

TEST_F(WatchdogTest, StallBeyondBudgetCountsAsWedgeAndResets)
{
    sim::FaultConfig config;
    config.unit_stall_rate = 1.0;
    config.stall_cycles_min = 50'000;
    config.stall_cycles_max = 50'000;
    sim::FaultInjector injector(0xBAD, config);

    accel::AccelConfig accel_config;
    accel_config.watchdog.budget_cycles = 10'000;
    AcceleratedBackend backend(pool_, accel_config);
    backend.SetFaultInjector(&injector);

    EXPECT_TRUE(StatusOk(DeserializeOnce(&backend)));
    EXPECT_EQ(backend.watchdog_stats().resets, 1u);
}

TEST_F(WatchdogTest, StallWithinBudgetJustBurnsTheStallCycles)
{
    sim::FaultConfig config;
    config.unit_stall_rate = 1.0;
    config.stall_cycles_min = 500;
    config.stall_cycles_max = 500;
    sim::FaultInjector injector(0xBAD, config);

    accel::AccelConfig accel_config;
    accel_config.watchdog.budget_cycles = 1'000'000;
    AcceleratedBackend backend(pool_, accel_config);
    backend.SetFaultInjector(&injector);

    AcceleratedBackend clean(pool_);
    ASSERT_TRUE(StatusOk(DeserializeOnce(&clean)));
    EXPECT_TRUE(StatusOk(DeserializeOnce(&backend)));
    EXPECT_EQ(backend.watchdog_stats().resets, 0u);
    EXPECT_GE(backend.codec_cycles(), clean.codec_cycles() + 500);
}

TEST_F(WatchdogTest, SharedQueueWatchdogPenalizesBlownBudget)
{
    accel::SharedQueueConfig with_watchdog;
    with_watchdog.watchdog_budget_cycles = 1'000;
    with_watchdog.watchdog_reset_cycles = 512;
    accel::SharedAccelQueue guarded(with_watchdog);
    accel::SharedAccelQueue plain;

    // Within budget: identical completion with and without watchdog.
    const auto ok_guarded = guarded.Submit(0, 800);
    const auto ok_plain = plain.Submit(0, 800);
    EXPECT_EQ(ok_guarded.done_cycle, ok_plain.done_cycle);
    EXPECT_EQ(guarded.stats().watchdog_resets, 0u);

    guarded.Reset();
    plain.Reset();

    // Blown budget: the unit wedged, the watchdog fires at the budget,
    // resets it, and the batch replays — budget + reset cycles later.
    const auto bad_guarded = guarded.Submit(0, 5'000);
    const auto bad_plain = plain.Submit(0, 5'000);
    EXPECT_EQ(bad_guarded.done_cycle,
              bad_plain.done_cycle + 1'000 + 512);
    const accel::SharedAccelQueue::Stats stats = guarded.stats();
    EXPECT_EQ(stats.watchdog_resets, 1u);
    EXPECT_EQ(stats.watchdog_wasted_cycles, 1'000u + 512u);
}

TEST_F(WatchdogTest, HybridWithWatchdogRecoversWithoutFallback)
{
    // With the watchdog armed, a wedge is recovered on-device: the
    // hybrid never needs its software fallback for it.
    sim::FaultConfig config;
    config.unit_wedge_rate = 1.0;
    sim::FaultInjector injector(0xBAD, config);

    accel::AccelConfig accel_config;
    accel_config.watchdog.budget_cycles = 10'000;
    auto accel =
        std::make_unique<AcceleratedBackend>(pool_, accel_config);
    accel->SetFaultInjector(&injector);
    HybridCodecBackend hybrid(
        std::move(accel),
        std::make_unique<SoftwareBackend>(cpu::BoomParams(), pool_));

    proto::Arena arena;
    Message msg = Message::Create(&arena, pool_, type_);
    const auto &desc = pool_.message(type_);
    msg.SetString(*desc.FindFieldByName("text"), "hello");
    const std::vector<uint8_t> out = hybrid.Serialize(msg);
    EXPECT_FALSE(out.empty());
    EXPECT_EQ(hybrid.fallback_counters().accel_fault, 0u);
    EXPECT_GE(hybrid.watchdog_stats().resets, 1u);
}

}  // namespace
}  // namespace protoacc::rpc
