/**
 * Multi-tenant overload robustness: token-bucket admission edges,
 * breaker half-open re-probe, brownout priority ordering, weight-0
 * (scavenger) DWRR tenants, cross-tenant dedup isolation, and the
 * seed-determinism regression — two identical seeds must produce
 * bit-identical runtime snapshots with retries and kills live.
 */
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "proto/schema_parser.h"
#include "rpc/server_runtime.h"
#include "rpc/tenant.h"
#include "sim/fault.h"

namespace protoacc::rpc {
namespace {

using proto::DescriptorPool;
using proto::Message;

/// PreAdmit + CommitAdmission as one step (the pairing the table
/// requires for exact breaker window bookkeeping).
AdmitOutcome
Admit(TenantTable *table, uint16_t tenant, double arrival_ns,
      double pressure_ns = 0)
{
    const AdmitTicket ticket =
        table->PreAdmit(tenant, arrival_ns, pressure_ns);
    table->CommitAdmission(tenant, ticket, false);
    return ticket.outcome;
}

const TenantSnapshot &
SnapshotOf(const std::vector<TenantSnapshot> &tenants, uint16_t id)
{
    for (const TenantSnapshot &t : tenants)
        if (t.config.id == id)
            return t;
    ADD_FAILURE() << "tenant " << id << " missing from snapshot";
    static TenantSnapshot empty;
    return empty;
}

TEST(TenantTableTest, TokenBucketAtExactlyZeroBudget)
{
    // burst == 0 with a nonzero rate is an exactly-zero budget: the
    // bucket primes empty and every refill clamps back to zero, so no
    // submission is ever admitted, no matter how far the clock runs.
    TenantConfig zero;
    zero.id = 1;
    zero.bucket_rate_per_s = 1000.0;
    zero.bucket_burst = 0;
    TenantTable table({zero}, {}, {});
    EXPECT_EQ(Admit(&table, 1, 0), AdmitOutcome::kShedBucket);
    EXPECT_EQ(Admit(&table, 1, 5e8), AdmitOutcome::kShedBucket);
    EXPECT_EQ(Admit(&table, 1, 5e12), AdmitOutcome::kShedBucket);

    const TenantSnapshot ts = table.Snapshot().front();
    EXPECT_EQ(ts.counters.submitted, 3u);
    EXPECT_EQ(ts.counters.admitted, 0u);
    EXPECT_EQ(ts.counters.shed_bucket, 3u);
    EXPECT_EQ(ts.bucket_tokens, 0.0);
}

TEST(TenantTableTest, BurstDrainsToZeroThenRefillsWholeTokens)
{
    TenantConfig cfg;
    cfg.id = 7;
    cfg.bucket_rate_per_s = 1.0;  // 1 token per modeled second
    cfg.bucket_burst = 3;
    TenantTable table({cfg}, {}, {});
    // The burst admits exactly burst calls at one instant; the call
    // that finds the bucket at exactly zero is shed.
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(Admit(&table, 7, 0), AdmitOutcome::kAdmitted);
    EXPECT_EQ(Admit(&table, 7, 0), AdmitOutcome::kShedBucket);
    // The refill clock never runs backwards.
    EXPECT_EQ(Admit(&table, 7, -1e9), AdmitOutcome::kShedBucket);
    // Half a token earned: still below the whole-token threshold.
    EXPECT_EQ(Admit(&table, 7, 5e8), AdmitOutcome::kShedBucket);
    // A full second earns one whole token: one admit, then re-shed.
    EXPECT_EQ(Admit(&table, 7, 1.5e9), AdmitOutcome::kAdmitted);
    EXPECT_EQ(Admit(&table, 7, 1.5e9), AdmitOutcome::kShedBucket);
}

TEST(TenantTableTest, AllTenantsOverQuotaAllShed)
{
    std::vector<TenantConfig> configs;
    for (uint16_t id = 1; id <= 3; ++id) {
        TenantConfig cfg;
        cfg.id = id;
        cfg.bucket_rate_per_s = 1.0;
        cfg.bucket_burst = 2;
        configs.push_back(cfg);
    }
    TenantTable table(configs, {}, {});
    // Every tenant floods past its quota at the same instant: each is
    // clipped at its own burst, none borrows a neighbor's budget.
    for (uint16_t id = 1; id <= 3; ++id)
        for (int i = 0; i < 10; ++i)
            Admit(&table, id, 0);
    for (const TenantSnapshot &ts : table.Snapshot()) {
        EXPECT_EQ(ts.counters.submitted, 10u);
        EXPECT_EQ(ts.counters.admitted, 2u);
        EXPECT_EQ(ts.counters.shed_bucket, 8u);
    }
}

TEST(TenantTableTest, BreakerTripsCoolsDownAndReprobes)
{
    TenantConfig starved;
    starved.id = 9;
    starved.bucket_rate_per_s = 1.0;  // 1 token / modeled second
    starved.bucket_burst = 1;
    BreakerConfig breaker;
    breaker.enabled = true;
    breaker.window = 4;
    breaker.trip_shed_fraction = 0.5;
    breaker.cooldown = 3;
    breaker.probe_interval = 2;
    breaker.close_after_probes = 2;
    TenantTable table({starved}, breaker, {});

    // Window of 4: one admit then 3 bucket sheds (3/4 >= 0.5) trips.
    EXPECT_EQ(Admit(&table, 9, 0), AdmitOutcome::kAdmitted);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(Admit(&table, 9, 0), AdmitOutcome::kShedBucket);
    {
        const TenantSnapshot ts = table.Snapshot().front();
        EXPECT_EQ(ts.breaker_state, BreakerState::kOpen);
        EXPECT_EQ(ts.counters.breaker_trips, 1u);
    }
    // Open: 3 cooldown rejections at O(1), never reaching the bucket.
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(Admit(&table, 9, 0), AdmitOutcome::kShedBreaker);
    {
        const TenantSnapshot ts = table.Snapshot().front();
        EXPECT_EQ(ts.breaker_state, BreakerState::kHalfOpen);
    }
    // Half-open, bucket still empty: the probe itself sheds downstream,
    // which re-opens the breaker — the overload is not over.
    EXPECT_EQ(Admit(&table, 9, 0), AdmitOutcome::kShedBucket);
    {
        const TenantSnapshot ts = table.Snapshot().front();
        EXPECT_EQ(ts.breaker_state, BreakerState::kOpen);
        EXPECT_EQ(ts.counters.breaker_trips, 2u);
        EXPECT_EQ(ts.counters.breaker_probes, 1u);
    }
    // Second cooldown, then half-open again — this time the bucket has
    // refilled (arrival 5 s out), so probes succeed. With
    // probe_interval 2, every other submission is a probe and the
    // non-probes shed; close_after_probes == 2 probes close it.
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(Admit(&table, 9, 5e9), AdmitOutcome::kShedBreaker);
    EXPECT_EQ(Admit(&table, 9, 5e9), AdmitOutcome::kAdmitted);  // probe
    EXPECT_EQ(Admit(&table, 9, 5e9),
              AdmitOutcome::kShedBreaker);  // non-probe
    EXPECT_EQ(Admit(&table, 9, 6e9), AdmitOutcome::kAdmitted);  // probe
    {
        const TenantSnapshot ts = table.Snapshot().front();
        EXPECT_EQ(ts.breaker_state, BreakerState::kClosed);
        EXPECT_EQ(ts.counters.breaker_probes, 3u);
    }
}

TEST(TenantTableTest, BrownoutShedsLowestPriorityFirst)
{
    TenantConfig low, high, slo;
    low.id = 1;
    low.priority = 0;
    high.id = 2;
    high.priority = 2;
    slo.id = 3;
    slo.priority = 0;
    slo.slo = true;
    BrownoutConfig brownout;
    brownout.start_wait_ns = 1000;
    brownout.full_wait_ns = 2000;
    TenantTable table({low, high, slo}, {}, brownout);

    // Below the onset: everyone admitted.
    EXPECT_EQ(Admit(&table, 1, 0, 500), AdmitOutcome::kAdmitted);
    // Mid-brownout (f = 0.6, cutoff = 1.2): priority 0 sheds,
    // priority 2 holds, the SLO tenant holds at any priority.
    EXPECT_EQ(Admit(&table, 1, 0, 1600), AdmitOutcome::kShedBrownout);
    EXPECT_EQ(Admit(&table, 2, 0, 1600), AdmitOutcome::kAdmitted);
    EXPECT_EQ(Admit(&table, 3, 0, 1600), AdmitOutcome::kAdmitted);
    // Full brownout (cutoff = max priority): only the top priority and
    // SLO tenants survive.
    EXPECT_EQ(Admit(&table, 1, 0, 5000), AdmitOutcome::kShedBrownout);
    EXPECT_EQ(Admit(&table, 2, 0, 5000), AdmitOutcome::kAdmitted);
    EXPECT_EQ(Admit(&table, 3, 0, 5000), AdmitOutcome::kAdmitted);
}

TEST(TenantTableTest, PerTenantWaitBoundIsolatesNeighbors)
{
    TenantConfig bounded;
    bounded.id = 4;
    bounded.admission_max_wait_ns = 5000;
    TenantConfig unbounded;
    unbounded.id = 5;
    TenantTable table({bounded, unbounded}, {}, {});
    table.FoldServiceEstimate(4, 2000);
    table.FoldServiceEstimate(5, 2000);
    // Build tenant 4's own backlog to 3 pending (3 x 2000 > 5000).
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(Admit(&table, 4, 0), AdmitOutcome::kAdmitted);
    EXPECT_EQ(Admit(&table, 4, 0), AdmitOutcome::kShedWait);
    // Tenant 5 is untouched by its neighbor's backlog.
    EXPECT_EQ(Admit(&table, 5, 0), AdmitOutcome::kAdmitted);
    // Tenant 4's work completing re-opens its own admission.
    table.OnWorkerFinished(4);
    EXPECT_EQ(Admit(&table, 4, 0), AdmitOutcome::kAdmitted);
}

class TenantRuntimeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto parsed = proto::ParseSchema(R"(
            message EchoRequest {
                optional string text = 1;
                optional uint32 tag = 2;
            }
            message EchoResponse {
                optional string text = 1;
                optional uint32 tag = 2;
            }
        )",
                                               &pool_);
        ASSERT_TRUE(parsed.ok) << parsed.error;
        pool_.Compile(proto::HasbitsMode::kSparse);
        req_ = pool_.FindMessage("EchoRequest");
        rsp_ = pool_.FindMessage("EchoResponse");
    }

    Handler
    EchoHandler()
    {
        return [this](const Message &request, Message response) {
            const auto &rd = pool_.message(req_);
            const auto &sd = pool_.message(rsp_);
            response.SetString(
                *sd.FindFieldByName("text"),
                request.GetString(*rd.FindFieldByName("text")));
            response.SetUint32(
                *sd.FindFieldByName("tag"),
                request.GetUint32(*rd.FindFieldByName("tag")));
        };
    }

    RpcServerRuntime::BackendFactory
    SoftwareFactory()
    {
        return [this](uint32_t) {
            return std::make_unique<SoftwareBackend>(cpu::BoomParams(),
                                                     pool_);
        };
    }

    RpcServerRuntime::BackendFactory
    HybridFactory()
    {
        return [this](uint32_t) {
            return std::make_unique<HybridCodecBackend>(
                std::make_unique<AcceleratedBackend>(pool_),
                std::make_unique<SoftwareBackend>(cpu::BoomParams(),
                                                  pool_));
        };
    }

    std::vector<uint8_t>
    RequestWire(uint32_t tag)
    {
        proto::Arena arena;
        Message request = Message::Create(&arena, pool_, req_);
        const auto &rd = pool_.message(req_);
        request.SetString(*rd.FindFieldByName("text"),
                          "payload-" + std::to_string(tag));
        request.SetUint32(*rd.FindFieldByName("tag"), tag);
        return proto::Serialize(request, nullptr);
    }

    /// Submit one echo for @p tenant; @return true when admitted.
    bool
    SubmitOne(RpcServerRuntime *runtime, uint16_t tenant,
              uint32_t call_id, uint64_t key = 0, double arrival_ns = 0)
    {
        const std::vector<uint8_t> wire = RequestWire(call_id);
        FrameHeader h;
        h.call_id = call_id;
        h.method_id = 1;
        h.kind = FrameKind::kRequest;
        h.payload_bytes = static_cast<uint32_t>(wire.size());
        h.tenant_id = tenant;
        h.idempotency_key = key;
        return StatusOk(runtime->Submit(h, wire.data(), arrival_ns));
    }

    DescriptorPool pool_;
    int req_ = -1;
    int rsp_ = -1;
};

TEST_F(TenantRuntimeTest, WeightZeroTenantScavengesWithoutStarving)
{
    accel::SharedAccelQueue queue;
    TenantConfig weighted;
    weighted.id = 1;
    weighted.weight = 4.0;
    TenantConfig scavenger;
    scavenger.id = 2;
    scavenger.weight = 0;
    RuntimeConfig config;
    config.num_workers = 2;
    config.max_batch = 4;
    config.shared_accel = &queue;
    config.tenants = {weighted, scavenger};
    config.dwrr_quantum_cycles = 256;
    RpcServerRuntime runtime(&pool_, HybridFactory(), config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());

    // Interleave the two tenants across both workers, preloaded so
    // batch boundaries (and thus the contended replay) are exact.
    uint32_t call_id = 1;
    for (int i = 0; i < 32; ++i) {
        ASSERT_TRUE(SubmitOne(&runtime, 1, call_id++));
        ASSERT_TRUE(SubmitOne(&runtime, 2, call_id++));
    }
    runtime.Start();
    runtime.Drain();
    runtime.Shutdown();

    const RuntimeSnapshot snap = runtime.Snapshot();
    EXPECT_EQ(snap.calls, 64u);
    EXPECT_EQ(snap.failures, 0u);
    // The scavenger is never starved outright — every one of its calls
    // completed — but device service skews toward the weighted tenant.
    const TenantSnapshot &w = SnapshotOf(snap.tenants, 1);
    const TenantSnapshot &s = SnapshotOf(snap.tenants, 2);
    EXPECT_EQ(w.counters.calls_completed, 32u);
    EXPECT_EQ(s.counters.calls_completed, 32u);
    EXPECT_GT(w.counters.accel_cycles_granted, 0u);
    EXPECT_GT(s.counters.accel_cycles_granted, 0u);
}

TEST_F(TenantRuntimeTest, DedupKeysAreTenantScoped)
{
    RuntimeConfig config;
    config.num_workers = 1;
    config.dedup_capacity = 64;
    RpcServerRuntime runtime(&pool_, SoftwareFactory(), config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
    // Count true handler executions per (tenant, key).
    std::map<std::pair<uint16_t, uint64_t>, int> executions;
    std::mutex mu;
    runtime.SetExecObserver([&](uint16_t tenant, uint64_t key) {
        std::lock_guard<std::mutex> lock(mu);
        ++executions[{tenant, key}];
    });

    constexpr uint64_t kKey = 0x1234'5678'9abc'def0ull;
    // Same idempotency key from two different tenants: two distinct
    // logical calls — both must execute (with a tenant-blind cache,
    // tenant 8's call would wrongly replay tenant 7's response).
    ASSERT_TRUE(SubmitOne(&runtime, 7, 1, kKey));
    ASSERT_TRUE(SubmitOne(&runtime, 8, 2, kKey));
    // A genuine same-tenant retry must still dedup to one execution.
    ASSERT_TRUE(SubmitOne(&runtime, 7, 3, kKey));
    runtime.Start();
    runtime.Drain();
    runtime.Shutdown();

    const RuntimeSnapshot snap = runtime.Snapshot();
    EXPECT_EQ(snap.calls, 3u);
    EXPECT_EQ(snap.dedup_hits, 1u);
    EXPECT_EQ((executions[{7, kKey}]), 1);
    EXPECT_EQ((executions[{8, kKey}]), 1);
    // The v2 snapshot format round-trips the tenant scoping.
    const std::vector<uint8_t> image = runtime.SerializeDedup();
    ASSERT_FALSE(image.empty());
    RpcServerRuntime restored(&pool_, SoftwareFactory(), config);
    restored.RegisterMethod(1, req_, rsp_, EchoHandler());
    int restored_execs = 0;
    restored.SetExecObserver(
        [&](uint16_t, uint64_t) { ++restored_execs; });
    ASSERT_TRUE(restored.RestoreDedup(image.data(), image.size()));
    ASSERT_TRUE(SubmitOne(&restored, 7, 1, kKey));  // cached: replays
    ASSERT_TRUE(SubmitOne(&restored, 9, 2, kKey));  // new tenant: runs
    restored.Start();
    restored.Drain();
    const RuntimeSnapshot rs = restored.Snapshot();
    EXPECT_EQ(rs.dedup_hits, 1u);
    EXPECT_EQ(restored_execs, 1);
}

TEST_F(TenantRuntimeTest, SameSeedProducesBitIdenticalSnapshots)
{
    // The determinism regression: with retries (duplicate idempotency
    // keys), injected worker kills, tenant admission and the breaker
    // all live, two runs from the same seed must agree on every
    // counter and every modeled latency, bit for bit. Counter-based
    // retry jitter is what makes the client half hold; the event-sim
    // replay discipline covers the server half. Software codec engine:
    // the accelerated model prices real host pointers through the
    // TLB/cache hierarchy, so its cycle counts are a function of heap
    // layout — two runtimes in one process see different allocator
    // state, and cross-run bit-equality is only defined for the
    // layout-independent software cost model.
    struct RunResult
    {
        uint64_t calls, failures, shed, redispatched, crashed;
        std::vector<CallRecord> records;
        std::vector<TenantSnapshot> tenants;
        double span_ns;
    };
    auto run = [&](uint64_t seed) {
        sim::FaultConfig fault_config;
        fault_config.worker_kills.push_back({0, 10});
        sim::FaultInjector injector(seed, fault_config);
        TenantConfig a, b;
        a.id = 1;
        a.weight = 3.0;
        a.bucket_rate_per_s = 4e6;
        a.bucket_burst = 24;
        b.id = 2;
        b.weight = 1.0;
        RuntimeConfig config;
        config.num_workers = 2;
        config.max_batch = 4;
        config.tenants = {a, b};
        config.breaker.enabled = true;
        config.breaker.window = 16;
        config.dedup_capacity = 256;
        config.fault_injector = &injector;
        RpcServerRuntime runtime(&pool_, SoftwareFactory(), config);
        runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
        for (int i = 0; i < 48; ++i) {
            const uint16_t tenant = 1 + (i % 2);
            const uint64_t key = 0x9000'0000ull + i;
            // The retry carries the same key and the same call-id
            // parity, so it shards to the same worker as the original
            // and its dedup lookup is sequenced, not raced.
            SubmitOne(&runtime, tenant, i + 1, key,
                      static_cast<double>(i) * 250.0);
            if (i % 5 == 0)  // a retry of the same logical call
                SubmitOne(&runtime, tenant, i + 97, key,
                          static_cast<double>(i) * 250.0 + 100.0);
        }
        runtime.Start();
        runtime.Drain();
        runtime.Shutdown();
        const RuntimeSnapshot snap = runtime.Snapshot();
        RunResult r;
        r.calls = snap.calls;
        r.failures = snap.failures;
        r.shed = snap.shed;
        r.redispatched = snap.redispatched_frames;
        r.crashed = snap.workers_crashed;
        r.records = runtime.TakeCallRecords();
        r.tenants = snap.tenants;
        r.span_ns = snap.modeled_span_ns;
        return r;
    };

    const RunResult x = run(0xfeedu);
    const RunResult y = run(0xfeedu);
    EXPECT_EQ(x.calls, y.calls);
    EXPECT_EQ(x.failures, y.failures);
    EXPECT_EQ(x.shed, y.shed);
    EXPECT_EQ(x.redispatched, y.redispatched);
    EXPECT_EQ(x.crashed, 1u);  // the kill really fired
    EXPECT_EQ(x.crashed, y.crashed);
    EXPECT_GT(x.redispatched, 0u);  // recovery really happened
    EXPECT_EQ(x.span_ns, y.span_ns);  // bit-identical doubles
    ASSERT_EQ(x.records.size(), y.records.size());
    for (size_t i = 0; i < x.records.size(); ++i) {
        EXPECT_EQ(x.records[i].tenant, y.records[i].tenant);
        EXPECT_EQ(x.records[i].latency_ns, y.records[i].latency_ns);
    }
    ASSERT_EQ(x.tenants.size(), y.tenants.size());
    for (size_t i = 0; i < x.tenants.size(); ++i) {
        EXPECT_EQ(x.tenants[i].counters.admitted,
                  y.tenants[i].counters.admitted);
        EXPECT_EQ(x.tenants[i].counters.shed_bucket,
                  y.tenants[i].counters.shed_bucket);
        EXPECT_EQ(x.tenants[i].counters.calls_completed,
                  y.tenants[i].counters.calls_completed);
        EXPECT_EQ(x.tenants[i].counters.accel_cycles_granted,
                  y.tenants[i].counters.accel_cycles_granted);
        EXPECT_EQ(x.tenants[i].est_call_ns, y.tenants[i].est_call_ns);
    }
}

TEST_F(TenantRuntimeTest, RetryBudgetSuppressesRetryStorms)
{
    // A lossy channel with an empty retry budget must fail fast
    // (suppressed retries) instead of amplifying load; with no budget
    // configured the pre-budget unlimited-retry behavior holds.
    auto run = [&](double budget_ratio) {
        RpcServer server(&pool_, std::make_unique<SoftwareBackend>(
                                     cpu::BoomParams(), pool_));
        server.RegisterMethod(1, req_, rsp_, EchoHandler());
        RpcSession session(&pool_,
                           std::make_unique<SoftwareBackend>(
                               cpu::BoomParams(), pool_),
                           &server, SimulatedChannel{});
        RetryPolicy policy;
        policy.max_attempts = 6;
        policy.retry_budget_ratio = budget_ratio;
        policy.retry_budget_cap = 1.0;
        policy.max_backoff_ns = 200'000;
        session.set_retry_policy(policy);
        session.set_jitter_seed(0xfeedu);
        sim::FaultConfig faults;
        faults.frame_drop_rate = 0.5;
        sim::FaultInjector injector(0xfeedu, faults);
        session.SetFaultInjector(&injector);
        proto::Arena arena;
        Message request = Message::Create(&arena, pool_, req_);
        for (int i = 0; i < 40; ++i) {
            Message response = Message::Create(&arena, pool_, rsp_);
            session.Call(1, request, &response);
        }
        return session.breakdown();
    };
    const RpcTimeBreakdown unlimited = run(0);
    EXPECT_GT(unlimited.retries, 0u);
    EXPECT_EQ(unlimited.retries_suppressed, 0u);
    EXPECT_GT(unlimited.backoff_ns, 0.0);

    const RpcTimeBreakdown budgeted = run(0.1);
    EXPECT_GT(budgeted.retries_suppressed, 0u);
    // ~0.1 tokens per call over 40 calls + cap 1: a handful of retries
    // at most, far below the unlimited session's storm.
    EXPECT_LT(budgeted.retries, unlimited.retries);
    EXPECT_LE(budgeted.retries, 6u);
}

TEST_F(TenantRuntimeTest, PriorityBatchingJumpsQueue)
{
    // One worker, preloaded inbox: 8 low-priority frames then 8
    // high-priority ones. With priority_batching the high tier must
    // execute first (stable within a tier); with the default FIFO grab
    // the submission order holds.
    auto run = [&](bool priority_batching) {
        TenantConfig low;
        low.id = 1;
        low.priority = 0;
        TenantConfig high;
        high.id = 2;
        high.priority = 5;
        RuntimeConfig config;
        config.num_workers = 1;
        config.max_batch = 4;
        config.tenants = {low, high};
        config.priority_batching = priority_batching;
        RpcServerRuntime runtime(&pool_, SoftwareFactory(), config);
        std::vector<uint32_t> order;  // one worker: sequential handler
        runtime.RegisterMethod(
            1, req_, rsp_, [&](const Message &request, Message response) {
                const auto &rd = pool_.message(req_);
                order.push_back(
                    request.GetUint32(*rd.FindFieldByName("tag")));
                (void)response;
            });
        for (uint32_t i = 0; i < 8; ++i)
            EXPECT_TRUE(SubmitOne(&runtime, 1, 100 + i));
        for (uint32_t i = 0; i < 8; ++i)
            EXPECT_TRUE(SubmitOne(&runtime, 2, 200 + i));
        runtime.Start();
        runtime.Drain();
        runtime.Shutdown();
        return order;
    };

    std::vector<uint32_t> expect_fifo, expect_priority;
    for (uint32_t i = 0; i < 8; ++i)
        expect_fifo.push_back(100 + i);
    for (uint32_t i = 0; i < 8; ++i) {
        expect_fifo.push_back(200 + i);
        expect_priority.push_back(200 + i);
    }
    for (uint32_t i = 0; i < 8; ++i)
        expect_priority.push_back(100 + i);

    EXPECT_EQ(run(false), expect_fifo);
    EXPECT_EQ(run(true), expect_priority);
}

TEST_F(TenantRuntimeTest, LegacySingleTenantPathUnchanged)
{
    // With no tenant features configured the layer must stay
    // disengaged: no tenant snapshots, identical admission semantics.
    RuntimeConfig config;
    config.num_workers = 1;
    config.admission_max_wait_ns = 10'000;
    config.est_call_ns = 2'000;
    RpcServerRuntime runtime(&pool_, SoftwareFactory(), config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
    uint32_t admitted = 0;
    for (uint32_t i = 1; i <= 50; ++i)
        admitted += SubmitOne(&runtime, 0, i);
    EXPECT_EQ(admitted, 6u);  // the exact pre-tenant shed point
    runtime.Start();
    runtime.Drain();
    const RuntimeSnapshot snap = runtime.Snapshot();
    EXPECT_TRUE(snap.tenants.empty());
    EXPECT_EQ(snap.calls, admitted);
    EXPECT_EQ(snap.shed, 50u - admitted);
}

}  // namespace
}  // namespace protoacc::rpc
