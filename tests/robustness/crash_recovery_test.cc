/**
 * Worker-crash recovery and lifecycle hardening of the serving runtime:
 * scheduled kills strand un-acked frames, Drain() re-dispatches them to
 * survivors, requeued retries respect the dedup cache, and the modeled
 * numbers stay deterministic under crash injection. Plus the lifecycle
 * contract: counters survive Shutdown()/Start() cycles and Shutdown()
 * is idempotent under concurrent callers.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "proto/schema_parser.h"
#include "rpc/server_runtime.h"
#include "sim/fault.h"

namespace protoacc::rpc {
namespace {

using proto::DescriptorPool;
using proto::Message;

class CrashRecoveryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto parsed = proto::ParseSchema(R"(
            message EchoRequest {
                optional string text = 1;
                optional uint32 tag = 2;
            }
            message EchoResponse {
                optional string text = 1;
                optional uint32 tag = 2;
            }
        )",
                                               &pool_);
        ASSERT_TRUE(parsed.ok) << parsed.error;
        pool_.Compile(proto::HasbitsMode::kSparse);
        req_ = pool_.FindMessage("EchoRequest");
        rsp_ = pool_.FindMessage("EchoResponse");
    }

    Handler
    EchoHandler()
    {
        return [this](const Message &request, Message response) {
            const auto &rd = pool_.message(req_);
            const auto &sd = pool_.message(rsp_);
            response.SetString(
                *sd.FindFieldByName("text"),
                request.GetString(*rd.FindFieldByName("text")));
            response.SetUint32(
                *sd.FindFieldByName("tag"),
                request.GetUint32(*rd.FindFieldByName("tag")));
        };
    }

    RpcServerRuntime::BackendFactory
    SoftwareFactory()
    {
        return [this](uint32_t) {
            return std::make_unique<SoftwareBackend>(cpu::BoomParams(),
                                                     pool_);
        };
    }

    std::vector<uint8_t>
    RequestWire(uint32_t tag, const std::string &text)
    {
        proto::Arena arena;
        Message request = Message::Create(&arena, pool_, req_);
        const auto &rd = pool_.message(req_);
        request.SetString(*rd.FindFieldByName("text"), text);
        request.SetUint32(*rd.FindFieldByName("tag"), tag);
        return proto::Serialize(request, nullptr);
    }

    void
    SubmitEchoes(RpcServerRuntime *runtime, uint32_t calls,
                 uint64_t key_base = 0)
    {
        for (uint32_t i = 1; i <= calls; ++i) {
            const std::vector<uint8_t> wire =
                RequestWire(i, "payload-" + std::to_string(i));
            FrameHeader h;
            h.call_id = i;
            h.method_id = 1;
            h.kind = FrameKind::kRequest;
            h.payload_bytes = static_cast<uint32_t>(wire.size());
            if (key_base != 0)
                h.idempotency_key = key_base + i;
            ASSERT_EQ(runtime->Submit(h, wire.data()),
                      StatusCode::kOk);
        }
    }

    /// Decode every reply stream into call_id -> echoed text.
    std::map<uint32_t, std::string>
    HarvestReplies(const RpcServerRuntime &runtime)
    {
        std::map<uint32_t, std::string> texts;
        proto::Arena arena;
        const auto &sd = pool_.message(rsp_);
        for (uint32_t w = 0; w < runtime.num_workers(); ++w) {
            size_t offset = 0;
            while (const auto frame =
                       runtime.replies(w).Next(&offset)) {
                EXPECT_EQ(frame->header.kind, FrameKind::kResponse);
                Message response =
                    Message::Create(&arena, pool_, rsp_);
                const proto::ParseStatus parsed =
                    proto::ParseFromBuffer(frame->payload,
                                           frame->header.payload_bytes,
                                           &response, nullptr);
                EXPECT_EQ(parsed, proto::ParseStatus::kOk);
                if (parsed != proto::ParseStatus::kOk)
                    continue;
                texts[frame->header.call_id] = std::string(
                    response.GetString(*sd.FindFieldByName("text")));
            }
        }
        return texts;
    }

    DescriptorPool pool_;
    int req_ = -1;
    int rsp_ = -1;
};

TEST_F(CrashRecoveryTest, StrandedFramesAreRedispatchedToSurvivors)
{
    sim::FaultConfig fault_config;
    fault_config.worker_kills = {{1, 3}};  // worker 1 dies early
    sim::FaultInjector injector(0xDEAD, fault_config);

    RuntimeConfig config;
    config.num_workers = 4;
    config.fault_injector = &injector;
    RpcServerRuntime runtime(&pool_, SoftwareFactory(), config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());

    constexpr uint32_t kCalls = 64;
    SubmitEchoes(&runtime, kCalls);  // pre-load, then start
    runtime.Start();
    runtime.Drain();

    // Every call answered despite the crash — the dead worker's
    // un-acked frames ran on survivors.
    const std::map<uint32_t, std::string> texts =
        HarvestReplies(runtime);
    ASSERT_EQ(texts.size(), kCalls);
    for (uint32_t i = 1; i <= kCalls; ++i)
        EXPECT_EQ(texts.at(i), "payload-" + std::to_string(i));

    const RuntimeSnapshot snap = runtime.Snapshot();
    EXPECT_EQ(snap.calls, kCalls);
    EXPECT_EQ(snap.failures, 0u);
    EXPECT_EQ(snap.workers_crashed, 1u);
    EXPECT_TRUE(snap.workers[1].crashed);
    EXPECT_EQ(snap.workers[1].calls, 3u);
    // 16 frames sharded to worker 1, 3 executed before the crash.
    EXPECT_EQ(snap.redispatched_frames, 13u);
    EXPECT_EQ(injector.stats().workers_killed, 1u);
}

TEST_F(CrashRecoveryTest, EveryWorkerDeadMakesSubmitUnavailable)
{
    sim::FaultConfig fault_config;
    fault_config.worker_kills = {{0, 2}, {1, 2}};
    sim::FaultInjector injector(0xDEAD, fault_config);

    RuntimeConfig config;
    config.num_workers = 2;
    config.fault_injector = &injector;
    RpcServerRuntime runtime(&pool_, SoftwareFactory(), config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
    SubmitEchoes(&runtime, 16);
    runtime.Start();
    runtime.Drain();

    const RuntimeSnapshot snap = runtime.Snapshot();
    EXPECT_EQ(snap.workers_crashed, 2u);
    EXPECT_EQ(snap.calls, 4u);  // 2 per worker before dying

    const std::vector<uint8_t> wire = RequestWire(99, "late");
    FrameHeader h;
    h.call_id = 99;
    h.method_id = 1;
    h.kind = FrameKind::kRequest;
    h.payload_bytes = static_cast<uint32_t>(wire.size());
    EXPECT_EQ(runtime.Submit(h, wire.data()),
              StatusCode::kUnavailable);
}

TEST_F(CrashRecoveryTest, RedispatchedRetryHitsDedupInsteadOfRerunning)
{
    // A call that committed its response, then gets submitted again
    // (the reply was lost, the client retried) must replay from the
    // dedup cache — the handler runs once per key.
    std::atomic<uint32_t> executions{0};

    RuntimeConfig config;
    config.num_workers = 2;
    config.dedup_capacity = 64;
    RpcServerRuntime runtime(
        &pool_,
        [this](uint32_t) {
            return std::make_unique<SoftwareBackend>(cpu::BoomParams(),
                                                     pool_);
        },
        config);
    runtime.RegisterMethod(
        1, req_, rsp_,
        [this, &executions](const Message &request, Message response) {
            executions.fetch_add(1, std::memory_order_relaxed);
            const auto &rd = pool_.message(req_);
            const auto &sd = pool_.message(rsp_);
            response.SetString(
                *sd.FindFieldByName("text"),
                request.GetString(*rd.FindFieldByName("text")));
        });
    runtime.Start();

    const std::vector<uint8_t> wire = RequestWire(1, "once");
    FrameHeader h;
    h.call_id = 1;
    h.method_id = 1;
    h.kind = FrameKind::kRequest;
    h.payload_bytes = static_cast<uint32_t>(wire.size());
    h.idempotency_key = 0xAB5EED;
    ASSERT_EQ(runtime.Submit(h, wire.data()), StatusCode::kOk);
    runtime.Drain();

    // Retry of the same logical call: same key, new call id (it may
    // even land on a different worker — the cache is runtime-wide).
    h.call_id = 2;
    ASSERT_EQ(runtime.Submit(h, wire.data()), StatusCode::kOk);
    runtime.Drain();

    EXPECT_EQ(executions.load(), 1u);
    const RuntimeSnapshot snap = runtime.Snapshot();
    EXPECT_EQ(snap.dedup_hits, 1u);
    EXPECT_EQ(snap.dedup_insertions, 1u);
    // Both attempts got a response frame with their own call id.
    const std::map<uint32_t, std::string> texts =
        HarvestReplies(runtime);
    ASSERT_EQ(texts.size(), 2u);
    EXPECT_EQ(texts.at(1), "once");
    EXPECT_EQ(texts.at(2), "once");
}

TEST_F(CrashRecoveryTest, DedupSnapshotSurvivesProcessRestart)
{
    // A serving process that restarts loses the in-memory dedup cache,
    // and every in-flight retry of an already-committed call would
    // re-execute. SerializeDedup() before the restart + RestoreDedup()
    // after must close that hole: the retry replays from the restored
    // cache, the handler never runs again.
    std::atomic<uint32_t> executions{0};
    const auto counting_handler = [this, &executions](
                                      const Message &request,
                                      Message response) {
        executions.fetch_add(1, std::memory_order_relaxed);
        const auto &rd = pool_.message(req_);
        const auto &sd = pool_.message(rsp_);
        response.SetString(*sd.FindFieldByName("text"),
                           request.GetString(*rd.FindFieldByName("text")));
    };

    RuntimeConfig config;
    config.num_workers = 2;
    config.dedup_capacity = 64;
    config.dedup_retry_horizon = 32;

    std::vector<uint8_t> image;
    const std::vector<uint8_t> wire = RequestWire(1, "committed");
    FrameHeader h;
    h.call_id = 1;
    h.method_id = 1;
    h.kind = FrameKind::kRequest;
    h.payload_bytes = static_cast<uint32_t>(wire.size());
    h.idempotency_key = 0xCAFE01;
    {
        RpcServerRuntime first(&pool_, SoftwareFactory(), config);
        first.RegisterMethod(1, req_, rsp_, counting_handler);
        first.Start();
        ASSERT_EQ(first.Submit(h, wire.data()), StatusCode::kOk);
        first.Drain();
        ASSERT_EQ(executions.load(), 1u);
        image = first.SerializeDedup();
        ASSERT_FALSE(image.empty());
    }  // the "process" exits

    RpcServerRuntime second(&pool_, SoftwareFactory(), config);
    second.RegisterMethod(1, req_, rsp_, counting_handler);
    ASSERT_TRUE(second.RestoreDedup(image.data(), image.size()));
    second.Start();

    // The client never saw the reply and retries with the same key.
    h.call_id = 2;
    ASSERT_EQ(second.Submit(h, wire.data()), StatusCode::kOk);
    second.Drain();

    EXPECT_EQ(executions.load(), 1u);  // no double execution
    const RuntimeSnapshot snap = second.Snapshot();
    EXPECT_TRUE(snap.dedup_restored);
    EXPECT_EQ(snap.dedup_hits, 1u);
    const std::map<uint32_t, std::string> texts =
        HarvestReplies(second);
    ASSERT_EQ(texts.size(), 1u);
    EXPECT_EQ(texts.at(2), "committed");

    // A torn snapshot (the restart raced the write) is rejected
    // fail-closed and the retry re-executes — correct, just slower.
    RpcServerRuntime third(&pool_, SoftwareFactory(), config);
    third.RegisterMethod(1, req_, rsp_, counting_handler);
    EXPECT_FALSE(third.RestoreDedup(image.data(), image.size() / 2));
    third.Start();
    h.call_id = 3;
    ASSERT_EQ(third.Submit(h, wire.data()), StatusCode::kOk);
    third.Drain();
    EXPECT_EQ(executions.load(), 2u);
    EXPECT_FALSE(third.Snapshot().dedup_restored);
}

TEST_F(CrashRecoveryTest, ModeledNumbersAreDeterministicUnderCrashes)
{
    // Same seed, same kill schedule, pre-loaded backlog: two runs must
    // produce bit-identical modeled numbers — the crash points are
    // call-count events and the stranded set is a submission-order
    // suffix, so recovery does not depend on thread timing.
    auto run = [this](RuntimeSnapshot *snap,
                      std::vector<double> *latencies) {
        sim::FaultConfig fault_config;
        fault_config.worker_kills = {{1, 5}, {2, 9}};
        sim::FaultInjector injector(0x5EED, fault_config);
        RuntimeConfig config;
        config.num_workers = 4;
        config.fault_injector = &injector;
        RpcServerRuntime runtime(&pool_, SoftwareFactory(), config);
        runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
        SubmitEchoes(&runtime, 96);
        runtime.Start();
        runtime.Drain();
        *snap = runtime.Snapshot();
        *latencies = runtime.TakeLatencies();
        std::sort(latencies->begin(), latencies->end());
    };

    RuntimeSnapshot a, b;
    std::vector<double> lat_a, lat_b;
    run(&a, &lat_a);
    run(&b, &lat_b);

    EXPECT_EQ(a.calls, b.calls);
    EXPECT_EQ(a.workers_crashed, 2u);
    EXPECT_EQ(b.workers_crashed, 2u);
    EXPECT_EQ(a.redispatched_frames, b.redispatched_frames);
    EXPECT_GT(a.redispatched_frames, 0u);
    EXPECT_EQ(a.modeled_span_ns, b.modeled_span_ns);
    ASSERT_EQ(a.workers.size(), b.workers.size());
    for (size_t i = 0; i < a.workers.size(); ++i) {
        EXPECT_EQ(a.workers[i].calls, b.workers[i].calls) << i;
        EXPECT_EQ(a.workers[i].vclock_ns, b.workers[i].vclock_ns) << i;
        EXPECT_EQ(a.workers[i].crashed, b.workers[i].crashed) << i;
    }
    ASSERT_EQ(lat_a.size(), lat_b.size());
    EXPECT_EQ(lat_a, lat_b);
}

TEST_F(CrashRecoveryTest, CountersSurviveShutdownStartCycles)
{
    RuntimeConfig config;
    config.num_workers = 2;
    RpcServerRuntime runtime(&pool_, SoftwareFactory(), config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());

    runtime.Start();
    SubmitEchoes(&runtime, 32);
    runtime.Drain();
    runtime.Shutdown();
    const RuntimeSnapshot mid = runtime.Snapshot();
    EXPECT_EQ(mid.calls, 32u);

    // Restart resumes the same workers: counters accumulate across the
    // cycle instead of resetting.
    runtime.Start();
    SubmitEchoes(&runtime, 32);
    runtime.Drain();
    runtime.Shutdown();
    const RuntimeSnapshot after = runtime.Snapshot();
    EXPECT_EQ(after.calls, 64u);
    EXPECT_EQ(after.failures, 0u);
    EXPECT_EQ(after.arena_constructions, 2u);
    for (size_t i = 0; i < after.workers.size(); ++i)
        EXPECT_GE(after.workers[i].vclock_ns,
                  mid.workers[i].vclock_ns);
}

TEST_F(CrashRecoveryTest, ConcurrentShutdownIsIdempotent)
{
    RuntimeConfig config;
    config.num_workers = 2;
    RpcServerRuntime runtime(&pool_, SoftwareFactory(), config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
    runtime.Start();
    SubmitEchoes(&runtime, 16);
    runtime.Drain();

    // Racing Shutdown() callers: exactly one wins, the rest observe the
    // stopped state and return; nothing deadlocks or double-joins.
    std::vector<std::thread> stoppers;
    for (int i = 0; i < 4; ++i)
        stoppers.emplace_back([&runtime] { runtime.Shutdown(); });
    for (auto &t : stoppers)
        t.join();
    runtime.Shutdown();  // and once more for good measure

    EXPECT_EQ(runtime.Snapshot().calls, 16u);

    // The runtime is restartable after the pile-up.
    runtime.Start();
    SubmitEchoes(&runtime, 16);
    runtime.Drain();
    runtime.Shutdown();
    EXPECT_EQ(runtime.Snapshot().calls, 32u);
}

TEST_F(CrashRecoveryTest, CrashRecoveryComposesWithDedup)
{
    // Crash + duplicate submissions: re-dispatched frames whose call
    // already committed must dedup, never double-execute. Submit every
    // call twice (same key) into a runtime that loses a worker.
    std::atomic<uint32_t> executions{0};
    sim::FaultConfig fault_config;
    fault_config.worker_kills = {{0, 4}};
    sim::FaultInjector injector(0xF00D, fault_config);

    RuntimeConfig config;
    config.num_workers = 2;
    config.dedup_capacity = 256;
    config.fault_injector = &injector;
    RpcServerRuntime runtime(
        &pool_,
        [this](uint32_t) {
            return std::make_unique<SoftwareBackend>(cpu::BoomParams(),
                                                     pool_);
        },
        config);
    runtime.RegisterMethod(
        1, req_, rsp_,
        [this, &executions](const Message &request, Message response) {
            executions.fetch_add(1, std::memory_order_relaxed);
            const auto &rd = pool_.message(req_);
            const auto &sd = pool_.message(rsp_);
            response.SetString(
                *sd.FindFieldByName("text"),
                request.GetString(*rd.FindFieldByName("text")));
        });

    constexpr uint32_t kCalls = 32;
    SubmitEchoes(&runtime, kCalls, /*key_base=*/0x1000);
    SubmitEchoes(&runtime, kCalls, /*key_base=*/0x1000);  // retries
    runtime.Start();
    runtime.Drain();

    // Each key executed exactly once; every duplicate was a cache hit.
    EXPECT_EQ(executions.load(), kCalls);
    const RuntimeSnapshot snap = runtime.Snapshot();
    EXPECT_EQ(snap.dedup_insertions, kCalls);
    EXPECT_EQ(snap.dedup_hits, kCalls);
    EXPECT_EQ(snap.workers_crashed, 1u);
    EXPECT_EQ(snap.failures, 0u);
}

}  // namespace
}  // namespace protoacc::rpc
