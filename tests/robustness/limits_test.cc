/**
 * Parse resource limits (satellite of the robustness PR): max payload
 * size, allocation budget, and depth bound must be enforced identically
 * by the reference parser, the table parser, and the accelerator
 * deserializer — and must thread through RuntimeConfig so a serving
 * runtime rejects oversized work with kResourceExhausted end to end.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "proto/schema_parser.h"
#include "rpc/server_runtime.h"
#include "tri_codec_rig.h"

namespace protoacc::robustness {
namespace {

using proto::DescriptorPool;
using proto::Message;

class ParseLimitsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto parsed = proto::ParseSchema(R"(
            message Doc {
                optional string text = 1;
                optional Doc child = 2;
                repeated uint64 nums = 3 [packed = true];
            }
        )",
                                               &pool_);
        ASSERT_TRUE(parsed.ok) << parsed.error;
        pool_.Compile(proto::HasbitsMode::kSparse);
        root_ = pool_.FindMessage("Doc");
        rig_ = std::make_unique<TriCodecRig>(&pool_, root_);
    }

    /// Doc with a @p text_len-byte string, nested @p depth levels down.
    std::vector<uint8_t>
    MakeWire(size_t text_len, int depth = 0)
    {
        proto::Arena arena;
        Message root = Message::Create(&arena, pool_, root_);
        Message cur = root;
        const auto &d = pool_.message(root_);
        for (int i = 0; i < depth; ++i)
            cur = cur.MutableMessage(*d.FindFieldByName("child"));
        cur.SetString(*d.FindFieldByName("text"),
                      std::string(text_len, 'x'));
        return proto::Serialize(root, nullptr);
    }

    void
    ExpectAllEngines(const std::vector<uint8_t> &wire, StatusCode want)
    {
        const TriVerdict v = rig_->ParseAll(wire);
        EXPECT_EQ(v.reference, want)
            << "reference: " << StatusCodeName(v.reference);
        EXPECT_EQ(v.table, want)
            << "table: " << StatusCodeName(v.table);
        EXPECT_EQ(v.accel, want)
            << "accel: " << StatusCodeName(v.accel);
    }

    DescriptorPool pool_;
    int root_ = -1;
    std::unique_ptr<TriCodecRig> rig_;
};

TEST_F(ParseLimitsTest, MaxPayloadBytesBindsExactly)
{
    const std::vector<uint8_t> wire = MakeWire(200);
    ParseLimits limits;
    limits.max_payload_bytes = wire.size();
    rig_->SetLimits(limits);
    ExpectAllEngines(wire, StatusCode::kOk);

    limits.max_payload_bytes = wire.size() - 1;
    rig_->SetLimits(limits);
    ExpectAllEngines(wire, StatusCode::kResourceExhausted);
}

TEST_F(ParseLimitsTest, AllocBudgetRejectsStringHeavyInput)
{
    const std::vector<uint8_t> wire = MakeWire(512);
    ParseLimits limits;
    limits.max_alloc_bytes = 64;  // far below the 512-byte string
    rig_->SetLimits(limits);
    ExpectAllEngines(wire, StatusCode::kResourceExhausted);

    limits.max_alloc_bytes = 1 << 20;
    rig_->SetLimits(limits);
    ExpectAllEngines(wire, StatusCode::kOk);
}

TEST_F(ParseLimitsTest, AllocBudgetCoversSubMessageObjects)
{
    // No strings at all: the charge that fires is the nested Doc
    // objects themselves.
    const std::vector<uint8_t> wire = MakeWire(0, /*depth=*/8);
    ParseLimits limits;
    limits.max_alloc_bytes = 32;
    rig_->SetLimits(limits);
    ExpectAllEngines(wire, StatusCode::kResourceExhausted);
}

TEST_F(ParseLimitsTest, DepthLimitBindsExactly)
{
    const std::vector<uint8_t> wire = MakeWire(4, /*depth=*/6);
    ParseLimits limits;
    limits.max_depth = 6;
    rig_->SetLimits(limits);
    ExpectAllEngines(wire, StatusCode::kOk);

    limits.max_depth = 5;
    rig_->SetLimits(limits);
    ExpectAllEngines(wire, StatusCode::kDepthExceeded);
}

TEST_F(ParseLimitsTest, ZeroLimitsMeanDefaults)
{
    rig_->SetLimits(ParseLimits{});
    ExpectAllEngines(MakeWire(2000, /*depth=*/20), StatusCode::kOk);
}

/// RuntimeConfig.parse_limits reaches every worker backend: oversized
/// requests die with kResourceExhausted, counted per cause, and the
/// client-visible error frame carries the code.
TEST_F(ParseLimitsTest, LimitsThreadThroughTheServingRuntime)
{
    rpc::RuntimeConfig config;
    config.parse_limits.max_payload_bytes = 64;
    rpc::RpcServerRuntime runtime(
        &pool_,
        [this](uint32_t) {
            return std::make_unique<rpc::SoftwareBackend>(
                cpu::BoomParams(), pool_);
        },
        config);
    runtime.RegisterMethod(
        1, root_, root_,
        [](const Message &, Message) {});
    runtime.Start();

    auto submit = [&](uint32_t call_id, const std::vector<uint8_t> &wire) {
        rpc::FrameHeader h;
        h.call_id = call_id;
        h.method_id = 1;
        h.kind = rpc::FrameKind::kRequest;
        h.payload_bytes = static_cast<uint32_t>(wire.size());
        EXPECT_EQ(runtime.Submit(h, wire.data()), StatusCode::kOk);
    };
    submit(1, MakeWire(16));   // under the limit
    submit(2, MakeWire(500));  // over the limit
    runtime.Drain();

    const rpc::RuntimeSnapshot snap = runtime.Snapshot();
    EXPECT_EQ(snap.calls, 2u);
    EXPECT_EQ(snap.failures, 1u);
    EXPECT_EQ(snap.failures_by_code[static_cast<size_t>(
                  StatusCode::kResourceExhausted)],
              1u);

    // Find call 2's reply: it must be an error frame carrying the code.
    bool found = false;
    size_t offset = 0;
    while (const auto frame = runtime.replies(0).Next(&offset)) {
        if (frame->header.call_id != 2)
            continue;
        found = true;
        EXPECT_EQ(frame->header.kind, rpc::FrameKind::kError);
        EXPECT_EQ(frame->header.status, StatusCode::kResourceExhausted);
    }
    EXPECT_TRUE(found);
}

}  // namespace
}  // namespace protoacc::robustness
