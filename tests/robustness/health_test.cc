/**
 * Device health domains: quarantine, state scrubbing, background
 * self-test, and live reintegration (rpc/health.h + the serving
 * runtime's health hooks).
 *
 * Covers the state machine in isolation (EWMA thresholds, probation's
 * reduced-trust contract, permanent fencing, the fail-closed scrub
 * contract), the scrub cost model against real device structure sizes,
 * the golden-vector self-tester, and the runtime integration: a worker
 * device that misbehaves repeatedly is quarantined, scrubbed,
 * self-tested and reintegrated while serving continues on the software
 * codec; a permanently broken device is fenced for good; a worker crash
 * mid-scrub leaves the domain fenced (never healthy); shared-queue
 * units quarantine and fence per unit with traffic routing around.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "accel/shared_queue.h"
#include "proto/schema_parser.h"
#include "rpc/codec_backend.h"
#include "rpc/health.h"
#include "rpc/server_runtime.h"
#include "sim/fault.h"

namespace protoacc::rpc {
namespace {

using proto::DescriptorPool;
using proto::Message;

// ---------------------------------------------------------------------
// DeviceHealth state machine
// ---------------------------------------------------------------------

HealthConfig
EnabledConfig()
{
    HealthConfig config;
    config.enabled = true;
    return config;
}

TEST(DeviceHealthTest, DisabledHealthAbsorbsEverything)
{
    DeviceHealth health{HealthConfig{}};  // enabled = false
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(health.OnIncident(IncidentKind::kWatchdogReset));
    EXPECT_EQ(health.state(), HealthState::kHealthy);
    EXPECT_TRUE(health.InService());
    EXPECT_EQ(health.snapshot().quarantines, 0u);
}

TEST(DeviceHealthTest, SingleIncidentReplaysInsteadOfQuarantining)
{
    DeviceHealth health{EnabledConfig()};
    for (int i = 0; i < 10; ++i)
        health.OnSuccess();
    // One incident: absorbed (the op already replayed via watchdog /
    // fallback); the domain is at most suspect, never fenced.
    EXPECT_FALSE(health.OnIncident(IncidentKind::kWatchdogReset));
    EXPECT_TRUE(health.InService());
    EXPECT_EQ(health.state(), HealthState::kSuspect);  // ewma 0.25
    // Clean ops decay the EWMA back under the suspect line.
    for (int i = 0; i < 10; ++i)
        health.OnSuccess();
    EXPECT_EQ(health.state(), HealthState::kHealthy);
    const HealthSnapshot snap = health.snapshot();
    EXPECT_EQ(snap.total_incidents(), 1u);
    EXPECT_EQ(snap.quarantines, 0u);
}

TEST(DeviceHealthTest, EarlyIncidentsWaitForMinObservations)
{
    // Defaults: alpha 0.25, quarantine at 0.45, min_observations 4.
    // Three straight incidents push the EWMA past the threshold
    // (0.578) but only the one at observation >= 4 may quarantine.
    DeviceHealth health{EnabledConfig()};
    health.OnSuccess();  // observation 1
    EXPECT_FALSE(health.OnIncident(IncidentKind::kWatchdogReset));
    EXPECT_FALSE(health.OnIncident(IncidentKind::kWatchdogReset));
    EXPECT_TRUE(health.OnIncident(IncidentKind::kWatchdogReset));
    EXPECT_EQ(health.state(), HealthState::kQuarantined);
    EXPECT_FALSE(health.InService());
    const HealthSnapshot snap = health.snapshot();
    EXPECT_EQ(snap.quarantines, 1u);
    EXPECT_TRUE(snap.fenced_from_traffic);
    EXPECT_EQ(snap.incidents[static_cast<size_t>(
                  IncidentKind::kWatchdogReset)],
              3u);
}

TEST(DeviceHealthTest, ScrubAndPassingSelfTestReintegrateViaProbation)
{
    HealthConfig config = EnabledConfig();
    config.probation_ops = 4;
    DeviceHealth health{config};
    health.OnSuccess();
    while (!health.OnIncident(IncidentKind::kUnitFault)) {
    }
    ASSERT_EQ(health.state(), HealthState::kQuarantined);

    health.BeginScrub();
    EXPECT_EQ(health.state(), HealthState::kScrubbing);
    EXPECT_FALSE(health.InService());  // fail closed while scrubbing

    const ScrubCost cost = ComputeScrubCost(config);
    health.CompleteScrub(cost);
    EXPECT_EQ(health.state(), HealthState::kSelfTest);
    EXPECT_FALSE(health.InService());

    EXPECT_EQ(health.CompleteSelfTest(true, 1000),
              HealthState::kProbation);
    EXPECT_TRUE(health.InService());
    HealthSnapshot snap = health.snapshot();
    EXPECT_EQ(snap.scrubs_completed, 1u);
    EXPECT_EQ(snap.scrub_cycles, cost.total());
    EXPECT_EQ(snap.self_tests_passed, 1u);
    EXPECT_EQ(snap.self_test_cycles, 1000u);
    EXPECT_EQ(snap.probation_ops_remaining, 4u);

    // probation_ops clean operations finish the reintegration.
    for (uint64_t i = 0; i < config.probation_ops; ++i)
        health.OnSuccess();
    EXPECT_EQ(health.state(), HealthState::kHealthy);
    EXPECT_EQ(health.snapshot().reintegrations, 1u);
}

TEST(DeviceHealthTest, ProbationReQuarantinesOnAnyIncident)
{
    // Reduced trust: a domain fresh out of self-test gets no benefit
    // of the doubt — the very first incident re-quarantines even
    // though the EWMA restarted at zero.
    DeviceHealth health{EnabledConfig()};
    health.OnSuccess();
    while (!health.OnIncident(IncidentKind::kWatchdogReset)) {
    }
    health.BeginScrub();
    health.CompleteScrub(ComputeScrubCost(EnabledConfig()));
    ASSERT_EQ(health.CompleteSelfTest(true, 100),
              HealthState::kProbation);

    EXPECT_TRUE(health.OnIncident(IncidentKind::kCrcFailure));
    EXPECT_EQ(health.state(), HealthState::kQuarantined);
    EXPECT_EQ(health.snapshot().quarantines, 2u);
}

TEST(DeviceHealthTest, RepeatedSelfTestFailuresFencePermanently)
{
    // max_self_test_failures = 2 (default): the first failed test
    // re-queues another scrub + test round, the second fences for
    // good. Later incidents are still recorded, never acted on.
    DeviceHealth health{EnabledConfig()};
    health.OnSuccess();
    while (!health.OnIncident(IncidentKind::kUnitFault)) {
    }
    const ScrubCost cost = ComputeScrubCost(EnabledConfig());

    health.BeginScrub();
    health.CompleteScrub(cost);
    EXPECT_EQ(health.CompleteSelfTest(false, 50),
              HealthState::kQuarantined);

    health.BeginScrub();
    health.CompleteScrub(cost);
    EXPECT_EQ(health.CompleteSelfTest(false, 50), HealthState::kFenced);
    EXPECT_FALSE(health.InService());

    EXPECT_FALSE(health.OnIncident(IncidentKind::kWatchdogReset));
    EXPECT_EQ(health.state(), HealthState::kFenced);
    const HealthSnapshot snap = health.snapshot();
    EXPECT_EQ(snap.self_tests_failed, 2u);
    EXPECT_EQ(snap.quarantines, 2u);  // initial + the re-queued round
    EXPECT_TRUE(snap.fenced_from_traffic);
}

TEST(DeviceHealthTest, PassingSelfTestResetsConsecutiveFailureCount)
{
    // fail, pass, fail must NOT fence: only *consecutive* failures
    // count toward max_self_test_failures.
    HealthConfig config = EnabledConfig();
    DeviceHealth health{config};
    health.OnSuccess();
    while (!health.OnIncident(IncidentKind::kUnitFault)) {
    }
    const ScrubCost cost = ComputeScrubCost(config);

    health.BeginScrub();
    health.CompleteScrub(cost);
    ASSERT_EQ(health.CompleteSelfTest(false, 1),
              HealthState::kQuarantined);
    health.BeginScrub();
    health.CompleteScrub(cost);
    ASSERT_EQ(health.CompleteSelfTest(true, 1), HealthState::kProbation);

    // Back to quarantine (probation incident), then one more failure:
    // the counter restarted, so this is failure #1, not #3.
    ASSERT_TRUE(health.OnIncident(IncidentKind::kUnitFault));
    health.BeginScrub();
    health.CompleteScrub(cost);
    EXPECT_EQ(health.CompleteSelfTest(false, 1),
              HealthState::kQuarantined);
    EXPECT_NE(health.state(), HealthState::kFenced);
}

TEST(DeviceHealthTest, InterruptedScrubStaysFencedFailClosed)
{
    // The only path back into service runs through CompleteScrub +
    // a passed CompleteSelfTest. A scrub that never completes (crash,
    // shutdown) leaves the domain fenced forever.
    DeviceHealth health{EnabledConfig()};
    health.OnSuccess();
    while (!health.OnIncident(IncidentKind::kWatchdogReset)) {
    }
    health.BeginScrub();
    // ... interruption: no CompleteScrub ever arrives ...
    EXPECT_EQ(health.state(), HealthState::kScrubbing);
    EXPECT_FALSE(health.InService());
    EXPECT_TRUE(health.snapshot().fenced_from_traffic);
    EXPECT_EQ(health.snapshot().scrubs_completed, 0u);
}

// ---------------------------------------------------------------------
// Scrub cost model
// ---------------------------------------------------------------------

TEST(ScrubCostTest, DefaultDeviceScrubPricesEveryStructure)
{
    // Default device: 16-entry ADT response buffers and 25-entry
    // on-chip stacks on both units; default health knobs: 2 cy/ADT
    // entry, 1 cy/stack entry, 128 spill entries at 8 cy, 64-byte
    // streaming buffers cleared 16 bytes/cycle.
    const ScrubCost cost = ComputeScrubCost(HealthConfig{});
    EXPECT_EQ(cost.adt_buffer_cycles, (16u + 16u) * 2u);
    EXPECT_EQ(cost.context_stack_cycles, 25u + 25u);
    EXPECT_EQ(cost.spill_region_cycles, 128u * 8u);
    EXPECT_EQ(cost.memloader_cycles, 4u);
    EXPECT_EQ(cost.memwriter_cycles, 4u);
    EXPECT_EQ(cost.total(), 64u + 50u + 1024u + 4u + 4u);
}

TEST(ScrubCostTest, ScrubCostTracksActualDeviceStructureSizes)
{
    // A device provisioned with bigger ADT buffers / deeper stacks
    // costs proportionally more to scrub — the cost comes from the
    // device's own AccelConfig, not a fixed constant.
    accel::AccelConfig accel;
    accel.deser.adt_buffer_entries = 64;
    accel.ser.adt_buffer_entries = 32;
    accel.deser.on_chip_stack_depth = 50;
    accel.ser.on_chip_stack_depth = 10;
    const ScrubCost cost = ComputeScrubCost(accel, HealthConfig{});
    EXPECT_EQ(cost.adt_buffer_cycles, (64u + 32u) * 2u);
    EXPECT_EQ(cost.context_stack_cycles, 50u + 10u);
    // Health knobs scale it too.
    HealthConfig expensive;
    expensive.scrub_cycles_per_spill_entry = 16;
    expensive.spill_region_entries = 256;
    EXPECT_EQ(ComputeScrubCost(accel, expensive).spill_region_cycles,
              256u * 16u);
}

// ---------------------------------------------------------------------
// Golden-vector self-tester
// ---------------------------------------------------------------------

class SelfTesterTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto parsed = proto::ParseSchema(R"(
            message EchoRequest {
                optional string text = 1;
                optional uint32 tag = 2;
            }
        )",
                                               &pool_);
        ASSERT_TRUE(parsed.ok) << parsed.error;
        pool_.Compile(proto::HasbitsMode::kSparse);
        req_ = pool_.FindMessage("EchoRequest");
    }

    DescriptorPool pool_;
    int req_ = -1;
};

TEST_F(SelfTesterTest, CleanDevicePassesAndChargesCycles)
{
    AcceleratedBackend backend(pool_);
    SelfTester tester(&pool_, req_);
    uint64_t cycles = 0;
    EXPECT_TRUE(tester.Run(&backend, 4, &cycles));
    EXPECT_GT(cycles, 0u);
}

TEST_F(SelfTesterTest, FaultingDeviceFailsTheTest)
{
    // A unit whose jobs die mid-op cannot produce the golden bytes.
    sim::FaultConfig fault_config;
    fault_config.unit_kill_rate = 1.0;
    sim::FaultInjector injector(0xBAD, fault_config);
    AcceleratedBackend backend(pool_);
    backend.SetFaultInjector(&injector);
    SelfTester tester(&pool_, req_);
    uint64_t cycles = 0;
    EXPECT_FALSE(tester.Run(&backend, 4, &cycles));
}

TEST_F(SelfTesterTest, WatchdogRecoveredWedgePassesTheTest)
{
    // A wedge the watchdog recovers still yields byte-correct output:
    // the self-test verdict is about data integrity, and the policy
    // layer prices the recovery as incidents separately.
    sim::FaultConfig fault_config;
    fault_config.unit_wedge_rate = 1.0;
    sim::FaultInjector injector(0xBAD, fault_config);
    accel::AccelConfig accel_config;
    accel_config.watchdog.budget_cycles = 10'000;
    AcceleratedBackend backend(pool_, accel_config);
    backend.SetFaultInjector(&injector);
    SelfTester tester(&pool_, req_);
    uint64_t cycles = 0;
    EXPECT_TRUE(tester.Run(&backend, 2, &cycles));
    EXPECT_GT(backend.watchdog_stats().resets, 0u);
}

// ---------------------------------------------------------------------
// Serving-runtime integration
// ---------------------------------------------------------------------

class HealthRuntimeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto parsed = proto::ParseSchema(R"(
            message EchoRequest {
                optional string text = 1;
                optional uint32 tag = 2;
            }
            message EchoResponse {
                optional string text = 1;
                optional uint32 tag = 2;
            }
        )",
                                               &pool_);
        ASSERT_TRUE(parsed.ok) << parsed.error;
        pool_.Compile(proto::HasbitsMode::kSparse);
        req_ = pool_.FindMessage("EchoRequest");
        rsp_ = pool_.FindMessage("EchoResponse");
    }

    Handler
    EchoHandler()
    {
        return [this](const Message &request, Message response) {
            const auto &rd = pool_.message(req_);
            const auto &sd = pool_.message(rsp_);
            response.SetString(
                *sd.FindFieldByName("text"),
                request.GetString(*rd.FindFieldByName("text")));
            response.SetUint32(
                *sd.FindFieldByName("tag"),
                request.GetUint32(*rd.FindFieldByName("tag")));
        };
    }

    /// Hybrid backend per worker: accelerator primary (with the
    /// worker-indexed fault injector when armed), software fallback.
    /// Raw engine pointers are kept so tests can detach injectors
    /// between measurement windows (quiescent only).
    RpcServerRuntime::BackendFactory
    HybridFactory(const accel::AccelConfig &accel_config)
    {
        return [this, accel_config](uint32_t worker) {
            auto accel = std::make_unique<AcceleratedBackend>(
                pool_, accel_config);
            if (worker < injectors_.size() &&
                injectors_[worker] != nullptr)
                accel->SetFaultInjector(injectors_[worker].get());
            engines_.resize(
                std::max<size_t>(engines_.size(), worker + 1));
            engines_[worker] = accel.get();
            return std::make_unique<HybridCodecBackend>(
                std::move(accel),
                std::make_unique<SoftwareBackend>(cpu::BoomParams(),
                                                  pool_));
        };
    }

    void
    ArmInjector(uint32_t worker, const sim::FaultConfig &config,
                uint64_t seed = 0xBADD)
    {
        injectors_.resize(
            std::max<size_t>(injectors_.size(), worker + 1));
        injectors_[worker] =
            std::make_unique<sim::FaultInjector>(seed + worker, config);
    }

    void
    SubmitEchoes(RpcServerRuntime *runtime, uint32_t calls)
    {
        for (uint32_t i = 0; i < calls; ++i) {
            const uint32_t id = ++next_call_id_;
            proto::Arena arena;
            Message request = Message::Create(&arena, pool_, req_);
            const auto &rd = pool_.message(req_);
            request.SetString(*rd.FindFieldByName("text"),
                              "payload-" + std::to_string(id));
            request.SetUint32(*rd.FindFieldByName("tag"), id);
            const std::vector<uint8_t> wire =
                proto::Serialize(request, nullptr);
            FrameHeader h;
            h.call_id = id;
            h.method_id = 1;
            h.kind = FrameKind::kRequest;
            h.payload_bytes = static_cast<uint32_t>(wire.size());
            ASSERT_EQ(runtime->Submit(h, wire.data()), StatusCode::kOk);
        }
    }

    /// Decode every reply stream into call_id -> echoed text.
    std::map<uint32_t, std::string>
    HarvestReplies(const RpcServerRuntime &runtime)
    {
        std::map<uint32_t, std::string> texts;
        proto::Arena arena;
        const auto &sd = pool_.message(rsp_);
        for (uint32_t w = 0; w < runtime.num_workers(); ++w) {
            size_t offset = 0;
            while (const auto frame =
                       runtime.replies(w).Next(&offset)) {
                Message response =
                    Message::Create(&arena, pool_, rsp_);
                const proto::ParseStatus parsed =
                    proto::ParseFromBuffer(frame->payload,
                                           frame->header.payload_bytes,
                                           &response, nullptr);
                EXPECT_EQ(parsed, proto::ParseStatus::kOk);
                if (parsed != proto::ParseStatus::kOk)
                    continue;
                texts[frame->header.call_id] = std::string(
                    response.GetString(*sd.FindFieldByName("text")));
            }
        }
        return texts;
    }

    void
    ExpectAllEchoed(const RpcServerRuntime &runtime, uint32_t calls)
    {
        const std::map<uint32_t, std::string> texts =
            HarvestReplies(runtime);
        ASSERT_EQ(texts.size(), calls);
        for (uint32_t i = 1; i <= calls; ++i)
            EXPECT_EQ(texts.at(i), "payload-" + std::to_string(i));
    }

    DescriptorPool pool_;
    int req_ = -1;
    int rsp_ = -1;
    uint32_t next_call_id_ = 0;
    std::vector<std::unique_ptr<sim::FaultInjector>> injectors_;
    std::vector<AcceleratedBackend *> engines_;
};

TEST_F(HealthRuntimeTest, RepeatOffenderDeviceQuarantinesThenReintegrates)
{
    // Phase 1: every device op wedges (watchdog recovers each one, so
    // answers stay correct) — the repeat offender is quarantined and a
    // maintenance window opens. Phase 2: the fault clears; once the
    // worker's timeline passes the window the passed self-test
    // reintegrates the device through probation back to healthy.
    sim::FaultConfig fault_config;
    fault_config.unit_wedge_rate = 1.0;
    ArmInjector(0, fault_config);

    accel::AccelConfig accel_config;
    accel_config.watchdog.budget_cycles = 2'000;
    accel_config.watchdog.reset_cycles = 256;

    RuntimeConfig config;
    config.num_workers = 1;
    config.health.enabled = true;
    config.health.probation_ops = 8;
    RpcServerRuntime runtime(&pool_, HybridFactory(accel_config),
                             config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());

    SubmitEchoes(&runtime, 8);  // pre-load: one deterministic batch
    runtime.Start();
    runtime.Drain();

    // Every wedge was recovered on-device — but the error rate crossed
    // the quarantine threshold, so the device is now fenced mid-scrub.
    RuntimeSnapshot snap = runtime.Snapshot();
    EXPECT_EQ(snap.failures, 0u);
    EXPECT_EQ(snap.health_quarantines, 1u);
    EXPECT_EQ(snap.health_fenced_domains, 1u);
    EXPECT_EQ(snap.workers[0].device_health.state,
              HealthState::kScrubbing);
    EXPECT_TRUE(snap.workers[0].device_health.fenced_from_traffic);
    EXPECT_EQ(snap.health_scrubs_completed, 0u);  // window still open

    // The fault clears; serving continues (software while fenced) and
    // the maintenance window completes on the worker's timeline.
    engines_[0]->SetFaultInjector(nullptr);
    SubmitEchoes(&runtime, 300);
    runtime.Drain();

    snap = runtime.Snapshot();
    EXPECT_EQ(snap.failures, 0u);
    EXPECT_EQ(snap.health_scrubs_completed, 1u);
    EXPECT_GT(snap.health_scrub_cycles, 0u);
    EXPECT_EQ(snap.health_self_tests_passed, 1u);
    EXPECT_GT(snap.health_self_test_cycles, 0u);
    EXPECT_EQ(snap.health_reintegrations, 1u);
    EXPECT_EQ(snap.health_fenced_domains, 0u);
    EXPECT_EQ(snap.workers[0].device_health.state,
              HealthState::kHealthy);
    // Batches served while fenced degraded to the software codec.
    EXPECT_GT(snap.fallback_forced, 0u);
    ExpectAllEchoed(runtime, 308);
}

TEST_F(HealthRuntimeTest, PermanentlyBrokenDeviceIsFencedForGood)
{
    // No watchdog: every device op dies (kAccelFault) and falls back
    // to software. The self-test keeps failing against the broken
    // engine, so after max_self_test_failures rounds the domain is
    // permanently fenced — and serving never missed a beat.
    sim::FaultConfig fault_config;
    fault_config.unit_kill_rate = 1.0;
    ArmInjector(0, fault_config);

    RuntimeConfig config;
    config.num_workers = 1;
    config.health.enabled = true;
    RpcServerRuntime runtime(&pool_, HybridFactory({}), config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());

    SubmitEchoes(&runtime, 8);
    runtime.Start();
    runtime.Drain();

    RuntimeSnapshot snap = runtime.Snapshot();
    EXPECT_EQ(snap.failures, 0u);  // fallback answered every call
    EXPECT_EQ(snap.health_quarantines, 1u);
    EXPECT_GT(snap.fallback_accel_fault, 0u);

    // Keep serving until both self-test rounds have failed.
    for (int round = 0; round < 4; ++round) {
        SubmitEchoes(&runtime, 16);
        runtime.Drain();
    }

    snap = runtime.Snapshot();
    EXPECT_EQ(snap.failures, 0u);
    EXPECT_EQ(snap.workers[0].device_health.state, HealthState::kFenced);
    EXPECT_EQ(snap.health_self_tests_passed, 0u);
    EXPECT_GE(snap.health_self_tests_failed, 2u);
    EXPECT_EQ(snap.health_reintegrations, 0u);
    EXPECT_EQ(snap.health_fenced_domains, 1u);
    ExpectAllEchoed(runtime, 8 + 4 * 16);
}

TEST_F(HealthRuntimeTest, KillDuringScrubLeavesDomainFencedFailClosed)
{
    // Deterministic fail-closed regression: the device quarantines at
    // a known call (every op wedges; max_batch = 1 makes each call one
    // batch), then an injected worker crash lands before the
    // maintenance window can complete. The domain must still be
    // fenced — an interrupted scrub never reports healthy.
    sim::FaultConfig fault_config;
    fault_config.unit_wedge_rate = 1.0;
    fault_config.worker_kills = {{0, 5}};
    ArmInjector(0, fault_config);

    accel::AccelConfig accel_config;
    accel_config.watchdog.budget_cycles = 10'000;

    RuntimeConfig config;
    config.num_workers = 1;
    config.max_batch = 1;
    config.health.enabled = true;
    config.fault_injector = injectors_[0].get();
    RpcServerRuntime runtime(&pool_, HybridFactory(accel_config),
                             config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());

    SubmitEchoes(&runtime, 8);
    runtime.Start();
    runtime.Drain();

    const RuntimeSnapshot snap = runtime.Snapshot();
    EXPECT_TRUE(snap.workers[0].crashed);
    EXPECT_EQ(snap.workers[0].calls, 5u);
    EXPECT_EQ(snap.health_quarantines, 1u);
    // The scrub began but never completed: kScrubbing, fenced.
    EXPECT_EQ(snap.workers[0].device_health.state,
              HealthState::kScrubbing);
    EXPECT_TRUE(snap.workers[0].device_health.fenced_from_traffic);
    EXPECT_EQ(snap.health_fenced_domains, 1u);
    EXPECT_EQ(snap.health_scrubs_completed, 0u);
    EXPECT_EQ(snap.health_self_tests_passed, 0u);
    EXPECT_EQ(snap.health_reintegrations, 0u);
}

TEST_F(HealthRuntimeTest, ClientReportedCrcFailuresQuarantineTheDevice)
{
    // Incidents can be attributed from outside the worker: a client
    // rejecting this worker's response CRCs implicates the device that
    // serialized them. Enough reports quarantine it; the clean device
    // then passes its self-test and reintegrates.
    RuntimeConfig config;
    config.num_workers = 1;
    config.health.enabled = true;
    config.health.probation_ops = 4;
    RpcServerRuntime runtime(&pool_, HybridFactory({}), config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
    runtime.Start();

    SubmitEchoes(&runtime, 2);
    runtime.Drain();

    for (int i = 0; i < 5; ++i)
        runtime.ReportDeviceIncident(0, IncidentKind::kCrcFailure);
    SubmitEchoes(&runtime, 1);
    runtime.Drain();

    RuntimeSnapshot snap = runtime.Snapshot();
    EXPECT_EQ(snap.health_quarantines, 1u);
    EXPECT_EQ(snap.workers[0].device_health.incidents[static_cast<size_t>(
                  IncidentKind::kCrcFailure)],
              5u);
    EXPECT_TRUE(snap.workers[0].device_health.fenced_from_traffic);

    // Clean device: the maintenance window passes, the self-test
    // passes, probation's clean ops finish the reintegration.
    SubmitEchoes(&runtime, 64);
    runtime.Drain();
    snap = runtime.Snapshot();
    EXPECT_EQ(snap.health_self_tests_passed, 1u);
    EXPECT_EQ(snap.health_reintegrations, 1u);
    EXPECT_EQ(snap.workers[0].device_health.state,
              HealthState::kHealthy);
    EXPECT_EQ(snap.failures, 0u);
    ExpectAllEchoed(runtime, 67);
}

TEST_F(HealthRuntimeTest, SharedUnitWithPermanentFaultIsFencedAndRoutedAround)
{
    // Two shared units; unit 1 develops a permanent wedge. Its health
    // domain quarantines it, both self-test rounds draw faults from
    // the same (permanent) source, and the unit is fenced out of
    // arbitration — traffic continues on unit 0 alone.
    sim::FaultConfig unit_fault;
    unit_fault.permanent_fault_after_jobs = 1;
    unit_fault.permanent_fault_kind = sim::UnitFaultKind::kWedge;
    sim::FaultInjector unit1_injector(0xFE11CE, unit_fault);

    accel::SharedQueueConfig queue_config;
    queue_config.num_units = 2;
    queue_config.watchdog_budget_cycles = 2'000'000;
    queue_config.watchdog_reset_cycles = 1'000;
    accel::SharedAccelQueue queue(queue_config);
    queue.SetUnitFaultInjector(1, &unit1_injector);

    RuntimeConfig config;
    config.num_workers = 2;
    config.shared_accel = &queue;
    config.health.enabled = true;
    config.health.min_observations = 2;
    RpcServerRuntime runtime(&pool_, HybridFactory({}), config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
    runtime.Start();

    uint32_t total = 0;
    for (int round = 0; round < 8; ++round) {
        SubmitEchoes(&runtime, 64);
        total += 64;
        runtime.Drain();
    }

    const RuntimeSnapshot snap = runtime.Snapshot();
    ASSERT_EQ(snap.shared_units.size(), 2u);
    EXPECT_EQ(snap.shared_units[1].state, HealthState::kFenced);
    EXPECT_GE(snap.shared_units[1].quarantines, 1u);
    EXPECT_GE(snap.shared_units[1].self_tests_failed, 2u);
    EXPECT_TRUE(snap.shared_units[1].fenced_from_traffic);
    // Unit 0 keeps serving, untouched by its neighbor's fault.
    EXPECT_TRUE(snap.shared_units[0].state == HealthState::kHealthy ||
                snap.shared_units[0].state == HealthState::kSuspect);
    EXPECT_GE(snap.health_fenced_domains, 1u);

    const accel::SharedAccelQueue::Stats qs = queue.stats();
    EXPECT_EQ(qs.fenced_units, 1u);
    EXPECT_EQ(queue.available_units(), 1u);
    EXPECT_TRUE(queue.unit_fenced(1));
    EXPECT_GT(qs.health_blocked_cycles, 0u);
    // Batches submitted after the fence all landed on unit 0.
    EXPECT_EQ(snap.failures, 0u);
    ExpectAllEchoed(runtime, total);
}

TEST_F(HealthRuntimeTest, SharedUnitIntermittentBurstReintegrates)
{
    // Unit 1 suffers a correlated intermittent burst: the first wedged
    // batch quarantines (sensitive thresholds below), the remaining
    // burst drains into the first (failing) self-test round, the
    // second round samples clean — the unit passes, reintegrates
    // through probation and keeps serving instead of being fenced.
    sim::FaultConfig unit_fault;
    unit_fault.unit_wedge_rate = 0.02;
    unit_fault.unit_fault_burst_len = 5;
    sim::FaultInjector unit1_injector(0x1B257, unit_fault);

    accel::SharedQueueConfig queue_config;
    queue_config.num_units = 2;
    queue_config.watchdog_budget_cycles = 2'000'000;
    queue_config.watchdog_reset_cycles = 1'000;
    accel::SharedAccelQueue queue(queue_config);
    queue.SetUnitFaultInjector(1, &unit1_injector);

    RuntimeConfig config;
    config.num_workers = 2;
    config.shared_accel = &queue;
    config.health.enabled = true;
    // Hair trigger: the first burst fault quarantines immediately, so
    // the rest of the burst (burst_len - 1 = 4 faults) is consumed
    // exactly by the first self_test_vectors = 4 verdict samples.
    config.health.min_observations = 1;
    config.health.quarantine_threshold = 0.25;
    config.health.probation_ops = 4;
    RpcServerRuntime runtime(&pool_, HybridFactory({}), config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
    runtime.Start();

    uint32_t total = 0;
    RuntimeSnapshot snap;
    for (int round = 0; round < 40; ++round) {
        SubmitEchoes(&runtime, 64);
        total += 64;
        runtime.Drain();
        snap = runtime.Snapshot();
        if (snap.shared_units[1].self_tests_passed >= 1)
            break;  // burst hit, unit already back from maintenance
    }
    // The intermittent fault has cleared; clean rounds finish the
    // probation reintegration. (A fault drawn mid-probation would
    // correctly re-quarantine — that path is exercised above in
    // ProbationReQuarantinesOnAnyIncident.)
    queue.SetUnitFaultInjector(1, nullptr);
    // Probation successes only accrue when the dispatcher lands a
    // batch on unit 1 (the earliest-free policy favors unit 0 under
    // light load), so keep serving until reintegration shows up.
    for (int round = 0; round < 64; ++round) {
        SubmitEchoes(&runtime, 64);
        total += 64;
        runtime.Drain();
        if (runtime.Snapshot().health_reintegrations >= 1)
            break;
    }

    snap = runtime.Snapshot();
    ASSERT_EQ(snap.shared_units.size(), 2u);
    // The burst quarantined the unit; the first self-test round failed
    // (burst residue), the second passed — the unit came back instead
    // of being fenced.
    EXPECT_GE(snap.shared_units[1].quarantines, 1u);
    EXPECT_GE(snap.shared_units[1].self_tests_failed, 1u);
    EXPECT_GE(snap.shared_units[1].self_tests_passed, 1u);
    EXPECT_NE(snap.shared_units[1].state, HealthState::kFenced);
    EXPECT_FALSE(snap.shared_units[1].fenced_from_traffic);
    EXPECT_GE(snap.health_reintegrations, 1u);
    EXPECT_EQ(queue.stats().fenced_units, 0u);
    EXPECT_EQ(queue.available_units(), 2u);
    EXPECT_EQ(snap.failures, 0u);
    ExpectAllEchoed(runtime, total);
}

TEST_F(HealthRuntimeTest, HealthDisabledKeepsLegacyBehavior)
{
    // With health disabled nothing is tracked, fenced, or scrubbed —
    // the pre-health serving behavior, bit for bit.
    sim::FaultConfig fault_config;
    fault_config.unit_wedge_rate = 1.0;
    ArmInjector(0, fault_config);

    accel::AccelConfig accel_config;
    accel_config.watchdog.budget_cycles = 2'000;

    RuntimeConfig config;
    config.num_workers = 1;
    RpcServerRuntime runtime(&pool_, HybridFactory(accel_config),
                             config);
    runtime.RegisterMethod(1, req_, rsp_, EchoHandler());
    SubmitEchoes(&runtime, 16);
    runtime.Start();
    runtime.Drain();

    const RuntimeSnapshot snap = runtime.Snapshot();
    EXPECT_GT(snap.watchdog_resets, 0u);  // faults happened...
    EXPECT_EQ(snap.health_quarantines, 0u);  // ...nothing was fenced
    EXPECT_EQ(snap.health_fenced_domains, 0u);
    EXPECT_TRUE(snap.shared_units.empty());
    EXPECT_EQ(snap.workers[0].device_health.state,
              HealthState::kHealthy);
    EXPECT_EQ(snap.failures, 0u);
    ExpectAllEchoed(runtime, 16);
}

}  // namespace
}  // namespace protoacc::rpc
