/**
 * FaultInjector unit tests: determinism (same seed, same decisions),
 * rate behavior at the extremes, and the accelerator/channel fault
 * hooks actually changing component behavior.
 */
#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "proto/schema_random.h"
#include "proto/serializer.h"
#include "rpc/codec_backend.h"
#include "sim/fault.h"

namespace protoacc::sim {
namespace {

TEST(FaultInjector, SameSeedSameDecisions)
{
    FaultConfig config;
    config.unit_kill_rate = 0.1;
    config.unit_stall_rate = 0.2;
    config.frame_drop_rate = 0.05;
    config.frame_truncate_rate = 0.05;
    config.frame_corrupt_rate = 0.1;

    FaultInjector a(1234, config);
    FaultInjector b(1234, config);
    std::vector<uint8_t> buf_a(64, 0xAB);
    std::vector<uint8_t> buf_b(64, 0xAB);
    for (int i = 0; i < 200; ++i) {
        const UnitFault fa = a.SampleUnitFault();
        const UnitFault fb = b.SampleUnitFault();
        EXPECT_EQ(static_cast<int>(fa.kind), static_cast<int>(fb.kind));
        EXPECT_EQ(fa.stall_cycles, fb.stall_cycles);
        EXPECT_EQ(static_cast<int>(a.SampleChannelFault()),
                  static_cast<int>(b.SampleChannelFault()));
    }
    const auto ma = a.MutateWire(&buf_a, 5);
    const auto mb = b.MutateWire(&buf_b, 5);
    ASSERT_EQ(ma.size(), mb.size());
    for (size_t i = 0; i < ma.size(); ++i)
        EXPECT_EQ(static_cast<int>(ma[i]), static_cast<int>(mb[i]));
    EXPECT_EQ(buf_a, buf_b);
}

TEST(FaultInjector, ZeroRatesInjectNothing)
{
    FaultInjector injector(1, FaultConfig{});
    std::vector<uint8_t> buf(32, 0x11);
    const std::vector<uint8_t> orig = buf;
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(static_cast<int>(injector.SampleUnitFault().kind),
                  static_cast<int>(UnitFaultKind::kNone));
        EXPECT_EQ(static_cast<int>(injector.SampleChannelFault()),
                  static_cast<int>(ChannelFaultKind::kNone));
        EXPECT_FALSE(injector.MaybeMutateWire(&buf));
    }
    EXPECT_EQ(buf, orig);
    const FaultStats stats = injector.stats();
    EXPECT_EQ(stats.units_killed, 0u);
    EXPECT_EQ(stats.frames_dropped, 0u);
    EXPECT_EQ(stats.buffers_mutated, 0u);
}

TEST(FaultInjector, CertainRatesAlwaysInject)
{
    FaultConfig config;
    config.unit_kill_rate = 1.0;
    config.wire_mutation_rate = 1.0;
    config.frame_drop_rate = 1.0;
    FaultInjector injector(2, config);
    std::vector<uint8_t> buf(32, 0x22);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(static_cast<int>(injector.SampleUnitFault().kind),
                  static_cast<int>(UnitFaultKind::kKill));
        EXPECT_EQ(static_cast<int>(injector.SampleChannelFault()),
                  static_cast<int>(ChannelFaultKind::kDrop));
        EXPECT_TRUE(injector.MaybeMutateWire(&buf));
    }
    const FaultStats stats = injector.stats();
    EXPECT_EQ(stats.units_killed, 50u);
    EXPECT_EQ(stats.frames_dropped, 50u);
    EXPECT_EQ(stats.buffers_mutated, 50u);
    EXPECT_GE(stats.wire_mutations, 50u);
}

TEST(FaultInjector, StallCyclesStayWithinConfiguredBounds)
{
    FaultConfig config;
    config.unit_stall_rate = 1.0;
    config.stall_cycles_min = 500;
    config.stall_cycles_max = 700;
    FaultInjector injector(3, config);
    for (int i = 0; i < 100; ++i) {
        const UnitFault f = injector.SampleUnitFault();
        ASSERT_EQ(static_cast<int>(f.kind),
                  static_cast<int>(UnitFaultKind::kStall));
        EXPECT_GE(f.stall_cycles, 500u);
        EXPECT_LE(f.stall_cycles, 700u);
    }
}

TEST(FaultInjector, MutationsHandleEmptyAndTinyBuffers)
{
    FaultInjector injector(4);
    for (size_t len = 0; len <= 3; ++len) {
        std::vector<uint8_t> buf(len, 0x5A);
        injector.MutateWire(&buf, 8);  // must not crash or hang
    }
}

/// An injected unit kill must surface as a device-level failure with
/// the destination object untouched, and detach must restore health.
TEST(FaultInjectorAccel, UnitKillFailsTheJobAndLeavesDestUntouched)
{
    proto::DescriptorPool pool;
    protoacc::Rng rng(5);
    proto::SchemaGenOptions opts;
    opts.max_depth = 1;
    const int root = proto::GenerateRandomSchema(&pool, &rng, opts);
    pool.Compile(proto::HasbitsMode::kSparse);

    rpc::AcceleratedBackend backend(pool);
    proto::Arena arena;
    proto::Message msg = proto::Message::Create(&arena, pool, root);
    proto::PopulateRandomMessage(msg, &rng, proto::MessageGenOptions{});
    const std::vector<uint8_t> wire = proto::Serialize(msg, nullptr);

    FaultConfig config;
    config.unit_kill_rate = 1.0;
    FaultInjector injector(6, config);
    backend.SetFaultInjector(&injector);

    proto::Message dest = proto::Message::Create(&arena, pool, root);
    EXPECT_EQ(backend.Deserialize(wire.data(), wire.size(), &dest),
              StatusCode::kAccelFault);
    EXPECT_EQ(backend.last_status(), StatusCode::kAccelFault);
    // Serialize path degrades to an empty result, not an abort.
    EXPECT_TRUE(backend.Serialize(msg).empty());
    EXPECT_EQ(backend.last_status(), StatusCode::kAccelFault);

    // Detach: the device is healthy again.
    backend.SetFaultInjector(nullptr);
    EXPECT_EQ(backend.Deserialize(wire.data(), wire.size(), &dest),
              StatusCode::kOk);
    EXPECT_FALSE(backend.Serialize(msg).empty());
}

/// Stalls complete the job correctly but cost extra modeled cycles.
TEST(FaultInjectorAccel, StallsAddCyclesButPreserveResults)
{
    proto::DescriptorPool pool;
    protoacc::Rng rng(8);
    proto::SchemaGenOptions opts;
    opts.max_depth = 1;
    const int root = proto::GenerateRandomSchema(&pool, &rng, opts);
    pool.Compile(proto::HasbitsMode::kSparse);

    proto::Arena arena;
    proto::Message msg = proto::Message::Create(&arena, pool, root);
    proto::PopulateRandomMessage(msg, &rng, proto::MessageGenOptions{});
    const std::vector<uint8_t> wire = proto::Serialize(msg, nullptr);

    rpc::AcceleratedBackend healthy(pool);
    proto::Message d1 = proto::Message::Create(&arena, pool, root);
    ASSERT_EQ(healthy.Deserialize(wire.data(), wire.size(), &d1),
              StatusCode::kOk);
    const double healthy_cycles = healthy.codec_cycles();

    rpc::AcceleratedBackend stalled(pool);
    FaultConfig config;
    config.unit_stall_rate = 1.0;
    config.stall_cycles_min = 5000;
    config.stall_cycles_max = 5000;
    FaultInjector injector(9, config);
    stalled.SetFaultInjector(&injector);
    proto::Message d2 = proto::Message::Create(&arena, pool, root);
    ASSERT_EQ(stalled.Deserialize(wire.data(), wire.size(), &d2),
              StatusCode::kOk);
    EXPECT_GE(stalled.codec_cycles(), healthy_cycles + 5000);
}

}  // namespace
}  // namespace protoacc::sim
