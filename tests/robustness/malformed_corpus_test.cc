/**
 * Hand-built malformed-wire corpus (satellite of the robustness PR):
 * every canonical hostile encoding — truncated keys, truncated
 * payloads, overlong varints, zero field keys, invalid wire types,
 * length bombs, invalid UTF-8, deep nesting through the accelerator's
 * stack-spill path — must draw the SAME verdict from the accelerator
 * model as from both software parsers.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "proto/schema_parser.h"
#include "tri_codec_rig.h"

namespace protoacc::robustness {
namespace {

void
AppendVarint(std::vector<uint8_t> *out, uint64_t v)
{
    while (v >= 0x80) {
        out->push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out->push_back(static_cast<uint8_t>(v));
}

/// Wrap @p inner as the payload of Node.child (field 3).
std::vector<uint8_t>
WrapAsChild(const std::vector<uint8_t> &inner)
{
    std::vector<uint8_t> out;
    out.push_back(0x1a);  // field 3, length-delimited
    AppendVarint(&out, inner.size());
    out.insert(out.end(), inner.begin(), inner.end());
    return out;
}

/// Node.id = 1 nested under @p levels of Node.child.
std::vector<uint8_t>
NestedWire(int levels)
{
    std::vector<uint8_t> wire = {0x08, 0x01};
    for (int i = 0; i < levels; ++i)
        wire = WrapAsChild(wire);
    return wire;
}

class MalformedCorpusTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto parsed = proto::ParseSchema(R"(
            message Node {
                optional uint32 id = 1;
                optional string name = 2;
                optional Node child = 3;
                repeated uint32 values = 4 [packed = true];
                optional fixed32 fix = 5;
            }
        )",
                                               &pool_);
        ASSERT_TRUE(parsed.ok) << parsed.error;
        pool_.Compile(proto::HasbitsMode::kSparse);
        root_ = pool_.FindMessage("Node");
        rig_ = std::make_unique<TriCodecRig>(&pool_, root_);
    }

    /// Assert all three engines agree with each other AND with the
    /// expected accept/reject outcome.
    void
    ExpectVerdict(const std::string &label,
                  const std::vector<uint8_t> &wire, bool accept)
    {
        const TriVerdict v = rig_->ParseAll(wire);
        EXPECT_TRUE(v.agree_on_accept())
            << label << ": ref=" << StatusCodeName(v.reference)
            << " table=" << StatusCodeName(v.table)
            << " accel=" << StatusCodeName(v.accel);
        EXPECT_EQ(StatusOk(v.table), accept)
            << label << ": table said " << StatusCodeName(v.table);
        // The two software engines must agree on the exact code.
        EXPECT_EQ(v.reference, v.table)
            << label << ": ref=" << StatusCodeName(v.reference)
            << " table=" << StatusCodeName(v.table);
    }

    proto::DescriptorPool pool_;
    int root_ = -1;
    std::unique_ptr<TriCodecRig> rig_;
};

TEST_F(MalformedCorpusTest, EmptyBufferIsAValidEmptyMessage)
{
    ExpectVerdict("empty", {}, /*accept=*/true);
}

TEST_F(MalformedCorpusTest, TruncatedKeyVarint)
{
    // A key byte with the continuation bit set and nothing after it.
    ExpectVerdict("truncated-key", {0x80}, /*accept=*/false);
}

TEST_F(MalformedCorpusTest, TruncatedVarintPayload)
{
    // Field 1 (varint) whose value varint never terminates.
    ExpectVerdict("truncated-varint", {0x08, 0xFF}, /*accept=*/false);
}

TEST_F(MalformedCorpusTest, TruncatedLengthDelimitedPayload)
{
    // Field 2 (string) claims 5 bytes; only 2 are present.
    ExpectVerdict("truncated-string", {0x12, 0x05, 'a', 'b'},
                  /*accept=*/false);
}

TEST_F(MalformedCorpusTest, TruncatedFixedWidthPayload)
{
    // Field 5 (fixed32) with only 2 of 4 bytes.
    ExpectVerdict("truncated-fixed32", {0x2d, 0x01, 0x02},
                  /*accept=*/false);
}

TEST_F(MalformedCorpusTest, OverlongVarintBeyondTenBytes)
{
    // An 11-byte varint: always invalid regardless of the bits.
    std::vector<uint8_t> wire = {0x08};
    for (int i = 0; i < 11; ++i)
        wire.push_back(0x80);
    wire.push_back(0x01);
    ExpectVerdict("overlong-varint", wire, /*accept=*/false);
}

TEST_F(MalformedCorpusTest, ZeroFieldKey)
{
    // Field number 0 is reserved; a 0x00 key byte is hostile.
    ExpectVerdict("zero-key", {0x00}, /*accept=*/false);
    ExpectVerdict("zero-key-after-valid", {0x08, 0x07, 0x00},
                  /*accept=*/false);
}

TEST_F(MalformedCorpusTest, InvalidWireTypes)
{
    // Wire types 6 and 7 do not exist.
    ExpectVerdict("wire-type-6", {0x0E, 0x01}, /*accept=*/false);
    ExpectVerdict("wire-type-7", {0x0F, 0x01}, /*accept=*/false);
    // Deprecated group markers (types 3/4) are also rejected.
    ExpectVerdict("group-start", {0x0B}, /*accept=*/false);
}

TEST_F(MalformedCorpusTest, LengthBombIsRejectedBeforeAllocation)
{
    // Field 2 claims a ~4 GiB string. Every engine must reject it as
    // truncated (the bytes are not there) without attempting the
    // allocation.
    ExpectVerdict("length-bomb",
                  {0x12, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F},
                  /*accept=*/false);
}

TEST_F(MalformedCorpusTest, InvalidUtf8InStringField)
{
    // UTF-8 validation is a proto3 behavior (§7); the proto2 corpus
    // schema accepts arbitrary string bytes, so this case runs on its
    // own proto3 pool.
    proto::DescriptorPool p3;
    const auto parsed = proto::ParseSchema(R"(
        syntax = "proto3";
        message P3 {
            string name = 2;
        }
    )",
                                           &p3);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    p3.Compile(proto::HasbitsMode::kSparse);
    TriCodecRig rig(&p3, p3.FindMessage("P3"));

    auto expect_reject = [&](const std::string &label,
                             const std::vector<uint8_t> &wire) {
        const TriVerdict v = rig.ParseAll(wire);
        EXPECT_EQ(v.reference, StatusCode::kInvalidUtf8) << label;
        EXPECT_EQ(v.table, StatusCode::kInvalidUtf8) << label;
        EXPECT_EQ(v.accel, StatusCode::kInvalidUtf8) << label;
    };
    // 0xC3 0x28: invalid 2-byte sequence.
    expect_reject("bad-utf8", {0x12, 0x02, 0xC3, 0x28});
    // Overlong NUL encoding 0xC0 0x80.
    expect_reject("overlong-utf8", {0x12, 0x02, 0xC0, 0x80});
    // Valid multi-byte UTF-8 still passes everywhere.
    const TriVerdict ok = rig.ParseAll({0x12, 0x02, 0xC3, 0xA9});
    EXPECT_EQ(ok.reference, StatusCode::kOk);
    EXPECT_EQ(ok.table, StatusCode::kOk);
    EXPECT_EQ(ok.accel, StatusCode::kOk);
}

TEST_F(MalformedCorpusTest, TruncatedPackedRepeatedPayload)
{
    // Field 4 (packed uint32) claims 3 payload bytes, provides 2.
    ExpectVerdict("truncated-packed", {0x22, 0x03, 0x01, 0x02},
                  /*accept=*/false);
}

TEST_F(MalformedCorpusTest, NestedChildLengthOverrunsParent)
{
    // Child message whose inner string length escapes the child's
    // declared extent (classic cross-boundary confusion).
    ExpectVerdict("child-overrun",
                  {0x1a, 0x02, 0x12, 0x7F},
                  /*accept=*/false);
}

TEST_F(MalformedCorpusTest, DeepNestingThroughTheSpillPathIsAccepted)
{
    // 30 levels exceeds the accelerator's on-chip stack (the spill
    // path engages) but stays under the 100-level parse depth bound:
    // everyone accepts.
    ExpectVerdict("depth-30", NestedWire(30), /*accept=*/true);
    // 60 levels: still fine.
    ExpectVerdict("depth-60", NestedWire(60), /*accept=*/true);
}

TEST_F(MalformedCorpusTest, DepthBombBeyondTheParseBoundIsRejected)
{
    // 120 levels exceeds kMaxParseDepth (100): every engine rejects,
    // and because the cause is unambiguous, with the exact same code.
    const std::vector<uint8_t> wire = NestedWire(120);
    const TriVerdict v = rig_->ParseAll(wire);
    EXPECT_EQ(v.reference, StatusCode::kDepthExceeded);
    EXPECT_EQ(v.table, StatusCode::kDepthExceeded);
    EXPECT_EQ(v.accel, StatusCode::kDepthExceeded);
}

TEST_F(MalformedCorpusTest, WireTypeMismatchOnKnownField)
{
    // Field 1 is declared uint32 (varint) but arrives length-delimited,
    // and field 2 is a string but arrives as a varint. Whatever policy
    // an engine picks (skip as unknown vs reject), all three must pick
    // the same answer.
    const TriVerdict a = rig_->ParseAll({0x0a, 0x01, 0x41});
    EXPECT_TRUE(a.agree_on_accept())
        << "ref=" << StatusCodeName(a.reference)
        << " table=" << StatusCodeName(a.table)
        << " accel=" << StatusCodeName(a.accel);
    const TriVerdict b = rig_->ParseAll({0x10, 0x05});
    EXPECT_TRUE(b.agree_on_accept())
        << "ref=" << StatusCodeName(b.reference)
        << " table=" << StatusCodeName(b.table)
        << " accel=" << StatusCodeName(b.accel);
}

}  // namespace
}  // namespace protoacc::robustness
