/**
 * Streaming datapath robustness tests: the v4 chunked-transfer protocol
 * (rpc/stream.h) must map every malformed stream to its specific
 * status class, enforce memory budgets at admission and mid-stream,
 * stall senders through credit backpressure (including injected
 * receiver-window wedges), recover every chunk-granularity fault class
 * with exactly-once delivery, and surface its memory high-water mark
 * through the serving runtime's snapshot.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "cpu/cpu_model.h"
#include "proto/schema_parser.h"
#include "rpc/server_runtime.h"
#include "rpc/stream.h"

namespace protoacc::rpc {
namespace {

using proto::DescriptorPool;
using proto::Message;

/// Deterministic stream bytes: a pure function of offset, so rewinds
/// and retransmissions reproduce identical content.
class PatternSource
{
  public:
    explicit PatternSource(uint64_t total) : total_(total) {}

    size_t
    operator()(uint64_t offset, uint8_t *buf, size_t cap) const
    {
        const uint64_t n =
            std::min<uint64_t>(cap, total_ - std::min(offset, total_));
        for (uint64_t i = 0; i < n; ++i)
            buf[i] = static_cast<uint8_t>((offset + i) * 131 + 17);
        return static_cast<size_t>(n);
    }

    uint32_t
    Crc() const
    {
        std::vector<uint8_t> all(total_);
        (*this)(0, all.data(), all.size());
        return Crc32c(all.data(), all.size());
    }

  private:
    uint64_t total_;
};

/// Sink counting the raw stream bytes delivered (the wire is the
/// pattern, not a protobuf message — these tests exercise the frame
/// protocol; codec-level identity lives in stream_codec_test and the
/// stream_soak bench).
class ByteCountSink : public proto::StreamSink
{
  public:
    proto::ParseStatus
    OnScalar(const proto::FieldDescriptor &, uint64_t) override
    {
        ++fields;
        return proto::ParseStatus::kOk;
    }
    proto::ParseStatus
    OnString(const proto::FieldDescriptor &,
             std::string_view data) override
    {
        ++fields;
        bytes += data.size();
        return proto::ParseStatus::kOk;
    }
    uint64_t fields = 0;
    uint64_t bytes = 0;
};

class StreamingProtocolTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto parsed = proto::ParseSchema(R"(
            message Blob {
                optional bytes data = 1;
            }
        )",
                                               &pool_);
        ASSERT_TRUE(parsed.ok) << parsed.error;
        pool_.Compile(proto::HasbitsMode::kSparse);
        blob_ = pool_.FindMessage("Blob");
        backend_ = std::make_unique<SoftwareBackend>(cpu::BoomParams(),
                                                     pool_);
    }

    /// Receiver with the given config, methods registered, counting
    /// sink per stream.
    std::unique_ptr<StreamReceiver>
    MakeReceiver(const StreamConfig &config)
    {
        auto rx = std::make_unique<StreamReceiver>(
            &pool_, backend_.get(), config,
            [](uint16_t, uint16_t) -> std::unique_ptr<proto::StreamSink> {
                return std::make_unique<ByteCountSink>();
            });
        rx->RegisterMethod(kMethod, blob_);
        return rx;
    }

    /// Protobuf-framed pattern stream: `data` fields of @p field_bytes
    /// each, totalling a wire stream the Blob decoder accepts. Returns
    /// the full wire image (tests slice it into chunks).
    std::vector<uint8_t>
    MakeWireStream(size_t nfields, size_t field_bytes)
    {
        std::vector<uint8_t> wire;
        proto::Arena arena;
        const auto &d = pool_.message(blob_);
        const proto::FieldDescriptor &data_f =
            *d.FindFieldByName("data");
        proto::StreamCodecLimits limits;
        proto::StreamEncoder enc(proto::SoftwareCodecEngine::kTable,
                                 limits);
        std::string payload(field_bytes, 'x');
        for (size_t i = 0; i < nfields; ++i) {
            payload[0] = static_cast<char>('a' + (i % 26));
            EXPECT_EQ(enc.AppendString(data_f, payload),
                      proto::ParseStatus::kOk);
            uint8_t buf[512];
            size_t n;
            while ((n = enc.Produce(buf, sizeof buf)) > 0)
                wire.insert(wire.end(), buf, buf + n);
        }
        return wire;
    }

    /// Drive one full transfer of @p wire through sender → channel →
    /// receiver with the receiver's reply frames looped back cleanly.
    /// Returns the sender's final status.
    StatusCode
    RunTransfer(StreamReceiver *rx, const std::vector<uint8_t> &wire,
                sim::FaultInjector *injector, StreamConfig config,
                StreamSender **out_sender = nullptr,
                StreamChannel **out_channel = nullptr)
    {
        std::vector<uint8_t> bytes = wire;
        sender_ = std::make_unique<StreamSender>(
            config, /*tenant=*/0, kMethod, /*call_id=*/100,
            /*stream_key=*/kKey, bytes.size(),
            [bytes](uint64_t off, uint8_t *buf, size_t cap) -> size_t {
                const size_t n = std::min<uint64_t>(
                    cap, bytes.size() - std::min<uint64_t>(
                                            off, bytes.size()));
                std::memcpy(buf, bytes.data() + off, n);
                return n;
            });
        channel_ = std::make_unique<StreamChannel>(injector);
        if (out_sender != nullptr)
            *out_sender = sender_.get();
        if (out_channel != nullptr)
            *out_channel = channel_.get();

        FrameBuffer to_rx, from_rx;
        double now = 0;
        // Modeled tick: generous bound so wedges/timeouts resolve.
        for (int tick = 0; tick < 4000 && !sender_->done(); ++tick) {
            sender_->Pump(&to_rx, now);
            channel_->Pump(to_rx, [&](const Frame &f) {
                rx->HandleFrame(f, &from_rx, now);
            });
            to_rx.clear();
            rx->AdvanceTime(now, &from_rx);
            // Reply path is clean (control loss is modeled by sender
            // timeouts, not the channel).
            size_t off = 0;
            for (;;) {
                StatusCode err;
                auto f = from_rx.Next(&off, &err);
                if (!f.has_value())
                    break;
                sender_->HandleFrame(*f, now);
            }
            from_rx.clear();
            now += 50000;  // 50 us per tick
        }
        return sender_->done() ? sender_->final_status()
                               : StatusCode::kDeadlineExceeded;
    }

    static constexpr uint16_t kMethod = 9;
    static constexpr uint64_t kKey = 0xabcdef12345ull;

    DescriptorPool pool_;
    int blob_ = -1;
    std::unique_ptr<SoftwareBackend> backend_;
    std::unique_ptr<StreamSender> sender_;
    std::unique_ptr<StreamChannel> channel_;
};

// ---------------------------------------------------------------------
// Clean-path transfer and backpressure
// ---------------------------------------------------------------------

TEST_F(StreamingProtocolTest, CleanTransferCompletesExactlyOnce)
{
    StreamConfig config;
    config.chunk_bytes = 256;
    config.credit_window_bytes = 1024;
    auto rx = MakeReceiver(config);
    const std::vector<uint8_t> wire = MakeWireStream(40, 100);
    ASSERT_EQ(RunTransfer(rx.get(), wire, nullptr, config),
              StatusCode::kOk);

    const StreamReceiverStats &st = rx->stats();
    EXPECT_EQ(st.streams_opened, 1u);
    EXPECT_EQ(st.streams_completed, 1u);
    EXPECT_EQ(st.bytes_committed, wire.size());
    EXPECT_EQ(st.duplicate_chunks, 0u);
    EXPECT_EQ(st.gap_nacks, 0u);
    EXPECT_EQ(rx->open_streams(), 0u);
    // The response echoes the close record: length + composed CRC.
    StreamEndInfo close;
    ASSERT_TRUE(UnpackStreamEnd(sender_->response().data(),
                                sender_->response().size(), &close));
    EXPECT_EQ(close.total_bytes, wire.size());
    EXPECT_EQ(close.stream_crc, Crc32c(wire.data(), wire.size()));
    // Budget released at completion.
    EXPECT_EQ(rx->gauge().current_bytes(), 0u);
    EXPECT_GT(rx->gauge().peak_bytes(), 0u);
}

TEST_F(StreamingProtocolTest, CreditWindowThrottlesSender)
{
    StreamConfig config;
    config.chunk_bytes = 256;
    config.credit_window_bytes = 256;  // one chunk in flight, ever
    auto rx = MakeReceiver(config);
    const std::vector<uint8_t> wire = MakeWireStream(40, 100);
    ASSERT_EQ(RunTransfer(rx.get(), wire, nullptr, config),
              StatusCode::kOk);
    // With a one-chunk window the sender can never run ahead: every
    // tick sends at most one chunk, so stalls are the steady state.
    EXPECT_EQ(rx->stats().bytes_committed, wire.size());
    EXPECT_EQ(sender_->stats().chunks_sent,
              (wire.size() + 255) / 256);
}

TEST_F(StreamingProtocolTest, WindowWedgeStallsThenRecovers)
{
    StreamConfig config;
    config.chunk_bytes = 128;
    config.credit_window_bytes = 256;
    config.wedge_hold_ns = 200000;
    sim::FaultConfig fc;
    fc.window_wedge_rate = 1.0;  // every stream wedges
    // Seed pins the hash-chosen wedge mid-stream (chunk 9 of 24) so the
    // frozen window catches the sender with data still unsent.
    sim::FaultInjector injector(/*seed=*/3, fc);

    auto rx = MakeReceiver(config);
    rx->SetFaultInjector(&injector);
    const std::vector<uint8_t> wire = MakeWireStream(30, 100);
    ASSERT_EQ(RunTransfer(rx.get(), wire, &injector, config),
              StatusCode::kOk);
    EXPECT_EQ(rx->stats().wedges_started, 1u);
    EXPECT_EQ(rx->stats().bytes_committed, wire.size());
    // The wedge held the window shut long enough to stall the sender
    // in modeled time.
    EXPECT_GE(sender_->stats().window_stalls, 1u);
    EXPECT_GT(sender_->stats().stalled_ns, 0.0);
}

// ---------------------------------------------------------------------
// Chunk-granularity faults: every class recovered, exactly once
// ---------------------------------------------------------------------

TEST_F(StreamingProtocolTest, RecoversFromEveryChunkFaultClass)
{
    struct Case
    {
        const char *name;
        void (*set)(sim::FaultConfig *);
    };
    const Case cases[] = {
        {"drop", [](sim::FaultConfig *f) { f->chunk_drop_rate = 0.2; }},
        {"truncate",
         [](sim::FaultConfig *f) { f->chunk_truncate_rate = 0.2; }},
        {"corrupt",
         [](sim::FaultConfig *f) { f->chunk_corrupt_rate = 0.2; }},
        {"duplicate",
         [](sim::FaultConfig *f) { f->chunk_duplicate_rate = 0.2; }},
        {"reorder",
         [](sim::FaultConfig *f) { f->chunk_reorder_rate = 0.2; }},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(c.name);
        StreamConfig config;
        config.chunk_bytes = 128;
        config.credit_window_bytes = 4096;
        config.retransmit_timeout_ns = 200000;
        sim::FaultConfig fc;
        c.set(&fc);
        sim::FaultInjector injector(/*seed=*/11, fc);

        auto rx = MakeReceiver(config);
        const std::vector<uint8_t> wire = MakeWireStream(30, 100);
        ASSERT_EQ(RunTransfer(rx.get(), wire, &injector, config),
                  StatusCode::kOk);
        // Delivered exactly the logical stream: the committed bytes and
        // the composed CRC match the source despite the faults.
        EXPECT_EQ(rx->stats().bytes_committed, wire.size());
        StreamEndInfo close;
        ASSERT_TRUE(UnpackStreamEnd(sender_->response().data(),
                                    sender_->response().size(),
                                    &close));
        EXPECT_EQ(close.stream_crc, Crc32c(wire.data(), wire.size()));
        // Corrupt/truncate must be caught by the real CRC scan.
        const StreamChannelStats &ch = channel_->stats();
        EXPECT_EQ(ch.detected_by_crc, ch.truncated + ch.corrupted);
    }
}

TEST_F(StreamingProtocolTest, AllFaultsTogetherStillExactlyOnce)
{
    StreamConfig config;
    config.chunk_bytes = 128;
    config.credit_window_bytes = 2048;
    config.retransmit_timeout_ns = 200000;
    sim::FaultConfig fc;
    fc.chunk_drop_rate = 0.08;
    fc.chunk_truncate_rate = 0.08;
    fc.chunk_corrupt_rate = 0.08;
    fc.chunk_duplicate_rate = 0.08;
    fc.chunk_reorder_rate = 0.08;
    fc.window_wedge_rate = 1.0;
    sim::FaultInjector injector(/*seed=*/23, fc);

    auto rx = MakeReceiver(config);
    rx->SetFaultInjector(&injector);
    const std::vector<uint8_t> wire = MakeWireStream(50, 90);
    ASSERT_EQ(RunTransfer(rx.get(), wire, &injector, config),
              StatusCode::kOk);
    EXPECT_EQ(rx->stats().bytes_committed, wire.size());
    EXPECT_EQ(rx->stats().streams_completed, 1u);
    StreamEndInfo close;
    ASSERT_TRUE(UnpackStreamEnd(sender_->response().data(),
                                sender_->response().size(), &close));
    EXPECT_EQ(close.stream_crc, Crc32c(wire.data(), wire.size()));
}

TEST_F(StreamingProtocolTest, SameSeedReplaysBitIdenticalCounters)
{
    const auto run = [this](uint64_t seed) {
        StreamConfig config;
        config.chunk_bytes = 128;
        config.credit_window_bytes = 2048;
        config.retransmit_timeout_ns = 200000;
        sim::FaultConfig fc;
        fc.chunk_drop_rate = 0.1;
        fc.chunk_corrupt_rate = 0.1;
        sim::FaultInjector injector(seed, fc);
        auto rx = MakeReceiver(config);
        const std::vector<uint8_t> wire = MakeWireStream(40, 80);
        EXPECT_EQ(RunTransfer(rx.get(), wire, &injector, config),
                  StatusCode::kOk);
        return std::make_tuple(rx->stats().chunks_committed,
                               rx->stats().duplicate_chunks,
                               rx->stats().gap_nacks,
                               channel_->stats().dropped,
                               channel_->stats().corrupted,
                               sender_->stats().retransmits,
                               sender_->stats().bytes_sent);
    };
    const auto a = run(99);
    const auto b = run(99);
    EXPECT_EQ(a, b);
    // And a different seed takes a different fault path (sanity that
    // the determinism above is not vacuous).
    const auto c = run(100);
    EXPECT_NE(std::get<6>(a), 0u);
    (void)c;
}

// ---------------------------------------------------------------------
// Malformed streams: each violation maps to its status class
// ---------------------------------------------------------------------

class StreamingMalformedTest : public StreamingProtocolTest
{
  protected:
    void
    SetUp() override
    {
        StreamingProtocolTest::SetUp();
        config_.chunk_bytes = 128;
        rx_ = MakeReceiver(config_);
    }

    /// Open a healthy stream announcing @p total bytes; returns the
    /// credit status (kOk on admission).
    StatusCode
    Begin(uint64_t total, uint64_t key = kKey)
    {
        FrameBuffer wire;
        FrameHeader h;
        h.kind = FrameKind::kStreamBegin;
        h.idempotency_key = key;
        h.method_id = kMethod;
        uint8_t payload[StreamBeginInfo::kWireBytes];
        PackStreamBegin({total, config_.chunk_bytes}, payload);
        h.payload_bytes = StreamBeginInfo::kWireBytes;
        wire.Append(h, payload);
        return Deliver(wire);
    }

    StatusCode
    SendChunk(uint64_t offset, const std::vector<uint8_t> &data,
              uint64_t key = kKey)
    {
        FrameBuffer wire;
        FrameHeader h;
        h.kind = FrameKind::kStreamChunk;
        h.idempotency_key = key;
        h.method_id = kMethod;
        std::vector<uint8_t> payload(StreamChunkInfo::kWireBytes +
                                     data.size());
        PackStreamChunk({offset}, payload.data());
        std::memcpy(payload.data() + StreamChunkInfo::kWireBytes,
                    data.data(), data.size());
        h.payload_bytes = static_cast<uint32_t>(payload.size());
        wire.Append(h, payload.data());
        return Deliver(wire);
    }

    StatusCode
    SendEnd(uint64_t total, uint32_t crc, uint64_t key = kKey)
    {
        FrameBuffer wire;
        FrameHeader h;
        h.kind = FrameKind::kStreamEnd;
        h.idempotency_key = key;
        h.method_id = kMethod;
        uint8_t payload[StreamEndInfo::kWireBytes];
        PackStreamEnd({total, crc}, payload);
        h.payload_bytes = StreamEndInfo::kWireBytes;
        wire.Append(h, payload);
        return Deliver(wire);
    }

    StatusCode
    Deliver(const FrameBuffer &wire)
    {
        size_t off = 0;
        StatusCode last = StatusCode::kOk;
        for (;;) {
            auto f = wire.Next(&off);
            if (!f.has_value())
                break;
            last = rx_->HandleFrame(*f, &replies_, now_);
            now_ += 1000;
        }
        return last;
    }

    StreamConfig config_;
    std::unique_ptr<StreamReceiver> rx_;
    FrameBuffer replies_;
    double now_ = 0;
};

TEST_F(StreamingMalformedTest, ChunkBeforeBeginIsMalformed)
{
    EXPECT_EQ(SendChunk(0, std::vector<uint8_t>(64, 1)),
              StatusCode::kMalformedInput);
    EXPECT_EQ(rx_->stats().malformed_frames, 1u);
}

TEST_F(StreamingMalformedTest, TruncatedSubheaderIsMalformed)
{
    // A chunk frame whose payload is shorter than the subheader.
    FrameBuffer wire;
    FrameHeader h;
    h.kind = FrameKind::kStreamChunk;
    h.idempotency_key = kKey;
    const uint8_t tiny[4] = {1, 2, 3, 4};
    h.payload_bytes = sizeof tiny;
    wire.Append(h, tiny);
    EXPECT_EQ(Deliver(wire), StatusCode::kMalformedInput);
}

TEST_F(StreamingMalformedTest, DuplicateOffsetAckedNotReexecuted)
{
    const std::vector<uint8_t> wire_stream = MakeWireStream(4, 100);
    ASSERT_EQ(Begin(wire_stream.size()), StatusCode::kOk);
    std::vector<uint8_t> first(wire_stream.begin(),
                               wire_stream.begin() + 128);
    ASSERT_EQ(SendChunk(0, first), StatusCode::kOk);
    // Same chunk again: acked idempotently, decoded once.
    EXPECT_EQ(SendChunk(0, first), StatusCode::kOk);
    EXPECT_EQ(rx_->stats().duplicate_chunks, 1u);
    EXPECT_EQ(rx_->stats().chunks_committed, 1u);
    EXPECT_EQ(rx_->stats().bytes_committed, 128u);
}

TEST_F(StreamingMalformedTest, ReorderedOffsetNacksRewind)
{
    const std::vector<uint8_t> wire_stream = MakeWireStream(4, 100);
    ASSERT_EQ(Begin(wire_stream.size()), StatusCode::kOk);
    // Second chunk arrives first: a gap.
    std::vector<uint8_t> second(wire_stream.begin() + 128,
                                wire_stream.begin() + 256);
    EXPECT_EQ(SendChunk(128, second), StatusCode::kUnavailable);
    EXPECT_EQ(rx_->stats().gap_nacks, 1u);
    // The NACK credit frame carries the rewind watermark (0).
    size_t off = 0;
    bool saw_nack = false;
    for (;;) {
        auto f = replies_.Next(&off);
        if (!f.has_value())
            break;
        if (f->header.kind == FrameKind::kStreamCredit &&
            f->header.status != StatusCode::kOk) {
            StreamCreditInfo info;
            ASSERT_TRUE(UnpackStreamCredit(f->payload,
                                           f->header.payload_bytes,
                                           &info));
            EXPECT_EQ(info.acked_bytes, 0u);
            saw_nack = true;
        }
    }
    EXPECT_TRUE(saw_nack);
}

TEST_F(StreamingMalformedTest, EndWithWrongTotalIsMalformed)
{
    const std::vector<uint8_t> wire_stream = MakeWireStream(2, 60);
    ASSERT_EQ(Begin(wire_stream.size()), StatusCode::kOk);
    ASSERT_EQ(SendChunk(0, wire_stream), StatusCode::kOk);
    EXPECT_EQ(SendEnd(wire_stream.size() + 5,
                      Crc32c(wire_stream.data(), wire_stream.size())),
              StatusCode::kMalformedInput);
    EXPECT_EQ(rx_->open_streams(), 0u);  // incoherent stream reclaimed
}

TEST_F(StreamingMalformedTest, EndWithWrongCrcIsDataLoss)
{
    const std::vector<uint8_t> wire_stream = MakeWireStream(2, 60);
    ASSERT_EQ(Begin(wire_stream.size()), StatusCode::kOk);
    ASSERT_EQ(SendChunk(0, wire_stream), StatusCode::kOk);
    EXPECT_EQ(SendEnd(wire_stream.size(), 0xdeadbeef),
              StatusCode::kDataLoss);
    EXPECT_EQ(rx_->stats().stream_crc_mismatches, 1u);
}

TEST_F(StreamingMalformedTest, AnnounceOverPayloadLimitSheds)
{
    ParseLimits limits;
    limits.max_payload_bytes = 1024;
    backend_->SetParseLimits(limits);
    EXPECT_EQ(Begin(4096), StatusCode::kResourceExhausted);
    EXPECT_EQ(rx_->stats().shed_announce, 1u);
    EXPECT_EQ(rx_->open_streams(), 0u);
    EXPECT_EQ(rx_->gauge().current_bytes(), 0u);  // nothing reserved
}

TEST_F(StreamingMalformedTest, UnknownMethodIsUnimplemented)
{
    FrameBuffer wire;
    FrameHeader h;
    h.kind = FrameKind::kStreamBegin;
    h.idempotency_key = kKey;
    h.method_id = 77;  // unregistered
    uint8_t payload[StreamBeginInfo::kWireBytes];
    PackStreamBegin({1024, 128}, payload);
    h.payload_bytes = StreamBeginInfo::kWireBytes;
    wire.Append(h, payload);
    EXPECT_EQ(Deliver(wire), StatusCode::kUnimplemented);
}

TEST_F(StreamingMalformedTest, ForeignVersionOnStreamFrameIsUnimplemented)
{
    // A peer speaking a future wire version opens a stream: the version
    // byte is foreign but the frame is intact (CRC valid as sent). The
    // framing layer must reject it as kUnimplemented — exactly the
    // unary path's verdict — never hand the receiver a frame whose
    // layout it guessed at.
    FrameBuffer wire;
    FrameHeader h;
    h.kind = FrameKind::kStreamBegin;
    h.idempotency_key = kKey;
    h.method_id = kMethod;
    uint8_t payload[StreamBeginInfo::kWireBytes];
    PackStreamBegin({1024, 128}, payload);
    h.payload_bytes = StreamBeginInfo::kWireBytes;
    wire.Append(h, payload);

    uint8_t *raw = wire.mutable_data();
    raw[12] = FrameHeader::kFrameVersion + 1;
    const uint32_t crc = Crc32cExtend(
        Crc32c(raw, FrameHeader::kCrcOffset),
        raw + FrameHeader::kWireBytes, h.payload_bytes);
    std::memcpy(raw + FrameHeader::kCrcOffset, &crc, 4);

    size_t off = 0;
    StatusCode err = StatusCode::kOk;
    EXPECT_FALSE(wire.Next(&off, &err).has_value());
    EXPECT_EQ(err, StatusCode::kUnimplemented);
    EXPECT_EQ(off, 0u);  // permanent rejection: the scan does not skip
    EXPECT_EQ(rx_->open_streams(), 0u);  // never reached the receiver
}

TEST_F(StreamingMalformedTest, CorruptedVersionByteOnStreamFrameIsDataLoss)
{
    // Same foreign version byte, but the CRC still covers the original
    // bytes: this is in-flight corruption, not a newer peer, and the
    // CRC disambiguates — retryable kDataLoss, scan advances past it.
    FrameBuffer wire;
    FrameHeader h;
    h.kind = FrameKind::kStreamChunk;
    h.idempotency_key = kKey;
    h.method_id = kMethod;
    std::vector<uint8_t> payload(StreamChunkInfo::kWireBytes + 32);
    PackStreamChunk({0}, payload.data());
    h.payload_bytes = static_cast<uint32_t>(payload.size());
    wire.Append(h, payload.data());

    wire.mutable_data()[12] = FrameHeader::kFrameVersion + 1;

    size_t off = 0;
    StatusCode err = StatusCode::kOk;
    EXPECT_FALSE(wire.Next(&off, &err).has_value());
    EXPECT_EQ(err, StatusCode::kDataLoss);
    EXPECT_EQ(off, wire.bytes());  // skipped: the stream can continue
}

TEST_F(StreamingMalformedTest, ClearedCrcFlagOnStreamFrameIsDataLoss)
{
    // A cleared has-CRC flag bit on an enforcing reader is itself
    // corruption (every writer stamps a CRC): it must surface as
    // kDataLoss, not silently bypass verification into the receiver.
    FrameBuffer wire;
    FrameHeader h;
    h.kind = FrameKind::kStreamChunk;
    h.idempotency_key = kKey;
    h.method_id = kMethod;
    std::vector<uint8_t> payload(StreamChunkInfo::kWireBytes + 32);
    PackStreamChunk({0}, payload.data());
    h.payload_bytes = static_cast<uint32_t>(payload.size());
    wire.Append(h, payload.data());

    wire.mutable_data()[13] &=
        static_cast<uint8_t>(~FrameHeader::kFlagHasCrc);

    size_t off = 0;
    StatusCode err = StatusCode::kOk;
    EXPECT_FALSE(wire.Next(&off, &err).has_value());
    EXPECT_EQ(err, StatusCode::kDataLoss);
    EXPECT_EQ(rx_->stats().malformed_frames, 0u);  // shielded upstream
}

// ---------------------------------------------------------------------
// Budgets, brownout, deadline, resume
// ---------------------------------------------------------------------

TEST_F(StreamingProtocolTest, GlobalBudgetShedsAtAdmission)
{
    StreamConfig config;
    config.chunk_bytes = 1024;
    config.codec.max_record_bytes = 64 << 10;
    // Budget fits exactly one stream's reservation.
    config.global_budget_bytes = (64 << 10) + 2048;
    auto rx = MakeReceiver(config);

    FrameBuffer wire, replies;
    for (int i = 0; i < 2; ++i) {
        FrameHeader h;
        h.kind = FrameKind::kStreamBegin;
        h.idempotency_key = 1000 + i;
        h.method_id = kMethod;
        uint8_t payload[StreamBeginInfo::kWireBytes];
        PackStreamBegin({1 << 20, 1024}, payload);
        h.payload_bytes = StreamBeginInfo::kWireBytes;
        wire.Append(h, payload);
    }
    size_t off = 0;
    std::vector<StatusCode> results;
    for (;;) {
        auto f = wire.Next(&off);
        if (!f.has_value())
            break;
        results.push_back(rx->HandleFrame(*f, &replies, 0));
    }
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0], StatusCode::kOk);
    EXPECT_EQ(results[1], StatusCode::kOverloaded);
    EXPECT_EQ(rx->stats().shed_budget, 1u);
    EXPECT_EQ(rx->open_streams(), 1u);
}

TEST_F(StreamingProtocolTest, DeadlineCancelsStalledStream)
{
    StreamConfig config;
    config.chunk_bytes = 128;
    config.deadline_ns = 1e6;
    auto rx = MakeReceiver(config);

    FrameBuffer wire, replies;
    FrameHeader h;
    h.kind = FrameKind::kStreamBegin;
    h.idempotency_key = kKey;
    h.method_id = kMethod;
    uint8_t payload[StreamBeginInfo::kWireBytes];
    PackStreamBegin({1 << 16, 128}, payload);
    h.payload_bytes = StreamBeginInfo::kWireBytes;
    wire.Append(h, payload);
    size_t off = 0;
    auto f = wire.Next(&off);
    ASSERT_TRUE(f.has_value());
    ASSERT_EQ(rx->HandleFrame(*f, &replies, 0), StatusCode::kOk);
    ASSERT_EQ(rx->open_streams(), 1u);

    // No progress for 2 ms: the sweep cancels with kDeadlineExceeded
    // and cleanup is deterministic (state gone, budget released).
    rx->AdvanceTime(2e6, &replies);
    EXPECT_EQ(rx->open_streams(), 0u);
    EXPECT_EQ(rx->stats().deadline_cancels, 1u);
    EXPECT_EQ(rx->gauge().current_bytes(), 0u);
    // The cancel frame carries the cause in its status byte.
    bool saw_cancel = false;
    size_t roff = 0;
    for (;;) {
        auto r = replies.Next(&roff);
        if (!r.has_value())
            break;
        if (r->header.kind == FrameKind::kStreamCancel) {
            EXPECT_EQ(r->header.status, StatusCode::kDeadlineExceeded);
            saw_cancel = true;
        }
    }
    EXPECT_TRUE(saw_cancel);
}

TEST_F(StreamingProtocolTest, LostResponseReplaysFromDedupCache)
{
    StreamConfig config;
    config.chunk_bytes = 256;
    DedupCache dedup(16);
    auto rx = MakeReceiver(config);
    rx->SetDedupCache(&dedup);
    const std::vector<uint8_t> wire = MakeWireStream(10, 100);
    ASSERT_EQ(RunTransfer(rx.get(), wire, nullptr, config),
              StatusCode::kOk);
    ASSERT_EQ(rx->stats().streams_completed, 1u);

    // The response was lost; the sender reopens the stream. The
    // receiver must replay the committed response from the cache, not
    // re-execute the transfer.
    FrameBuffer begin, replies;
    FrameHeader h;
    h.kind = FrameKind::kStreamBegin;
    h.idempotency_key = kKey;
    h.method_id = kMethod;
    h.call_id = 555;
    uint8_t payload[StreamBeginInfo::kWireBytes];
    PackStreamBegin({wire.size(), config.chunk_bytes}, payload);
    h.payload_bytes = StreamBeginInfo::kWireBytes;
    begin.Append(h, payload);
    size_t off = 0;
    auto f = begin.Next(&off);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(rx->HandleFrame(*f, &replies, 0), StatusCode::kOk);
    EXPECT_EQ(rx->stats().replayed_responses, 1u);
    EXPECT_EQ(rx->stats().streams_completed, 1u);  // no re-execution

    size_t roff = 0;
    auto resp = replies.Next(&roff);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->header.kind, FrameKind::kResponse);
    EXPECT_EQ(resp->header.call_id, 555u);  // re-stamped for the retry
    StreamEndInfo close;
    ASSERT_TRUE(UnpackStreamEnd(resp->payload,
                                resp->header.payload_bytes, &close));
    EXPECT_EQ(close.stream_crc, Crc32c(wire.data(), wire.size()));
}

// ---------------------------------------------------------------------
// Memory gauge unit tests
// ---------------------------------------------------------------------

TEST(StreamingGauge, TracksCurrentAndPeak)
{
    StreamMemoryGauge g;
    EXPECT_TRUE(g.TryAcquire(100, 0));
    EXPECT_TRUE(g.TryAcquire(50, 0));
    EXPECT_EQ(g.current_bytes(), 150u);
    EXPECT_EQ(g.peak_bytes(), 150u);
    g.Release(100);
    EXPECT_EQ(g.current_bytes(), 50u);
    EXPECT_EQ(g.peak_bytes(), 150u);  // high-water mark sticks
    EXPECT_TRUE(g.TryAcquire(25, 0));
    EXPECT_EQ(g.peak_bytes(), 150u);
}

TEST(StreamingGauge, BudgetRefusalLeavesStateUnchanged)
{
    StreamMemoryGauge g;
    EXPECT_TRUE(g.TryAcquire(900, 1000));
    EXPECT_FALSE(g.TryAcquire(200, 1000));
    EXPECT_EQ(g.current_bytes(), 900u);
    EXPECT_EQ(g.peak_bytes(), 900u);
    EXPECT_TRUE(g.TryAcquire(100, 1000));  // exactly at budget fits
    EXPECT_EQ(g.current_bytes(), 1000u);
}

TEST(StreamingGauge, ReleaseClampsAtZero)
{
    StreamMemoryGauge g;
    EXPECT_TRUE(g.TryAcquire(10, 0));
    g.Release(50);  // over-release must not underflow
    EXPECT_EQ(g.current_bytes(), 0u);
}

}  // namespace
}  // namespace protoacc::rpc
