/**
 * Cross-request state scrubbing: after a quarantine scrub, no trace of
 * request A — bytes or timing — is observable from request B.
 *
 * The device keeps real cross-request state: the ADT loaders' response
 * buffers stay warm between jobs (a later request of the same type
 * parses *faster* because an earlier one loaded its ADT lines — a
 * timing side channel), and a deep message dirties the context stacks
 * through the DRAM spill region. The dirty-then-replay contract: run a
 * deep SECRET-laden request A, scrub, then run request B and require it
 * to be cycle-identical and byte-identical to B on a freshly
 * constructed device. A control run without the scrub shows the timing
 * channel is real (B runs measurably different on a dirty device), so
 * the equality assertions actually prove the scrub works.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "proto/descriptor.h"
#include "proto/message.h"
#include "proto/parser.h"
#include "proto/serializer.h"
#include "rpc/codec_backend.h"
#include "rpc/health.h"
#include "rpc/server_runtime.h"
#include "sim/fault.h"

namespace protoacc::rpc {
namespace {

using proto::Arena;
using proto::DescriptorPool;
using proto::FieldType;
using proto::Message;

constexpr const char *kSecret = "SECRET-red-handle";

class StateScrubTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Self-recursive node: both the deep dirtying request and the
        // shallow probe use the *same* type, so they share ADT lines —
        // exactly the situation where one request's warm-up leaks into
        // the next request's timing.
        node_ = pool_.AddMessage("Node");
        pool_.AddMessageField(node_, "child", 1, node_);
        pool_.AddField(node_, "text", 2, FieldType::kString);
        pool_.AddField(node_, "v", 3, FieldType::kInt32);
        pool_.Compile(proto::HasbitsMode::kSparse);
        text_ = pool_.message(node_).FindFieldByName("text");
        child_ = pool_.message(node_).FindFieldByName("child");
        v_ = pool_.message(node_).FindFieldByName("v");
    }

    /// Request A: deeper than the on-chip stacks (25), every level
    /// carrying secret bytes — dirties the ADT response buffers, both
    /// context stacks, and the DRAM spill region.
    std::vector<uint8_t>
    DeepSecretWire(int depth = 40)
    {
        Arena arena;
        Message root = Message::Create(&arena, pool_, node_);
        Message cur = root;
        for (int i = 0; i < depth; ++i) {
            cur.SetString(*text_,
                          std::string(kSecret) + std::to_string(i));
            cur.SetInt32(*v_, i);
            cur = cur.MutableMessage(*child_);
        }
        return proto::Serialize(root, nullptr);
    }

    /// Request B: a shallow probe of the same type.
    std::vector<uint8_t>
    ProbeWire()
    {
        Arena arena;
        Message probe = Message::Create(&arena, pool_, node_);
        probe.SetString(*text_, "request-B probe");
        probe.SetInt32(*v_, 7);
        return proto::Serialize(probe, nullptr);
    }

    /// Deserialize + re-serialize @p wire on @p backend, returning the
    /// canonical output bytes and the deserialize/serialize cycle
    /// costs — the externally observable behavior of one request.
    struct RequestTrace
    {
        std::vector<uint8_t> bytes;
        double deser_cycles = 0;
        double ser_cycles = 0;
    };

    RequestTrace
    RunRequest(AcceleratedBackend *backend,
               const std::vector<uint8_t> &wire)
    {
        RequestTrace trace;
        Arena arena;
        Message msg = Message::Create(&arena, pool_, node_);
        double before = backend->codec_cycles();
        EXPECT_EQ(backend->Deserialize(wire.data(), wire.size(), &msg),
                  StatusCode::kOk);
        trace.deser_cycles = backend->codec_cycles() - before;
        before = backend->codec_cycles();
        trace.bytes = backend->Serialize(msg);
        trace.ser_cycles = backend->codec_cycles() - before;
        return trace;
    }

    static bool
    ContainsSecret(const std::vector<uint8_t> &bytes)
    {
        const std::string haystack(bytes.begin(), bytes.end());
        return haystack.find(kSecret) != std::string::npos;
    }

    DescriptorPool pool_;
    int node_ = -1;
    const proto::FieldDescriptor *text_ = nullptr;
    const proto::FieldDescriptor *child_ = nullptr;
    const proto::FieldDescriptor *v_ = nullptr;
};

TEST_F(StateScrubTest, DirtyDeviceIsObservablyDifferentWithoutScrub)
{
    // Control: the cross-request channel exists. Request B on a device
    // that just served deep request A costs *different* cycles than B
    // on a fresh device (warm ADT response buffers hit instead of
    // miss). Without this the equality test below would prove nothing.
    const std::vector<uint8_t> deep = DeepSecretWire();
    const std::vector<uint8_t> probe = ProbeWire();

    AcceleratedBackend fresh(pool_);
    const RequestTrace b_fresh = RunRequest(&fresh, probe);

    AcceleratedBackend dirty(pool_);
    RunRequest(&dirty, deep);  // request A dirties the device
    // The deep request went through the DRAM spill region: the dirty
    // state is not just the on-chip registers.
    EXPECT_GT(dirty.device().deserializer().stats().stack_spills, 0u);
    EXPECT_GE(dirty.device().deserializer().stats().max_depth, 26u);

    const RequestTrace b_dirty = RunRequest(&dirty, probe);
    EXPECT_EQ(b_dirty.bytes, b_fresh.bytes);  // data is correct...
    // ...but the timing leaks request A's warm-up.
    EXPECT_NE(b_dirty.deser_cycles, b_fresh.deser_cycles);
    EXPECT_FALSE(ContainsSecret(b_dirty.bytes));
}

TEST_F(StateScrubTest, ScrubbedDeviceIsIndistinguishableFromFresh)
{
    // The scrub contract: after request A (deep, SECRET-laden, spilled
    // to DRAM) and a full state scrub, request B's bytes AND cycles
    // are identical to running B on a never-used device. No residue,
    // no timing channel.
    const std::vector<uint8_t> deep = DeepSecretWire();
    const std::vector<uint8_t> probe = ProbeWire();

    AcceleratedBackend fresh(pool_);
    const RequestTrace b_fresh = RunRequest(&fresh, probe);

    AcceleratedBackend scrubbed(pool_);
    RunRequest(&scrubbed, deep);
    ASSERT_GT(scrubbed.device().deserializer().stats().stack_spills,
              0u);
    scrubbed.ScrubDeviceState();

    const RequestTrace b_scrubbed = RunRequest(&scrubbed, probe);
    EXPECT_EQ(b_scrubbed.bytes, b_fresh.bytes);
    EXPECT_EQ(b_scrubbed.deser_cycles, b_fresh.deser_cycles);
    EXPECT_EQ(b_scrubbed.ser_cycles, b_fresh.ser_cycles);
    EXPECT_FALSE(ContainsSecret(b_scrubbed.bytes));
}

TEST_F(StateScrubTest, ScrubAfterWatchdogResetRestoresFreshTiming)
{
    // Dirty-then-replay through the failure path the health policy
    // actually takes: request A wedges the unit, the watchdog resets
    // it and replays (request A still answers), then the health layer
    // scrubs. Request B must behave exactly as on a fresh device.
    const std::vector<uint8_t> deep = DeepSecretWire();
    const std::vector<uint8_t> probe = ProbeWire();

    AcceleratedBackend fresh(pool_);
    const RequestTrace b_fresh = RunRequest(&fresh, probe);

    sim::FaultConfig fault_config;
    fault_config.unit_wedge_rate = 1.0;
    fault_config.unit_fault_burst_len = 1;
    sim::FaultInjector injector(0x5C4B, fault_config);
    accel::AccelConfig accel_config;
    accel_config.watchdog.budget_cycles = 10'000;
    AcceleratedBackend victim(pool_, accel_config);
    victim.SetFaultInjector(&injector);

    const RequestTrace a = RunRequest(&victim, deep);
    EXPECT_FALSE(a.bytes.empty());  // watchdog recovered the wedge
    EXPECT_GT(victim.watchdog_stats().resets, 0u);

    victim.SetFaultInjector(nullptr);  // quarantine fenced the unit
    victim.ScrubDeviceState();

    const RequestTrace b = RunRequest(&victim, probe);
    EXPECT_EQ(b.bytes, b_fresh.bytes);
    EXPECT_EQ(b.deser_cycles, b_fresh.deser_cycles);
    EXPECT_EQ(b.ser_cycles, b_fresh.ser_cycles);
    EXPECT_FALSE(ContainsSecret(b.bytes));
}

TEST_F(StateScrubTest, RuntimeQuarantineScrubsBetweenRequests)
{
    // End-to-end through the serving runtime: SECRET-laden deep
    // requests drive the worker device into quarantine (every op
    // wedges), the quarantine scrub runs, and the probe request served
    // afterwards carries no secret bytes and parses correctly.
    sim::FaultConfig fault_config;
    fault_config.unit_wedge_rate = 1.0;
    auto injector =
        std::make_unique<sim::FaultInjector>(0xD117, fault_config);

    accel::AccelConfig accel_config;
    accel_config.watchdog.budget_cycles = 2'000;
    AcceleratedBackend *engine = nullptr;
    auto factory = [this, &engine, &injector,
                    accel_config](uint32_t) {
        auto accel =
            std::make_unique<AcceleratedBackend>(pool_, accel_config);
        accel->SetFaultInjector(injector.get());
        engine = accel.get();
        return std::make_unique<HybridCodecBackend>(
            std::move(accel),
            std::make_unique<SoftwareBackend>(cpu::BoomParams(),
                                              pool_));
    };

    RuntimeConfig config;
    config.num_workers = 1;
    config.health.enabled = true;
    RpcServerRuntime runtime(&pool_, factory, config);
    runtime.RegisterMethod(
        1, node_, node_, [this](const Message &request, Message response) {
            // Echo the root: text and v copied, children dropped.
            response.SetString(*text_, request.GetString(*text_));
            response.SetInt32(*v_, request.GetInt32(*v_));
        });

    const std::vector<uint8_t> deep = DeepSecretWire();
    for (uint32_t i = 1; i <= 8; ++i) {
        FrameHeader h;
        h.call_id = i;
        h.method_id = 1;
        h.kind = FrameKind::kRequest;
        h.payload_bytes = static_cast<uint32_t>(deep.size());
        ASSERT_EQ(runtime.Submit(h, deep.data()), StatusCode::kOk);
    }
    runtime.Start();
    runtime.Drain();

    RuntimeSnapshot snap = runtime.Snapshot();
    ASSERT_EQ(snap.health_quarantines, 1u);  // repeat offender fenced
    engine->SetFaultInjector(nullptr);

    // Probe request after the quarantine scrub.
    const std::vector<uint8_t> probe = ProbeWire();
    FrameHeader h;
    h.call_id = 100;
    h.method_id = 1;
    h.kind = FrameKind::kRequest;
    h.payload_bytes = static_cast<uint32_t>(probe.size());
    ASSERT_EQ(runtime.Submit(h, probe.data()), StatusCode::kOk);
    runtime.Drain();

    snap = runtime.Snapshot();
    EXPECT_EQ(snap.failures, 0u);

    // The probe's reply: correct, and free of request A's bytes.
    bool saw_probe = false;
    size_t offset = 0;
    while (const auto frame = runtime.replies(0).Next(&offset)) {
        if (frame->header.call_id != 100)
            continue;
        saw_probe = true;
        const std::vector<uint8_t> payload(
            frame->payload, frame->payload + frame->header.payload_bytes);
        EXPECT_FALSE(ContainsSecret(payload));
        Arena arena;
        Message response = Message::Create(&arena, pool_, node_);
        ASSERT_EQ(proto::ParseFromBuffer(payload.data(), payload.size(),
                                         &response, nullptr),
                  proto::ParseStatus::kOk);
        EXPECT_EQ(response.GetString(*text_), "request-B probe");
        EXPECT_EQ(response.GetInt32(*v_), 7);
    }
    EXPECT_TRUE(saw_probe);
}

}  // namespace
}  // namespace protoacc::rpc
