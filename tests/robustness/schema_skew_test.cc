/**
 * @file
 * Schema-evolution skew suite: mixed-version codecs must never
 * misparse. Every ordered pair of the three skew-pool versions
 * (tools/gen_pools.h BuildSkewPool: added, removed and widened fields)
 * runs a quad-engine differential — reference, table, generated and
 * accelerator model parse the foreign-version wire, agree on the
 * verdict, produce equal in-memory messages (software engines), and
 * re-serialize byte-identically to each other; for pure unknown-field
 * skews the round trip is byte-identical to the original wire.
 *
 * Also covers the negotiation layer: the runtime SchemaRegistry,
 * kFailedPrecondition rejection of unknown fingerprints, fingerprint
 * stamping on reply frames, and the generated-codec fallback counter
 * (observable tier downgrade).
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "cpu/cpu_model.h"
#include "gen_pools.h"
#include "proto/codec_generated.h"
#include "proto/codec_reference.h"
#include "proto/parser.h"
#include "proto/schema_parser.h"
#include "proto/schema_random.h"
#include "proto/serializer.h"
#include "rpc/rpc.h"
#include "rpc/schema_registry.h"

namespace protoacc {
namespace {

using proto::DescriptorPool;
using proto::Message;

/// One skew-pool version wired to all four engines as the decoder.
struct VersionRig
{
    explicit VersionRig(int version)
        : np(genpools::BuildSkewPool(version)),
          memory(sim::MemorySystemConfig{}),
          accel(&memory, accel::AccelConfig{}),
          adts(std::make_unique<accel::AdtBuilder>(*np.pool, &adt_arena))
    {
        accel.DeserAssignArena(&deser_arena);
        accel.SerAssignArena(&ser_arena);
    }

    genpools::NamedPool np;
    proto::Arena adt_arena;
    proto::Arena deser_arena;
    accel::SerArena ser_arena;
    sim::MemorySystem memory;
    accel::ProtoAccelerator accel;
    std::unique_ptr<accel::AdtBuilder> adts;
    uint32_t ser_jobs = 0;
};

/// Parse @p wire with all four engines of @p rig; EXPECT agreement and
/// byte-identical re-serialization across engines. Returns the table
/// engine's output (empty when the wire was rejected).
std::vector<uint8_t>
QuadRoundTrip(VersionRig *rig, const std::vector<uint8_t> &wire,
              const std::string &ctx)
{
    const DescriptorPool &pool = *rig->np.pool;
    const int root = rig->np.root;
    proto::Arena arena;

    Message ref_dest = Message::Create(&arena, pool, root);
    Message tab_dest = Message::Create(&arena, pool, root);
    Message gen_dest = Message::Create(&arena, pool, root);
    Message acc_dest = Message::Create(&arena, pool, root);

    const StatusCode ref_st = proto::ToStatusCode(
        proto::ReferenceParseFromBuffer(wire.data(), wire.size(),
                                        &ref_dest, nullptr, nullptr));
    const StatusCode tab_st = proto::ToStatusCode(proto::ParseFromBuffer(
        wire.data(), wire.size(), &tab_dest, nullptr, nullptr));
    const StatusCode gen_st = proto::ToStatusCode(
        proto::GeneratedParseFromBuffer(wire.data(), wire.size(),
                                        &gen_dest, nullptr, nullptr));
    rig->accel.EnqueueDeser(accel::MakeDeserJob(*rig->adts, root, pool,
                                                acc_dest.raw(),
                                                wire.data(),
                                                wire.size()));
    uint64_t cycles = 0;
    const StatusCode acc_st =
        accel::ToStatusCode(rig->accel.BlockForDeserCompletion(&cycles));

    EXPECT_EQ(StatusOk(ref_st), StatusOk(tab_st)) << ctx;
    EXPECT_EQ(StatusOk(tab_st), StatusOk(gen_st)) << ctx;
    EXPECT_EQ(StatusOk(tab_st), StatusOk(acc_st)) << ctx;
    if (!StatusOk(tab_st))
        return {};

    EXPECT_TRUE(MessagesEqual(ref_dest, tab_dest)) << ctx;
    EXPECT_TRUE(MessagesEqual(tab_dest, gen_dest)) << ctx;
    EXPECT_TRUE(MessagesEqual(tab_dest, acc_dest)) << ctx;

    const std::vector<uint8_t> ref_out =
        proto::ReferenceSerialize(ref_dest, nullptr);
    const std::vector<uint8_t> tab_out =
        proto::Serialize(tab_dest, nullptr);
    const std::vector<uint8_t> gen_out =
        proto::GeneratedSerialize(gen_dest, nullptr);
    rig->accel.EnqueueSer(
        accel::MakeSerJob(*rig->adts, root, pool, acc_dest.raw()));
    EXPECT_EQ(rig->accel.BlockForSerCompletion(&cycles),
              accel::AccelStatus::kOk)
        << ctx;
    const auto &acc_raw = rig->ser_arena.output(rig->ser_jobs++);
    const std::vector<uint8_t> acc_out(acc_raw.data,
                                       acc_raw.data + acc_raw.size);

    EXPECT_EQ(ref_out, tab_out) << ctx;
    EXPECT_EQ(gen_out, tab_out) << ctx;
    EXPECT_EQ(acc_out, tab_out) << ctx;
    return tab_out;
}

TEST(SchemaSkew, CrossVersionQuadEngineDifferential)
{
    // Every ordered (encode, decode) version pair, ~2k wires total.
    // Round-trip byte identity versus the original wire holds for
    // every pair except v1 -> v2, where the widened count field
    // (int64 read as int32) may truncate the value: there the
    // contract is cross-engine agreement, not wire identity.
    constexpr int kSeedsPerPair = 220;
    for (int decode = 0; decode <= 2; ++decode) {
        VersionRig rig(decode);
        for (int encode = 0; encode <= 2; ++encode) {
            genpools::NamedPool enc = genpools::BuildSkewPool(encode);
            for (int seed = 0; seed < kSeedsPerPair; ++seed) {
                Rng rng(0x5EED0000u + 1000u * encode + 100000u * decode +
                        seed);
                proto::Arena arena;
                Message src =
                    Message::Create(&arena, *enc.pool, enc.root);
                proto::PopulateRandomMessage(src, &rng,
                                             proto::MessageGenOptions{});
                const std::vector<uint8_t> wire =
                    proto::Serialize(src, nullptr);

                const std::string ctx =
                    "encode v" + std::to_string(encode) + " decode v" +
                    std::to_string(decode) + " seed " +
                    std::to_string(seed);
                const std::vector<uint8_t> out =
                    QuadRoundTrip(&rig, wire, ctx);
                if (!(encode == 1 && decode == 2))
                    EXPECT_EQ(out, wire) << ctx;
                rig.deser_arena.Reset();
            }
        }
    }
}

TEST(SchemaSkew, UnknownFieldsPreservedOnOlderDecoder)
{
    // A v_N payload through a v_{N-1} decoder: the added fields (6-9)
    // land in the unknown store and survive the round trip.
    VersionRig rig(0);
    genpools::NamedPool enc = genpools::BuildSkewPool(1);
    Rng rng(42);
    proto::Arena arena;
    Message src = Message::Create(&arena, *enc.pool, enc.root);
    proto::PopulateRandomMessage(src, &rng, proto::MessageGenOptions{});
    // Force the added fields present so the unknown path is exercised
    // regardless of the random draw.
    const auto &d = enc.pool->message(enc.root);
    src.SetUint32(*d.FindFieldByName("flags"), 0xabcd);
    src.SetString(*d.FindFieldByName("blob"), "opaque-bytes");
    const std::vector<uint8_t> wire = proto::Serialize(src, nullptr);

    Message dest = Message::Create(&arena, *rig.np.pool, rig.np.root);
    ASSERT_EQ(proto::ParseFromBuffer(wire.data(), wire.size(), &dest,
                                     nullptr, nullptr),
              proto::ParseStatus::kOk);
    const proto::UnknownFieldStore *u = dest.unknown_fields();
    ASSERT_NE(u, nullptr);
    EXPECT_GE(u->count(), 2u);  // at least flags + blob
    EXPECT_GT(u->total_bytes(), 0u);

    const std::vector<uint8_t> out = QuadRoundTrip(
        &rig, wire, "v1 wire through v0 decoders");
    EXPECT_EQ(out, wire);
}

TEST(SchemaSkew, WidenedFieldTruncationAgreesAcrossEngines)
{
    // v_N writes count as int64; v_{N+1} reads it as int32. The
    // truncation must be identical in all four engines (agreement, not
    // wire identity — the narrowing is lossy by design).
    VersionRig rig(2);
    genpools::NamedPool enc = genpools::BuildSkewPool(1);
    proto::Arena arena;
    Message src = Message::Create(&arena, *enc.pool, enc.root);
    const auto &d = enc.pool->message(enc.root);
    src.SetUint64(*d.FindFieldByName("id"), 7);
    src.SetInt64(*d.FindFieldByName("count"),
                 static_cast<int64_t>(0x1234567890abcdefLL));
    const std::vector<uint8_t> wire = proto::Serialize(src, nullptr);

    const std::vector<uint8_t> out =
        QuadRoundTrip(&rig, wire, "int64 count into int32 decoder");
    ASSERT_FALSE(out.empty());
}

/// Sink tallying the allocation/copy event stream (the cost contract
/// the three software engines must share for unknown preservation).
class TallySink : public proto::CostSink
{
  public:
    void OnAlloc(size_t bytes) override
    {
        ++allocs;
        alloc_bytes += bytes;
    }
    void OnMemcpy(size_t bytes) override
    {
        ++memcpys;
        memcpy_bytes += bytes;
    }
    uint64_t allocs = 0, alloc_bytes = 0;
    uint64_t memcpys = 0, memcpy_bytes = 0;

    bool
    operator==(const TallySink &o) const
    {
        return allocs == o.allocs && alloc_bytes == o.alloc_bytes &&
               memcpys == o.memcpys && memcpy_bytes == o.memcpy_bytes;
    }
};

TEST(SchemaSkew, UnknownPreservationCostParityAcrossSoftwareEngines)
{
    genpools::NamedPool dec = genpools::BuildSkewPool(0);
    genpools::NamedPool enc = genpools::BuildSkewPool(1);
    Rng rng(7);
    proto::Arena arena;
    Message src = Message::Create(&arena, *enc.pool, enc.root);
    proto::PopulateRandomMessage(src, &rng, proto::MessageGenOptions{});
    const auto &d = enc.pool->message(enc.root);
    src.SetString(*d.FindFieldByName("blob"), "0123456789abcdef");
    const std::vector<uint8_t> wire = proto::Serialize(src, nullptr);

    TallySink ref_sink, tab_sink, gen_sink;
    Message a = Message::Create(&arena, *dec.pool, dec.root);
    Message b = Message::Create(&arena, *dec.pool, dec.root);
    Message c = Message::Create(&arena, *dec.pool, dec.root);
    ASSERT_EQ(proto::ToStatusCode(proto::ReferenceParseFromBuffer(
                  wire.data(), wire.size(), &a, &ref_sink, nullptr)),
              StatusCode::kOk);
    ASSERT_EQ(proto::ParseFromBuffer(wire.data(), wire.size(), &b,
                                     &tab_sink, nullptr),
              proto::ParseStatus::kOk);
    ASSERT_EQ(proto::ToStatusCode(proto::GeneratedParseFromBuffer(
                  wire.data(), wire.size(), &c, &gen_sink, nullptr)),
              StatusCode::kOk);
    EXPECT_TRUE(ref_sink == tab_sink);
    EXPECT_TRUE(tab_sink == gen_sink);
    EXPECT_GT(tab_sink.allocs, 0u);
}

TEST(SchemaSkew, UnknownFieldBudgetExhaustionAgreesAcrossEngines)
{
    // Preserved unknown bytes charge the alloc budget in every engine:
    // a v1 wire with a large unknown blob into a v0 decoder under a
    // tiny budget must exhaust identically in all four.
    VersionRig rig(0);
    genpools::NamedPool enc = genpools::BuildSkewPool(1);
    proto::Arena arena;
    Message src = Message::Create(&arena, *enc.pool, enc.root);
    const auto &d = enc.pool->message(enc.root);
    src.SetString(*d.FindFieldByName("blob"), std::string(256, 'x'));
    const std::vector<uint8_t> wire = proto::Serialize(src, nullptr);

    ParseLimits limits;
    limits.max_alloc_bytes = 64;
    rig.accel.deserializer().SetLimits(limits);

    const DescriptorPool &pool = *rig.np.pool;
    Message m1 = Message::Create(&arena, pool, rig.np.root);
    Message m2 = Message::Create(&arena, pool, rig.np.root);
    Message m3 = Message::Create(&arena, pool, rig.np.root);
    Message m4 = Message::Create(&arena, pool, rig.np.root);
    EXPECT_EQ(proto::ToStatusCode(proto::ReferenceParseFromBuffer(
                  wire.data(), wire.size(), &m1, nullptr, &limits)),
              StatusCode::kResourceExhausted);
    EXPECT_EQ(proto::ToStatusCode(proto::ParseFromBuffer(
                  wire.data(), wire.size(), &m2, nullptr, &limits)),
              StatusCode::kResourceExhausted);
    EXPECT_EQ(proto::ToStatusCode(proto::GeneratedParseFromBuffer(
                  wire.data(), wire.size(), &m3, nullptr, &limits)),
              StatusCode::kResourceExhausted);
    rig.accel.EnqueueDeser(accel::MakeDeserJob(*rig.adts, rig.np.root,
                                               pool, m4.raw(),
                                               wire.data(),
                                               wire.size()));
    uint64_t cycles = 0;
    EXPECT_EQ(accel::ToStatusCode(
                  rig.accel.BlockForDeserCompletion(&cycles)),
              StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------
// Negotiation layer: registry, rejection, stamping, fallback counter
// ---------------------------------------------------------------------

TEST(SchemaSkew, SchemaRegistryTracksVersions)
{
    genpools::NamedPool v0 = genpools::BuildSkewPool(0);
    genpools::NamedPool v1 = genpools::BuildSkewPool(1);
    rpc::SchemaRegistry reg;
    const uint64_t fp0 = reg.Register(*v0.pool, "skew-v0");
    const uint64_t fp1 = reg.Register(*v1.pool, "skew-v1");
    EXPECT_NE(fp0, 0u);
    EXPECT_NE(fp1, 0u);
    EXPECT_NE(fp0, fp1);  // structural change => new fingerprint
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_TRUE(reg.Knows(fp0));
    EXPECT_TRUE(reg.Knows(fp1));
    EXPECT_FALSE(reg.Knows(fp0 ^ fp1));
    // Re-registering an identical structure is a no-op.
    EXPECT_EQ(reg.Register(*v0.pool, "skew-v0-again"), fp0);
    EXPECT_EQ(reg.size(), 2u);
    const auto *e = reg.Find(fp1);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->label, "skew-v1");
    // Renderer: 0x + 16 hex digits.
    const std::string name = rpc::SchemaFingerprintName(fp0);
    EXPECT_EQ(name.size(), 18u);
    EXPECT_EQ(name.substr(0, 2), "0x");
}

class SchemaSkewNegotiationTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const auto parsed = proto::ParseSchema(R"(
            message Ping { optional uint32 x = 1; }
        )",
                                               &pool_);
        ASSERT_TRUE(parsed.ok) << parsed.error;
        pool_.Compile(proto::HasbitsMode::kSparse);
        msg_ = pool_.FindMessage("Ping");
    }

    DescriptorPool pool_;
    int msg_ = -1;
};

TEST_F(SchemaSkewNegotiationTest, UnknownFingerprintIsFailedPrecondition)
{
    rpc::RpcServer server(&pool_,
                          std::make_unique<rpc::SoftwareBackend>(
                              cpu::BoomParams()));
    server.RegisterMethod(1, msg_, msg_,
                          [](const Message &, Message) {});
    rpc::SchemaRegistry reg;
    const uint64_t fp = reg.Register(pool_, "ping-v1");
    server.SetSchemaRegistry(&reg);
    server.set_schema_fingerprint(fp);

    rpc::RpcSession session(&pool_,
                            std::make_unique<rpc::SoftwareBackend>(
                                cpu::BoomParams()),
                            &server, rpc::SimulatedChannel{});
    proto::Arena arena;
    Message request = Message::Create(&arena, pool_, msg_);
    Message response = Message::Create(&arena, pool_, msg_);

    // A matching fingerprint negotiates cleanly.
    session.set_schema_fingerprint(fp);
    EXPECT_EQ(session.Call(1, request, &response), StatusCode::kOk);
    EXPECT_EQ(server.schema_rejects(), 0u);

    // A fingerprint the registry has never seen: structured rejection,
    // never a misparse. kFailedPrecondition is non-retryable.
    session.set_schema_fingerprint(fp ^ 0xdeadbeefULL);
    EXPECT_EQ(session.Call(1, request, &response),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ(server.schema_rejects(), 1u);
    EXPECT_FALSE(StatusIsRetryable(StatusCode::kFailedPrecondition));

    // Fingerprint 0 is the legacy non-negotiating sender: accepted.
    session.set_schema_fingerprint(0);
    EXPECT_EQ(session.Call(1, request, &response), StatusCode::kOk);
    EXPECT_EQ(server.schema_rejects(), 1u);
}

TEST_F(SchemaSkewNegotiationTest, RepliesCarryServerFingerprint)
{
    rpc::RpcServer server(&pool_,
                          std::make_unique<rpc::SoftwareBackend>(
                              cpu::BoomParams()));
    server.RegisterMethod(1, msg_, msg_,
                          [](const Message &, Message) {});
    rpc::SchemaRegistry reg;
    const uint64_t fp = reg.Register(pool_, "ping-v1");
    server.SetSchemaRegistry(&reg);
    server.set_schema_fingerprint(fp);

    // Hand-built request frame so the raw reply header is observable.
    proto::Arena arena;
    Message request = Message::Create(&arena, pool_, msg_);
    const std::vector<uint8_t> body = proto::Serialize(request, nullptr);
    rpc::FrameBuffer wire, reply;
    rpc::FrameHeader h;
    h.kind = rpc::FrameKind::kRequest;
    h.method_id = 1;
    h.call_id = 9;
    h.payload_bytes = static_cast<uint32_t>(body.size());
    h.schema_fp = fp;
    wire.Append(h, body.data());
    size_t off = 0;
    const auto f = wire.Next(&off);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(server.HandleFrame(*f, &reply), StatusCode::kOk);
    size_t roff = 0;
    const auto r = reply.Next(&roff);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->header.schema_fp, fp);

    // The rejection error frame is stamped too, and its detail names
    // the offending fingerprint so operators can key dashboards on it.
    rpc::FrameBuffer wire2, reply2;
    h.schema_fp = 0x1111222233334444ULL;
    h.call_id = 10;
    wire2.Append(h, body.data());
    off = 0;
    const auto f2 = wire2.Next(&off);
    ASSERT_TRUE(f2.has_value());
    EXPECT_EQ(server.HandleFrame(*f2, &reply2),
              StatusCode::kFailedPrecondition);
    roff = 0;
    const auto r2 = reply2.Next(&roff);
    ASSERT_TRUE(r2.has_value());
    EXPECT_EQ(r2->header.kind, rpc::FrameKind::kError);
    EXPECT_EQ(r2->header.status, StatusCode::kFailedPrecondition);
    EXPECT_EQ(r2->header.schema_fp, fp);
    const std::string detail(
        reinterpret_cast<const char *>(r2->payload),
        r2->header.payload_bytes);
    EXPECT_NE(detail.find("unknown schema fingerprint"),
              std::string::npos);
    EXPECT_NE(detail.find("0x1111222233334444"), std::string::npos);
}

TEST(SchemaSkew, GeneratedFallbackCounterObservesTierDowngrade)
{
    // A pool with no emitted codec behind a kGenerated backend: ops
    // serve on the table engine and every miss is counted.
    DescriptorPool pool;
    const auto parsed = proto::ParseSchema(R"(
        message NotEmitted { optional string s = 1; }
    )",
                                           &pool);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    pool.Compile(proto::HasbitsMode::kSparse);
    ASSERT_EQ(proto::GetGeneratedCodec(pool), nullptr);

    rpc::SoftwareBackend backend(
        cpu::BoomParams(), pool, proto::SoftwareCodecEngine::kGenerated);
    EXPECT_EQ(backend.generated_fallbacks(), 0u);

    proto::Arena arena;
    const int root = pool.FindMessage("NotEmitted");
    Message msg = Message::Create(&arena, pool, root);
    const auto &d = pool.message(root);
    msg.SetString(*d.FindFieldByName("s"), "hello");
    const std::vector<uint8_t> wire = backend.Serialize(msg);
    EXPECT_FALSE(wire.empty());
    EXPECT_EQ(backend.generated_fallbacks(), 1u);

    Message dest = Message::Create(&arena, pool, root);
    EXPECT_EQ(backend.Deserialize(wire.data(), wire.size(), &dest),
              StatusCode::kOk);
    EXPECT_EQ(backend.generated_fallbacks(), 2u);
    EXPECT_TRUE(MessagesEqual(msg, dest));

    // A pool WITH an emitted codec never increments the counter.
    genpools::NamedPool v1 = genpools::BuildSkewPool(1);
    ASSERT_NE(proto::GetGeneratedCodec(*v1.pool), nullptr);
    rpc::SoftwareBackend gen_backend(
        cpu::BoomParams(), *v1.pool,
        proto::SoftwareCodecEngine::kGenerated);
    Message m2 = Message::Create(&arena, *v1.pool, v1.root);
    (void)gen_backend.Serialize(m2);
    EXPECT_EQ(gen_backend.generated_fallbacks(), 0u);
}

}  // namespace
}  // namespace protoacc
