/**
 * @file
 * The HyperProtoBench generator (§5.2).
 *
 * End-to-end pipeline, mirroring the paper's: (1) pick the heaviest
 * serialization-framework user services by GWP cycle weight, (2) sample
 * their live message shapes with the protobufz analog, (3) fit a
 * distribution to each (shape.h), (4) generate a synthetic service —
 * message definitions plus a driver that constructs and
 * serializes/deserializes representative messages — one benchmark per
 * service (bench0..bench5).
 */
#ifndef PROTOACC_HPB_GENERATOR_H
#define PROTOACC_HPB_GENERATOR_H

#include <memory>
#include <string>
#include <vector>

#include "harness/bench_common.h"
#include "hpb/shape.h"

namespace protoacc::hpb {

/// One generated HyperProtoBench benchmark.
struct HpbBenchmark
{
    std::string name;
    /// The synthetic service generated from the fitted profile (owns
    /// the schemas).
    std::unique_ptr<profile::SyntheticService> service;
    /// A pre-populated batch of representative messages.
    std::unique_ptr<proto::Arena> arena;
    harness::Workload workload;
};

/// Generation knobs.
struct HpbParams
{
    int num_benchmarks = 6;   ///< bench0..bench5 (Figures 12/13)
    int messages_per_bench = 48;
    int shape_samples_per_service = 1500;
    uint64_t seed = 5 * 2021;
};

/**
 * Build the full HyperProtoBench suite from a fleet: selects the
 * heaviest services, fits their shapes, generates benchmarks.
 */
std::vector<HpbBenchmark> BuildHyperProtoBench(
    const profile::Fleet &fleet, const HpbParams &params = HpbParams{});

}  // namespace protoacc::hpb

#endif  // PROTOACC_HPB_GENERATOR_H
