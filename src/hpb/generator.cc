#include "hpb/generator.h"

#include <algorithm>

namespace protoacc::hpb {

using profile::Fleet;
using profile::FleetParams;
using profile::ProtobufzSampler;
using profile::ShapeAggregate;
using profile::SyntheticService;

std::vector<HpbBenchmark>
BuildHyperProtoBench(const Fleet &fleet, const HpbParams &params)
{
    // Step 1: rank services by cycle weight and take the heaviest
    // (§5.2: "we use fleet-wide profiling data to determine the five
    // heaviest users").
    std::vector<size_t> order(fleet.service_count());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&fleet](size_t a, size_t b) {
        return fleet.service(a).weight() > fleet.service(b).weight();
    });
    const int n = std::min<int>(params.num_benchmarks,
                                static_cast<int>(order.size()));

    std::vector<HpbBenchmark> benches;
    Rng rng(params.seed);
    ProtobufzSampler sampler(&fleet, params.seed ^ 0xbeef);
    for (int b = 0; b < n; ++b) {
        // Step 2: per-service live shape collection.
        const ShapeAggregate agg = sampler.CollectService(
            order[b], params.shape_samples_per_service);

        // Step 3: fit the generation profile.
        FleetParams gen_params;
        gen_params.profile = FitShapeProfile(agg);

        // Step 4: generate the synthetic benchmark service and its
        // pre-populated message batch.
        HpbBenchmark bench;
        bench.name = "bench" + std::to_string(b);
        bench.service = std::make_unique<SyntheticService>(
            bench.name, rng.Next(), gen_params);
        bench.arena = std::make_unique<proto::Arena>();

        Rng msg_rng(rng.Next());
        bench.workload.pool = &bench.service->pool();
        const int type = bench.service->top_level_types().front();
        bench.workload.msg_index = type;
        for (int m = 0; m < params.messages_per_bench; ++m) {
            bench.workload.messages.push_back(bench.service->BuildMessage(
                bench.service->SampleTopLevelType(&msg_rng),
                bench.arena.get(), &msg_rng));
        }
        // The workload runner needs one msg_index for destination
        // allocation; restrict the batch to that type.
        std::erase_if(bench.workload.messages,
                      [&](const proto::Message &m) {
                          return m.descriptor().pool_index() != type;
                      });
        while (bench.workload.messages.size() <
               static_cast<size_t>(params.messages_per_bench)) {
            bench.workload.messages.push_back(bench.service->BuildMessage(
                type, bench.arena.get(), &msg_rng));
        }
        harness::FillWires(&bench.workload);
        benches.push_back(std::move(bench));
    }
    return benches;
}

}  // namespace protoacc::hpb
