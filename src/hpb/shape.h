/**
 * @file
 * Distribution fitting for HyperProtoBench (§5.2).
 *
 * The paper's internal generator "fits a distribution to the input data
 * and then samples from it to produce a benchmark that is representative
 * of a selected production service". FitShapeProfile is that fitting
 * step: it turns a per-service protobufz shape aggregate back into a
 * ShapeProfile — field-type mix, message-size and bytes-field-size
 * bucket distributions, density deciles and mean presence — from which
 * the generator (generator.h) samples fresh schemas and messages.
 */
#ifndef PROTOACC_HPB_SHAPE_H
#define PROTOACC_HPB_SHAPE_H

#include "profile/samplers.h"

namespace protoacc::hpb {

/// Fit a generation profile to observed shape data.
profile::ShapeProfile FitShapeProfile(const profile::ShapeAggregate &agg);

}  // namespace protoacc::hpb

#endif  // PROTOACC_HPB_SHAPE_H
