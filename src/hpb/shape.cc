#include "hpb/shape.h"

#include <algorithm>

namespace protoacc::hpb {

using profile::ShapeAggregate;
using profile::ShapeProfile;

ShapeProfile
FitShapeProfile(const ShapeAggregate &agg)
{
    ShapeProfile profile;

    // Field-type mix: empirical counts and bytes per (type, repeated).
    double total_fields = 0;
    double total_bytes = 0;
    for (const auto &[key, stats] : agg.by_type) {
        total_fields += static_cast<double>(stats.count);
        total_bytes += stats.wire_bytes;
    }
    if (total_fields > 0) {
        profile.type_shares.clear();
        for (const auto &[key, stats] : agg.by_type) {
            profile::FieldTypeShare share;
            share.type = static_cast<proto::FieldType>(key.first);
            share.repeated = key.second;
            share.field_pct = 100.0 * stats.count / total_fields;
            share.bytes_pct =
                total_bytes > 0
                    ? 100.0 * stats.wire_bytes / total_bytes
                    : 0;
            profile.type_shares.push_back(share);
        }
    }

    // Size-bucket distributions: empirical counts.
    const uint64_t msgs = agg.msg_sizes.total_count();
    if (msgs > 0) {
        for (size_t i = 0; i < 10; ++i)
            profile.msg_size_pct[i] = agg.msg_sizes.count_pct(i);
    }
    const uint64_t bytes_fields = agg.bytes_field_sizes.total_count();
    if (bytes_fields > 0) {
        for (size_t i = 0; i < 10; ++i) {
            profile.bytes_field_size_pct[i] =
                agg.bytes_field_sizes.count_pct(i);
        }
    }

    // Density deciles and mean presence.
    if (agg.density_samples > 0) {
        double mean_density = 0;
        for (size_t d = 0; d < 10; ++d) {
            profile.density_pct[d] =
                100.0 * agg.density_deciles[d] / agg.density_samples;
            mean_density += (d / 10.0 + 0.05) * profile.density_pct[d] /
                            100.0;
        }
        // Presence tracks density: a fitted profile regenerates the
        // same sparsity it observed.
        profile.mean_presence =
            std::clamp(mean_density * 1.2, 0.05, 0.95);
    }
    return profile;
}

}  // namespace protoacc::hpb
