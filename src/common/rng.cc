#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace protoacc {
namespace {

uint64_t
SplitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
Rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

void
Rng::Seed(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = SplitMix64(sm);
}

uint64_t
Rng::Next()
{
    const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::NextBounded(uint64_t bound)
{
    PA_CHECK(bound != 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        const uint64_t r = Next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::NextRange(int64_t lo, int64_t hi)
{
    PA_CHECK_LE(lo, hi);
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0)  // full 64-bit range
        return static_cast<int64_t>(Next());
    return lo + static_cast<int64_t>(NextBounded(span));
}

double
Rng::NextDouble()
{
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool
Rng::NextBool(double p)
{
    return NextDouble() < p;
}

size_t
Rng::NextWeighted(const std::vector<double> &weights)
{
    PA_CHECK(!weights.empty());
    double total = 0;
    for (double w : weights)
        total += w;
    PA_CHECK_GT(total, 0);
    double x = NextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        x -= weights[i];
        if (x < 0)
            return i;
    }
    return weights.size() - 1;
}

uint64_t
Rng::NextLogUniform(uint64_t lo, uint64_t hi)
{
    PA_CHECK_LE(lo, hi);
    PA_CHECK_GE(lo, 1u);
    const double llo = std::log2(static_cast<double>(lo));
    const double lhi = std::log2(static_cast<double>(hi) + 1.0);
    const double draw = llo + NextDouble() * (lhi - llo);
    uint64_t v = static_cast<uint64_t>(std::floor(std::exp2(draw)));
    if (v < lo)
        v = lo;
    if (v > hi)
        v = hi;
    return v;
}

}  // namespace protoacc
