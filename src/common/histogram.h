/**
 * @file
 * Bucketed histograms used by the fleet-profiling study.
 *
 * The paper's profiling figures use a fixed set of 10 byte-size buckets
 * (Figures 3 and 4c). SizeBucket reproduces those bounds exactly;
 * Histogram is a generic labeled-bucket accumulator used by every
 * figure-reproduction binary.
 */
#ifndef PROTOACC_COMMON_HISTOGRAM_H
#define PROTOACC_COMMON_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace protoacc {

/// The paper's 10 size buckets, inclusive bounds (Figures 3 / 4c).
struct SizeBucket
{
    uint64_t lo;
    uint64_t hi;  ///< inclusive; UINT64_MAX for the open top bucket
    const char *label;
};

/// Bounds shared by Figure 3 (message sizes) and Figure 4c (bytes-field
/// sizes): 0-8, 9-16, 17-32, 33-64, 65-128, 129-256, 257-512, 513-4096,
/// 4097-32768, 32769-inf.
const std::vector<SizeBucket> &PaperSizeBuckets();

/// Index of the paper bucket containing @p size.
size_t PaperSizeBucketIndex(uint64_t size);

/**
 * A labeled-bucket accumulator tracking both a count and a weight (e.g.
 * bytes) per bucket.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<std::string> labels);

    /// Construct with the paper's 10 size-bucket labels.
    static Histogram ForPaperSizeBuckets();

    void Add(size_t bucket, double weight = 1.0);
    void AddSized(uint64_t size, double weight = 1.0);

    size_t num_buckets() const { return labels_.size(); }
    const std::string &label(size_t i) const { return labels_[i]; }
    uint64_t count(size_t i) const { return counts_[i]; }
    double weight(size_t i) const { return weights_[i]; }
    uint64_t total_count() const;
    double total_weight() const;

    /// Percentage of total count in bucket @p i (0 when empty).
    double count_pct(size_t i) const;
    /// Percentage of total weight in bucket @p i (0 when empty).
    double weight_pct(size_t i) const;

    /// Render as an aligned text table (label, count, count%, weight%).
    std::string ToTable(const std::string &title) const;

  private:
    std::vector<std::string> labels_;
    std::vector<uint64_t> counts_;
    std::vector<double> weights_;
};

}  // namespace protoacc

#endif  // PROTOACC_COMMON_HISTOGRAM_H
