/**
 * @file
 * Unified failure taxonomy for the whole serving stack.
 *
 * The accelerator sits on the request-serving hot path, so a malformed
 * wire buffer or a dead (de)serializer unit is an availability event,
 * not just a parse error. Every layer has its own local status enum
 * (proto::ParseStatus for the software codecs, accel::AccelStatus for
 * the device model); this header defines the common code space they all
 * map into, which is what crosses layer boundaries: CodecBackend
 * results, RPC error frames on the wire, serving-runtime counters.
 *
 * The mapping functions live next to the source enums
 * (proto/parser.h, accel/deserializer.h) so this header stays at the
 * bottom of the dependency graph.
 */
#ifndef PROTOACC_COMMON_STATUS_H
#define PROTOACC_COMMON_STATUS_H

#include <cstddef>
#include <cstdint>

namespace protoacc {

/**
 * One code space for every failure the stack can produce. Values are
 * wire-stable: error frames carry the raw value in a single byte.
 */
enum class StatusCode : uint8_t {
    kOk = 0,
    /// RPC method id not registered on the server.
    kUnknownMethod = 1,
    /// Wire bytes violate the encoding (bad varint, zero field key...).
    kMalformedInput = 2,
    /// Input ended before a declared length/value completed.
    kTruncated = 3,
    /// Reserved or unsupported wire type (e.g. deprecated groups).
    kInvalidWireType = 4,
    /// Sub-message nesting beyond the parser/stack depth limit.
    kDepthExceeded = 5,
    /// proto3 string field containing malformed UTF-8.
    kInvalidUtf8 = 6,
    /// A parse resource limit tripped (payload size, alloc budget).
    kResourceExhausted = 7,
    /// Serializer output region too small.
    kOutputOverflow = 8,
    /// Accelerator unit failed (killed / wedged) before completing.
    kAccelFault = 9,
    /// Admission control shed the request (modeled queue wait too long).
    kOverloaded = 10,
    /// Modeled completion time exceeded the per-call deadline.
    kDeadlineExceeded = 11,
    /// Frame lost or mangled in the channel; no response arrived.
    kUnavailable = 12,
    /// Bug sentinel: a layer produced a status it should not have.
    kInternal = 13,
    /// Frame header declares a wire-format version this build does not
    /// speak; rejected without attempting to parse the frame.
    kUnimplemented = 14,
    /// Frame failed its end-to-end integrity check (CRC32C mismatch):
    /// bytes were corrupted in flight and the corruption was *detected*
    /// rather than served.
    kDataLoss = 15,
    /// Schema negotiation failed: the frame carries a schema
    /// fingerprint this server's registry does not know, so decoding
    /// it could silently misparse. Rejected before any parse attempt;
    /// not retryable — the client must re-negotiate schemas.
    kFailedPrecondition = 16,
};

/// Number of distinct codes (for counter arrays indexed by code).
inline constexpr size_t kNumStatusCodes = 17;

const char *StatusCodeName(StatusCode code);

inline bool
StatusOk(StatusCode code)
{
    return code == StatusCode::kOk;
}

/**
 * True for transient failures where retrying the same request may
 * succeed: overload, lost frames, deadline misses, and accelerator
 * unit faults. Deterministic rejections (malformed input, resource
 * limits, unknown method) are never retryable.
 */
bool StatusIsRetryable(StatusCode code);

/**
 * Parse resource limits, enforced identically by the reference codec,
 * the table codec and the accelerator's deserializer unit so the three
 * engines keep byte-identical accept/reject verdicts under limits.
 *
 * The allocation budget counts wire-derived bytes all three engines
 * charge the same way: string/bytes payload length, sub-message
 * object_size, and element width per repeated element. Zero means
 * unlimited for the byte limits; zero max_depth means the codec
 * default (proto::kMaxParseDepth).
 */
struct ParseLimits
{
    uint64_t max_payload_bytes = 0;
    uint64_t max_alloc_bytes = 0;
    uint32_t max_depth = 0;
};

}  // namespace protoacc

#endif  // PROTOACC_COMMON_STATUS_H
