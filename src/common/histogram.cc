#include "common/histogram.h"

#include <cinttypes>
#include <cstdio>

#include "common/check.h"

namespace protoacc {

const std::vector<SizeBucket> &
PaperSizeBuckets()
{
    static const std::vector<SizeBucket> kBuckets = {
        {0, 8, "0-8"},
        {9, 16, "9-16"},
        {17, 32, "17-32"},
        {33, 64, "33-64"},
        {65, 128, "65-128"},
        {129, 256, "129-256"},
        {257, 512, "257-512"},
        {513, 4096, "513-4096"},
        {4097, 32768, "4097-32768"},
        {32769, UINT64_MAX, "32769-inf"},
    };
    return kBuckets;
}

size_t
PaperSizeBucketIndex(uint64_t size)
{
    const auto &buckets = PaperSizeBuckets();
    for (size_t i = 0; i < buckets.size(); ++i) {
        if (size <= buckets[i].hi)
            return i;
    }
    return buckets.size() - 1;
}

Histogram::Histogram(std::vector<std::string> labels)
    : labels_(std::move(labels)),
      counts_(labels_.size(), 0),
      weights_(labels_.size(), 0.0)
{
    PA_CHECK(!labels_.empty());
}

Histogram
Histogram::ForPaperSizeBuckets()
{
    std::vector<std::string> labels;
    for (const auto &b : PaperSizeBuckets())
        labels.emplace_back(b.label);
    return Histogram(std::move(labels));
}

void
Histogram::Add(size_t bucket, double weight)
{
    PA_CHECK_LT(bucket, labels_.size());
    counts_[bucket] += 1;
    weights_[bucket] += weight;
}

void
Histogram::AddSized(uint64_t size, double weight)
{
    Add(PaperSizeBucketIndex(size), weight);
}

uint64_t
Histogram::total_count() const
{
    uint64_t total = 0;
    for (uint64_t c : counts_)
        total += c;
    return total;
}

double
Histogram::total_weight() const
{
    double total = 0;
    for (double w : weights_)
        total += w;
    return total;
}

double
Histogram::count_pct(size_t i) const
{
    const uint64_t total = total_count();
    return total == 0 ? 0.0 : 100.0 * static_cast<double>(counts_[i]) /
                                  static_cast<double>(total);
}

double
Histogram::weight_pct(size_t i) const
{
    const double total = total_weight();
    return total == 0 ? 0.0 : 100.0 * weights_[i] / total;
}

std::string
Histogram::ToTable(const std::string &title) const
{
    std::string out = title + "\n";
    char line[256];
    std::snprintf(line, sizeof(line), "  %-14s %12s %8s %8s\n", "bucket",
                  "count", "count%", "bytes%");
    out += line;
    for (size_t i = 0; i < labels_.size(); ++i) {
        std::snprintf(line, sizeof(line),
                      "  %-14s %12" PRIu64 " %7.2f%% %7.2f%%\n",
                      labels_[i].c_str(), counts_[i], count_pct(i),
                      weight_pct(i));
        out += line;
    }
    return out;
}

}  // namespace protoacc
