#include "common/status.h"

namespace protoacc {

const char *
StatusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk: return "ok";
      case StatusCode::kUnknownMethod: return "unknown method";
      case StatusCode::kMalformedInput: return "malformed input";
      case StatusCode::kTruncated: return "truncated";
      case StatusCode::kInvalidWireType: return "invalid wire type";
      case StatusCode::kDepthExceeded: return "depth exceeded";
      case StatusCode::kInvalidUtf8: return "invalid utf-8";
      case StatusCode::kResourceExhausted: return "resource exhausted";
      case StatusCode::kOutputOverflow: return "output overflow";
      case StatusCode::kAccelFault: return "accelerator fault";
      case StatusCode::kOverloaded: return "overloaded";
      case StatusCode::kDeadlineExceeded: return "deadline exceeded";
      case StatusCode::kUnavailable: return "unavailable";
      case StatusCode::kInternal: return "internal";
      case StatusCode::kUnimplemented: return "unimplemented";
      case StatusCode::kDataLoss: return "data loss";
      case StatusCode::kFailedPrecondition: return "failed precondition";
    }
    return "?";
}

bool
StatusIsRetryable(StatusCode code)
{
    switch (code) {
      case StatusCode::kAccelFault:
      case StatusCode::kOverloaded:
      case StatusCode::kDeadlineExceeded:
      case StatusCode::kUnavailable:
      // A CRC mismatch means the frame was mangled in flight; the
      // sender's copy is intact, so resending it may succeed.
      case StatusCode::kDataLoss:
        return true;
      default:
        return false;
    }
}

}  // namespace protoacc
