/**
 * @file
 * CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the end-to-end frame
 * integrity check of the RPC substrate.
 *
 * The serving stack cannot trust the channel: a payload byte flipped in
 * flight can still parse into a well-formed message and be served as a
 * wrong answer. Production RPC framing layers around hardware
 * (de)serializers carry a checksum per frame for exactly this reason
 * (RPCAcc and HGum both note it for their host<->accelerator framing);
 * CRC32C is the conventional choice because short tables fit in L1 and
 * commodity cores carry a dedicated instruction for it.
 *
 * Implementation: slice-by-8 — eight 256-entry tables consume 8 input
 * bytes per iteration without any carry chain between them, the
 * standard software formulation (Intel's slicing-by-8 paper). A
 * byte-at-a-time reference lives in the test to cross-check the tables.
 */
#ifndef PROTOACC_COMMON_CRC32C_H
#define PROTOACC_COMMON_CRC32C_H

#include <cstddef>
#include <cstdint>

namespace protoacc {

/**
 * Extend a running CRC32C with @p len bytes at @p data.
 *
 * @p crc is a *finalized* CRC value (as returned by Crc32c or a
 * previous Extend), so checksums compose over discontiguous pieces:
 * Crc32cExtend(Crc32c(a, n), b, m) == Crc32c(concat(a, b), n + m).
 */
uint32_t Crc32cExtend(uint32_t crc, const uint8_t *data, size_t len);

/// CRC32C of one contiguous buffer.
inline uint32_t
Crc32c(const uint8_t *data, size_t len)
{
    return Crc32cExtend(0, data, len);
}

}  // namespace protoacc

#endif  // PROTOACC_COMMON_CRC32C_H
