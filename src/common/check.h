/**
 * @file
 * Assertion and logging macros used throughout the library.
 *
 * Following the Core Guidelines / Google style, the library does not use
 * exceptions. Internal invariant violations abort via PA_CHECK (the
 * analog of gem5's panic(): a bug in this library, never the user's
 * fault). User-facing recoverable failures are reported through status
 * enums or bool returns instead.
 */
#ifndef PROTOACC_COMMON_CHECK_H
#define PROTOACC_COMMON_CHECK_H

#include <cstdio>
#include <cstdlib>

namespace protoacc {

[[noreturn]] inline void
CheckFailed(const char *file, int line, const char *expr)
{
    std::fprintf(stderr, "PA_CHECK failed at %s:%d: %s\n", file, line, expr);
    std::abort();
}

}  // namespace protoacc

/// Abort if @p expr is false. Enabled in all build types: the simulator's
/// correctness claims depend on these invariants holding.
#define PA_CHECK(expr)                                                     \
    do {                                                                   \
        if (!(expr)) {                                                     \
            ::protoacc::CheckFailed(__FILE__, __LINE__, #expr);            \
        }                                                                  \
    } while (0)

#define PA_CHECK_EQ(a, b) PA_CHECK((a) == (b))
#define PA_CHECK_NE(a, b) PA_CHECK((a) != (b))
#define PA_CHECK_LT(a, b) PA_CHECK((a) < (b))
#define PA_CHECK_LE(a, b) PA_CHECK((a) <= (b))
#define PA_CHECK_GT(a, b) PA_CHECK((a) > (b))
#define PA_CHECK_GE(a, b) PA_CHECK((a) >= (b))

#endif  // PROTOACC_COMMON_CHECK_H
