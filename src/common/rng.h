/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the reproduction (fleet model, schema
 * generator, benchmark generator) draw from this generator so that every
 * figure is exactly reproducible from a seed. The implementation is
 * xoshiro256++ (public domain, Blackman & Vigna).
 */
#ifndef PROTOACC_COMMON_RNG_H
#define PROTOACC_COMMON_RNG_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace protoacc {

/**
 * Deterministic 64-bit PRNG with convenience distributions.
 *
 * Not thread-safe; each component owns its own instance.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

    /// Re-seed the generator via splitmix64 expansion of @p seed.
    void Seed(uint64_t seed);

    /// Next raw 64-bit value.
    uint64_t Next();

    /// Uniform integer in [0, bound); bound must be non-zero.
    uint64_t NextBounded(uint64_t bound);

    /// Uniform integer in [lo, hi] inclusive.
    int64_t NextRange(int64_t lo, int64_t hi);

    /// Uniform double in [0, 1).
    double NextDouble();

    /// Bernoulli draw with probability @p p of returning true.
    bool NextBool(double p = 0.5);

    /**
     * Draw an index from a discrete distribution given by non-negative
     * weights. Weights need not be normalized.
     */
    size_t NextWeighted(const std::vector<double> &weights);

    /// Geometric-ish integer: uniform in [lo, hi] on a log2 scale.
    uint64_t NextLogUniform(uint64_t lo, uint64_t hi);

  private:
    uint64_t s_[4];
};

}  // namespace protoacc

#endif  // PROTOACC_COMMON_RNG_H
