#include "common/crc32c.h"

namespace protoacc {

namespace {

/// Slicing tables: kTable[0] is the plain byte-at-a-time table for the
/// reflected Castagnoli polynomial; kTable[k][b] extends kTable[k-1][b]
/// by one zero byte, so eight table lookups advance the CRC by eight
/// input bytes with no serial dependency between the lookups.
struct SliceTables
{
    uint32_t t[8][256];

    constexpr SliceTables() : t{}
    {
        constexpr uint32_t kPolyReflected = 0x82F63B78u;
        for (uint32_t b = 0; b < 256; ++b) {
            uint32_t crc = b;
            for (int bit = 0; bit < 8; ++bit)
                crc = (crc >> 1) ^ ((crc & 1u) ? kPolyReflected : 0u);
            t[0][b] = crc;
        }
        for (int k = 1; k < 8; ++k)
            for (uint32_t b = 0; b < 256; ++b)
                t[k][b] = (t[k - 1][b] >> 8) ^ t[0][t[k - 1][b] & 0xFFu];
    }
};

constexpr SliceTables kTables;

}  // namespace

uint32_t
Crc32cExtend(uint32_t crc, const uint8_t *data, size_t len)
{
    const auto &t = kTables.t;
    uint32_t state = ~crc;
    // Head: bring the pointer to 8-byte alignment so the slice loads
    // below are cheap on every target.
    while (len > 0 && (reinterpret_cast<uintptr_t>(data) & 7u) != 0) {
        state = (state >> 8) ^ t[0][(state ^ *data++) & 0xFFu];
        --len;
    }
    while (len >= 8) {
        const uint32_t lo = state ^
                            (static_cast<uint32_t>(data[0]) |
                             static_cast<uint32_t>(data[1]) << 8 |
                             static_cast<uint32_t>(data[2]) << 16 |
                             static_cast<uint32_t>(data[3]) << 24);
        state = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
                t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^
                t[3][data[4]] ^ t[2][data[5]] ^ t[1][data[6]] ^
                t[0][data[7]];
        data += 8;
        len -= 8;
    }
    while (len > 0) {
        state = (state >> 8) ^ t[0][(state ^ *data++) & 0xFFu];
        --len;
    }
    return ~state;
}

}  // namespace protoacc
