/**
 * @file
 * Small bit-manipulation helpers shared by the wire format and the
 * accelerator model.
 */
#ifndef PROTOACC_COMMON_BITS_H
#define PROTOACC_COMMON_BITS_H

#include <bit>
#include <cstdint>

namespace protoacc {

/// Number of significant (non-leading-zero) bits in @p v; 0 for v == 0.
inline int
SignificantBits(uint64_t v)
{
    return 64 - std::countl_zero(v);
}

/// Ceiling division for non-negative integers.
inline uint64_t
CeilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

/// Round @p v up to the next multiple of @p align (align must be a power
/// of two).
inline uint64_t
AlignUp(uint64_t v, uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/// True if @p v is a power of two (and non-zero).
inline bool
IsPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/// floor(log2(v)); v must be non-zero.
inline int
Log2Floor(uint64_t v)
{
    return 63 - std::countl_zero(v);
}

}  // namespace protoacc

#endif  // PROTOACC_COMMON_BITS_H
