/**
 * @file
 * Deterministic fault injection for the robustness harness.
 *
 * One seeded injector produces every class of failure the serving stack
 * must survive:
 *
 *   - hostile wire bytes: seeded structural mutations of serialized
 *     buffers (bit flips, truncation, overlong varints, length bombs,
 *     zero keys, duplicated splices) used by the differential fuzz
 *     harness and the hostile-client model;
 *   - hardware faults: an accelerator unit dying mid-batch (the job is
 *     abandoned, the destination object is left untouched) or stalling
 *     for a bounded number of cycles;
 *   - channel faults: RPC frames dropped, truncated, or corrupted in
 *     flight.
 *
 * Determinism contract: a given (seed, config, call sequence) produces
 * the same decisions on every run. Draws are serialized under a mutex so
 * concurrent callers are safe, but cross-thread interleaving is not
 * deterministic — components that need replayable decisions own a
 * private injector (e.g. one per worker, seeded seed + worker_id).
 */
#ifndef PROTOACC_SIM_FAULT_H
#define PROTOACC_SIM_FAULT_H

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/rng.h"

namespace protoacc::sim {

/// Structural mutation classes applied to wire bytes.
enum class WireMutation {
    kBitFlip,         ///< flip one bit anywhere in the buffer
    kByteSet,         ///< overwrite one byte with a random value
    kTruncate,        ///< cut the buffer at a random point
    kExtend,          ///< append random trailing garbage
    kOverlongVarint,  ///< splice in a varint longer than 10 bytes
    kLengthBomb,      ///< splice a length-delimited key with a huge length
    kZeroKey,         ///< insert a 0x00 key byte (reserved field number)
    kDuplicateSplice, ///< re-insert a copy of a random slice
    kNumWireMutations,
};

const char *WireMutationName(WireMutation m);

/// Outcome drawn for one accelerator job.
enum class UnitFaultKind {
    kNone,
    /// The unit dies mid-job: work is abandoned, output undefined-but-
    /// untouched, the fence reports the failure.
    kKill,
    /// The unit wedges for a bounded number of cycles, then completes.
    kStall,
    /// The unit wedges *permanently* (FSM livelock): without a watchdog
    /// the job never completes; a watchdog detects the blown cycle
    /// budget, resets the unit, and replays the job.
    kWedge,
};

/// How long an injected unit fault afflicts the device — the
/// distinction a quarantine policy exists to act on.
enum class UnitFaultClass : uint8_t {
    /// One-shot: the next job is clean. Replay/reset suffices.
    kTransient,
    /// Part of a correlated burst (config.unit_fault_burst_len): the
    /// fault recurs for a bounded run of jobs, then clears. A scrub +
    /// self-test passes once the burst has drained.
    kIntermittent,
    /// The device is permanently broken (config.permanent_fault_after_
    /// jobs): every subsequent job faults. Only fencing helps; a
    /// self-test can never pass again.
    kPermanent,
};

const char *UnitFaultClassName(UnitFaultClass c);

struct UnitFault
{
    UnitFaultKind kind = UnitFaultKind::kNone;
    uint64_t stall_cycles = 0;
    UnitFaultClass fault_class = UnitFaultClass::kTransient;
};

/// Outcome drawn for one RPC frame crossing the channel.
enum class ChannelFaultKind {
    kNone,
    kDrop,      ///< the frame never arrives
    kTruncate,  ///< the tail of the frame is lost
    kCorrupt,   ///< payload bytes are flipped in flight
};

/// Outcome drawn for one stream chunk crossing the channel
/// (chunk-granularity faults of the v4 streaming datapath).
enum class ChunkFaultKind {
    kNone,
    kDrop,       ///< the chunk frame never arrives
    kTruncate,   ///< the chunk loses its tail in flight
    kCorrupt,    ///< chunk payload bytes are flipped in flight
    kDuplicate,  ///< the chunk is delivered twice
    kReorder,    ///< the chunk is delayed behind its successor
};

const char *ChunkFaultKindName(ChunkFaultKind k);

/**
 * One scheduled worker crash: worker @p worker dies immediately after
 * completing its @p after_calls-th call. Event-based (not rate-based)
 * so kill points are deterministic regardless of how host threads
 * interleave — the prerequisite for the Drain() replay staying
 * reproducible under crash injection.
 */
struct WorkerKillEvent
{
    uint32_t worker = 0;
    uint64_t after_calls = 0;
};

/// Per-class injection rates; all default to zero (injector disabled).
struct FaultConfig
{
    /// Probability that MaybeMutateWire touches a buffer at all.
    double wire_mutation_rate = 0.0;
    /// Mutations applied per touched buffer: uniform in [1, this].
    uint32_t max_mutations_per_buffer = 3;

    /// Per-job probability an accelerator unit dies mid-job.
    double unit_kill_rate = 0.0;
    /// Per-job probability of a bounded stall instead.
    double unit_stall_rate = 0.0;
    uint64_t stall_cycles_min = 100;
    uint64_t stall_cycles_max = 10000;
    /// Per-job probability of a *permanent* wedge (sampled after kill,
    /// before stall): the unit's FSM livelocks and only a watchdog
    /// reset recovers it.
    double unit_wedge_rate = 0.0;

    /// Correlated intermittent faults: when a kill/stall/wedge fires,
    /// the following burst_len - 1 jobs repeat the same fault (class
    /// kIntermittent) without consuming RNG draws. 1 = independent
    /// faults, exactly the pre-burst behavior.
    uint32_t unit_fault_burst_len = 1;

    /// Permanent device failure: after this many unit-fault samples the
    /// device is broken for good — every later sample returns
    /// permanent_fault_kind with class kPermanent, consuming no RNG
    /// draws (event-based, like worker kills, so arming it never
    /// perturbs the other fault streams). 0 disables.
    uint64_t permanent_fault_after_jobs = 0;
    UnitFaultKind permanent_fault_kind = UnitFaultKind::kWedge;

    /// Per-frame channel fault probabilities.
    double frame_drop_rate = 0.0;
    double frame_truncate_rate = 0.0;
    double frame_corrupt_rate = 0.0;

    /// Per-chunk stream fault probabilities. Hash-gated, not RNG-gated:
    /// the decision for chunk (stream_key, chunk_index) is a pure
    /// function of (seed, stream_key, chunk_index), so enabling stream
    /// faults never perturbs the injector's other draw streams, and a
    /// *retransmitted* chunk re-samples the same verdict its original
    /// did only if it keeps the same index — the sender bumps the
    /// attempt counter folded into the key so retries get fresh
    /// verdicts (otherwise a dropped chunk would be dropped forever).
    double chunk_drop_rate = 0.0;
    double chunk_truncate_rate = 0.0;
    double chunk_corrupt_rate = 0.0;
    double chunk_duplicate_rate = 0.0;
    double chunk_reorder_rate = 0.0;

    /// Receiver-window wedge: per-stream probability that the receiver
    /// stops granting credit mid-stream, stalling the sender against a
    /// closed window until the wedge clears (window_wedge_chunks chunk
    /// intervals later). Exercises the backpressure deadline path.
    double window_wedge_rate = 0.0;
    uint32_t window_wedge_chunks = 4;

    /// Scheduled worker crashes (see WorkerKillEvent). Each fires at
    /// most once; no RNG draw is involved.
    std::vector<WorkerKillEvent> worker_kills;
};

/// Decision counters (what the injector actually did).
struct FaultStats
{
    uint64_t buffers_mutated = 0;
    uint64_t wire_mutations = 0;
    uint64_t units_killed = 0;
    uint64_t units_stalled = 0;
    uint64_t units_wedged = 0;
    /// Faults issued as part of a correlated burst (kIntermittent).
    uint64_t burst_faults = 0;
    /// Faults issued after the permanent-failure point (kPermanent).
    uint64_t permanent_faults = 0;
    uint64_t frames_dropped = 0;
    uint64_t frames_truncated = 0;
    uint64_t frames_corrupted = 0;
    uint64_t workers_killed = 0;
    uint64_t chunks_dropped = 0;
    uint64_t chunks_truncated = 0;
    uint64_t chunks_corrupted = 0;
    uint64_t chunks_duplicated = 0;
    uint64_t chunks_reordered = 0;
    uint64_t windows_wedged = 0;
};

/**
 * Seeded source of every injected-failure decision. Thread-safe; see
 * the file comment for the determinism contract.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(uint64_t seed, const FaultConfig &config = {});

    const FaultConfig &config() const { return config_; }
    FaultStats stats() const;

    /**
     * Unconditionally apply @p count seeded structural mutations to
     * @p buf (the differential-fuzz entry point; rates do not apply).
     * Returns the mutation classes applied, in order.
     */
    std::vector<WireMutation> MutateWire(std::vector<uint8_t> *buf,
                                         uint32_t count);

    /// Rate-gated wire mutation for hostile-client modeling: with
    /// probability wire_mutation_rate, applies 1..max mutations.
    /// @return true when the buffer was touched.
    bool MaybeMutateWire(std::vector<uint8_t> *buf);

    /// Draw the fault outcome for one accelerator job. Honors the
    /// intermittent-burst and permanent-failure classes (see
    /// FaultConfig): burst continuations and post-permanent samples
    /// consume no RNG draws.
    UnitFault SampleUnitFault();

    /// Unit-fault samples drawn so far (the permanent-failure clock).
    uint64_t unit_jobs_sampled() const;

    /**
     * True exactly once per matching WorkerKillEvent: when @p worker
     * has completed @p calls_completed calls and an unconsumed event
     * schedules its death at that point. Pure event lookup — consumes
     * no RNG draws, so adding kill events never perturbs the other
     * fault streams.
     */
    bool ShouldKillWorker(uint32_t worker, uint64_t calls_completed);

    /// Draw the fault outcome for one channel frame.
    ChannelFaultKind SampleChannelFault();

    /**
     * Verdict for one stream chunk: a pure hash of (seed, stream_key,
     * chunk_index) against the chunk_*_rate config — deterministic per
     * chunk identity, independent of call order and of every RNG draw
     * stream. Fold the transmit attempt into @p chunk_index (e.g.
     * index + attempt << 32) so retransmissions re-roll. Stats are
     * tallied per call.
     */
    ChunkFaultKind SampleChunkFault(uint64_t stream_key,
                                    uint64_t chunk_index);

    /// Hash-gated per-stream verdict: does this stream's receiver
    /// wedge its credit window mid-transfer? Same determinism contract
    /// as SampleChunkFault.
    bool SampleWindowWedge(uint64_t stream_key);

    /// The hash-chosen chunk index at which a wedged window stops
    /// granting credit (uniform over [1, total_chunks), so BEGIN
    /// always gets through). Pure function; no stats, no draws.
    uint64_t WindowWedgeChunk(uint64_t stream_key, uint64_t total_chunks);

    /// Corrupt @p n bytes of an in-flight frame payload in place.
    void CorruptBytes(uint8_t *data, size_t len, uint32_t n = 1);

    /// New length for a truncated frame payload: uniform in [0, len).
    size_t TruncatedLength(size_t len);

  private:
    void ApplyOneMutation(std::vector<uint8_t> *buf, WireMutation m);

    mutable std::mutex mu_;
    Rng rng_;
    /// Construction seed, kept verbatim for the hash-gated chunk/window
    /// verdicts (which never touch rng_).
    uint64_t seed_;
    FaultConfig config_;
    FaultStats stats_;
    /// Which worker_kills entries already fired (parallel vector).
    std::vector<bool> kill_consumed_;
    /// Unit-fault samples drawn (drives permanent_fault_after_jobs).
    uint64_t unit_jobs_sampled_ = 0;
    /// Remaining jobs of the current intermittent burst, and the fault
    /// they repeat.
    uint32_t burst_remaining_ = 0;
    UnitFault burst_fault_;
};

}  // namespace protoacc::sim

#endif  // PROTOACC_SIM_FAULT_H
