#include "sim/fault.h"

#include <algorithm>
#include <cstring>

namespace protoacc::sim {

const char *
WireMutationName(WireMutation m)
{
    switch (m) {
      case WireMutation::kBitFlip: return "bit-flip";
      case WireMutation::kByteSet: return "byte-set";
      case WireMutation::kTruncate: return "truncate";
      case WireMutation::kExtend: return "extend";
      case WireMutation::kOverlongVarint: return "overlong-varint";
      case WireMutation::kLengthBomb: return "length-bomb";
      case WireMutation::kZeroKey: return "zero-key";
      case WireMutation::kDuplicateSplice: return "duplicate-splice";
      case WireMutation::kNumWireMutations: break;
    }
    return "?";
}

const char *
UnitFaultClassName(UnitFaultClass c)
{
    switch (c) {
      case UnitFaultClass::kTransient: return "transient";
      case UnitFaultClass::kIntermittent: return "intermittent";
      case UnitFaultClass::kPermanent: return "permanent";
    }
    return "?";
}

const char *
ChunkFaultKindName(ChunkFaultKind k)
{
    switch (k) {
      case ChunkFaultKind::kNone: return "none";
      case ChunkFaultKind::kDrop: return "drop";
      case ChunkFaultKind::kTruncate: return "truncate";
      case ChunkFaultKind::kCorrupt: return "corrupt";
      case ChunkFaultKind::kDuplicate: return "duplicate";
      case ChunkFaultKind::kReorder: return "reorder";
    }
    return "?";
}

namespace {

/// splitmix64 finalizer: the stateless mixer behind the hash-gated
/// chunk verdicts (same avalanche core Rng seeding uses).
uint64_t
Mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a hash value (53 mantissa bits).
double
HashToUnit(uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(uint64_t seed, const FaultConfig &config)
    : rng_(seed),
      seed_(seed),
      config_(config),
      kill_consumed_(config.worker_kills.size(), false)
{}

FaultStats
FaultInjector::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
FaultInjector::ApplyOneMutation(std::vector<uint8_t> *buf, WireMutation m)
{
    std::vector<uint8_t> &b = *buf;
    // Position helpers tolerate empty buffers: inserts land at 0.
    const size_t pos = b.empty() ? 0 : rng_.NextBounded(b.size());
    const size_t ins = b.empty() ? 0 : rng_.NextBounded(b.size() + 1);

    switch (m) {
      case WireMutation::kBitFlip:
        if (!b.empty())
            b[pos] ^= static_cast<uint8_t>(1u << rng_.NextBounded(8));
        break;
      case WireMutation::kByteSet:
        if (!b.empty())
            b[pos] = static_cast<uint8_t>(rng_.Next());
        break;
      case WireMutation::kTruncate:
        if (!b.empty())
            b.resize(rng_.NextBounded(b.size()));
        break;
      case WireMutation::kExtend: {
        const size_t n = 1 + rng_.NextBounded(16);
        for (size_t i = 0; i < n; ++i)
            b.push_back(static_cast<uint8_t>(rng_.Next()));
        break;
      }
      case WireMutation::kOverlongVarint: {
        // 11 continuation bytes then a terminator: one byte past the
        // 10-byte maximum every decoder in the stack must reject.
        uint8_t v[12];
        std::memset(v, 0x80 | static_cast<uint8_t>(rng_.Next() & 0x7f),
                    11);
        v[11] = 0x01;
        b.insert(b.begin() + static_cast<ptrdiff_t>(ins), v, v + 12);
        break;
      }
      case WireMutation::kLengthBomb: {
        // Length-delimited key (field 1) followed by a ~4 GiB length:
        // the declared payload vastly exceeds the buffer.
        const uint8_t v[6] = {0x0a, 0xff, 0xff, 0xff, 0xff, 0x0f};
        b.insert(b.begin() + static_cast<ptrdiff_t>(ins), v, v + 6);
        break;
      }
      case WireMutation::kZeroKey: {
        const uint8_t z = 0x00;
        b.insert(b.begin() + static_cast<ptrdiff_t>(ins), &z, &z + 1);
        break;
      }
      case WireMutation::kDuplicateSplice: {
        if (b.empty())
            break;
        const size_t start = rng_.NextBounded(b.size());
        const size_t max_len = std::min<size_t>(b.size() - start, 32);
        const size_t len = 1 + rng_.NextBounded(max_len);
        std::vector<uint8_t> slice(b.begin() + start,
                                   b.begin() + start + len);
        b.insert(b.begin() + static_cast<ptrdiff_t>(ins), slice.begin(),
                 slice.end());
        break;
      }
      case WireMutation::kNumWireMutations:
        break;
    }
}

std::vector<WireMutation>
FaultInjector::MutateWire(std::vector<uint8_t> *buf, uint32_t count)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<WireMutation> applied;
    applied.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        const auto m = static_cast<WireMutation>(rng_.NextBounded(
            static_cast<uint64_t>(WireMutation::kNumWireMutations)));
        ApplyOneMutation(buf, m);
        applied.push_back(m);
    }
    if (count > 0) {
        ++stats_.buffers_mutated;
        stats_.wire_mutations += count;
    }
    return applied;
}

bool
FaultInjector::MaybeMutateWire(std::vector<uint8_t> *buf)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!rng_.NextBool(config_.wire_mutation_rate))
        return false;
    const uint32_t count =
        1 + static_cast<uint32_t>(rng_.NextBounded(
                std::max<uint32_t>(config_.max_mutations_per_buffer, 1)));
    for (uint32_t i = 0; i < count; ++i) {
        const auto m = static_cast<WireMutation>(rng_.NextBounded(
            static_cast<uint64_t>(WireMutation::kNumWireMutations)));
        ApplyOneMutation(buf, m);
    }
    ++stats_.buffers_mutated;
    stats_.wire_mutations += count;
    return true;
}

UnitFault
FaultInjector::SampleUnitFault()
{
    std::lock_guard<std::mutex> lock(mu_);
    ++unit_jobs_sampled_;
    UnitFault fault;
    // Permanent failure: past the event point every sample faults the
    // same way, with no RNG draw (so arming it never perturbs the
    // sequences other fault classes see before the point).
    if (config_.permanent_fault_after_jobs > 0 &&
        unit_jobs_sampled_ > config_.permanent_fault_after_jobs) {
        fault.kind = config_.permanent_fault_kind;
        fault.fault_class = UnitFaultClass::kPermanent;
        ++stats_.permanent_faults;
        switch (fault.kind) {
          case UnitFaultKind::kKill: ++stats_.units_killed; break;
          case UnitFaultKind::kWedge: ++stats_.units_wedged; break;
          case UnitFaultKind::kStall:
            fault.stall_cycles = config_.stall_cycles_max;
            ++stats_.units_stalled;
            break;
          case UnitFaultKind::kNone: break;
        }
        return fault;
    }
    // Burst continuation: repeat the triggering fault, draw-free.
    if (burst_remaining_ > 0) {
        --burst_remaining_;
        ++stats_.burst_faults;
        switch (burst_fault_.kind) {
          case UnitFaultKind::kKill: ++stats_.units_killed; break;
          case UnitFaultKind::kWedge: ++stats_.units_wedged; break;
          case UnitFaultKind::kStall: ++stats_.units_stalled; break;
          case UnitFaultKind::kNone: break;
        }
        return burst_fault_;
    }
    if (rng_.NextBool(config_.unit_kill_rate)) {
        fault.kind = UnitFaultKind::kKill;
        ++stats_.units_killed;
    } else if (config_.unit_wedge_rate > 0 &&
               rng_.NextBool(config_.unit_wedge_rate)) {
        // Gated on the rate so a wedge-free config draws exactly the
        // sequence it drew before wedges existed (seed stability).
        fault.kind = UnitFaultKind::kWedge;
        ++stats_.units_wedged;
    } else if (rng_.NextBool(config_.unit_stall_rate)) {
        fault.kind = UnitFaultKind::kStall;
        const uint64_t lo = config_.stall_cycles_min;
        const uint64_t hi = std::max(config_.stall_cycles_max, lo);
        fault.stall_cycles = lo + rng_.NextBounded(hi - lo + 1);
        ++stats_.units_stalled;
    }
    // Start a correlated burst: the next burst_len - 1 jobs repeat this
    // fault as kIntermittent continuations.
    if (fault.kind != UnitFaultKind::kNone &&
        config_.unit_fault_burst_len > 1) {
        burst_remaining_ = config_.unit_fault_burst_len - 1;
        burst_fault_ = fault;
        burst_fault_.fault_class = UnitFaultClass::kIntermittent;
    }
    return fault;
}

uint64_t
FaultInjector::unit_jobs_sampled() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return unit_jobs_sampled_;
}

bool
FaultInjector::ShouldKillWorker(uint32_t worker,
                                uint64_t calls_completed)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < config_.worker_kills.size(); ++i) {
        const WorkerKillEvent &ev = config_.worker_kills[i];
        if (kill_consumed_[i] || ev.worker != worker)
            continue;
        // ">=" (not "==") so an event scheduled inside a batch the
        // worker had already passed when it checked still fires.
        if (calls_completed >= ev.after_calls) {
            kill_consumed_[i] = true;
            ++stats_.workers_killed;
            return true;
        }
    }
    return false;
}

ChannelFaultKind
FaultInjector::SampleChannelFault()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (rng_.NextBool(config_.frame_drop_rate)) {
        ++stats_.frames_dropped;
        return ChannelFaultKind::kDrop;
    }
    if (rng_.NextBool(config_.frame_truncate_rate)) {
        ++stats_.frames_truncated;
        return ChannelFaultKind::kTruncate;
    }
    if (rng_.NextBool(config_.frame_corrupt_rate)) {
        ++stats_.frames_corrupted;
        return ChannelFaultKind::kCorrupt;
    }
    return ChannelFaultKind::kNone;
}

ChunkFaultKind
FaultInjector::SampleChunkFault(uint64_t stream_key, uint64_t chunk_index)
{
    // One hash per chunk identity; successive fault classes carve
    // disjoint slices of [0, 1), so at most one class fires and raising
    // one rate never flips another class's verdicts.
    const uint64_t h =
        Mix64(Mix64(seed_ ^ 0x73747265616d21ull) ^
              Mix64(stream_key) ^ Mix64(chunk_index * 0x9e3779b97f4a7c15ull));
    const double u = HashToUnit(h);
    double edge = config_.chunk_drop_rate;
    ChunkFaultKind kind = ChunkFaultKind::kNone;
    if (u < edge) {
        kind = ChunkFaultKind::kDrop;
    } else if (u < (edge += config_.chunk_truncate_rate)) {
        kind = ChunkFaultKind::kTruncate;
    } else if (u < (edge += config_.chunk_corrupt_rate)) {
        kind = ChunkFaultKind::kCorrupt;
    } else if (u < (edge += config_.chunk_duplicate_rate)) {
        kind = ChunkFaultKind::kDuplicate;
    } else if (u < (edge += config_.chunk_reorder_rate)) {
        kind = ChunkFaultKind::kReorder;
    }
    if (kind != ChunkFaultKind::kNone) {
        std::lock_guard<std::mutex> lock(mu_);
        switch (kind) {
          case ChunkFaultKind::kDrop: ++stats_.chunks_dropped; break;
          case ChunkFaultKind::kTruncate:
            ++stats_.chunks_truncated;
            break;
          case ChunkFaultKind::kCorrupt: ++stats_.chunks_corrupted; break;
          case ChunkFaultKind::kDuplicate:
            ++stats_.chunks_duplicated;
            break;
          case ChunkFaultKind::kReorder: ++stats_.chunks_reordered; break;
          case ChunkFaultKind::kNone: break;
        }
    }
    return kind;
}

bool
FaultInjector::SampleWindowWedge(uint64_t stream_key)
{
    const uint64_t h =
        Mix64(Mix64(seed_ ^ 0x77656467652121ull) ^ Mix64(stream_key));
    const bool wedged = HashToUnit(h) < config_.window_wedge_rate;
    if (wedged) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.windows_wedged;
    }
    return wedged;
}

uint64_t
FaultInjector::WindowWedgeChunk(uint64_t stream_key, uint64_t total_chunks)
{
    if (total_chunks <= 1)
        return 1;
    const uint64_t h =
        Mix64(Mix64(seed_ ^ 0x77656467656174ull) ^ Mix64(stream_key));
    return 1 + h % (total_chunks - 1);
}

void
FaultInjector::CorruptBytes(uint8_t *data, size_t len, uint32_t n)
{
    if (len == 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    for (uint32_t i = 0; i < n; ++i) {
        const size_t pos = rng_.NextBounded(len);
        data[pos] ^= static_cast<uint8_t>(1u << rng_.NextBounded(8));
    }
}

size_t
FaultInjector::TruncatedLength(size_t len)
{
    if (len == 0)
        return 0;
    std::lock_guard<std::mutex> lock(mu_);
    return rng_.NextBounded(len);
}

}  // namespace protoacc::sim
