/**
 * @file
 * Set-associative cache timing model.
 *
 * Used to model the shared L2 and LLC that all accelerator memory
 * accesses traverse (Figure 8: "all memory accesses made by the
 * accelerator go through the L2 and LLC, which are shared with the
 * application core"). The model tracks tags only (data correctness is
 * handled by operating on real host memory); Access() returns hit/miss
 * and maintains LRU state and statistics.
 */
#ifndef PROTOACC_SIM_CACHE_H
#define PROTOACC_SIM_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

namespace protoacc::sim {

/// Configuration of one cache level.
struct CacheConfig
{
    std::string name = "cache";
    uint64_t size_bytes = 512 * 1024;
    uint32_t ways = 8;
    uint32_t line_bytes = 64;
    /// Latency of a hit in this level, in accelerator cycles.
    uint32_t hit_latency = 20;
};

/// Hit/miss counters for one cache level.
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t writebacks = 0;

    double
    hit_rate() const
    {
        const uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

/**
 * Tag-array model of one set-associative, write-back, LRU cache level.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Look up the line containing @p addr, allocating it on miss.
     *
     * @param is_write marks the line dirty on hit/fill.
     * @return true on hit.
     */
    bool Access(uint64_t addr, bool is_write);

    /// Probe without modifying state.
    bool Contains(uint64_t addr) const;

    /// Invalidate all lines (e.g. between benchmark phases).
    void Flush();

    const CacheConfig &config() const { return config_; }
    const CacheStats &stats() const { return stats_; }
    void ResetStats() { stats_ = CacheStats{}; }

  private:
    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        uint64_t lru = 0;  ///< last-use timestamp
    };

    uint64_t line_addr(uint64_t addr) const
    {
        return addr / config_.line_bytes;
    }

    CacheConfig config_;
    uint32_t num_sets_;
    std::vector<Line> lines_;  ///< num_sets_ * ways, set-major
    uint64_t tick_ = 0;
    CacheStats stats_;
};

}  // namespace protoacc::sim

#endif  // PROTOACC_SIM_CACHE_H
