#include "sim/tlb.h"

#include "common/check.h"

namespace protoacc::sim {

Tlb::Tlb(const TlbConfig &config) : config_(config)
{
    PA_CHECK_GE(config.entries, 1u);
    entries_.resize(config.entries);
}

uint32_t
Tlb::Access(uint64_t addr)
{
    ++tick_;
    const uint64_t vpn = addr / config_.page_bytes;
    Entry *victim = &entries_[0];
    for (auto &entry : entries_) {
        if (entry.valid && entry.vpn == vpn) {
            entry.lru = tick_;
            ++stats_.hits;
            return 0;
        }
        if (!entry.valid) {
            victim = &entry;
        } else if (victim->valid && entry.lru < victim->lru) {
            victim = &entry;
        }
    }
    ++stats_.misses;
    victim->valid = true;
    victim->vpn = vpn;
    victim->lru = tick_;
    return config_.walk_latency;
}

void
Tlb::Flush()
{
    for (auto &entry : entries_)
        entry = Entry{};
}

}  // namespace protoacc::sim
