#include "sim/memory_system.h"

#include "common/bits.h"

namespace protoacc::sim {

MemorySystem::MemorySystem(const MemorySystemConfig &config)
    : config_(config), l2_(config.l2), llc_(config.llc)
{}

uint64_t
MemorySystem::LineLatency(uint64_t addr, bool is_write)
{
    if (l2_.Access(addr, is_write))
        return config_.l2.hit_latency;
    if (llc_.Access(addr, is_write))
        return config_.llc.hit_latency;
    return config_.dram_latency;
}

uint64_t
MemorySystem::ReadLatency(uint64_t addr, uint64_t size)
{
    if (size == 0)
        return 0;
    ++stats_.reads;
    stats_.read_bytes += size;

    const uint32_t line = config_.l2.line_bytes;
    const uint64_t first_line = addr / line;
    const uint64_t last_line = (addr + size - 1) / line;

    uint64_t latency = LineLatency(addr, false);
    // Further lines stream behind the first: the wrappers keep multiple
    // requests outstanding, so each extra line costs one bus beat per
    // bus-width chunk (bandwidth bound), not full latency.
    for (uint64_t l = first_line + 1; l <= last_line; ++l)
        LineLatency(l * line, false);  // keep tags warm/accurate
    const uint64_t beats = CeilDiv(size, config_.bus_bytes_per_cycle);
    return latency + (beats > 0 ? beats - 1 : 0);
}

uint64_t
MemorySystem::WriteLatency(uint64_t addr, uint64_t size)
{
    if (size == 0)
        return 0;
    ++stats_.writes;
    stats_.write_bytes += size;

    const uint32_t line = config_.l2.line_bytes;
    const uint64_t first_line = addr / line;
    const uint64_t last_line = (addr + size - 1) / line;
    for (uint64_t l = first_line; l <= last_line; ++l)
        LineLatency(l * line, true);
    // Posted write: occupancy is one bus beat per bus-width chunk.
    return CeilDiv(size, config_.bus_bytes_per_cycle);
}

void
MemorySystem::Flush()
{
    l2_.Flush();
    llc_.Flush();
}

void
MemorySystem::ResetStats()
{
    stats_ = MemorySystemStats{};
    l2_.ResetStats();
    llc_.ResetStats();
}

}  // namespace protoacc::sim
