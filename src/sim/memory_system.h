/**
 * @file
 * The accelerator-visible memory hierarchy: shared L2, LLC and DRAM
 * behind a 128-bit (16 B/cycle) TileLink-like system bus (Figure 8,
 * §4.1).
 *
 * ReadLatency/WriteLatency return the cycles for one access of up to a
 * full bus beat per line touched; multi-line accesses are charged the
 * first-line latency plus one pipelined beat per further line (the bus
 * supports multiple outstanding requests, §4.1, so streaming units see
 * bandwidth-bound behaviour after the first miss).
 */
#ifndef PROTOACC_SIM_MEMORY_SYSTEM_H
#define PROTOACC_SIM_MEMORY_SYSTEM_H

#include <cstdint>

#include "sim/cache.h"
#include "sim/tlb.h"

namespace protoacc::sim {

/// Full hierarchy configuration.
struct MemorySystemConfig
{
    CacheConfig l2 = {.name = "L2",
                      .size_bytes = 512 * 1024,
                      .ways = 8,
                      .line_bytes = 64,
                      .hit_latency = 12};
    CacheConfig llc = {.name = "LLC",
                       .size_bytes = 4 * 1024 * 1024,
                       .ways = 16,
                       .line_bytes = 64,
                       .hit_latency = 38};
    /// DRAM access latency (cycles at the modeled 2 GHz clock).
    uint32_t dram_latency = 140;
    /// System-bus width: 128-bit TileLink (§4.1).
    uint32_t bus_bytes_per_cycle = 16;
    TlbConfig tlb;
};

struct MemorySystemStats
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t read_bytes = 0;
    uint64_t write_bytes = 0;
};

/**
 * Timing model of the L2 + LLC + DRAM hierarchy with per-port TLBs
 * handled by the caller (see Port). Thread-compatible; not thread-safe.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemorySystemConfig &config);

    /// Latency in cycles to read @p size bytes at @p addr.
    uint64_t ReadLatency(uint64_t addr, uint64_t size);

    /// Latency in cycles to write @p size bytes at @p addr. Writes are
    /// posted through a store queue: the issuing unit pays the bus
    /// occupancy, not the fill latency.
    uint64_t WriteLatency(uint64_t addr, uint64_t size);

    /// Drop all cached state (tags only; host memory is untouched).
    void Flush();
    void ResetStats();

    const MemorySystemConfig &config() const { return config_; }
    const MemorySystemStats &stats() const { return stats_; }
    const Cache &l2() const { return l2_; }
    const Cache &llc() const { return llc_; }

  private:
    /// Latency of bringing the single line containing @p addr close.
    uint64_t LineLatency(uint64_t addr, bool is_write);

    MemorySystemConfig config_;
    Cache l2_;
    Cache llc_;
    MemorySystemStats stats_;
};

}  // namespace protoacc::sim

#endif  // PROTOACC_SIM_MEMORY_SYSTEM_H
