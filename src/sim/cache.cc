#include "sim/cache.h"

#include "common/bits.h"
#include "common/check.h"

namespace protoacc::sim {

Cache::Cache(const CacheConfig &config) : config_(config)
{
    PA_CHECK(IsPow2(config.line_bytes));
    PA_CHECK_GE(config.ways, 1u);
    const uint64_t lines = config.size_bytes / config.line_bytes;
    PA_CHECK_GE(lines, config.ways);
    num_sets_ = static_cast<uint32_t>(lines / config.ways);
    PA_CHECK(IsPow2(num_sets_));
    lines_.resize(num_sets_ * config.ways);
}

bool
Cache::Access(uint64_t addr, bool is_write)
{
    ++tick_;
    const uint64_t line = line_addr(addr);
    const uint32_t set = static_cast<uint32_t>(line % num_sets_);
    const uint64_t tag = line / num_sets_;
    Line *begin = &lines_[static_cast<size_t>(set) * config_.ways];

    Line *victim = begin;
    for (uint32_t w = 0; w < config_.ways; ++w) {
        Line &entry = begin[w];
        if (entry.valid && entry.tag == tag) {
            entry.lru = tick_;
            entry.dirty |= is_write;
            ++stats_.hits;
            return true;
        }
        if (!entry.valid) {
            victim = &entry;
        } else if (victim->valid && entry.lru < victim->lru) {
            victim = &entry;
        }
    }
    ++stats_.misses;
    if (victim->valid && victim->dirty)
        ++stats_.writebacks;
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = is_write;
    victim->lru = tick_;
    return false;
}

bool
Cache::Contains(uint64_t addr) const
{
    const uint64_t line = line_addr(addr);
    const uint32_t set = static_cast<uint32_t>(line % num_sets_);
    const uint64_t tag = line / num_sets_;
    const Line *begin = &lines_[static_cast<size_t>(set) * config_.ways];
    for (uint32_t w = 0; w < config_.ways; ++w) {
        if (begin[w].valid && begin[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::Flush()
{
    for (auto &line : lines_)
        line = Line{};
}

}  // namespace protoacc::sim
