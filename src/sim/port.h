/**
 * @file
 * Memory-interface wrapper used by accelerator units (§4.1, Figures 9
 * and 10: "Mem Interface Wrappers").
 *
 * A Port owns a TLB, charges translation latency, forwards to the
 * shared MemorySystem, and tracks per-unit traffic statistics. Host
 * pointers stand in for virtual addresses — the functional data path
 * reads and writes real memory while the Port prices the traffic.
 */
#ifndef PROTOACC_SIM_PORT_H
#define PROTOACC_SIM_PORT_H

#include <cstdint>
#include <string>

#include "sim/memory_system.h"

namespace protoacc::sim {

/// Per-port traffic counters.
struct PortStats
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t read_bytes = 0;
    uint64_t write_bytes = 0;
    uint64_t total_latency = 0;
};

/**
 * One memory-interface wrapper. Multiple ports share one MemorySystem
 * (the accelerator units all sit behind the same L2, Figure 8).
 */
class Port
{
  public:
    Port(std::string name, MemorySystem *memory, const TlbConfig &tlb_cfg)
        : name_(std::move(name)), memory_(memory), tlb_(tlb_cfg)
    {}

    /// Latency in cycles to read @p size bytes at host address @p p.
    uint64_t
    Read(const void *p, uint64_t size)
    {
        const uint64_t addr = reinterpret_cast<uint64_t>(p);
        const uint64_t lat =
            tlb_.Access(addr) + memory_->ReadLatency(addr, size);
        ++stats_.reads;
        stats_.read_bytes += size;
        stats_.total_latency += lat;
        return lat;
    }

    /// Latency in cycles to write @p size bytes at host address @p p.
    uint64_t
    Write(const void *p, uint64_t size)
    {
        const uint64_t addr = reinterpret_cast<uint64_t>(p);
        const uint64_t lat =
            tlb_.Access(addr) + memory_->WriteLatency(addr, size);
        ++stats_.writes;
        stats_.write_bytes += size;
        stats_.total_latency += lat;
        return lat;
    }

    const std::string &name() const { return name_; }
    const PortStats &stats() const { return stats_; }
    const Tlb &tlb() const { return tlb_; }

    /// Health-domain state scrub: drop every cached translation so the
    /// next access misses, exactly as on a fresh port. A warm TLB entry
    /// surviving a scrub would let one request's address pattern leak
    /// into the next request's timing.
    void FlushTlb() { tlb_.Flush(); }
    void
    ResetStats()
    {
        stats_ = PortStats{};
        tlb_.ResetStats();
    }

  private:
    std::string name_;
    MemorySystem *memory_;
    Tlb tlb_;
    PortStats stats_;
};

}  // namespace protoacc::sim

#endif  // PROTOACC_SIM_PORT_H
