/**
 * @file
 * TLB model for the accelerator's memory-interface wrappers.
 *
 * §4.1: "These maintain TLBs and interact with the page-table walker
 * (PTW) to perform translation and thus allow the accelerator to use
 * virtual addresses." We model a small fully-associative LRU TLB; a miss
 * charges a fixed page-walk latency (the PTW itself hits in the cache
 * hierarchy, folded into the constant).
 */
#ifndef PROTOACC_SIM_TLB_H
#define PROTOACC_SIM_TLB_H

#include <cstdint>
#include <vector>

namespace protoacc::sim {

/// TLB configuration.
struct TlbConfig
{
    uint32_t entries = 32;
    uint32_t page_bytes = 4096;
    /// Page-walk latency charged on a miss, in cycles.
    uint32_t walk_latency = 60;
};

struct TlbStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
};

/**
 * Fully-associative LRU TLB. Access() returns the translation latency
 * contribution (0 on hit, walk_latency on miss).
 */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    /// Translate the page of @p addr; returns added latency in cycles.
    uint32_t Access(uint64_t addr);

    void Flush();

    const TlbConfig &config() const { return config_; }
    const TlbStats &stats() const { return stats_; }
    void ResetStats() { stats_ = TlbStats{}; }

  private:
    struct Entry
    {
        uint64_t vpn = 0;
        bool valid = false;
        uint64_t lru = 0;
    };

    TlbConfig config_;
    std::vector<Entry> entries_;
    uint64_t tick_ = 0;
    TlbStats stats_;
};

}  // namespace protoacc::sim

#endif  // PROTOACC_SIM_TLB_H
