#include "harness/bench_common.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "proto/codec_reference.h"

namespace protoacc::harness {

void
FillWires(Workload *workload)
{
    workload->wires.clear();
    workload->total_wire_bytes = 0;
    for (const auto &m : workload->messages) {
        workload->wires.push_back(proto::Serialize(m));
        workload->total_wire_bytes +=
            static_cast<double>(workload->wires.back().size());
    }
}

Throughput
CpuDeserialize(const cpu::CpuParams &params, const Workload &workload,
               int repeats)
{
    cpu::CpuCostModel model(params);
    double bytes = 0;
    for (int r = 0; r < repeats; ++r) {
        proto::Arena arena;
        for (const auto &wire : workload.wires) {
            proto::Message dest = proto::Message::Create(
                &arena, *workload.pool, workload.msg_index);
            const proto::ParseStatus st = proto::ParseFromBuffer(
                wire.data(), wire.size(), &dest, &model);
            PA_CHECK_EQ(static_cast<int>(st),
                        static_cast<int>(proto::ParseStatus::kOk));
            bytes += static_cast<double>(wire.size());
        }
    }
    Throughput t;
    t.cycles = model.cycles();
    t.wire_bytes = bytes;
    t.gbps = model.ThroughputGbps(bytes);
    return t;
}

Throughput
CpuSerialize(const cpu::CpuParams &params, const Workload &workload,
             int repeats)
{
    cpu::CpuCostModel model(params);
    double bytes = 0;
    std::vector<uint8_t> buffer(1 << 22);
    for (int r = 0; r < repeats; ++r) {
        for (const auto &m : workload.messages) {
            const size_t n = proto::SerializeToBuffer(
                m, buffer.data(), buffer.size(), &model);
            // n == 0 is legal only for genuinely empty messages.
            PA_CHECK(n > 0 || proto::ByteSize(m) == 0);
            bytes += static_cast<double>(n);
        }
    }
    Throughput t;
    t.cycles = model.cycles();
    t.wire_bytes = bytes;
    t.gbps = model.ThroughputGbps(bytes);
    return t;
}

Throughput
AccelDeserialize(const Workload &workload,
                 const accel::AccelConfig &config, int repeats)
{
    sim::MemorySystem memory{sim::MemorySystemConfig{}};
    accel::ProtoAccelerator device(&memory, config);
    proto::Arena adt_arena;
    accel::AdtBuilder adts(*workload.pool, &adt_arena);

    double cycles = 0;
    double bytes = 0;
    for (int r = 0; r < repeats; ++r) {
        proto::Arena dest_arena;
        proto::Arena accel_arena;
        device.DeserAssignArena(&accel_arena);
        for (const auto &wire : workload.wires) {
            proto::Message dest = proto::Message::Create(
                &dest_arena, *workload.pool, workload.msg_index);
            device.EnqueueDeser(accel::MakeDeserJob(
                adts, workload.msg_index, *workload.pool, dest.raw(),
                wire.data(), wire.size()));
            bytes += static_cast<double>(wire.size());
        }
        uint64_t batch_cycles = 0;
        const accel::AccelStatus st =
            device.BlockForDeserCompletion(&batch_cycles);
        PA_CHECK_EQ(static_cast<int>(st),
                    static_cast<int>(accel::AccelStatus::kOk));
        cycles += static_cast<double>(batch_cycles);
    }
    Throughput t;
    t.cycles = cycles;
    t.wire_bytes = bytes;
    t.gbps = bytes * 8.0 * config.freq_ghz / cycles;
    return t;
}

Throughput
AccelSerialize(const Workload &workload, const accel::AccelConfig &config,
               int repeats)
{
    sim::MemorySystem memory{sim::MemorySystemConfig{}};
    accel::ProtoAccelerator device(&memory, config);
    proto::Arena adt_arena;
    accel::AdtBuilder adts(*workload.pool, &adt_arena);
    // Size the output arena generously for one batch.
    accel::SerArena ser_arena(
        static_cast<size_t>(workload.total_wire_bytes) * 2 + (64 << 10));
    double cycles = 0;
    double bytes = 0;
    for (int r = 0; r < repeats; ++r) {
        ser_arena.Reset();
        device.SerAssignArena(&ser_arena);
        for (const auto &m : workload.messages) {
            device.EnqueueSer(accel::MakeSerJob(
                adts, workload.msg_index, *workload.pool, m.raw()));
        }
        uint64_t batch_cycles = 0;
        const accel::AccelStatus st =
            device.BlockForSerCompletion(&batch_cycles);
        PA_CHECK_EQ(static_cast<int>(st),
                    static_cast<int>(accel::AccelStatus::kOk));
        cycles += static_cast<double>(batch_cycles);
        bytes += static_cast<double>(ser_arena.bytes_used());
    }
    Throughput t;
    t.cycles = cycles;
    t.wire_bytes = bytes;
    t.gbps = bytes * 8.0 * config.freq_ghz / cycles;
    return t;
}

namespace {

proto::ParseStatus
EngineParse(proto::SoftwareCodecEngine engine, const uint8_t *data,
            size_t len, proto::Message *msg)
{
    switch (engine) {
    case proto::SoftwareCodecEngine::kReference:
        return proto::ReferenceParseFromBuffer(data, len, msg);
    case proto::SoftwareCodecEngine::kGenerated:
        return proto::GeneratedParseFromBuffer(data, len, msg);
    case proto::SoftwareCodecEngine::kTable:
        break;
    }
    return proto::ParseFromBuffer(data, len, msg);
}

size_t
EngineSerializeTo(proto::SoftwareCodecEngine engine,
                  const proto::Message &msg, uint8_t *buf, size_t cap)
{
    switch (engine) {
    case proto::SoftwareCodecEngine::kReference:
        return proto::ReferenceSerializeToBuffer(msg, buf, cap);
    case proto::SoftwareCodecEngine::kGenerated:
        return proto::GeneratedSerializeToBuffer(msg, buf, cap);
    case proto::SoftwareCodecEngine::kTable:
        break;
    }
    return proto::SerializeToBuffer(msg, buf, cap);
}

double
ElapsedNs(std::chrono::steady_clock::time_point start)
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

}  // namespace

Throughput
HostWallDeserialize(proto::SoftwareCodecEngine engine,
                    const Workload &workload, int repeats)
{
    // One untimed warm-up pass: the generated engine's text segment for
    // a HyperProtoBench pool is megabytes of emitted code, and paying
    // its first-touch page-ins inside the timed region would bill a
    // one-time cost to a steady-state throughput number.
    {
        proto::Arena arena;
        for (const auto &wire : workload.wires) {
            proto::Message dest = proto::Message::Create(
                &arena, *workload.pool, workload.msg_index);
            (void)EngineParse(engine, wire.data(), wire.size(), &dest);
        }
    }
    double bytes = 0;
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
        proto::Arena arena;
        for (const auto &wire : workload.wires) {
            proto::Message dest = proto::Message::Create(
                &arena, *workload.pool, workload.msg_index);
            const proto::ParseStatus st = EngineParse(
                engine, wire.data(), wire.size(), &dest);
            PA_CHECK_EQ(static_cast<int>(st),
                        static_cast<int>(proto::ParseStatus::kOk));
            bytes += static_cast<double>(wire.size());
        }
    }
    Throughput t;
    t.cycles = ElapsedNs(start);
    t.wire_bytes = bytes;
    t.gbps = bytes * 8.0 / t.cycles;  // bits per nanosecond == Gbit/s
    return t;
}

Throughput
HostWallSerialize(proto::SoftwareCodecEngine engine,
                  const Workload &workload, int repeats)
{
    double bytes = 0;
    std::vector<uint8_t> buffer(1 << 22);
    // Untimed warm-up pass; see HostWallDeserialize.
    for (const auto &m : workload.messages)
        (void)EngineSerializeTo(engine, m, buffer.data(), buffer.size());
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
        for (const auto &m : workload.messages) {
            const size_t n = EngineSerializeTo(engine, m, buffer.data(),
                                               buffer.size());
            PA_CHECK(n > 0 || proto::ByteSize(m) == 0);
            bytes += static_cast<double>(n);
        }
    }
    Throughput t;
    t.cycles = ElapsedNs(start);
    t.wire_bytes = bytes;
    t.gbps = bytes * 8.0 / t.cycles;
    return t;
}

double
GeoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0;
    double log_sum = 0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

FigureRow
PrintFigure(const std::string &title, const std::vector<FigureRow> &rows)
{
    std::printf("%s\n", title.c_str());
    std::printf("  %-18s %12s %12s %18s %10s %10s\n", "benchmark",
                "riscv-boom", "Xeon", "riscv-boom-accel", "vs-boom",
                "vs-Xeon");
    std::printf("  %-18s %12s %12s %18s %10s %10s\n", "", "(Gbit/s)",
                "(Gbit/s)", "(Gbit/s)", "", "");
    std::vector<double> boom, xeon, acc;
    for (const auto &row : rows) {
        std::printf("  %-18s %12.3f %12.3f %18.3f %9.2fx %9.2fx\n",
                    row.name.c_str(), row.boom, row.xeon, row.accel,
                    row.accel / row.boom, row.accel / row.xeon);
        boom.push_back(row.boom);
        xeon.push_back(row.xeon);
        acc.push_back(row.accel);
    }
    FigureRow gm;
    gm.name = "geomean";
    gm.boom = GeoMean(boom);
    gm.xeon = GeoMean(xeon);
    gm.accel = GeoMean(acc);
    std::printf("  %-18s %12.3f %12.3f %18.3f %9.2fx %9.2fx\n",
                gm.name.c_str(), gm.boom, gm.xeon, gm.accel,
                gm.accel / gm.boom, gm.accel / gm.xeon);
    return gm;
}

double
Percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0;
    std::sort(values.begin(), values.end());
    const double rank =
        p / 100.0 * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = lo + 1 < values.size() ? lo + 1 : lo;
    const double frac = rank - static_cast<double>(lo);
    return values[lo] + (values[hi] - values[lo]) * frac;
}

double
ExactPercentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0;
    std::sort(values.begin(), values.end());
    // Nearest-rank definition: the smallest value with at least p% of
    // the sample at or below it, i.e. element ceil(p/100 * N), 1-based.
    // The epsilon keeps an exact-integer rank exact: 99.9/100 * 1000
    // rounds up to 999.0000000000001, which must stay rank 999.
    const double n = static_cast<double>(values.size());
    double rank = std::ceil(p / 100.0 * n - 1e-9);
    if (rank < 1.0)
        rank = 1.0;
    if (rank > n)
        rank = n;
    return values[static_cast<size_t>(rank) - 1];
}

}  // namespace protoacc::harness
