#include "harness/stats_report.h"

#include <cinttypes>
#include <cstdio>

namespace protoacc::harness {

namespace {

void
Line(std::string &out, const char *name, uint64_t value)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%-44s %16" PRIu64 "\n", name, value);
    out += buf;
}

void
LineF(std::string &out, const char *name, double value)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%-44s %16.4f\n", name, value);
    out += buf;
}

}  // namespace

std::string
AccelStatsReport(const accel::ProtoAccelerator &device)
{
    std::string out = "---------- accelerator stats ----------\n";
    const accel::DeserStats &d = device.deserializer().stats();
    Line(out, "deser.jobs", d.jobs);
    Line(out, "deser.cycles", d.cycles);
    Line(out, "deser.wire_bytes", d.wire_bytes);
    Line(out, "deser.fields", d.fields);
    Line(out, "deser.varint_fields", d.varint_fields);
    Line(out, "deser.fixed_fields", d.fixed_fields);
    Line(out, "deser.string_fields", d.string_fields);
    Line(out, "deser.submessages", d.submessages);
    Line(out, "deser.packed_fields", d.packed_fields);
    Line(out, "deser.repeated_elements", d.repeated_elements);
    Line(out, "deser.unknown_fields", d.unknown_fields);
    Line(out, "deser.allocations", d.allocations);
    Line(out, "deser.alloc_bytes", d.alloc_bytes);
    Line(out, "deser.stack_spills", d.stack_spills);
    Line(out, "deser.max_depth", d.max_depth);
    Line(out, "deser.adt_stall_cycles", d.adt_stall_cycles);
    Line(out, "deser.stream_stall_cycles", d.stream_stall_cycles);
    if (d.cycles > 0) {
        LineF(out, "deser.bytes_per_cycle",
              static_cast<double>(d.wire_bytes) /
                  static_cast<double>(d.cycles));
    }

    const accel::SerStats &s = device.serializer().stats();
    Line(out, "ser.jobs", s.jobs);
    Line(out, "ser.cycles", s.cycles);
    Line(out, "ser.out_bytes", s.out_bytes);
    Line(out, "ser.fields", s.fields);
    Line(out, "ser.submessages", s.submessages);
    Line(out, "ser.repeated_elements", s.repeated_elements);
    Line(out, "ser.scan_cycles", s.scan_cycles);
    Line(out, "ser.stack_spills", s.stack_spills);
    if (s.cycles > 0) {
        LineF(out, "ser.bytes_per_cycle",
              static_cast<double>(s.out_bytes) /
                  static_cast<double>(s.cycles));
    }

    const accel::OpsStats &o = device.ops().stats();
    if (o.jobs > 0) {
        Line(out, "ops.jobs", o.jobs);
        Line(out, "ops.cycles", o.cycles);
        Line(out, "ops.fields", o.fields);
        Line(out, "ops.submessages", o.submessages);
        Line(out, "ops.bytes_copied", o.bytes_copied);
        Line(out, "ops.allocations", o.allocations);
    }
    return out;
}

std::string
MemoryStatsReport(const sim::MemorySystem &memory)
{
    std::string out = "---------- memory system stats ----------\n";
    Line(out, "mem.reads", memory.stats().reads);
    Line(out, "mem.read_bytes", memory.stats().read_bytes);
    Line(out, "mem.writes", memory.stats().writes);
    Line(out, "mem.write_bytes", memory.stats().write_bytes);
    Line(out, "l2.hits", memory.l2().stats().hits);
    Line(out, "l2.misses", memory.l2().stats().misses);
    LineF(out, "l2.hit_rate", memory.l2().stats().hit_rate());
    Line(out, "llc.hits", memory.llc().stats().hits);
    Line(out, "llc.misses", memory.llc().stats().misses);
    LineF(out, "llc.hit_rate", memory.llc().stats().hit_rate());
    Line(out, "l2.writebacks", memory.l2().stats().writebacks);
    return out;
}

}  // namespace protoacc::harness
