/**
 * @file
 * The §5.1 microbenchmark suite: workload builders for every benchmark
 * named in Figures 11a-11d.
 *
 * Following the paper: varint/double/float benchmarks (and their
 * repeated equivalents) use five fields per message "so that the
 * middle-sized non-repeated varint's µbenchmark message falls roughly
 * at the median of message sizes shown in Figure 3"; all other
 * benchmarks use one field per message. Each benchmark operates on a
 * pre-populated batch of messages.
 */
#ifndef PROTOACC_HARNESS_MICROBENCH_H
#define PROTOACC_HARNESS_MICROBENCH_H

#include <memory>
#include <string>
#include <vector>

#include "harness/bench_common.h"

namespace protoacc::harness {

/// A named microbenchmark: owns its pool, arena and workload.
struct Microbench
{
    std::string name;
    std::unique_ptr<proto::DescriptorPool> pool;
    std::unique_ptr<proto::Arena> arena;
    Workload workload;
};

/// Number of messages per pre-populated batch.
inline constexpr int kMicrobenchBatch = 64;

/**
 * varint-N (N in 0..10): five uint64 fields whose values encode to
 * max(N,1) varint bytes (varint-0 holds the value zero).
 */
std::unique_ptr<Microbench> MakeVarintBench(int n, bool repeated,
                                            int elems_per_field = 8);

/// double / float: five fixed-width fields (optionally repeated).
std::unique_ptr<Microbench> MakeDoubleBench(bool repeated,
                                            int elems_per_field = 8);
std::unique_ptr<Microbench> MakeFloatBench(bool repeated,
                                           int elems_per_field = 8);

/**
 * string / string_15 / string_long / string_very_long: one string
 * field of the given payload size (8 B, 15 B = the SSO boundary,
 * 512 B, 64 KiB).
 */
std::unique_ptr<Microbench> MakeStringBench(const std::string &name,
                                            size_t payload_len);

/**
 * Repeated-string workload: one repeated string field holding `count`
 * elements of `payload_len` bytes each. With short payloads the
 * serialize cost is dominated by the per-element tag/length/copy
 * sequence, which makes the writer's short-string copy path visible
 * above the per-message fixed costs.
 */
std::unique_ptr<Microbench> MakeRepeatedStringBench(
    const std::string &name, size_t payload_len, int count);

/**
 * bool-SUB / double-SUB / string-SUB: one sub-message field whose
 * sub-message holds five fields of the named type (one for string).
 */
std::unique_ptr<Microbench> MakeSubmessageBench(const std::string &name,
                                                proto::FieldType type);

/// The Figure 11a/11b field set: varint-0..varint-10, double, float.
std::vector<std::unique_ptr<Microbench>> MakeNonAllocBenches();

/// The Figure 11c/11d field set: varint-0-R..varint-10-R, string x4,
/// double-R, float-R, bool-SUB, double-SUB, string-SUB.
std::vector<std::unique_ptr<Microbench>> MakeAllocBenches();

}  // namespace protoacc::harness

#endif  // PROTOACC_HARNESS_MICROBENCH_H
