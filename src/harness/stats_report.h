/**
 * @file
 * gem5-style statistics reporting for the modeled system.
 *
 * Collects the counters every unit already maintains — deserializer and
 * serializer pipelines, the ops unit, memory-system caches, per-port
 * TLBs and traffic — into one aligned text block, the way a simulator
 * dumps stats at the end of a run. Used by examples and available to
 * any bench that wants per-unit visibility.
 */
#ifndef PROTOACC_HARNESS_STATS_REPORT_H
#define PROTOACC_HARNESS_STATS_REPORT_H

#include <string>

#include "accel/accelerator.h"

namespace protoacc::harness {

/// Render all accelerator-unit counters as an aligned stats block.
std::string AccelStatsReport(const accel::ProtoAccelerator &device);

/// Render memory-system counters (cache hit rates, traffic).
std::string MemoryStatsReport(const sim::MemorySystem &memory);

}  // namespace protoacc::harness

#endif  // PROTOACC_HARNESS_STATS_REPORT_H
