/**
 * @file
 * Benchmark harness: runs a workload on the paper's three systems —
 * "riscv-boom" (software codec + BOOM cost model), "Xeon" (software
 * codec + Xeon cost model) and "riscv-boom-accel" (the accelerator
 * model) — and reports throughput in Gbit/s of encoded data, exactly as
 * §5.1 defines it ("dividing the total amount of serialized message
 * data consumed/produced by the time to process the batch").
 */
#ifndef PROTOACC_HARNESS_BENCH_COMMON_H
#define PROTOACC_HARNESS_BENCH_COMMON_H

#include <functional>
#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "cpu/cpu_model.h"
#include "proto/codec_generated.h"
#include "proto/parser.h"
#include "proto/serializer.h"

namespace protoacc::harness {

/// Result of one benchmark on one system.
struct Throughput
{
    double gbps = 0;
    double cycles = 0;
    double wire_bytes = 0;
};

/// A batch workload: one message type and a set of populated instances
/// (pre-populated, as in §5.1: "operating on a pre-populated set of
/// serialized messages or C++ message objects").
struct Workload
{
    const proto::DescriptorPool *pool = nullptr;
    int msg_index = -1;
    /// Instances to serialize / wire images to deserialize.
    std::vector<proto::Message> messages;
    std::vector<std::vector<uint8_t>> wires;
    /// Total encoded bytes across the batch.
    double total_wire_bytes = 0;
};

/// Build the wire images for a workload's messages.
void FillWires(Workload *workload);

/// Deserialization throughput on a CPU cost model.
Throughput CpuDeserialize(const cpu::CpuParams &params,
                          const Workload &workload, int repeats = 8);

/// Serialization (ByteSize + write passes) throughput on a CPU model.
Throughput CpuSerialize(const cpu::CpuParams &params,
                        const Workload &workload, int repeats = 8);

/// Deserialization throughput on the accelerator model.
Throughput AccelDeserialize(const Workload &workload,
                            const accel::AccelConfig &config,
                            int repeats = 8);

/// Serialization throughput on the accelerator model.
Throughput AccelSerialize(const Workload &workload,
                          const accel::AccelConfig &config,
                          int repeats = 8);

/**
 * Host wall-clock deserialization throughput of one software engine
 * (reference / table / generated), measured with a monotonic clock and
 * no cost sink: this is the build host's real time, complementary to
 * the modeled-cycle numbers above. Throughput::cycles carries elapsed
 * nanoseconds. Requires a linked generated codec when @p engine is
 * kGenerated (the entry points PA_CHECK).
 */
Throughput HostWallDeserialize(proto::SoftwareCodecEngine engine,
                               const Workload &workload,
                               int repeats = 8);

/// Host wall-clock serialization (sizing + write) throughput of one
/// software engine; see HostWallDeserialize.
Throughput HostWallSerialize(proto::SoftwareCodecEngine engine,
                             const Workload &workload, int repeats = 8);

/// One row of a figure: benchmark name + per-system throughput.
struct FigureRow
{
    std::string name;
    double boom = 0;
    double xeon = 0;
    double accel = 0;
};

/// Print a paper-style figure table with a geomean summary row and the
/// accel/boom and accel/Xeon speedups. Returns the geomean row.
FigureRow PrintFigure(const std::string &title,
                      const std::vector<FigureRow> &rows);

/// Geometric mean helper (0 entries -> 0).
double GeoMean(const std::vector<double> &values);

/**
 * Linear-interpolated percentile of @p values (p in [0,100]); 0 when
 * empty. Sorts a copy: fine for per-run latency reporting.
 */
double Percentile(std::vector<double> values, double p);

/**
 * Exact (nearest-rank) percentile of @p values (p in (0,100]); 0 when
 * empty. Unlike the interpolated Percentile above, this returns a
 * value that actually occurred — the right statistic for tail SLO
 * reporting (an interpolated p99 can name a latency no request ever
 * saw). Sorts a copy.
 */
double ExactPercentile(std::vector<double> values, double p);

}  // namespace protoacc::harness

#endif  // PROTOACC_HARNESS_BENCH_COMMON_H
