#include "harness/microbench.h"

namespace protoacc::harness {

using proto::DescriptorPool;
using proto::FieldType;
using proto::Label;
using proto::Message;

namespace {

/// A uint64 value whose varint encoding is exactly max(n,1) bytes.
uint64_t
VarintValueOfSize(int n)
{
    if (n <= 0)
        return 0;  // varint-0: the value zero (1 byte on the wire)
    if (n >= 10)
        return UINT64_MAX;  // 10 bytes
    // Smallest value needing n bytes: 2^(7*(n-1)).
    return 1ull << (7 * (n - 1));
}

std::unique_ptr<Microbench>
NewBench(const std::string &name)
{
    auto b = std::make_unique<Microbench>();
    b->name = name;
    b->pool = std::make_unique<DescriptorPool>();
    b->arena = std::make_unique<proto::Arena>();
    return b;
}

void
Finish(Microbench *b, int msg_index)
{
    b->workload.pool = b->pool.get();
    b->workload.msg_index = msg_index;
    FillWires(&b->workload);
}

}  // namespace

std::unique_ptr<Microbench>
MakeVarintBench(int n, bool repeated, int elems_per_field)
{
    auto b = NewBench(repeated ? "varint-" + std::to_string(n) + "-R"
                               : "varint-" + std::to_string(n));
    const int msg = b->pool->AddMessage("M");
    const Label label = repeated ? Label::kRepeated : Label::kOptional;
    for (uint32_t f = 1; f <= 5; ++f) {
        b->pool->AddField(msg, "v" + std::to_string(f), f,
                          FieldType::kUint64, label,
                          /*packed=*/repeated);
    }
    b->pool->Compile(proto::HasbitsMode::kSparse);

    const uint64_t value = VarintValueOfSize(n);
    for (int i = 0; i < kMicrobenchBatch; ++i) {
        Message m = Message::Create(b->arena.get(), *b->pool, msg);
        for (const auto &f : b->pool->message(msg).fields()) {
            if (repeated) {
                for (int e = 0; e < elems_per_field; ++e)
                    m.AddRepeatedBits(f, value);
            } else {
                m.SetUint64(f, value);
            }
        }
        b->workload.messages.push_back(m);
    }
    Finish(b.get(), msg);
    return b;
}

namespace {

std::unique_ptr<Microbench>
MakeFixedBench(const std::string &base_name, FieldType type,
               bool repeated, int elems_per_field)
{
    auto b = NewBench(repeated ? base_name + "-R" : base_name);
    const int msg = b->pool->AddMessage("M");
    const Label label = repeated ? Label::kRepeated : Label::kOptional;
    for (uint32_t f = 1; f <= 5; ++f) {
        b->pool->AddField(msg, "v" + std::to_string(f), f, type, label,
                          /*packed=*/repeated);
    }
    b->pool->Compile(proto::HasbitsMode::kSparse);

    for (int i = 0; i < kMicrobenchBatch; ++i) {
        Message m = Message::Create(b->arena.get(), *b->pool, msg);
        for (const auto &f : b->pool->message(msg).fields()) {
            if (repeated) {
                for (int e = 0; e < elems_per_field; ++e) {
                    if (type == FieldType::kDouble) {
                        uint64_t bits;
                        const double v = 1.5 * (e + 1);
                        memcpy(&bits, &v, 8);
                        m.AddRepeatedBits(f, bits);
                    } else {
                        uint32_t bits;
                        const float v = 2.5f * (e + 1);
                        memcpy(&bits, &v, 4);
                        m.AddRepeatedBits(f, bits);
                    }
                }
            } else if (type == FieldType::kDouble) {
                m.SetDouble(f, 3.25 * (i + 1));
            } else {
                m.SetFloat(f, 1.25f * (i + 1));
            }
        }
        b->workload.messages.push_back(m);
    }
    Finish(b.get(), msg);
    return b;
}

}  // namespace

std::unique_ptr<Microbench>
MakeDoubleBench(bool repeated, int elems_per_field)
{
    return MakeFixedBench("double", FieldType::kDouble, repeated,
                          elems_per_field);
}

std::unique_ptr<Microbench>
MakeFloatBench(bool repeated, int elems_per_field)
{
    return MakeFixedBench("float", FieldType::kFloat, repeated,
                          elems_per_field);
}

std::unique_ptr<Microbench>
MakeStringBench(const std::string &name, size_t payload_len)
{
    auto b = NewBench(name);
    const int msg = b->pool->AddMessage("M");
    b->pool->AddField(msg, "s", 1, FieldType::kString);
    b->pool->Compile(proto::HasbitsMode::kSparse);
    const auto &f = b->pool->message(msg).field(0);
    for (int i = 0; i < kMicrobenchBatch; ++i) {
        Message m = Message::Create(b->arena.get(), *b->pool, msg);
        m.SetString(f, std::string(payload_len,
                                   static_cast<char>('a' + i % 26)));
        b->workload.messages.push_back(m);
    }
    Finish(b.get(), msg);
    return b;
}

std::unique_ptr<Microbench>
MakeRepeatedStringBench(const std::string &name, size_t payload_len,
                        int count)
{
    auto b = NewBench(name);
    const int msg = b->pool->AddMessage("M");
    b->pool->AddField(msg, "rs", 1, FieldType::kString,
                      Label::kRepeated);
    b->pool->Compile(proto::HasbitsMode::kSparse);
    const auto &f = b->pool->message(msg).field(0);
    for (int i = 0; i < kMicrobenchBatch; ++i) {
        Message m = Message::Create(b->arena.get(), *b->pool, msg);
        for (int e = 0; e < count; ++e) {
            m.AddRepeatedString(
                f, std::string(payload_len,
                               static_cast<char>('a' + (i + e) % 26)));
        }
        b->workload.messages.push_back(m);
    }
    Finish(b.get(), msg);
    return b;
}

std::unique_ptr<Microbench>
MakeSubmessageBench(const std::string &name, FieldType type)
{
    auto b = NewBench(name);
    const int inner = b->pool->AddMessage("Inner");
    const int nfields = proto::IsBytesLike(type) ? 1 : 5;
    for (int f = 1; f <= nfields; ++f) {
        b->pool->AddField(inner, "v" + std::to_string(f),
                          static_cast<uint32_t>(f), type);
    }
    const int msg = b->pool->AddMessage("M");
    b->pool->AddMessageField(msg, "sub", 1, inner);
    b->pool->Compile(proto::HasbitsMode::kSparse);

    const auto &subf = b->pool->message(msg).field(0);
    for (int i = 0; i < kMicrobenchBatch; ++i) {
        Message m = Message::Create(b->arena.get(), *b->pool, msg);
        Message sub = m.MutableMessage(subf);
        for (const auto &f : b->pool->message(inner).fields()) {
            switch (type) {
              case FieldType::kBool:
                sub.SetBool(f, (i + f.number) % 2 == 0);
                break;
              case FieldType::kDouble:
                sub.SetDouble(f, 0.5 * (i + f.number));
                break;
              default:
                sub.SetString(f, std::string(24, 'q'));
                break;
            }
        }
        b->workload.messages.push_back(m);
    }
    Finish(b.get(), msg);
    return b;
}

std::vector<std::unique_ptr<Microbench>>
MakeNonAllocBenches()
{
    std::vector<std::unique_ptr<Microbench>> benches;
    for (int n = 0; n <= 10; ++n)
        benches.push_back(MakeVarintBench(n, /*repeated=*/false));
    benches.push_back(MakeDoubleBench(false));
    benches.push_back(MakeFloatBench(false));
    return benches;
}

std::vector<std::unique_ptr<Microbench>>
MakeAllocBenches()
{
    std::vector<std::unique_ptr<Microbench>> benches;
    for (int n = 0; n <= 10; ++n)
        benches.push_back(MakeVarintBench(n, /*repeated=*/true));
    benches.push_back(MakeStringBench("string", 8));
    benches.push_back(MakeStringBench("string_15", 15));
    benches.push_back(MakeStringBench("string_long", 512));
    benches.push_back(MakeStringBench("string_very_long", 64 * 1024));
    benches.push_back(MakeDoubleBench(true));
    benches.push_back(MakeFloatBench(true));
    benches.push_back(
        MakeSubmessageBench("bool-SUB", FieldType::kBool));
    benches.push_back(
        MakeSubmessageBench("double-SUB", FieldType::kDouble));
    benches.push_back(
        MakeSubmessageBench("string-SUB", FieldType::kString));
    return benches;
}

}  // namespace protoacc::harness
