/**
 * @file
 * Analytic ASIC area and critical-path model (§5.3).
 *
 * We cannot run commercial synthesis; instead each unit is decomposed
 * into a gate-level block inventory (datapath registers, combinational
 * varint units, SRAM-based context stacks, TLBs, interface queues) and
 * costed with per-kGE area and per-bit SRAM area figures representative
 * of a commercial 22 nm FinFET standard-cell library. Frequency comes
 * from the deepest combinational path expressed in FO4 delays.
 *
 * The model is calibrated to reproduce the paper's §5.3 results —
 * deserializer 0.133 mm² @ 1.95 GHz, serializer 0.278 mm² @ 1.84 GHz —
 * and, more importantly, their *structure*: the serializer is ~2x the
 * deserializer because it instantiates multiple parallel field
 * serializer units, and both units close timing at ~2 GHz because the
 * single-cycle 10-byte varint units dominate the critical path.
 */
#ifndef PROTOACC_ASIC_AREA_MODEL_H
#define PROTOACC_ASIC_AREA_MODEL_H

#include <string>
#include <vector>

namespace protoacc::asic {

/// Technology constants for the modeled 22 nm FinFET process.
struct ProcessParams
{
    std::string name = "commercial 22nm FinFET";
    /// Logic density: mm^2 per 1000 gate-equivalents (post-PnR, with
    /// typical utilization).
    double mm2_per_kge = 0.00032;
    /// SRAM density: mm^2 per kilobit (small macros, single-port).
    double mm2_per_kbit_sram = 0.0011;
    /// FO4 inverter delay in picoseconds (slow corner).
    double fo4_ps = 13.0;
    /// Sequential overhead per cycle (setup + clk-q + margin), in FO4.
    double seq_overhead_fo4 = 3.5;
};

/// One block of a unit's inventory.
struct Block
{
    std::string name;
    double kge = 0;        ///< logic gate-equivalents (thousands)
    double sram_kbit = 0;  ///< SRAM bits (kilobits)
    double area_mm2 = 0;   ///< filled in by the model
};

/// Synthesis-style report for one unit.
struct UnitReport
{
    std::string unit;
    std::vector<Block> blocks;
    double total_mm2 = 0;
    double critical_path_fo4 = 0;
    double freq_ghz = 0;
};

/// Deserializer unit inventory and report (Figure 9's blocks).
UnitReport DeserializerReport(const ProcessParams &process = {});

/**
 * Serializer unit inventory and report (Figure 10's blocks).
 *
 * @param num_field_serializers K parallel FSUs; the paper's design
 *        point is 4, and this knob feeds the FSU-count ablation.
 */
UnitReport SerializerReport(const ProcessParams &process = {},
                            int num_field_serializers = 4);

/// Render a report as an aligned table.
std::string ToTable(const UnitReport &report);

}  // namespace protoacc::asic

#endif  // PROTOACC_ASIC_AREA_MODEL_H
