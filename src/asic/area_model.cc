#include "asic/area_model.h"

#include <cstdio>

namespace protoacc::asic {

namespace {

UnitReport
Finish(UnitReport report, const ProcessParams &process,
       double critical_path_fo4)
{
    for (auto &block : report.blocks) {
        block.area_mm2 = block.kge * process.mm2_per_kge +
                         block.sram_kbit * process.mm2_per_kbit_sram;
        report.total_mm2 += block.area_mm2;
    }
    report.critical_path_fo4 = critical_path_fo4;
    const double period_ps =
        (critical_path_fo4 + process.seq_overhead_fo4) * process.fo4_ps;
    report.freq_ghz = 1000.0 / period_ps;
    return report;
}

}  // namespace

UnitReport
DeserializerReport(const ProcessParams &process)
{
    UnitReport report;
    report.unit = "deserializer";
    report.blocks = {
        // Figure 9's blocks. The metadata stack holds 25 entries of
        // message-level state (§3.8/§4.4.9): ADT base, object pointer,
        // end offset and header fields, ~256 b per entry.
        {.name = "memloader (stream buffers + ctrl)", .kge = 40},
        {.name = "combinational varint decoder (10B)", .kge = 22},
        {.name = "field-handler FSM + datapath", .kge = 70},
        {.name = "ADT loader + response buffer", .kge = 45},
        {.name = "hasbits writer", .kge = 15},
        {.name = "arena allocator datapath", .kge = 18},
        {.name = "mem interface wrappers (OoO tracking)", .kge = 120},
        {.name = "TLB (32-entry CAM)", .kge = 40},
        {.name = "RoCC cmd router + control", .kge = 24},
        {.name = "metadata stack SRAM (25 x 256b)", .sram_kbit = 6.4},
    };
    // Critical path: the 10-byte combinational varint decode feeding
    // the key split and next-state selection.
    return Finish(std::move(report), process,
                  /*critical_path_fo4=*/36.0);
}

UnitReport
SerializerReport(const ProcessParams &process, int num_field_serializers)
{
    UnitReport report;
    report.unit = "serializer";
    report.blocks = {
        // Figure 10's blocks. The parallel field serializer units are
        // the serializer's dominant area — which is why it is ~2x the
        // deserializer (§5.3) and why its area scales with K.
        {.name = "frontend (bit-field walk + ctx stacks)", .kge = 80},
        {.name = "ADT loader", .kge = 45},
        {.name = "field serializer units (" +
                     std::to_string(num_field_serializers) +
                     " x 95 kGE)",
         .kge = 95.0 * num_field_serializers},
        {.name = "RR op dispatch + output sequencer", .kge = 50},
        {.name = "memwriter (length injection)", .kge = 90},
        {.name = "mem interface wrappers (OoO tracking)", .kge = 120},
        {.name = "TLB (32-entry CAM)", .kge = 40},
        {.name = "RoCC cmd router + control", .kge = 22},
        {.name = "context stack SRAMs (2 x 25 x 192b)",
         .sram_kbit = 9.6},
        {.name = "output staging SRAM", .sram_kbit = 2.4},
    };
    // Critical path: sub-message length accumulation + round-robin
    // grant feeding the memwriter merge.
    return Finish(std::move(report), process,
                  /*critical_path_fo4=*/38.5);
}

std::string
ToTable(const UnitReport &report)
{
    std::string out = report.unit + " (22nm synthesis model)\n";
    char line[160];
    std::snprintf(line, sizeof(line), "  %-42s %8s %9s %10s\n", "block",
                  "kGE", "SRAM kb", "mm^2");
    out += line;
    for (const auto &block : report.blocks) {
        std::snprintf(line, sizeof(line),
                      "  %-42s %8.0f %9.1f %10.4f\n", block.name.c_str(),
                      block.kge, block.sram_kbit, block.area_mm2);
        out += line;
    }
    std::snprintf(line, sizeof(line),
                  "  %-42s %18s %10.3f\n", "total", "", report.total_mm2);
    out += line;
    std::snprintf(line, sizeof(line),
                  "  critical path %.1f FO4 -> %.2f GHz\n",
                  report.critical_path_fo4, report.freq_ghz);
    out += line;
    return out;
}

}  // namespace protoacc::asic
