#include "cpu/cpu_model.h"

namespace protoacc::cpu {

// Calibration targets (see EXPERIMENTS.md): the per-operation costs
// below reproduce the absolute throughput ranges of Figure 11 —
// riscv-boom deserializing small varints around 0.2-0.4 Gbit/s and
// large varints above 1 Gbit/s, the Xeon roughly 2.5-3x faster per
// operation with a 1.35x clock advantage, and very-long-string copies
// saturating near DRAM streaming bandwidth (where the Xeon nearly
// matches the accelerator on serialization, §5.1.2). Protobuf software
// costs are dominated by branchy per-field dispatch through generated
// code (§7 discusses the I$/BTB pressure), which is why per-field
// constants dwarf per-byte ones.

CpuParams
BoomParams()
{
    CpuParams p;
    p.name = "riscv-boom";
    p.freq_ghz = 2.0;
    p.per_tag_decode = 20.0;  // key parse + unpredictable dispatch branch
    p.per_tag_encode = 8.0;
    p.per_varint_decode_byte = 6.0;
    p.per_varint_encode_byte = 3.0;
    p.per_fixed_copy = 10.0;
    // Modest streaming copy rate: narrow LSU, weaker uncore (§1).
    p.memcpy_bytes_per_cycle = 3.5;
    p.memcpy_setup = 40.0;
    p.per_alloc = 140.0;
    p.alloc_bytes_per_cycle = 6.0;
    p.per_field_dispatch = 18.0;  // generated-code switch + accessors
    p.per_message_begin = 45.0;   // call frame, I$ refill, setup
    p.per_message_end = 15.0;
    p.per_bytesize_field = 8.0;
    p.per_bytesize_message = 30.0;
    p.per_hasbits_word = 2.0;
    // Software slice-by-8 (no CRC32C instruction on this core): table
    // lookups bound by load-port pressure, ~4 B/cycle sustained.
    p.crc_setup = 30.0;
    p.crc_bytes_per_cycle = 4.0;
    return p;
}

CpuParams
XeonParams()
{
    CpuParams p;
    p.name = "Xeon";
    p.freq_ghz = 2.7;  // turbo clock, single-threaded benchmarks
    p.per_tag_decode = 8.0;
    p.per_tag_encode = 1.5;
    p.per_varint_decode_byte = 2.2;
    p.per_varint_encode_byte = 0.7;
    p.per_fixed_copy = 3.0;
    // AVX memcpy pinned near DRAM streaming bandwidth for large copies
    // (~26 GB/s at 2.7 GHz): this is what lets the Xeon nearly match
    // the accelerator on very-long-string serialization.
    p.memcpy_bytes_per_cycle = 9.5;
    p.memcpy_setup = 16.0;
    p.per_alloc = 170.0;
    p.alloc_bytes_per_cycle = 7.0;
    p.per_field_dispatch = 11.0;
    p.per_message_begin = 26.0;
    p.per_message_end = 7.0;
    p.per_bytesize_field = 1.0;
    p.per_bytesize_message = 12.0;
    p.per_hasbits_word = 0.7;
    // Hardware crc32 instruction: 8 B/uop pipelined across the
    // three-cycle latency with software interleaving (~16 B/cycle is
    // the classic 3-stream bound; we charge a conservative slice of it).
    p.crc_setup = 15.0;
    p.crc_bytes_per_cycle = 16.0;
    return p;
}

}  // namespace protoacc::cpu
