/**
 * @file
 * CPU baseline cost models.
 *
 * The paper's baselines are (1) a single SonicBOOM OoO core at 2 GHz in
 * the same SoC and (2) one core of a Xeon E5-2686 v4 at 2.3/2.7 GHz. We
 * model both by attaching a per-operation cost model (a proto::CostSink)
 * to the functional software codec: every primitive the codec performs —
 * tag parse, varint byte, fixed copy, bulk memcpy, allocation, field
 * dispatch, per-message call overhead, ByteSize work — charges cycles
 * under a per-machine parameter set.
 *
 * Parameters are calibrated (see EXPERIMENTS.md) so that the *shape* of
 * the paper's Figure 11 microbenchmarks holds: varint throughput grows
 * with varint size, long strings degenerate to memcpy where the Xeon
 * excels, allocation-heavy deserialization is expensive, and the Xeon
 * outperforms BOOM by roughly its IPC/frequency advantage.
 */
#ifndef PROTOACC_CPU_CPU_MODEL_H
#define PROTOACC_CPU_CPU_MODEL_H

#include <string>

#include "proto/cost_sink.h"

namespace protoacc::cpu {

/// Per-operation cycle costs for one machine.
struct CpuParams
{
    std::string name;
    /// Clock used to convert cycles to time/throughput.
    double freq_ghz = 2.0;

    double per_tag_decode = 6.0;  ///< key varint parse + dispatch branch
    double per_tag_encode = 4.0;
    double per_varint_decode_byte = 3.0;  ///< decode-loop iteration
    double per_varint_encode_byte = 2.5;
    double per_fixed_copy = 3.0;           ///< 4/8-byte load+store path
    double memcpy_bytes_per_cycle = 8.0;   ///< bulk-copy throughput
    double memcpy_setup = 18.0;            ///< per-call overhead
    double per_alloc = 45.0;               ///< allocator fast path
    double alloc_bytes_per_cycle = 32.0;   ///< large-alloc zero/init
    double per_field_dispatch = 7.0;       ///< switch on field/wire type
    double per_message_begin = 32.0;       ///< call, frame, I$ pressure
    double per_message_end = 10.0;
    double per_bytesize_field = 5.0;  ///< size-computation pass
    double per_bytesize_message = 15.0;
    double per_hasbits_word = 1.0;
    double crc_setup = 20.0;           ///< per-frame CRC32C fixed cost
    double crc_bytes_per_cycle = 8.0;  ///< CRC32C streaming throughput
    double per_frame_header = 8.0;     ///< header parse/stamp + checks
    double per_dedup_probe = 40.0;     ///< key hash + map probe + lock
};

/// The paper's baseline RISC-V SoC core ("riscv-boom", §5: SonicBOOM,
/// ARM A72-class IPC, 2 GHz).
CpuParams BoomParams();

/// One core (2 HT) of the Xeon E5-2686 v4 ("Xeon", 2.3 GHz base /
/// 2.7 GHz turbo; we charge the turbo clock as the paper's benchmarks
/// are single-threaded).
CpuParams XeonParams();

/**
 * CostSink implementation accumulating cycles under a CpuParams set.
 * Attach to the software codec, run a batch, read cycles()/seconds().
 */
class CpuCostModel : public proto::CostSink
{
  public:
    explicit CpuCostModel(CpuParams params) : params_(std::move(params)) {}

    void
    OnTagDecode(int bytes) override
    {
        // Multi-byte keys pay extra decode-loop iterations.
        cycles_ += params_.per_tag_decode +
                   params_.per_varint_decode_byte * (bytes - 1);
    }
    void
    OnTagEncode(int bytes) override
    {
        cycles_ += params_.per_tag_encode +
                   params_.per_varint_encode_byte * (bytes - 1);
    }
    void
    OnVarintDecode(int bytes) override
    {
        cycles_ += params_.per_varint_decode_byte * bytes;
    }
    void
    OnVarintEncode(int bytes) override
    {
        cycles_ += params_.per_varint_encode_byte * bytes;
    }
    void OnFixedCopy(int bytes) override
    {
        (void)bytes;
        cycles_ += params_.per_fixed_copy;
    }
    void
    OnMemcpy(size_t bytes) override
    {
        cycles_ += params_.memcpy_setup +
                   static_cast<double>(bytes) /
                       params_.memcpy_bytes_per_cycle;
    }
    void
    OnAlloc(size_t bytes) override
    {
        cycles_ += params_.per_alloc +
                   static_cast<double>(bytes) /
                       params_.alloc_bytes_per_cycle;
    }
    void OnFieldDispatch() override
    {
        cycles_ += params_.per_field_dispatch;
    }
    void OnMessageBegin() override
    {
        cycles_ += params_.per_message_begin;
    }
    void OnMessageEnd() override { cycles_ += params_.per_message_end; }
    void OnByteSizeField() override
    {
        cycles_ += params_.per_bytesize_field;
    }
    void OnByteSizeMessage() override
    {
        cycles_ += params_.per_bytesize_message;
    }
    void OnHasbitsAccess(int words) override
    {
        cycles_ += params_.per_hasbits_word * words;
    }
    void
    OnCrc(size_t bytes) override
    {
        cycles_ += params_.crc_setup +
                   static_cast<double>(bytes) /
                       params_.crc_bytes_per_cycle;
    }
    void OnFrameHeader() override { cycles_ += params_.per_frame_header; }
    void OnDedupProbe() override { cycles_ += params_.per_dedup_probe; }

    double cycles() const { return cycles_; }
    double seconds() const { return cycles_ / (params_.freq_ghz * 1e9); }
    void Reset() { cycles_ = 0; }
    const CpuParams &params() const { return params_; }

    /// Throughput in Gbit/s for @p wire_bytes of encoded data processed
    /// in the accumulated cycles.
    double
    ThroughputGbps(double wire_bytes) const
    {
        if (cycles_ <= 0)
            return 0.0;
        return wire_bytes * 8.0 * params_.freq_ghz / cycles_;
    }

  private:
    CpuParams params_;
    double cycles_ = 0;
};

}  // namespace protoacc::cpu

#endif  // PROTOACC_CPU_CPU_MODEL_H
