#include "rpc/tenant.h"

#include <algorithm>

#include "common/check.h"

namespace protoacc::rpc {

TenantTable::TenantTable(std::vector<TenantConfig> tenants,
                         BreakerConfig breaker, BrownoutConfig brownout)
    : breaker_(breaker), brownout_(brownout)
{
    if (breaker_.enabled) {
        PA_CHECK_GE(breaker_.window, 1u);
        PA_CHECK_GE(breaker_.probe_interval, 1u);
        PA_CHECK_GE(breaker_.close_after_probes, 1u);
    }
    if (brownout_.start_wait_ns > 0)
        PA_CHECK_GT(brownout_.full_wait_ns, brownout_.start_wait_ns);
    for (const TenantConfig &cfg : tenants) {
        State st;
        st.config = cfg;
        max_priority_ = std::max(max_priority_, cfg.priority);
        tenants_.emplace(cfg.id, std::move(st));
    }
}

TenantTable::State &
TenantTable::StateFor(uint16_t tenant)
{
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
        // Unconfigured tenants get the permissive default contract:
        // weight 1, no bucket, no wait bound — single-tenant callers
        // that never heard of tenancy keep their exact old behavior.
        State st;
        st.config.id = tenant;
        it = tenants_.emplace(tenant, std::move(st)).first;
    }
    return it->second;
}

AdmitTicket
TenantTable::PreAdmit(uint16_t tenant, double arrival_ns,
                      double pressure_ns)
{
    std::lock_guard<std::mutex> lock(mu_);
    State &st = StateFor(tenant);
    ++st.counters.submitted;
    AdmitTicket ticket;

    // Breaker gate first: a tripped tenant is rejected at O(1) before
    // any bucket/backlog math — that cheapness is the point, a retry
    // storm must not buy admission-pipeline work with every attempt.
    if (breaker_.enabled) {
        if (st.breaker == BreakerState::kOpen) {
            ++st.counters.shed_breaker;
            if (st.cooldown_left > 0)
                --st.cooldown_left;
            if (st.cooldown_left == 0) {
                st.breaker = BreakerState::kHalfOpen;
                st.half_open_seen = 0;
                st.probe_successes = 0;
            }
            ticket.outcome = AdmitOutcome::kShedBreaker;
            return ticket;
        }
        if (st.breaker == BreakerState::kHalfOpen) {
            const bool is_probe =
                st.half_open_seen % breaker_.probe_interval == 0;
            ++st.half_open_seen;
            if (!is_probe) {
                ++st.counters.shed_breaker;
                ticket.outcome = AdmitOutcome::kShedBreaker;
                return ticket;
            }
            ++st.counters.breaker_probes;
            ticket.probe = true;  // outcome decides reopen vs close
        }
    }

    const TenantConfig &cfg = st.config;

    // Token bucket, refilled by the caller's arrival clock (modeled
    // ns, never wall time — replays must be bit-identical).
    if (cfg.bucket_rate_per_s > 0) {
        if (!st.bucket_primed) {
            st.tokens = cfg.bucket_burst;
            st.last_refill_ns = arrival_ns;
            st.bucket_primed = true;
        } else if (arrival_ns > st.last_refill_ns) {
            st.tokens = std::min(
                cfg.bucket_burst,
                st.tokens + (arrival_ns - st.last_refill_ns) *
                                cfg.bucket_rate_per_s * 1e-9);
            st.last_refill_ns = arrival_ns;
        }
        if (st.tokens < 1.0) {
            ++st.counters.shed_bucket;
            ticket.outcome = AdmitOutcome::kShedBucket;
            return ticket;
        }
    }

    // Per-tenant EWMA wait: this tenant's own queued work against its
    // own bound. A neighbor's backlog never sheds this tenant here.
    if (cfg.admission_max_wait_ns > 0 && st.est_call_ns > 0 &&
        static_cast<double>(st.pending) * st.est_call_ns >
            cfg.admission_max_wait_ns) {
        ++st.counters.shed_wait;
        ticket.outcome = AdmitOutcome::kShedWait;
        return ticket;
    }

    // Brownout: under global pressure, shed the lowest priorities
    // first; SLO tenants never brownout-shed.
    if (brownout_.start_wait_ns > 0 &&
        pressure_ns > brownout_.start_wait_ns && !cfg.slo &&
        max_priority_ > 0) {
        const double f =
            std::min(1.0, (pressure_ns - brownout_.start_wait_ns) /
                              (brownout_.full_wait_ns -
                               brownout_.start_wait_ns));
        const double cutoff =
            f * static_cast<double>(max_priority_);
        if (static_cast<double>(cfg.priority) < cutoff) {
            ++st.counters.shed_brownout;
            ticket.outcome = AdmitOutcome::kShedBrownout;
            return ticket;
        }
    }

    // Admitted by every layer: consume the token now. A worker-level
    // shed does not refund it — the request did arrive and was
    // pipeline-processed, which is exactly what the contract meters.
    if (cfg.bucket_rate_per_s > 0)
        st.tokens -= 1.0;
    return ticket;
}

void
TenantTable::FeedBreaker(State &st, bool shed, bool probe)
{
    switch (st.breaker) {
      case BreakerState::kClosed:
        ++st.window_submits;
        if (shed)
            ++st.window_sheds;
        if (st.window_submits >= breaker_.window) {
            if (static_cast<double>(st.window_sheds) >=
                breaker_.trip_shed_fraction *
                    static_cast<double>(st.window_submits)) {
                st.breaker = BreakerState::kOpen;
                st.cooldown_left = std::max(breaker_.cooldown, 1u);
                ++st.counters.breaker_trips;
            }
            st.window_submits = 0;
            st.window_sheds = 0;
        }
        break;
      case BreakerState::kHalfOpen:
        if (!probe)
            break;  // non-probe half-open sheds carry no signal
        if (shed) {
            // The probe itself was shed downstream: the overload is
            // not over — reopen for another cooldown.
            st.breaker = BreakerState::kOpen;
            st.cooldown_left = std::max(breaker_.cooldown, 1u);
            ++st.counters.breaker_trips;
        } else {
            ++st.probe_successes;
            if (st.probe_successes >= breaker_.close_after_probes) {
                st.breaker = BreakerState::kClosed;
                st.window_submits = 0;
                st.window_sheds = 0;
            }
        }
        break;
      case BreakerState::kOpen:
        break;  // open-state sheds were counted at the gate
    }
}

void
TenantTable::CommitAdmission(uint16_t tenant, const AdmitTicket &ticket,
                             bool worker_shed)
{
    std::lock_guard<std::mutex> lock(mu_);
    State &st = StateFor(tenant);
    const bool admitted =
        ticket.outcome == AdmitOutcome::kAdmitted && !worker_shed;
    if (admitted) {
        ++st.counters.admitted;
        ++st.pending;
    } else if (ticket.outcome == AdmitOutcome::kAdmitted) {
        ++st.counters.worker_shed;
    }
    if (breaker_.enabled &&
        ticket.outcome != AdmitOutcome::kShedBreaker)
        FeedBreaker(st, !admitted, ticket.probe);
}

void
TenantTable::OnWorkerFinished(uint16_t tenant)
{
    std::lock_guard<std::mutex> lock(mu_);
    State &st = StateFor(tenant);
    if (st.pending > 0)
        --st.pending;
}

void
TenantTable::OnCallLatency(uint16_t tenant, double latency_ns,
                           double default_deadline_ns)
{
    std::lock_guard<std::mutex> lock(mu_);
    State &st = StateFor(tenant);
    ++st.counters.calls_completed;
    const double deadline = st.config.deadline_ns > 0
                                ? st.config.deadline_ns
                                : default_deadline_ns;
    if (deadline > 0 && latency_ns > deadline)
        ++st.counters.deadline_exceeded;
}

void
TenantTable::FoldServiceEstimate(uint16_t tenant, double avg_call_ns)
{
    std::lock_guard<std::mutex> lock(mu_);
    State &st = StateFor(tenant);
    st.est_call_ns = st.est_call_ns == 0
                         ? avg_call_ns
                         : 0.8 * st.est_call_ns + 0.2 * avg_call_ns;
}

void
TenantTable::CreditAccelCycles(uint16_t tenant, uint64_t cycles)
{
    std::lock_guard<std::mutex> lock(mu_);
    StateFor(tenant).counters.accel_cycles_granted += cycles;
}

double
TenantTable::WeightOf(uint16_t tenant) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = tenants_.find(tenant);
    return it != tenants_.end() ? it->second.config.weight : 1.0;
}

uint32_t
TenantTable::PriorityOf(uint16_t tenant) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = tenants_.find(tenant);
    return it != tenants_.end() ? it->second.config.priority : 0;
}

std::vector<TenantSnapshot>
TenantTable::Snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TenantSnapshot> out;
    out.reserve(tenants_.size());
    for (const auto &[id, st] : tenants_) {
        TenantSnapshot ts;
        ts.config = st.config;
        ts.counters = st.counters;
        ts.breaker_state = st.breaker;
        ts.bucket_tokens = st.tokens;
        ts.est_call_ns = st.est_call_ns;
        ts.pending = st.pending;
        out.push_back(ts);
    }
    return out;
}

size_t
DwrrArbiter::PickAndCharge(const std::vector<Candidate> &ready)
{
    PA_CHECK(!ready.empty());
    // Earliest candidate per ready tenant (arrival, then vector order).
    std::map<uint16_t, size_t> head;
    for (size_t i = 0; i < ready.size(); ++i) {
        auto [it, inserted] = head.emplace(ready[i].tenant, i);
        if (!inserted &&
            ready[i].arrival_cycle < ready[it->second].arrival_cycle)
            it->second = i;
    }

    // A tenant leaving the ready set loses its banked deficit: credit
    // must not accumulate across idle gaps.
    for (auto it = deficit_.begin(); it != deficit_.end();) {
        if (head.count(it->first) == 0)
            it = deficit_.erase(it);
        else
            ++it;
    }

    // Billing (CreditAccelCycles) happens in the replay loop for every
    // device batch — arbitrated or not — so the arbiter only tracks
    // deficits here.
    const auto serve = [&](uint16_t tenant) {
        cursor_ = tenant;
        have_cursor_ = true;
        return head.at(tenant);
    };

    if (head.size() == 1)
        return serve(head.begin()->first);

    // Collect the id-ordered active list and check for any positive
    // weight: an all-scavenger ready set falls back to arrival order.
    std::vector<std::pair<uint16_t, double>> active;
    active.reserve(head.size());
    bool any_weighted = false;
    for (const auto &[tenant, idx] : head) {
        (void)idx;
        const double w = table_->WeightOf(tenant);
        active.emplace_back(tenant, w);
        any_weighted |= w > 0;
    }
    if (!any_weighted) {
        size_t best = 0;
        for (size_t i = 1; i < ready.size(); ++i)
            if (ready[i].arrival_cycle < ready[best].arrival_cycle)
                best = i;
        return serve(ready[best].tenant);
    }

    // DWRR sweep: resume just past the last-served tenant, add one
    // quantum × weight per visit, serve the first tenant whose head
    // batch fits its deficit. Weight-0 tenants accrue nothing and are
    // skipped — they only run via the head.size()==1 path above.
    // Terminates: some visited tenant has weight > 0, so its deficit
    // grows by a positive amount every sweep.
    size_t start = 0;
    if (have_cursor_) {
        while (start < active.size() &&
               active[start].first <= cursor_)
            ++start;
        if (start == active.size())
            start = 0;
    }
    const uint64_t quantum = std::max<uint64_t>(quantum_cycles_, 1);
    for (;;) {
        for (size_t k = 0; k < active.size(); ++k) {
            const auto &[tenant, weight] =
                active[(start + k) % active.size()];
            if (weight <= 0)
                continue;
            double &deficit = deficit_[tenant];
            deficit += static_cast<double>(quantum) * weight;
            const size_t idx = head.at(tenant);
            if (deficit >=
                static_cast<double>(ready[idx].service_cycles)) {
                deficit -=
                    static_cast<double>(ready[idx].service_cycles);
                return serve(tenant);
            }
        }
    }
}

}  // namespace protoacc::rpc
