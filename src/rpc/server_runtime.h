/**
 * @file
 * Concurrent batched RPC serving runtime.
 *
 * The single-threaded RpcServer handles one call at a time; this
 * runtime is the saturated-serving scenario the paper motivates (§1):
 * incoming request frames are sharded across N worker threads (MPSC
 * submission queues), each worker owning a full RpcServer — its codec
 * backend, its per-call-Reset() arena, its append-only reply stream —
 * so the steady-state path performs zero per-call arena constructions
 * and zero intermediate payload copies (responses are serialized in
 * place via FrameBuffer::ReserveFrame/CommitFrame).
 *
 * Two timing regimes, both tracked on per-worker virtual timelines:
 *
 *  - software backends: each worker models one core running the codec,
 *    so a call's modeled latency is its codec service time and modeled
 *    throughput scales with workers;
 *  - accelerated backends + a SharedAccelQueue: every worker's batch of
 *    (de)serialization jobs contends for the shared accelerator units
 *    through the doorbell/completion queue, so modeled latency includes
 *    queueing delay under load and throughput saturates at the unit
 *    count. Workers record each batch's measured service time while
 *    executing, and Drain() replays the recorded batches onto the
 *    shared timeline as a closed-loop event simulation (earliest
 *    worker clock submits next, ties to the lowest worker index) — so
 *    the contention numbers are deterministic, independent of host
 *    thread scheduling.
 *
 * Wall-clock throughput (real threads, real codec execution) and the
 * modeled numbers are reported side by side by bench/rpc_throughput.
 */
#ifndef PROTOACC_RPC_SERVER_RUNTIME_H
#define PROTOACC_RPC_SERVER_RUNTIME_H

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "accel/frame_engine.h"
#include "accel/shared_queue.h"
#include "rpc/dedup_cache.h"
#include "rpc/health.h"
#include "rpc/rpc.h"
#include "rpc/stream.h"
#include "rpc/tenant.h"
#include "sim/fault.h"

namespace protoacc::rpc {

/// Full RPC offload datapath: a frame engine (accel/frame_engine.h)
/// fronts the codec units, so header parse/validate, CRC verify/stamp,
/// dedup probes and error-frame synthesis are priced at device rates
/// into device time — zero framing charges reach the host cost sink —
/// and batches ride the shared queue's pipelined descriptor-ring path
/// (SubmitOffloadBatch) instead of the host-fenced doorbell.
struct OffloadConfig
{
    bool enabled = false;
    /// Frame-engine datapath rates (device clock domain).
    accel::FrameEngineTiming frame_timing;
};

/// Runtime-wide configuration.
struct RuntimeConfig
{
    uint32_t num_workers = 1;
    /// Max frames a worker drains from its inbox per wakeup; with a
    /// shared accelerator the whole drained batch is one doorbell batch
    /// (§3.5 batching amortizes the fence).
    uint32_t max_batch = 16;
    /// Shared accelerator contention model; nullptr = per-core codec
    /// (software backends, or one private accelerator per worker).
    accel::SharedAccelQueue *shared_accel = nullptr;
    /// Modeled application time per call (handler logic on the core),
    /// added to each call's latency and the worker's timeline.
    double modeled_handler_ns = 0;
    /// Keep response frames in the per-worker reply streams. Disable
    /// for long throughput runs (replies are still fully serialized;
    /// the stream is just recycled between batches).
    bool record_replies = true;

    // ---- robustness / degraded-mode serving ----

    /// Hostile-input resource bounds, applied to every worker backend
    /// at construction (zero fields = unlimited / codec default).
    ParseLimits parse_limits;

    /// Per-call modeled deadline, ns; 0 disables. Calls whose modeled
    /// latency exceeds it are counted (the client gave up — in the
    /// model the reply still exists, but the work was wasted).
    double deadline_ns = 0;

    /// Admission control: Submit sheds (kOverloaded) when the target
    /// worker's modeled backlog wait — pending calls x the worker's
    /// EWMA per-call service estimate — exceeds this, ns; 0 disables.
    double admission_max_wait_ns = 0;

    /// Seed of the per-call service EWMA before any batch completes.
    double est_call_ns = 2000;

    /// Saturation fallback: when > 0 and a worker's residual inbox
    /// backlog (frames left after it drained a batch) exceeds this,
    /// the worker serves its next batch with the accelerator path
    /// forced off (HybridCodecBackend degrades to software); the
    /// backlog recovering re-enables the accelerator. 0 disables.
    uint32_t saturation_fallback_backlog = 0;

    // ---- exactly-once / crash recovery ----

    /// Capacity of the runtime-wide dedup/response cache shared by all
    /// workers (exactly-once retries — see rpc/dedup_cache.h); 0
    /// disables dedup.
    size_t dedup_capacity = 0;

    /// Retry horizon of the dedup cache, in insertions (see
    /// DedupConfig::retry_horizon): entries older than this can no
    /// longer be retried and are expired first. 0 = pure FIFO.
    uint64_t dedup_retry_horizon = 0;

    /// Crash injector consulted after every completed call
    /// (ShouldKillWorker events — deterministic, call-count-based).
    /// Not owned; must outlive the runtime. nullptr disables.
    sim::FaultInjector *fault_injector = nullptr;

    // ---- device health domains ----

    /// Health state machines over every worker's private accelerator
    /// and every shared-queue unit (rpc/health.h): quarantine, state
    /// scrub, background self-test, probationary reintegration.
    /// Disabled by default — every incident then replays as before and
    /// nothing is ever fenced.
    HealthConfig health;

    // ---- offloaded RPC datapath ----

    /// Frame-engine offload (see OffloadConfig). Off by default: the
    /// pre-offload host-path behavior, bit for bit.
    OffloadConfig offload;

    // ---- schema evolution / wire negotiation ----

    /// Schema-version registry consulted by every worker's server
    /// before any parse or dedup work (see RpcServer::
    /// SetSchemaRegistry): a request whose frame carries a fingerprint
    /// the registry has never seen gets a structured
    /// kFailedPrecondition error frame, never a misparse. Not owned;
    /// must outlive the runtime. nullptr disables (all fingerprints
    /// accepted — the pre-registry behavior).
    const SchemaRegistry *schema_registry = nullptr;

    /// Fingerprint of the schema this runtime serves; stamped into
    /// every reply frame so clients can detect server-side version
    /// changes (0 = unversioned legacy server).
    uint64_t schema_fingerprint = 0;

    /// Price the per-frame ingress framing work (header parse + CRC
    /// verify) on the serving path: charged to the worker's host model
    /// (host path) so it lands in modeled latency, or to the device
    /// frame engine (offload — implied, this flag is then redundant).
    /// Off by default: ingress pricing stays wherever the caller
    /// attached the ingress buffer's cost sink, as before.
    bool charge_ingress_framing = false;

    // ---- multi-tenant serving & overload control ----

    /// Per-tenant serving contracts (rpc/tenant.h). The tenant layer
    /// engages when any of: this list is non-empty, the breaker is
    /// enabled, brownout is configured, or a DWRR quantum is set —
    /// otherwise Submit runs the exact pre-tenant pipeline (zero
    /// overhead, bit-identical modeled numbers).
    std::vector<TenantConfig> tenants;

    /// Retry-storm circuit breaker over every tenant's admission
    /// window (submission-count driven; deterministic).
    BreakerConfig breaker;

    /// Brownout shedding of low-priority non-SLO tenants under global
    /// backlog pressure.
    BrownoutConfig brownout;

    /// DWRR quantum, in accelerator cycles, for weighted-fair
    /// scheduling of contended shared-accelerator batches at Drain()
    /// replay. 0 keeps the pure earliest-vclock (FIFO) replay order.
    uint64_t dwrr_quantum_cycles = 0;

    /// Priority-aware batch formation: before a worker grabs its next
    /// batch it stable-sorts its inbox by tenant priority (descending),
    /// so high-priority frames jump low-priority backlog *within* the
    /// worker while same-priority frames keep FIFO order. This is the
    /// CPU-stage complement to device-stage DWRR — without it a gold
    /// batch still queues behind the hostile batch its own worker just
    /// grabbed (head-of-line blocking DWRR cannot see). Off by default:
    /// the FIFO grab keeps the crash-recovery invariant that a stranded
    /// set is a submission-order suffix; with priority batching that
    /// invariant weakens to a *grab-order* suffix, which is still
    /// deterministic under the windowed preload-submit pattern but not
    /// under concurrent submit-while-running with worker kills.
    bool priority_batching = false;
};

/// One completed call's modeled latency, tagged with its isolation
/// domain so per-tenant percentiles can be computed from one run.
struct CallRecord
{
    uint16_t tenant = 0;
    double latency_ns = 0;
};

/// One worker's counters, observed while the runtime is quiescent.
struct WorkerSnapshot
{
    uint64_t calls = 0;
    uint64_t failures = 0;
    uint64_t batches = 0;
    /// Failures bucketed by StatusCode (indexed by the code's value).
    std::array<uint64_t, kNumStatusCodes> failures_by_code{};
    /// Requests shed by admission control (never entered the inbox).
    uint64_t shed = 0;
    /// Calls whose modeled latency exceeded the configured deadline.
    uint64_t deadline_exceeded = 0;
    /// Hybrid-backend fallback accounting (zeros for other backends).
    uint64_t fallback_accel_fault = 0;
    uint64_t fallback_forced = 0;
    /// Generated-engine ops downgraded to the table engine on a
    /// fingerprint miss (zeros for other backends).
    uint64_t generated_fallbacks = 0;
    /// Requests rejected for an unknown schema fingerprint (zeros when
    /// no SchemaRegistry is attached).
    uint64_t schema_rejects = 0;
    /// Worker's virtual timeline position (modeled busy time).
    double vclock_ns = 0;
    /// Modeled codec cycles accumulated by the worker's backend.
    double codec_cycles = 0;
    /// The accelerator-unit share of codec_cycles (deser + ser device
    /// cycles). codec_cycles - accel_codec_cycles is the host-model
    /// residue — with a hybrid backend that never falls back, it is
    /// exactly the framing/CRC/dedup work priced on the host.
    double accel_codec_cycles = 0;
    /// Arena steady-state facts (blocks stays 1 once warmed up).
    size_t arena_blocks = 0;
    size_t arena_bytes_reserved = 0;
    /// Payload memcpys in the reply stream (zero-copy path keeps 0).
    uint64_t reply_payload_copies = 0;
    /// True when an injected crash killed this worker (its un-acked
    /// frames were re-dispatched to survivors at Drain).
    bool crashed = false;
    /// Device watchdog activity on this worker's backend.
    uint64_t watchdog_resets = 0;
    uint64_t watchdog_replayed_jobs = 0;
    /// Health domain of this worker's private accelerator (default
    /// state when health is disabled or the backend is software-only).
    HealthSnapshot device_health;
    /// Frame-engine (offloaded framing stage) activity; all zeros when
    /// the offload datapath is disabled.
    double frame_engine_cycles = 0;
    accel::FrameEngine::Stats frame_engine;
};

/// Aggregate runtime counters.
struct RuntimeSnapshot
{
    uint64_t calls = 0;
    uint64_t failures = 0;
    /// Failures bucketed by StatusCode across all workers.
    std::array<uint64_t, kNumStatusCodes> failures_by_code{};
    /// Requests shed by admission control.
    uint64_t shed = 0;
    /// Calls whose modeled latency exceeded the deadline.
    uint64_t deadline_exceeded = 0;
    /// Ops degraded to the software codec, by cause.
    uint64_t fallback_accel_fault = 0;
    uint64_t fallback_forced = 0;
    /// Ops a generated-engine backend ran on the table engine because
    /// no emitted codec matched the pool's fingerprint — a silent tier
    /// downgrade (schema drifted from its build recipe) made visible.
    uint64_t generated_fallbacks = 0;
    /// Requests rejected across all workers because their frames
    /// carried a schema fingerprint the attached SchemaRegistry has
    /// never seen (structured kFailedPrecondition, never a misparse).
    uint64_t schema_rejects = 0;
    /// Arena objects constructed since Start — one per worker, never
    /// per call (the steady-state reuse guarantee).
    uint64_t arena_constructions = 0;
    /// Modeled makespan: slowest worker's virtual timeline.
    double modeled_span_ns = 0;
    /// Exactly-once accounting (zeros when dedup_capacity == 0).
    uint64_t dedup_hits = 0;
    uint64_t dedup_insertions = 0;
    uint64_t dedup_evictions = 0;
    /// Frames rejected by SubmitFromStream's CRC check (kDataLoss).
    uint64_t crc_rejects = 0;
    /// Crash recovery: injected worker deaths and the un-acked frames
    /// Drain() re-dispatched to surviving workers.
    uint64_t workers_crashed = 0;
    uint64_t redispatched_frames = 0;
    /// Watchdog activity: per-worker device resets/replays summed, plus
    /// shared-queue resets when a shared accelerator is configured.
    uint64_t watchdog_resets = 0;
    uint64_t watchdog_replayed_jobs = 0;
    /// Device-health aggregates across every domain (worker devices
    /// plus shared-queue units); zeros when health is disabled.
    uint64_t health_quarantines = 0;
    uint64_t health_scrubs_completed = 0;
    uint64_t health_scrub_cycles = 0;
    uint64_t health_self_tests_passed = 0;
    uint64_t health_self_tests_failed = 0;
    uint64_t health_self_test_cycles = 0;
    uint64_t health_reintegrations = 0;
    /// Domains currently fenced from traffic — quarantined, mid-scrub,
    /// mid-self-test, or permanently fenced (fail-closed: an
    /// interrupted scrub still counts).
    uint32_t health_fenced_domains = 0;
    /// Per-unit health domains behind the shared accelerator queue
    /// (empty when health is disabled or no shared queue is attached).
    std::vector<HealthSnapshot> shared_units;
    /// Dedup eviction-policy detail (see DedupCache::Stats).
    uint64_t dedup_unsafe_evictions = 0;
    uint64_t dedup_expired = 0;
    /// True when the dedup cache was rebuilt from a snapshot.
    bool dedup_restored = false;
    /// Offload datapath aggregates across workers (zeros when the
    /// frame-engine offload is disabled): frames framed/parsed, CRC
    /// ops, dedup probes and error frames synthesized on-device, and
    /// the device cycles they cost.
    uint64_t offload_frame_headers = 0;
    uint64_t offload_crc_ops = 0;
    uint64_t offload_dedup_probes = 0;
    uint64_t offload_error_frames = 0;
    double offload_frame_cycles = 0;
    /// Per-tenant contracts, counters and breaker states, id-sorted
    /// (empty when the tenant layer is disengaged). shed above includes
    /// every tenant-layer shed; the per-cause split lives here.
    std::vector<TenantSnapshot> tenants;
    std::vector<WorkerSnapshot> workers;
    /// Stream-buffer memory gauge (rpc/stream.h): bytes currently
    /// reserved by live streams and the high-water mark (zeros when no
    /// stream receiver is attached).
    size_t stream_buffer_bytes = 0;
    size_t stream_buffer_peak_bytes = 0;
    /// Peak-memory high-water mark of the runtime's data buffers:
    /// worker arena reservations (arenas only grow, so bytes_reserved
    /// is itself a high-water mark) plus the stream-buffer peak.
    size_t peak_memory_bytes = 0;
    /// v4 stream frames routed to the attached stream receiver.
    uint64_t stream_frames = 0;

    /// Modeled queries/sec across the pool of workers.
    double
    modeled_qps() const
    {
        return modeled_span_ns > 0
                   ? static_cast<double>(calls) /
                         (modeled_span_ns * 1e-9)
                   : 0;
    }
};

/**
 * Thread-pool serving runtime: shards request frames across per-worker
 * RpcServers and tracks modeled time per worker.
 *
 * Lifecycle: construct → RegisterMethod()* → Start() → Submit()* /
 * Drain() → Shutdown() (or destruction). Snapshot(), replies() and
 * TakeLatencies() must only be called while quiescent (after Drain()
 * with no concurrent Submit), mirroring how a load generator reads its
 * counters between measurement windows.
 */
class RpcServerRuntime
{
  public:
    /// Builds one codec backend per worker (cycle accounting must be
    /// thread-local, so backends cannot be shared).
    using BackendFactory =
        std::function<std::unique_ptr<CodecBackend>(uint32_t worker)>;

    RpcServerRuntime(const proto::DescriptorPool *pool,
                     const BackendFactory &factory,
                     const RuntimeConfig &config);
    ~RpcServerRuntime();

    RpcServerRuntime(const RpcServerRuntime &) = delete;
    RpcServerRuntime &operator=(const RpcServerRuntime &) = delete;

    /// Register a method on every worker's server. Handlers run
    /// concurrently on worker threads: they must be thread-safe.
    /// Call before Start().
    void RegisterMethod(uint16_t method_id, int request_type,
                        int response_type, const Handler &handler);

    /// Spawn the worker threads.
    void Start();

    /// Enqueue one request frame; the payload is copied into the
    /// owning worker's submission queue (sharded by call id; a dead
    /// home worker reroutes to the next surviving one). May be
    /// called before Start() to pre-load a backlog (which also makes
    /// worker batch boundaries — inbox drains — deterministic).
    /// @return kOverloaded when admission control shed the request
    ///         (the frame was NOT enqueued; the client should back off
    ///         and retry), kUnavailable when every worker is dead,
    ///         kOk otherwise.
    ///
    /// @p arrival_ns is the modeled arrival time feeding the tenant
    /// layer's token buckets (ignored when no tenant has a bucket).
    /// Callers replaying an open-loop trace pass the trace clock;
    /// the default keeps closed-loop callers bucket-exempt.
    StatusCode Submit(const FrameHeader &header, const uint8_t *payload,
                      double arrival_ns = 0);

    /**
     * Server-side ingress decode path: scan the next frame out of
     * @p ingress (verifying its CRC — attach the ingress buffer's cost
     * sink to price it) and Submit it.
     *
     * @return Submit's result for a good frame; kDataLoss when the
     *         frame failed its integrity check (counted in the
     *         snapshot's crc_rejects; the scan continues behind it);
     *         kUnimplemented for a foreign frame version (framing
     *         cannot be resynchronized, so @p offset is consumed to
     *         the end); kUnavailable when the remainder is truncated
     *         (@p offset is consumed to the end — the tail is lost);
     *         kOk with @p offset unchanged when the stream is
     *         exhausted.
     */
    StatusCode SubmitFromStream(const FrameBuffer &ingress,
                                size_t *offset, double arrival_ns = 0);

    /// Block until every submitted frame has been handled or its
    /// worker died; re-dispatch dead workers' un-acked frames to
    /// survivors (repeating until everything drained — requeued frames
    /// respect the dedup cache, so an already-committed call replays
    /// its cached response instead of re-executing); then (with a
    /// shared accelerator) replay the recorded batches onto the shared
    /// timeline to produce deterministic modeled latencies.
    void Drain();

    /// Stop accepting work, drain inboxes, join workers. Idempotent
    /// and safe to call concurrently; a Shutdown() → Start() cycle
    /// resumes the surviving workers with all counters intact.
    void Shutdown();

    uint32_t num_workers() const;

    /// A worker's reply stream (quiescent only).
    const FrameBuffer &replies(uint32_t worker) const;

    /// Aggregate counters (quiescent only).
    RuntimeSnapshot Snapshot() const;

    /// Move out all recorded per-call modeled latencies, ns
    /// (quiescent only; clears the recording).
    std::vector<double> TakeLatencies();

    /// Move out the tenant-tagged per-call records (quiescent only;
    /// clears the recording — an alternative view of the same data
    /// TakeLatencies() returns, for per-tenant percentile extraction).
    std::vector<CallRecord> TakeCallRecords();

    /// Install @p observer on every worker's server (see
    /// RpcServer::SetExecObserver). Handlers run on worker threads, so
    /// the observer must be thread-safe. Call before Start().
    void SetExecObserver(
        std::function<void(uint16_t tenant, uint64_t key)> observer);

    /**
     * Report a device-attributable incident observed outside the
     * worker — e.g. a client rejected this worker's response frame CRC
     * (kCrcFailure), implicating the device that serialized it. The
     * incident is absorbed into the worker's health domain at its next
     * batch boundary. Thread-safe.
     */
    void ReportDeviceIncident(uint32_t worker, IncidentKind kind);

    /// Snapshot the dedup cache for crash-restart durability (empty
    /// when dedup is disabled). Quiescent only.
    std::vector<uint8_t> SerializeDedup() const;

    /// Rebuild the dedup cache from a SerializeDedup() image so
    /// retries of calls committed before a restart still dedup.
    /// Fail-closed on corrupt images (see DedupCache::Deserialize).
    /// Quiescent only. @return false when rejected or dedup disabled.
    bool RestoreDedup(const uint8_t *data, size_t size);

    /**
     * Attach the bounded-memory streaming endpoint (not owned; must
     * outlive the runtime, or be detached with nullptr first). Once
     * attached, Submit routes every v4 stream frame (IsStreamKind) to
     * it inline — streams bypass the per-call worker pipeline because
     * their admission is the stream layer's own (announce bound,
     * memory budgets, brownout) and their state machine is ordered.
     * The receiver is re-pointed at this runtime's shared memory gauge
     * and its dedup cache (exactly-once response replay), and its
     * reply/credit frames land in stream_replies(). Call before
     * streaming traffic arrives.
     */
    void AttachStreamReceiver(StreamReceiver *receiver);

    /// Reply/credit/error frames emitted by the attached stream
    /// receiver (quiescent only — callers pump it between ticks).
    FrameBuffer &stream_replies() { return stream_replies_; }

    /// Shared stream-buffer gauge feeding the snapshot's peak-memory
    /// accounting (live even when no receiver is attached).
    StreamMemoryGauge &stream_gauge() { return stream_gauge_; }

    /// Modeled-time hook for the attached receiver's deadline sweep
    /// and wedge releases; no-op when no receiver is attached.
    void AdvanceStreamTime(double now_ns);

  private:
    struct OwnedFrame
    {
        FrameHeader header;
        std::vector<uint8_t> payload;
    };

    /// One executed-but-not-yet-replayed accelerator batch.
    struct AccelBatch
    {
        /// Jobs that actually ran on the device (fallback ops do not
        /// ring the doorbell); 0 when the whole batch degraded to
        /// software.
        uint32_t jobs = 0;
        /// Device service time for those jobs.
        uint64_t service_cycles = 0;
        /// Software-fallback time, charged to the worker core's
        /// timeline instead of the shared accelerator.
        double sw_ns = 0;
        uint32_t calls = 0;
        /// Per-stage split of service_cycles plus the frame-engine and
        /// wire-transfer work, recorded only on the offload datapath
        /// (SubmitOffloadBatch pipelines the stages; the host path
        /// ignores these).
        uint64_t deser_cycles = 0;
        uint64_t ser_cycles = 0;
        uint64_t frame_cycles = 0;
        uint64_t wire_bytes = 0;
        /// Isolation domain of every call in this batch (workers split
        /// mixed-tenant drains into per-tenant sub-batches when the
        /// tenant layer is engaged, so the replay arbiter can schedule
        /// and bill whole batches to one tenant).
        uint16_t tenant = 0;
    };

    struct Worker
    {
        Worker(const proto::DescriptorPool *pool,
               std::unique_ptr<CodecBackend> backend,
               const HealthConfig &health_config)
            : server(pool, std::move(backend)), health(health_config)
        {}

        uint32_t index = 0;
        std::mutex mu;
        std::condition_variable cv;
        std::deque<OwnedFrame> inbox;
        size_t pending = 0;  ///< submitted, not yet fully handled
        bool stop = false;
        /// Set (under mu) when an injected crash killed this worker's
        /// thread; its inbox holds the un-acked frames Drain() will
        /// re-dispatch. A dead worker never restarts.
        bool dead = false;
        /// Requests shed by admission control (written under mu).
        uint64_t shed = 0;
        /// Per-call service estimate feeding admission control; EWMA
        /// updated by the worker, read by submitters (hence atomic).
        std::atomic<double> est_call_ns{0};

        RpcServer server;
        FrameBuffer replies;
        /// Device frame-engine stage (offload datapath): the reply
        /// stream's cost sink when offload is enabled, so egress
        /// framing, CRC stamping and dedup probes accrue device cycles
        /// instead of host cycles. Owned by the worker thread.
        accel::FrameEngine frame_engine;

        // Written by the worker thread, published under mu (pending
        // reaching 0), read while quiescent.
        uint64_t calls = 0;
        uint64_t failures = 0;
        uint64_t batches = 0;
        std::array<uint64_t, kNumStatusCodes> failures_by_code{};
        uint64_t deadline_exceeded = 0;
        double vclock_ns = 0;
        /// Completed calls' modeled latencies, tenant-tagged.
        std::vector<CallRecord> call_records;
        std::vector<AccelBatch> accel_batches;
        size_t replay_cursor = 0;  ///< first unreplayed accel batch
        /// Per-tenant measured service time (ns, calls) accumulated by
        /// the worker thread, folded into the tenant table's EWMAs at
        /// Drain() in worker-index order (deterministic fold sequence).
        std::map<uint16_t, std::pair<double, uint64_t>> tenant_service;

        // ---- device health domain (owned by the worker thread, like
        //      the counters above; read while quiescent) ----

        /// Health state machine of this worker's private accelerator.
        DeviceHealth health;
        /// Monotonic baselines for per-batch incident deltas.
        uint64_t wd_resets_seen = 0;
        uint64_t accel_faults_seen = 0;
        /// Device fenced by the health policy: batches run on the
        /// software codec until the scrub + self-test reintegrates it.
        bool health_fenced = false;
        /// In-flight maintenance (scrub + self-test) window on the
        /// worker's virtual timeline, with its pre-computed outcome.
        /// The state machine stays in kScrubbing until the window
        /// passes — an interruption (crash, shutdown) leaves the
        /// domain fenced, never healthy (fail closed).
        bool maintenance_pending = false;
        double maintenance_done_ns = 0;
        ScrubCost maintenance_scrub;
        bool maintenance_test_passed = false;
        uint64_t maintenance_test_cycles = 0;
        /// Incidents reported from outside the worker
        /// (ReportDeviceIncident), drained at batch boundaries.
        std::array<std::atomic<uint64_t>, kNumIncidentKinds>
            reported_incidents{};

        std::thread thread;
    };

    void WorkerLoop(Worker *w);
    /// Health preamble of one batch (worker thread): absorb externally
    /// reported incidents and complete a finished maintenance window.
    /// @return true when the device may serve this batch; false when
    /// it is fenced (the batch is forced to the software codec).
    bool HealthPreBatch(Worker *w);
    /// Feed this batch's incident/success observations into the
    /// worker's health domain; quarantines the device when the error
    /// rate crosses the threshold.
    void HealthPostBatch(Worker *w, size_t executed);
    /// Quarantine @p w's device now: fence it, scrub its state
    /// (functional + modeled cost), run the golden self-test, and
    /// schedule the maintenance window on the worker's timeline.
    void QuarantineWorkerDevice(Worker *w);
    /// Shared-queue unit health, driven by the quiescent replay loop.
    void ObserveSharedUnit(uint32_t unit, bool watchdog_fired);
    /// @p backlog: frames left in the inbox after this batch was
    /// extracted (the saturation signal for degraded-mode serving).
    /// Sets @p killed when an injected crash killed the worker during
    /// this batch — reported explicitly, not inferred from a short
    /// count, so a kill landing exactly on a batch boundary (e.g. with
    /// max_batch == 1) still takes the worker down.
    /// @return frames executed; the caller pushes the unexecuted tail
    /// back for re-dispatch.
    size_t ProcessBatch(Worker *w, std::vector<OwnedFrame> *batch,
                        size_t backlog, bool *killed);
    void ReplayAcceleratorTimeline();
    /// Home worker for @p call_id, or the next surviving worker when
    /// the home one is dead; nullptr when every worker is dead.
    Worker *PickWorker(uint32_t call_id);
    /// Harvest dead workers' un-acked frames and re-submit them to
    /// survivors. Returns the number of frames moved.
    size_t RedispatchStrandedFrames();

    const proto::DescriptorPool *pool_;
    RuntimeConfig config_;
    std::vector<std::unique_ptr<Worker>> workers_;
    /// Runtime-wide response cache shared by every worker's server
    /// (null when dedup_capacity == 0).
    std::unique_ptr<DedupCache> dedup_;
    /// Tenant admission/accounting layer; null when disengaged (see
    /// RuntimeConfig::tenants) — the null check IS the legacy fast
    /// path.
    std::unique_ptr<TenantTable> tenants_;
    /// Weighted-fair replay arbiter; null unless a shared accelerator
    /// and a DWRR quantum are both configured.
    std::unique_ptr<DwrrArbiter> arbiter_;
    /// Calls admitted and not yet executed, across all workers: the
    /// brownout pressure numerator. Relaxed atomics — an approximate
    /// read is fine for a pressure signal; exactness comes from the
    /// deterministic preload-submit pattern benches use.
    std::atomic<uint64_t> total_pending_{0};
    /// Health domains of the shared-queue units (empty unless health
    /// is enabled and a shared queue is attached). Touched only by the
    /// quiescent replay loop and Snapshot().
    std::vector<DeviceHealth> shared_unit_health_;
    /// Golden-vector source for device self-tests, built from the
    /// first registered method's request type (null until then).
    std::unique_ptr<SelfTester> self_tester_;
    /// Frames rejected by SubmitFromStream's integrity check.
    std::atomic<uint64_t> crc_rejects_{0};
    /// Streaming endpoint (not owned; null = streams unimplemented).
    StreamReceiver *stream_receiver_ = nullptr;
    /// Shared stream-buffer budget gauge (snapshot peak-memory input).
    StreamMemoryGauge stream_gauge_;
    /// The attached receiver's egress (credits/errors/responses).
    FrameBuffer stream_replies_;
    /// Serializes stream-frame routing: Submit is thread-safe but the
    /// receiver's per-stream state machine is single-threaded
    /// (mutable: Snapshot() is const and reads the routing counter).
    mutable std::mutex stream_mu_;
    uint64_t stream_frames_ = 0;  ///< guarded by stream_mu_
    /// Frames moved off dead workers onto survivors (Drain only, which
    /// runs quiescent — plain counter).
    uint64_t redispatched_frames_ = 0;
    /// Serializes Start()/Shutdown() so concurrent Shutdown() calls
    /// (and a Shutdown() racing destruction) are safe.
    std::mutex lifecycle_mu_;
    bool started_ = false;
};

}  // namespace protoacc::rpc

#endif  // PROTOACC_RPC_SERVER_RUNTIME_H
