/**
 * @file
 * Runtime registry of live schema versions for wire negotiation.
 *
 * Schema evolution makes mixed-version fleets the steady state: a
 * server built against schema v_N serves clients still on v_{N-1} and
 * canaries already on v_{N+1}. The unknown-field store
 * (proto/unknown_fields.h) makes *compatible* skew lossless — added
 * fields round-trip byte-identically. What it cannot protect against
 * is a peer speaking a schema the server has never seen at all, where
 * decoding would not merely drop fields but silently misparse.
 *
 * The registry closes that hole with the same structural FNV-1a
 * fingerprint the codegen tier keys generated codecs on
 * (proto::SchemaFingerprint): each live version's compiled pool is
 * registered once, every wire-v5 frame carries the sender's
 * fingerprint, and RpcServer rejects a fingerprint the registry does
 * not know with a structured kFailedPrecondition error — before any
 * parse attempt — instead of serving a wrong answer. Fingerprint 0
 * means the sender did not negotiate (legacy callers) and is accepted
 * as the server's own version.
 */
#ifndef PROTOACC_RPC_SCHEMA_REGISTRY_H
#define PROTOACC_RPC_SCHEMA_REGISTRY_H

#include <cstdint>
#include <string>
#include <vector>

#include "proto/descriptor.h"

namespace protoacc::rpc {

/**
 * Immutable-after-setup table of known schema versions, keyed by
 * structural fingerprint. Registration happens at server bring-up (or
 * on a config push, before the table swap that activates the version);
 * the serving path only reads, so no locking is needed.
 */
class SchemaRegistry
{
  public:
    /// One live schema version.
    struct VersionEntry
    {
        uint64_t fingerprint = 0;
        const proto::DescriptorPool *pool = nullptr;
        /// Operator-facing label, e.g. "echo-v2" (diagnostics only).
        std::string label;
    };

    /**
     * Register @p pool (must be compiled) under @p label and return
     * its structural fingerprint. Re-registering an already-known
     * fingerprint is a no-op (first label wins) — two deployment
     * epochs may legitimately carry the same schema.
     */
    uint64_t Register(const proto::DescriptorPool &pool,
                      std::string label);

    /// True when @p fingerprint names a registered version.
    bool Knows(uint64_t fingerprint) const;

    /// Entry for @p fingerprint, nullptr when unknown.
    const VersionEntry *Find(uint64_t fingerprint) const;

    size_t size() const { return versions_.size(); }
    const std::vector<VersionEntry> &versions() const { return versions_; }

  private:
    std::vector<VersionEntry> versions_;
};

/// "0x<16 hex digits>" rendering of a schema fingerprint for error
/// details and logs.
std::string SchemaFingerprintName(uint64_t fingerprint);

}  // namespace protoacc::rpc

#endif  // PROTOACC_RPC_SCHEMA_REGISTRY_H
