#include "rpc/codec_backend.h"

namespace protoacc::rpc {

AcceleratedBackend::AcceleratedBackend(const proto::DescriptorPool &pool,
                                       const accel::AccelConfig &config)
    : pool_(pool),
      config_(config),
      memory_(sim::MemorySystemConfig{}),
      device_(&memory_, config),
      adts_(pool, &adt_arena_),
      ser_arena_(16 << 20)
{
    device_.DeserAssignArena(&deser_arena_);
    device_.SerAssignArena(&ser_arena_);
}

const accel::SerArena::Output &
AcceleratedBackend::RunSerialize(const proto::Message &msg)
{
    if (ser_arena_.bytes_used() > ser_arena_.capacity() / 2) {
        // Applications recycle ser arenas between batches (§4.3); the
        // backend does so when the region fills.
        ser_arena_.Reset();
    }
    device_.EnqueueSer(accel::MakeSerJob(
        adts_, msg.descriptor().pool_index(), pool_, msg.raw()));
    uint64_t cycles = 0;
    PA_CHECK(device_.BlockForSerCompletion(&cycles) ==
             accel::AccelStatus::kOk);
    cycles_ += cycles;
    return ser_arena_.output(ser_arena_.output_count() - 1);
}

std::vector<uint8_t>
AcceleratedBackend::Serialize(const proto::Message &msg)
{
    const auto &out = RunSerialize(msg);
    return std::vector<uint8_t>(out.data, out.data + out.size);
}

size_t
AcceleratedBackend::SerializeTo(const proto::Message &msg, uint8_t *buf,
                                size_t cap)
{
    // The device writes into its assigned ser arena (§4.3); the single
    // copy out of it stands in for the transport's DMA read of the
    // completed output region.
    const auto &out = RunSerialize(msg);
    if (out.size > cap)
        return 0;
    std::memcpy(buf, out.data, out.size);
    return out.size;
}

bool
AcceleratedBackend::Deserialize(const uint8_t *data, size_t size,
                                proto::Message *msg)
{
    device_.EnqueueDeser(accel::MakeDeserJob(
        adts_, msg->descriptor().pool_index(), pool_, msg->raw(), data,
        size));
    uint64_t cycles = 0;
    const accel::AccelStatus st =
        device_.BlockForDeserCompletion(&cycles);
    cycles_ += cycles;
    return st == accel::AccelStatus::kOk;
}

}  // namespace protoacc::rpc
