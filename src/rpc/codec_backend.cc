#include "rpc/codec_backend.h"

namespace protoacc::rpc {

AcceleratedBackend::AcceleratedBackend(const proto::DescriptorPool &pool,
                                       const accel::AccelConfig &config)
    : pool_(pool),
      config_(config),
      memory_(sim::MemorySystemConfig{}),
      device_(&memory_, config),
      adts_(pool, &adt_arena_),
      ser_arena_(16 << 20)
{
    device_.DeserAssignArena(&deser_arena_);
    device_.SerAssignArena(&ser_arena_);
}

const accel::SerArena::Output *
AcceleratedBackend::RunSerialize(const proto::Message &msg)
{
    if (ser_arena_.bytes_used() > ser_arena_.capacity() / 2) {
        // Applications recycle ser arenas between batches (§4.3); the
        // backend does so when the region fills.
        ser_arena_.Reset();
    }
    const size_t outputs_before = ser_arena_.output_count();
    ++jobs_;
    device_.EnqueueSer(accel::MakeSerJob(
        adts_, msg.descriptor().pool_index(), pool_, msg.raw()));
    uint64_t cycles = 0;
    const accel::AccelStatus st = device_.BlockForSerCompletion(&cycles);
    cycles_ += cycles;
    ser_cycles_ += cycles;
    last_status_ = accel::ToStatusCode(st);
    // A killed unit may retire the job without producing an output
    // region; a degraded device must not abort the process.
    if (st != accel::AccelStatus::kOk ||
        ser_arena_.output_count() == outputs_before) {
        return nullptr;
    }
    return &ser_arena_.output(ser_arena_.output_count() - 1);
}

std::vector<uint8_t>
AcceleratedBackend::Serialize(const proto::Message &msg)
{
    const auto *out = RunSerialize(msg);
    if (out == nullptr)
        return {};
    return std::vector<uint8_t>(out->data, out->data + out->size);
}

size_t
AcceleratedBackend::SerializeTo(const proto::Message &msg, uint8_t *buf,
                                size_t cap)
{
    // The device writes into its assigned ser arena (§4.3); the single
    // copy out of it stands in for the transport's DMA read of the
    // completed output region.
    const auto *out = RunSerialize(msg);
    if (out == nullptr || out->size > cap)
        return 0;
    std::memcpy(buf, out->data, out->size);
    return out->size;
}

StatusCode
AcceleratedBackend::Deserialize(const uint8_t *data, size_t size,
                                proto::Message *msg)
{
    ++jobs_;
    device_.EnqueueDeser(accel::MakeDeserJob(
        adts_, msg->descriptor().pool_index(), pool_, msg->raw(), data,
        size));
    uint64_t cycles = 0;
    const accel::AccelStatus st =
        device_.BlockForDeserCompletion(&cycles);
    cycles_ += cycles;
    deser_cycles_ += cycles;
    last_status_ = accel::ToStatusCode(st);
    return last_status_;
}

std::vector<uint8_t>
HybridCodecBackend::Serialize(const proto::Message &msg)
{
    if (!force_software_) {
        std::vector<uint8_t> out = accel_->Serialize(msg);
        if (StatusOk(accel_->last_status())) {
            last_status_ = StatusCode::kOk;
            return out;
        }
        ++fallbacks_.accel_fault;
    } else {
        ++fallbacks_.forced;
    }
    last_status_ = StatusCode::kOk;
    return software_->Serialize(msg);
}

size_t
HybridCodecBackend::SerializeTo(const proto::Message &msg, uint8_t *buf,
                                size_t cap)
{
    if (!force_software_) {
        const size_t written = accel_->SerializeTo(msg, buf, cap);
        if (StatusOk(accel_->last_status())) {
            last_status_ = StatusCode::kOk;
            return written;
        }
        ++fallbacks_.accel_fault;
    } else {
        ++fallbacks_.forced;
    }
    last_status_ = StatusCode::kOk;
    return software_->SerializeTo(msg, buf, cap);
}

StatusCode
HybridCodecBackend::Deserialize(const uint8_t *data, size_t size,
                                proto::Message *msg)
{
    if (!force_software_) {
        const StatusCode st = accel_->Deserialize(data, size, msg);
        if (st != StatusCode::kAccelFault) {
            // Success, or a deterministic rejection every engine agrees
            // on — no point re-parsing in software.
            last_status_ = st;
            return st;
        }
        // The unit died mid-job with the destination untouched: re-run
        // the parse on the software table codec.
        ++fallbacks_.accel_fault;
    } else {
        ++fallbacks_.forced;
    }
    last_status_ = software_->Deserialize(data, size, msg);
    return last_status_;
}

}  // namespace protoacc::rpc
