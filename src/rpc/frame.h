/**
 * @file
 * Wire framing for the RPC substrate.
 *
 * The paper's introduction motivates serialization through RPC: "the
 * remote callee cannot directly access the caller's memory space...
 * exchanged data must undergo conversion to and from a shared
 * interchange format". This module provides the byte-stream layer under
 * the protobuf payloads: length-prefixed frames with a small fixed
 * header (call id, method id, frame kind), written into and scanned out
 * of transport buffers.
 */
#ifndef PROTOACC_RPC_FRAME_H
#define PROTOACC_RPC_FRAME_H

#include <cstdint>
#include <optional>
#include <vector>

namespace protoacc::rpc {

/// Frame kinds carried on a channel.
enum class FrameKind : uint8_t {
    kRequest = 0,
    kResponse = 1,
    kError = 2,
};

/// Fixed-size frame header preceding each protobuf payload.
struct FrameHeader
{
    uint32_t payload_bytes = 0;
    uint32_t call_id = 0;
    uint16_t method_id = 0;
    FrameKind kind = FrameKind::kRequest;

    static constexpr size_t kWireBytes = 4 + 4 + 2 + 1;
};

/// One decoded frame: header plus a view into the transport buffer.
struct Frame
{
    FrameHeader header;
    const uint8_t *payload = nullptr;
};

/**
 * Append-only frame buffer (one direction of a connection).
 */
class FrameBuffer
{
  public:
    /// Append a frame; returns the total bytes added to the stream.
    size_t Append(const FrameHeader &header, const uint8_t *payload);

    /// Scan the next frame starting at @p offset; nullopt when the
    /// stream is exhausted or the remainder is malformed/truncated.
    std::optional<Frame> Next(size_t *offset) const;

    size_t bytes() const { return bytes_.size(); }
    const uint8_t *data() const { return bytes_.data(); }
    void clear() { bytes_.clear(); }

  private:
    std::vector<uint8_t> bytes_;
};

}  // namespace protoacc::rpc

#endif  // PROTOACC_RPC_FRAME_H
