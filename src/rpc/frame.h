/**
 * @file
 * Wire framing for the RPC substrate.
 *
 * The paper's introduction motivates serialization through RPC: "the
 * remote callee cannot directly access the caller's memory space...
 * exchanged data must undergo conversion to and from a shared
 * interchange format". This module provides the byte-stream layer under
 * the protobuf payloads: length-prefixed frames with a small fixed
 * header (call id, method id, frame kind), written into and scanned out
 * of transport buffers.
 *
 * Wire format v5 (36-byte header, little-endian):
 *
 *     offset  field
 *          0  payload_bytes   u32
 *          4  call_id         u32
 *          8  method_id       u16
 *         10  kind            u8
 *         11  status          u8
 *         12  version         u8   (kFrameVersion; unknown => reject)
 *         13  flags           u8   (bit 0: frame carries a CRC)
 *         14  tenant_id       u16  (multi-tenant isolation domain; 0 =
 *                                   the default tenant)
 *         16  idempotency_key u64  (client-assigned; 0 = none)
 *         24  schema_fp       u64  (sender's structural schema
 *                                   fingerprint; 0 = unversioned)
 *         32  crc32c          u32  (over header bytes [0,32) + payload)
 *
 * v2 widened the header by a 16-bit tenant id so every layer downstream
 * of the wire — admission, dedup scoping, accelerator scheduling —
 * can attribute the frame to its isolation domain without a lookaside
 * table. v1 frames (26 bytes, no tenant field) are rejected by the
 * version check like any other foreign version.
 *
 * v4 keeps the header layout bit-for-bit and adds the *streaming* frame
 * kinds (kStreamBegin..kStreamCredit) that chunk one huge logical
 * message across many frames instead of one request-sized payload. The
 * stream-specific metadata rides in small fixed payload subheaders
 * (StreamBeginInfo/StreamChunkInfo/StreamEndInfo/StreamCreditInfo below)
 * so old readers reject v4 cleanly on the version byte alone. On stream
 * frames the header's idempotency_key is the *stream key*: stable
 * across retries of one logical transfer, it is what lets a resumed
 * stream be recognized and replay only unacknowledged chunks. Each
 * chunk frame's CRC covers that chunk end-to-end as usual; the END
 * subheader additionally carries the CRC32C of the entire logical byte
 * stream, composed chunk-by-chunk with Crc32cExtend, so reassembly
 * bugs (lost/duplicated/reordered chunk payloads) are caught even when
 * every individual frame verified clean. (v3 is skipped on the wire:
 * the name is taken by the dedup snapshot format.)
 *
 * v5 widens the header by a 64-bit schema fingerprint: the structural
 * FNV-1a hash of the sender's compiled message schema (the same value
 * the codegen tier keys generated codecs on). Schema evolution makes
 * mixed-version fleets routine; the fingerprint lets a server tell
 * "peer speaks a schema version my registry knows" from "peer speaks a
 * version I have never seen" *before* parsing, turning a potential
 * silent misparse into a structured kFailedPrecondition rejection. A
 * zero fingerprint means the sender did not negotiate (legacy in-build
 * callers) and is accepted as the server's own version.
 *
 * The CRC is the end-to-end integrity check: it is computed when a
 * frame is written (Append/CommitFrame) and verified when it is scanned
 * back out (Next), so any corruption the channel injects in between is
 * *detected* (kDataLoss) instead of being parsed and served as a wrong
 * answer. The version byte is validated before anything else is
 * trusted; the flags byte gives future versions somewhere to signal
 * optional header extensions without re-breaking the layout.
 */
#ifndef PROTOACC_RPC_FRAME_H
#define PROTOACC_RPC_FRAME_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "proto/cost_sink.h"

namespace protoacc::rpc {

/// Frame kinds carried on a channel.
enum class FrameKind : uint8_t {
    kRequest = 0,
    kResponse = 1,
    kError = 2,
    // ---- v4 streaming kinds. The payload of each begins with the
    // matching fixed subheader (Pack/Unpack helpers below). ----
    /// Opens a stream: announces the total logical length (admission
    /// input) and the sender's nominal chunk size.
    kStreamBegin = 3,
    /// One chunk of stream bytes at an explicit offset.
    kStreamChunk = 4,
    /// Closes a stream: final length + whole-stream composed CRC32C.
    kStreamEnd = 5,
    /// Aborts a stream mid-flight (deadline, caller cancel); the header
    /// status byte carries the cause. No payload.
    kStreamCancel = 6,
    /// Receiver -> sender flow-control grant: cumulative byte credit.
    kStreamCredit = 7,
};

/// True for the v4 streaming kinds (any direction).
inline bool
IsStreamKind(FrameKind kind)
{
    return kind >= FrameKind::kStreamBegin &&
           kind <= FrameKind::kStreamCredit;
}

/// Fixed-size frame header preceding each protobuf payload.
struct FrameHeader
{
    /// Current wire-format version; frames declaring any other version
    /// are rejected as kUnimplemented without touching the payload.
    /// v2 added the tenant_id field (multi-tenant serving); v4 added
    /// the streaming frame kinds (header layout unchanged); v5 added
    /// the schema fingerprint.
    static constexpr uint8_t kFrameVersion = 5;
    /// flags bit 0: the trailing crc32c field is populated and must be
    /// verified on decode.
    static constexpr uint8_t kFlagHasCrc = 0x01;

    uint32_t payload_bytes = 0;
    uint32_t call_id = 0;
    uint16_t method_id = 0;
    FrameKind kind = FrameKind::kRequest;
    /// Structured failure code (common/status.h), wire-stable single
    /// byte. kOk on request/response frames; kError frames carry the
    /// specific cause (unknown method, parse failure class, accelerator
    /// fault, overload, ...) plus a human-readable detail payload.
    StatusCode status = StatusCode::kOk;
    /// Wire-format version (kFrameVersion on everything this build
    /// writes; kept as a field so tests can forge foreign versions).
    uint8_t version = kFrameVersion;
    /// Decoded flags byte. On the write path the buffer owns the CRC
    /// bit; other bits are reserved (written as zero, ignored on read).
    uint8_t flags = 0;
    /// Isolation domain of the caller. Admission control, dedup
    /// scoping, and accelerator scheduling all key off this; 0 is the
    /// default tenant (single-tenant deployments never set it).
    uint16_t tenant_id = 0;
    /// Client-assigned exactly-once key: stable across retries of one
    /// logical call, 0 when the caller opted out of dedup.
    uint64_t idempotency_key = 0;
    /// Structural fingerprint of the sender's schema version for this
    /// method's message types (proto::SchemaFingerprint). 0 means the
    /// sender did not negotiate — accepted as the server's own version.
    uint64_t schema_fp = 0;

    static constexpr size_t kCrcOffset =
        4 + 4 + 2 + 1 + 1 + 1 + 1 + 2 + 8 + 8;
    static constexpr size_t kWireBytes = kCrcOffset + 4;
};

/// One decoded frame: header plus a view into the transport buffer.
struct Frame
{
    FrameHeader header;
    const uint8_t *payload = nullptr;
};

// ---------------------------------------------------------------------
// v4 stream payload subheaders. Fixed little-endian layouts at the
// start of the frame payload; chunk data (kStreamChunk only) follows
// its subheader. Unpack helpers fail (return false) on short payloads
// — the caller maps that to kMalformedInput.
// ---------------------------------------------------------------------

/// kStreamBegin payload: the transfer announce.
struct StreamBeginInfo
{
    /// Announced total logical stream length in bytes. Admission
    /// compares this against ParseLimits::max_payload_bytes and the
    /// stream memory budgets *before* any chunk is accepted.
    uint64_t total_bytes = 0;
    /// Sender's nominal chunk payload size (scheduling/credit hint).
    uint32_t chunk_bytes = 0;

    static constexpr size_t kWireBytes = 8 + 4;
};

/// kStreamChunk payload prefix: explicit placement of the chunk.
struct StreamChunkInfo
{
    /// Byte offset of this chunk within the logical stream. Explicit
    /// (not inferred from arrival order) so duplicated and reordered
    /// chunks are detectable and resume can skip committed prefixes.
    uint64_t offset = 0;

    static constexpr size_t kWireBytes = 8;
};

/// kStreamEnd payload: the close record.
struct StreamEndInfo
{
    /// Final logical length; must equal both the announce and the
    /// bytes actually committed.
    uint64_t total_bytes = 0;
    /// CRC32C over the entire logical byte stream, composed
    /// chunk-by-chunk with Crc32cExtend on both sides.
    uint32_t stream_crc = 0;

    static constexpr size_t kWireBytes = 8 + 4;
};

/// kStreamCredit payload: receiver's flow-control grant, doubling as
/// the cumulative ack. A credit frame whose header status is not kOk
/// is a NACK: the receiver detected a gap (lost/reordered chunk) and
/// the sender must rewind its send cursor to acked_bytes.
struct StreamCreditInfo
{
    /// Committed watermark: every stream byte below this offset has
    /// been received, verified and consumed exactly once. The resume
    /// point after any fault.
    uint64_t acked_bytes = 0;
    /// *Cumulative* credit: the sender may have sent at most this many
    /// stream bytes since stream start. Cumulative (not incremental)
    /// grants are idempotent — a duplicated or reordered credit frame
    /// folds in as max(), never double-grants.
    uint64_t window_bytes = 0;

    static constexpr size_t kWireBytes = 8 + 8;
};

/// Serialize a subheader into @p out (which must have room for the
/// struct's kWireBytes). Returns bytes written.
size_t PackStreamBegin(const StreamBeginInfo &info, uint8_t *out);
size_t PackStreamChunk(const StreamChunkInfo &info, uint8_t *out);
size_t PackStreamEnd(const StreamEndInfo &info, uint8_t *out);
size_t PackStreamCredit(const StreamCreditInfo &info, uint8_t *out);

/// Parse a subheader from the first bytes of @p payload; false when
/// @p len is too short (malformed stream frame).
bool UnpackStreamBegin(const uint8_t *payload, size_t len,
                       StreamBeginInfo *out);
bool UnpackStreamChunk(const uint8_t *payload, size_t len,
                       StreamChunkInfo *out);
bool UnpackStreamEnd(const uint8_t *payload, size_t len,
                     StreamEndInfo *out);
bool UnpackStreamCredit(const uint8_t *payload, size_t len,
                        StreamCreditInfo *out);

/**
 * Append-only frame buffer (one direction of a connection).
 *
 * Two write paths:
 *   - Append(): copies a finished payload in (counted by
 *     payload_copies(), so tests can assert a path is copy-free);
 *   - ReserveFrame()/CommitFrame(): the zero-copy path. Reserve writes
 *     the header with a payload-capacity upper bound and hands back the
 *     payload slot; the caller serializes in place and commits the
 *     actual size, which backpatches payload_bytes and trims the
 *     stream. At most one reservation may be open, and no other write
 *     may land between reserve and commit (the returned pointer would
 *     dangle across a reallocation).
 *
 * Both write paths stamp a CRC32C over header+payload unless
 * set_crc_enabled(false); Next() verifies it. When a cost sink is
 * attached (SetCostSink), every CRC computed or verified charges
 * modeled cycles through proto::CostSink::OnCrc so the integrity check
 * shows up in the figures instead of being free.
 */
class FrameBuffer
{
  public:
    /// Append a frame; returns the total bytes added to the stream.
    size_t Append(const FrameHeader &header, const uint8_t *payload);

    /**
     * Begin an in-place frame: append @p header (its payload_bytes is
     * ignored) with room for @p max_payload_bytes of payload.
     *
     * @return the payload slot; valid until CommitFrame.
     */
    uint8_t *ReserveFrame(const FrameHeader &header,
                          size_t max_payload_bytes);

    /// Finalize the open reservation at @p payload_bytes (at most the
    /// reserved capacity): backpatch the header, stamp the CRC and trim
    /// the stream.
    void CommitFrame(size_t payload_bytes);

    /// Abandon the open reservation, removing its header and slot from
    /// the stream (the in-place serialization failed; the caller will
    /// append an error frame instead).
    void CancelFrame();

    /**
     * Scan the next frame starting at @p offset; nullopt when the
     * stream is exhausted or the remainder is unusable.
     *
     * When @p error is non-null it reports why a scan returned nullopt:
     *   - kOk: stream exhausted, or the remainder is truncated
     *     (@p offset does not advance — more bytes may still arrive);
     *   - kUnimplemented: the frame declares an unknown wire-format
     *     version (@p offset does not advance);
     *   - kDataLoss: the frame failed its CRC check, or declared no
     *     CRC while this buffer enforces them (a cleared CRC flag must
     *     not become a verification bypass) — corrupted in flight.
     *     @p offset advances past the frame so the scan can continue
     *     behind it.
     * A returned frame always implies *error == kOk.
     */
    std::optional<Frame> Next(size_t *offset,
                              StatusCode *error = nullptr) const;

    size_t bytes() const { return bytes_.size(); }
    const uint8_t *data() const { return bytes_.data(); }
    /// Mutable view for in-flight corruption modeling (fault injection).
    uint8_t *mutable_data() { return bytes_.data(); }

    /// Cut the stream to its first @p n bytes (a frame lost its tail in
    /// the channel). No reservation may be open.
    void Truncate(size_t n);
    void
    clear()
    {
        bytes_.clear();
        reserved_at_ = kNoReservation;
    }

    /// Toggle CRC stamping (write path) and verification (Next). On by
    /// default; chaos experiments turn it off to measure how many
    /// corruptions would have been served silently.
    void set_crc_enabled(bool enabled) { crc_enabled_ = enabled; }
    bool crc_enabled() const { return crc_enabled_; }

    /// Attach a cycle-cost sink charged via OnCrc for every CRC this
    /// buffer computes or verifies, and via OnFrameHeader for every
    /// header written or parsed (nullptr detaches).
    void SetCostSink(proto::CostSink *sink) { cost_sink_ = sink; }
    proto::CostSink *cost_sink() const { return cost_sink_; }

    /// Payload memcpys performed by Append (the copying path); the
    /// reserve/commit path never increments these.
    uint64_t payload_copies() const { return payload_copies_; }
    uint64_t payload_copy_bytes() const { return payload_copy_bytes_; }

  private:
    static constexpr size_t kNoReservation = static_cast<size_t>(-1);

    /// Stamp the CRC of the frame starting at @p frame_start (header
    /// already written, payload in place) and charge the cost sink.
    void SealFrame(size_t frame_start, size_t payload_bytes);

    std::vector<uint8_t> bytes_;
    size_t reserved_at_ = kNoReservation;
    size_t reserved_max_ = 0;
    bool crc_enabled_ = true;
    proto::CostSink *cost_sink_ = nullptr;
    uint64_t payload_copies_ = 0;
    uint64_t payload_copy_bytes_ = 0;
};

}  // namespace protoacc::rpc

#endif  // PROTOACC_RPC_FRAME_H
