/**
 * @file
 * Wire framing for the RPC substrate.
 *
 * The paper's introduction motivates serialization through RPC: "the
 * remote callee cannot directly access the caller's memory space...
 * exchanged data must undergo conversion to and from a shared
 * interchange format". This module provides the byte-stream layer under
 * the protobuf payloads: length-prefixed frames with a small fixed
 * header (call id, method id, frame kind), written into and scanned out
 * of transport buffers.
 */
#ifndef PROTOACC_RPC_FRAME_H
#define PROTOACC_RPC_FRAME_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"

namespace protoacc::rpc {

/// Frame kinds carried on a channel.
enum class FrameKind : uint8_t {
    kRequest = 0,
    kResponse = 1,
    kError = 2,
};

/// Fixed-size frame header preceding each protobuf payload.
struct FrameHeader
{
    uint32_t payload_bytes = 0;
    uint32_t call_id = 0;
    uint16_t method_id = 0;
    FrameKind kind = FrameKind::kRequest;
    /// Structured failure code (common/status.h), wire-stable single
    /// byte. kOk on request/response frames; kError frames carry the
    /// specific cause (unknown method, parse failure class, accelerator
    /// fault, overload, ...) plus a human-readable detail payload.
    StatusCode status = StatusCode::kOk;

    static constexpr size_t kWireBytes = 4 + 4 + 2 + 1 + 1;
};

/// One decoded frame: header plus a view into the transport buffer.
struct Frame
{
    FrameHeader header;
    const uint8_t *payload = nullptr;
};

/**
 * Append-only frame buffer (one direction of a connection).
 *
 * Two write paths:
 *   - Append(): copies a finished payload in (counted by
 *     payload_copies(), so tests can assert a path is copy-free);
 *   - ReserveFrame()/CommitFrame(): the zero-copy path. Reserve writes
 *     the header with a payload-capacity upper bound and hands back the
 *     payload slot; the caller serializes in place and commits the
 *     actual size, which backpatches payload_bytes and trims the
 *     stream. At most one reservation may be open, and no other write
 *     may land between reserve and commit (the returned pointer would
 *     dangle across a reallocation).
 */
class FrameBuffer
{
  public:
    /// Append a frame; returns the total bytes added to the stream.
    size_t Append(const FrameHeader &header, const uint8_t *payload);

    /**
     * Begin an in-place frame: append @p header (its payload_bytes is
     * ignored) with room for @p max_payload_bytes of payload.
     *
     * @return the payload slot; valid until CommitFrame.
     */
    uint8_t *ReserveFrame(const FrameHeader &header,
                          size_t max_payload_bytes);

    /// Finalize the open reservation at @p payload_bytes (at most the
    /// reserved capacity): backpatch the header and trim the stream.
    void CommitFrame(size_t payload_bytes);

    /// Abandon the open reservation, removing its header and slot from
    /// the stream (the in-place serialization failed; the caller will
    /// append an error frame instead).
    void CancelFrame();

    /// Scan the next frame starting at @p offset; nullopt when the
    /// stream is exhausted or the remainder is malformed/truncated.
    std::optional<Frame> Next(size_t *offset) const;

    size_t bytes() const { return bytes_.size(); }
    const uint8_t *data() const { return bytes_.data(); }
    /// Mutable view for in-flight corruption modeling (fault injection).
    uint8_t *mutable_data() { return bytes_.data(); }

    /// Cut the stream to its first @p n bytes (a frame lost its tail in
    /// the channel). No reservation may be open.
    void Truncate(size_t n);
    void
    clear()
    {
        bytes_.clear();
        reserved_at_ = kNoReservation;
    }

    /// Payload memcpys performed by Append (the copying path); the
    /// reserve/commit path never increments these.
    uint64_t payload_copies() const { return payload_copies_; }
    uint64_t payload_copy_bytes() const { return payload_copy_bytes_; }

  private:
    static constexpr size_t kNoReservation = static_cast<size_t>(-1);

    std::vector<uint8_t> bytes_;
    size_t reserved_at_ = kNoReservation;
    size_t reserved_max_ = 0;
    uint64_t payload_copies_ = 0;
    uint64_t payload_copy_bytes_ = 0;
};

}  // namespace protoacc::rpc

#endif  // PROTOACC_RPC_FRAME_H
