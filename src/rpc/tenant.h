/**
 * @file
 * Multi-tenant admission control and weighted-fair accelerator
 * scheduling.
 *
 * The paper motivates the accelerator with *fleet-scale* serialization
 * cost: thousands of heterogeneous services sharing the same
 * infrastructure. RPCAcc (PAPERS.md) shows that once (de)serializer
 * units are a shared device, the dominant robustness failure is not
 * single-stream throughput but *contention*: one overloaded, buggy, or
 * hostile tenant monopolizing the shared units, retry-storming the
 * admission path, and starving well-behaved neighbors. This module is
 * the isolation layer between the wire (frame.h carries a 16-bit
 * tenant id since wire v2) and the shared device:
 *
 *   1. **Token-bucket admission** — each tenant gets an arrival-rate
 *      contract (rate, burst). Requests beyond the contract are shed
 *      at the door with kOverloaded *before* consuming a worker slot
 *      or an accelerator cycle. Refill is driven by the caller-supplied
 *      arrival clock (modeled nanoseconds), not wall time, so replays
 *      are deterministic.
 *   2. **Per-tenant EWMA-wait shedding** — the PR 3 global backlog
 *      estimate becomes per-tenant: a tenant whose *own* queued work
 *      exceeds its wait bound is shed without touching its neighbors'
 *      admission decisions.
 *   3. **Retry-storm circuit breaker** — a tenant whose recent
 *      submission window is mostly sheds is tripped open: subsequent
 *      submissions are rejected immediately for a cooldown, then
 *      half-open probes re-test the tenant before closing. This stops
 *      the shed→retry→shed amplification loop at O(1) cost per
 *      rejected call. All breaker state advances on submission counts,
 *      never wall time, so it replays bit-identically.
 *   4. **Brownout shedding** — under global pressure, lowest-priority
 *      non-SLO tenants are shed first, and progressively higher
 *      priorities as pressure rises, so SLO tenants keep their
 *      deadlines while best-effort traffic degrades.
 *   5. **Deficit-weighted round-robin (DWRR)** — when batches from
 *      multiple tenants contend for the shared accelerator doorbell,
 *      the replay arbiter serves tenants in proportion to their
 *      configured weights (quantum × weight deficit accounting)
 *      instead of pure FIFO, so a flood cannot buy more than its share
 *      of device cycles.
 *
 * Everything here is deterministic given the submission sequence: no
 * wall clocks, no RNG. The runtime calls PreAdmit/CommitAdmission on
 * the submission path and folds measured service costs back in at
 * Drain() in a fixed worker order, so two runs with the same seed
 * produce bit-identical per-tenant counters.
 */
#ifndef PROTOACC_RPC_TENANT_H
#define PROTOACC_RPC_TENANT_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace protoacc::rpc {

/// Per-tenant serving contract. Tenants never configured get
/// kDefault-like unlimited admission with weight 1 — single-tenant
/// deployments behave exactly as before this layer existed.
struct TenantConfig
{
    uint16_t id = 0;
    /// DWRR share of contended accelerator cycles. 0 = pure scavenger:
    /// served only when no weighted tenant is waiting.
    double weight = 1.0;
    /// Brownout tier: under pressure, lower priorities shed first.
    uint32_t priority = 0;
    /// SLO tenants are never brownout-shed and report deadline
    /// attainment against deadline_ns.
    bool slo = false;
    /// Per-tenant modeled deadline; 0 falls back to the runtime-wide
    /// deadline_ns.
    double deadline_ns = 0;
    /// Token-bucket admission contract: sustained calls/second and
    /// burst depth. rate 0 = no bucket (unlimited).
    double bucket_rate_per_s = 0;
    double bucket_burst = 0;
    /// Per-tenant EWMA backlog bound: shed when this tenant's queued
    /// calls × its EWMA service estimate exceeds this. 0 = unbounded.
    double admission_max_wait_ns = 0;
};

/// Retry-storm circuit breaker policy (shared by all tenants of a
/// table). Counts submissions, never time: deterministic under replay.
struct BreakerConfig
{
    bool enabled = false;
    /// Closed-state observation window, in submissions.
    uint32_t window = 64;
    /// Trip when sheds/window reaches this fraction at window close.
    double trip_shed_fraction = 0.5;
    /// Open-state rejections before transitioning to half-open.
    uint32_t cooldown = 128;
    /// In half-open, every Nth submission is a probe (others shed).
    uint32_t probe_interval = 8;
    /// Admitted probes required to close the breaker.
    uint32_t close_after_probes = 4;
};

/// Brownout policy: map global modeled backlog pressure to a priority
/// cutoff below which non-SLO tenants shed.
struct BrownoutConfig
{
    /// Pressure (max worker backlog × estimate, ns) where brownout
    /// begins. 0 disables brownout.
    double start_wait_ns = 0;
    /// Pressure of full brownout (every priority below the maximum
    /// sheds). Must exceed start_wait_ns when enabled.
    double full_wait_ns = 0;
};

enum class BreakerState : uint8_t { kClosed = 0, kOpen, kHalfOpen };

/// Why an admission attempt was rejected (or not).
enum class AdmitOutcome : uint8_t {
    kAdmitted = 0,
    kShedBucket,    ///< token bucket empty
    kShedWait,      ///< per-tenant EWMA backlog over bound
    kShedBrownout,  ///< pressure shed of a low-priority tenant
    kShedBreaker,   ///< circuit breaker open / non-probe in half-open
};

/// Per-tenant counters surfaced through RuntimeSnapshot. Plain values;
/// the table's mutex makes updates atomic and Drain-time reads stable.
struct TenantCounters
{
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t shed_bucket = 0;
    uint64_t shed_wait = 0;
    uint64_t shed_brownout = 0;
    uint64_t shed_breaker = 0;
    uint64_t worker_shed = 0;  ///< admitted here, shed at the worker
    uint64_t breaker_trips = 0;
    uint64_t breaker_probes = 0;
    uint64_t calls_completed = 0;
    uint64_t deadline_exceeded = 0;
    /// Shared-accelerator service cycles granted to this tenant by the
    /// replay arbiter.
    uint64_t accel_cycles_granted = 0;
};

/// Immutable per-tenant view exported by Snapshot(), sorted by id.
struct TenantSnapshot
{
    TenantConfig config;
    TenantCounters counters;
    BreakerState breaker_state = BreakerState::kClosed;
    double bucket_tokens = 0;
    double est_call_ns = 0;
    uint64_t pending = 0;
};

/// Result of the admission pre-check; must be committed exactly once.
struct AdmitTicket
{
    AdmitOutcome outcome = AdmitOutcome::kAdmitted;
    /// True when this admission is a half-open breaker probe: a
    /// downstream (worker-level) shed re-opens the breaker.
    bool probe = false;
};

/**
 * The tenant table: configs, live state, counters. One per runtime,
 * shared by the submission path (PreAdmit/CommitAdmission under the
 * table mutex), the workers (OnWorkerFinished), and the Drain-time
 * replay arbiter (DwrrArbiter reads weights, credits grants).
 */
class TenantTable
{
  public:
    TenantTable(std::vector<TenantConfig> tenants, BreakerConfig breaker,
                BrownoutConfig brownout);

    /**
     * Run the admission pipeline for one submission of @p tenant:
     * breaker gate → token bucket (refilled to @p arrival_ns) →
     * per-tenant EWMA wait → brownout against @p pressure_ns (the
     * runtime's current global backlog estimate). Does not yet count
     * the outcome into the breaker window — the caller may still shed
     * at the worker level — so every PreAdmit must be paired with
     * exactly one CommitAdmission.
     */
    AdmitTicket PreAdmit(uint16_t tenant, double arrival_ns,
                         double pressure_ns);

    /**
     * Finalize the submission outcome: @p worker_shed is true when the
     * runtime shed an admitted ticket at the worker backlog check.
     * Feeds the breaker window / probe logic and the pending gauge.
     */
    void CommitAdmission(uint16_t tenant, const AdmitTicket &ticket,
                         bool worker_shed);

    /**
     * A worker finished executing one call of @p tenant: decrements
     * the pending gauge feeding the per-tenant wait estimate. Called
     * from worker threads; the latency is not yet known here for
     * shared-accelerator batches (queueing resolves at replay).
     */
    void OnWorkerFinished(uint16_t tenant);

    /**
     * Account one call's final modeled latency: counts completion and
     * a deadline miss when @p latency_ns exceeds the tenant's deadline
     * (falling back to @p default_deadline_ns; 0 = no deadline).
     * Called from the software path inline and from the Drain() replay
     * for shared-accelerator batches.
     */
    void OnCallLatency(uint16_t tenant, double latency_ns,
                       double default_deadline_ns);

    /**
     * Fold a worker's measured per-tenant service estimate into the
     * tenant EWMA (0.8 × old + 0.2 × new, matching the worker-level
     * estimator). Called from Drain() in worker-index order so the
     * fold sequence — and therefore the EWMA value — is deterministic.
     */
    void FoldServiceEstimate(uint16_t tenant, double avg_call_ns);

    /// Credit @p cycles of shared-accelerator service to @p tenant
    /// (called by the Drain() replay loop for every device batch).
    void CreditAccelCycles(uint16_t tenant, uint64_t cycles);

    /// DWRR weight of @p tenant (1.0 for unconfigured tenants).
    double WeightOf(uint16_t tenant) const;

    /// Brownout/batching priority of @p tenant (0 for unconfigured
    /// tenants — the lowest tier).
    uint32_t PriorityOf(uint16_t tenant) const;

    /// Deterministic snapshot of every tenant seen so far, id-sorted.
    std::vector<TenantSnapshot> Snapshot() const;

    const BreakerConfig &breaker() const { return breaker_; }
    const BrownoutConfig &brownout() const { return brownout_; }

  private:
    struct State
    {
        TenantConfig config;
        TenantCounters counters;
        /// Token bucket: token count at last_refill_ns.
        double tokens = 0;
        double last_refill_ns = 0;
        bool bucket_primed = false;
        /// Per-tenant EWMA of measured per-call service time.
        double est_call_ns = 0;
        /// Calls admitted and not yet completed.
        uint64_t pending = 0;
        /// Breaker machinery (submission-count driven).
        BreakerState breaker = BreakerState::kClosed;
        uint32_t window_submits = 0;
        uint32_t window_sheds = 0;
        uint32_t cooldown_left = 0;
        uint32_t half_open_seen = 0;
        uint32_t probe_successes = 0;
    };

    State &StateFor(uint16_t tenant);  ///< caller holds mu_
    void FeedBreaker(State &st, bool shed, bool probe);

    BreakerConfig breaker_;
    BrownoutConfig brownout_;
    uint32_t max_priority_ = 0;
    mutable std::mutex mu_;
    /// Ordered map: snapshot and fold iteration are id-sorted and
    /// therefore deterministic.
    std::map<uint16_t, State> tenants_;
};

/**
 * Deficit-weighted round-robin arbiter over contending batches, used
 * by the Drain()-time accelerator replay. Single-threaded (replay runs
 * on the draining thread); deterministic: the active list is id-sorted
 * and the cursor rotates in id order.
 *
 * Classic DWRR adapted to a batch device: each ready tenant accrues
 * `quantum × weight` deficit per visit and is served while its head
 * batch's service cost fits the deficit. Weight-0 tenants accrue
 * nothing and are served only when no weighted tenant is ready
 * (scavenger class) — the arbiter never livelocks because some ready
 * tenant always accrues positive deficit, or the all-zero fallback
 * picks the earliest arrival.
 */
class DwrrArbiter
{
  public:
    struct Candidate
    {
        uint16_t tenant = 0;
        uint64_t service_cycles = 0;
        /// Arrival order tiebreak (modeled cycle the batch became
        /// ready; ties broken by submission order = vector order).
        uint64_t arrival_cycle = 0;
    };

    DwrrArbiter(TenantTable *table, uint64_t quantum_cycles)
        : table_(table), quantum_cycles_(quantum_cycles)
    {
    }

    /**
     * Pick which of @p ready (non-empty) to serve next and charge its
     * cost against the winner tenant's deficit; returns the index into
     * @p ready. Tenants absent from @p ready have their deficit reset
     * (a tenant must not bank credit across idle gaps).
     */
    size_t PickAndCharge(const std::vector<Candidate> &ready);

  private:
    TenantTable *table_;
    uint64_t quantum_cycles_;
    /// Live deficit per tenant; erased when the tenant leaves the
    /// ready set.
    std::map<uint16_t, double> deficit_;
    /// Id of the last-served tenant; the scan resumes just past it.
    uint16_t cursor_ = 0;
    bool have_cursor_ = false;
};

}  // namespace protoacc::rpc

#endif  // PROTOACC_RPC_TENANT_H
