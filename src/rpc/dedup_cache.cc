#include "rpc/dedup_cache.h"

#include <cstring>

#include "common/crc32c.h"

namespace protoacc::rpc {

namespace {

/// Snapshot image: magic, version, entry count, entries, CRC trailer.
/// Version 2 scopes every entry by tenant (a u16 between the key and
/// the tick) and stores the header's tenant_id field; v1 images are
/// rejected fail-closed — their keys are ambiguous across tenants, so
/// restoring them could replay responses across the isolation boundary.
/// Version 3 stores the header's schema fingerprint (wire v5): a
/// replayed response must carry the schema version it was produced
/// under, so a mixed-version client can tell a stale-schema replay
/// from a current one. Older images are rejected fail-closed.
constexpr uint8_t kMagic[4] = {'P', 'A', 'D', 'C'};
constexpr uint8_t kSnapshotVersion = 3;

void
Put32(std::vector<uint8_t> *out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
Put64(std::vector<uint8_t> *out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t
Get32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

uint64_t
Get64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

/// Per-entry fixed part: key u64, tenant u16, tick u64, then the
/// FrameHeader fields (everything the response path copies back out),
/// then payload_bytes u32 + payload.
void
PutHeader(std::vector<uint8_t> *out, const FrameHeader &h)
{
    Put32(out, h.payload_bytes);
    Put32(out, h.call_id);
    out->push_back(static_cast<uint8_t>(h.method_id));
    out->push_back(static_cast<uint8_t>(h.method_id >> 8));
    out->push_back(static_cast<uint8_t>(h.kind));
    out->push_back(static_cast<uint8_t>(h.status));
    out->push_back(h.version);
    out->push_back(h.flags);
    out->push_back(static_cast<uint8_t>(h.tenant_id));
    out->push_back(static_cast<uint8_t>(h.tenant_id >> 8));
    Put64(out, h.idempotency_key);
    Put64(out, h.schema_fp);
}

constexpr size_t kHeaderBytes = 4 + 4 + 2 + 1 + 1 + 1 + 1 + 2 + 8 + 8;

FrameHeader
GetHeader(const uint8_t *p)
{
    FrameHeader h;
    h.payload_bytes = Get32(p);
    h.call_id = Get32(p + 4);
    h.method_id =
        static_cast<uint16_t>(p[8] | (static_cast<uint16_t>(p[9]) << 8));
    h.kind = static_cast<FrameKind>(p[10]);
    h.status = static_cast<StatusCode>(p[11]);
    h.version = p[12];
    h.flags = p[13];
    h.tenant_id =
        static_cast<uint16_t>(p[14] |
                              (static_cast<uint16_t>(p[15]) << 8));
    h.idempotency_key = Get64(p + 16);
    h.schema_fp = Get64(p + 24);
    return h;
}

}  // namespace

bool
DedupCache::Lookup(uint16_t tenant, uint64_t key, FrameHeader *header,
                   std::vector<uint8_t> *payload)
{
    if (key == 0 || config_.capacity == 0)
        return false;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(TenantKey{tenant, key});
    if (it == entries_.end()) {
        ++misses_;
        return false;
    }
    ++hits_;
    *header = it->second.header;
    *payload = it->second.payload;
    return true;
}

void
DedupCache::Insert(uint16_t tenant, uint64_t key,
                   const FrameHeader &header, const uint8_t *payload,
                   size_t payload_bytes)
{
    if (key == 0 || config_.capacity == 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    Entry entry;
    entry.header = header;
    entry.payload.assign(payload, payload + payload_bytes);
    entry.tick = ++insert_tick_;
    const TenantKey tk{tenant, key};
    if (!entries_.emplace(tk, std::move(entry)).second)
        return;  // first committed answer wins
    fifo_.push_back(tk);
    ++insertions_;
    EvictLocked();
}

void
DedupCache::EvictLocked()
{
    // Proactive expiry: entries older than the retry horizon can never
    // be hit again, so drop them regardless of occupancy.
    if (config_.retry_horizon > 0) {
        while (!fifo_.empty()) {
            auto it = entries_.find(fifo_.front());
            if (it == entries_.end()) {
                fifo_.pop_front();  // already evicted
                continue;
            }
            if (insert_tick_ - it->second.tick <= config_.retry_horizon)
                break;  // fifo_ is tick-ordered: the rest are younger
            entries_.erase(it);
            fifo_.pop_front();
            ++evictions_;
            ++expired_;
        }
    }
    // Capacity bound: oldest-first. With the expired entries already
    // gone, any eviction here hits an entry still inside the retry
    // window (or of unknown age) — a correctness exposure, counted.
    while (entries_.size() > config_.capacity) {
        if (entries_.erase(fifo_.front()) > 0) {
            ++evictions_;
            ++unsafe_evictions_;
        }
        fifo_.pop_front();
    }
}

std::vector<uint8_t>
DedupCache::Serialize() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<uint8_t> out;
    out.reserve(64);
    for (const uint8_t m : kMagic)
        out.push_back(m);
    out.push_back(kSnapshotVersion);
    out.push_back(0);  // reserved
    out.push_back(0);
    out.push_back(0);
    Put64(&out, insert_tick_);
    // Live entries in insertion order so the restored cache evicts in
    // the same order the original would have.
    uint32_t count = 0;
    for (const TenantKey &key : fifo_)
        if (entries_.count(key) > 0)
            ++count;
    Put32(&out, count);
    for (const TenantKey &key : fifo_) {
        auto it = entries_.find(key);
        if (it == entries_.end())
            continue;
        const Entry &e = it->second;
        Put64(&out, key.key);
        out.push_back(static_cast<uint8_t>(key.tenant));
        out.push_back(static_cast<uint8_t>(key.tenant >> 8));
        Put64(&out, e.tick);
        PutHeader(&out, e.header);
        Put32(&out, static_cast<uint32_t>(e.payload.size()));
        out.insert(out.end(), e.payload.begin(), e.payload.end());
    }
    Put32(&out, Crc32c(out.data(), out.size()));
    return out;
}

bool
DedupCache::Deserialize(const uint8_t *data, size_t size,
                        std::string *reject_detail)
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    fifo_.clear();
    // 4 magic + 1 version + 3 reserved + 8 tick + 4 count + 4 crc.
    constexpr size_t kMinBytes = 4 + 1 + 3 + 8 + 4 + 4;
    if (data == nullptr || size < kMinBytes) {
        if (reject_detail != nullptr)
            *reject_detail = "dedup snapshot truncated: " +
                             std::to_string(size) + " bytes, need at least " +
                             std::to_string(kMinBytes);
        return false;
    }
    if (std::memcmp(data, kMagic, 4) != 0) {
        if (reject_detail != nullptr)
            *reject_detail = "dedup snapshot magic mismatch";
        return false;
    }
    if (data[4] != kSnapshotVersion) {
        // Name both versions: a fleet rolling back after a format bump
        // hits this, and "snapshot rejected" without the versions makes
        // that indistinguishable from corruption.
        if (reject_detail != nullptr)
            *reject_detail = "dedup snapshot version " +
                             std::to_string(data[4]) +
                             " rejected, this build expects version " +
                             std::to_string(kSnapshotVersion);
        return false;
    }
    if (Crc32c(data, size - 4) != Get32(data + size - 4)) {
        if (reject_detail != nullptr)
            *reject_detail = "dedup snapshot CRC mismatch";
        return false;
    }
    const uint64_t tick = Get64(data + 8);
    const uint32_t count = Get32(data + 16);
    size_t off = 20;
    const size_t body_end = size - 4;
    for (uint32_t i = 0; i < count; ++i) {
        // key u64 + tenant u16 + tick u64 + header + payload len u32.
        if (off + 8 + 2 + 8 + kHeaderBytes + 4 > body_end) {
            entries_.clear();
            fifo_.clear();
            if (reject_detail != nullptr)
                *reject_detail = "dedup snapshot entry " +
                                 std::to_string(i) + " truncated";
            return false;
        }
        const uint64_t key = Get64(data + off);
        const uint16_t tenant = static_cast<uint16_t>(
            data[off + 8] |
            (static_cast<uint16_t>(data[off + 9]) << 8));
        const uint64_t entry_tick = Get64(data + off + 10);
        const FrameHeader header = GetHeader(data + off + 18);
        const uint32_t payload_bytes =
            Get32(data + off + 18 + kHeaderBytes);
        off += 18 + kHeaderBytes + 4;
        if (off + payload_bytes > body_end || entry_tick > tick) {
            entries_.clear();
            fifo_.clear();
            if (reject_detail != nullptr)
                *reject_detail = "dedup snapshot entry " +
                                 std::to_string(i) + " inconsistent";
            return false;
        }
        Entry entry;
        entry.header = header;
        entry.payload.assign(data + off, data + off + payload_bytes);
        entry.tick = entry_tick;
        off += payload_bytes;
        if (key == 0 || config_.capacity == 0)
            continue;
        if (entries_.emplace(TenantKey{tenant, key}, std::move(entry))
                .second)
            fifo_.push_back(TenantKey{tenant, key});
    }
    if (off != body_end) {
        entries_.clear();
        fifo_.clear();
        if (reject_detail != nullptr)
            *reject_detail = "dedup snapshot trailing bytes";
        return false;
    }
    insert_tick_ = tick > insert_tick_ ? tick : insert_tick_;
    EvictLocked();  // snapshot may exceed this instance's bounds
    restored_ = true;
    return true;
}

DedupCache::Stats
DedupCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.insertions = insertions_;
    s.evictions = evictions_;
    s.unsafe_evictions = unsafe_evictions_;
    s.expired = expired_;
    s.entries = entries_.size();
    s.capacity = config_.capacity;
    s.restored = restored_;
    return s;
}

}  // namespace protoacc::rpc
