#include "rpc/dedup_cache.h"

namespace protoacc::rpc {

bool
DedupCache::Lookup(uint64_t key, FrameHeader *header,
                   std::vector<uint8_t> *payload)
{
    if (key == 0 || capacity_ == 0)
        return false;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        return false;
    }
    ++hits_;
    *header = it->second.header;
    *payload = it->second.payload;
    return true;
}

void
DedupCache::Insert(uint64_t key, const FrameHeader &header,
                   const uint8_t *payload, size_t payload_bytes)
{
    if (key == 0 || capacity_ == 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    Entry entry;
    entry.header = header;
    entry.payload.assign(payload, payload + payload_bytes);
    if (!entries_.emplace(key, std::move(entry)).second)
        return;  // first committed answer wins
    fifo_.push_back(key);
    ++insertions_;
    while (entries_.size() > capacity_) {
        entries_.erase(fifo_.front());
        fifo_.pop_front();
        ++evictions_;
    }
}

DedupCache::Stats
DedupCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.insertions = insertions_;
    s.evictions = evictions_;
    s.entries = entries_.size();
    s.capacity = capacity_;
    return s;
}

}  // namespace protoacc::rpc
